module symplfied

go 1.22
