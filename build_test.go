package symplfied_test

import (
	"testing"
	"time"

	"symplfied"
	"symplfied/internal/apps/factorial"
	"symplfied/internal/isa"
)

// TestBuildNilUnit: lowering without a program must fail up front, not deep
// inside the checker.
func TestBuildNilUnit(t *testing.T) {
	if _, err := (symplfied.SearchSpec{}).CheckerSpec(); err == nil {
		t.Error("nil Unit lowered without error")
	}
	if _, err := (symplfied.SearchSpec{Unit: &symplfied.Unit{}}).CheckerSpec(); err == nil {
		t.Error("Unit with nil Program lowered without error")
	}
}

// TestBuildInjectionsOverride: an explicit injection set replaces the
// enumerated class entirely.
func TestBuildInjectionsOverride(t *testing.T) {
	unit := &symplfied.Unit{Program: factorial.Plain()}
	want := []symplfied.Injection{{
		Class: symplfied.ClassRegister,
		PC:    2,
		Loc:   isa.RegLoc(3),
	}}
	spec, err := symplfied.SearchSpec{
		Unit:       unit,
		Input:      []int64{5},
		Class:      symplfied.ClassRegister, // would enumerate many more
		Goal:       symplfied.GoalIncorrectOutput,
		Injections: want,
	}.CheckerSpec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Injections) != 1 || spec.Injections[0] != want[0] {
		t.Errorf("explicit Injections not honored: got %v", spec.Injections)
	}
}

// TestBuildPermanentExpansion: Permanent turns every injection into its
// stuck-at variant, whether enumerated or explicit.
func TestBuildPermanentExpansion(t *testing.T) {
	unit := &symplfied.Unit{Program: factorial.Plain()}
	spec, err := symplfied.SearchSpec{
		Unit:      unit,
		Input:     []int64{5},
		Class:     symplfied.ClassRegister,
		Goal:      symplfied.GoalIncorrectOutput,
		Permanent: true,
	}.CheckerSpec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Injections) == 0 {
		t.Fatal("no injections enumerated")
	}
	for _, inj := range spec.Injections {
		if !inj.Permanent {
			t.Fatalf("injection %s not marked permanent", inj)
		}
	}
}

// TestBuildLimitsAndParallelism: the embedded Limits knobs and the
// Parallelism knob lower onto the checker spec; the flat selectors are
// promotion aliases for the embedded fields.
func TestBuildLimitsAndParallelism(t *testing.T) {
	unit := &symplfied.Unit{Program: factorial.Plain()}
	s := symplfied.SearchSpec{
		Unit:  unit,
		Input: []int64{5},
		Class: symplfied.ClassRegister,
		Goal:  symplfied.GoalIncorrectOutput,
		Limits: symplfied.Limits{
			Watchdog:            123,
			StateBudget:         456,
			MaxFindings:         7,
			PerInjectionTimeout: 8 * time.Second,
		},
		Parallelism: 3,
	}

	// Field promotion: the historical flat names read and write the
	// embedded fields.
	if s.Watchdog != 123 || s.StateBudget != 456 || s.MaxFindings != 7 {
		t.Fatalf("flat selectors do not alias Limits: %+v", s.Limits)
	}
	s.StateBudget = 500

	spec, err := s.CheckerSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Exec.Watchdog != 123 {
		t.Errorf("Watchdog: got %d, want 123", spec.Exec.Watchdog)
	}
	if spec.StateBudget != 500 {
		t.Errorf("StateBudget: got %d, want 500", spec.StateBudget)
	}
	if spec.MaxFindings != 7 {
		t.Errorf("MaxFindings: got %d, want 7", spec.MaxFindings)
	}
	if spec.PerInjectionTimeout != 8*time.Second {
		t.Errorf("PerInjectionTimeout: got %v, want 8s", spec.PerInjectionTimeout)
	}
	if spec.Parallelism != 3 {
		t.Errorf("Parallelism: got %d, want 3", spec.Parallelism)
	}

	// The default: an unset knob stays zero in the lowered spec, which the
	// checker resolves to GOMAXPROCS at run time.
	s.Parallelism = 0
	spec, err = s.CheckerSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Parallelism != 0 {
		t.Errorf("unset Parallelism lowered to %d, want 0 (checker default)", spec.Parallelism)
	}
}
