// Command benchrepro regenerates every table and figure of the paper's
// evaluation and checks each one's qualitative shape.
//
// Usage:
//
//	benchrepro                # all experiments, paper order
//	benchrepro -exp table2    # one experiment
//	benchrepro -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"symplfied/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchrepro:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("benchrepro", flag.ContinueOnError)
	var (
		exp  = fs.String("exp", "all", "experiment id (fig2, fig3, table1, tcas, table2, replace, inventory) or all")
		list = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Desc)
		}
		return nil
	}

	runners := experiments.All()
	if *exp != "all" {
		r, ok := experiments.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		runners = []experiments.Runner{r}
	}

	allOK := true
	for _, r := range runners {
		res, err := r.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Println(res.Render())
		if !res.ShapeOK {
			allOK = false
		}
	}
	if !allOK {
		return fmt.Errorf("one or more shape checks failed")
	}
	return nil
}
