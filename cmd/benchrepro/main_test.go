package main

import (
	"context"
	"testing"
)

func TestList(t *testing.T) {
	if err := run(context.Background(), []string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleExperiment(t *testing.T) {
	for _, exp := range []string{"fig2", "fig3", "table1", "inventory"} {
		if err := run(context.Background(), []string{"-exp", exp}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"-exp", "table99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
