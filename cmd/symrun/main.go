// Command symrun executes a SymPLFIED assembly program concretely on the
// machine model.
//
// Usage:
//
//	symrun -file prog.sym -input 5,3
//	symrun -app factorial -input 5
//	symrun -file prog.s -mips -input 4
//
// The program's output stream, termination status and instruction count are
// printed. With -list-asm the assembled program is printed instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"symplfied"
	"symplfied/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "symrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("symrun", flag.ContinueOnError)
	var (
		file     = fs.String("file", "", "assembly file to execute")
		app      = fs.String("app", "", "built-in application: factorial | factorial-detectors | tcas | replace")
		isMIPS   = fs.Bool("mips", false, "treat -file as MIPS-dialect assembly")
		input    = fs.String("input", "", "comma-separated integer input stream (default: the app's canonical input)")
		watchdog = fs.Int("watchdog", 0, "instruction bound (0: default)")
		list     = fs.Bool("list-asm", false, "print the assembled program instead of running it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	unit, err := cli.LoadUnit(*file, *app, *isMIPS)
	if err != nil {
		return err
	}
	if *list {
		fmt.Print(unit.Program.String())
		return nil
	}
	in, err := cli.ParseInput(*input)
	if err != nil {
		return err
	}
	if in == nil {
		in = cli.DefaultInput(*app)
	}

	res := symplfied.Execute(unit.Program, in, symplfied.ExecConfig{
		Watchdog:  *watchdog,
		Detectors: unit.Detectors,
	})
	fmt.Printf("output: %q\n", res.Output)
	if res.Halted {
		fmt.Printf("halted normally after %d instructions\n", res.Steps)
		return nil
	}
	fmt.Printf("terminated abnormally after %d instructions: %v\n", res.Steps, res.Exception)
	return nil
}
