package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunApp(t *testing.T) {
	if err := run([]string{"-app", "factorial", "-input", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDefaultsInput(t *testing.T) {
	if err := run([]string{"-app", "tcas"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "p.sym")
	if err := os.WriteFile(f, []byte("\tread $1\n\tprint $1\n\thalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", f, "-input", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMIPSFile(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "p.s")
	src := "\t.text\nmain:\n\tli $a0, 7\n\tli $v0, 1\n\tsyscall\n\tli $v0, 10\n\tsyscall\n"
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", f, "-mips"}); err != nil {
		t.Fatal(err)
	}
}

func TestListAsm(t *testing.T) {
	if err := run([]string{"-app", "factorial", "-list-asm"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAbnormalTerminationReported(t *testing.T) {
	// Reading with no input throws; the tool reports it without erroring.
	if err := run([]string{"-app", "factorial"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-app", "bogus"},
		{"-app", "factorial", "-input", "x"},
		{"-file", "/nonexistent.sym"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
