package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"symplfied/internal/dist"
)

func TestArgErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no coordinator", nil},
		{"bad flag", []string{"-nonesuch"}},
		{"unreachable coordinator", []string{"-coordinator", "http://127.0.0.1:1", "-quiet"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := run(ctx, tc.args); err == nil {
				t.Error("expected an error")
			}
		})
	}
}

// TestWorkerDrainsCampaign runs the real binary entry point against an
// in-process coordinator until the campaign completes.
func TestWorkerDrainsCampaign(t *testing.T) {
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Doc: dist.SpecDoc{
		Name:               "factorial-register",
		App:                "factorial",
		Input:              []int64{5},
		Class:              "register",
		Goal:               "incorrect-output",
		Watchdog:           400,
		Tasks:              2,
		MaxFindingsPerTask: 10,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := run(ctx, []string{"-coordinator", srv.URL + "/", "-id", "t", "-quiet"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord.Done():
	default:
		t.Error("worker exited but the campaign is not done")
	}
}
