// Command symworker is a pull-based campaign worker: it joins a coordinator
// started with `symplfied -serve`, claims injection tasks under renewable
// leases, sweeps them symbolically, and posts the per-injection reports back.
// Any number of workers can join and leave; a worker killed mid-task simply
// stops heartbeating and its task is re-served elsewhere.
//
// The campaign kind is the coordinator's choice: against a `symplfied -serve
// -crossval` coordinator the claimed tasks carry injection points instead of
// injections and the worker runs the concrete-vs-symbolic cross-validation
// sweep for them — no flags change on this side.
//
// Usage:
//
//	symworker -coordinator http://host:8080
//	symworker -coordinator http://host:8080 -id node42 -poll 2s
//	symworker -coordinator http://host:8080 -metrics-addr :9091 -progress 5s
//	symworker -coordinator http://host:8080 -summary-cache
//
// -summaries elides explorations that compositional per-function fault
// summaries prove benign; -summary-cache additionally shares the
// content-addressed summary cache fleet-wide through the coordinator's
// /summary endpoints (and implies -summaries).
//
// -metrics-addr serves /metrics, /debug/vars and /debug/pprof for this
// worker (lease/heartbeat/upload health plus the search-engine counters);
// -progress logs a one-line states/s report at the given interval.
//
// SIGINT abandons the current sweep (its lease lapses and the coordinator
// re-serves it) and exits cleanly with the stats so far.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"symplfied/internal/dist"
	"symplfied/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "symworker:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("symworker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (required), e.g. http://host:8080")
		id          = fs.String("id", "", "worker name in leases and fleet status (default: host-pid)")
		poll        = fs.Duration("poll", 0, "wait between claims when every remaining task is leased (0: 500ms)")
		quiet       = fs.Bool("quiet", false, "suppress per-task progress lines")
		metrics     = fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9091 or :0)")
		progress    = fs.Duration("progress", 0, "log a one-line progress report at this interval (0: off)")
		parallel    = fs.Int("parallel", 0, "cores to fan each leased task's injection sweep across (0: all cores, 1: sequential)")
		pruneDead   = fs.Bool("prune-dead", false, "elide explorations of register injections a liveness proof shows benign (verdicts unchanged)")
		merge       = fs.Bool("merge", false, "merge states at post-dominators and fast-forward watchdog-bound loops on this node (verdicts unchanged)")
		summaries   = fs.Bool("summaries", false, "elide explorations compositional per-function fault summaries prove benign (verdicts unchanged)")
		shareCache  = fs.Bool("summary-cache", false, "share the summary cache through the coordinator's /summary endpoints (implies -summaries)")
		campaignID  = fs.String("campaign", "", "serve only this campaign ID on a multi-campaign service (default: the whole fleet)")
		drain       = fs.Bool("drain", false, "exit when the campaign just served completes, instead of rolling into the next open campaign")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		return fmt.Errorf("-coordinator is required (where is `symplfied -serve` running?)")
	}
	if *metrics != "" {
		bound, closeMetrics, err := obs.Serve(*metrics)
		if err != nil {
			return err
		}
		defer closeMetrics()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (pprof at /debug/pprof/)\n", bound)
	}
	obs.StartProgress(ctx, obs.Default(), *progress, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if *id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	var onTask func(campaign, event string, task int)
	if !*quiet {
		onTask = func(campaign, event string, task int) {
			if campaign == "" {
				fmt.Printf("task %d: %s\n", task, event)
				return
			}
			fmt.Printf("campaign %s task %d: %s\n", campaign, task, event)
		}
	}
	stats, err := dist.RunWorker(ctx, dist.WorkerConfig{
		Coordinator: strings.TrimRight(*coordinator, "/"),
		ID:          *id,
		Campaign:    *campaignID,
		Drain:       *drain,
		Poll:        *poll,
		OnTask:      onTask,
		Parallelism: *parallel,
		PruneDead:   *pruneDead,
		MergeStates: *merge,

		UseSummaries:      *summaries || *shareCache,
		ShareSummaryCache: *shareCache,
	})
	if err != nil {
		return err
	}
	fmt.Printf("worker %s: %d claimed, %d completed, %d duplicate, %d abandoned\n",
		*id, stats.Claimed, stats.Completed, stats.Duplicates, stats.Abandoned)
	return nil
}
