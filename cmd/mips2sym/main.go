// Command mips2sym translates MIPS-dialect assembly into SymPLFIED's
// generic assembly language — the paper's architecture front end.
//
// Usage:
//
//	mips2sym prog.s            # translated program on stdout
//	mips2sym -run -input 5 prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"symplfied"
	"symplfied/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mips2sym:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mips2sym", flag.ContinueOnError)
	var (
		doRun = fs.Bool("run", false, "also execute the translated program")
		input = fs.String("input", "", "comma-separated input stream for -run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mips2sym [-run] [-input N,...] file.s")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := symplfied.TranslateMIPS(fs.Arg(0), string(src))
	if err != nil {
		return err
	}
	fmt.Print(prog.String())

	if !*doRun {
		return nil
	}
	in, err := cli.ParseInput(*input)
	if err != nil {
		return err
	}
	res := symplfied.Execute(prog, in, symplfied.ExecConfig{})
	fmt.Printf("-- output: %q\n", res.Output)
	if !res.Halted {
		fmt.Printf("-- terminated abnormally: %v\n", res.Exception)
	}
	return nil
}
