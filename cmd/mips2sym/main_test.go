package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeMIPS(t *testing.T) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "p.s")
	src := "\t.text\nmain:\n\tli $a0, 7\n\tli $v0, 1\n\tsyscall\n\tli $v0, 10\n\tsyscall\n"
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTranslate(t *testing.T) {
	if err := run([]string{writeMIPS(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateAndRun(t *testing.T) {
	if err := run([]string{"-run", writeMIPS(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no file accepted")
	}
	if err := run([]string{"/nonexistent.s"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.s")
	os.WriteFile(bad, []byte("\t.text\nmain:\n\tfoo\n"), 0o644)
	if err := run([]string{bad}); err == nil {
		t.Error("bad MIPS accepted")
	}
	if err := run([]string{"-run", "-input", "zz", writeMIPS(t)}); err == nil {
		t.Error("bad input accepted")
	}
}
