package main

import (
	"context"
	"os"
	"testing"
)

func TestCampaign(t *testing.T) {
	if err := run(context.Background(), []string{"-app", "tcas", "-n", "200"}); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignExplicitRandomPerSite(t *testing.T) {
	if err := run(context.Background(), []string{"-app", "tcas", "-n", "100", "-random-per-site", "2", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignCheckpointAndResume(t *testing.T) {
	journal := t.TempDir() + "/faultsim.jsonl"
	args := []string{"-app", "tcas", "-n", "100", "-checkpoint", journal}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("checkpoint journal not written: %v", err)
	}
	if err := run(context.Background(), append(args, "-resume")); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-cancelled campaign prints the (empty) prefix tallies, no error.
	if err := run(ctx, []string{"-app", "tcas", "-n", "100", "-timeout", "1m"}); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-app", "bogus"},
		{"-app", "tcas", "-input", "x"},
		{"-app", "tcas", "-outputs", "a,b"},
		{"-app", "tcas", "-resume"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
