package main

import "testing"

func TestCampaign(t *testing.T) {
	if err := run([]string{"-app", "tcas", "-n", "200"}); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignExplicitRandomPerSite(t *testing.T) {
	if err := run([]string{"-app", "tcas", "-n", "100", "-random-per-site", "2", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-app", "bogus"},
		{"-app", "tcas", "-input", "x"},
		{"-app", "tcas", "-outputs", "a,b"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
