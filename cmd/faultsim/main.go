// Command faultsim runs the concrete fault-injection baseline (the paper's
// augmented SimpleScalar, Section 6.3): extreme and random values injected
// into the source and destination registers of every instruction, with the
// outcome distribution tallied into Table 2's buckets.
//
// Usage:
//
//	faultsim -app tcas -n 6253
//	faultsim -app tcas -n 41082 -seed 7
//	faultsim -app tcas -n 41082 -checkpoint tcas.jsonl -resume
//
// -timeout bounds the campaign's wall clock, -checkpoint journals each
// completed run to a JSON-lines file, and -resume skips journaled runs.
// SIGINT stops the campaign gracefully, flushing the journal and printing
// the partial tallies.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"symplfied"
	"symplfied/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	var (
		file     = fs.String("file", "", "assembly file to inject into")
		app      = fs.String("app", "tcas", "built-in application")
		isMIPS   = fs.Bool("mips", false, "treat -file as MIPS-dialect assembly")
		input    = fs.String("input", "", "comma-separated input stream (default: the app's canonical input)")
		n        = fs.Int("n", 6253, "campaign size (0: full site cross product)")
		seed     = fs.Int64("seed", 2008, "random value seed")
		randomN  = fs.Int("random-per-site", 0, "random values per injection site (0: scale to reach -n)")
		watchdog = fs.Int("watchdog", 50_000, "instruction bound per run")
		allowed  = fs.String("outputs", "0,1,2", "allowed single-output values for classification")
		timeout  = fs.Duration("timeout", 0, "wall-clock bound for the whole campaign (0: none)")
		ckpt     = fs.String("checkpoint", "", "journal completed runs to this JSON-lines file")
		resume   = fs.Bool("resume", false, "skip runs already recorded in -checkpoint")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	unit, err := cli.LoadUnit(*file, *app, *isMIPS)
	if err != nil {
		return err
	}
	in, err := cli.ParseInput(*input)
	if err != nil {
		return err
	}
	if in == nil {
		in = cli.DefaultInput(*app)
	}
	outs, err := cli.ParseInput(*allowed)
	if err != nil {
		return err
	}

	randomPer := *randomN
	if randomPer == 0 && *n > 0 {
		// Scale the per-site random count so the cross product reaches -n.
		points := len(symplfied.EnumerateInjections(symplfied.ClassRegister, unit.Program))
		if points > 0 {
			randomPer = (*n+points-1)/points - 3
		}
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rep, err := symplfied.CampaignCtx(ctx, symplfied.CampaignSpec{
		Unit:           unit,
		Input:          in,
		Faults:         *n,
		Seed:           *seed,
		RandomPerReg:   randomPer,
		Watchdog:       *watchdog,
		AllowedOutputs: outs,
	}, symplfied.CampaignResilience{
		Checkpoint: *ckpt,
		Resume:     *resume,
	})
	if err != nil {
		return err
	}

	fmt.Printf("campaign: %d concrete injections (seed %d)\n", rep.Total, *seed)
	if rep.Resumed > 0 {
		fmt.Printf("resumed: %d runs restored from %s\n", rep.Resumed, *ckpt)
	}
	fmt.Printf("%-10s %10s %9s\n", "outcome", "count", "percent")
	for _, label := range rep.Labels() {
		fmt.Printf("%-10s %10d %8.2f%%\n", label, rep.Counts[label], rep.Percent(label))
	}
	if rep.Interrupted {
		fmt.Printf("interrupted: tallies cover the completed prefix")
		if *ckpt != "" {
			fmt.Printf("; re-run with -resume to continue from %s", *ckpt)
		}
		fmt.Println()
	}
	return nil
}
