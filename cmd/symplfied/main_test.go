package main

import (
	"os"
	"strings"
	"testing"
)

func TestSequentialSearch(t *testing.T) {
	err := run([]string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "err-output",
		"-watchdog", "400", "-findings", "2", "-traces", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecomposedStudy(t *testing.T) {
	err := run([]string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "incorrect-output",
		"-watchdog", "400", "-tasks", "4", "-budget", "20000",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDetectedGoal(t *testing.T) {
	err := run([]string{
		"-app", "factorial-detectors", "-input", "5",
		"-class", "register", "-goal", "detected", "-watchdog", "400",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNoAffineAblation(t *testing.T) {
	err := run([]string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "err-output",
		"-watchdog", "400", "-no-affine", "-findings", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGraphOutput(t *testing.T) {
	dot := t.TempDir() + "/g.dot"
	err := run([]string{
		"-app", "factorial", "-input", "3",
		"-class", "register", "-goal", "err-output",
		"-watchdog", "200", "-findings", "1",
		"-graph", dot, "-graph-nodes", "500",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph symplfied") {
		t.Errorf("graph file content %q", string(data[:60]))
	}
}

func TestSearchErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-app", "factorial", "-class", "quantum"},
		{"-app", "factorial", "-goal", "nonsense"},
		{"-app", "bogus"},
		{"-app", "factorial", "-input", "zz"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
