package main

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"
)

func TestAnalyzeCleanApp(t *testing.T) {
	for _, args := range [][]string{
		{"-analyze", "-app", "tcas"},
		{"-analyze", "-json", "-app", "replace"},
	} {
		if err := run(context.Background(), args); err != nil {
			t.Errorf("run(%v): %v (benchmark apps lint clean)", args, err)
		}
	}
}

func TestAnalyzeFlagsUnreachableDetector(t *testing.T) {
	// The acceptance example: a deliberately unreachable detector is an
	// error-severity finding, so -analyze must exit nonzero.
	err := run(context.Background(), []string{
		"-analyze", "-file", "../../examples/analyze/unreachable-detector.sym",
	})
	if err == nil {
		t.Fatal("-analyze accepted a program with an unreachable detector")
	}
	if !strings.Contains(err.Error(), "error-severity") {
		t.Errorf("unexpected -analyze failure: %v", err)
	}
}

func TestPruneDeadSearch(t *testing.T) {
	err := run(context.Background(), []string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "err-output",
		"-watchdog", "400", "-findings", "2", "-prune-dead",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPruneDeadStudy(t *testing.T) {
	err := run(context.Background(), []string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "incorrect-output",
		"-watchdog", "400", "-tasks", "4", "-budget", "20000", "-prune-dead",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSequentialSearch(t *testing.T) {
	err := run(context.Background(), []string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "err-output",
		"-watchdog", "400", "-findings", "2", "-traces", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecomposedStudy(t *testing.T) {
	err := run(context.Background(), []string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "incorrect-output",
		"-watchdog", "400", "-tasks", "4", "-budget", "20000",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDetectedGoal(t *testing.T) {
	err := run(context.Background(), []string{
		"-app", "factorial-detectors", "-input", "5",
		"-class", "register", "-goal", "detected", "-watchdog", "400",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNoAffineAblation(t *testing.T) {
	err := run(context.Background(), []string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "err-output",
		"-watchdog", "400", "-no-affine", "-findings", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGraphOutput(t *testing.T) {
	dot := t.TempDir() + "/g.dot"
	err := run(context.Background(), []string{
		"-app", "factorial", "-input", "3",
		"-class", "register", "-goal", "err-output",
		"-watchdog", "200", "-findings", "1",
		"-graph", dot, "-graph-nodes", "500",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph symplfied") {
		t.Errorf("graph file content %q", string(data[:60]))
	}
}

func TestCheckpointedSearchAndResume(t *testing.T) {
	journal := t.TempDir() + "/search.jsonl"
	args := []string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "err-output",
		"-watchdog", "400", "-findings", "2",
		"-checkpoint", journal,
	}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("checkpoint journal not written: %v", err)
	}
	// Resume against the completed journal: every injection is restored.
	if err := run(context.Background(), append(args, "-resume")); err != nil {
		t.Fatal(err)
	}
}

func TestResilienceFlags(t *testing.T) {
	err := run(context.Background(), []string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "err-output",
		"-watchdog", "400", "-findings", "1",
		"-timeout", "1m", "-per-injection-timeout", "10s", "-retries", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSearchErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-app", "factorial", "-class", "quantum"},
		{"-app", "factorial", "-goal", "nonsense"},
		{"-app", "bogus"},
		{"-app", "factorial", "-input", "zz"},
		// Checkpointing runs the single-process campaign runner.
		{"-app", "factorial", "-checkpoint", "x.jsonl", "-tasks", "4"},
		// Resume without a journal path.
		{"-app", "factorial", "-resume"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestServeErrors(t *testing.T) {
	for _, args := range [][]string{
		// Spec document errors surface before the server starts.
		{"-serve", "127.0.0.1:0", "-app", "factorial", "-class", "quantum"},
		{"-serve", "127.0.0.1:0", "-app", "bogus"},
		{"-serve", "127.0.0.1:0", "-app", "factorial", "-resume"},
		// Unusable listen address.
		{"-serve", "256.256.256.256:99999", "-app", "factorial"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestServeShutsDownOnSignal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-serve", "127.0.0.1:0",
			"-app", "factorial", "-input", "5",
			"-class", "register", "-goal", "incorrect-output",
			"-watchdog", "400", "-tasks", "4",
		})
	}()
	time.Sleep(200 * time.Millisecond) // let the listener come up
	cancel()                           // stands in for SIGINT via signal.NotifyContext
	select {
	case err := <-done:
		// No workers joined: the interrupted coordinator must still exit
		// cleanly with a partial (all-incomplete) merged report.
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not shut down on cancellation")
	}
}

func TestCancelledSearchReportsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Pre-cancelled context: the search must still return cleanly with an
	// interrupted (empty) report rather than an error.
	err := run(ctx, []string{
		"-app", "factorial", "-input", "5",
		"-class", "register", "-goal", "err-output", "-watchdog", "400",
	})
	if err != nil {
		t.Fatal(err)
	}
}
