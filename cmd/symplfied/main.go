// Command symplfied runs a symbolic fault-injection search: it enumerates
// all errors of a hardware-error class that satisfy a goal (evade detection
// and cause failure), exactly as the framework's Maude search command did in
// the paper.
//
// Usage:
//
//	symplfied -app tcas -class register -goal wrong-advisory
//	symplfied -app replace -class register -goal incorrect-output -tasks 312
//	symplfied -file prog.sym -input 5 -class control -goal crash -traces 1
//
// With -tasks > 1 the search is decomposed cluster-style (paper Section 6.1)
// over a worker pool; otherwise it runs sequentially.
//
// Long campaigns can be hardened operationally: -timeout bounds the whole
// run, -per-injection-timeout bounds each injection, -checkpoint journals
// completed injections to a JSON-lines file, -resume skips journaled ones,
// and -retries re-runs transient failures with degraded budgets. SIGINT
// stops the search gracefully, flushing the journal and printing the partial
// report, so the campaign can be resumed later.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"symplfied"
	"symplfied/internal/cli"
	"symplfied/internal/query"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "symplfied:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("symplfied", flag.ContinueOnError)
	var (
		file      = fs.String("file", "", "assembly file to analyze")
		app       = fs.String("app", "", "built-in application: factorial | factorial-detectors | tcas | replace")
		isMIPS    = fs.Bool("mips", false, "treat -file as MIPS-dialect assembly")
		input     = fs.String("input", "", "comma-separated input stream (default: the app's canonical input)")
		className = fs.String("class", "register", "error class: register | memory | control | decode")
		goalName  = fs.String("goal", "incorrect-output", "goal: err-output | incorrect-output | wrong-advisory | crash | hang")
		watchdog  = fs.Int("watchdog", 0, "per-path instruction bound (0: default)")
		budget    = fs.Int("budget", 0, "state budget per injection or per task (0: default)")
		findings  = fs.Int("findings", 10, "findings cap per injection/task (0: unlimited)")
		tasks     = fs.Int("tasks", 1, "decompose into N cluster-style tasks")
		workers   = fs.Int("workers", 0, "worker pool size for -tasks (0: GOMAXPROCS)")
		traces    = fs.Int("traces", 0, "print the decision trace of the first N findings")
		noAffine  = fs.Bool("no-affine", false, "disable the affine constraint solver (paper-strict propagation)")
		graphOut  = fs.String("graph", "", "write the search graph of the first finding's injection to this Graphviz file")
		graphMax  = fs.Int("graph-nodes", 0, "node cap for -graph (0: default)")
		timeout   = fs.Duration("timeout", 0, "wall-clock bound for the whole search (0: none)")
		injTO     = fs.Duration("per-injection-timeout", 0, "wall-clock bound per injection (0: none)")
		ckpt      = fs.String("checkpoint", "", "journal completed injections to this JSON-lines file")
		resume    = fs.Bool("resume", false, "skip injections already recorded in -checkpoint")
		retries   = fs.Int("retries", 0, "retry transiently failed injections up to N times with degraded budgets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	unit, err := cli.LoadUnit(*file, *app, *isMIPS)
	if err != nil {
		return err
	}
	in, err := cli.ParseInput(*input)
	if err != nil {
		return err
	}
	if in == nil {
		in = cli.DefaultInput(*app)
	}
	class, ok := query.ClassByName(*className)
	if !ok {
		return fmt.Errorf("unknown error class %q", *className)
	}
	goal, ok := query.GoalByName(*goalName)
	if !ok {
		return fmt.Errorf("unknown goal %q", *goalName)
	}

	if (*ckpt != "" || *resume) && *tasks > 1 {
		return fmt.Errorf("-checkpoint/-resume run the single-process campaign runner and cannot be combined with -tasks > 1")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	spec := symplfied.SearchSpec{
		Unit:                unit,
		Input:               in,
		Class:               class,
		Goal:                goal,
		Watchdog:            *watchdog,
		StateBudget:         *budget,
		MaxFindings:         *findings,
		DisableAffineSolver: *noAffine,
		PerInjectionTimeout: *injTO,
	}

	var found []symplfied.Finding
	if *tasks > 1 {
		reports, sum, err := symplfied.StudyCtx(ctx, spec, symplfied.StudyConfig{
			Tasks:              *tasks,
			TaskStateBudget:    *budget,
			MaxFindingsPerTask: *findings,
			Workers:            *workers,
		})
		if err != nil {
			return err
		}
		fmt.Printf("tasks: %d launched, %d completed (%d empty, %d with findings), %d incomplete\n",
			sum.Tasks, sum.Completed, sum.CompletedEmpty, sum.CompletedWithFinds, sum.Incomplete)
		fmt.Printf("states explored: %d over %d injections\n", sum.TotalStates, sum.TotalInjections)
		if sum.Interrupted > 0 {
			fmt.Printf("interrupted: %d tasks were cut short (partial results above)\n", sum.Interrupted)
		}
		if sum.Panics > 0 {
			fmt.Printf("warning: %d injections panicked and were isolated\n", sum.Panics)
		}
		for _, r := range reports {
			if r.Err != nil {
				return fmt.Errorf("task %d: %w", r.TaskID, r.Err)
			}
		}
		found = sum.Findings
	} else {
		rep, stats, err := symplfied.SearchResilient(ctx, spec, symplfied.RunnerConfig{
			Checkpoint: *ckpt,
			Resume:     *resume,
			Retries:    *retries,
			Workers:    *workers,
		})
		if err != nil {
			return err
		}
		fmt.Printf("injections: %d (%d not activated), states explored: %d\n",
			len(rep.Spec.Injections), rep.NotActivated, rep.TotalStates)
		fmt.Printf("terminal outcomes: %v\n", rep.Outcomes)
		if stats.Resumed > 0 {
			fmt.Printf("resumed: %d injections restored from %s, %d executed\n", stats.Resumed, *ckpt, stats.Executed)
		}
		if stats.Retried > 0 {
			fmt.Printf("retries: %d degraded re-runs\n", stats.Retried)
		}
		if rep.BudgetBlown > 0 {
			fmt.Printf("warning: %d injections exhausted their state budget (findings are a sound subset)\n", rep.BudgetBlown)
		}
		if rep.Panics > 0 || rep.TimedOuts > 0 || rep.Errors > 0 {
			fmt.Printf("warning: %d panicked, %d timed out, %d errored (isolated; verdict downgraded)\n",
				rep.Panics, rep.TimedOuts, rep.Errors)
		}
		if rep.Interrupted {
			fmt.Printf("interrupted: %d injections not attempted", stats.NotAttempted)
			if *ckpt != "" {
				fmt.Printf("; re-run with -resume to continue from %s", *ckpt)
			}
			fmt.Println()
		}
		found = rep.Findings
	}

	fmt.Printf("findings (%s, goal %s): %d\n", class, goal, len(found))
	for i, f := range found {
		fmt.Printf("  [%d] %s\n", i+1, f.Describe())
		if i < *traces {
			fmt.Println("      trace:")
			for _, e := range f.State.Trace.Events() {
				fmt.Printf("        %s\n", e)
			}
		}
	}

	if *graphOut != "" && len(found) > 0 {
		g, err := symplfied.ExploreSearchGraph(spec, found[0].Injection, *graphMax)
		if err != nil {
			return fmt.Errorf("graph: %w", err)
		}
		if err := os.WriteFile(*graphOut, []byte(g.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("search graph (%d states, truncated=%v) written to %s\n",
			len(g.Nodes), g.Truncated, *graphOut)
	}
	return nil
}
