// Command symplfied runs a symbolic fault-injection search: it enumerates
// all errors of a hardware-error class that satisfy a goal (evade detection
// and cause failure), exactly as the framework's Maude search command did in
// the paper.
//
// Usage:
//
//	symplfied -app tcas -class register -goal wrong-advisory
//	symplfied -app replace -class register -goal incorrect-output -tasks 312
//	symplfied -file prog.sym -input 5 -class control -goal crash -traces 1
//
// With -tasks > 1 the search is decomposed cluster-style (paper Section 6.1)
// over a worker pool; otherwise it runs sequentially.
//
// Two static modes run no campaign: -analyze lints the program
// (control-flow, liveness, detector coverage) and exits nonzero on
// error-severity findings; -harden goes further and closes the reported
// coverage gaps — it synthesizes CHECK detectors, splices them in, verifies
// the fault-free run is unchanged, and re-measures detection coverage
// before and after (-harden-gaps caps the targeted gaps, -harden-out writes
// the hardened program + detectors). Both honor -json:
//
//	symplfied -analyze -app tcas
//	symplfied -harden -app tcas -harden-out hardened.sym
//
// With -serve the process becomes a distributed campaign coordinator
// instead of running the search itself: it partitions the injection space
// into -tasks tasks and serves them over HTTP to symworker processes (the
// paper's 150-node cluster harness, networked). -checkpoint/-resume then
// journal completed tasks so a killed coordinator restarts without
// re-running finished work:
//
//	symplfied -serve :8080 -app tcas -class register -goal wrong-advisory -tasks 150 -checkpoint tasks.jsonl
//	symworker -coordinator http://host:8080   (on each worker machine)
//
// Long campaigns can be hardened operationally: -timeout bounds the whole
// run, -per-injection-timeout bounds each injection, -checkpoint journals
// completed injections to a JSON-lines file, -resume skips journaled ones,
// and -retries re-runs transient failures with degraded budgets. SIGINT
// stops the search gracefully, flushing the journal and printing the partial
// report, so the campaign can be resumed later.
//
// Observability: -metrics-addr serves /metrics (Prometheus text),
// /debug/vars (expvar) and /debug/pprof on a side port, and -progress logs a
// one-line report (states/s, frontier, findings, ETA) at the given interval.
// In -serve mode the coordinator's own address also serves these endpoints.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"symplfied"
	"symplfied/internal/analysis"
	"symplfied/internal/cli"
	"symplfied/internal/dist"
	"symplfied/internal/obs"
	"symplfied/internal/query"
	"symplfied/internal/summary"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "symplfied:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("symplfied", flag.ContinueOnError)
	var (
		file      = fs.String("file", "", "assembly file to analyze")
		analyze   = fs.Bool("analyze", false, "statically analyze the program (CFG, liveness, detector coverage) and print diagnostics instead of searching; exits nonzero on error-severity findings")
		jsonOut   = fs.Bool("json", false, "with -analyze or -harden, print the report as JSON")
		hardenRun = fs.Bool("harden", false, "run the detector-hardening pass: find coverage gaps, synthesize CHECK detectors closing them, splice them in, and verify re-coverage with a targeted symbolic sweep plus a crossval spot-check; exits nonzero if verification fails")
		hardenOut = fs.String("harden-out", "", "with -harden, write the hardened unit (detector lines plus assembly) to this file")
		hardenMax = fs.Int("harden-gaps", 0, "with -harden, cap the number of coverage gaps targeted, largest window first (0: all)")
		pruneDead = fs.Bool("prune-dead", false, "elide explorations of register injections a liveness proof shows benign (verdicts unchanged; see SYMPLFIED_CHECK_PRUNING)")
		summaries = fs.Bool("summaries", false, "elide explorations compositional per-function fault summaries prove benign (verdicts unchanged; see SYMPLFIED_CHECK_SUMMARIES)")
		sumCache  = fs.String("summary-cache", "", "persist content-addressed function summaries in this directory, so re-analysis after an edit recomputes only changed functions (implies -summaries)")
		merge     = fs.Bool("merge", false, "merge states rejoining at post-dominators and fast-forward watchdog-bound loops (verdicts unchanged, fewer states; see SYMPLFIED_CHECK_MERGING)")
		app       = fs.String("app", "", "built-in application: factorial | factorial-detectors | tcas | replace")
		isMIPS    = fs.Bool("mips", false, "treat -file as MIPS-dialect assembly")
		input     = fs.String("input", "", "comma-separated input stream (default: the app's canonical input)")
		className = fs.String("class", "register", "error class: register | memory | control | decode")
		goalName  = fs.String("goal", "incorrect-output", "goal: err-output | incorrect-output | wrong-advisory | crash | hang")
		watchdog  = fs.Int("watchdog", 0, "per-path instruction bound (0: default)")
		budget    = fs.Int("budget", 0, "state budget per injection or per task (0: default)")
		findings  = fs.Int("findings", 10, "findings cap per injection/task (0: unlimited)")
		tasks     = fs.Int("tasks", 1, "decompose into N cluster-style tasks")
		workers   = fs.Int("workers", 0, "worker pool size for -tasks (0: GOMAXPROCS)")
		parallel  = fs.Int("parallel", 0, "cores to fan the injection sweep across (0: all cores, 1: sequential; the report is identical either way)")
		traces    = fs.Int("traces", 0, "print the decision trace of the first N findings")
		noAffine  = fs.Bool("no-affine", false, "disable the affine constraint solver (paper-strict propagation)")
		graphOut  = fs.String("graph", "", "write the search graph of the first finding's injection to this Graphviz file")
		graphMax  = fs.Int("graph-nodes", 0, "node cap for -graph (0: default)")
		timeout   = fs.Duration("timeout", 0, "wall-clock bound for the whole search (0: none)")
		injTO     = fs.Duration("per-injection-timeout", 0, "wall-clock bound per injection (0: none)")
		ckpt      = fs.String("checkpoint", "", "journal completed injections (or, with -serve, completed tasks) to this JSON-lines file")
		resume    = fs.Bool("resume", false, "skip injections/tasks already recorded in -checkpoint")
		retries   = fs.Int("retries", 0, "retry transiently failed injections up to N times with degraded budgets")
		xval      = fs.Bool("crossval", false, "cross-validate the symbolic engine against concrete injection (differential testing; -class/-goal unused); exits nonzero on a conclusive SymbolicMiss")
		xvalSeed  = fs.Int64("crossval-seed", 2008, "seed for -crossval's per-site random value derivation")
		xvalRand  = fs.Int("crossval-random", 3, "random values per site for -crossval, on top of the three extremes")
		xvalOut   = fs.String("crossval-report", "", "write the full -crossval mismatch report (JSON) to this file")
		serve     = fs.String("serve", "", "serve the campaign to symworker processes on this address (e.g. :8080) instead of searching locally")
		lease     = fs.Duration("lease", 0, "task lease duration for -serve; a worker silent this long loses its task (0: 30s)")
		storeDir  = fs.String("store", "", "with -serve, run the multi-tenant campaign service over this durable store directory: every open campaign is resumed from it on start, and new campaigns can be POSTed to /v1/campaigns")
		tenant    = fs.String("tenant", "", "with -serve -store, the tenant owning the initial campaign (default: \"default\")")
		priority  = fs.Int("priority", 0, "with -serve -store, the initial campaign's dispatch priority (higher is served first)")
		maxLeased = fs.Int("max-leased", 0, "with -serve -store, cap on tasks one tenant may hold leased fleet-wide (0: unlimited)")
		maxQueued = fs.Int("max-queued", 0, "with -serve -store, cap on open campaigns per tenant (0: unlimited)")
		campaigns = fs.String("campaigns", "", "list the campaigns on a running service at this base URL (e.g. http://host:8080) and exit")
		metrics   = fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090 or :0)")
		progress  = fs.Duration("progress", 0, "log a one-line progress report at this interval (e.g. 2s; 0: off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *campaigns != "" {
		return listCampaigns(ctx, os.Stdout, *campaigns)
	}
	if *storeDir != "" && *serve == "" {
		return fmt.Errorf("-store requires -serve (it is the service's durable campaign store)")
	}
	if *storeDir != "" && (*ckpt != "" || *resume) {
		return fmt.Errorf("-store and -checkpoint/-resume are mutually exclusive: the store journals every campaign and always resumes open ones")
	}

	if *metrics != "" {
		bound, closeMetrics, err := obs.Serve(*metrics)
		if err != nil {
			return err
		}
		defer closeMetrics()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (pprof at /debug/pprof/)\n", bound)
	}
	obs.StartProgress(ctx, obs.Default(), *progress, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})

	in, err := cli.ParseInput(*input)
	if err != nil {
		return err
	}
	if in == nil {
		in = cli.DefaultInput(*app)
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	useSummaries := *summaries || *sumCache != ""
	var summaryCache *symplfied.SummaryCache
	if *sumCache != "" {
		store, err := symplfied.OpenSummaryDiskStore(*sumCache)
		if err != nil {
			return err
		}
		defer store.Close()
		summaryCache = symplfied.NewSummaryCache(0, store)
	} else if useSummaries {
		summaryCache = symplfied.NewSummaryCache(0, nil)
	}

	if *analyze {
		unit, err := cli.LoadUnit(*file, *app, *isMIPS)
		if err != nil {
			return err
		}
		return runAnalyze(os.Stdout, unit, *jsonOut)
	}

	if *hardenRun {
		unit, err := cli.LoadUnit(*file, *app, *isMIPS)
		if err != nil {
			return err
		}
		return runHarden(ctx, os.Stdout, unit, in, symplfied.HardenOptions{
			MaxGaps:      *hardenMax,
			StateBudget:  *budget,
			Watchdog:     *watchdog,
			CrossvalSeed: *xvalSeed,
			Parallelism:  *parallel,
		}, *jsonOut, *hardenOut)
	}

	if *serve != "" {
		doc := dist.SpecDoc{
			Name:                *app,
			App:                 *app,
			Input:               in,
			Class:               *className,
			Goal:                *goalName,
			Watchdog:            *watchdog,
			Tasks:               *tasks,
			TaskStateBudget:     *budget,
			MaxFindingsPerTask:  *findings,
			PerInjectionTimeout: *injTO,
			DisableAffineSolver: *noAffine,
		}
		if *xval {
			doc.Crossval = true
			doc.Seed = *xvalSeed
			doc.RandomPerReg = *xvalRand
		}
		if *file != "" {
			src, err := os.ReadFile(*file)
			if err != nil {
				return err
			}
			doc.Name, doc.Source, doc.MIPS = *file, string(src), *isMIPS
		}
		if *storeDir != "" {
			var initial *dist.SpecDoc
			if *app != "" || *file != "" {
				initial = &doc
			}
			return serveService(ctx, *serve, *storeDir, initial, serviceOptions{
				Lease:     *lease,
				Tenant:    *tenant,
				Priority:  *priority,
				MaxLeased: *maxLeased,
				MaxQueued: *maxQueued,
				Traces:    *traces,
				XvalOut:   *xvalOut,
			}, summaryCache)
		}
		return serveCampaign(ctx, *serve, doc, *lease, *ckpt, *resume, *traces, *xvalOut, summaryCache)
	}

	if *xval {
		unit, err := cli.LoadUnit(*file, *app, *isMIPS)
		if err != nil {
			return err
		}
		rep, err := symplfied.CrossValidateCtx(ctx, symplfied.CrossvalSpec{
			Program:         unit.Program,
			Detectors:       unit.Detectors,
			Input:           in,
			Watchdog:        *watchdog,
			Seed:            *xvalSeed,
			RandomPerReg:    *xvalRand,
			StateBudget:     *budget,
			PerTrialTimeout: *injTO,
			Retries:         *retries,
		}, symplfied.CrossvalConfig{
			Parallelism: *parallel,
			Checkpoint:  *ckpt,
			Resume:      *resume,
		})
		if err != nil {
			return err
		}
		return reportCrossval(rep, *xvalOut, *ckpt)
	}

	unit, err := cli.LoadUnit(*file, *app, *isMIPS)
	if err != nil {
		return err
	}
	class, ok := query.ClassByName(*className)
	if !ok {
		return fmt.Errorf("unknown error class %q", *className)
	}
	goal, ok := query.GoalByName(*goalName)
	if !ok {
		return fmt.Errorf("unknown goal %q", *goalName)
	}

	if (*ckpt != "" || *resume) && *tasks > 1 {
		return fmt.Errorf("-checkpoint/-resume run the single-process campaign runner and cannot be combined with -tasks > 1")
	}

	spec := symplfied.SearchSpec{
		Unit:  unit,
		Input: in,
		Class: class,
		Goal:  goal,
		Limits: symplfied.Limits{
			Watchdog:            *watchdog,
			StateBudget:         *budget,
			MaxFindings:         *findings,
			PerInjectionTimeout: *injTO,
		},
		Parallelism:         *parallel,
		DisableAffineSolver: *noAffine,
		PruneDeadInjections: *pruneDead,
		UseSummaries:        useSummaries,
		SummaryCache:        summaryCache,
		MergeStates:         *merge,
	}

	var found []symplfied.Finding
	if *tasks > 1 {
		reports, sum, err := symplfied.StudyCtx(ctx, spec, symplfied.StudyConfig{
			Tasks:               *tasks,
			TaskStateBudget:     *budget,
			MaxFindingsPerTask:  *findings,
			Workers:             *workers,
			Parallelism:         *parallel,
			PruneDeadInjections: *pruneDead,
			UseSummaries:        useSummaries,
			SummaryCache:        summaryCache,
			MergeStates:         *merge,
		})
		if err != nil {
			return err
		}
		fmt.Printf("tasks: %d launched, %d completed (%d empty, %d with findings), %d incomplete\n",
			sum.Tasks, sum.Completed, sum.CompletedEmpty, sum.CompletedWithFinds, sum.Incomplete)
		fmt.Printf("states explored: %d over %d injections\n", sum.TotalStates, sum.TotalInjections)
		if sum.Summarized > 0 {
			fmt.Printf("summarized: %d injections proven benign by compositional summaries (explorations elided; verdicts unchanged)\n",
				sum.Summarized)
		}
		if sum.Interrupted > 0 {
			fmt.Printf("interrupted: %d tasks were cut short (partial results above)\n", sum.Interrupted)
		}
		if sum.Panics > 0 {
			fmt.Printf("warning: %d injections panicked and were isolated\n", sum.Panics)
		}
		for _, r := range reports {
			if r.Err != nil {
				return fmt.Errorf("task %d: %w", r.TaskID, r.Err)
			}
		}
		found = sum.Findings
	} else {
		rep, stats, err := symplfied.SearchResilient(ctx, spec, symplfied.RunnerConfig{
			Checkpoint: *ckpt,
			Resume:     *resume,
			Retries:    *retries,
			Workers:    *workers,
		})
		if err != nil {
			return err
		}
		fmt.Printf("injections: %d (%d not activated), states explored: %d\n",
			len(rep.Spec.Injections), rep.NotActivated, rep.TotalStates)
		fmt.Printf("terminal outcomes: %v\n", rep.Outcomes)
		if rep.PrunedInjections > 0 {
			fmt.Printf("pruned: %d injections proven benign by liveness (explorations elided; verdicts unchanged)\n",
				rep.PrunedInjections)
		}
		if rep.SummarizedInjections > 0 {
			fmt.Printf("summarized: %d injections proven benign by compositional summaries (explorations elided; verdicts unchanged)\n",
				rep.SummarizedInjections)
		}
		if stats.Resumed > 0 {
			fmt.Printf("resumed: %d injections restored from %s, %d executed\n", stats.Resumed, *ckpt, stats.Executed)
		}
		if stats.Retried > 0 {
			fmt.Printf("retries: %d degraded re-runs\n", stats.Retried)
		}
		if rep.BudgetBlown > 0 {
			fmt.Printf("warning: %d injections exhausted their state budget (findings are a sound subset)\n", rep.BudgetBlown)
		}
		if rep.Panics > 0 || rep.TimedOuts > 0 || rep.Errors > 0 {
			fmt.Printf("warning: %d panicked, %d timed out, %d errored (isolated; verdict downgraded)\n",
				rep.Panics, rep.TimedOuts, rep.Errors)
		}
		if rep.Interrupted {
			fmt.Printf("interrupted: %d injections not attempted", stats.NotAttempted)
			if *ckpt != "" {
				fmt.Printf("; re-run with -resume to continue from %s", *ckpt)
			}
			fmt.Println()
		}
		found = rep.Findings
	}

	fmt.Printf("findings (%s, goal %s): %d\n", class, goal, len(found))
	printFindings(found, *traces)

	if *graphOut != "" && len(found) > 0 {
		g, err := symplfied.ExploreSearchGraphCtx(ctx, spec, found[0].Injection, *graphMax)
		if err != nil {
			return fmt.Errorf("graph: %w", err)
		}
		if err := os.WriteFile(*graphOut, []byte(g.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("search graph (%d states, truncated=%v) written to %s\n",
			len(g.Nodes), g.Truncated, *graphOut)
	}
	return nil
}

// funcInfo is the -analyze view of one discovered function: its extent, its
// call structure, and the content-addressed key its fault summary caches
// under (internal/summary). Keys are canonical over the function body and
// its detector lines, so two -analyze runs agree on them exactly when the
// code agrees.
type funcInfo struct {
	Name         string
	Entry        int
	Size         int
	Exits        []int  `json:",omitempty"`
	Calls        []int  `json:",omitempty"` // call-site pcs, in body order
	Opaque       bool   `json:",omitempty"`
	OpaqueReason string `json:",omitempty"`
	Key          string
}

// blockInfo is the -analyze rendering of one basic block: its extent, its
// successors, and where its diverged paths rejoin (the immediate
// post-dominator pc, -1 for the virtual exit).
type blockInfo struct {
	Start, End int
	Succs      []int `json:",omitempty"`
	Dynamic    bool  `json:",omitempty"`
	IPostDom   int
	MergePoint bool `json:",omitempty"`
}

// runAnalyze is the -analyze mode: CFG + liveness + detector-coverage lint
// (internal/analysis) over the loaded program, plus the function partition
// with summary cache keys (internal/summary), printed human-readably or as
// JSON. Error-severity findings (unreachable detectors, unknown detector
// IDs, control falling off the end, invalid branch targets) make the exit
// status nonzero, so the lint gates CI the way `go vet` does.
func runAnalyze(w io.Writer, unit *symplfied.Unit, jsonOut bool) error {
	diags := analysis.Lint(unit.Program, unit.Detectors)
	errs, warns := analysis.Summary(diags)
	a := analysis.Analyze(unit.Program, unit.Detectors)
	blocks := make([]blockInfo, len(a.CFG.Blocks))
	for bi, b := range a.CFG.Blocks {
		ip := -1
		if a.PostDom.IPDom[bi] >= 0 {
			ip = a.CFG.Blocks[a.PostDom.IPDom[bi]].Start
		}
		blocks[bi] = blockInfo{
			Start:      b.Start,
			End:        b.End,
			Succs:      b.Succs,
			Dynamic:    b.DynamicSucc,
			IPostDom:   ip,
			MergePoint: a.PostDom.MergeBlock[bi],
		}
	}
	reg := obs.Default()
	reg.Counter(obs.MLintDiags, obs.L("severity", "error")).Add(int64(errs))
	reg.Counter(obs.MLintDiags, obs.L("severity", "warning")).Add(int64(warns))

	set := summary.Build(unit.Program, unit.Detectors, nil)
	funcs := make([]funcInfo, 0, len(set.Funcs.Funcs))
	for i, f := range set.Funcs.Funcs {
		fi := funcInfo{
			Name:         f.Name,
			Entry:        f.Entry,
			Size:         len(f.Body),
			Exits:        f.Exits,
			Opaque:       f.Opaque,
			OpaqueReason: f.OpaqueReason,
			Key:          set.Summaries()[i].Key,
		}
		for _, c := range f.Calls {
			fi.Calls = append(fi.Calls, c.PC)
		}
		funcs = append(funcs, fi)
	}

	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Program     string
			Errors      int
			Warnings    int
			Diagnostics []analysis.Diag
			Functions   []funcInfo
			Blocks      []blockInfo
		}{unit.Program.Name, errs, warns, diags, funcs, blocks}); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s\n", unit.Program.Name, d)
		}
		fmt.Fprintf(w, "%s: %d instructions analyzed, %d errors, %d warnings\n",
			unit.Program.Name, unit.Program.Len(), errs, warns)
		fmt.Fprintf(w, "%s: %d functions discovered\n", unit.Program.Name, len(funcs))
		for _, f := range funcs {
			fmt.Fprintf(w, "  %s @%d: %d instrs, %d exits, %d calls, key %s",
				f.Name, f.Entry, f.Size, len(f.Exits), len(f.Calls), f.Key)
			if f.Opaque {
				fmt.Fprintf(w, " (opaque: %s)", f.OpaqueReason)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s: %d basic blocks\n", unit.Program.Name, len(blocks))
		for bi, b := range blocks {
			ipdom := "exit"
			if b.IPostDom >= 0 {
				ipdom = fmt.Sprintf("@%d", b.IPostDom)
			}
			succs := fmt.Sprint(b.Succs)
			if b.Dynamic {
				succs = "dynamic"
			}
			fmt.Fprintf(w, "  block %d [%d,%d) succs=%s ipdom=%s", bi, b.Start, b.End, succs, ipdom)
			if b.MergePoint {
				fmt.Fprint(w, " merge-point")
			}
			fmt.Fprintln(w)
		}
	}
	if errs > 0 {
		return fmt.Errorf("analysis found %d error-severity finding(s)", errs)
	}
	return nil
}

// runHarden is the -harden mode: the detector-hardening compiler pass
// (internal/harden) over the loaded unit — coverage-gap analysis, CHECK
// synthesis, splice, fault-free gate, targeted before/after sweeps and a
// crossval spot-check — printed human-readably or as JSON, with the hardened
// unit optionally written out as assembly.
func runHarden(ctx context.Context, w io.Writer, unit *symplfied.Unit, input []int64,
	opt symplfied.HardenOptions, jsonOut bool, outPath string) error {

	res, err := symplfied.HardenCtx(ctx, unit, input, opt)
	if err != nil {
		return err
	}

	if outPath != "" {
		var b strings.Builder
		for _, d := range res.Detectors.All() {
			fmt.Fprintf(&b, "%s\n", d)
		}
		b.WriteString(res.Hardened.String())
		if err := os.WriteFile(outPath, []byte(b.String()), 0o644); err != nil {
			return err
		}
	}

	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(w, "%s: %d coverage gaps, %d targeted, %d hardened (%d detectors synthesized, %d instructions inserted)\n",
			res.Program, res.GapsFound, res.GapsTargeted, res.GapsHardened, res.Synthesized, res.Inserted)
		for _, g := range res.Gaps {
			if g.Dropped != "" {
				fmt.Fprintf(w, "  gap @%d %s (%d-site window, escapes to %s @%d): dropped: %s\n",
					g.Gap.DefPC, g.Gap.Reg, len(g.Gap.Window), g.Gap.Kind, g.Gap.EscapePC, g.Dropped)
				continue
			}
			fmt.Fprintf(w, "  gap @%d %s (%d-site window, escapes to %s @%d): %s: %s\n",
				g.Gap.DefPC, g.Gap.Reg, len(g.Gap.Window), g.Gap.Kind, g.Gap.EscapePC,
				g.Strategy, strings.Join(g.Detectors, "; "))
		}
		fmt.Fprintf(w, "%s: fault-free run preserved (output %q, %d steps); residual gaps %d (was %d)\n",
			res.Program, res.FaultFreeOutput, res.FaultFreeSteps, res.ResidualGaps, res.GapsFound)
		if len(res.Sites) > 0 {
			fmt.Fprintf(w, "%s: targeted sweep over %d sites: detected %d -> %d, undetected corruptions %d -> %d\n",
				res.Program, len(res.Sites), res.BeforeDetected, res.AfterDetected,
				res.BeforeUndetected, res.AfterUndetected)
		}
		if res.Crossval != nil {
			fmt.Fprintf(w, "%s: %s\n", res.Program, res.Crossval.Summary())
		}
	}
	if outPath != "" {
		fmt.Fprintf(w, "hardened unit written to %s\n", outPath)
	}
	return nil
}

// reportCrossval prints a cross-validation report, optionally writes the full
// JSON, and makes a conclusive SymbolicMiss the exit status.
func reportCrossval(rep *symplfied.CrossvalReport, out, ckpt string) error {
	fmt.Println(rep.Summary())
	if rep.Resumed > 0 {
		fmt.Printf("resumed: %d points restored from %s\n", rep.Resumed, ckpt)
	}
	if rep.Interrupted {
		fmt.Printf("interrupted: partial report")
		if ckpt != "" {
			fmt.Printf("; re-run with -resume to continue from %s", ckpt)
		}
		fmt.Println()
	}
	for i := range rep.Mismatches {
		m := &rep.Mismatches[i]
		if m.Class == symplfied.CrossvalSymbolicMiss {
			status := "CONCLUSIVE"
			if m.Inconclusive {
				status = "inconclusive (symbolic exploration incomplete)"
			}
			fmt.Printf("  symbolic-miss [%s]: %s\n", status, m.Repro)
		}
	}
	if out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("full report written to %s\n", out)
	}
	if !rep.Sound() {
		return fmt.Errorf("cross-validation found conclusive SymbolicMiss mismatches: the symbolic engine is unsound on this campaign")
	}
	return nil
}

// printFindings lists findings, with decision traces for the first n.
func printFindings(found []symplfied.Finding, n int) {
	for i, f := range found {
		fmt.Printf("  [%d] %s\n", i+1, f.Describe())
		if i < n {
			fmt.Println("      trace:")
			for _, e := range f.TraceEvents() {
				fmt.Printf("        %s\n", e)
			}
		}
	}
}

// listCampaigns is the -campaigns subcommand: list every campaign on a
// running service and exit.
func listCampaigns(ctx context.Context, w io.Writer, base string) error {
	cl := dist.NewClient(strings.TrimRight(base, "/"), nil)
	list, err := cl.Campaigns(ctx)
	if err != nil {
		return err
	}
	if len(list.Campaigns) == 0 {
		fmt.Fprintln(w, "no campaigns registered")
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tTENANT\tPRIO\tSTATE\tTASKS\tCACHED\tVERDICT\tFINGERPRINT")
	for _, ci := range list.Campaigns {
		fp := ci.Fingerprint
		if len(fp) > 12 {
			fp = fp[:12]
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%d/%d\t%d\t%s\t%s\n",
			ci.ID, ci.Tenant, ci.Priority, ci.State, ci.Done, ci.Total, ci.FromCache, ci.Verdict, fp)
	}
	return tw.Flush()
}

// serviceOptions carries the -serve -store service flags.
type serviceOptions struct {
	Lease     time.Duration
	Tenant    string
	Priority  int
	MaxLeased int
	MaxQueued int
	Traces    int
	XvalOut   string
}

// serveService runs the multi-tenant campaign service: a durable store-backed
// registry serving the versioned /v1 API (plus the legacy root aliases) to
// symworker fleets. Every open campaign in the store is resumed on start;
// the initial document (when the command line names an app or file) is
// registered as a campaign unless an open campaign with the same fingerprint
// is already stored — so killing and restarting the service with the same
// flags resumes rather than duplicates. With an initial campaign the service
// exits once every campaign drains, printing the initial campaign's merged
// report; started bare it serves until interrupted.
func serveService(ctx context.Context, addr, storeDir string, initialDoc *dist.SpecDoc,
	opt serviceOptions, summaryCache *symplfied.SummaryCache) error {

	// Bind before building the registry: resuming large stores can take a
	// while, and workers started in that window should queue in the accept
	// backlog rather than get connection-refused.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	store, err := dist.NewDiskStore(storeDir)
	if err != nil {
		ln.Close()
		return err
	}
	reg, err := dist.NewRegistry(dist.RegistryConfig{
		Store:        store,
		Lease:        opt.Lease,
		Quotas:       dist.Quotas{MaxOpenCampaigns: opt.MaxQueued, MaxLeasedTasks: opt.MaxLeased},
		SummaryCache: summaryCache,
	})
	if err != nil {
		ln.Close()
		store.Close()
		return err
	}

	var initial *dist.Coordinator
	if initialDoc != nil {
		fp, err := dist.DocFingerprint(*initialDoc)
		if err != nil {
			ln.Close()
			reg.Close()
			return err
		}
		for _, info := range reg.List().Campaigns {
			if info.Fingerprint != fp || info.State == dist.StateCancelled {
				continue
			}
			if c, ok := reg.Get(info.ID); ok {
				initial = c
				fmt.Printf("campaign %s resumed from %s (%d/%d tasks settled)\n",
					info.ID, storeDir, info.Done, info.Total)
				break
			}
		}
		if initial == nil {
			c, err := reg.Create(*initialDoc, opt.Tenant, opt.Priority)
			if err != nil {
				ln.Close()
				reg.Close()
				return err
			}
			initial = c
			fmt.Printf("campaign %s registered\n", c.ID())
		}
	}

	srv := &http.Server{Handler: dist.NewService(reg).Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	fmt.Printf("campaign service on %s, store %s\n", ln.Addr(), storeDir)
	fmt.Printf("point workers here: symworker -coordinator http://%s\n", ln.Addr())
	fmt.Printf("list campaigns:     symplfied -campaigns http://%s\n", ln.Addr())

	interrupted := false
	if initial != nil {
		drained := make(chan struct{})
		go func() {
			if reg.WaitDrained(ctx) == nil {
				close(drained)
			}
		}()
		select {
		case <-drained:
			// Drain window: workers whose next claim raced the final
			// completion must hear Done before the listener goes away.
			select {
			case <-time.After(2 * time.Second):
			case <-ctx.Done():
			}
		case <-ctx.Done():
			interrupted = true
		case err := <-serveErr:
			reg.Close()
			return err
		}
	} else {
		select {
		case <-ctx.Done():
			interrupted = true
		case err := <-serveErr:
			reg.Close()
			return err
		}
	}

	parent := ctx
	grace := 10 * time.Minute
	if interrupted {
		parent = context.Background()
		grace = 5 * time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(parent, grace)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	if err := reg.Close(); err != nil {
		return err
	}

	for _, ci := range reg.List().Campaigns {
		fmt.Printf("campaign %s (%s, priority %d): %s, %d/%d tasks, %d from cache, verdict %s\n",
			ci.ID, ci.Tenant, ci.Priority, ci.State, ci.Done, ci.Total, ci.FromCache, ci.Verdict)
	}
	if initial == nil {
		return nil
	}
	merged := initial.Report()
	sum := merged.Summary
	fmt.Printf("tasks: %d launched, %d completed (%d empty, %d with findings), %d incomplete\n",
		sum.Tasks, sum.Completed, sum.CompletedEmpty, sum.CompletedWithFinds, sum.Incomplete)
	if merged.Crossval != nil {
		return reportCrossval(merged.Crossval, opt.XvalOut, "")
	}
	fmt.Printf("states explored: %d over %d injections\n", sum.TotalStates, sum.TotalInjections)
	if sum.Panics > 0 {
		fmt.Printf("warning: %d injections panicked and were isolated\n", sum.Panics)
	}
	if interrupted && !merged.Complete {
		st := initial.Status()
		fmt.Printf("interrupted: %d tasks unfinished; restart with the same -store to resume\n",
			st.Queued+st.Leased)
	}
	fmt.Printf("findings (%s, goal %s): %d\n", initialDoc.Class, initialDoc.Goal, len(sum.Findings))
	printFindings(sum.Findings, opt.Traces)
	return nil
}

// serveCampaign runs the distributed-campaign coordinator: it partitions the
// injection space, serves tasks to symworker processes over HTTP, and prints
// the merged report once every task settles. SIGINT shuts the server down
// gracefully; with -checkpoint the settled tasks are journaled so a restart
// with -resume re-serves only the unfinished ones.
func serveCampaign(ctx context.Context, addr string, doc dist.SpecDoc, lease time.Duration,
	ckpt string, resume bool, traces int, xvalOut string, summaryCache *symplfied.SummaryCache) error {

	// Bind before building the coordinator: restoring a large task journal
	// can take a while, and workers started in that window should queue in
	// the accept backlog rather than get connection-refused.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Doc:        doc,
		Lease:      lease,
		Checkpoint: ckpt,
		Resume:     resume,
		// With -summary-cache the fleet-shared cache served on the /summary
		// endpoints is disk-backed, so it survives coordinator restarts.
		SummaryCache: summaryCache,
	})
	if err != nil {
		ln.Close()
		return err
	}
	defer coord.Close()
	srv := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	st := coord.Status()
	fmt.Printf("coordinator on %s: %d tasks (%d already settled), lease %s\n",
		ln.Addr(), st.Total, st.Done, coord.SpecResponse().Lease)
	fmt.Printf("point workers here: symworker -coordinator http://%s\n", ln.Addr())

	interrupted := false
	select {
	case <-coord.Done():
		// Drain window: workers whose next claim raced the final completion
		// must hear Done (and exit cleanly) before the listener goes away.
		select {
		case <-time.After(2 * time.Second):
		case <-ctx.Done():
		}
	case <-ctx.Done():
		interrupted = true
	case err := <-serveErr:
		return err
	}

	// A completed campaign may still have a straggler mid-upload of a
	// duplicate result (large completion posts take minutes). Shutdown
	// waits for in-flight requests and returns as soon as the last one
	// finishes, so the generous deadline costs nothing in the common case;
	// deriving it from ctx lets an interrupt cut the wait short. An
	// interrupted run shuts down fast — its workers are being interrupted
	// too and abandon their tasks.
	parent := ctx
	grace := 10 * time.Minute
	if interrupted {
		parent = context.Background()
		grace = 5 * time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(parent, grace)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	if err := coord.Close(); err != nil {
		return err
	}

	merged := coord.Report()
	sum := merged.Summary
	fmt.Printf("tasks: %d launched, %d completed (%d empty, %d with findings), %d incomplete\n",
		sum.Tasks, sum.Completed, sum.CompletedEmpty, sum.CompletedWithFinds, sum.Incomplete)
	if merged.Crossval != nil {
		// Cross-validation campaign: the pooled crossval report carries the
		// per-point interruption/soundness story, so hand off wholesale.
		return reportCrossval(merged.Crossval, xvalOut, ckpt)
	}
	fmt.Printf("states explored: %d over %d injections\n", sum.TotalStates, sum.TotalInjections)
	if sum.Panics > 0 {
		fmt.Printf("warning: %d injections panicked and were isolated\n", sum.Panics)
	}
	if interrupted && !merged.Complete {
		st := coord.Status()
		fmt.Printf("interrupted: %d tasks unfinished", st.Queued+st.Leased)
		if ckpt != "" {
			fmt.Printf("; re-run with -resume to serve only those from %s", ckpt)
		}
		fmt.Println()
	}
	fmt.Printf("findings (%s, goal %s): %d\n", doc.Class, doc.Goal, len(sum.Findings))
	printFindings(sum.Findings, traces)
	return nil
}
