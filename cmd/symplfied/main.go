// Command symplfied runs a symbolic fault-injection search: it enumerates
// all errors of a hardware-error class that satisfy a goal (evade detection
// and cause failure), exactly as the framework's Maude search command did in
// the paper.
//
// Usage:
//
//	symplfied -app tcas -class register -goal wrong-advisory
//	symplfied -app replace -class register -goal incorrect-output -tasks 312
//	symplfied -file prog.sym -input 5 -class control -goal crash -traces 1
//
// With -tasks > 1 the search is decomposed cluster-style (paper Section 6.1)
// over a worker pool; otherwise it runs sequentially.
package main

import (
	"flag"
	"fmt"
	"os"

	"symplfied"
	"symplfied/internal/cli"
	"symplfied/internal/query"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "symplfied:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("symplfied", flag.ContinueOnError)
	var (
		file      = fs.String("file", "", "assembly file to analyze")
		app       = fs.String("app", "", "built-in application: factorial | factorial-detectors | tcas | replace")
		isMIPS    = fs.Bool("mips", false, "treat -file as MIPS-dialect assembly")
		input     = fs.String("input", "", "comma-separated input stream (default: the app's canonical input)")
		className = fs.String("class", "register", "error class: register | memory | control | decode")
		goalName  = fs.String("goal", "incorrect-output", "goal: err-output | incorrect-output | wrong-advisory | crash | hang")
		watchdog  = fs.Int("watchdog", 0, "per-path instruction bound (0: default)")
		budget    = fs.Int("budget", 0, "state budget per injection or per task (0: default)")
		findings  = fs.Int("findings", 10, "findings cap per injection/task (0: unlimited)")
		tasks     = fs.Int("tasks", 1, "decompose into N cluster-style tasks")
		workers   = fs.Int("workers", 0, "worker pool size for -tasks (0: GOMAXPROCS)")
		traces    = fs.Int("traces", 0, "print the decision trace of the first N findings")
		noAffine  = fs.Bool("no-affine", false, "disable the affine constraint solver (paper-strict propagation)")
		graphOut  = fs.String("graph", "", "write the search graph of the first finding's injection to this Graphviz file")
		graphMax  = fs.Int("graph-nodes", 0, "node cap for -graph (0: default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	unit, err := cli.LoadUnit(*file, *app, *isMIPS)
	if err != nil {
		return err
	}
	in, err := cli.ParseInput(*input)
	if err != nil {
		return err
	}
	if in == nil {
		in = cli.DefaultInput(*app)
	}
	class, ok := query.ClassByName(*className)
	if !ok {
		return fmt.Errorf("unknown error class %q", *className)
	}
	goal, ok := query.GoalByName(*goalName)
	if !ok {
		return fmt.Errorf("unknown goal %q", *goalName)
	}

	spec := symplfied.SearchSpec{
		Unit:                unit,
		Input:               in,
		Class:               class,
		Goal:                goal,
		Watchdog:            *watchdog,
		StateBudget:         *budget,
		MaxFindings:         *findings,
		DisableAffineSolver: *noAffine,
	}

	var found []symplfied.Finding
	if *tasks > 1 {
		reports, sum, err := symplfied.Study(spec, symplfied.StudyConfig{
			Tasks:              *tasks,
			TaskStateBudget:    *budget,
			MaxFindingsPerTask: *findings,
			Workers:            *workers,
		})
		if err != nil {
			return err
		}
		fmt.Printf("tasks: %d launched, %d completed (%d empty, %d with findings), %d incomplete\n",
			sum.Tasks, sum.Completed, sum.CompletedEmpty, sum.CompletedWithFinds, sum.Incomplete)
		fmt.Printf("states explored: %d over %d injections\n", sum.TotalStates, sum.TotalInjections)
		for _, r := range reports {
			if r.Err != nil {
				return fmt.Errorf("task %d: %w", r.TaskID, r.Err)
			}
		}
		found = sum.Findings
	} else {
		rep, err := symplfied.Search(spec)
		if err != nil {
			return err
		}
		fmt.Printf("injections: %d (%d not activated), states explored: %d\n",
			len(rep.Spec.Injections), rep.NotActivated, rep.TotalStates)
		fmt.Printf("terminal outcomes: %v\n", rep.Outcomes)
		if rep.BudgetBlown > 0 {
			fmt.Printf("warning: %d injections exhausted their state budget (findings are a sound subset)\n", rep.BudgetBlown)
		}
		found = rep.Findings
	}

	fmt.Printf("findings (%s, goal %s): %d\n", class, goal, len(found))
	for i, f := range found {
		fmt.Printf("  [%d] %s\n", i+1, f.Describe())
		if i < *traces {
			fmt.Println("      trace:")
			for _, e := range f.State.Trace.Events() {
				fmt.Printf("        %s\n", e)
			}
		}
	}

	if *graphOut != "" && len(found) > 0 {
		g, err := symplfied.ExploreSearchGraph(spec, found[0].Injection, *graphMax)
		if err != nil {
			return fmt.Errorf("graph: %w", err)
		}
		if err := os.WriteFile(*graphOut, []byte(g.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("search graph (%d states, truncated=%v) written to %s\n",
			len(g.Nodes), g.Truncated, *graphOut)
	}
	return nil
}
