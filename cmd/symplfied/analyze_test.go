package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"symplfied/internal/cli"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// TestAnalyzeJSONGolden pins the exact shape of `symplfied -analyze -json`:
// field names, ordering, indentation, the function partition and its
// content-addressed summary keys. Scripts parse this output, so a change
// here is an interface change — regenerate deliberately with
// `go test ./cmd/symplfied -run TestAnalyzeJSONGolden -update` and review
// the diff.
func TestAnalyzeJSONGolden(t *testing.T) {
	unit, err := cli.LoadUnit("", "factorial-detectors", false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runAnalyze(&buf, unit, true); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "analyze_factorial_detectors.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-analyze -json output changed (run with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
