package symplfied_test

import (
	"encoding/json"
	"os"
	"sort"
	"testing"

	"symplfied"
	"symplfied/internal/apps/tcas"
	"symplfied/internal/checker"
	"symplfied/internal/detector"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// TestHardenSmokeTCAS is the detector-hardening acceptance gate, on the
// paper's tcas case study:
//
//  1. every coverage gap the pass targets gets at least one synthesized
//     detector, and every synthesized detector round-trips through
//     detector.Parse structurally equal;
//  2. the fault-free run of the hardened unit is output-identical to the
//     seed (advisory 1, the upward RA);
//  3. the targeted symbolic sweep shows strictly fewer undetected
//     corruptions on the hardened unit than on the seed;
//  4. sites the hardening did not touch report byte-identically (activation,
//     terminal tallies, outcomes, finding outputs) on both units, and
//     any site that does differ differs only by corruption flowing into a
//     synthesized check — never by lost coverage;
//  5. the crossval spot-check on the hardened unit reports zero
//     symbolic-miss mismatches.
//
// Set HARDEN_SMOKE_STATS to a path to dump the before/after coverage tallies
// as JSON (the CI harden-smoke job uploads it as an artifact).
func TestHardenSmokeTCAS(t *testing.T) {
	unit := &symplfied.Unit{Program: tcas.Program()}
	input := tcas.UpwardInput().Slice()

	opt := symplfied.HardenOptions{Watchdog: 4_000}
	if testing.Short() {
		opt.MaxGaps = 8
	}
	res, err := symplfied.Harden(unit, input, opt)
	if err != nil {
		t.Fatal(err)
	}

	// (1) Each hardened gap has detectors, and they all round-trip.
	if res.GapsHardened == 0 {
		t.Fatal("no gaps hardened on tcas")
	}
	synth := make(map[int64]bool)
	for _, g := range res.Gaps {
		if g.Dropped != "" {
			continue
		}
		if len(g.Detectors) == 0 {
			t.Errorf("hardened gap @%d %s carries no detector", g.Gap.DefPC, g.Gap.Reg)
		}
		for _, src := range g.Detectors {
			d, err := detector.Parse(src)
			if err != nil {
				t.Fatalf("synthesized %q does not parse: %v", src, err)
			}
			reg, ok := res.Detectors.Lookup(d.ID)
			if !ok || !detector.Equal(d, reg) {
				t.Errorf("synthesized %q does not round-trip to the registered detector", src)
			}
			synth[d.ID] = true
		}
	}

	// (2) The golden run is preserved.
	if res.FaultFreeOutput != "1" {
		t.Fatalf("hardened fault-free output %q, want the upward advisory \"1\"", res.FaultFreeOutput)
	}

	// (3) Strictly fewer undetected corruptions on the targeted sites.
	if res.BeforeUndetected == 0 {
		t.Fatal("seed sweep found no undetected corruption; the gaps were not real")
	}
	if res.AfterUndetected >= res.BeforeUndetected {
		t.Errorf("undetected corruptions %d -> %d, want a strict drop",
			res.BeforeUndetected, res.AfterUndetected)
	}
	if res.AfterDetected <= res.BeforeDetected {
		t.Errorf("detected terminals %d -> %d, want a strict rise",
			res.BeforeDetected, res.AfterDetected)
	}

	// (4) Untouched sites: sample register-injection sites outside every
	// hardened window and sweep them on both units.
	inWindow := make(map[isa.Loc]map[int]bool)
	for _, g := range res.Gaps {
		if g.Dropped != "" {
			continue
		}
		loc := isa.RegLoc(g.Gap.Reg)
		if inWindow[loc] == nil {
			inWindow[loc] = make(map[int]bool)
		}
		for _, w := range g.Gap.Window {
			inWindow[loc][w] = true
		}
	}
	var untouched []faults.Injection
	for _, inj := range faults.RegisterInjectionsUsed(unit.Program) {
		if !inWindow[inj.Loc][inj.PC] {
			untouched = append(untouched, inj)
		}
	}
	stride := len(untouched)/16 + 1
	sampled := make([]faults.Injection, 0, 16)
	for i := 0; i < len(untouched); i += stride {
		sampled = append(sampled, untouched[i])
	}
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4_000
	base := checker.Spec{
		Input:         input,
		Exec:          exec,
		Predicate:     checker.HaltedOutputOtherThan(tcas.UpwardRA),
		DiscardStates: true,
	}
	before := base
	before.Program, before.Injections = unit.Program, sampled
	beforeRep, err := checker.Run(before)
	if err != nil {
		t.Fatal(err)
	}
	after := base
	after.Program, after.Detectors = res.Hardened, res.Detectors
	after.Injections = append(after.Injections, sampled...)
	for i := range after.Injections {
		after.Injections[i].PC = res.PCMap.BlockStart(after.Injections[i].PC)
	}
	afterRep, err := checker.Run(after)
	if err != nil {
		t.Fatal(err)
	}
	identical := 0
	for i, inj := range sampled {
		b, a := beforeRep.PerInjection[i], afterRep.PerInjection[i]
		if sameVerdicts(b, a) {
			identical++
			continue
		}
		// The only admissible difference: the corrupted value flowed into a
		// synthesized check. Detection must credit a synthesized detector,
		// and coverage must not regress.
		credited := false
		for id := range a.DetectorHits {
			if synth[id] {
				credited = true
			}
		}
		if !credited {
			t.Errorf("untouched site %s diverged without a synthesized detector firing:\nseed:     %v %d findings\nhardened: %v %d findings",
				inj, b.Outcomes, len(b.Findings), a.Outcomes, len(a.Findings))
		}
		if len(a.Findings) > len(b.Findings) {
			t.Errorf("site %s: hardening increased silent corruptions %d -> %d",
				inj, len(b.Findings), len(a.Findings))
		}
	}
	if identical == 0 {
		t.Error("no untouched site reported byte-identically; the sample is not exercising the invariance claim")
	}

	// (5) Crossval on the hardened unit: zero symbolic-miss.
	if res.Crossval == nil {
		t.Fatal("crossval spot-check missing")
	}
	if !res.Crossval.Sound() {
		t.Errorf("crossval refuted soundness: %s", res.Crossval.Summary())
	}
	if n := res.Crossval.ByClass["symbolic-miss"]; n != 0 {
		t.Errorf("crossval reports %d symbolic-miss mismatches, want 0", n)
	}

	if path := os.Getenv("HARDEN_SMOKE_STATS"); path != "" {
		stats := struct {
			GapsFound, GapsTargeted, GapsHardened int
			Synthesized, Inserted                 int
			BeforeDetected, AfterDetected         int
			BeforeUndetected, AfterUndetected     int
			ResidualGaps                          int
			UntouchedSampled, UntouchedIdentical  int
			CrossvalPoints, CrossvalTrials        int
		}{
			res.GapsFound, res.GapsTargeted, res.GapsHardened,
			res.Synthesized, res.Inserted,
			res.BeforeDetected, res.AfterDetected,
			res.BeforeUndetected, res.AfterUndetected,
			res.ResidualGaps,
			len(sampled), identical,
			res.Crossval.Points, res.Crossval.Trials,
		}
		b, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// sameVerdicts compares the verdict-bearing fields of two injection reports:
// activation, terminal count, outcome tallies, and the sorted finding
// outputs. States explored and pcs legitimately differ after insertion.
func sameVerdicts(b, a checker.InjectionReport) bool {
	if b.Activated != a.Activated || b.TerminalStates != a.TerminalStates {
		return false
	}
	if len(b.Outcomes) != len(a.Outcomes) {
		return false
	}
	for o, n := range b.Outcomes {
		if a.Outcomes[o] != n {
			return false
		}
	}
	if len(b.Findings) != len(a.Findings) {
		return false
	}
	bo := make([]string, len(b.Findings))
	ao := make([]string, len(a.Findings))
	for i := range b.Findings {
		bo[i], ao[i] = b.Findings[i].Output, a.Findings[i].Output
	}
	sort.Strings(bo)
	sort.Strings(ao)
	for i := range bo {
		if bo[i] != ao[i] {
			return false
		}
	}
	return true
}
