package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a synthetic module; files only need to parse.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, src := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// registrySrc is a minimal well-formed registry: documented, kebab-case,
// and a Diag type for literals to name.
const registrySrc = `// Package analysis hosts the diagnostic registry.
//
// # Diagnostic codes
//
//   - dead-store: a write nothing reads.
//   - bad-target: a branch outside the program.
package analysis

const (
	CodeDeadStore = "dead-store"
	CodeBadTarget = "bad-target"
)

type Diag struct {
	Code    string
	Message string
}
`

func TestCleanTreePasses(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/analysis/analysis.go": registrySrc,
		"internal/analysis/lint.go": `package analysis

func lint() Diag { return Diag{Code: CodeDeadStore, Message: "m"} }
`,
		"internal/report/report.go": `package report

import "symplfied/internal/analysis"

func synth() analysis.Diag { return analysis.Diag{Code: analysis.CodeBadTarget} }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("clean tree flagged: %v", findings)
	}
}

func TestFlagsStringLiteralCode(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/analysis/analysis.go": registrySrc,
		"internal/analysis/lint.go": `package analysis

func lint() Diag { return Diag{Code: "dead-store"} }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "string literal") {
		t.Errorf("want one string-literal finding, got %v", findings)
	}
}

func TestFlagsMissingCodeField(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/analysis/analysis.go": registrySrc,
		"internal/report/report.go": `package report

import "symplfied/internal/analysis"

func synth() analysis.Diag { return analysis.Diag{Message: "m"} }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "without a Code field") {
		t.Errorf("want one missing-Code finding, got %v", findings)
	}
}

func TestFlagsUnregisteredConstant(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/analysis/analysis.go": registrySrc,
		"internal/report/report.go": `package report

import "symplfied/internal/analysis"

const codeLocal = "local-code"

func synth() analysis.Diag { return analysis.Diag{Code: codeLocal} }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "analysis.Code*") {
		t.Errorf("want one unregistered-constant finding, got %v", findings)
	}
}

func TestFlagsBadRegistryEntries(t *testing.T) {
	root := writeTree(t, map[string]string{
		// Not kebab-case, a duplicate value, and a code the doc omits.
		"internal/analysis/analysis.go": `// Package analysis hosts the registry.
//
// # Diagnostic codes
//
//   - dead-store: a write nothing reads.
package analysis

const (
	CodeDeadStore = "dead-store"
	CodeDeadWrite = "dead-store"
	CodeShouty    = "Dead_Store"
)

type Diag struct{ Code string }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	var dup, kebab, undoc bool
	for _, f := range findings {
		dup = dup || strings.Contains(f, "already registered")
		kebab = kebab || strings.Contains(f, "not kebab-case")
		undoc = undoc || strings.Contains(f, "not documented")
	}
	if !dup || !kebab || !undoc {
		t.Errorf("want duplicate+kebab+undocumented findings, got %v", findings)
	}
}

func TestFlagsMissingDocSection(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/analysis/analysis.go": `// Package analysis hosts the registry.
package analysis

const CodeDeadStore = "dead-store"

type Diag struct{ Code string }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	var section bool
	for _, f := range findings {
		section = section || strings.Contains(f, "Diagnostic codes")
	}
	if !section {
		t.Errorf("want a missing-section finding, got %v", findings)
	}
}

func TestExemptions(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/analysis/analysis.go": registrySrc,
		// Tests construct expected diagnostics however reads best.
		"internal/analysis/lint_test.go": `package analysis

func want() Diag { return Diag{Code: "dead-store"} }
`,
		"examples/demo/main.go": `package main

import "symplfied/internal/analysis"

func main() { _ = analysis.Diag{Code: "ad-hoc"} }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("exempt files flagged: %v", findings)
	}
}

func TestRenamedImport(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/analysis/analysis.go": registrySrc,
		"internal/report/report.go": `package report

import lint "symplfied/internal/analysis"

func synth() lint.Diag { return lint.Diag{Code: "raw"} }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "string literal") {
		t.Errorf("want one finding through the renamed import, got %v", findings)
	}
}

func TestRepoIsClean(t *testing.T) {
	// The repository itself must satisfy its own convention. The module
	// root is two directories up from this tool.
	findings, err := check(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("repository violates the diagnostic-code convention:\n%s", strings.Join(findings, "\n"))
	}
}
