// Command diagcodes enforces the diagnostic-code registry convention:
//
//   - internal/analysis owns the registry: every diagnostic code is a
//     top-level Code* string constant. Codes are stable machine-readable
//     identifiers — JSON consumers and CI gates filter on them — so each
//     must be kebab-case, unique, and documented in the package doc's
//     "# Diagnostic codes" section.
//   - Every analysis.Diag composite literal must populate its Code field
//     from a registered Code* constant. A string literal there mints an
//     undocumented ad-hoc code that silently escapes the registry; a Diag
//     without a Code field is invisible to code-based filtering.
//
// The checker is deliberately syntactic — stdlib go/parser only, no type
// information — which the repository's layout makes sound enough: the Diag
// type lives in exactly one package, and every import of repository code
// uses the module path prefix. Test files, examples/ and tools/ are exempt.
//
// Usage:
//
//	diagcodes [module root]
//
// Exit status 1 if any violation is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const modulePath = "symplfied"

// registryDir is the package owning the Diag type and its code registry,
// relative to the module root.
const registryDir = "internal/analysis"

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagcodes:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "diagcodes: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}

// parsedFile is one repository source file plus its position table.
type parsedFile struct {
	path string // slash path relative to the module root
	file *ast.File
	fset *token.FileSet
}

// check walks the module rooted at root and returns one formatted finding
// per convention violation, sorted by position.
func check(root string) ([]string, error) {
	files, err := parseTree(root)
	if err != nil {
		return nil, err
	}

	var findings []string
	report := func(fset *token.FileSet, pos token.Pos, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}

	// Pass 1: collect the registry from internal/analysis — every top-level
	// Code* string constant — and validate it: kebab-case values, no
	// duplicates, each value named in the package doc.
	registry := map[string]string{} // const name -> code value
	byValue := map[string]string{}  // code value -> first const name
	var pkgDoc strings.Builder
	for _, pf := range files {
		if !strings.HasPrefix(pf.path, registryDir+"/") || strings.HasSuffix(pf.path, "_test.go") {
			continue
		}
		if pf.file.Doc != nil {
			pkgDoc.WriteString(pf.file.Doc.Text())
		}
		for _, decl := range pf.file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Code") || len(name.Name) == len("Code") {
						continue
					}
					if i >= len(vs.Values) {
						report(pf.fset, name.Pos(), "registry constant %s has no explicit string value", name.Name)
						continue
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						report(pf.fset, name.Pos(), "registry constant %s must be a string literal", name.Name)
						continue
					}
					value := strings.Trim(lit.Value, `"`)
					if !kebabCase(value) {
						report(pf.fset, name.Pos(), "diagnostic code %q is not kebab-case", value)
					}
					if prev, dup := byValue[value]; dup {
						report(pf.fset, name.Pos(), "diagnostic code %q already registered as %s", value, prev)
					} else {
						byValue[value] = name.Name
					}
					registry[name.Name] = value
				}
			}
		}
	}
	if len(registry) == 0 {
		return nil, fmt.Errorf("no Code* constants found under %s", registryDir)
	}
	doc := pkgDoc.String()
	if !strings.Contains(doc, "# Diagnostic codes") {
		findings = append(findings, fmt.Sprintf(`%s: package doc lacks a "# Diagnostic codes" section`, registryDir))
	}
	for _, name := range sortedKeys(registry) {
		if !strings.Contains(doc, registry[name]) {
			findings = append(findings, fmt.Sprintf("%s: diagnostic code %q (%s) is not documented in the package doc",
				registryDir, registry[name], name))
		}
	}

	// Pass 2: every Diag composite literal — Diag{...} inside the registry
	// package, analysis.Diag{...} elsewhere — takes its Code field from a
	// registered constant.
	for _, pf := range files {
		if exempt(pf.path) {
			continue
		}
		inRegistry := strings.HasPrefix(pf.path, registryDir+"/")
		importNames := analysisImportNames(pf.file)
		ast.Inspect(pf.file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isDiagLit(cl, inRegistry, importNames) {
				return true
			}
			code, found := codeField(cl)
			if !found {
				report(pf.fset, cl.Pos(), "Diag literal without a Code field; set a registered Code* constant")
				return true
			}
			switch v := code.(type) {
			case *ast.Ident:
				if !inRegistry {
					report(pf.fset, v.Pos(), "Diag.Code must reference the analysis registry (analysis.Code*), not a local name %s", v.Name)
				} else if _, ok := registry[v.Name]; !ok {
					report(pf.fset, v.Pos(), "Diag.Code uses %s, which is not a registered Code* constant", v.Name)
				}
			case *ast.SelectorExpr:
				x, ok := v.X.(*ast.Ident)
				if !ok || !importNames[x.Name] {
					report(pf.fset, v.Pos(), "Diag.Code must reference the analysis registry (analysis.Code*)")
				} else if _, ok := registry[v.Sel.Name]; !ok {
					report(pf.fset, v.Pos(), "Diag.Code uses %s.%s, which is not a registered Code* constant", x.Name, v.Sel.Name)
				}
			case *ast.BasicLit:
				report(pf.fset, v.Pos(), "Diag.Code uses string literal %s; use a registered Code* constant", v.Value)
			default:
				report(pf.fset, code.Pos(), "Diag.Code must be a registered Code* constant, not a computed expression")
			}
			return true
		})
	}
	sort.Strings(findings)
	return findings, nil
}

// isDiagLit reports whether cl is a Diag composite literal: the bare type
// name inside the registry package, or selector through an import of it
// anywhere else.
func isDiagLit(cl *ast.CompositeLit, inRegistry bool, importNames map[string]bool) bool {
	switch t := cl.Type.(type) {
	case *ast.Ident:
		return inRegistry && t.Name == "Diag"
	case *ast.SelectorExpr:
		x, ok := t.X.(*ast.Ident)
		return ok && importNames[x.Name] && t.Sel.Name == "Diag"
	}
	return false
}

// codeField returns the value of the literal's keyed Code field. Unkeyed
// Diag literals report the field as absent — positional initialization hides
// the code from this checker and from readers alike.
func codeField(cl *ast.CompositeLit) (ast.Expr, bool) {
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Code" {
			return kv.Value, true
		}
	}
	return nil, false
}

// kebabCase reports whether s is nonempty lowercase-alphanumeric words
// joined by single hyphens.
func kebabCase(s string) bool {
	if s == "" || s[0] == '-' || s[len(s)-1] == '-' {
		return false
	}
	prevHyphen := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			prevHyphen = false
		case c == '-':
			if prevHyphen {
				return false
			}
			prevHyphen = true
		default:
			return false
		}
	}
	return true
}

// parseTree parses every .go file under root, skipping version-control and
// vendored trees.
func parseTree(root string) ([]parsedFile, error) {
	var files []parsedFile
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "vendor", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, parsedFile{path: filepath.ToSlash(rel), file: f, fset: fset})
		return nil
	})
	return files, err
}

// exempt reports whether a file is outside the convention's scope: tests
// construct expected diagnostics however reads best, examples do not mint
// diagnostics, and this tool is not its own subject.
func exempt(path string) bool {
	return strings.HasSuffix(path, "_test.go") ||
		strings.HasPrefix(path, "examples/") ||
		strings.HasPrefix(path, "tools/")
}

// analysisImportNames maps the local names under which a file imports the
// registry package to true.
func analysisImportNames(f *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != modulePath+"/"+registryDir {
			continue
		}
		name := "analysis"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		names[name] = true
	}
	return names
}

// sortedKeys returns m's keys in sorted order, for deterministic findings.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
