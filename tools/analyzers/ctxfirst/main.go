// Command ctxfirst enforces the repository's context-first convention:
//
//   - The primary form of every blocking entry point takes a context.Context
//     first ("RunCtx"); the un-suffixed name is a one-line convenience
//     wrapper that forwards context.Background(). Wrappers exist for
//     examples and external callers only.
//   - Library and command code inside the repository must call the
//     ctx-taking form: a search, study or campaign reached through a
//     wrapper is uncancellable, which silently breaks -timeout, SIGINT
//     lease abandonment and coordinator shutdown.
//   - Library code (the root package and internal/...) must not mint its
//     own root context: context.Background() belongs in the wrappers
//     themselves, in main functions, and in tests.
//
// The checker is deliberately syntactic — stdlib go/parser only, no type
// information — which the repository's layout makes sound enough: package
// names are unique, and every import of repository code uses the module
// path prefix. Test files, examples/ and tools/ are exempt.
//
// Usage:
//
//	ctxfirst [module root]
//
// Exit status 1 if any violation is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const modulePath = "symplfied"

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctxfirst:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ctxfirst: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}

// parsedFile is one repository source file plus its import-name resolution.
type parsedFile struct {
	path string // slash path relative to the module root
	file *ast.File
	fset *token.FileSet
}

// check walks the module rooted at root and returns one formatted finding
// per convention violation, sorted by position.
func check(root string) ([]string, error) {
	files, err := parseTree(root)
	if err != nil {
		return nil, err
	}

	// Pass 1: find the wrappers. A wrapper is a top-level function whose
	// body is exactly one return statement of a single same-package call
	// whose first argument is context.Background().
	wrappers := map[string]bool{} // "pkgname.Func"
	pkgNames := map[string]bool{} // package names seen in the repo
	for _, pf := range files {
		pkgNames[pf.file.Name.Name] = true
		for _, decl := range pf.file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Recv == nil && isWrapper(fd) {
				wrappers[pf.file.Name.Name+"."+fd.Name.Name] = true
			}
		}
	}

	var findings []string
	report := func(fset *token.FileSet, pos token.Pos, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}

	// Pass 2: flag wrapper calls and stray root contexts.
	for _, pf := range files {
		if exempt(pf.path) {
			continue
		}
		pkg := pf.file.Name.Name
		repoImports := repoImportNames(pf.file)
		libraryFile := isLibrary(pf.path)
		for _, decl := range pf.file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inWrapper := fd.Recv == nil && isWrapper(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if !inWrapper && wrappers[pkg+"."+fun.Name] {
						report(pf.fset, call.Pos(),
							"call to convenience wrapper %s from inside its own package; call the ctx-taking form", fun.Name)
					}
				case *ast.SelectorExpr:
					x, ok := fun.X.(*ast.Ident)
					if !ok {
						return true
					}
					if repoImports[x.Name] && wrappers[x.Name+"."+fun.Sel.Name] {
						report(pf.fset, call.Pos(),
							"call to convenience wrapper %s.%s from repository code; call the ctx-taking form", x.Name, fun.Sel.Name)
					}
					if libraryFile && !inWrapper && x.Name == "context" && fun.Sel.Name == "Background" {
						report(pf.fset, call.Pos(),
							"context.Background() in library code outside a convenience wrapper; accept a ctx parameter instead")
					}
				}
				return true
			})
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// parseTree parses every non-generated .go file under root, skipping
// version-control and vendored trees.
func parseTree(root string) ([]parsedFile, error) {
	var files []parsedFile
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "vendor", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		files = append(files, parsedFile{path: filepath.ToSlash(rel), file: f, fset: fset})
		return nil
	})
	return files, err
}

// exempt reports whether a file is outside the convention's scope: tests
// call whichever form reads best, examples demonstrate the wrapper API,
// and this tool is not its own subject.
func exempt(path string) bool {
	return strings.HasSuffix(path, "_test.go") ||
		strings.HasPrefix(path, "examples/") ||
		strings.HasPrefix(path, "tools/")
}

// isLibrary reports whether a file is library code for the purposes of the
// context.Background() rule: the root package and internal packages. main
// packages legitimately mint the process root context.
func isLibrary(path string) bool {
	return strings.HasPrefix(path, "internal/") || !strings.Contains(path, "/")
}

// isWrapper reports whether fd is a one-line convenience wrapper: a single
// return statement whose only expression is a call with context.Background()
// as its first argument.
func isWrapper(fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	argCall, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := argCall.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "context" && sel.Sel.Name == "Background"
}

// repoImportNames maps the local names under which a file imports
// repository packages (module-path imports) to true.
func repoImportNames(f *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != modulePath && !strings.HasPrefix(path, modulePath+"/") {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if path == modulePath {
			name = modulePath
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		names[name] = true
	}
	return names
}
