package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a synthetic module; files only need to parse.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, src := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const checkerSrc = `package checker

import "context"

func RunCtx(ctx context.Context, n int) (int, error) { return n, nil }

func Run(n int) (int, error) { return RunCtx(context.Background(), n) }
`

func TestFlagsWrapperCallThroughImport(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/checker/checker.go": checkerSrc,
		"internal/experiments/e.go": `package experiments

import "symplfied/internal/checker"

func Study() (int, error) { return checker.Run(5) }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "checker.Run") {
		t.Errorf("want one checker.Run finding, got %v", findings)
	}
}

func TestFlagsWrapperCallInOwnPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/checker/checker.go": checkerSrc,
		"internal/checker/extra.go": `package checker

func Sweep() (int, error) { x, err := Run(5); return x, err }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "wrapper Run") {
		t.Errorf("want one same-package Run finding, got %v", findings)
	}
}

func TestFlagsRootContextInLibrary(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/cluster/cluster.go": `package cluster

import "context"

func Split() context.Context { ctx := context.Background(); return ctx }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "context.Background()") {
		t.Errorf("want one context.Background finding, got %v", findings)
	}
}

func TestExemptions(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/checker/checker.go": checkerSrc,
		// Tests, examples and the convenience wrapper itself call whatever
		// reads best; main packages mint the process root context.
		"internal/checker/checker_test.go": `package checker

import "context"

func helper() (int, error) { _ = context.Background(); return Run(5) }
`,
		"examples/demo/main.go": `package main

import "symplfied/internal/checker"

func main() { checker.Run(5) }
`,
		"cmd/tool/main.go": `package main

import (
	"context"

	"symplfied/internal/checker"
)

func main() {
	ctx := context.Background()
	checker.RunCtx(ctx, 5)
}
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("exempt files flagged: %v", findings)
	}
}

func TestFlagsWrapperCallFromCommand(t *testing.T) {
	// Commands have a signal-scoped ctx in hand; going through the wrapper
	// would sever it, so cmd/ is in scope for the wrapper rule.
	root := writeTree(t, map[string]string{
		"internal/checker/checker.go": checkerSrc,
		"cmd/tool/main.go": `package main

import "symplfied/internal/checker"

func main() { checker.Run(5) }
`,
	})
	findings, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "checker.Run") {
		t.Errorf("want one cmd finding, got %v", findings)
	}
}

func TestRepoIsClean(t *testing.T) {
	// The repository itself must satisfy its own convention. The module
	// root is two directories up from this tool.
	findings, err := check(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("repository violates the context-first convention:\n%s", strings.Join(findings, "\n"))
	}
}
