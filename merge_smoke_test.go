package symplfied_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/symexec"
)

// TestMergeSmokeTCAS is the state-merging acceptance gate, run with the
// SYMPLFIED_CHECK_MERGING assertion armed throughout (every merged injection
// is re-explored unmerged inside the run and compared): a tcas
// register-error sweep with MergeStates on must reproduce the unmerged
// sweep's verdicts — activation, terminal tallies, outcome tallies, and
// byte-identical canonical findings for every injection — while exploring
// several times fewer states. The states-per-operation delta is the
// paper-reproduction payoff recorded in EXPERIMENTS.md E12.
//
// The state budget is set above the most expensive injection's full cost
// (the $31 return-address corruptions: a 151-way jr fan-out whose hang paths
// each run to the 4000-step watchdog, ~107k states unmerged) so both sweeps
// complete and the ratio compares total work, not how two searches truncate
// differently at a shared cap. At the paper-study budget of 25k the same
// savings surface as coverage instead: the unmerged sweep exhausts the
// budget on those injections while the merged one finishes them.
//
// Set MERGE_SMOKE_STATS to a path to dump the before/after state counts as
// JSON (the CI merge-smoke job uploads it as an artifact).
func TestMergeSmokeTCAS(t *testing.T) {
	prog := tcas.Program()
	input := tcas.UpwardInput().Slice()
	defer checker.SetCheckMerging(true)()

	injections := faults.RegisterInjectionsUsed(prog)
	if testing.Short() {
		sampled := make([]faults.Injection, 0, len(injections)/4+1)
		for i := 0; i < len(injections); i += 4 {
			sampled = append(sampled, injections[i])
		}
		injections = sampled
	}

	exec := symexec.DefaultOptions()
	exec.Watchdog = 4_000
	spec := checker.Spec{
		Program:     prog,
		Input:       input,
		Injections:  injections,
		Exec:        exec,
		Predicate:   checker.HaltedOutputOtherThan(tcas.UpwardRA),
		StateBudget: 150_000,
	}

	sweep := func(spec checker.Spec) *checker.Report {
		t.Helper()
		rep, err := checker.RunCtx(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	unmerged := sweep(spec)
	mergedSpec := spec
	mergedSpec.MergeStates = true
	merged := sweep(mergedSpec)

	if merged.MergedInjections == 0 {
		t.Fatal("no injection was swept by the merged explorer")
	}
	if len(merged.PerInjection) != len(unmerged.PerInjection) {
		t.Fatalf("injection count drift: %d vs %d", len(merged.PerInjection), len(unmerged.PerInjection))
	}
	for i := range merged.PerInjection {
		m, u := merged.PerInjection[i], unmerged.PerInjection[i]
		if m.Activated != u.Activated {
			t.Fatalf("%s: activation drift", m.Injection)
		}
		// A blown budget truncates different frontiers (the merged search got
		// further on the same budget), so tallies diverge legitimately there.
		if m.BudgetExhausted || u.BudgetExhausted {
			continue
		}
		if m.TerminalStates != u.TerminalStates || m.Truncated != u.Truncated {
			t.Fatalf("%s: tally drift: merged %+v unmerged %+v", m.Injection, m, u)
		}
		for o, n := range u.Outcomes {
			if m.Outcomes[o] != n {
				t.Fatalf("%s: outcome %s drift: %d vs %d", m.Injection, o, m.Outcomes[o], n)
			}
		}
		mf, uf := checker.CanonicalFindings(m.Findings), checker.CanonicalFindings(u.Findings)
		if len(mf) != len(uf) {
			t.Fatalf("%s: findings count drift: %d vs %d", m.Injection, len(mf), len(uf))
		}
		for j := range mf {
			if mf[j] != uf[j] {
				t.Fatalf("%s: finding drift:\nmerged:   %s\nunmerged: %s", m.Injection, mf[j], uf[j])
			}
		}
	}

	ratio := float64(unmerged.TotalStates) / float64(merged.TotalStates)
	t.Logf("states: %d unmerged -> %d merged (%.1fx); shared-elided=%d cycles=%d steps-elided=%d; findings %d vs %d",
		unmerged.TotalStates, merged.TotalStates, ratio,
		merged.Exec.StatesMerged, merged.Exec.CyclesAccelerated, merged.Exec.StepsElided,
		len(unmerged.Findings), len(merged.Findings))
	if merged.Exec.CyclesAccelerated == 0 {
		t.Error("no cycles accelerated despite tcas's concrete erroneous loops")
	}
	if ratio < 5 {
		t.Errorf("states/op reduction %.1fx below the 5x target (%d -> %d)",
			ratio, unmerged.TotalStates, merged.TotalStates)
	}

	if path := os.Getenv("MERGE_SMOKE_STATS"); path != "" {
		artifact := struct {
			Injections        int
			UnmergedStates    int
			MergedStates      int
			Ratio             float64
			StatesMerged      int64
			CyclesAccelerated int64
			StepsElided       int64
			UnmergedFindings  int
			MergedFindings    int
			BudgetBlownBefore int
			BudgetBlownAfter  int
		}{
			len(injections), unmerged.TotalStates, merged.TotalStates, ratio,
			merged.Exec.StatesMerged, merged.Exec.CyclesAccelerated, merged.Exec.StepsElided,
			len(unmerged.Findings), len(merged.Findings),
			unmerged.BudgetBlown, merged.BudgetBlown,
		}
		b, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("merge stats written to %s", path)
	}
}
