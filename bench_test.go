package symplfied_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the artifact through internal/experiments), plus
// microbenchmarks of the framework's hot paths and an ablation of the
// affine constraint solver. Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics: experiment benches report states/op (symbolic states
// explored) and findings/op so throughput changes and result drift are both
// visible.

import (
	"context"
	"testing"

	"symplfied"
	"symplfied/internal/apps/factorial"
	"symplfied/internal/apps/tcas"
	"symplfied/internal/checker"
	"symplfied/internal/experiments"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/summary"
	"symplfied/internal/symbolic"
	"symplfied/internal/symexec"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := r.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if !res.ShapeOK {
			b.Fatalf("%s: shape checks failed:\n%s", id, res.Render())
		}
	}
}

// BenchmarkFig2FactorialEnumeration regenerates Section 4.1's outcome
// enumeration (Figure 2 program).
func BenchmarkFig2FactorialEnumeration(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3FactorialDetectors regenerates Section 4.2's detector
// derivation (Figure 3 program).
func BenchmarkFig3FactorialDetectors(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkTable1ManifestationEnumeration regenerates Table 1's
// computation-error manifestation checks.
func BenchmarkTable1ManifestationEnumeration(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkSec62TcasSymbolicStudy regenerates the Section 6.2 tcas study:
// 150 cluster-style tasks over all register errors, finding the catastrophic
// advisory flip.
func BenchmarkSec62TcasSymbolicStudy(b *testing.B) { benchExperiment(b, "tcas") }

// BenchmarkTable2SimpleScalarCampaign regenerates Table 2: both concrete
// campaigns (6253 and 41082 faults), which find no outcome-2 case.
func BenchmarkTable2SimpleScalarCampaign(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkSec64ReplaceStudy regenerates the Section 6.4 replace study:
// 312 tasks over all register errors in the replace program.
func BenchmarkSec64ReplaceStudy(b *testing.B) { benchExperiment(b, "replace") }

// BenchmarkHardeningStudy regenerates the extension artifact: the canary
// hardening that turns the tcas flip from refuted to proven.
func BenchmarkHardeningStudy(b *testing.B) { benchExperiment(b, "hardening") }

// BenchmarkClassesStudy regenerates the extension artifact sweeping the
// memory, control and decoder error classes over tcas.
func BenchmarkClassesStudy(b *testing.B) { benchExperiment(b, "classes") }

// --- Microbenchmarks -------------------------------------------------------

// BenchmarkConcreteMachineTcas measures the deterministic interpreter: one
// full fault-free tcas execution per iteration.
func BenchmarkConcreteMachineTcas(b *testing.B) {
	prog := tcas.Program()
	input := tcas.UpwardInput().Slice()
	steps := 0
	for i := 0; i < b.N; i++ {
		m := machine.New(prog, input, machine.Options{})
		res := m.Run()
		if res.Status != machine.StatusHalted {
			b.Fatalf("run failed: %v", res.Exception)
		}
		steps = res.Steps
	}
	b.ReportMetric(float64(steps), "instructions/op")
}

// BenchmarkSymbolicInPlaceTcas measures the symbolic executor's
// deterministic fast path over a fault-free tcas execution.
func BenchmarkSymbolicInPlaceTcas(b *testing.B) {
	prog := tcas.Program()
	input := tcas.UpwardInput().Slice()
	for i := 0; i < b.N; i++ {
		st := symexec.NewState(prog, nil, input, symexec.DefaultOptions())
		for st.Running() {
			if !st.StepInPlace() {
				b.Fatal("fault-free execution forked")
			}
		}
		if st.Outcome() != symexec.OutcomeNormal {
			b.Fatalf("outcome %v", st.Outcome())
		}
	}
}

// BenchmarkSymbolicForkClone measures the forking (clone) path: the state is
// forked at a comparison on err each iteration.
func BenchmarkSymbolicForkClone(b *testing.B) {
	prog := tcas.Program()
	input := tcas.UpwardInput().Slice()
	st := symexec.NewState(prog, nil, input, symexec.DefaultOptions())
	for j := 0; j < 40; j++ { // advance into the program for realistic state size
		st.StepInPlace()
	}
	st.Inject(isa.RegLoc(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := st.Clone()
		_ = c
	}
}

// BenchmarkConstraintSolver measures constraint conjunction, normalization
// and satisfiability over a typical atom mix.
func BenchmarkConstraintSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := symbolic.NewConstraints()
		c.AddCmp(isa.CmpGt, 1)
		c.AddCmp(isa.CmpLe, 1000)
		c.AddCmp(isa.CmpNe, 5)
		c.AddCmp(isa.CmpNe, 1000)
		c.AddCmp(isa.CmpGe, 3)
		if !c.Satisfiable() {
			b.Fatal("unexpectedly unsatisfiable")
		}
	}
}

// BenchmarkInjectionExploration measures a full bounded exploration of one
// catastrophic injection (err in $31 at NCBC's return: ~150-way control
// fork plus the follow-on paths).
func BenchmarkInjectionExploration(b *testing.B) {
	prog := tcas.Program()
	jrPC, err := tcas.ReturnJrPC(prog, "Non_Crossing_Biased_Climb")
	if err != nil {
		b.Fatal(err)
	}
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000
	spec := checker.Spec{
		Program:   prog,
		Input:     tcas.UpwardInput().Slice(),
		Exec:      exec,
		Predicate: checker.HaltedOutputOtherThan(1),
	}
	inj := faults.Injection{Class: faults.ClassRegister, PC: jrPC, Loc: isa.RegLoc(isa.RegRA)}
	states := 0
	for i := 0; i < b.N; i++ {
		ir, err := checker.RunInjection(spec, inj)
		if err != nil {
			b.Fatal(err)
		}
		if len(ir.Findings) == 0 {
			b.Fatal("no findings")
		}
		states = ir.StatesExplored
	}
	b.ReportMetric(float64(states), "states/op")
}

// BenchmarkAssembleTcas measures the assembler on the tcas source.
func BenchmarkAssembleTcas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := symplfied.Assemble("tcas", tcas.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimpleScalarRun measures one concrete injection experiment.
func BenchmarkSimpleScalarRun(b *testing.B) {
	unit := &symplfied.Unit{Program: tcas.Program()}
	input := tcas.UpwardInput().Slice()
	for i := 0; i < b.N; i++ {
		rep, err := symplfied.Campaign(symplfied.CampaignSpec{
			Unit:           unit,
			Input:          input,
			Faults:         100,
			Seed:           int64(i),
			Watchdog:       50_000,
			AllowedOutputs: []int64{0, 1, 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Total != 100 {
			b.Fatal("campaign size drift")
		}
	}
}

// --- Ablation: the affine constraint solver --------------------------------

// benchAblation runs the Figure 3 detector analysis with the affine solver
// on or off and reports explored states and detected/normal terminal counts.
// With the solver off (the paper's coarser model), lineage is lost, so the
// derived detection condition degrades and spurious paths survive.
func benchAblation(b *testing.B, affine bool) {
	prog, dets := factorial.WithDetectors()
	subiPC, ok := factorial.SubiPC(prog)
	if !ok {
		b.Fatal("no subi")
	}
	exec := symexec.DefaultOptions()
	exec.Watchdog = 400
	exec.AffineTracking = affine
	spec := checker.Spec{
		Program:   prog,
		Detectors: dets,
		Input:     []int64{5},
		Exec:      exec,
		Predicate: checker.OutcomeIs(symexec.OutcomeNormal),
	}
	inj := faults.Injection{Class: faults.ClassRegister, PC: subiPC, Loc: isa.RegLoc(3)}
	var states, normals, detected int
	for i := 0; i < b.N; i++ {
		ir, err := checker.RunInjection(spec, inj)
		if err != nil {
			b.Fatal(err)
		}
		states = ir.StatesExplored
		normals = ir.Outcomes[symexec.OutcomeNormal]
		detected = ir.Outcomes[symexec.OutcomeDetected]
	}
	b.ReportMetric(float64(states), "states/op")
	b.ReportMetric(float64(normals), "normal-paths/op")
	b.ReportMetric(float64(detected), "detected-paths/op")
}

// BenchmarkAblationAffineSolverOn: the refined solver (this implementation's
// default).
func BenchmarkAblationAffineSolverOn(b *testing.B) { benchAblation(b, true) }

// BenchmarkAblationAffineSolverOff: the paper-strict single-symbol model.
func BenchmarkAblationAffineSolverOff(b *testing.B) { benchAblation(b, false) }

// benchFaultDuration compares transient and permanent (stuck-at) faults on
// the same factorial site: the permanent fault collapses per-iteration
// re-forking, so its world count is much smaller.
func benchFaultDuration(b *testing.B, permanent bool) {
	prog := factorial.Plain()
	subiPC, ok := factorial.SubiPC(prog)
	if !ok {
		b.Fatal("no subi")
	}
	exec := symexec.DefaultOptions()
	exec.Watchdog = 400
	spec := checker.Spec{
		Program:   prog,
		Input:     []int64{5},
		Exec:      exec,
		Predicate: checker.OutcomeIs(symexec.OutcomeNormal),
	}
	inj := faults.Injection{
		Class: faults.ClassRegister, PC: subiPC, Loc: isa.RegLoc(3),
		Permanent: permanent,
	}
	var states, terminals int
	for i := 0; i < b.N; i++ {
		ir, err := checker.RunInjection(spec, inj)
		if err != nil {
			b.Fatal(err)
		}
		states = ir.StatesExplored
		terminals = ir.TerminalStates
	}
	b.ReportMetric(float64(states), "states/op")
	b.ReportMetric(float64(terminals), "worlds/op")
}

// BenchmarkAblationTransientFault: the paper's primary transient model.
func BenchmarkAblationTransientFault(b *testing.B) { benchFaultDuration(b, false) }

// BenchmarkAblationPermanentFault: the future-work stuck-at extension.
func BenchmarkAblationPermanentFault(b *testing.B) { benchFaultDuration(b, true) }

// benchActivationPolicy measures the paper's Section 6.2 optimization:
// injecting only into the registers each instruction uses (activation
// guaranteed) versus the exhaustive instructions x registers space. Both
// must find the catastrophic flip; the activated policy does so with a
// fraction of the injections and states.
func benchActivationPolicy(b *testing.B, activated bool) {
	prog := tcas.Program()
	var injections []faults.Injection
	if activated {
		injections = faults.RegisterInjectionsUsed(prog)
	} else {
		injections = faults.RegisterInjections(prog, false)
	}
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000
	spec := checker.Spec{
		Program:     prog,
		Input:       tcas.UpwardInput().Slice(),
		Injections:  injections,
		Exec:        exec,
		Predicate:   checker.HaltedOutputOtherThan(1),
		StateBudget: 30_000,
		MaxFindings: 10,
	}
	var states, findings int
	for i := 0; i < b.N; i++ {
		rep, err := checker.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		states = rep.TotalStates
		findings = len(rep.Findings)
		flip := false
		for _, f := range rep.Findings {
			vals := f.State.OutputValues()
			if len(vals) == 1 && vals[0].Equal(isa.Int(2)) {
				flip = true
			}
		}
		if !flip {
			b.Fatal("catastrophic flip not found")
		}
	}
	b.ReportMetric(float64(len(injections)), "injections/op")
	b.ReportMetric(float64(states), "states/op")
	b.ReportMetric(float64(findings), "findings/op")
}

// BenchmarkAblationActivatedPolicy: the paper's optimization (Section 6.2).
func BenchmarkAblationActivatedPolicy(b *testing.B) { benchActivationPolicy(b, true) }

// BenchmarkAblationExhaustivePolicy: the raw instructions x registers space.
func BenchmarkAblationExhaustivePolicy(b *testing.B) { benchActivationPolicy(b, false) }

// benchParallelSweep runs the tcas register sweep through checker.RunCtx at
// the given parallelism. ns/op is the wall clock; states/op and findings/op
// must not move between the sequential and parallel variants — the sweep
// explores the identical space, only faster.
func benchParallelSweep(b *testing.B, parallelism int) {
	b.Helper()
	prog := tcas.Program()
	injections := faults.RegisterInjectionsUsed(prog)
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000
	spec := checker.Spec{
		Program:     prog,
		Input:       tcas.UpwardInput().Slice(),
		Injections:  injections,
		Exec:        exec,
		Predicate:   checker.HaltedOutputOtherThan(1),
		StateBudget: 2000,
		Parallelism: parallelism,
	}
	states, findings := 0, 0
	for i := 0; i < b.N; i++ {
		rep, err := checker.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		states = rep.TotalStates
		findings = len(rep.Findings)
	}
	b.ReportMetric(float64(states), "states/op")
	b.ReportMetric(float64(findings), "findings/op")
}

// BenchmarkParallelSweepSequential is the single-core baseline.
func BenchmarkParallelSweepSequential(b *testing.B) { benchParallelSweep(b, 1) }

// BenchmarkParallelSweepAllCores fans the same sweep across every core.
func BenchmarkParallelSweepAllCores(b *testing.B) { benchParallelSweep(b, 0) }

// benchMergedSweep runs the full tcas register sweep with a budget high
// enough that every injection completes, merged or plain, so states/op
// compares total exploration work rather than where two searches truncate.
// findings/op must not move between the two variants — post-dominator
// merging and cycle acceleration change only how many physical state
// observations the identical verdicts cost (EXPERIMENTS.md E12).
func benchMergedSweep(b *testing.B, merge bool) {
	b.Helper()
	prog := tcas.Program()
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000
	spec := checker.Spec{
		Program:     prog,
		Input:       tcas.UpwardInput().Slice(),
		Injections:  faults.RegisterInjectionsUsed(prog),
		Exec:        exec,
		Predicate:   checker.HaltedOutputOtherThan(1),
		StateBudget: 150_000,
		MergeStates: merge,
	}
	states, findings := 0, 0
	for i := 0; i < b.N; i++ {
		rep, err := checker.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		states = rep.TotalStates
		findings = len(rep.Findings)
	}
	b.ReportMetric(float64(states), "states/op")
	b.ReportMetric(float64(findings), "findings/op")
}

// BenchmarkMergedSweepOff is the plain-exploration baseline for E12.
func BenchmarkMergedSweepOff(b *testing.B) { benchMergedSweep(b, false) }

// BenchmarkMergedSweep explores the same sweep with MergeStates on.
func BenchmarkMergedSweep(b *testing.B) { benchMergedSweep(b, true) }

// benchSummaryBuild measures building the tcas function-summary set
// (partition, SCC keys, per-function taint fixpoints, continuation
// fixpoint) against a cache: nil for the cold path, a pre-warmed cache for
// the warm path. functions/op and hits/op report what the build did.
func benchSummaryBuild(b *testing.B, warm bool) {
	b.Helper()
	prog := tcas.Program()
	var cache *summary.Cache
	if warm {
		cache = summary.NewCache(0, nil)
		summary.Build(prog, nil, cache)
	}
	var stats summary.BuildStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats = summary.Build(prog, nil, cache).Stats
	}
	b.ReportMetric(float64(stats.Functions), "functions/op")
	b.ReportMetric(float64(len(stats.Hits)), "hits/op")
}

// BenchmarkSummaryCacheCold builds every summary from scratch.
func BenchmarkSummaryCacheCold(b *testing.B) { benchSummaryBuild(b, false) }

// BenchmarkSummaryCacheWarm re-builds against a fully warmed cache: the
// content-addressed fast path an unchanged re-analysis takes.
func BenchmarkSummaryCacheWarm(b *testing.B) { benchSummaryBuild(b, true) }
