package symplfied_test

import (
	"testing"

	"symplfied"
	"symplfied/internal/apps/factorial"
	"symplfied/internal/apps/tcas"
	"symplfied/internal/isa"
)

func TestAssembleAndExecute(t *testing.T) {
	u, err := symplfied.Assemble("factorial", factorial.SourcePlain)
	if err != nil {
		t.Fatal(err)
	}
	res := symplfied.Execute(u.Program, []int64{6}, symplfied.ExecConfig{})
	if !res.Halted {
		t.Fatalf("not halted: %v", res.Exception)
	}
	if res.Output != "Factorial = 720" {
		t.Fatalf("output %q", res.Output)
	}
	if len(res.Values) != 1 || res.Values[0].MustConcrete() != 720 {
		t.Fatalf("values %v", res.Values)
	}
}

func TestSearchEnumeratesFactorialOutcomes(t *testing.T) {
	u, err := symplfied.Assemble("factorial", factorial.SourcePlain)
	if err != nil {
		t.Fatal(err)
	}
	subiPC, _ := factorial.SubiPC(u.Program)
	rep, err := symplfied.Search(symplfied.SearchSpec{
		Unit:  u,
		Input: []int64{5},
		Injections: []symplfied.Injection{{
			Class: symplfied.ClassRegister, PC: subiPC, Loc: isa.RegLoc(3),
		}},
		Goal:   symplfied.GoalIncorrectOutput,
		Limits: symplfied.Limits{Watchdog: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no incorrect outcomes enumerated")
	}
	seen5 := false
	for _, f := range rep.Findings {
		if f.State.OutputString() == "Factorial = 5" {
			seen5 = true
		}
	}
	if !seen5 {
		t.Error("early-exit partial product not enumerated")
	}
}

func TestSearchWrongAdvisoryFindsFlip(t *testing.T) {
	u := &symplfied.Unit{Program: tcas.Program()}
	jrPC, err := tcas.ReturnJrPC(u.Program, "Non_Crossing_Biased_Climb")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := symplfied.Search(symplfied.SearchSpec{
		Unit:  u,
		Input: tcas.UpwardInput().Slice(),
		Injections: []symplfied.Injection{{
			Class: symplfied.ClassRegister, PC: jrPC, Loc: isa.RegLoc(isa.RegRA),
		}},
		Goal:   symplfied.GoalWrongAdvisory,
		Limits: symplfied.Limits{Watchdog: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	flip := false
	for _, f := range rep.Findings {
		vals := f.State.OutputValues()
		if len(vals) == 1 && vals[0].Equal(isa.Int(2)) {
			flip = true
		}
	}
	if !flip {
		t.Fatal("catastrophic advisory flip not found through the public API")
	}
}

func TestStudyDecomposes(t *testing.T) {
	u := &symplfied.Unit{Program: tcas.Program()}
	reports, sum, err := symplfied.Study(symplfied.SearchSpec{
		Unit:   u,
		Input:  tcas.UpwardInput().Slice(),
		Class:  symplfied.ClassRegister,
		Goal:   symplfied.GoalWrongAdvisory,
		Limits: symplfied.Limits{Watchdog: 4000},
	}, symplfied.StudyConfig{Tasks: 16, TaskStateBudget: 20_000, MaxFindingsPerTask: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 16 {
		t.Fatalf("%d task reports, want 16", len(reports))
	}
	if sum.Completed == 0 {
		t.Error("no task completed")
	}
	if len(sum.Findings) == 0 {
		t.Error("study found nothing")
	}
}

func TestCampaignNeverFindsTheFlip(t *testing.T) {
	u := &symplfied.Unit{Program: tcas.Program()}
	rep, err := symplfied.Campaign(symplfied.CampaignSpec{
		Unit:           u,
		Input:          tcas.UpwardInput().Slice(),
		Faults:         1000,
		Seed:           1,
		Watchdog:       50_000,
		AllowedOutputs: []int64{0, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1000 {
		t.Fatalf("campaign size %d", rep.Total)
	}
	if rep.Counts["2"] != 0 {
		t.Fatalf("concrete campaign found %d outcome-2 cases; the paper's point is that it finds none", rep.Counts["2"])
	}
	if rep.Counts["1"] == 0 || rep.Counts["crash"] == 0 {
		t.Fatalf("distribution lacks benign or crash buckets: %v", rep.Counts)
	}
}

func TestTranslateMIPSPublic(t *testing.T) {
	prog, err := symplfied.TranslateMIPS("fact", `
	.text
main:
	li $v0, 5
	syscall
	move $t0, $v0
	li $t1, 1
loop:	ble $t0, 1, done
	mul $t1, $t1, $t0
	addi $t0, $t0, -1
	j loop
done:	move $a0, $t1
	li $v0, 1
	syscall
	li $v0, 10
	syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	res := symplfied.Execute(prog, []int64{4}, symplfied.ExecConfig{})
	if !res.Halted || res.Output != "24" {
		t.Fatalf("halted=%v output=%q", res.Halted, res.Output)
	}
}

func TestParseDetectorPublic(t *testing.T) {
	d, err := symplfied.ParseDetector("det(4, $(5), ==, ($3) + *(1000))")
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != 4 || d.Target != isa.RegLoc(5) {
		t.Fatalf("parsed %v", d)
	}
}

func TestPermanentSearchPublic(t *testing.T) {
	u, err := symplfied.Assemble("factorial", factorial.SourcePlain)
	if err != nil {
		t.Fatal(err)
	}
	subiPC, _ := factorial.SubiPC(u.Program)
	rep, err := symplfied.Search(symplfied.SearchSpec{
		Unit:  u,
		Input: []int64{5},
		Injections: []symplfied.Injection{{
			Class: symplfied.ClassRegister, PC: subiPC, Loc: isa.RegLoc(3),
		}},
		Goal:      symplfied.GoalHang,
		Limits:    symplfied.Limits{Watchdog: 400},
		Permanent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The stuck counter loops forever whenever its value keeps the loop
	// condition true: a hang must be enumerated.
	if len(rep.Findings) == 0 {
		t.Fatal("permanent fault produced no hang")
	}
}

func TestSearchComposedPublic(t *testing.T) {
	u, err := symplfied.Assemble("composed", `
	li $1 3
	li $2 4
	add $3 $1 $2
	check ($3 == 7)
	multi $4 $3 10
	print $4
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, proofs, err := symplfied.SearchComposed(symplfied.SearchSpec{
		Unit:   u,
		Input:  nil,
		Class:  symplfied.ClassRegister,
		Goal:   symplfied.GoalErrOutput,
		Limits: symplfied.Limits{Watchdog: 100},
	}, []symplfied.Component{{Name: "checked-sum", Lo: 0, Hi: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(proofs) != 1 || proofs[0].Verdict != symplfied.VerdictProven {
		t.Fatalf("component proof %+v", proofs)
	}
	for _, f := range rep.Findings {
		if f.Injection.PC <= 3 {
			t.Errorf("finding inside discharged component: %s", f.Injection)
		}
	}
}

func TestExploreSearchGraphPublic(t *testing.T) {
	u, err := symplfied.Assemble("factorial", factorial.SourcePlain)
	if err != nil {
		t.Fatal(err)
	}
	subiPC, _ := factorial.SubiPC(u.Program)
	g, err := symplfied.ExploreSearchGraph(symplfied.SearchSpec{
		Unit:   u,
		Input:  []int64{3},
		Goal:   symplfied.GoalErrOutput,
		Limits: symplfied.Limits{Watchdog: 200},
	}, symplfied.Injection{Class: symplfied.ClassRegister, PC: subiPC, Loc: isa.RegLoc(3)}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) == 0 || len(g.Terminals()) == 0 {
		t.Fatalf("graph nodes %d terminals %d", len(g.Nodes), len(g.Terminals()))
	}
	if len(g.DOT()) == 0 {
		t.Fatal("empty DOT")
	}
}
