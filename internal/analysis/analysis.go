// Package analysis implements static program analysis over the SymPLFIED
// assembly language: control-flow graph construction, backward register
// liveness, reaching definitions, and a diagnostics pass (Lint) that surfaces
// detector-coverage holes before any symbolic exploration runs.
//
// The paper prunes its 800x32 register campaign to "the register(s) used by
// the instruction" purely syntactically (Section 6.1). Dataflow liveness goes
// further: an injection into a register that is dead at the injection point —
// written before it is read on every path — provably cannot change the
// execution, so the checker can classify it benign without exploring it (see
// checker.PruneContext). The lint pass closes the loop on the paper's
// detector model (Section 5.3): a CHECK annotation that can never execute, or
// one that guards a value no subsequent instruction reads, is a silent
// coverage hole this package reports statically.
//
// # Diagnostic codes
//
// Every Diag carries one of these stable, kebab-case codes (the Code*
// constants in lint.go; tools/analyzers/diagcodes enforces the registry):
//
//   - unreachable-code: instructions no path from entry executes.
//   - unreachable-detector: a CHECK that can never run, so its detector
//     cannot fire.
//   - unknown-detector: a CHECK naming a detector the table does not define;
//     the check always throws.
//   - unused-detector: a detector no CHECK references.
//   - dead-guard: a CHECK validating a register that is dead immediately
//     after it — nothing reads the guarded value.
//   - falls-off-end: control can run past the last instruction.
//   - bad-branch-target: a branch whose resolved target is outside the
//     program.
//   - uninitialized-read: a read of a register no path from entry writes.
//   - dead-store: a register write nothing ever reads.
//   - undetected-escape-window: a live value that, if corrupted anywhere in
//     its definition-to-use window, can reach program output or control flow
//     with no CHECK reading it first (see Gaps; internal/harden synthesizes
//     detectors to close these).
package analysis

import (
	"math/bits"
	"strings"
	"sync"

	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

// RegSet is a set of architectural registers as a bitmask. The machine model
// has 32 registers (isa.NumRegs), so one word suffices. The hardwired zero
// register is never a member: it cannot hold an injected error and reads of
// it are constant.
type RegSet uint32

// AllRegs is the set of every architectural register except $0.
const AllRegs RegSet = (1<<isa.NumRegs - 1) &^ 1

// Add returns s with r added. Adding RegZero is a no-op.
func (s RegSet) Add(r isa.Reg) RegSet {
	if r == isa.RegZero || !r.Valid() {
		return s
	}
	return s | 1<<r
}

// Has reports whether r is in the set.
func (s RegSet) Has(r isa.Reg) bool {
	return r != isa.RegZero && r.Valid() && s&(1<<r) != 0
}

// Union returns the union of s and t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Remove returns s without r.
func (s RegSet) Remove(r isa.Reg) RegSet { return s &^ (1 << r) }

// Len returns the number of registers in the set.
func (s RegSet) Len() int { return bits.OnesCount32(uint32(s)) }

// Regs returns the members in ascending order.
func (s RegSet) Regs() []isa.Reg {
	out := make([]isa.Reg, 0, s.Len())
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// String renders the set as "{$1 $5 $31}".
func (s RegSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.Regs() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Analysis holds every per-instruction dataflow fact computed over one
// program (with its detector table, whose expressions count as register
// reads at their CHECK sites). Build it once with Analyze and share it: the
// structure is immutable after construction.
type Analysis struct {
	Prog      *isa.Program
	Detectors *detector.Table

	// CFG is the control-flow graph (basic blocks + per-PC successors).
	CFG *CFG

	// PostDom is the post-dominator tree over CFG blocks, with the merge
	// points (rejoin pcs of branching blocks) state merging defers at.
	PostDom *PostDom

	// LiveIn[pc] is the set of registers live just before the instruction at
	// pc executes — exactly the set a register injection at pc can influence.
	// LiveOut[pc] is the set live after it.
	LiveIn, LiveOut []RegSet

	// NeverWritten[pc] is the set of registers no path from entry to pc
	// defines: only their boot value (the machine zeroes the register file)
	// can reach pc. The one-bit-per-register dual of reaching definitions;
	// Lint uses it to flag reads of never-written registers.
	NeverWritten []RegSet

	// Demand-computed passes (Gaps, Consts): built on first use so callers
	// that only prune injections never pay for them, cached so the structure
	// stays shareable.
	gapsOnce   sync.Once
	gaps       []Gap
	constsOnce sync.Once
	consts     *Consts
	dynOnce    sync.Once
	dyn        []int
}

// Analyze builds the CFG and runs the dataflow passes. A nil detector table
// is treated as empty (a CHECK naming an unknown detector throws and halts,
// so it reads nothing).
func Analyze(prog *isa.Program, dets *detector.Table) *Analysis {
	if dets == nil {
		dets = detector.EmptyTable()
	}
	a := &Analysis{Prog: prog, Detectors: dets}
	a.CFG = buildCFG(prog, dets)
	a.PostDom = computePostDom(a.CFG)
	a.computeLiveness()
	a.computeNeverWritten()
	return a
}

// Uses returns the registers the instruction at pc reads, including the
// registers a CHECK's detector reads (its target, when a register, and every
// register reference in its expression — the paper's Section 5.3 detector
// grammar).
func (a *Analysis) Uses(pc int) RegSet {
	var s RegSet
	in := a.Prog.At(pc)
	for _, r := range in.SrcRegs() {
		s = s.Add(r)
	}
	if in.Op == isa.OpCheck {
		if d, ok := a.Detectors.Lookup(in.Imm); ok {
			s = s.Union(detectorUses(d))
		}
	}
	return s
}

// Defs returns the registers the instruction at pc writes.
func (a *Analysis) Defs(pc int) RegSet {
	var s RegSet
	for _, r := range a.Prog.At(pc).DstRegs() {
		s = s.Add(r)
	}
	return s
}

// DeadAt reports whether register r is dead just before the instruction at
// pc: every path from pc writes r before reading it (or never touches it
// again). An injection of err into a dead register is provably benign — the
// erroneous value is overwritten or ignored on every continuation. pc values
// outside the program are never dead (conservative).
func (a *Analysis) DeadAt(pc int, r isa.Reg) bool {
	if pc < 0 || pc >= len(a.LiveIn) || r == isa.RegZero || !r.Valid() {
		return false
	}
	return !a.LiveIn[pc].Has(r)
}

// DetectorReads reports what detector d dereferences when its CHECK runs:
// the set of registers it reads (its target register plus every RegRef in
// its expression) and whether it reads memory (a MemRef in the expression or
// a memory target). Clients propagating error taint through CHECKs
// (internal/summary) need the memory half, which liveness ignores.
func DetectorReads(d *detector.Detector) (regs RegSet, readsMem bool) {
	return detectorUses(d), d.Target.IsMem || exprReadsMem(d.Expr)
}

// exprReadsMem reports whether a detector expression contains a MemRef.
func exprReadsMem(e detector.Expr) bool {
	switch e := e.(type) {
	case detector.MemRef:
		return true
	case detector.BinExpr:
		return exprReadsMem(e.L) || exprReadsMem(e.R)
	}
	return false
}

// detectorUses collects the registers detector d reads when its CHECK runs.
func detectorUses(d *detector.Detector) RegSet {
	var s RegSet
	if !d.Target.IsMem {
		s = s.Add(d.Target.Reg)
	}
	return s.Union(exprRegs(d.Expr))
}

// exprRegs collects the register references in a detector expression.
func exprRegs(e detector.Expr) RegSet {
	switch e := e.(type) {
	case detector.RegRef:
		return RegSet(0).Add(e.R)
	case detector.BinExpr:
		return exprRegs(e.L).Union(exprRegs(e.R))
	}
	return 0
}
