package analysis

import (
	"math/rand"
	"strconv"
	"testing"

	"symplfied/internal/apps/replace"
	"symplfied/internal/apps/tcas"
	"symplfied/internal/asm"
	"symplfied/internal/isa"
)

// FuzzAnalyze feeds arbitrary assembly source through the real front end:
// anything internal/asm accepts must analyze without panicking — CFG
// construction, both dataflow passes, Lint, and a liveness query at every
// pc. The seed corpus reuses the asm fuzzer's domain: the benchmark
// applications plus rendered random programs over every instruction format
// (branches at the boundaries, jr, checks with dangling detector IDs).
func FuzzAnalyze(f *testing.F) {
	f.Add("\thalt\n")
	f.Add("")                                                  // empty program
	f.Add("\tli $1 #1\n\tprint $1\n")                          // falls off the end
	f.Add("loop:\tsubi $1 $1 #1\n\tbne $1 0 loop\n\thalt\n")   // back edge
	f.Add("\tjr $31\n")                                        // dynamic jump
	f.Add("\tdet(1, $2, ==, $3 + *(8))\n\tcheck #1\n\thalt\n") // detector reads
	f.Add("\tcheck #99\n\thalt\n")                             // unknown detector
	f.Add("\tjmp end\n\tli $1 #1\nend:\thalt\nafter_end:\n")   // unreachable + end label
	f.Add(tcas.Program().String())
	f.Add(replace.Program().String())
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		f.Add(randomSource(r))
	}

	f.Fuzz(func(t *testing.T, src string) {
		u, err := asm.Parse("fuzz", src)
		if err != nil {
			return // not assemblable: out of scope
		}
		a := Analyze(u.Program, u.Detectors)
		diags := a.Lint()
		_ = HasErrors(diags)
		for _, d := range diags {
			_ = d.String()
		}
		for pc := 0; pc < u.Program.Len(); pc++ {
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				a.DeadAt(pc, r)
			}
			if !a.CFG.Reachable[pc] && a.CFG.BlockOf[pc] < 0 {
				t.Fatalf("pc %d has no block", pc)
			}
		}
	})
}

// randomSource renders a random valid program the same way the asm fuzz
// round-trip test builds its corpus.
func randomSource(r *rand.Rand) string {
	n := 3 + r.Intn(30)
	instrs := make([]isa.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		instrs = append(instrs, randomInstr(r, n+1))
	}
	instrs = append(instrs, isa.Instr{Op: isa.OpHalt})
	labels := map[string]int{}
	for k := r.Intn(4); k > 0; k-- {
		labels["L"+strconv.Itoa(r.Intn(100))] = r.Intn(n + 1)
	}
	prog, err := isa.NewProgram("fuzz", instrs, labels)
	if err != nil {
		return "\thalt\n"
	}
	return prog.String()
}

// randomInstr mirrors the generator in internal/asm's fuzz round-trip test:
// one random instruction of any renderable format, branch targets within
// [0, progLen).
func randomInstr(r *rand.Rand, progLen int) isa.Instr {
	ops := isa.Ops()
	for {
		op := ops[r.Intn(len(ops))]
		in := isa.Instr{Op: op}
		reg := func() isa.Reg { return isa.Reg(r.Intn(isa.NumRegs)) }
		imm := func() int64 { return int64(r.Intn(2001) - 1000) }
		switch op.Format() {
		case isa.FormatNone:
			if op == isa.OpHalt {
				continue // emitted explicitly at the end
			}
		case isa.FormatR3:
			in.Rd, in.Rs, in.Rt = reg(), reg(), reg()
		case isa.FormatR2I:
			in.Rd, in.Rs, in.Imm = reg(), reg(), imm()
		case isa.FormatR2:
			in.Rd, in.Rs = reg(), reg()
		case isa.FormatRI:
			in.Rd, in.Imm = reg(), imm()
		case isa.FormatMem:
			in.Rt, in.Rs, in.Imm = reg(), reg(), imm()
		case isa.FormatBranch:
			in.Rs, in.Rt, in.Target = reg(), reg(), r.Intn(progLen)
		case isa.FormatBranchI:
			in.Rs, in.Imm, in.Target = reg(), imm(), r.Intn(progLen)
		case isa.FormatJump:
			in.Target = r.Intn(progLen)
		case isa.FormatJumpR:
			in.Rs = reg()
		case isa.FormatR1:
			in.Rd = reg()
		case isa.FormatStr:
			n := r.Intn(8)
			s := make([]byte, 0, n)
			alphabet := `abc "\-;/()#$*123 	`
			for i := 0; i < n; i++ {
				s = append(s, alphabet[r.Intn(len(alphabet))])
			}
			in.Str = string(s)
		case isa.FormatCheck:
			in.Imm = int64(r.Intn(10))
		}
		return in
	}
}
