package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"symplfied/internal/apps/replace"
	"symplfied/internal/apps/tcas"
)

// diagStrings renders diagnostics for golden comparison.
func diagStrings(diags []Diag) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

// TestLintGoldenApps pins the lint output of the benchmark applications: the
// paper's case studies are clean — every detector reachable, no dead control
// flow, no boot-value reads — so, coverage-gap warnings aside, their golden
// diagnostic list is empty. Undetected-escape windows are expected on the
// seed units (an unprotected program is all gaps — the paper's premise) and
// pinned separately by TestGapDiagsApps. A regression here means either an
// app edit introduced a real defect or an analysis change started reporting
// spurious findings on known-good code.
func TestLintGoldenApps(t *testing.T) {
	progHardened, detsHardened := tcas.Hardened()
	cases := []struct {
		name  string
		diags []Diag
		want  []string
	}{
		{"tcas", Lint(tcas.Program(), nil), nil},
		{"tcas-hardened", Lint(progHardened, detsHardened), nil},
		{"replace", Lint(replace.Program(), nil), nil},
	}
	for _, tc := range cases {
		var kept []Diag
		for _, d := range tc.diags {
			if d.Code != CodeUndetectedEscape {
				kept = append(kept, d)
			}
		}
		got := diagStrings(kept)
		if strings.Join(got, "\n") != strings.Join(tc.want, "\n") {
			t.Errorf("%s: lint diagnostics changed:\n%s", tc.name, strings.Join(got, "\n"))
		}
		if HasErrors(tc.diags) {
			t.Errorf("%s: error-severity findings on a known-good program", tc.name)
		}
	}
}

// TestGapDiagsApps pins the coverage-gap surface of the case studies: the
// seed units are riddled with undetected-escape windows (nothing guards
// anything), and hardening must only ever shrink the set — the
// detector-hardening pass (internal/harden) consumes exactly these warnings.
func TestGapDiagsApps(t *testing.T) {
	countGaps := func(diags []Diag) int {
		n := 0
		for _, d := range diags {
			if d.Code == CodeUndetectedEscape {
				n++
			}
		}
		return n
	}
	seed := countGaps(Lint(tcas.Program(), nil))
	if seed == 0 {
		t.Fatal("seed tcas reports no undetected-escape windows; the gap analysis found nothing to harden")
	}
	progHardened, detsHardened := tcas.Hardened()
	hardened := countGaps(Lint(progHardened, detsHardened))
	if hardened >= seed {
		t.Errorf("hardened tcas has %d gap warnings, seed has %d: hardening did not shrink the gap surface", hardened, seed)
	}
	if n := countGaps(Lint(replace.Program(), nil)); n == 0 {
		t.Error("seed replace reports no undetected-escape windows")
	}
}

// TestLintGoldenDefective pins the full diagnostic list for a program
// exercising every diagnostic code at once.
func TestLintGoldenDefective(t *testing.T) {
	u := mustParse(t, `
	det(1, $5, ==, 42)
	det(2, $6, >, $7)
	det(9, $1, ==, 0)
	li $5 #42         -- @0
	li $9 #7          -- @1 dead store: $9 never read
	check #1          -- @2 ok, but $5 dead after (dead guard)
	print $3          -- @3 $3 never written
	jmp end           -- @4
	check #2          -- @5 unreachable check: detector 2 cannot fire
	li $1 #1          -- @6 unreachable code
	end:
	check #8          -- @7 unknown detector: always throws
	halt              -- @8
`)
	got := diagStrings(Lint(u.Program, u.Detectors))
	want := []string{
		"warning unused-detector -: detector 9 is defined but no check references it",
		"warning dead-store @1: value written to $9 is never read (dead store)",
		"warning dead-guard @2: detector 1 guards $5, but $5 is dead after the check: nothing reads the validated value",
		"warning uninitialized-read @3: $3 is read here but never written on any path from entry",
		"warning unreachable-code @5: instructions @5..@6 are unreachable from entry",
		"error unreachable-detector @5: detector 2 can never fire: its check is unreachable",
		"error unknown-detector end (@7): check references detector 8, which is not defined: the check always throws",
		// The trailing halt is dead: the unknown-detector check throws.
		"warning unreachable-code end+1 (@8): instructions @8..@8 are unreachable from entry",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("diagnostics differ.\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
	errs, warns := Summary(Lint(u.Program, u.Detectors))
	if errs != 2 || warns != 6 {
		t.Errorf("Summary = %d errors %d warnings, want 2/6", errs, warns)
	}
}

// TestLintFallsOffEnd checks the end-of-program diagnostics.
func TestLintFallsOffEnd(t *testing.T) {
	u := mustParse(t, "\tli $1 #1\n\tprint $1\n")
	diags := Lint(u.Program, u.Detectors)
	if !HasErrors(diags) {
		t.Fatalf("no error for control falling off the end: %v", diags)
	}
	found := false
	for _, d := range diags {
		if d.Code == CodeFallsOffEnd && d.PC == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing falls-off-end at @1: %v", diags)
	}

	// A trailing passing check also runs off the end.
	u = mustParse(t, "\tdet(1, $1, ==, 0)\n\tcheck #1\n")
	diags = Lint(u.Program, u.Detectors)
	if !HasErrors(diags) {
		t.Errorf("trailing check not flagged: %v", diags)
	}

	// A trailing halt, throw, jmp or jr is fine.
	for _, src := range []string{"\thalt\n", "\tthrow \"x\"\n", "loop:\tjmp loop\n", "\tjr $31\n"} {
		u = mustParse(t, src)
		for _, d := range Lint(u.Program, u.Detectors) {
			if d.Code == CodeFallsOffEnd {
				t.Errorf("%q wrongly flagged falls-off-end", src)
			}
		}
	}
}

// TestLintJSON checks the machine-readable form carries severity names and
// optional fields only when set.
func TestLintJSON(t *testing.T) {
	u := mustParse(t, "\tprint $3\n\thalt\n")
	diags := Lint(u.Program, u.Detectors)
	if len(diags) != 1 {
		t.Fatalf("diags = %v", diags)
	}
	raw, err := json.Marshal(diags[0])
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{`"Severity":"warning"`, `"Code":"uninitialized-read"`, `"Reg":3`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON %s missing %s", s, want)
		}
	}
	if strings.Contains(s, "DetectorID") {
		t.Errorf("unset DetectorID serialized: %s", s)
	}
}
