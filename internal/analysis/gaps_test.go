package analysis

import (
	"testing"

	"symplfied/internal/isa"
)

// gapDiags filters a diagnostic list down to the coverage-gap code.
func gapDiags(diags []Diag) []Diag {
	var out []Diag
	for _, d := range diags {
		if d.Code == CodeUndetectedEscape {
			out = append(out, d)
		}
	}
	return out
}

// TestGapSimpleOutputEscape: an unguarded value printed directly is the
// canonical gap — window from the definition to the print, escaping as
// output at the print itself.
func TestGapSimpleOutputEscape(t *testing.T) {
	a := analyzeSrc(t, "\tli $1 #7\n\tprint $1\n\thalt\n")
	gaps := a.Gaps()
	if len(gaps) != 1 {
		t.Fatalf("gaps = %+v, want exactly one", gaps)
	}
	g := gaps[0]
	if g.DefPC != 0 || g.Reg != isa.Reg(1) || g.Kind != EscapeOutput || g.EscapePC != 1 {
		t.Errorf("gap = %+v, want def@0 $1 output@1", g)
	}
	if len(g.UsePCs) != 1 || g.UsePCs[0] != 1 {
		t.Errorf("UsePCs = %v, want [1]", g.UsePCs)
	}
	if len(g.Window) != 1 || g.Window[0] != 1 {
		t.Errorf("Window = %v, want [1]", g.Window)
	}
}

// TestGapCoveredByCheck: a CHECK reading the value before it can escape
// closes the window — no gap.
func TestGapCoveredByCheck(t *testing.T) {
	a := analyzeSrc(t, `
	det(1, $1, ==, 7)
	li $1 #7
	check #1
	print $1
	halt
`)
	if gaps := a.Gaps(); len(gaps) != 0 {
		t.Errorf("gaps = %+v, want none: the check reads the taint before the print", gaps)
	}
}

// TestGapCheckOnCopyCovers: the taint flows through a register copy, and a
// CHECK on the copy still covers the original definition.
func TestGapCheckOnCopyCovers(t *testing.T) {
	a := analyzeSrc(t, `
	det(1, $2, ==, 7)
	li $1 #7
	mov $2 $1
	check #1
	print $2
	halt
`)
	if gaps := a.Gaps(); len(gaps) != 0 {
		t.Errorf("gaps = %+v, want none: the check on the copy reads the taint", gaps)
	}
}

// TestGapControlEscape: a branch on an unguarded input value is a
// control-flow escape.
func TestGapControlEscape(t *testing.T) {
	a := analyzeSrc(t, "\tread $1\n\tbeqi $1 #0 done\ndone:\thalt\n")
	gaps := a.Gaps()
	if len(gaps) != 1 {
		t.Fatalf("gaps = %+v, want exactly one", gaps)
	}
	if g := gaps[0]; g.Kind != EscapeControl || g.EscapePC != 1 {
		t.Errorf("gap = %+v, want control-flow escape @1", g)
	}
}

// TestGapTaintThroughMemory: a store forwards the taint into memory and a
// later load resurrects it — the definition still escapes at the print.
func TestGapTaintThroughMemory(t *testing.T) {
	a := analyzeSrc(t, `
	li $1 #7
	st $1 100($0)
	ld $2 100($0)
	print $2
	halt
`)
	var found *Gap
	for i := range a.Gaps() {
		if g := &a.Gaps()[i]; g.DefPC == 0 {
			found = g
		}
	}
	if found == nil {
		t.Fatalf("no gap for the definition at @0: %+v", a.Gaps())
	}
	if found.Kind != EscapeOutput || found.EscapePC != 3 {
		t.Errorf("gap = %+v, want output escape @3 through memory", *found)
	}
}

// TestGapDeadValueNoGap: a dead store opens no window (it has its own
// diagnostic).
func TestGapDeadValueNoGap(t *testing.T) {
	a := analyzeSrc(t, "\tli $1 #7\n\thalt\n")
	if gaps := a.Gaps(); len(gaps) != 0 {
		t.Errorf("gaps = %+v, want none for a dead definition", gaps)
	}
}

// TestLintGapDedupe is the regression test for duplicate diagnostics: two
// definitions of the same register on the arms of a diamond converge on one
// read, so the gap pass vouches twice for the same (PC, Code, Reg) finding.
// Lint must emit it once, deterministically.
func TestLintGapDedupe(t *testing.T) {
	a := analyzeSrc(t, `
	read $1
	beqi $1 #0 other
	li $2 #5
	jmp join
other:
	li $2 #9
join:
	print $2
	halt
`)
	diags := gapDiags(a.Lint())
	// The join read of $2 must be reported exactly once despite two
	// converging definitions.
	joinPC := 5
	n := 0
	for _, d := range diags {
		if d.PC == joinPC && d.Reg != nil && *d.Reg == isa.Reg(2) {
			n++
		}
	}
	if n != 1 {
		t.Errorf("got %d undetected-escape-window diags at the join read, want exactly 1:\n%v", n, diags)
	}
	// No two adjacent diagnostics may share the dedupe key, for any code.
	all := a.Lint()
	for i := 1; i < len(all); i++ {
		if sameFinding(all[i-1], all[i]) {
			t.Errorf("duplicate finding survived dedupe: %v / %v", all[i-1], all[i])
		}
	}
	// And the survivor must be deterministic: the message sorting first.
	for _, d := range diags {
		if d.PC == joinPC {
			if want := "a corruption of $2 (defined @2, 2-site window) can reach output @5 before any check reads it"; d.Message != want {
				t.Errorf("kept message %q, want the sort-first duplicate %q", d.Message, want)
			}
		}
	}
}
