package analysis

import "symplfied/internal/isa"

// computeLiveness runs backward may-liveness at instruction granularity:
//
//	LiveOut[pc] = union of LiveIn over successors of pc
//	LiveIn[pc]  = Uses(pc) | (LiveOut[pc] &^ Defs(pc))
//
// A register r with r not in LiveIn[pc] is written before it is read on
// every path from pc, so its value just before pc cannot influence the
// execution. Soundness notes:
//
//   - the CFG over-approximates executable paths, so liveness
//     over-approximates true liveness (safe for pruning);
//   - detector reads at CHECK sites are uses (see Analysis.Uses);
//   - jr's successors are every instruction, so everything any instruction
//     reads is live across a jr — plus jr's own source register;
//   - an instruction that can fault (divide by zero, load of undefined
//     memory, read past the input) terminates the machine when it faults —
//     exceptions halt the program in this model — so a definition that
//     "might not happen" only fails to happen on paths with no further
//     reads, keeping the kill in the transfer function sound;
//   - terminal instructions (halt, throw, fall-off-the-end, a CHECK with an
//     unknown detector) have empty LiveOut.
//
// The fixpoint iterates to convergence; sets only grow, and each of the
// 31 bits per pc can flip once, so termination is immediate.
func (a *Analysis) computeLiveness() {
	n := a.Prog.Len()
	a.LiveIn = make([]RegSet, n)
	a.LiveOut = make([]RegSet, n)
	if n == 0 {
		return
	}

	uses := make([]RegSet, n)
	defs := make([]RegSet, n)
	for pc := 0; pc < n; pc++ {
		uses[pc] = a.Uses(pc)
		defs[pc] = a.Defs(pc)
	}

	// anyLiveIn is the union of LiveIn over all instructions: the LiveOut of
	// a jr, whose computed target may be any pc.
	var buf [2]int
	for changed := true; changed; {
		changed = false
		var anyLiveIn RegSet
		for pc := 0; pc < n; pc++ {
			anyLiveIn = anyLiveIn.Union(a.LiveIn[pc])
		}
		for pc := n - 1; pc >= 0; pc-- {
			var out RegSet
			succs, dynamic := succsOf(a.Prog, a.Detectors, pc, buf[:0])
			if dynamic {
				out = anyLiveIn
			} else {
				for _, s := range succs {
					out = out.Union(a.LiveIn[s])
				}
			}
			in := uses[pc].Union(out &^ defs[pc])
			if out != a.LiveOut[pc] || in != a.LiveIn[pc] {
				a.LiveOut[pc] = out
				a.LiveIn[pc] = in
				changed = true
			}
		}
	}
}

// computeNeverWritten runs forward must-uninitialized analysis — the
// one-bit-per-register dual of reaching definitions: a register is in
// NeverWritten[pc] when no path from entry to pc contains a definition of
// it, i.e. only the synthetic boot definition (the machine zeroes the
// register file) reaches pc. The meet is intersection over predecessors, so
// a read flagged by Lint is a read every execution performs on the boot
// value — "read of a never-written register" — rather than the much noisier
// may-variant that fires on every path-insensitive call-graph artifact.
func (a *Analysis) computeNeverWritten() {
	n := a.Prog.Len()
	a.NeverWritten = make([]RegSet, n)
	if n == 0 {
		return
	}

	// Top is AllRegs (no definition reaches); iterative intersection of
	// predecessor out-sets converges from above. Unreachable pcs stay at
	// top; Lint skips them anyway.
	for pc := range a.NeverWritten {
		a.NeverWritten[pc] = AllRegs
	}

	var buf [2]int
	for changed := true; changed; {
		changed = false
		for pc := 0; pc < n; pc++ {
			if !a.CFG.Reachable[pc] {
				continue
			}
			out := a.NeverWritten[pc] &^ a.Defs(pc)
			succs, dynamic := succsOf(a.Prog, a.Detectors, pc, buf[:0])
			if dynamic {
				// jr may reach any instruction.
				for s := 0; s < n; s++ {
					if meetUninit(a.NeverWritten, s, out) {
						changed = true
					}
				}
				continue
			}
			for _, s := range succs {
				if meetUninit(a.NeverWritten, s, out) {
					changed = true
				}
			}
		}
	}
}

// meetUninit intersects fact into pc's must-uninitialized set, reporting
// whether anything changed.
func meetUninit(sets []RegSet, pc int, fact RegSet) bool {
	merged := sets[pc] & fact
	if merged != sets[pc] {
		sets[pc] = merged
		return true
	}
	return false
}

// LiveRegsAt returns the live-in set at pc as a sorted register slice.
func (a *Analysis) LiveRegsAt(pc int) []isa.Reg {
	if pc < 0 || pc >= len(a.LiveIn) {
		return nil
	}
	return a.LiveIn[pc].Regs()
}
