package analysis

import (
	"fmt"
	"sort"

	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

// Severity ranks a diagnostic.
type Severity int

// Severities. Errors are defects that break the fault-tolerance argument
// (a detector that cannot fire, control running off the program); warnings
// are likely-bug smells that do not invalidate a campaign by themselves.
const (
	SeverityWarning Severity = iota + 1
	SeverityError
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalText renders the severity for JSON diagnostics.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Diagnostic codes.
const (
	CodeUnreachableCode     = "unreachable-code"
	CodeUnreachableDetector = "unreachable-detector"
	CodeUnknownDetector     = "unknown-detector"
	CodeUnusedDetector      = "unused-detector"
	CodeDeadGuard           = "dead-guard"
	CodeFallsOffEnd         = "falls-off-end"
	CodeBadBranchTarget     = "bad-branch-target"
	CodeUninitRead          = "uninitialized-read"
	CodeDeadStore           = "dead-store"
	CodeUndetectedEscape    = "undetected-escape-window"
)

// Diag is one diagnostic from the lint pass.
type Diag struct {
	// Severity ranks the finding; Code is its stable machine-readable kind.
	Severity Severity
	Code     string
	// PC is the instruction the diagnostic anchors to, -1 for program-level
	// findings (e.g. a detector no CHECK references).
	PC int
	// Where is the human-readable location for PC (label+offset).
	Where string `json:",omitempty"`
	// Reg is the register involved, if any.
	Reg *isa.Reg `json:",omitempty"`
	// DetectorID is the detector involved, if any.
	DetectorID *int64 `json:",omitempty"`
	// Message explains the finding.
	Message string
}

// String renders the diagnostic as "severity code @pc: message".
func (d Diag) String() string {
	loc := "-"
	if d.PC >= 0 {
		loc = fmt.Sprintf("@%d", d.PC)
		if d.Where != "" {
			loc = d.Where
		}
	}
	return fmt.Sprintf("%s %s %s: %s", d.Severity, d.Code, loc, d.Message)
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diag) bool {
	for _, d := range diags {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// Lint analyzes prog (with dets) and returns its diagnostics, sorted by
// anchor PC then code. It reports:
//
//   - unreachable code (warning; one per basic block);
//   - control that can run past the last instruction (error);
//   - branch targets outside the program (error; defense in depth — the
//     assembler rejects these at build time);
//   - CHECKs naming a detector the table does not define (error: the check
//     always throws) and CHECKs that can never execute (error: the
//     detector's coverage is an illusion, paper Section 5.3);
//   - detectors no CHECK references (warning) and detectors guarding a
//     register that is dead immediately after the check (warning: the check
//     validates a value nothing reads);
//   - reads of registers no path from entry ever writes (warning) and
//     stores into registers that are dead afterwards (warning);
//   - undetected-escape windows (warning): first reads of live values whose
//     corruption can reach output or control flow before any CHECK sees it
//     (the coverage-gap analysis, see Gaps).
func Lint(prog *isa.Program, dets *detector.Table) []Diag {
	return Analyze(prog, dets).Lint()
}

// Lint derives the diagnostics from the computed analysis. See the package
// function Lint for the catalogue.
func (a *Analysis) Lint() []Diag {
	var diags []Diag
	prog, g := a.Prog, a.CFG
	add := func(d Diag) {
		if d.PC >= 0 {
			d.Where = prog.Locate(d.PC)
		}
		diags = append(diags, d)
	}

	// Unreachable blocks (one diagnostic per block, anchored at its start).
	for _, b := range g.Blocks {
		if !g.Reachable[b.Start] {
			add(Diag{
				Severity: SeverityWarning, Code: CodeUnreachableCode, PC: b.Start,
				Message: fmt.Sprintf("instructions @%d..@%d are unreachable from entry", b.Start, b.End-1),
			})
		}
	}

	// Control flow off the end, and (defensively) wild branch targets.
	var buf [2]int
	for pc := 0; pc < prog.Len(); pc++ {
		in := prog.At(pc)
		if in.IsBranch() && (in.Target < 0 || in.Target >= prog.Len()) {
			add(Diag{
				Severity: SeverityError, Code: CodeBadBranchTarget, PC: pc,
				Message: fmt.Sprintf("%s targets @%d, outside the program", in.Op, in.Target),
			})
			continue
		}
		if pc != prog.Len()-1 || !g.Reachable[pc] {
			continue
		}
		if succs, dynamic := succsOf(prog, a.Detectors, pc, buf[:0]); !dynamic && len(succs) == 0 {
			switch in.Op {
			case isa.OpHalt, isa.OpThrow:
			case isa.OpCheck:
				// A trailing check falls through past the end when it passes.
				if _, ok := a.Detectors.Lookup(in.Imm); ok {
					add(Diag{
						Severity: SeverityError, Code: CodeFallsOffEnd, PC: pc,
						Message: "a passing check falls off the end of the program (illegal instruction)",
					})
				}
			default:
				add(Diag{
					Severity: SeverityError, Code: CodeFallsOffEnd, PC: pc,
					Message: fmt.Sprintf("control falls off the end of the program after %s (illegal instruction)", in.Op),
				})
			}
		}
	}

	// Detector coverage: walk every CHECK site, then the table.
	checkSites := map[int64][]int{} // detector ID -> check pcs
	for pc := 0; pc < prog.Len(); pc++ {
		in := prog.At(pc)
		if in.Op != isa.OpCheck {
			continue
		}
		id := in.Imm
		checkSites[id] = append(checkSites[id], pc)
		d, known := a.Detectors.Lookup(id)
		if !known {
			if g.Reachable[pc] {
				add(Diag{
					Severity: SeverityError, Code: CodeUnknownDetector, PC: pc, DetectorID: &in.Imm,
					Message: fmt.Sprintf("check references detector %d, which is not defined: the check always throws", id),
				})
			}
			continue
		}
		if !g.Reachable[pc] {
			add(Diag{
				Severity: SeverityError, Code: CodeUnreachableDetector, PC: pc, DetectorID: &in.Imm,
				Message: fmt.Sprintf("detector %d can never fire: its check is unreachable", id),
			})
			continue
		}
		if !d.Target.IsMem && d.Target.Reg != isa.RegZero && !a.LiveOut[pc].Has(d.Target.Reg) {
			r := d.Target.Reg
			add(Diag{
				Severity: SeverityWarning, Code: CodeDeadGuard, PC: pc, Reg: &r, DetectorID: &in.Imm,
				Message: fmt.Sprintf("detector %d guards %s, but %s is dead after the check: nothing reads the validated value", id, r, r),
			})
		}
	}
	for _, d := range a.Detectors.All() {
		if len(checkSites[d.ID]) == 0 {
			id := d.ID
			add(Diag{
				Severity: SeverityWarning, Code: CodeUnusedDetector, PC: -1, DetectorID: &id,
				Message: fmt.Sprintf("detector %d is defined but no check references it", id),
			})
		}
	}

	// Dataflow smells on reachable code: uninitialized reads and dead
	// stores. Reads through detectors count (Uses includes them).
	for pc := 0; pc < prog.Len(); pc++ {
		if !g.Reachable[pc] {
			continue
		}
		for _, r := range a.Uses(pc).Regs() {
			if a.NeverWritten[pc].Has(r) {
				r := r
				add(Diag{
					Severity: SeverityWarning, Code: CodeUninitRead, PC: pc, Reg: &r,
					Message: fmt.Sprintf("%s is read here but never written on any path from entry", r),
				})
			}
		}
		in := prog.At(pc)
		if isPureDef(in) {
			for _, r := range a.Defs(pc).Regs() {
				if !a.LiveOut[pc].Has(r) {
					r := r
					add(Diag{
						Severity: SeverityWarning, Code: CodeDeadStore, PC: pc, Reg: &r,
						Message: fmt.Sprintf("value written to %s is never read (dead store)", r),
					})
				}
			}
		}
	}

	// Coverage gaps: live windows whose corruption can reach output or
	// control flow before any check reads it. Anchored at the first read —
	// the pc a synthesized CHECK would precede — so several definitions
	// converging on one read each vouch for the same finding (deduped below).
	for _, gap := range a.Gaps() {
		for _, use := range gap.UsePCs {
			r := gap.Reg
			add(Diag{
				Severity: SeverityWarning, Code: CodeUndetectedEscape, PC: use, Reg: &r,
				Message: fmt.Sprintf("a corruption of %s (defined @%d, %d-site window) can reach %s @%d before any check reads it",
					r, gap.DefPC, len(gap.Window), gap.Kind, gap.EscapePC),
			})
		}
	}

	sortDiags(diags)
	return dedupeDiags(diags)
}

// sortDiags orders diagnostics deterministically by (PC, Code, Reg,
// DetectorID, Message). The full key makes the order — and which duplicate
// dedupeDiags keeps — independent of emission order.
func sortDiags(diags []Diag) {
	ord := func(d Diag) (reg int, det int64) {
		reg, det = -1, -1
		if d.Reg != nil {
			reg = int(*d.Reg)
		}
		if d.DetectorID != nil {
			det = *d.DetectorID
		}
		return reg, det
	}
	sort.SliceStable(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.PC != dj.PC {
			return di.PC < dj.PC
		}
		if di.Code != dj.Code {
			return di.Code < dj.Code
		}
		ri, deti := ord(di)
		rj, detj := ord(dj)
		if ri != rj {
			return ri < rj
		}
		if deti != detj {
			return deti < detj
		}
		return di.Message < dj.Message
	})
}

// dedupeDiags drops adjacent diagnostics sharing (Severity, Code, PC, Reg,
// DetectorID) from a sorted slice, keeping the first. A block reachable
// along multiple edges — or several definitions converging on one read —
// would otherwise mint the same finding more than once.
func dedupeDiags(diags []Diag) []Diag {
	out := diags[:0]
	for _, d := range diags {
		if n := len(out); n > 0 && sameFinding(out[n-1], d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// sameFinding reports whether two diagnostics are the same finding for
// dedupe purposes: identical anchor and kind, messages aside.
func sameFinding(a, b Diag) bool {
	if a.Severity != b.Severity || a.Code != b.Code || a.PC != b.PC {
		return false
	}
	if (a.Reg == nil) != (b.Reg == nil) || (a.Reg != nil && *a.Reg != *b.Reg) {
		return false
	}
	if (a.DetectorID == nil) != (b.DetectorID == nil) || (a.DetectorID != nil && *a.DetectorID != *b.DetectorID) {
		return false
	}
	return true
}

// isPureDef reports whether the instruction's only observable effect is the
// register it writes, making an unread result a dead store. Loads can fault
// (and model the memory read), reads consume input, and jal links a return
// address as part of transferring control — none of those writes is "dead"
// in a way worth flagging.
func isPureDef(in isa.Instr) bool {
	switch in.Op.Format() {
	case isa.FormatR3, isa.FormatR2I, isa.FormatR2, isa.FormatRI:
		switch in.Op {
		case isa.OpDiv, isa.OpDivi, isa.OpMod, isa.OpModi:
			// May raise divide-by-zero: executed for effect, never flagged.
			return false
		}
		return true
	}
	return false
}

// Summary tallies diagnostics by severity for reports and obs counters.
func Summary(diags []Diag) (errors, warnings int) {
	for _, d := range diags {
		if d.Severity == SeverityError {
			errors++
		} else {
			warnings++
		}
	}
	return errors, warnings
}
