package analysis

import (
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
)

// mustParse assembles src for tests.
func mustParse(t *testing.T, src string) *asm.Unit {
	t.Helper()
	return asm.MustParse("t", src)
}

// analyzeSrc assembles src and analyzes it with its own detector table.
func analyzeSrc(t *testing.T, src string) *Analysis {
	t.Helper()
	u := mustParse(t, src)
	return Analyze(u.Program, u.Detectors)
}

func regset(rs ...isa.Reg) RegSet {
	var s RegSet
	for _, r := range rs {
		s = s.Add(r)
	}
	return s
}

func TestRegSetBasics(t *testing.T) {
	var s RegSet
	if s.Has(1) || s.Len() != 0 {
		t.Fatalf("empty set misbehaves: %v", s)
	}
	s = s.Add(1).Add(5).Add(31).Add(isa.RegZero)
	if s.Has(isa.RegZero) {
		t.Errorf("RegZero must never be a member")
	}
	if got := s.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if got := s.String(); got != "{$1 $5 $31}" {
		t.Errorf("String = %q", got)
	}
	if AllRegs.Len() != isa.NumRegs-1 || AllRegs.Has(isa.RegZero) {
		t.Errorf("AllRegs wrong: %v", AllRegs)
	}
	if s.Remove(5).Has(5) {
		t.Errorf("Remove failed")
	}
}

// TestLivenessStraightLine checks the kill/gen transfer on a straight-line
// program: a value is live from its definition's successors back to its use,
// and dead after its last read.
func TestLivenessStraightLine(t *testing.T) {
	a := analyzeSrc(t, `
	li $1 #3
	addi $2 $1 #1
	print $2
	halt
`)
	want := []struct {
		pc      int
		in, out RegSet
	}{
		{0, regset(), regset(1)},
		{1, regset(1), regset(2)},
		{2, regset(2), regset()},
		{3, regset(), regset()},
	}
	for _, w := range want {
		if a.LiveIn[w.pc] != w.in || a.LiveOut[w.pc] != w.out {
			t.Errorf("@%d: LiveIn=%v LiveOut=%v, want %v/%v",
				w.pc, a.LiveIn[w.pc], a.LiveOut[w.pc], w.in, w.out)
		}
	}
	if !a.DeadAt(0, 1) || a.DeadAt(1, 1) {
		t.Errorf("DeadAt wrong for $1: in=%v", a.LiveIn[1])
	}
	// $5 is never touched: dead everywhere.
	for pc := 0; pc < 4; pc++ {
		if !a.DeadAt(pc, 5) {
			t.Errorf("untouched $5 should be dead at @%d", pc)
		}
	}
}

// TestLivenessBranchJoin checks the union over a diamond: a register read on
// only one arm is live before the branch.
func TestLivenessBranchJoin(t *testing.T) {
	a := analyzeSrc(t, `
	read $1
	beq $1 0 else     -- @1
	print $2          -- @2 then-arm reads $2
	jmp done
	else:
	print $3          -- @4 else-arm reads $3
	done:
	halt
`)
	if got := a.LiveIn[1]; got != regset(1, 2, 3) {
		t.Errorf("LiveIn at branch = %v, want {$1 $2 $3}", got)
	}
	// After the branch decides, only the taken arm's register is live.
	if got := a.LiveIn[2]; got != regset(2) {
		t.Errorf("LiveIn at then-arm = %v, want {$2}", got)
	}
	if got := a.LiveIn[4]; got != regset(3) {
		t.Errorf("LiveIn at else-arm = %v, want {$3}", got)
	}
}

// TestLivenessLoop checks the fixpoint over a back edge: the counter and the
// accumulator stay live around the loop, and the loop-carried read keeps a
// redefined register live at its own definition's input.
func TestLivenessLoop(t *testing.T) {
	a := analyzeSrc(t, `
	li $1 #5          -- @0 counter
	li $2 #0          -- @1 acc
	loop:
	add $2 $2 $1      -- @2
	subi $1 $1 #1     -- @3
	bne $1 0 loop     -- @4
	print $2          -- @5
	halt
`)
	// Around the loop both $1 and $2 are live.
	for pc := 2; pc <= 4; pc++ {
		if !a.LiveIn[pc].Has(1) || !a.LiveIn[pc].Has(2) {
			t.Errorf("LiveIn@%d = %v, want $1 and $2 live", pc, a.LiveIn[pc])
		}
	}
	// Before the counter init, nothing is live; before the acc init, $1 is.
	if got := a.LiveIn[0]; got != regset() {
		t.Errorf("LiveIn@0 = %v, want {}", got)
	}
	if got := a.LiveIn[1]; got != regset(1) {
		t.Errorf("LiveIn@1 = %v, want {$1}", got)
	}
	// After the loop exits only $2 (printed) is live.
	if got := a.LiveIn[5]; got != regset(2) {
		t.Errorf("LiveIn@5 = %v, want {$2}", got)
	}
}

// TestLivenessDetectorReads checks that a CHECK counts its detector's target
// and expression registers as uses — the soundness condition for pruning
// injections the paper's Section 5.3 detectors would have caught.
func TestLivenessDetectorReads(t *testing.T) {
	a := analyzeSrc(t, `
	det(7, $4, ==, $5 + $6)
	li $4 #1          -- @0
	li $5 #2          -- @1
	li $6 #3          -- @2
	check #7          -- @3
	halt              -- @4
`)
	if got := a.Uses(3); got != regset(4, 5, 6) {
		t.Errorf("check uses = %v, want {$4 $5 $6}", got)
	}
	if got := a.LiveIn[2]; !got.Has(4) || !got.Has(5) {
		t.Errorf("detector regs not live before their defs complete: %v", got)
	}
	if a.DeadAt(3, 4) || a.DeadAt(3, 5) || a.DeadAt(3, 6) {
		t.Errorf("detector-read registers must be live at the check")
	}
}

// TestLivenessUnknownDetectorTerminal checks that a CHECK naming an unknown
// detector is terminal: it throws before reading anything, so nothing is
// live out of it.
func TestLivenessUnknownDetectorTerminal(t *testing.T) {
	a := analyzeSrc(t, `
	li $1 #1
	check #9
	print $1
	halt
`)
	if got := a.LiveOut[1]; got != regset() {
		t.Errorf("LiveOut of unknown-detector check = %v, want {}", got)
	}
	if !a.CFG.Reachable[1] || a.CFG.Reachable[2] {
		t.Errorf("reachability past a throwing check is wrong: %v", a.CFG.Reachable)
	}
}

// TestLivenessJrConservative checks the dynamic-jump convention: a jr may
// reach any instruction, so every register any instruction reads is live
// across it.
func TestLivenessJrConservative(t *testing.T) {
	a := analyzeSrc(t, `
	li $31 #3
	jr $31            -- @1
	print $7          -- @2
	halt
`)
	if got := a.LiveOut[1]; !got.Has(7) {
		t.Errorf("LiveOut of jr = %v, want $7 live (jr may land on the print)", got)
	}
	if !a.LiveIn[1].Has(31) {
		t.Errorf("jr's own target register must be live: %v", a.LiveIn[1])
	}
	// With a jr present, everything is conservatively reachable.
	for pc, r := range a.CFG.Reachable {
		if !r {
			t.Errorf("@%d unreachable despite dynamic jump", pc)
		}
	}
}

// TestCFGBlocksAndReachability checks block boundaries and that code after
// an unconditional jump with no inbound label is unreachable.
func TestCFGBlocksAndReachability(t *testing.T) {
	a := analyzeSrc(t, `
	li $1 #1
	jmp done          -- @1
	li $2 #2          -- @2 unreachable
	li $3 #3          -- @3 unreachable, same block
	done:
	halt              -- @4
`)
	g := a.CFG
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d (%+v), want 3", len(g.Blocks), g.Blocks)
	}
	if g.Reachable[2] || g.Reachable[3] {
		t.Errorf("dead block marked reachable")
	}
	if !g.Reachable[0] || !g.Reachable[4] {
		t.Errorf("live blocks marked unreachable")
	}
	if g.BlockOf[2] != g.BlockOf[3] {
		t.Errorf("straight-line dead code split across blocks")
	}
	b0 := g.Blocks[g.BlockOf[0]]
	if len(b0.Succs) != 1 || g.Blocks[b0.Succs[0]].Start != 4 {
		t.Errorf("entry block successors = %+v", b0)
	}
}

// TestNeverWritten checks the forward must-pass: a register written on no
// path is flagged, one defined on even a single path to the read is not.
func TestNeverWritten(t *testing.T) {
	a := analyzeSrc(t, `
	read $1
	beq $1 0 skip     -- @1
	li $2 #1          -- @2 defines $2 on one arm
	skip:
	print $2          -- @3 $2 written on a path: not "never written"
	print $3          -- @4 $3 written nowhere
	halt
`)
	if a.NeverWritten[3].Has(2) {
		t.Errorf("$2 is defined on one path; must-analysis should clear it")
	}
	if !a.NeverWritten[4].Has(3) {
		t.Errorf("$3 is written nowhere; should be flagged at its read")
	}
	if a.NeverWritten[1].Has(1) {
		t.Errorf("$1 defined before the branch, wrongly in NeverWritten")
	}
}

// TestAnalyzeNilDetectors checks Analyze tolerates a nil table.
func TestAnalyzeNilDetectors(t *testing.T) {
	u := asm.MustParse("t", "\tli $1 #1\n\thalt\n")
	a := Analyze(u.Program, nil)
	if a.Detectors == nil || len(a.LiveIn) != 2 {
		t.Fatalf("nil-table analysis broken")
	}
}

// TestAnalyzeEmptyProgram checks the degenerate empty program.
func TestAnalyzeEmptyProgram(t *testing.T) {
	prog, err := isa.NewProgram("empty", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(prog, nil)
	if len(a.LiveIn) != 0 || len(a.CFG.Blocks) != 0 {
		t.Fatalf("empty program analysis: %+v", a)
	}
	if a.DeadAt(0, 1) {
		t.Errorf("out-of-range pc must not report dead")
	}
}
