package analysis

import (
	"sort"

	"symplfied/internal/isa"
)

// EscapeKind classifies where a corrupted value first becomes observable.
type EscapeKind int

// Escape kinds, in diagnostic-priority order: reaching program output is the
// paper's canonical undetected failure; influencing control flow (a branch,
// an indirect jump, a memory address, a trap condition) covers the rest.
const (
	EscapeOutput EscapeKind = iota + 1
	EscapeControl
)

// String names the escape kind for messages.
func (k EscapeKind) String() string {
	switch k {
	case EscapeOutput:
		return "output"
	case EscapeControl:
		return "control flow"
	}
	return "escape"
}

// Gap is one undetected-escape window: a register defined at DefPC whose
// value, if corrupted anywhere in the window, can reach program output or
// control flow without any CHECK reading the corrupted data first. It is the
// static complement of the checker's undetected-corruption verdicts — every
// gap names injection sites whose failures no detector can catch — and the
// work list of the detector-hardening pass (internal/harden).
type Gap struct {
	// DefPC is the instruction defining the unprotected value; Reg the
	// register carrying it.
	DefPC int
	Reg   isa.Reg
	// UsePCs are the first reads of Reg on paths from DefPC, ascending — the
	// frontier where a synthesized CHECK would close the window (insert
	// before the read).
	UsePCs []int
	// Window lists every pc, ascending, where the in-flight value is live —
	// the injection sites the gap exposes. It includes the use frontier.
	Window []int
	// EscapePC is the lowest pc where the taint becomes observable, and Kind
	// says how.
	EscapePC int
	Kind     EscapeKind
}

// Gaps returns the program's undetected-escape windows, ordered by
// (DefPC, Reg). Computed on first call and cached; Analysis stays safe to
// share. The walk is a may-taint escape analysis seeded at each reachable
// definition: the taint flows through register copies, arithmetic and
// memory, dies where a CHECK reads any tainted location (over-approximating
// detection — the sound direction for a warning, and internal/harden
// re-verifies empirically), and escapes at a print of tainted data
// (EscapeOutput) or at a branch, indirect jump, memory address, or divisor
// computed from it (EscapeControl).
func (a *Analysis) Gaps() []Gap {
	a.gapsOnce.Do(func() { a.gaps = a.computeGaps() })
	return a.gaps
}

// Consts returns the constant-propagation facts (see the Consts type),
// computed on first call and cached.
func (a *Analysis) Consts() *Consts {
	a.constsOnce.Do(func() { a.consts = a.computeConsts(a.dynTargets()) })
	return a.consts
}

// dynTargets caches the assumed jr successor set shared by the forward
// passes.
func (a *Analysis) dynTargets() []int {
	a.dynOnce.Do(func() { a.dyn = dynContinuations(a.Prog) })
	return a.dyn
}

func (a *Analysis) computeGaps() []Gap {
	var gaps []Gap
	dyn := a.dynTargets()
	for pc := 0; pc < a.Prog.Len(); pc++ {
		if !a.CFG.Reachable[pc] {
			continue
		}
		for _, r := range a.Defs(pc).Regs() {
			if !a.LiveOut[pc].Has(r) {
				continue // dead store; flagged separately
			}
			escPC, kind, escapes := a.escapeOf(pc, r, dyn)
			if !escapes {
				continue
			}
			window, uses := a.windowOf(pc, r, dyn)
			if len(uses) == 0 {
				continue
			}
			gaps = append(gaps, Gap{
				DefPC: pc, Reg: r,
				UsePCs: uses, Window: window,
				EscapePC: escPC, Kind: kind,
			})
		}
	}
	return gaps
}

// windowOf walks forward from defPC while r carries the defined value,
// returning the live window pcs and the first-read frontier (both sorted
// ascending). Paths stop at a read of r, at a redefinition, or where r goes
// dead.
func (a *Analysis) windowOf(defPC int, r isa.Reg, dyn []int) (window, uses []int) {
	prog := a.Prog
	n := prog.Len()
	seen := make([]bool, n)
	member := make([]bool, n)
	var work []int
	var buf [2]int
	push := func(pc int) {
		if pc >= 0 && pc < n && !seen[pc] {
			seen[pc] = true
			work = append(work, pc)
		}
	}
	succs, dynamic := succsOf(prog, a.Detectors, defPC, buf[:0])
	for _, s := range succs {
		push(s)
	}
	if dynamic {
		for _, s := range dyn {
			push(s)
		}
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if !a.LiveIn[pc].Has(r) {
			continue // value dead here: not a window site
		}
		member[pc] = true
		if a.Uses(pc).Has(r) {
			uses = append(uses, pc)
			continue // frontier: the value is consumed
		}
		if a.Defs(pc).Has(r) {
			continue // redefined unread
		}
		succs, dynamic := succsOf(prog, a.Detectors, pc, buf[:0])
		for _, s := range succs {
			push(s)
		}
		if dynamic {
			for _, s := range dyn {
				push(s)
			}
		}
	}
	for pc := 0; pc < n; pc++ {
		if member[pc] {
			window = append(window, pc)
		}
	}
	sort.Ints(uses)
	return window, uses
}

// taintFact is the escape walk's per-pc state: the registers that may carry
// data derived from the corrupted value, plus one coarse bit for all of
// memory (a store of tainted data taints it; it is never cleared — the
// sound direction for a may analysis).
type taintFact struct {
	regs RegSet
	mem  bool
}

// escapeOf runs the may-taint walk from a definition of r at defPC and
// reports the lowest pc (ties broken toward EscapeOutput) where the taint
// escapes before any CHECK reads it, if any.
func (a *Analysis) escapeOf(defPC int, r isa.Reg, dyn []int) (escPC int, kind EscapeKind, escapes bool) {
	prog := a.Prog
	n := prog.Len()
	in := make([]taintFact, n)
	seen := make([]bool, n)
	escPC = -1
	var work []int
	push := func(pc int, f taintFact) {
		if pc < 0 || pc >= n || (f.regs == 0 && !f.mem) {
			return
		}
		if !seen[pc] {
			seen[pc] = true
			in[pc] = f
			work = append(work, pc)
			return
		}
		merged := taintFact{regs: in[pc].regs.Union(f.regs), mem: in[pc].mem || f.mem}
		if merged != in[pc] {
			in[pc] = merged
			work = append(work, pc)
		}
	}
	note := func(pc int, k EscapeKind) {
		if escPC == -1 || pc < escPC || (pc == escPC && k < kind) {
			escPC, kind = pc, k
		}
	}

	var buf [2]int
	seed := taintFact{regs: RegSet(0).Add(r)}
	succs, dynamic := succsOf(prog, a.Detectors, defPC, buf[:0])
	for _, s := range succs {
		push(s, seed)
	}
	if dynamic {
		for _, s := range dyn {
			push(s, seed)
		}
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		f := in[pc]
		inst := prog.At(pc)

		var srcs RegSet
		for _, s := range inst.SrcRegs() {
			srcs = srcs.Add(s)
		}
		srcTainted := f.regs&srcs != 0

		switch inst.Op {
		case isa.OpPrint:
			if srcTainted {
				note(pc, EscapeOutput)
			}
		case isa.OpBeq, isa.OpBne, isa.OpBeqi, isa.OpBnei, isa.OpJr:
			if srcTainted {
				note(pc, EscapeControl)
			}
		case isa.OpDiv, isa.OpMod:
			// A corrupted divisor can raise divide-by-zero.
			if f.regs.Has(inst.Rt) {
				note(pc, EscapeControl)
			}
		case isa.OpLd, isa.OpSt:
			// A corrupted address reads or writes a wild location.
			if f.regs.Has(inst.Rs) {
				note(pc, EscapeControl)
			}
		case isa.OpCheck:
			if d, ok := a.Detectors.Lookup(inst.Imm); ok {
				dregs, dmem := DetectorReads(d)
				if f.regs&dregs != 0 || (dmem && f.mem) {
					continue // a check reads the taint first: covered path
				}
			}
		}

		// Value flow into the written registers (and memory, for stores).
		out := f
		flow := srcTainted
		switch inst.Op {
		case isa.OpLd:
			// Tainted cell, or tainted address selecting any cell.
			flow = f.mem || f.regs.Has(inst.Rs)
		case isa.OpSt:
			if f.regs.Has(inst.Rt) {
				out.mem = true
			}
			flow = false
		case isa.OpLi, isa.OpLui, isa.OpRead, isa.OpJal:
			flow = false // fresh value overwrites any taint
		}
		for _, d := range inst.DstRegs() {
			if flow {
				out.regs = out.regs.Add(d)
			} else {
				out.regs = out.regs.Remove(d)
			}
		}

		succs, dynamic := succsOf(prog, a.Detectors, pc, buf[:0])
		for _, s := range succs {
			push(s, out)
		}
		if dynamic {
			for _, s := range dyn {
				push(s, out)
			}
		}
	}
	return escPC, kind, escPC >= 0
}
