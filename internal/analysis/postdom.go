package analysis

// Post-dominance over the block CFG. A block P post-dominates a block B when
// every path from B to program exit passes through P. The immediate
// post-dominator of a branching block is where its diverged paths provably
// rejoin, which is exactly where the checker's state merging
// (checker.Spec.MergeStates) tries to fuse forked symbolic states back into
// one: the disjuncts have run out of reasons to differ in control flow.
//
// The computation is conservative with respect to the machine semantics:
//
//   - all terminal blocks (halt, throw, running off the end) share one
//     virtual exit node;
//   - a jr block's successors are every block plus the virtual exit (an
//     out-of-range target is a terminal exception), so a jr block is
//     usually post-dominated only by itself;
//   - mid-block exceptional exits (division by zero, undefined loads) are
//     ignored, as is convention for block-level post-dominance. Merging
//     does not rely on post-dominance for soundness — states are fused only
//     after an exact configuration comparison — so this only shapes where
//     the checker looks for merge partners.

// PostDom holds the post-dominator tree of a CFG and the derived merge
// points used by state merging.
type PostDom struct {
	// IPDom[bi] is the immediate post-dominator of block bi as a block
	// index, or -1 when the block is post-dominated only by the virtual
	// exit (terminal blocks, jr blocks, and the last block on every path).
	IPDom []int
	// MergeBlock[bi] reports that block bi is the immediate post-dominator
	// of at least one multi-successor block: forked paths rejoin at its
	// first instruction.
	MergeBlock []bool

	mergePC []bool // per pc: pc is the first instruction of a merge block
}

// computePostDom builds the post-dominator tree for g using the standard
// iterative set intersection over the reverse graph with a virtual exit.
// Programs are small (hundreds of blocks), so bitset fixpoint iteration is
// simpler and fast enough.
func computePostDom(g *CFG) *PostDom {
	m := len(g.Blocks)
	pd := &PostDom{
		IPDom:      make([]int, m),
		MergeBlock: make([]bool, m),
		mergePC:    make([]bool, g.Prog.Len()),
	}
	if m == 0 {
		return pd
	}

	// Successor sets over block indices 0..m-1 plus the virtual exit m.
	exit := m
	succs := make([][]int, m)
	for bi, b := range g.Blocks {
		switch {
		case b.DynamicSucc:
			// jr: any block, or a terminal exception on a bad target.
			all := make([]int, 0, m+1)
			for j := 0; j < m; j++ {
				all = append(all, j)
			}
			succs[bi] = append(all, exit)
		case len(b.Succs) == 0:
			succs[bi] = []int{exit}
		default:
			succs[bi] = b.Succs
		}
	}

	// pdom as bitsets over m+1 nodes. Initialize every real block to the
	// full set and the exit to itself, then intersect to a fixpoint.
	words := (m + 1 + 63) / 64
	full := make([]uint64, words)
	for i := 0; i <= m; i++ {
		full[i/64] |= 1 << (i % 64)
	}
	pdom := make([][]uint64, m+1)
	for i := 0; i < m; i++ {
		pdom[i] = append([]uint64(nil), full...)
	}
	pdom[exit] = make([]uint64, words)
	pdom[exit][exit/64] |= 1 << (exit % 64)

	tmp := make([]uint64, words)
	for changed := true; changed; {
		changed = false
		for bi := m - 1; bi >= 0; bi-- {
			copy(tmp, full)
			for _, s := range succs[bi] {
				if s == bi {
					continue // self-loop contributes nothing to the meet
				}
				for w := range tmp {
					tmp[w] &= pdom[s][w]
				}
			}
			tmp[bi/64] |= 1 << (bi % 64)
			for w := range tmp {
				if tmp[w] != pdom[bi][w] {
					pdom[bi] = append(pdom[bi][:0], tmp...)
					changed = true
					break
				}
			}
		}
	}

	has := func(set []uint64, i int) bool { return set[i/64]&(1<<(i%64)) != 0 }

	// Immediate post-dominator: the strict post-dominator x of b such that
	// every other strict post-dominator of b also post-dominates x.
	for bi := 0; bi < m; bi++ {
		pd.IPDom[bi] = -1
		var strict []int
		for j := 0; j < m; j++ {
			if j != bi && has(pdom[bi], j) {
				strict = append(strict, j)
			}
		}
		for _, x := range strict {
			ok := true
			for _, q := range strict {
				if q != x && !has(pdom[x], q) {
					ok = false
					break
				}
			}
			if ok {
				pd.IPDom[bi] = x
				break
			}
		}
	}

	// Merge points: the immediate post-dominator of any block with two or
	// more ways out (static branches or a dynamic jr fan-out).
	for bi, b := range g.Blocks {
		if len(b.Succs) < 2 && !b.DynamicSucc {
			continue
		}
		if j := pd.IPDom[bi]; j >= 0 {
			pd.MergeBlock[j] = true
			pd.mergePC[g.Blocks[j].Start] = true
		}
	}
	return pd
}

// MergePoint reports whether pc is the first instruction of a block where
// diverged paths provably rejoin (an immediate post-dominator of a branching
// block). The checker defers states arriving here so skeleton-equal siblings
// can be fused.
func (p *PostDom) MergePoint(pc int) bool {
	return p != nil && pc >= 0 && pc < len(p.mergePC) && p.mergePC[pc]
}

// IPostDomPC returns the pc of the first instruction of the immediate
// post-dominator of pc's block, or -1 when the block is post-dominated only
// by the virtual exit. cfg must be the CFG the PostDom was computed from.
func (p *PostDom) IPostDomPC(cfg *CFG, pc int) int {
	if p == nil || pc < 0 || pc >= len(cfg.BlockOf) {
		return -1
	}
	bi := cfg.BlockOf[pc]
	if bi < 0 || bi >= len(p.IPDom) || p.IPDom[bi] < 0 {
		return -1
	}
	return cfg.Blocks[p.IPDom[bi]].Start
}
