package analysis

import (
	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

// CFG is the control-flow graph of a program at instruction granularity,
// grouped into basic blocks. Successor edges follow the machine semantics
// (internal/machine, internal/symexec):
//
//   - halt and throw are terminal;
//   - a CHECK whose detector exists falls through on pass (a failing check
//     throws, which is terminal); a CHECK naming an unknown detector always
//     throws and is terminal;
//   - conditional branches go to the resolved target and fall through;
//   - jmp/jal go to the target only (jal links RA but does not fall through);
//   - jr computes its target from a register, so it may reach any
//     instruction (the machine raises a terminal illegal-instruction
//     exception for out-of-range targets);
//   - running past the last instruction is a terminal illegal-instruction
//     exception, not an edge.
type CFG struct {
	Prog *isa.Program

	// Blocks lists the basic blocks in address order.
	Blocks []Block
	// BlockOf maps each pc to the index of its containing block.
	BlockOf []int
	// Reachable[pc] reports whether any path from entry (pc 0) reaches pc.
	Reachable []bool
	// HasDynamicJump is true when the program contains a jr: every
	// instruction is then conservatively reachable once any jr is.
	HasDynamicJump bool
}

// Block is a maximal straight-line run of instructions [Start, End) entered
// only at Start and left only at End-1.
type Block struct {
	Start, End int
	// Succs lists successor block indices in ascending order. A jr block
	// has DynamicSucc set instead of materializing an edge to every block.
	Succs []int
	// DynamicSucc marks a block ending in jr: its successors are every block.
	DynamicSucc bool
}

// succsOf returns the static successor pcs of the instruction at pc, with
// dynamic=true for jr (whose successors are every valid pc). The slice is
// appended to buf to avoid per-call allocation in the dataflow loops.
func succsOf(prog *isa.Program, dets *detector.Table, pc int, buf []int) (succs []int, dynamic bool) {
	in := prog.At(pc)
	succs = buf[:0]
	fall := func() {
		if pc+1 < prog.Len() {
			succs = append(succs, pc+1)
		}
	}
	switch in.Op {
	case isa.OpHalt, isa.OpThrow:
		return succs, false
	case isa.OpJr:
		return succs, true
	case isa.OpJmp, isa.OpJal:
		succs = append(succs, in.Target)
		return succs, false
	case isa.OpBeq, isa.OpBne, isa.OpBeqi, isa.OpBnei:
		succs = append(succs, in.Target)
		if pc+1 < prog.Len() && in.Target != pc+1 {
			succs = append(succs, pc+1)
		}
		return succs, false
	case isa.OpCheck:
		if _, ok := dets.Lookup(in.Imm); !ok {
			return succs, false // unknown detector: the check throws
		}
		fall()
		return succs, false
	default:
		fall()
		return succs, false
	}
}

// SuccsOf exposes the instruction-level successor relation the CFG is built
// from: the static successors of pc and whether the instruction also has a
// dynamic successor (a jr, whose target is a register value). Function
// discovery (internal/summary) layers its intra-procedural view — jal edges
// to the call continuation, jr $31 as a function exit — on top of this.
func SuccsOf(prog *isa.Program, dets *detector.Table, pc int, buf []int) (succs []int, dynamic bool) {
	if dets == nil {
		dets = detector.EmptyTable()
	}
	return succsOf(prog, dets, pc, buf)
}

// buildCFG constructs the block graph and reachability for prog.
func buildCFG(prog *isa.Program, dets *detector.Table) *CFG {
	n := prog.Len()
	g := &CFG{
		Prog:      prog,
		BlockOf:   make([]int, n),
		Reachable: make([]bool, n),
	}
	if n == 0 {
		return g
	}

	// Block leaders: entry, branch targets, and instructions after a
	// control transfer or terminal.
	leader := make([]bool, n)
	leader[0] = true
	var buf [2]int
	for pc := 0; pc < n; pc++ {
		succs, dynamic := succsOf(prog, dets, pc, buf[:0])
		if dynamic {
			g.HasDynamicJump = true
		}
		in := prog.At(pc)
		transfers := dynamic || in.IsBranch() || len(succs) == 0
		for _, s := range succs {
			if s != pc+1 {
				leader[s] = true
			}
		}
		if transfers && pc+1 < n {
			leader[pc+1] = true
		}
	}

	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			g.Blocks = append(g.Blocks, Block{Start: pc})
		}
		g.BlockOf[pc] = len(g.Blocks) - 1
	}
	for i := range g.Blocks {
		if i+1 < len(g.Blocks) {
			g.Blocks[i].End = g.Blocks[i+1].Start
		} else {
			g.Blocks[i].End = n
		}
	}

	// Block successors from the last instruction of each block.
	for i := range g.Blocks {
		b := &g.Blocks[i]
		last := b.End - 1
		succs, dynamic := succsOf(prog, dets, last, buf[:0])
		if dynamic {
			b.DynamicSucc = true
			continue
		}
		seen := map[int]bool{}
		for _, s := range succs {
			sb := g.BlockOf[s]
			if !seen[sb] {
				seen[sb] = true
				b.Succs = append(b.Succs, sb)
			}
		}
		sortInts(b.Succs)
	}

	// Reachability over blocks from the entry block. A reachable jr makes
	// every block reachable (its target is a register value).
	reached := make([]bool, len(g.Blocks))
	work := []int{0}
	reached[0] = true
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		b := g.Blocks[bi]
		if b.DynamicSucc {
			for j := range reached {
				if !reached[j] {
					reached[j] = true
					work = append(work, j)
				}
			}
			continue
		}
		for _, s := range b.Succs {
			if !reached[s] {
				reached[s] = true
				work = append(work, s)
			}
		}
	}
	for pc := 0; pc < n; pc++ {
		g.Reachable[pc] = reached[g.BlockOf[pc]]
	}
	return g
}

// sortInts sorts a small int slice in place (insertion sort; successor lists
// have at most a handful of entries).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
