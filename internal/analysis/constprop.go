package analysis

import (
	"symplfied/internal/isa"
)

// RegConsts is the constant lattice for one program point: for every
// register either a single known value (its bit in Known set, value in Val)
// or "varying" — more than one value can reach the point. $0 is always the
// known constant 0.
type RegConsts struct {
	Known uint32
	Val   [isa.NumRegs]int64
}

// Get returns the known constant value of r, if any.
func (c RegConsts) Get(r isa.Reg) (int64, bool) {
	if !r.Valid() {
		return 0, false
	}
	if r == isa.RegZero {
		return 0, true
	}
	if c.Known&(1<<r) == 0 {
		return 0, false
	}
	return c.Val[r], true
}

func (c *RegConsts) set(r isa.Reg, v int64) {
	if r == isa.RegZero || !r.Valid() {
		return
	}
	c.Known |= 1 << r
	c.Val[r] = v
}

func (c *RegConsts) clear(r isa.Reg) {
	if r == isa.RegZero || !r.Valid() {
		return
	}
	c.Known &^= 1 << r
}

// meet intersects two fact sets: a register stays known only when both
// paths agree on its value. Reports whether c changed.
func (c *RegConsts) meet(o RegConsts) bool {
	changed := false
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		bit := uint32(1) << r
		if c.Known&bit == 0 {
			continue
		}
		if o.Known&bit == 0 || o.Val[r] != c.Val[r] {
			c.Known &^= bit
			changed = true
		}
	}
	return changed
}

// Consts holds the forward constant-propagation facts: for each reachable
// pc, the registers whose value is the same on every fault-free path from
// entry to that point. The machine boots with a zeroed register file, so
// the entry fact is "every register is 0".
//
// Soundness is relative to fault-free executions under the calling
// convention internal/summary states on Partition: an indirect jump (jr)
// transfers to a call continuation (the pc after some jal). A fault can of
// course break any of this — that is exactly what a synthesized invariant
// check is for, and why internal/harden re-verifies every synthesized
// detector against the fault-free run before keeping it.
type Consts struct {
	in      []RegConsts
	reached []bool
}

// At returns the constant value register r provably holds just before the
// instruction at pc executes on every fault-free path, if any.
func (c *Consts) At(pc int, r isa.Reg) (int64, bool) {
	if pc < 0 || pc >= len(c.in) || !c.reached[pc] {
		return 0, false
	}
	return c.in[pc].Get(r)
}

// computeConsts runs the forward worklist. dynTargets are the successor pcs
// assumed for jr instructions (the jal continuations; see Consts).
func (a *Analysis) computeConsts(dynTargets []int) *Consts {
	prog := a.Prog
	n := prog.Len()
	c := &Consts{in: make([]RegConsts, n), reached: make([]bool, n)}
	if n == 0 {
		return c
	}
	// Entry: zeroed register file, every register a known 0.
	c.in[0] = RegConsts{Known: uint32(AllRegs)}
	c.reached[0] = true

	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	var buf [2]int
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false

		out := c.in[pc]
		transferConsts(prog.At(pc), &out)

		succs, dynamic := succsOf(prog, a.Detectors, pc, buf[:0])
		push := func(s int) {
			if s < 0 || s >= n {
				return
			}
			changed := false
			if !c.reached[s] {
				c.reached[s] = true
				c.in[s] = out
				changed = true
			} else {
				changed = c.in[s].meet(out)
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
		for _, s := range succs {
			push(s)
		}
		if dynamic {
			for _, s := range dynTargets {
				push(s)
			}
		}
	}
	return c
}

// transferConsts applies one instruction to a fact set in place.
func transferConsts(in isa.Instr, f *RegConsts) {
	if bin, imm, ok := isa.ArithOp(in.Op); ok {
		x, okX := f.Get(in.Rs)
		var y int64
		okY := true
		if imm {
			y = in.Imm
		} else {
			y, okY = f.Get(in.Rt)
		}
		if okX && okY {
			if v, err := isa.EvalBin(bin, x, y); err == nil {
				f.set(in.Rd, v)
				return
			}
		}
		f.clear(in.Rd)
		return
	}
	if cmp, imm, ok := isa.CmpForOp(in.Op); ok {
		x, okX := f.Get(in.Rs)
		var y int64
		okY := true
		if imm {
			y = in.Imm
		} else {
			y, okY = f.Get(in.Rt)
		}
		if okX && okY {
			v := int64(0)
			if isa.EvalCmp(cmp, x, y) {
				v = 1
			}
			f.set(in.Rd, v)
			return
		}
		f.clear(in.Rd)
		return
	}
	switch in.Op {
	case isa.OpLi:
		f.set(in.Rd, in.Imm)
	case isa.OpLui:
		f.set(in.Rd, in.Imm<<16)
	case isa.OpMov:
		if v, ok := f.Get(in.Rs); ok {
			f.set(in.Rd, v)
		} else {
			f.clear(in.Rd)
		}
	default:
		// Loads, reads and jal produce values the lattice does not track
		// (memory, input, a code address that moves when code is rewritten).
		for _, r := range in.DstRegs() {
			f.clear(r)
		}
	}
}

// dynContinuations returns the pcs an indirect jump is assumed to target on
// a fault-free run: the continuation of every jal (see Consts). A program
// with jr but no jal falls back to every pc — fully conservative.
func dynContinuations(prog *isa.Program) []int {
	var out []int
	hasJr := false
	for pc := 0; pc < prog.Len(); pc++ {
		switch prog.At(pc).Op {
		case isa.OpJal:
			if pc+1 < prog.Len() {
				out = append(out, pc+1)
			}
		case isa.OpJr:
			hasJr = true
		}
	}
	if hasJr && len(out) == 0 {
		out = make([]int, prog.Len())
		for i := range out {
			out[i] = i
		}
	}
	return out
}
