package analysis

import (
	"testing"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/asm"
)

func TestPostDomDiamond(t *testing.T) {
	// A classic if/else diamond: both arms rejoin at `join`.
	src := "\tli $1 #1\n" +
		"\tbeq $1 0 else\n" + // pc 1: branch
		"\tli $2 #2\n" +
		"\tjmp join\n" +
		"else:\tli $2 #3\n" +
		"join:\tprint $2\n" + // pc 5: rejoin point
		"\thalt\n"
	u, err := asm.Parse("diamond", src)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(u.Program, u.Detectors)
	pd := a.PostDom
	if pd == nil {
		t.Fatal("Analyze left PostDom nil")
	}

	branchBlock := a.CFG.BlockOf[1]
	joinBlock := a.CFG.BlockOf[5]
	if got := pd.IPDom[branchBlock]; got != joinBlock {
		t.Fatalf("ipdom(branch block %d) = %d, want join block %d", branchBlock, got, joinBlock)
	}
	if !pd.MergePoint(5) {
		t.Fatalf("pc 5 (join) should be a merge point; mergePC=%v", pd.mergePC)
	}
	for _, pc := range []int{0, 1, 2, 3, 4, 6} {
		if pd.MergePoint(pc) {
			t.Fatalf("pc %d unexpectedly a merge point", pc)
		}
	}
	if got := pd.IPostDomPC(a.CFG, 1); got != 5 {
		t.Fatalf("IPostDomPC(1) = %d, want 5", got)
	}
}

func TestPostDomLoop(t *testing.T) {
	src := "loop:\tsubi $1 $1 #1\n\tbne $1 0 loop\n\thalt\n"
	u, err := asm.Parse("loop", src)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(u.Program, u.Detectors)
	// The loop block's paths rejoin at the halt after the back edge.
	if got := a.PostDom.IPostDomPC(a.CFG, 0); got != 2 {
		t.Fatalf("IPostDomPC(0) = %d, want 2 (halt)", got)
	}
	if !a.PostDom.MergePoint(2) {
		t.Fatal("loop exit should be a merge point")
	}
}

func TestPostDomDynamicJump(t *testing.T) {
	src := "\tjr $31\n\thalt\n"
	u, err := asm.Parse("jr", src)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(u.Program, u.Detectors)
	jrBlock := a.CFG.BlockOf[0]
	if got := a.PostDom.IPDom[jrBlock]; got != -1 {
		t.Fatalf("jr block ipdom = %d, want -1 (virtual exit only)", got)
	}
}

// TestPostDomSound spot-checks the defining property on tcas: the immediate
// post-dominator of a branching block appears on every terminating static
// path out of that block (bounded DFS over the block graph, treating
// revisits as cut).
func TestPostDomSound(t *testing.T) {
	prog, dets := tcas.Hardened()
	a := Analyze(prog, dets)
	if a.CFG.HasDynamicJump {
		// tcas uses jal/jr; post-dominance is then conservative: only
		// check that jr blocks claim no finite ipdom beyond themselves.
		for bi, b := range a.CFG.Blocks {
			if b.DynamicSucc && a.PostDom.IPDom[bi] >= 0 {
				// A jr block may still be post-dominated if every block
				// (its conservative successor set) shares a post-dominator;
				// that cannot happen alongside terminal blocks.
				t.Fatalf("jr block %d has finite ipdom %d", bi, a.PostDom.IPDom[bi])
			}
		}
	}
	checked := 0
	for bi, b := range a.CFG.Blocks {
		if len(b.Succs) < 2 || a.PostDom.IPDom[bi] < 0 {
			continue
		}
		ip := a.PostDom.IPDom[bi]
		// Every acyclic static path from bi must hit ip before exiting.
		var walk func(cur int, seen map[int]bool) bool
		walk = func(cur int, seen map[int]bool) bool {
			if cur == ip {
				return true
			}
			if seen[cur] {
				return true // cycle: no new exit found on this path
			}
			seen[cur] = true
			cb := a.CFG.Blocks[cur]
			if cb.DynamicSucc {
				return true // conservative: skip dynamic fan-out
			}
			if len(cb.Succs) == 0 {
				return false // reached exit without passing ip
			}
			for _, s := range cb.Succs {
				if !walk(s, seen) {
					return false
				}
			}
			delete(seen, cur)
			return true
		}
		for _, s := range b.Succs {
			if !walk(s, map[int]bool{bi: true}) {
				t.Fatalf("block %d: path from succ %d escapes to exit without passing ipdom %d", bi, s, ip)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no branching blocks with finite ipdoms in tcas; postdom is degenerate")
	}
}
