package analysis

import (
	"testing"

	"symplfied/internal/isa"
)

// TestConstsBootZeros: the machine zeroes the register file, so at entry
// every register is the known constant 0.
func TestConstsBootZeros(t *testing.T) {
	a := analyzeSrc(t, "\tprint $5\n\thalt\n")
	c := a.Consts()
	if v, ok := c.At(0, isa.Reg(5)); !ok || v != 0 {
		t.Errorf("At(0, $5) = %d, %v; want boot zero", v, ok)
	}
}

// TestConstsArithChain: constants fold through li and arithmetic.
func TestConstsArithChain(t *testing.T) {
	a := analyzeSrc(t, `
	li $1 #6
	addi $2 $1 #4
	mult $3 $2 $2
	print $3
	halt
`)
	c := a.Consts()
	if v, ok := c.At(3, isa.Reg(3)); !ok || v != 100 {
		t.Errorf("At(print, $3) = %d, %v; want 100", v, ok)
	}
	if v, ok := c.At(3, isa.Reg(2)); !ok || v != 10 {
		t.Errorf("At(print, $2) = %d, %v; want 10", v, ok)
	}
}

// TestConstsMergeConflict: a register set to different values on two arms is
// varying at the join, while one set identically on both stays known.
func TestConstsMergeConflict(t *testing.T) {
	a := analyzeSrc(t, `
	read $1
	beqi $1 #0 other
	li $2 #5
	li $3 #8
	jmp join
other:
	li $2 #9
	li $3 #8
join:
	print $2
	halt
`)
	c := a.Consts()
	joinPC := 7
	if _, ok := c.At(joinPC, isa.Reg(2)); ok {
		t.Error("$2 is 5 or 9 at the join but reported constant")
	}
	if v, ok := c.At(joinPC, isa.Reg(3)); !ok || v != 8 {
		t.Errorf("At(join, $3) = %d, %v; want 8 (both arms agree)", v, ok)
	}
	if _, ok := c.At(joinPC, isa.Reg(1)); ok {
		t.Error("$1 comes from read but reported constant")
	}
}

// TestConstsUntrackedDefs: read, ld and jal destinations are varying — jal
// deliberately so, since a linked return address moves when the hardening
// pass inserts instructions.
func TestConstsUntrackedDefs(t *testing.T) {
	a := analyzeSrc(t, `
	jal f
	halt
f:
	read $1
	st $1 100($0)
	ld $2 100($0)
	jr $31
`)
	c := a.Consts()
	// At the jr (pc 5): $31 was linked by jal, $1 read, $2 loaded — all
	// varying.
	for _, r := range []isa.Reg{isa.RegRA, isa.Reg(1), isa.Reg(2)} {
		if _, ok := c.At(5, r); ok {
			t.Errorf("%s reported constant after an untracked definition", r)
		}
	}
}

// TestConstsLoopCounterVaries: a loop counter is constant at its
// initialization but varying at the loop head, where iterations meet.
func TestConstsLoopCounterVaries(t *testing.T) {
	a := analyzeSrc(t, `
	li $1 #0
	li $2 #10
loop:
	addi $1 $1 #1
	bne $1 $2 loop
	halt
`)
	c := a.Consts()
	loopPC := 2
	if _, ok := c.At(loopPC, isa.Reg(1)); ok {
		t.Error("loop counter $1 reported constant at the loop head")
	}
	if v, ok := c.At(loopPC, isa.Reg(2)); !ok || v != 10 {
		t.Errorf("loop bound $2 = %d, %v; want constant 10", v, ok)
	}
}

// TestConstsDivByZeroVaries: folding a division whose constant divisor is
// zero must not invent a value — the instruction traps instead.
func TestConstsDivByZeroVaries(t *testing.T) {
	a := analyzeSrc(t, "\tli $1 #3\n\tdiv $2 $1 $0\n\tprint $2\n\thalt\n")
	c := a.Consts()
	if _, ok := c.At(2, isa.Reg(2)); ok {
		t.Error("divide-by-zero result reported constant")
	}
}
