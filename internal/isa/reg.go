package isa

import "strconv"

// NumRegs is the number of general-purpose registers in the machine model.
// The paper's case study uses a 32-register MIPS-like machine (Section 6.1).
const NumRegs = 32

// Reg names a general-purpose register, $0 through $31. Register $0 is
// hardwired to zero: writes to it are discarded and reads always return 0.
type Reg uint8

// Software conventions used by the program builder and the MIPS front end.
// The ISA itself does not enforce them (any register may be read or written),
// but the applications in internal/apps follow them, and the catastrophic
// tcas scenario in the paper depends on the return address living in a
// general-purpose register (RegRA) where a transient error can corrupt it.
const (
	RegZero Reg = 0  // hardwired zero
	RegV0   Reg = 2  // function result
	RegV1   Reg = 3  // secondary result
	RegA0   Reg = 4  // first argument
	RegA1   Reg = 5  // second argument
	RegA2   Reg = 6  // third argument
	RegA3   Reg = 7  // fourth argument
	RegSP   Reg = 29 // stack pointer
	RegFP   Reg = 30 // frame pointer
	RegRA   Reg = 31 // return address (written by jal)
)

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// String renders the register in assembly syntax, e.g. "$7".
func (r Reg) String() string { return "$" + strconv.Itoa(int(r)) }
