package isa

import (
	"strings"
	"testing"
)

func buildSample(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("sample")
	b.Label("main")
	b.Li(1, 10)
	b.Label("loop")
	b.Subi(1, 1, 1)
	b.Bnei(1, 0, "loop")
	b.Jal("fn")
	b.Halt()
	b.Label("fn")
	b.Jr(RegRA)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProgramBasics(t *testing.T) {
	p := buildSample(t)
	if p.Len() != 6 {
		t.Fatalf("Len = %d", p.Len())
	}
	if !p.ValidPC(0) || !p.ValidPC(5) || p.ValidPC(6) || p.ValidPC(-1) {
		t.Error("ValidPC wrong")
	}
	if p.Labels["loop"] != 1 || p.Labels["fn"] != 5 {
		t.Errorf("labels %v", p.Labels)
	}
	if got := p.At(1).Op; got != OpSubi {
		t.Errorf("At(1).Op = %v", got)
	}
	// Branch target resolution.
	if p.At(2).Target != 1 {
		t.Errorf("bnei target %d, want 1", p.At(2).Target)
	}
	if p.At(3).Target != 5 {
		t.Errorf("jal target %d, want 5", p.At(3).Target)
	}
}

func TestProgramLocate(t *testing.T) {
	p := buildSample(t)
	if got := p.Locate(1); !strings.Contains(got, "loop") {
		t.Errorf("Locate(1) = %q", got)
	}
	if got := p.Locate(2); !strings.Contains(got, "loop+1") {
		t.Errorf("Locate(2) = %q", got)
	}
	if got := p.Locate(99); !strings.Contains(got, "invalid") {
		t.Errorf("Locate(99) = %q", got)
	}
	if l, off, ok := p.LabelFor(4); !ok || l != "loop" || off != 3 {
		t.Errorf("LabelFor(4) = %q+%d, %v", l, off, ok)
	}
}

func TestProgramLabelsAt(t *testing.T) {
	p := buildSample(t)
	if got := p.LabelsAt(0); len(got) != 1 || got[0] != "main" {
		t.Errorf("LabelsAt(0) = %v", got)
	}
	if got := p.LabelsAt(3); got != nil {
		t.Errorf("LabelsAt(3) = %v", got)
	}
}

func TestNewProgramErrors(t *testing.T) {
	// Undefined label.
	_, err := NewProgram("p", []Instr{{Op: OpJmp, Label: "nowhere"}}, nil)
	if err == nil {
		t.Error("undefined label accepted")
	}
	// Out-of-range absolute target.
	_, err = NewProgram("p", []Instr{{Op: OpJmp, Target: 7}}, nil)
	if err == nil {
		t.Error("out-of-range target accepted")
	}
	// Label outside code.
	_, err = NewProgram("p", []Instr{{Op: OpNop}}, map[string]int{"x": 9})
	if err == nil {
		t.Error("label outside code accepted")
	}
	// Invalid opcode.
	_, err = NewProgram("p", []Instr{{}}, nil)
	if err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.Label("dup")
	b.Nop()
	b.Label("dup")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label accepted")
	}

	b = NewBuilder("bad2")
	b.Emit(Instr{Op: OpAdd, Rd: 40})
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("invalid register accepted")
	}

	b = NewBuilder("bad3")
	b.Label("")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("empty label accepted")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on bad program")
		}
	}()
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	b.MustBuild()
}

func TestParseLoc(t *testing.T) {
	cases := []struct {
		in   string
		want Loc
	}{
		{"$5", RegLoc(5)},
		{"$(5)", RegLoc(5)},
		{"$31", RegLoc(31)},
		{"*(1000)", MemLoc(1000)},
		{"*1000", MemLoc(1000)},
		{"*(-4)", MemLoc(-4)},
	}
	for _, c := range cases {
		got, err := ParseLoc(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseLoc(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, bad := range []string{"", "$32", "$x", "*(x)", "5", "$-1"} {
		if _, err := ParseLoc(bad); err == nil {
			t.Errorf("ParseLoc(%q) accepted", bad)
		}
	}
}

func TestLocString(t *testing.T) {
	if RegLoc(7).String() != "$7" || MemLoc(12).String() != "*(12)" {
		t.Error("Loc rendering broken")
	}
}
