package isa

import "fmt"

// Builder constructs programs instruction by instruction with typed helper
// methods. The applications in internal/apps (tcas, replace, factorial) are
// assembled with it: the builder plays the role of the paper's
// C-to-assembly toolchain while keeping every emitted instruction explicit.
//
// Errors (duplicate or undefined labels, bad registers) are accumulated and
// reported by Build, so emission code stays linear.
type Builder struct {
	name   string
	instrs []Instr
	labels map[string]int
	errs   []error
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far (the next PC).
func (b *Builder) Len() int { return len(b.instrs) }

// Label attaches a label to the next emitted instruction.
func (b *Builder) Label(name string) {
	if name == "" {
		b.errs = append(b.errs, fmt.Errorf("empty label at @%d", len(b.instrs)))
		return
	}
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.instrs)
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Instr) {
	for _, r := range []Reg{in.Rd, in.Rs, in.Rt} {
		if !r.Valid() {
			b.errs = append(b.errs, fmt.Errorf("@%d %s: invalid register %d", len(b.instrs), in.Op, r))
		}
	}
	b.instrs = append(b.instrs, in)
}

func (b *Builder) emit3(op Op, rd, rs, rt Reg) { b.Emit(Instr{Op: op, Rd: rd, Rs: rs, Rt: rt}) }
func (b *Builder) emit2i(op Op, rd, rs Reg, imm int64) {
	b.Emit(Instr{Op: op, Rd: rd, Rs: rs, Imm: imm})
}

// Arithmetic and logic.

// Add emits rd <- rs + rt.
func (b *Builder) Add(rd, rs, rt Reg) { b.emit3(OpAdd, rd, rs, rt) }

// Sub emits rd <- rs - rt.
func (b *Builder) Sub(rd, rs, rt Reg) { b.emit3(OpSub, rd, rs, rt) }

// Mult emits rd <- rs * rt.
func (b *Builder) Mult(rd, rs, rt Reg) { b.emit3(OpMult, rd, rs, rt) }

// Div emits rd <- rs / rt (truncated; divide by zero raises an exception).
func (b *Builder) Div(rd, rs, rt Reg) { b.emit3(OpDiv, rd, rs, rt) }

// Mod emits rd <- rs % rt.
func (b *Builder) Mod(rd, rs, rt Reg) { b.emit3(OpMod, rd, rs, rt) }

// And emits rd <- rs & rt.
func (b *Builder) And(rd, rs, rt Reg) { b.emit3(OpAnd, rd, rs, rt) }

// Or emits rd <- rs | rt.
func (b *Builder) Or(rd, rs, rt Reg) { b.emit3(OpOr, rd, rs, rt) }

// Xor emits rd <- rs ^ rt.
func (b *Builder) Xor(rd, rs, rt Reg) { b.emit3(OpXor, rd, rs, rt) }

// Nor emits rd <- ^(rs | rt).
func (b *Builder) Nor(rd, rs, rt Reg) { b.emit3(OpNor, rd, rs, rt) }

// Sll emits rd <- rs << rt.
func (b *Builder) Sll(rd, rs, rt Reg) { b.emit3(OpSll, rd, rs, rt) }

// Addi emits rd <- rs + imm.
func (b *Builder) Addi(rd, rs Reg, imm int64) { b.emit2i(OpAddi, rd, rs, imm) }

// Subi emits rd <- rs - imm.
func (b *Builder) Subi(rd, rs Reg, imm int64) { b.emit2i(OpSubi, rd, rs, imm) }

// Multi emits rd <- rs * imm.
func (b *Builder) Multi(rd, rs Reg, imm int64) { b.emit2i(OpMulti, rd, rs, imm) }

// Divi emits rd <- rs / imm.
func (b *Builder) Divi(rd, rs Reg, imm int64) { b.emit2i(OpDivi, rd, rs, imm) }

// Andi emits rd <- rs & imm.
func (b *Builder) Andi(rd, rs Reg, imm int64) { b.emit2i(OpAndi, rd, rs, imm) }

// Ori emits rd <- rs | imm.
func (b *Builder) Ori(rd, rs Reg, imm int64) { b.emit2i(OpOri, rd, rs, imm) }

// Xori emits rd <- rs ^ imm.
func (b *Builder) Xori(rd, rs Reg, imm int64) { b.emit2i(OpXori, rd, rs, imm) }

// Comparison-set.

// Seteq emits rd <- (rs == rt).
func (b *Builder) Seteq(rd, rs, rt Reg) { b.emit3(OpSeteq, rd, rs, rt) }

// Setne emits rd <- (rs != rt).
func (b *Builder) Setne(rd, rs, rt Reg) { b.emit3(OpSetne, rd, rs, rt) }

// Setgt emits rd <- (rs > rt).
func (b *Builder) Setgt(rd, rs, rt Reg) { b.emit3(OpSetgt, rd, rs, rt) }

// Setlt emits rd <- (rs < rt).
func (b *Builder) Setlt(rd, rs, rt Reg) { b.emit3(OpSetlt, rd, rs, rt) }

// Setge emits rd <- (rs >= rt).
func (b *Builder) Setge(rd, rs, rt Reg) { b.emit3(OpSetge, rd, rs, rt) }

// Setle emits rd <- (rs <= rt).
func (b *Builder) Setle(rd, rs, rt Reg) { b.emit3(OpSetle, rd, rs, rt) }

// Seteqi emits rd <- (rs == imm).
func (b *Builder) Seteqi(rd, rs Reg, imm int64) { b.emit2i(OpSeteqi, rd, rs, imm) }

// Setnei emits rd <- (rs != imm).
func (b *Builder) Setnei(rd, rs Reg, imm int64) { b.emit2i(OpSetnei, rd, rs, imm) }

// Setgti emits rd <- (rs > imm).
func (b *Builder) Setgti(rd, rs Reg, imm int64) { b.emit2i(OpSetgti, rd, rs, imm) }

// Setlti emits rd <- (rs < imm).
func (b *Builder) Setlti(rd, rs Reg, imm int64) { b.emit2i(OpSetlti, rd, rs, imm) }

// Data movement.

// Mov emits rd <- rs.
func (b *Builder) Mov(rd, rs Reg) { b.Emit(Instr{Op: OpMov, Rd: rd, Rs: rs}) }

// Li emits rd <- imm.
func (b *Builder) Li(rd Reg, imm int64) { b.Emit(Instr{Op: OpLi, Rd: rd, Imm: imm}) }

// Memory.

// Ld emits rt <- M[R[rs] + off].
func (b *Builder) Ld(rt Reg, off int64, rs Reg) {
	b.Emit(Instr{Op: OpLd, Rt: rt, Rs: rs, Imm: off})
}

// St emits M[R[rs] + off] <- rt.
func (b *Builder) St(rt Reg, off int64, rs Reg) {
	b.Emit(Instr{Op: OpSt, Rt: rt, Rs: rs, Imm: off})
}

// Control flow.

// Beq emits: branch to label if rs == rt.
func (b *Builder) Beq(rs, rt Reg, label string) {
	b.Emit(Instr{Op: OpBeq, Rs: rs, Rt: rt, Label: label})
}

// Bne emits: branch to label if rs != rt.
func (b *Builder) Bne(rs, rt Reg, label string) {
	b.Emit(Instr{Op: OpBne, Rs: rs, Rt: rt, Label: label})
}

// Beqi emits: branch to label if rs == imm.
func (b *Builder) Beqi(rs Reg, imm int64, label string) {
	b.Emit(Instr{Op: OpBeqi, Rs: rs, Imm: imm, Label: label})
}

// Bnei emits: branch to label if rs != imm.
func (b *Builder) Bnei(rs Reg, imm int64, label string) {
	b.Emit(Instr{Op: OpBnei, Rs: rs, Imm: imm, Label: label})
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) { b.Emit(Instr{Op: OpJmp, Label: label}) }

// Jal emits a call: RA <- pc+1, jump to label.
func (b *Builder) Jal(label string) { b.Emit(Instr{Op: OpJal, Label: label}) }

// Jr emits an indirect jump to the address in rs (function return).
func (b *Builder) Jr(rs Reg) { b.Emit(Instr{Op: OpJr, Rs: rs}) }

// I/O and special.

// Read emits rd <- next input value.
func (b *Builder) Read(rd Reg) { b.Emit(Instr{Op: OpRead, Rd: rd}) }

// Print emits: append R[rd] to the output stream.
func (b *Builder) Print(rd Reg) { b.Emit(Instr{Op: OpPrint, Rd: rd}) }

// Prints emits: append the string literal to the output stream.
func (b *Builder) Prints(s string) { b.Emit(Instr{Op: OpPrints, Str: s}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(Instr{Op: OpNop}) }

// Halt emits program termination.
func (b *Builder) Halt() { b.Emit(Instr{Op: OpHalt}) }

// Throw emits an explicit exception with the given name.
func (b *Builder) Throw(msg string) { b.Emit(Instr{Op: OpThrow, Str: msg}) }

// Check emits a CHECK annotation invoking the detector with the given ID.
func (b *Builder) Check(detectorID int64) { b.Emit(Instr{Op: OpCheck, Imm: detectorID}) }

// Build resolves labels and returns the finished program. It fails if any
// emission error was recorded or a referenced label is undefined.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("program %q: %d build errors, first: %w", b.name, len(b.errs), b.errs[0])
	}
	return NewProgram(b.name, b.instrs, b.labels)
}

// MustBuild is Build for statically known-good programs; it panics on error
// (a malformed emission or an undefined label). Intended only for
// package-level program constructors in internal/apps whose correctness is
// enforced by tests — the panic is a compile-time-style assertion, not a
// runtime error path. Code building programs from external input (files,
// flags, generated faults) must call Build and handle the error; campaign
// infrastructure deliberately does not recover from this panic.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
