package isa

import "fmt"

// ExceptionKind classifies the exceptions the machine model can raise
// (Section 5.1 assumptions plus the detector and watchdog mechanisms).
type ExceptionKind int

// Exception kinds.
const (
	// ExcIllegalInstr: fetch from an invalid code address.
	ExcIllegalInstr ExceptionKind = iota + 1
	// ExcIllegalAddr: load from an undefined memory location or other
	// invalid memory access.
	ExcIllegalAddr
	// ExcDivZero: division or modulus by zero.
	ExcDivZero
	// ExcTimeout: watchdog instruction bound exceeded (a hang, Section 5.4).
	ExcTimeout
	// ExcDetected: an error detector fired (CHECK failed, Section 5.3).
	ExcDetected
	// ExcThrow: an explicit throw instruction.
	ExcThrow
)

// String renders the kind in the paper's exception vocabulary.
func (k ExceptionKind) String() string {
	switch k {
	case ExcIllegalInstr:
		return "illegal instruction"
	case ExcIllegalAddr:
		return "illegal addr"
	case ExcDivZero:
		return "div-zero"
	case ExcTimeout:
		return "timed out"
	case ExcDetected:
		return "detected"
	case ExcThrow:
		return "throw"
	}
	return fmt.Sprintf("exception(%d)", int(k))
}

// Exception records an abnormal program termination.
type Exception struct {
	Kind   ExceptionKind
	PC     int    // program counter at which the exception was raised
	Detail string // free-form detail (thrown message, detector ID, address)
	// Detector is the ID of the detector responsible for the exception,
	// when the raiser attributed one; 0 means unattributed. Set for
	// ExcDetected (the detector fired) and for ExcThrow raised while
	// evaluating a detector expression (e.g. an uninitialized shadow
	// read). Coverage attribution (checker.InjectionReport.DetectorHits)
	// and the hardening gate (internal/harden) read this instead of
	// re-parsing Detail.
	Detector int64
}

// Error implements the error interface.
func (e *Exception) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("%s at @%d", e.Kind, e.PC)
	}
	return fmt.Sprintf("%s (%s) at @%d", e.Kind, e.Detail, e.PC)
}

var _ error = (*Exception)(nil)
