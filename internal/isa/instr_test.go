package isa

import (
	"reflect"
	"testing"
)

func TestOpTableComplete(t *testing.T) {
	for _, op := range Ops() {
		if op.String() == "" || op.Format() == 0 {
			t.Errorf("opcode %d lacks name or format", int(op))
		}
		if got := OpByName(op.String()); got != op {
			t.Errorf("OpByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if OpByName("bogus") != OpInvalid {
		t.Error("OpByName accepted bogus mnemonic")
	}
	if OpInvalid.Valid() || Op(9999).Valid() {
		t.Error("invalid opcodes classified valid")
	}
}

func TestSrcDstRegs(t *testing.T) {
	cases := []struct {
		in   Instr
		src  []Reg
		dst  []Reg
		used []Reg
	}{
		{Instr{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, []Reg{2, 3}, []Reg{1}, []Reg{2, 3, 1}},
		{Instr{Op: OpAdd, Rd: 1, Rs: 2, Rt: 2}, []Reg{2}, []Reg{1}, []Reg{2, 1}},
		// Aliased source and destination: UsedRegs must not repeat a
		// register, or downstream enumeration (RegisterInjectionsUsed,
		// liveness use/def sets) would double-count the site.
		{Instr{Op: OpAdd, Rd: 1, Rs: 1, Rt: 2}, []Reg{1, 2}, []Reg{1}, []Reg{1, 2}},
		{Instr{Op: OpAdd, Rd: 1, Rs: 1, Rt: 1}, []Reg{1}, []Reg{1}, []Reg{1}},
		{Instr{Op: OpMov, Rd: 4, Rs: 4}, []Reg{4}, []Reg{4}, []Reg{4}},
		{Instr{Op: OpSt, Rt: 29, Rs: 29, Imm: 1}, []Reg{29}, nil, []Reg{29}},
		{Instr{Op: OpLd, Rt: 29, Rs: 29, Imm: 1}, []Reg{29}, []Reg{29}, []Reg{29}},
		{Instr{Op: OpAddi, Rd: 1, Rs: 2, Imm: 5}, []Reg{2}, []Reg{1}, []Reg{2, 1}},
		{Instr{Op: OpAdd, Rd: 0, Rs: 0, Rt: 0}, nil, nil, nil},
		{Instr{Op: OpMov, Rd: 4, Rs: 5}, []Reg{5}, []Reg{4}, []Reg{5, 4}},
		{Instr{Op: OpLi, Rd: 4, Imm: 9}, nil, []Reg{4}, []Reg{4}},
		{Instr{Op: OpLd, Rt: 6, Rs: 29, Imm: 1}, []Reg{29}, []Reg{6}, []Reg{29, 6}},
		{Instr{Op: OpSt, Rt: 6, Rs: 29, Imm: 1}, []Reg{29, 6}, nil, []Reg{29, 6}},
		{Instr{Op: OpLd, Rt: 6, Rs: 0, Imm: 100}, nil, []Reg{6}, []Reg{6}},
		{Instr{Op: OpBeq, Rs: 1, Rt: 2}, []Reg{1, 2}, nil, []Reg{1, 2}},
		{Instr{Op: OpBeqi, Rs: 1, Imm: 0}, []Reg{1}, nil, []Reg{1}},
		{Instr{Op: OpJmp}, nil, nil, nil},
		{Instr{Op: OpJal}, nil, []Reg{RegRA}, []Reg{RegRA}},
		{Instr{Op: OpJr, Rs: RegRA}, []Reg{RegRA}, nil, []Reg{RegRA}},
		{Instr{Op: OpRead, Rd: 7}, nil, []Reg{7}, []Reg{7}},
		{Instr{Op: OpPrint, Rd: 7}, []Reg{7}, nil, []Reg{7}},
		{Instr{Op: OpPrints, Str: "x"}, nil, nil, nil},
		{Instr{Op: OpNop}, nil, nil, nil},
		{Instr{Op: OpHalt}, nil, nil, nil},
		{Instr{Op: OpCheck, Imm: 1}, nil, nil, nil},
	}
	for _, c := range cases {
		if got := c.in.SrcRegs(); !reflect.DeepEqual(got, c.src) {
			t.Errorf("%v SrcRegs = %v, want %v", c.in, got, c.src)
		}
		if got := c.in.DstRegs(); !reflect.DeepEqual(got, c.dst) {
			t.Errorf("%v DstRegs = %v, want %v", c.in, got, c.dst)
		}
		if got := c.in.UsedRegs(); !reflect.DeepEqual(got, c.used) {
			t.Errorf("%v UsedRegs = %v, want %v", c.in, got, c.used)
		}
	}
}

// TestRegListsNeverDuplicate sweeps every opcode over aliased register
// assignments: SrcRegs, DstRegs and UsedRegs are sets in operand order, so a
// register may appear at most once however the operands alias.
func TestRegListsNeverDuplicate(t *testing.T) {
	assignments := [][3]Reg{
		{1, 2, 3}, {1, 1, 2}, {1, 2, 1}, {1, 2, 2}, {1, 1, 1},
		{RegRA, RegRA, RegRA}, {0, 1, 1},
	}
	for _, op := range Ops() {
		for _, regs := range assignments {
			in := Instr{Op: op, Rd: regs[0], Rs: regs[1], Rt: regs[2]}
			for _, list := range [][]Reg{in.SrcRegs(), in.DstRegs(), in.UsedRegs()} {
				seen := map[Reg]bool{}
				for _, r := range list {
					if seen[r] {
						t.Errorf("%v: register %v repeated in %v", in, r, list)
					}
					seen[r] = true
					if r == RegZero {
						t.Errorf("%v: hardwired zero register listed in %v", in, list)
					}
				}
			}
		}
	}
}

func TestIsBranch(t *testing.T) {
	branching := map[Op]bool{
		OpBeq: true, OpBne: true, OpBeqi: true, OpBnei: true, OpJmp: true, OpJal: true,
	}
	for _, op := range Ops() {
		in := Instr{Op: op}
		if got := in.IsBranch(); got != branching[op] {
			t.Errorf("%v IsBranch = %v, want %v", op, got, branching[op])
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, "add $1 $2 $3"},
		{Instr{Op: OpAddi, Rd: 1, Rs: 2, Imm: -5}, "addi $1 $2 #-5"},
		{Instr{Op: OpMov, Rd: 4, Rs: 5}, "mov $4 $5"},
		{Instr{Op: OpLi, Rd: 4, Imm: 7}, "li $4 #7"},
		{Instr{Op: OpLd, Rt: 6, Rs: 29, Imm: 2}, "ld $6 2($29)"},
		{Instr{Op: OpSt, Rt: 6, Rs: 0, Imm: 100}, "st $6 100($0)"},
		{Instr{Op: OpBeqi, Rs: 5, Imm: 0, Label: "exit"}, "beqi $5 #0 exit"},
		{Instr{Op: OpBeq, Rs: 5, Rt: 6, Target: 3}, "beq $5 $6 @3"},
		{Instr{Op: OpJmp, Label: "loop"}, "jmp loop"},
		{Instr{Op: OpJr, Rs: 31}, "jr $31"},
		{Instr{Op: OpPrints, Str: "a\"b"}, `prints "a\"b"`},
		{Instr{Op: OpThrow, Str: "bad"}, `throw "bad"`},
		{Instr{Op: OpCheck, Imm: 2}, "check #2"},
		{Instr{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRegString(t *testing.T) {
	if RegRA.String() != "$31" || RegZero.String() != "$0" {
		t.Errorf("register rendering broken: %s %s", RegRA, RegZero)
	}
	if !Reg(31).Valid() || Reg(32).Valid() {
		t.Error("register validity broken")
	}
}
