package isa

import "testing"

// TestBuilderEmitsEveryHelper exercises each typed emission helper and
// checks the emitted opcode and operands.
func TestBuilderEmitsEveryHelper(t *testing.T) {
	b := NewBuilder("all")
	b.Label("start")
	b.Add(1, 2, 3)
	b.Sub(1, 2, 3)
	b.Mult(1, 2, 3)
	b.Div(1, 2, 3)
	b.Mod(1, 2, 3)
	b.And(1, 2, 3)
	b.Or(1, 2, 3)
	b.Xor(1, 2, 3)
	b.Nor(1, 2, 3)
	b.Sll(1, 2, 3)
	b.Addi(1, 2, 4)
	b.Subi(1, 2, 4)
	b.Multi(1, 2, 4)
	b.Divi(1, 2, 4)
	b.Andi(1, 2, 4)
	b.Ori(1, 2, 4)
	b.Xori(1, 2, 4)
	b.Seteq(1, 2, 3)
	b.Setne(1, 2, 3)
	b.Setgt(1, 2, 3)
	b.Setlt(1, 2, 3)
	b.Setge(1, 2, 3)
	b.Setle(1, 2, 3)
	b.Seteqi(1, 2, 4)
	b.Setnei(1, 2, 4)
	b.Setgti(1, 2, 4)
	b.Setlti(1, 2, 4)
	b.Mov(1, 2)
	b.Li(1, 9)
	b.Ld(1, 8, 2)
	b.St(1, 8, 2)
	b.Beq(1, 2, "start")
	b.Bne(1, 2, "start")
	b.Beqi(1, 0, "start")
	b.Bnei(1, 0, "start")
	b.Jmp("start")
	b.Jal("start")
	b.Jr(RegRA)
	b.Read(1)
	b.Print(1)
	b.Prints("s")
	b.Nop()
	b.Throw("t")
	b.Check(2)
	b.Halt()

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{
		OpAdd, OpSub, OpMult, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpNor, OpSll,
		OpAddi, OpSubi, OpMulti, OpDivi, OpAndi, OpOri, OpXori,
		OpSeteq, OpSetne, OpSetgt, OpSetlt, OpSetge, OpSetle,
		OpSeteqi, OpSetnei, OpSetgti, OpSetlti,
		OpMov, OpLi, OpLd, OpSt,
		OpBeq, OpBne, OpBeqi, OpBnei, OpJmp, OpJal, OpJr,
		OpRead, OpPrint, OpPrints, OpNop, OpThrow, OpCheck, OpHalt,
	}
	if p.Len() != len(wantOps) {
		t.Fatalf("emitted %d instructions, want %d", p.Len(), len(wantOps))
	}
	for i, want := range wantOps {
		if got := p.At(i).Op; got != want {
			t.Errorf("instr %d: op %v, want %v", i, got, want)
		}
	}
	// Memory operand wiring: Ld(rt, off, rs).
	ld := p.At(29)
	if ld.Rt != 1 || ld.Imm != 8 || ld.Rs != 2 {
		t.Errorf("Ld wiring: %v", ld)
	}
	// Branch resolution to the label.
	if p.At(31).Target != 0 {
		t.Errorf("Beq target %d", p.At(31).Target)
	}
}

func TestExceptionRendering(t *testing.T) {
	e := &Exception{Kind: ExcIllegalAddr, PC: 5, Detail: "load from 9"}
	if got := e.Error(); got != "illegal addr (load from 9) at @5" {
		t.Errorf("Error() = %q", got)
	}
	e = &Exception{Kind: ExcTimeout, PC: 2}
	if got := e.Error(); got != "timed out at @2" {
		t.Errorf("Error() = %q", got)
	}
	kinds := []ExceptionKind{ExcIllegalInstr, ExcIllegalAddr, ExcDivZero, ExcTimeout, ExcDetected, ExcThrow}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k.String()] {
			t.Errorf("duplicate kind name %q", k.String())
		}
		seen[k.String()] = true
	}
}

// TestMustBuildPanicContract pins the documented contract of MustBuild: a
// known-good program builds without panicking, and a program with an
// undefined branch target panics (instead of silently producing a bad
// program). Campaign code never recovers this panic — it is an assertion on
// embedded programs, not a runtime error path.
func TestMustBuildPanicContract(t *testing.T) {
	good := NewBuilder("good")
	good.Li(1, 1)
	good.Halt()
	if p := good.MustBuild(); p == nil || p.Len() != 2 {
		t.Fatalf("MustBuild of a valid program: %v", p)
	}

	bad := NewBuilder("bad")
	bad.Jmp("nowhere")
	bad.Halt()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustBuild of a program with an undefined label did not panic")
		}
		if _, ok := r.(error); !ok {
			t.Errorf("MustBuild panicked with %T, want the Build error", r)
		}
	}()
	bad.MustBuild()
}
