package isa

import (
	"fmt"
	"strconv"
)

// Loc names an architectural state location that can hold a value: a
// general-purpose register or a memory word. The error model injects err into
// Locs, and the constraint map (paper Section 5.2) is keyed by Loc.
type Loc struct {
	IsMem bool
	Reg   Reg   // valid when !IsMem
	Addr  int64 // valid when IsMem
}

// RegLoc returns the location of register r.
func RegLoc(r Reg) Loc { return Loc{Reg: r} }

// MemLoc returns the location of the memory word at addr.
func MemLoc(addr int64) Loc { return Loc{IsMem: true, Addr: addr} }

// String renders the location: "$7" or "*(1000)".
func (l Loc) String() string {
	if l.IsMem {
		return "*(" + strconv.FormatInt(l.Addr, 10) + ")"
	}
	return l.Reg.String()
}

// ParseLoc parses a location in detector syntax: $N, $(N), *(addr) or *addr.
func ParseLoc(s string) (Loc, error) {
	if len(s) == 0 {
		return Loc{}, fmt.Errorf("empty location")
	}
	switch s[0] {
	case '$':
		body := trimParens(s[1:])
		n, err := strconv.ParseUint(body, 10, 8)
		if err != nil || n >= NumRegs {
			return Loc{}, fmt.Errorf("bad register %q", s)
		}
		return RegLoc(Reg(n)), nil
	case '*':
		body := trimParens(s[1:])
		a, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return Loc{}, fmt.Errorf("bad memory address %q", s)
		}
		return MemLoc(a), nil
	}
	return Loc{}, fmt.Errorf("bad location %q (want $N or *(addr))", s)
}

func trimParens(s string) string {
	if len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
		return s[1 : len(s)-1]
	}
	return s
}
