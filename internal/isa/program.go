package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Program is an immutable sequence of instructions plus its label table.
// Instruction addresses are instruction indices; the program counter ranges
// over [0, len(Instrs)). Following the paper's machine-model assumptions
// (Section 5.1), program text cannot be overwritten during execution, and a
// fetch from an address outside the valid range raises an "illegal
// instruction" exception.
type Program struct {
	Name   string
	Instrs []Instr
	Labels map[string]int // label -> instruction index

	labelsAt map[int][]string // instruction index -> labels (for rendering)
}

// NewProgram assembles a program from resolved instructions and labels. Every
// branch target must already be resolved (Target set) or resolvable through
// labels; NewProgram resolves Label fields and validates targets.
func NewProgram(name string, instrs []Instr, labels map[string]int) (*Program, error) {
	p := &Program{
		Name:   name,
		Instrs: make([]Instr, len(instrs)),
		Labels: make(map[string]int, len(labels)),
	}
	copy(p.Instrs, instrs)
	for l, idx := range labels {
		if idx < 0 || idx > len(instrs) {
			return nil, fmt.Errorf("program %q: label %q points outside code (%d)", name, l, idx)
		}
		p.Labels[l] = idx
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if !in.Op.Valid() {
			return nil, fmt.Errorf("program %q: instruction %d has invalid opcode", name, i)
		}
		if in.IsBranch() {
			if in.Label != "" {
				idx, ok := p.Labels[in.Label]
				if !ok {
					return nil, fmt.Errorf("program %q: instruction %d references undefined label %q", name, i, in.Label)
				}
				in.Target = idx
			}
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				return nil, fmt.Errorf("program %q: instruction %d branches to invalid target %d", name, i, in.Target)
			}
		}
	}
	p.labelsAt = make(map[int][]string, len(p.Labels))
	for l, idx := range p.Labels {
		p.labelsAt[idx] = append(p.labelsAt[idx], l)
	}
	for _, ls := range p.labelsAt {
		sort.Strings(ls)
	}
	return p, nil
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// ValidPC reports whether pc addresses an instruction.
func (p *Program) ValidPC(pc int) bool { return pc >= 0 && pc < len(p.Instrs) }

// At returns the instruction at pc. It must only be called with a valid pc.
func (p *Program) At(pc int) Instr { return p.Instrs[pc] }

// LabelsAt returns the labels attached to the given instruction index, sorted.
func (p *Program) LabelsAt(pc int) []string { return p.labelsAt[pc] }

// LabelFor returns the closest label at or before pc along with the offset
// from it, for human-readable locations like "loop+2". It returns ok=false
// for programs without labels.
func (p *Program) LabelFor(pc int) (label string, offset int, ok bool) {
	best := -1
	for l, idx := range p.Labels {
		if idx <= pc && (idx > best || (idx == best && l < label)) {
			if idx > best {
				best = idx
				label = l
			} else if l < label {
				label = l
			}
			ok = true
		}
	}
	if !ok {
		return "", 0, false
	}
	return label, pc - best, true
}

// Locate renders a human-readable code location for pc.
func (p *Program) Locate(pc int) string {
	if !p.ValidPC(pc) {
		return fmt.Sprintf("@%d(invalid)", pc)
	}
	if label, off, ok := p.LabelFor(pc); ok {
		if off == 0 {
			return fmt.Sprintf("%s (@%d)", label, pc)
		}
		return fmt.Sprintf("%s+%d (@%d)", label, off, pc)
	}
	return fmt.Sprintf("@%d", pc)
}

// String renders the program as assembly text. The output parses back to an
// equivalent program with the internal/asm assembler.
func (p *Program) String() string {
	var b strings.Builder
	for i, in := range p.Instrs {
		for _, l := range p.labelsAt[i] {
			b.WriteString(l)
			b.WriteString(":\n")
		}
		b.WriteString("\t")
		b.WriteString(in.String())
		b.WriteString("\n")
	}
	for _, l := range p.labelsAt[len(p.Instrs)] {
		b.WriteString(l)
		b.WriteString(":\n")
	}
	return b.String()
}
