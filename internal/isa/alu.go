package isa

import "errors"

// ErrDivideByZero is reported by EvalBin for division or modulus by zero.
// The machine model converts it into a "div-zero" exception, matching the
// paper's error-propagation equations (Section 5.2).
var ErrDivideByZero = errors.New("divide by zero")

// BinOp is a canonical binary arithmetic/logic operator. Register and
// immediate instruction forms share one BinOp, so the concrete interpreter
// and the symbolic executor implement each operator's semantics exactly once.
type BinOp int

// Canonical binary operators.
const (
	BinAdd BinOp = iota + 1
	BinSub
	BinMult
	BinDiv
	BinMod
	BinAnd
	BinOr
	BinXor
	BinNor
	BinSll
	BinSrl
	BinSra
)

// String returns the operator's symbol.
func (b BinOp) String() string {
	switch b {
	case BinAdd:
		return "+"
	case BinSub:
		return "-"
	case BinMult:
		return "*"
	case BinDiv:
		return "/"
	case BinMod:
		return "%"
	case BinAnd:
		return "&"
	case BinOr:
		return "|"
	case BinXor:
		return "^"
	case BinNor:
		return "~|"
	case BinSll:
		return "<<"
	case BinSrl:
		return ">>>"
	case BinSra:
		return ">>"
	}
	return "?"
}

// ArithOp maps an arithmetic/logic opcode (register or immediate form) to its
// canonical operator. ok is false for non-arithmetic opcodes.
func ArithOp(op Op) (bin BinOp, immediate bool, ok bool) {
	switch op {
	case OpAdd:
		return BinAdd, false, true
	case OpSub:
		return BinSub, false, true
	case OpMult:
		return BinMult, false, true
	case OpDiv:
		return BinDiv, false, true
	case OpMod:
		return BinMod, false, true
	case OpAnd:
		return BinAnd, false, true
	case OpOr:
		return BinOr, false, true
	case OpXor:
		return BinXor, false, true
	case OpNor:
		return BinNor, false, true
	case OpSll:
		return BinSll, false, true
	case OpSrl:
		return BinSrl, false, true
	case OpSra:
		return BinSra, false, true
	case OpAddi:
		return BinAdd, true, true
	case OpSubi:
		return BinSub, true, true
	case OpMulti:
		return BinMult, true, true
	case OpDivi:
		return BinDiv, true, true
	case OpModi:
		return BinMod, true, true
	case OpAndi:
		return BinAnd, true, true
	case OpOri:
		return BinOr, true, true
	case OpXori:
		return BinXor, true, true
	case OpSlli:
		return BinSll, true, true
	case OpSrli:
		return BinSrl, true, true
	case OpSrai:
		return BinSra, true, true
	}
	return 0, false, false
}

// EvalBin evaluates a binary operator on concrete integers. Shift amounts are
// taken modulo 64; negative shift amounts shift by zero.
func EvalBin(b BinOp, x, y int64) (int64, error) {
	switch b {
	case BinAdd:
		return x + y, nil
	case BinSub:
		return x - y, nil
	case BinMult:
		return x * y, nil
	case BinDiv:
		if y == 0 {
			return 0, ErrDivideByZero
		}
		return x / y, nil
	case BinMod:
		if y == 0 {
			return 0, ErrDivideByZero
		}
		return x % y, nil
	case BinAnd:
		return x & y, nil
	case BinOr:
		return x | y, nil
	case BinXor:
		return x ^ y, nil
	case BinNor:
		return ^(x | y), nil
	case BinSll:
		return x << shiftAmount(y), nil
	case BinSrl:
		return int64(uint64(x) >> shiftAmount(y)), nil
	case BinSra:
		return x >> shiftAmount(y), nil
	}
	return 0, errors.New("unknown binary operator")
}

func shiftAmount(y int64) uint {
	if y < 0 {
		return 0
	}
	return uint(y) % 64
}

// Cmp is a comparison operator, shared by comparison-set instructions,
// branches, and the detector expression language (Section 5.3).
type Cmp int

// Comparison operators.
const (
	CmpEq Cmp = iota + 1
	CmpNe
	CmpGt
	CmpLt
	CmpGe
	CmpLe
)

// String returns the comparison's symbol in detector syntax.
func (c Cmp) String() string {
	switch c {
	case CmpEq:
		return "=="
	case CmpNe:
		return "=/="
	case CmpGt:
		return ">"
	case CmpLt:
		return "<"
	case CmpGe:
		return ">="
	case CmpLe:
		return "<="
	}
	return "?"
}

// Negate returns the comparison's logical negation.
func (c Cmp) Negate() Cmp {
	switch c {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpGt:
		return CmpLe
	case CmpLt:
		return CmpGe
	case CmpGe:
		return CmpLt
	case CmpLe:
		return CmpGt
	}
	return 0
}

// Swap returns the comparison with its operands exchanged: x c y == y Swap(c) x.
func (c Cmp) Swap() Cmp {
	switch c {
	case CmpGt:
		return CmpLt
	case CmpLt:
		return CmpGt
	case CmpGe:
		return CmpLe
	case CmpLe:
		return CmpGe
	}
	return c
}

// EvalCmp evaluates a comparison on concrete integers.
func EvalCmp(c Cmp, x, y int64) bool {
	switch c {
	case CmpEq:
		return x == y
	case CmpNe:
		return x != y
	case CmpGt:
		return x > y
	case CmpLt:
		return x < y
	case CmpGe:
		return x >= y
	case CmpLe:
		return x <= y
	}
	return false
}

// CmpForOp maps a comparison-set opcode to its comparison operator. ok is
// false for other opcodes.
func CmpForOp(op Op) (cmp Cmp, immediate bool, ok bool) {
	switch op {
	case OpSeteq:
		return CmpEq, false, true
	case OpSetne:
		return CmpNe, false, true
	case OpSetgt:
		return CmpGt, false, true
	case OpSetlt:
		return CmpLt, false, true
	case OpSetge:
		return CmpGe, false, true
	case OpSetle:
		return CmpLe, false, true
	case OpSeteqi:
		return CmpEq, true, true
	case OpSetnei:
		return CmpNe, true, true
	case OpSetgti:
		return CmpGt, true, true
	case OpSetlti:
		return CmpLt, true, true
	case OpSetgei:
		return CmpGe, true, true
	case OpSetlei:
		return CmpLe, true, true
	}
	return 0, false, false
}

// CmpByName parses a comparison operator in detector syntax.
func CmpByName(s string) (Cmp, bool) {
	switch s {
	case "==", "=":
		return CmpEq, true
	case "=/=", "!=":
		return CmpNe, true
	case ">":
		return CmpGt, true
	case "<":
		return CmpLt, true
	case ">=":
		return CmpGe, true
	case "<=":
		return CmpLe, true
	}
	return 0, false
}
