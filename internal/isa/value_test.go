package isa

import (
	"testing"
	"testing/quick"
)

func TestValueBasics(t *testing.T) {
	v := Int(42)
	if v.IsErr() || !v.IsConcrete() {
		t.Fatal("Int(42) classified as err")
	}
	if n, ok := v.Concrete(); !ok || n != 42 {
		t.Fatalf("Concrete() = %d, %v", n, ok)
	}
	if v.String() != "42" {
		t.Fatalf("String() = %q", v.String())
	}
	if v.MustConcrete() != 42 {
		t.Fatalf("MustConcrete() = %d", v.MustConcrete())
	}

	e := Err()
	if !e.IsErr() || e.IsConcrete() {
		t.Fatal("Err() classified as concrete")
	}
	if _, ok := e.Concrete(); ok {
		t.Fatal("Err().Concrete() ok")
	}
	if e.String() != "err" {
		t.Fatalf("String() = %q", e.String())
	}
	if e.MustConcrete() != 0 {
		t.Fatalf("Err().MustConcrete() = %d", e.MustConcrete())
	}
}

func TestValueZeroIsConcreteZero(t *testing.T) {
	var v Value
	if v.IsErr() {
		t.Fatal("zero Value is err")
	}
	if n, _ := v.Concrete(); n != 0 {
		t.Fatalf("zero Value = %d", n)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(0), Err(), false},
		{Err(), Int(0), false},
		{Err(), Err(), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: Int is injective up to Equal, and never err.
func TestValueIntProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.IsErr() || vb.IsErr() {
			return false
		}
		return va.Equal(vb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
