package isa

import "fmt"

// Op identifies an instruction opcode in the generic assembly language.
type Op int

// Opcodes. The set follows the paper's instruction classes (Section 5.1):
// arithmetic, branches, loads/stores, input/output, and special instructions
// (halt, throw, check), plus the comparison-set family (setgt et al.) used by
// the running factorial example.
const (
	OpInvalid Op = iota

	// Arithmetic and logic, register-register-register.
	OpAdd
	OpSub
	OpMult
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpNor
	OpSll
	OpSrl
	OpSra

	// Arithmetic and logic, register-register-immediate.
	OpAddi
	OpSubi
	OpMulti
	OpDivi
	OpModi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai

	// Comparison-set, register-register-register: rd <- (rs ? rt) as 0/1.
	OpSeteq
	OpSetne
	OpSetgt
	OpSetlt
	OpSetge
	OpSetle

	// Comparison-set, register-register-immediate.
	OpSeteqi
	OpSetnei
	OpSetgti
	OpSetlti
	OpSetgei
	OpSetlei

	// Data movement.
	OpMov // rd <- rs
	OpLi  // rd <- imm
	OpLui // rd <- imm << 16

	// Memory. Addresses are word-granular: ld rt, imm(rs) reads M[R[rs]+imm].
	OpLd
	OpSt

	// Control flow. Branches compare a register against either a register
	// (OpBeq/OpBne) or an immediate (OpBeqi/OpBnei), as in the paper's
	// "beq rs v l" form.
	OpBeq
	OpBne
	OpBeqi
	OpBnei
	OpJmp
	OpJal // jump and link: RA <- pc+1
	OpJr  // jump to register

	// Input/output, supported natively since the OS is not modeled.
	OpRead   // rd <- next input value
	OpPrint  // append R[rs] to the output stream
	OpPrints // append a string literal to the output stream

	// Special.
	OpNop
	OpHalt
	OpThrow // raise a named exception and stop
	OpCheck // invoke error detector by ID (paper's CHECK annotation)

	numOps // sentinel
)

// Format describes an opcode's operand shape; the assembler, disassembler,
// builder, and fault model all key off it.
type Format int

// Operand formats.
const (
	FormatNone    Format = iota + 1
	FormatR3             // op rd, rs, rt
	FormatR2I            // op rd, rs, #imm
	FormatR2             // op rd, rs
	FormatRI             // op rd, #imm
	FormatMem            // op rt, imm(rs)
	FormatBranch         // op rs, rt, label
	FormatBranchI        // op rs, #imm, label
	FormatJump           // op label
	FormatJumpR          // op rs
	FormatR1             // op rd   (read) / op rs (print, jr)
	FormatStr            // op "literal"
	FormatCheck          // op #detectorID
)

type opInfo struct {
	name   string
	format Format
}

var opTable = [numOps]opInfo{
	OpInvalid: {"invalid", FormatNone},

	OpAdd:  {"add", FormatR3},
	OpSub:  {"sub", FormatR3},
	OpMult: {"mult", FormatR3},
	OpDiv:  {"div", FormatR3},
	OpMod:  {"mod", FormatR3},
	OpAnd:  {"and", FormatR3},
	OpOr:   {"or", FormatR3},
	OpXor:  {"xor", FormatR3},
	OpNor:  {"nor", FormatR3},
	OpSll:  {"sll", FormatR3},
	OpSrl:  {"srl", FormatR3},
	OpSra:  {"sra", FormatR3},

	OpAddi:  {"addi", FormatR2I},
	OpSubi:  {"subi", FormatR2I},
	OpMulti: {"multi", FormatR2I},
	OpDivi:  {"divi", FormatR2I},
	OpModi:  {"modi", FormatR2I},
	OpAndi:  {"andi", FormatR2I},
	OpOri:   {"ori", FormatR2I},
	OpXori:  {"xori", FormatR2I},
	OpSlli:  {"slli", FormatR2I},
	OpSrli:  {"srli", FormatR2I},
	OpSrai:  {"srai", FormatR2I},

	OpSeteq: {"seteq", FormatR3},
	OpSetne: {"setne", FormatR3},
	OpSetgt: {"setgt", FormatR3},
	OpSetlt: {"setlt", FormatR3},
	OpSetge: {"setge", FormatR3},
	OpSetle: {"setle", FormatR3},

	OpSeteqi: {"seteqi", FormatR2I},
	OpSetnei: {"setnei", FormatR2I},
	OpSetgti: {"setgti", FormatR2I},
	OpSetlti: {"setlti", FormatR2I},
	OpSetgei: {"setgei", FormatR2I},
	OpSetlei: {"setlei", FormatR2I},

	OpMov: {"mov", FormatR2},
	OpLi:  {"li", FormatRI},
	OpLui: {"lui", FormatRI},

	OpLd: {"ld", FormatMem},
	OpSt: {"st", FormatMem},

	OpBeq:  {"beq", FormatBranch},
	OpBne:  {"bne", FormatBranch},
	OpBeqi: {"beqi", FormatBranchI},
	OpBnei: {"bnei", FormatBranchI},
	OpJmp:  {"jmp", FormatJump},
	OpJal:  {"jal", FormatJump},
	OpJr:   {"jr", FormatJumpR},

	OpRead:   {"read", FormatR1},
	OpPrint:  {"print", FormatR1},
	OpPrints: {"prints", FormatStr},

	OpNop:   {"nop", FormatNone},
	OpHalt:  {"halt", FormatNone},
	OpThrow: {"throw", FormatStr},
	OpCheck: {"check", FormatCheck},
}

// Valid reports whether op names a real opcode.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// String returns the assembly mnemonic for op.
func (op Op) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", int(op))
	}
	return opTable[op].name
}

// Format returns the operand format of op.
func (op Op) Format() Format {
	if !op.Valid() {
		return FormatNone
	}
	return opTable[op].format
}

// OpByName returns the opcode with the given mnemonic, or OpInvalid.
func OpByName(name string) Op {
	op, ok := opsByName[name]
	if !ok {
		return OpInvalid
	}
	return op
}

var opsByName = buildOpsByName()

func buildOpsByName() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := OpInvalid + 1; op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}

// Ops returns every valid opcode, in declaration order. The slice is fresh on
// each call, so callers may modify it.
func Ops() []Op {
	out := make([]Op, 0, int(numOps)-1)
	for op := OpInvalid + 1; op < numOps; op++ {
		out = append(out, op)
	}
	return out
}
