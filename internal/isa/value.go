// Package isa defines the generic assembly language used by the SymPLFIED
// framework: the value domain (concrete integers plus the single symbolic
// error value err), the register file shape, the instruction set, program
// representation, and a typed program builder.
//
// The language mirrors the paper's generic RISC abstraction (Section 3.1 and
// Section 5.1): integer-only arithmetic, explicit I/O instructions so that
// programs can be analyzed independently of an operating system, and a CHECK
// instruction for invoking error detectors in line with the program.
package isa

import "strconv"

// Value is a machine word: either a concrete 64-bit integer or the symbolic
// error value err. Following the paper (Section 3.2), a single symbol
// represents all erroneous values; program states are distinguished by where
// errors reside, not by the erroneous bit patterns themselves.
//
// The zero Value is the concrete integer 0.
type Value struct {
	sym bool
	n   int64
}

// Int returns a concrete integer value.
func Int(n int64) Value { return Value{n: n} }

// Err returns the symbolic error value.
func Err() Value { return Value{sym: true} }

// IsErr reports whether v is the symbolic error value.
func (v Value) IsErr() bool { return v.sym }

// IsConcrete reports whether v is a concrete integer.
func (v Value) IsConcrete() bool { return !v.sym }

// Concrete returns the concrete integer held by v. The boolean is false when
// v is the symbolic error value, in which case the integer is meaningless.
func (v Value) Concrete() (int64, bool) {
	if v.sym {
		return 0, false
	}
	return v.n, true
}

// MustConcrete returns the concrete integer held by v, or 0 for err. It is
// intended for rendering paths where err has already been ruled out.
func (v Value) MustConcrete() int64 {
	if v.sym {
		return 0
	}
	return v.n
}

// Equal reports structural equality: two concrete values are equal when their
// integers match; err is structurally equal only to err. Note that structural
// equality of two err values does NOT mean the underlying erroneous machine
// words would be equal; comparison instructions must treat err specially.
func (v Value) Equal(w Value) bool {
	if v.sym || w.sym {
		return v.sym == w.sym
	}
	return v.n == w.n
}

// String renders the value: a decimal integer or the literal "err".
func (v Value) String() string {
	if v.sym {
		return "err"
	}
	return strconv.FormatInt(v.n, 10)
}
