package isa

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEvalBinTable(t *testing.T) {
	cases := []struct {
		op   BinOp
		x, y int64
		want int64
	}{
		{BinAdd, 3, 4, 7},
		{BinAdd, -3, 3, 0},
		{BinSub, 3, 4, -1},
		{BinMult, -3, 4, -12},
		{BinDiv, 7, 2, 3},
		{BinDiv, -7, 2, -3}, // truncated toward zero
		{BinMod, 7, 2, 1},
		{BinMod, -7, 2, -1},
		{BinAnd, 0b1100, 0b1010, 0b1000},
		{BinOr, 0b1100, 0b1010, 0b1110},
		{BinXor, 0b1100, 0b1010, 0b0110},
		{BinNor, 0, 0, -1},
		{BinSll, 1, 4, 16},
		{BinSrl, -1, 60, 15},
		{BinSra, -16, 2, -4},
		{BinSll, 1, 64, 1},  // shift amounts mod 64
		{BinSll, 5, -3, 5},  // negative shift: shift by zero
		{BinSrl, 16, 68, 1}, // 68 mod 64 = 4
	}
	for _, c := range cases {
		got, err := EvalBin(c.op, c.x, c.y)
		if err != nil {
			t.Errorf("EvalBin(%v, %d, %d) error: %v", c.op, c.x, c.y, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalBin(%v, %d, %d) = %d, want %d", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestEvalBinDivideByZero(t *testing.T) {
	for _, op := range []BinOp{BinDiv, BinMod} {
		if _, err := EvalBin(op, 5, 0); !errors.Is(err, ErrDivideByZero) {
			t.Errorf("EvalBin(%v, 5, 0) error = %v, want ErrDivideByZero", op, err)
		}
	}
}

func TestEvalCmpTable(t *testing.T) {
	cases := []struct {
		cmp  Cmp
		x, y int64
		want bool
	}{
		{CmpEq, 1, 1, true}, {CmpEq, 1, 2, false},
		{CmpNe, 1, 2, true}, {CmpNe, 2, 2, false},
		{CmpGt, 2, 1, true}, {CmpGt, 1, 1, false},
		{CmpLt, 1, 2, true}, {CmpLt, 2, 2, false},
		{CmpGe, 2, 2, true}, {CmpGe, 1, 2, false},
		{CmpLe, 2, 2, true}, {CmpLe, 3, 2, false},
	}
	for _, c := range cases {
		if got := EvalCmp(c.cmp, c.x, c.y); got != c.want {
			t.Errorf("EvalCmp(%v, %d, %d) = %v, want %v", c.cmp, c.x, c.y, got, c.want)
		}
	}
}

var allCmps = []Cmp{CmpEq, CmpNe, CmpGt, CmpLt, CmpGe, CmpLe}

// Property: Negate is an involution and flips every evaluation.
func TestCmpNegateProperty(t *testing.T) {
	f := func(x, y int64) bool {
		for _, c := range allCmps {
			if c.Negate().Negate() != c {
				return false
			}
			if EvalCmp(c, x, y) == EvalCmp(c.Negate(), x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Swap mirrors operands: x c y == y Swap(c) x.
func TestCmpSwapProperty(t *testing.T) {
	f := func(x, y int64) bool {
		for _, c := range allCmps {
			if EvalCmp(c, x, y) != EvalCmp(c.Swap(), y, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithOpCoversAllArithmeticOpcodes(t *testing.T) {
	regForms := map[BinOp]Op{}
	immForms := map[BinOp]Op{}
	for _, op := range Ops() {
		bin, imm, ok := ArithOp(op)
		if !ok {
			continue
		}
		if imm {
			immForms[bin] = op
		} else {
			regForms[bin] = op
		}
	}
	for _, bin := range []BinOp{BinAdd, BinSub, BinMult, BinDiv, BinMod, BinAnd, BinOr, BinXor, BinSll, BinSrl, BinSra} {
		if _, ok := regForms[bin]; !ok {
			t.Errorf("no register form for %v", bin)
		}
		if _, ok := immForms[bin]; !ok {
			t.Errorf("no immediate form for %v", bin)
		}
	}
}

func TestCmpForOpCoversAllSetOpcodes(t *testing.T) {
	count := 0
	for _, op := range Ops() {
		if _, _, ok := CmpForOp(op); ok {
			count++
		}
	}
	if count != 12 { // 6 comparisons x {register, immediate}
		t.Errorf("CmpForOp covers %d opcodes, want 12", count)
	}
}

func TestCmpByName(t *testing.T) {
	for name, want := range map[string]Cmp{
		"==": CmpEq, "=": CmpEq, "=/=": CmpNe, "!=": CmpNe,
		">": CmpGt, "<": CmpLt, ">=": CmpGe, "<=": CmpLe,
	} {
		got, ok := CmpByName(name)
		if !ok || got != want {
			t.Errorf("CmpByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := CmpByName("<>"); ok {
		t.Error("CmpByName accepted <>")
	}
}
