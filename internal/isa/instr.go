package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Instr is one decoded instruction. Fields are interpreted according to the
// opcode's Format; unused fields are zero.
type Instr struct {
	Op Op

	Rd Reg // destination (R3/R2I/R2/RI/R1 destination forms)
	Rs Reg // first source / base register / branch LHS
	Rt Reg // second source / branch RHS / memory data register

	Imm int64 // immediate operand (also detector ID for OpCheck)

	Label  string // symbolic branch/jump target (before resolution)
	Target int    // resolved instruction index of Label

	Str string // string literal for prints/throw

	Line int // 1-based source line in the original assembly text, 0 if built
}

// SrcRegs returns the registers read by the instruction, in operand order,
// excluding the hardwired zero register. This is the set the fault model uses
// to pick activated injection targets (paper Section 6.1: "only the
// register(s) used by the instruction was injected").
func (in Instr) SrcRegs() []Reg {
	var regs []Reg
	add := func(r Reg) {
		if r == RegZero {
			return
		}
		for _, have := range regs {
			if have == r {
				return
			}
		}
		regs = append(regs, r)
	}
	switch in.Op.Format() {
	case FormatR3:
		add(in.Rs)
		add(in.Rt)
	case FormatR2I:
		add(in.Rs)
	case FormatR2:
		add(in.Rs)
	case FormatMem:
		add(in.Rs)
		if in.Op == OpSt {
			add(in.Rt)
		}
	case FormatBranch:
		add(in.Rs)
		add(in.Rt)
	case FormatBranchI:
		add(in.Rs)
	case FormatJumpR:
		add(in.Rs)
	case FormatR1:
		if in.Op == OpPrint {
			add(in.Rd)
		}
	}
	return regs
}

// DstRegs returns the registers written by the instruction, excluding the
// hardwired zero register.
func (in Instr) DstRegs() []Reg {
	switch in.Op.Format() {
	case FormatR3, FormatR2I, FormatR2, FormatRI:
		if in.Rd != RegZero {
			return []Reg{in.Rd}
		}
	case FormatMem:
		if in.Op == OpLd && in.Rt != RegZero {
			return []Reg{in.Rt}
		}
	case FormatJump:
		if in.Op == OpJal {
			return []Reg{RegRA}
		}
	case FormatR1:
		if in.Op == OpRead && in.Rd != RegZero {
			return []Reg{in.Rd}
		}
	}
	return nil
}

// UsedRegs returns the union of SrcRegs and DstRegs.
func (in Instr) UsedRegs() []Reg {
	regs := in.SrcRegs()
	for _, d := range in.DstRegs() {
		dup := false
		for _, have := range regs {
			if have == d {
				dup = true
				break
			}
		}
		if !dup {
			regs = append(regs, d)
		}
	}
	return regs
}

// IsBranch reports whether the instruction can transfer control to a label.
func (in Instr) IsBranch() bool {
	switch in.Op {
	case OpBeq, OpBne, OpBeqi, OpBnei, OpJmp, OpJal:
		return true
	}
	return false
}

// String renders the instruction in assembly syntax.
func (in Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op.Format() {
	case FormatNone:
	case FormatR3:
		fmt.Fprintf(&b, " %s %s %s", in.Rd, in.Rs, in.Rt)
	case FormatR2I:
		fmt.Fprintf(&b, " %s %s #%d", in.Rd, in.Rs, in.Imm)
	case FormatR2:
		fmt.Fprintf(&b, " %s %s", in.Rd, in.Rs)
	case FormatRI:
		fmt.Fprintf(&b, " %s #%d", in.Rd, in.Imm)
	case FormatMem:
		fmt.Fprintf(&b, " %s %d(%s)", in.Rt, in.Imm, in.Rs)
	case FormatBranch:
		fmt.Fprintf(&b, " %s %s %s", in.Rs, in.Rt, in.targetName())
	case FormatBranchI:
		fmt.Fprintf(&b, " %s #%d %s", in.Rs, in.Imm, in.targetName())
	case FormatJump:
		fmt.Fprintf(&b, " %s", in.targetName())
	case FormatJumpR:
		fmt.Fprintf(&b, " %s", in.Rs)
	case FormatR1:
		fmt.Fprintf(&b, " %s", in.Rd)
	case FormatStr:
		fmt.Fprintf(&b, " %s", strconv.Quote(in.Str))
	case FormatCheck:
		fmt.Fprintf(&b, " #%d", in.Imm)
	}
	return b.String()
}

func (in Instr) targetName() string {
	if in.Label != "" {
		return in.Label
	}
	return "@" + strconv.Itoa(in.Target)
}
