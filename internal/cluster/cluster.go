// Package cluster implements the paper's experiment-decomposition harness
// (Section 6.1): a search command is "split into multiple smaller searches,
// each of which sweeps a particular section of the program code", the tasks
// run independently (there on a 150-node Opteron cluster, here on a worker
// pool), each task is capped in findings (the paper used 10) and in budget
// (the paper used 30 minutes wall-clock; we use a deterministic state
// budget), and the results are pooled.
//
// RunCtx propagates context cancellation to every worker: an interrupted
// study returns the partial pooled results gathered so far — with the
// affected tasks marked Interrupted — rather than nothing, mirroring how the
// paper's cluster runs salvaged the tasks that finished inside their
// allotment.
package cluster

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/obs"
	"symplfied/internal/simplescalar"
	"symplfied/internal/symexec"
)

// Task is one independent search sweeping a slice of the injection space.
type Task struct {
	ID         int
	Injections []faults.Injection
}

// Split partitions injections into at most n tasks balanced two ways: by
// injection count (task sizes differ by at most one) and by code position —
// injections are ordered by breakpoint PC and dealt round-robin, so every
// task sweeps an interleaved sample of the whole program instead of one
// contiguous section. Contiguous slicing hands one task all the late-program
// breakpoints, whose injections are the expensive ones (a long concrete
// prefix before every symbolic exploration), and that task straggles the
// study; interleaving spreads the cost. Each task's injections remain
// PC-ordered. Every returned task is non-empty; fewer than n tasks are
// returned when there are fewer injections.
func Split(injections []faults.Injection, n int) []Task {
	if n <= 0 {
		n = 1
	}
	ordered := make([]faults.Injection, len(injections))
	copy(ordered, injections)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].PC < ordered[j].PC })

	if n > len(ordered) {
		n = len(ordered)
	}
	tasks := make([]Task, 0, n)
	for i := 0; i < n; i++ {
		var part []faults.Injection
		for j := i; j < len(ordered); j += n {
			part = append(part, ordered[j])
		}
		if len(part) == 0 {
			continue
		}
		tasks = append(tasks, Task{ID: len(tasks), Injections: part})
	}
	return tasks
}

// PointTask is one independent slice of a concrete↔symbolic cross-validation
// sweep (internal/crossval): a set of injection sites rather than symbolic
// injections. It is the crossval analogue of Task and is split the same way.
type PointTask struct {
	ID     int
	Points []simplescalar.Point
}

// SplitPoints partitions cross-validation sites into at most n tasks with the
// same policy as Split: PC-ordered, dealt round-robin so every task sweeps an
// interleaved sample of the program, sizes differing by at most one, every
// returned task non-empty. Because crossval point verdicts are deterministic
// and merged canonically (crossval.Merge), any partitioning produced here
// yields a byte-identical merged report.
func SplitPoints(points []simplescalar.Point, n int) []PointTask {
	if n <= 0 {
		n = 1
	}
	ordered := make([]simplescalar.Point, len(points))
	copy(ordered, points)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].PC < ordered[j].PC })

	if n > len(ordered) {
		n = len(ordered)
	}
	tasks := make([]PointTask, 0, n)
	for i := 0; i < n; i++ {
		var part []simplescalar.Point
		for j := i; j < len(ordered); j += n {
			part = append(part, ordered[j])
		}
		if len(part) == 0 {
			continue
		}
		tasks = append(tasks, PointTask{ID: len(tasks), Points: part})
	}
	return tasks
}

// Config tunes the harness.
type Config struct {
	// Workers is the pool size; 0 selects GOMAXPROCS.
	Workers int
	// TaskStateBudget is the total number of symbolic states a task may
	// explore before it is stopped as incomplete (the analogue of the
	// paper's 30-minute task allotment). 0 selects a default of 200k.
	TaskStateBudget int
	// MaxFindingsPerTask stops a task once it has collected this many
	// findings (the paper capped each search task at 10). 0 means unlimited.
	MaxFindingsPerTask int
}

// DefaultTaskStateBudget is used when Config.TaskStateBudget is zero.
const DefaultTaskStateBudget = 200_000

// TaskReport is the result of one task.
type TaskReport struct {
	TaskID int
	// Completed is true when the task swept all its injections within its
	// budget. The paper reports completed tasks separately (85 of 150 for
	// tcas, 202 of 312 for replace).
	Completed bool
	// Interrupted is true when the study's context was cancelled before or
	// while this task ran; its tallies are a sound partial subset.
	Interrupted bool
	// Panics counts injections within the task that panicked and were
	// isolated by the checker's recover boundary.
	Panics int
	// InjectionsDone counts injections fully explored.
	InjectionsDone int
	// Pruned counts injections classified benign by a liveness proof
	// (checker.InjectionReport.Pruned): one explored representative per dead
	// site plus every elided reuse. Zero unless the spec enables
	// PruneDeadInjections.
	Pruned int `json:",omitempty"`
	// Merged counts injections explored with post-dominator state merging
	// (checker.InjectionReport.Merged). Their verdicts match the plain
	// exploration's; StatesExplored reflects the elided work.
	Merged int `json:",omitempty"`
	// Summarized counts injections classified benign by a compositional
	// function summary (checker.InjectionReport.Summarized). Zero unless
	// the spec enables UseSummaries.
	Summarized int `json:",omitempty"`
	// StatesExplored counts symbolic states expanded by the task.
	StatesExplored int
	// Findings are the predicate matches, capped by MaxFindingsPerTask.
	Findings []checker.Finding
	// Outcomes tallies terminal states by outcome over the whole task.
	Outcomes map[symexec.Outcome]int
	// DetectorHits folds the task's per-detector coverage attribution
	// (checker.InjectionReport.DetectorHits). Nil when nothing fired.
	DetectorHits map[int64]int `json:",omitempty"`
	// Err reports an infrastructure failure (not a program failure). Errors
	// do not survive JSON transport; Failure carries the text.
	Err error `json:"-"`
	// Failure mirrors Err as text so task reports round-trip through the
	// distributed wire protocol and checkpoint journals.
	Failure string `json:",omitempty"`
	// Exec merges the task's per-injection exploration tallies (see
	// checker.InjectionReport.Exec). Deterministic, so the distributed
	// coordinator pooling shipped injection reports derives the identical
	// value.
	Exec obs.ExecStats
}

// FoundErrors reports whether the task found any predicate match.
func (r TaskReport) FoundErrors() bool { return len(r.Findings) > 0 }

// Run executes the tasks on a worker pool and returns their reports indexed
// by task ID. The spec's Injections field is ignored; each task supplies its
// own slice.
func Run(spec checker.Spec, tasks []Task, cfg Config) []TaskReport {
	return RunCtx(context.Background(), spec, tasks, cfg)
}

// RunCtx executes the tasks on a worker pool under ctx. Cancellation stops
// dispatching new tasks and interrupts running ones at their next frontier
// poll; every task that did not complete is returned marked Interrupted with
// whatever partial tallies it gathered, so a killed study still pools the
// work already done.
func RunCtx(ctx context.Context, spec checker.Spec, tasks []Task, cfg Config) []TaskReport {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers > 1 {
		// The task pool is the parallelism here; letting every task also fan
		// its injections across spec.Parallelism workers would oversubscribe
		// the cores. Intra-task parallelism still applies when the pool
		// degenerates to one task at a time — the dist-worker shape.
		spec.Parallelism = 1
	}
	budget := cfg.TaskStateBudget
	if budget <= 0 {
		budget = DefaultTaskStateBudget
	}
	// Resolve the pruning and summary contexts once so every task in the
	// study shares one analysis and one representative exploration per
	// breakpoint; without this, each task-spec copy would rebuild its own
	// memo. The merge context likewise shares one control-flow analysis.
	spec.EnsurePrune()
	spec.EnsureSummaries()
	spec.EnsureMerge()

	// Pool utilization and decomposition-progress gauges for -metrics-addr
	// scrapes and the -progress ETA. Gauges use deltas, not Set, so nested
	// pools (a dist worker running its own cluster sweep) stay additive.
	reg := obs.Default()
	poolWorkers := reg.Gauge(obs.MWorkers)
	busyWorkers := reg.Gauge(obs.MBusyWorkers)
	tasksTotal := reg.Gauge(obs.MTasksTotal)
	tasksDone := reg.Gauge(obs.MTasksDone)
	taskSeconds := reg.Histogram(obs.MTaskSeconds, nil)
	poolWorkers.Add(int64(workers))
	tasksTotal.Add(int64(len(tasks)))
	var doneCount atomic.Int64
	defer func() {
		poolWorkers.Add(-int64(workers))
		tasksTotal.Add(-int64(len(tasks)))
		tasksDone.Add(-doneCount.Load()) // retire this study's contribution
	}()

	reports := make([]TaskReport, len(tasks))
	started := make([]bool, len(tasks))
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				busyWorkers.Add(1)
				start := time.Now()
				reports[idx] = runTask(ctx, spec, tasks[idx], budget, cfg.MaxFindingsPerTask)
				taskSeconds.Observe(time.Since(start).Seconds())
				busyWorkers.Add(-1)
				tasksDone.Add(1)
				doneCount.Add(1)
			}
		}()
	}
dispatch:
	for i := range tasks {
		select {
		case next <- i:
			started[i] = true
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	for i := range tasks {
		if !started[i] {
			reports[i] = TaskReport{
				TaskID:      tasks[i].ID,
				Interrupted: true,
				Outcomes:    make(map[symexec.Outcome]int),
			}
		}
	}
	return reports
}

func runTask(ctx context.Context, spec checker.Spec, task Task, budget, maxFindings int) TaskReport {
	rep, _ := RunTaskCtx(ctx, spec, task, budget, maxFindings)
	return rep
}

// RunTaskCtx executes one task: each injection is explored through
// checker.RunInjectionCtx under the task's shared state budget and finding
// cap, with the checker's per-injection timeout and panic isolation intact.
// It returns the task report together with the per-injection reports the
// sweep produced, in execution order — the serializable task result the
// distributed harness (internal/dist) ships from worker to coordinator. The
// report always satisfies rep == PoolReports(task, irs, maxFindings) plus the
// entry-interruption and infrastructure-error marks only the executing side
// can observe, so pooling the shipped reports remotely reconstructs the
// identical TaskReport.
//
// When spec.Parallelism allows more than one worker, the sweep runs
// speculatively in parallel and replays the shared-budget accounting
// sequentially (see runTaskParallel); the returned report and reports are
// identical to the sequential sweep's for everything except
// wall-clock-dependent outcomes (an expired PerInjectionTimeout).
func RunTaskCtx(ctx context.Context, spec checker.Spec, task Task, budget, maxFindings int) (TaskReport, []checker.InjectionReport) {
	if budget <= 0 {
		budget = DefaultTaskStateBudget
	}
	// Share one pruning/summary context across this task's injections (a
	// caller that installed spec.Prune or spec.Summaries — RunCtx, a dist
	// worker — shares it wider), and likewise the merge context.
	spec.EnsurePrune()
	spec.EnsureSummaries()
	spec.EnsureMerge()
	if workers := taskPoolSize(spec.Parallelism, len(task.Injections)); workers > 1 {
		return runTaskParallel(ctx, spec, task, budget, maxFindings, workers)
	}
	var (
		irs         []checker.InjectionReport
		remaining   = budget
		findings    = 0
		interrupted = false
		taskErr     error
	)
	for _, inj := range task.Injections {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		if remaining <= 0 {
			break // budget exhausted before sweeping everything
		}
		injSpec := spec
		injSpec.StateBudget = remaining
		if maxFindings > 0 {
			injSpec.MaxFindings = maxFindings - findings
		}
		ir, err := checker.RunInjectionCtx(ctx, injSpec, inj)
		if err != nil {
			taskErr = err
			break
		}
		irs = append(irs, ir)
		remaining -= ir.StatesExplored
		findings += len(ir.Findings)
		if ir.Panicked {
			// The checker isolated a panic inside this injection; keep
			// sweeping the task's remaining injections.
			continue
		}
		if ir.Interrupted || ir.BudgetExhausted {
			break
		}
		if maxFindings > 0 && findings >= maxFindings {
			break
		}
	}
	rep := PoolReports(task, irs, maxFindings)
	if interrupted {
		rep.Interrupted = true
	}
	if taskErr != nil {
		rep.Err = taskErr
		rep.Failure = taskErr.Error()
	}
	return rep, irs
}

// taskPoolSize resolves checker.Spec.Parallelism against a task's injection
// count: 0 means GOMAXPROCS, and the pool never exceeds the work.
func taskPoolSize(parallelism, work int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > work {
		parallelism = work
	}
	return parallelism
}

// runTaskParallel is the parallel variant of RunTaskCtx's sweep. The shared
// state budget makes injections sequentially dependent (each one's budget is
// what its predecessors left over), so the sweep speculates: every injection
// runs concurrently with the FULL task budget and finding cap, and a
// sequential replay then re-imposes the real accounting in injection order.
// Two facts make the replay exact:
//
//   - StateBudget only matters once it binds. A speculative run that explored
//     no more states than the budget remaining at its turn is byte-identical
//     to the run the sequential sweep would have made; the first injection
//     whose speculative run overran its remaining budget — the one injection
//     where the sweep actually ends — is re-run with the clipped budget.
//   - MaxFindings truncates the recorded findings but never stops
//     exploration, so clipping a speculative run's findings to the cap
//     remaining at its turn reproduces the sequential report exactly.
//
// The cost of speculation is burnt work past the budget cutoff (bounded by
// one full-budget run per worker), traded for using every core on one task —
// the dist-worker shape, where a node holds a single lease at a time.
func runTaskParallel(ctx context.Context, spec checker.Spec, task Task, budget, maxFindings, workers int) (TaskReport, []checker.InjectionReport) {
	specSpec := spec
	specSpec.StateBudget = budget
	specSpec.MaxFindings = maxFindings

	reg := obs.Default()
	poolWorkers := reg.Gauge(obs.MWorkers)
	busyWorkers := reg.Gauge(obs.MBusyWorkers)
	poolWorkers.Add(int64(workers))
	defer poolWorkers.Add(-int64(workers))

	type slot struct {
		ir      checker.InjectionReport
		err     error
		settled bool
	}
	slots := make([]slot, len(task.Injections))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				busyWorkers.Add(1)
				ir, err := checker.RunInjectionCtx(ctx, specSpec, task.Injections[i])
				slots[i] = slot{ir: ir, err: err, settled: true}
				busyWorkers.Add(-1)
			}
		}()
	}
dispatch:
	for i := range task.Injections {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	// Sequential replay: walk the speculative results in injection order,
	// mirroring the sequential sweep's loop exactly.
	var (
		irs         []checker.InjectionReport
		remaining   = budget
		findings    = 0
		interrupted = false
		taskErr     error
	)
	for i := range task.Injections {
		if !slots[i].settled {
			// Dispatch stopped before this injection started: the sequential
			// sweep's ctx check would have fired here.
			interrupted = true
			break
		}
		if remaining <= 0 {
			break
		}
		if slots[i].err != nil {
			taskErr = slots[i].err
			break
		}
		ir := slots[i].ir
		if ir.StatesExplored > remaining {
			// The shared budget cuts this injection short, so its speculative
			// full-budget run is the wrong exploration. Re-run with the
			// clipped budget — exploration is deterministic, so this yields
			// exactly the sequential sweep's budget-exhausted report, and the
			// sweep ends right after it.
			injSpec := spec
			injSpec.StateBudget = remaining
			if maxFindings > 0 {
				injSpec.MaxFindings = maxFindings - findings
			}
			rerun, err := checker.RunInjectionCtx(ctx, injSpec, task.Injections[i])
			if err != nil {
				taskErr = err
				break
			}
			ir = rerun
		} else if maxFindings > 0 {
			if left := maxFindings - findings; len(ir.Findings) > left {
				ir.Findings = ir.Findings[:left]
			}
		}
		irs = append(irs, ir)
		remaining -= ir.StatesExplored
		findings += len(ir.Findings)
		if ir.Panicked {
			continue
		}
		if ir.Interrupted || ir.BudgetExhausted {
			break
		}
		if maxFindings > 0 && findings >= maxFindings {
			break
		}
	}
	rep := PoolReports(task, irs, maxFindings)
	if interrupted {
		rep.Interrupted = true
	}
	if taskErr != nil {
		rep.Err = taskErr
		rep.Failure = taskErr.Error()
	}
	return rep, irs
}

// PoolReports folds a task's per-injection reports (in execution order) into
// its TaskReport, replaying runTask's accounting: tallies accumulate, a
// panicked injection is counted and skipped, an interrupted or
// budget-exhausted injection ends the task incomplete, and the finding cap
// counts the task completed (the paper counts finding-capped tasks as
// completed — they returned results). It is a pure function of its inputs,
// so a coordinator pooling reports posted by a remote worker derives the
// same TaskReport the worker's own RunTaskCtx did.
func PoolReports(task Task, irs []checker.InjectionReport, maxFindings int) TaskReport {
	rep := TaskReport{
		TaskID:   task.ID,
		Outcomes: make(map[symexec.Outcome]int),
	}
	for _, ir := range irs {
		rep.StatesExplored += ir.StatesExplored
		rep.Exec.Merge(ir.Exec)
		if ir.Pruned {
			rep.Pruned++
		}
		if ir.Summarized {
			rep.Summarized++
		}
		if ir.Merged {
			rep.Merged++
		}
		for o, n := range ir.Outcomes {
			rep.Outcomes[o] += n
		}
		for id, n := range ir.DetectorHits {
			if rep.DetectorHits == nil {
				rep.DetectorHits = make(map[int64]int)
			}
			rep.DetectorHits[id] += n
		}
		rep.Findings = append(rep.Findings, ir.Findings...)
		if ir.Panicked {
			rep.Panics++
			continue
		}
		if ir.Interrupted {
			rep.Interrupted = true
			return rep // partial tallies pooled, task marked interrupted
		}
		if ir.BudgetExhausted {
			return rep // this injection alone blew the budget: incomplete
		}
		rep.InjectionsDone++
		if maxFindings > 0 && len(rep.Findings) >= maxFindings {
			rep.Completed = true
			return rep
		}
	}
	rep.Completed = len(task.Injections) == rep.InjectionsDone
	return rep
}

// Summary pools task reports the way the paper reports its studies.
type Summary struct {
	Tasks              int
	Completed          int
	CompletedEmpty     int // completed without findings (benign or crash)
	CompletedWithFinds int
	Incomplete         int
	// Interrupted counts tasks cut short by cancellation (a subset of
	// Incomplete).
	Interrupted int
	// Panics counts isolated panicking injections across all tasks.
	Panics int
	// Pruned counts injections across all tasks that a liveness proof
	// classified benign instead of (or alongside) exploring.
	Pruned int
	// Summarized counts injections across all tasks that a compositional
	// summary proof classified benign.
	Summarized int
	// Merged counts injections across all tasks explored with
	// post-dominator state merging.
	Merged          int
	TotalStates     int
	TotalInjections int
	Findings        []checker.Finding
	Outcomes        map[symexec.Outcome]int
	// DetectorHits folds every task's per-detector coverage attribution.
	DetectorHits map[int64]int `json:",omitempty"`
	// Exec merges every task's exploration tally.
	Exec obs.ExecStats
}

// Summarize aggregates reports.
func Summarize(reports []TaskReport) Summary {
	s := Summary{Tasks: len(reports), Outcomes: make(map[symexec.Outcome]int)}
	for _, r := range reports {
		s.TotalStates += r.StatesExplored
		s.TotalInjections += r.InjectionsDone
		s.Pruned += r.Pruned
		s.Summarized += r.Summarized
		s.Merged += r.Merged
		s.Findings = append(s.Findings, r.Findings...)
		s.Panics += r.Panics
		s.Exec.Merge(r.Exec)
		for o, n := range r.Outcomes {
			s.Outcomes[o] += n
		}
		for id, n := range r.DetectorHits {
			if s.DetectorHits == nil {
				s.DetectorHits = make(map[int64]int)
			}
			s.DetectorHits[id] += n
		}
		switch {
		case r.Completed && r.FoundErrors():
			s.Completed++
			s.CompletedWithFinds++
		case r.Completed:
			s.Completed++
			s.CompletedEmpty++
		default:
			s.Incomplete++
		}
		if r.Interrupted {
			s.Interrupted++
		}
	}
	return s
}
