package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"symplfied/internal/apps/factorial"
	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/simplescalar"
	"symplfied/internal/symexec"
)

func sampleInjections(n int) []faults.Injection {
	out := make([]faults.Injection, n)
	for i := range out {
		out[i] = faults.Injection{Class: faults.ClassRegister, PC: n - 1 - i, Loc: isa.RegLoc(1)}
	}
	return out
}

func TestSplitPartitions(t *testing.T) {
	injs := sampleInjections(10)
	tasks := Split(injs, 3)
	if len(tasks) != 3 {
		t.Fatalf("%d tasks", len(tasks))
	}
	total := 0
	for i, task := range tasks {
		if task.ID != i {
			t.Errorf("task %d has ID %d", i, task.ID)
		}
		if len(task.Injections) == 0 {
			t.Errorf("task %d empty", i)
		}
		total += len(task.Injections)
		lastPC := -1
		for _, inj := range task.Injections {
			if inj.PC < lastPC {
				t.Errorf("task %d injections not PC-ordered", i)
			}
			lastPC = inj.PC
		}
	}
	if total != 10 {
		t.Errorf("partition lost injections: %d", total)
	}
}

// TestSplitBalance asserts the two balance properties the decomposition
// promises: task sizes differ by at most one injection, and breakpoint-PC
// ranges are interleaved so no task sweeps only the expensive late-program
// section. With PCs 0..29 split 4 ways, every task must hold injections from
// both the low and the high half of the program.
func TestSplitBalance(t *testing.T) {
	injs := sampleInjections(30)
	tasks := Split(injs, 4)
	if len(tasks) != 4 {
		t.Fatalf("%d tasks", len(tasks))
	}
	minSize, maxSize := len(injs), 0
	for _, task := range tasks {
		if n := len(task.Injections); n < minSize {
			minSize = n
		}
		if n := len(task.Injections); n > maxSize {
			maxSize = n
		}
		low, high := false, false
		for _, inj := range task.Injections {
			if inj.PC < 15 {
				low = true
			} else {
				high = true
			}
		}
		if !low || !high {
			t.Errorf("task %d sweeps only one half of the program (low=%v high=%v): PC range not interleaved",
				task.ID, low, high)
		}
	}
	if maxSize-minSize > 1 {
		t.Errorf("task sizes unbalanced: min %d, max %d", minSize, maxSize)
	}
}

// TestRunTaskPoolEquivalence proves the distributed harness's core identity:
// pooling the per-injection reports RunTaskCtx shipped reconstructs the
// exact TaskReport the executing side computed, for a clean sweep, a
// budget-bounded sweep, and a finding-capped sweep.
func TestRunTaskPoolEquivalence(t *testing.T) {
	spec := factorialSpec(t)
	injs := faults.RegisterInjections(spec.Program, true)
	task := Split(injs, 1)[0]
	for _, tc := range []struct {
		name             string
		budget, findings int
	}{
		{"clean", 0, 0},
		{"budget-bounded", 120, 0},
		{"finding-capped", 0, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, irs := RunTaskCtx(context.Background(), spec, task, tc.budget, tc.findings)
			pooled := PoolReports(task, irs, tc.findings)
			if rep.Completed != pooled.Completed || rep.Interrupted != pooled.Interrupted ||
				rep.InjectionsDone != pooled.InjectionsDone || rep.StatesExplored != pooled.StatesExplored ||
				rep.Panics != pooled.Panics || len(rep.Findings) != len(pooled.Findings) {
				t.Errorf("pooled report diverges:\n ran    %+v\n pooled %+v", rep, pooled)
			}
		})
	}
}

func TestSplitEdgeCases(t *testing.T) {
	if got := Split(nil, 5); len(got) != 0 {
		t.Errorf("empty split: %v", got)
	}
	if got := Split(sampleInjections(2), 10); len(got) != 2 {
		t.Errorf("more tasks than injections: %d tasks", len(got))
	}
	if got := Split(sampleInjections(4), 0); len(got) != 1 {
		t.Errorf("zero task count: %d tasks", len(got))
	}
	// Split must not reorder the caller's slice.
	injs := sampleInjections(5)
	first := injs[0].PC
	Split(injs, 2)
	if injs[0].PC != first {
		t.Error("Split mutated its input")
	}
}

func factorialSpec(t *testing.T) checker.Spec {
	t.Helper()
	prog := factorial.Plain()
	exec := symexec.DefaultOptions()
	exec.Watchdog = 400
	return checker.Spec{
		Program:   prog,
		Input:     []int64{5},
		Exec:      exec,
		Predicate: checker.OutcomeIs(symexec.OutcomeNormal),
	}
}

func TestRunCollectsAllTasks(t *testing.T) {
	spec := factorialSpec(t)
	injs := faults.RegisterInjections(spec.Program, true)
	tasks := Split(injs, 4)
	reports := Run(spec, tasks, Config{Workers: 2})
	if len(reports) != len(tasks) {
		t.Fatalf("%d reports for %d tasks", len(reports), len(tasks))
	}
	sum := Summarize(reports)
	if sum.Completed != len(tasks) {
		t.Errorf("completed %d of %d with generous budget", sum.Completed, len(tasks))
	}
	if sum.TotalInjections != len(injs) {
		t.Errorf("injections done %d, want %d", sum.TotalInjections, len(injs))
	}
	if len(sum.Findings) == 0 {
		t.Error("no findings pooled")
	}
}

func TestRunBudgetMarksIncomplete(t *testing.T) {
	spec := factorialSpec(t)
	injs := faults.RegisterInjections(spec.Program, true)
	tasks := Split(injs, 1)
	reports := Run(spec, tasks, Config{TaskStateBudget: 50})
	if len(reports) != 1 {
		t.Fatal("missing report")
	}
	if reports[0].Completed {
		t.Error("task completed under a 50-state budget")
	}
	sum := Summarize(reports)
	if sum.Incomplete != 1 {
		t.Errorf("summary incomplete = %d", sum.Incomplete)
	}
}

func TestRunFindingsCapCompletesTask(t *testing.T) {
	spec := factorialSpec(t)
	injs := faults.RegisterInjections(spec.Program, true)
	tasks := Split(injs, 1)
	reports := Run(spec, tasks, Config{MaxFindingsPerTask: 2})
	if !reports[0].Completed {
		t.Error("finding-capped task not counted completed (paper semantics)")
	}
	if len(reports[0].Findings) != 2 {
		t.Errorf("findings %d, want cap 2", len(reports[0].Findings))
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	spec := factorialSpec(t)
	// An injection with an invalid register triggers an infrastructure
	// error inside the task.
	bad := []faults.Injection{{Class: faults.ClassRegister, PC: 0, Loc: isa.RegLoc(0)}}
	reports := Run(spec, []Task{{ID: 0, Injections: bad}}, Config{})
	if reports[0].Err == nil {
		t.Fatal("task error not reported")
	}
	if errors.Is(reports[0].Err, nil) {
		t.Fatal("impossible")
	}
}

func TestSummarizeBuckets(t *testing.T) {
	reports := []TaskReport{
		{TaskID: 0, Completed: true},
		{TaskID: 1, Completed: true, Findings: []checker.Finding{{}}},
		{TaskID: 2},
	}
	sum := Summarize(reports)
	if sum.Tasks != 3 || sum.Completed != 2 || sum.CompletedEmpty != 1 ||
		sum.CompletedWithFinds != 1 || sum.Incomplete != 1 {
		t.Errorf("summary %+v", sum)
	}
}

// TestRunDeterministic: the cluster harness must produce identical pooled
// results regardless of worker count (per-task isolation).
func TestRunDeterministic(t *testing.T) {
	spec := factorialSpec(t)
	injs := faults.RegisterInjections(spec.Program, true)
	tasks := Split(injs, 4)
	a := Summarize(Run(spec, tasks, Config{Workers: 1}))
	b := Summarize(Run(spec, tasks, Config{Workers: 4}))
	if a.TotalStates != b.TotalStates || len(a.Findings) != len(b.Findings) ||
		a.Completed != b.Completed {
		t.Errorf("worker count changed results: %+v vs %+v", a, b)
	}
}

// TestRunCtxPreCancelledMarksEveryTask proves a cancelled study returns all
// its tasks marked Interrupted (no work silently dropped, no hang) and the
// summary counts them.
func TestRunCtxPreCancelledMarksEveryTask(t *testing.T) {
	spec := factorialSpec(t)
	injs := faults.RegisterInjections(spec.Program, true)
	tasks := Split(injs, 4)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reports := RunCtx(ctx, spec, tasks, Config{Workers: 2})
	if len(reports) != len(tasks) {
		t.Fatalf("%d reports for %d tasks", len(reports), len(tasks))
	}
	for _, r := range reports {
		if !r.Interrupted {
			t.Errorf("task %d not marked Interrupted", r.TaskID)
		}
		if r.Err != nil {
			t.Errorf("task %d: cancellation surfaced as an error: %v", r.TaskID, r.Err)
		}
	}
	sum := Summarize(reports)
	if sum.Interrupted != len(tasks) {
		t.Errorf("summary counts %d interrupted tasks, want %d", sum.Interrupted, len(tasks))
	}
	if sum.Completed != 0 {
		t.Errorf("cancelled study claims %d completed tasks", sum.Completed)
	}
}

// TestRunCtxCancelMidStudy cancels after the first finding lands: the pooled
// summary keeps the partial work and at least one task is cut short.
func TestRunCtxCancelMidStudy(t *testing.T) {
	spec := factorialSpec(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := spec.Predicate.Match
	spec.Predicate.Match = func(s *symexec.State) bool {
		cancel()
		return base(s)
	}
	injs := faults.RegisterInjections(spec.Program, true)
	tasks := Split(injs, 4)
	sum := Summarize(RunCtx(ctx, spec, tasks, Config{Workers: 1}))
	if sum.Interrupted == 0 {
		t.Error("no task marked interrupted after a mid-study cancel")
	}
	if sum.TotalStates == 0 {
		t.Error("partial work was discarded instead of pooled")
	}
}

// TestRunIsolatesPanickingInjection proves a panic inside one injection is
// absorbed by the checker's recover boundary: the task keeps sweeping, the
// panic is counted, and no other task is affected.
func TestRunIsolatesPanickingInjection(t *testing.T) {
	spec := factorialSpec(t)
	base := spec.Predicate.Match
	var calls int32
	spec.Predicate.Match = func(s *symexec.State) bool {
		if atomic.AddInt32(&calls, 1) == 1 {
			panic("poisoned predicate")
		}
		return base(s)
	}
	injs := faults.RegisterInjections(spec.Program, true)
	tasks := Split(injs, 2)
	reports := Run(spec, tasks, Config{Workers: 1})
	sum := Summarize(reports)
	if sum.Panics != 1 {
		t.Fatalf("summary counts %d panics, want 1", sum.Panics)
	}
	if sum.TotalInjections == 0 {
		t.Error("panic stopped the sweep instead of being isolated")
	}
	for _, r := range reports {
		if r.Err != nil {
			t.Errorf("task %d: panic surfaced as an infrastructure error: %v", r.TaskID, r.Err)
		}
	}
}

// TestSplitPoints: the crossval-site split keeps the same partition contract
// as Split — complete, non-empty, PC-ordered, round-robin interleaved.
func TestSplitPoints(t *testing.T) {
	pts := make([]simplescalar.Point, 10)
	for i := range pts {
		pts[i] = simplescalar.Point{PC: 9 - i, Reg: isa.Reg(1), Dst: i%2 == 0}
	}
	tasks := SplitPoints(pts, 3)
	if len(tasks) != 3 {
		t.Fatalf("%d tasks", len(tasks))
	}
	total := 0
	for i, task := range tasks {
		if task.ID != i {
			t.Errorf("task %d has ID %d", i, task.ID)
		}
		if len(task.Points) == 0 {
			t.Errorf("task %d empty", i)
		}
		total += len(task.Points)
		lastPC := -1
		for _, pt := range task.Points {
			if pt.PC < lastPC {
				t.Errorf("task %d points not PC-ordered", i)
			}
			lastPC = pt.PC
		}
	}
	if total != len(pts) {
		t.Errorf("partition lost points: %d of %d", total, len(pts))
	}
	if got := SplitPoints(nil, 4); len(got) != 0 {
		t.Errorf("empty input produced %d tasks", len(got))
	}
	if got := SplitPoints(pts[:2], 5); len(got) != 2 {
		t.Errorf("2 points split 5 ways produced %d tasks", len(got))
	}
}
