// Package fingerprint canonicalizes the spec components that identify a
// campaign — the program text, the detector table, the input vector — into
// one byte encoding shared by every hasher in the tree. The campaign journal
// fingerprint (internal/campaign), the crossval spec fingerprint
// (internal/crossval), and the summary-cache content keys (internal/summary)
// all write these exact bytes, so a detector or program rendering change
// cannot silently make a cached summary valid under one key scheme and stale
// under another: there is only one scheme.
//
// The encoding is line-oriented: each component is rendered as
// "<tag> <canonical string>\n" through the same fmt verbs the campaign
// fingerprint has used since it was introduced, which keeps existing
// checkpoint journals resumable.
package fingerprint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"

	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

// Hasher renders canonical spec components into an underlying writer.
// New returns one backed by sha256 (for hex campaign fingerprints); NewInto
// adapts any writer, letting callers feed the identical bytes into other
// digests (the summary cache feeds a symbolic.Hash64).
type Hasher struct {
	w   io.Writer
	sum hash.Hash
}

// New returns a sha256-backed Hasher; Sum yields the hex digest.
func New() *Hasher {
	h := sha256.New()
	return &Hasher{w: h, sum: h}
}

// NewInto returns a Hasher writing the canonical bytes into w. Sum panics on
// such a Hasher — the caller owns the digest.
func NewInto(w io.Writer) *Hasher { return &Hasher{w: w} }

// Program writes the canonical program component: the full assembly listing.
func (h *Hasher) Program(p *isa.Program) {
	fmt.Fprintf(h.w, "program\n%s\n", p.String())
}

// Detectors writes one canonical line per detector in table order. A nil
// table contributes nothing, matching the historical encodings.
func (h *Hasher) Detectors(t *detector.Table) {
	if t == nil {
		return
	}
	for _, d := range t.All() {
		h.Detector(d)
	}
}

// Detector writes the canonical line for a single detector.
func (h *Hasher) Detector(d *detector.Detector) {
	fmt.Fprintf(h.w, "det %s\n", d)
}

// Input writes the canonical input-vector component.
func (h *Hasher) Input(in []int64) {
	fmt.Fprintf(h.w, "input %v\n", in)
}

// Line writes one caller-specific component line: format is rendered with
// args and a trailing newline is appended. Spec fields without a shared
// canonical form (budgets, predicates, seeds) go through here.
func (h *Hasher) Line(format string, args ...any) {
	fmt.Fprintf(h.w, format+"\n", args...)
}

// Sum returns the hex digest of everything written so far. Only valid on a
// Hasher from New.
func (h *Hasher) Sum() string {
	if h.sum == nil {
		panic("fingerprint: Sum on a Hasher without its own digest (use New)")
	}
	return hex.EncodeToString(h.sum.Sum(nil))
}
