package harden

import (
	"strings"
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/detector"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
)

// TestRewriteSplice: insertions land before their anchors, branch targets and
// labels chase the anchor's block start, and the pc map is exact.
func TestRewriteSplice(t *testing.T) {
	u := asm.MustParse("t", `
	li $1 #1
	beqi $1 #0 done
	print $1
done:	halt
`)
	plan := NewPlan()
	plan.InsertBefore(2, isa.Instr{Op: isa.OpCheck, Imm: 9})
	plan.InsertBefore(3, isa.Instr{Op: isa.OpCheck, Imm: 9})
	out, m, err := Rewrite(u.Program, plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Fatalf("rewritten length = %d, want 6", out.Len())
	}
	if m.BlockStart(2) != 2 || m.InstrPC(2) != 3 {
		t.Errorf("pc 2 mapped to block %d, instr %d", m.BlockStart(2), m.InstrPC(2))
	}
	if m.BlockStart(3) != 4 || m.InstrPC(3) != 5 {
		t.Errorf("pc 3 mapped to block %d, instr %d", m.BlockStart(3), m.InstrPC(3))
	}
	if got := out.At(1).Target; got != 4 {
		t.Errorf("branch retargeted to %d, want 4 (block start of old 3)", got)
	}
	if got := out.Labels["done"]; got != 4 {
		t.Errorf("label done = %d, want 4", got)
	}
	if out.At(2).Op != isa.OpCheck || out.At(3).Op != isa.OpPrint {
		t.Errorf("insertion order wrong: %s then %s", out.At(2).Op, out.At(3).Op)
	}
}

// TestRewriteRejectsBranchInsertion: the pass only splices straight-line
// guards; a branch would break the occurrence bookkeeping.
func TestRewriteRejectsBranchInsertion(t *testing.T) {
	u := asm.MustParse("t", "halt\n")
	plan := NewPlan()
	plan.InsertBefore(0, isa.Instr{Op: isa.OpJmp, Target: 0})
	if _, _, err := Rewrite(u.Program, plan); err == nil {
		t.Fatal("branch insertion accepted")
	}
}

// TestHardenInvariantGap: constant propagation proves the escaping values,
// the pass pins them with invariant checks, and the targeted sweep shows the
// corruption detected where it previously escaped to output.
func TestHardenInvariantGap(t *testing.T) {
	u := asm.MustParse("t", `
	li $1 #5
	add $2 $1 $1
	print $2
	halt
`)
	res, err := Harden(Spec{Program: u.Program, Detectors: u.Detectors}, Options{CrossvalPoints: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.GapsFound == 0 || res.GapsHardened == 0 {
		t.Fatalf("no gaps hardened: %+v", res)
	}
	for _, g := range res.Gaps {
		if g.Dropped == "" && g.Strategy != StrategyInvariant {
			t.Errorf("gap @%d %s hardened by %s, want invariant", g.Gap.DefPC, g.Gap.Reg, g.Strategy)
		}
	}
	if res.FaultFreeOutput != "10" {
		t.Errorf("fault-free output %q, want 10", res.FaultFreeOutput)
	}
	if res.BeforeUndetected == 0 {
		t.Fatal("seed sweep found no silent corruption; the gap was not real")
	}
	if res.AfterUndetected >= res.BeforeUndetected {
		t.Errorf("undetected %d -> %d, want a strict drop", res.BeforeUndetected, res.AfterUndetected)
	}
	if res.AfterDetected <= res.BeforeDetected {
		t.Errorf("detected %d -> %d, want a strict rise", res.BeforeDetected, res.AfterDetected)
	}
	if res.ResidualGaps >= res.GapsFound {
		t.Errorf("residual gaps %d, want < %d", res.ResidualGaps, res.GapsFound)
	}
}

// TestHardenDuplicateGap: a value with no static characterization (read from
// input) gets a shadow copy; corruption inside the window past the store is
// caught at the use.
func TestHardenDuplicateGap(t *testing.T) {
	u := asm.MustParse("t", `
	read $1
	li $2 #0
	add $3 $1 $1
	print $3
	halt
`)
	res, err := Harden(Spec{Program: u.Program, Detectors: u.Detectors, Input: []int64{21}}, Options{CrossvalPoints: -1})
	if err != nil {
		t.Fatal(err)
	}
	var dup *GapReport
	for i := range res.Gaps {
		if res.Gaps[i].Strategy == StrategyDuplicate {
			dup = &res.Gaps[i]
		}
	}
	if dup == nil {
		t.Fatalf("no duplication candidate survived: %+v", res.Gaps)
	}
	if dup.Gap.Reg != isa.Reg(1) {
		t.Errorf("duplication shadows %s, want $1", dup.Gap.Reg)
	}
	if !strings.Contains(dup.Detectors[0], "*(") {
		t.Errorf("duplication detector %q does not read a shadow cell", dup.Detectors[0])
	}
	if res.FaultFreeOutput != "42" {
		t.Errorf("fault-free output %q, want 42", res.FaultFreeOutput)
	}
	if res.AfterUndetected >= res.BeforeUndetected {
		t.Errorf("undetected %d -> %d, want a strict drop", res.BeforeUndetected, res.AfterUndetected)
	}
}

// TestHardenRangeGap: an affine loop counter guarded by a constant bound gets
// a two-sided range check (sweep skipped: the unbounded symbolic loop is
// exercised by the tcas smoke test instead).
func TestHardenRangeGap(t *testing.T) {
	u := asm.MustParse("t", `
	li $1 #0
loop:	addi $1 $1 #1
	bnei $1 #5 loop
	print $1
	halt
`)
	res, err := Harden(Spec{Program: u.Program, Detectors: u.Detectors}, Options{SkipSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	var rng *GapReport
	for i := range res.Gaps {
		if res.Gaps[i].Strategy == StrategyRange {
			rng = &res.Gaps[i]
		}
	}
	if rng == nil {
		t.Fatalf("no range candidate: %+v", res.Gaps)
	}
	if len(rng.Detectors) != 2 {
		t.Fatalf("range candidate has %d detectors, want a two-sided interval: %v", len(rng.Detectors), rng.Detectors)
	}
	for _, src := range rng.Detectors {
		if _, err := detector.Parse(src); err != nil {
			t.Errorf("synthesized %q does not parse: %v", src, err)
		}
	}
	if res.FaultFreeOutput != "5" {
		t.Errorf("fault-free output %q, want 5", res.FaultFreeOutput)
	}
}

// TestHardenGateVeto: a shadow store on one arm of a diamond leaves the
// shadow uninitialized on the other; the synthesized check fires on the
// golden run and the gate drops the candidate instead of shipping a detector
// that cries wolf.
func TestHardenGateVeto(t *testing.T) {
	u := asm.MustParse("t", `
	read $1
	beqi $1 #0 other
	read $2
	jmp join
other:	li $2 #7
join:	print $2
	halt
`)
	res, err := Harden(Spec{Program: u.Program, Detectors: u.Detectors, Input: []int64{0}}, Options{SkipSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	vetoed := false
	for _, g := range res.Gaps {
		if strings.Contains(g.Dropped, "fault-free gate") {
			vetoed = true
		}
	}
	if !vetoed {
		t.Fatalf("no gate veto recorded: %+v", res.Gaps)
	}
	if res.FaultFreeOutput != "7" {
		t.Errorf("fault-free output %q, want 7", res.FaultFreeOutput)
	}
	// The surviving program must still run golden.
	m := machine.New(res.Hardened, []int64{0}, machine.Options{Detectors: res.Detectors})
	if got := machine.RenderOutput(m.Run().Output); got != "7" {
		t.Errorf("hardened run output %q, want 7", got)
	}
}

// TestHardenPreservesSeedDetectors: pre-existing detectors keep their IDs and
// the synthesized ones get fresh ones.
func TestHardenPreservesSeedDetectors(t *testing.T) {
	u := asm.MustParse("t", `
	det(3, $1, ==, 5)
	li $1 #5
	check #3
	add $2 $1 $1
	print $2
	halt
`)
	res, err := Harden(Spec{Program: u.Program, Detectors: u.Detectors}, Options{SkipSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Detectors.Lookup(3); !ok {
		t.Error("seed detector 3 lost")
	}
	if res.Detectors.Len() <= u.Detectors.Len() {
		t.Errorf("no detectors synthesized: table %d -> %d", u.Detectors.Len(), res.Detectors.Len())
	}
}
