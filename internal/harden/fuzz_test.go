package harden

import (
	"fmt"
	"strings"
	"testing"

	"symplfied/internal/detector"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
)

// fuzzWatchdog bounds fuzz programs that loop.
const fuzzWatchdog = 10_000

// buildHardenFuzzProgram decodes a byte string into a valid program biased
// toward hardening-relevant shapes: definitions that stay live to a print or
// branch (coverage gaps), constant chains (invariant synthesis), counters
// with immediate guards (range synthesis), and input reads (duplication).
func buildHardenFuzzProgram(data []byte) *isa.Program {
	b := isa.NewBuilder("fuzz")
	n := len(data)
	if n > 32 {
		n = 32
	}
	at := func(j int) byte {
		if len(data) == 0 {
			return 0
		}
		return data[j%len(data)]
	}
	reg := func(j int) isa.Reg { return isa.Reg(1 + at(j)%4) }
	for i := 0; i < n; i++ {
		b.Label(fmt.Sprintf("L%d", i))
		imm := int64(int8(at(i*7 + 1)))
		r1, r2, r3 := reg(i*3+1), reg(i*3+2), reg(i*3+3)
		target := fmt.Sprintf("L%d", int(at(i*5+2))%(n+1))
		switch at(i) % 10 {
		case 0:
			b.Li(r1, imm)
		case 1:
			b.Add(r1, r2, r3)
		case 2:
			b.Addi(r1, r1, imm) // self-increment: range-synthesis shape
		case 3:
			b.Mult(r1, r2, r3)
		case 4:
			b.Read(r1)
		case 5, 6:
			b.Print(r1)
		case 7:
			b.Beqi(r1, imm, target)
		case 8:
			b.Bne(r1, r2, target)
		default:
			b.St(r1, int64(at(i*11+4)%16), isa.Reg(0))
		}
	}
	b.Label(fmt.Sprintf("L%d", n))
	b.Halt()
	return b.MustBuild()
}

// disarm replaces every detector with a trivially-true self-comparison of
// the same target (same table size, same IDs), so an armed and a disarmed
// run of the same hardened program differ only in what the checks compute —
// never in layout or step count.
func disarm(dets *detector.Table) *detector.Table {
	out := detector.EmptyTable()
	for _, d := range dets.All() {
		var self detector.Expr
		if d.Target.IsMem {
			self = detector.Mem(d.Target.Addr)
		} else {
			self = detector.Reg(d.Target.Reg)
		}
		nd, err := detector.New(d.ID, d.Target, isa.CmpEq, self)
		if err != nil {
			panic(err)
		}
		if err := out.Add(nd); err != nil {
			panic(err)
		}
	}
	return out
}

// FuzzSynthesizedCheckRoundTrip (satellite): on any program the hardening
// pass accepts, (1) every synthesized detector renders to det(...) syntax
// that detector.Parse reads back structurally equal, and (2) the spliced
// checks are inert on the fault-free run — the armed hardened run halts with
// the seed's output, and step-for-step identically to a disarmed run of the
// same layout.
func FuzzSynthesizedCheckRoundTrip(f *testing.F) {
	f.Add([]byte{0x00, 0x14, 0x05}, int64(3))                               // li/print chain
	f.Add([]byte{0x04, 0x00, 0x01, 0x05, 0x06}, int64(-9))                  // read + add + prints
	f.Add([]byte{0x02, 0x07, 0x05, 0x02, 0x07}, int64(1))                   // counters + guards
	f.Add([]byte{0x09, 0x0a, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05}, int64(7)) // mixed
	f.Fuzz(func(t *testing.T, data []byte, in0 int64) {
		prog := buildHardenFuzzProgram(data)
		input := []int64{in0, in0 ^ 21, in0 + 5, 2, 0, -1, 40, 8}
		res, err := Harden(Spec{Program: prog, Input: input}, Options{
			SkipSweep: true,
			Watchdog:  fuzzWatchdog,
		})
		if err != nil {
			// Programs whose golden run hangs or excepts have nothing to
			// preserve and are rejected up front; anything else is a bug.
			if strings.Contains(err.Error(), "does not halt") {
				t.Skip("fault-free run does not halt")
			}
			t.Fatal(err)
		}

		// (1) Round trip: every synthesized detector survives Parse.
		for _, d := range res.Detectors.All() {
			back, err := detector.Parse(d.String())
			if err != nil {
				t.Fatalf("synthesized %s does not parse: %v", d, err)
			}
			if !detector.Equal(d, back) {
				t.Fatalf("round trip changed %s into %s", d, back)
			}
		}

		// (2) Inertness: armed vs seed (outcome and output), armed vs
		// disarmed same-layout (outcome, output and exact step count).
		run := func(p *isa.Program, dets *detector.Table) machine.Result {
			m := machine.New(p, input, machine.Options{Watchdog: fuzzWatchdog, Detectors: dets})
			return m.Run()
		}
		seed := run(prog, nil)
		armed := run(res.Hardened, res.Detectors)
		if armed.Status != seed.Status {
			t.Fatalf("hardened status %s, seed %s", armed.Status, seed.Status)
		}
		if got, want := machine.RenderOutput(armed.Output), machine.RenderOutput(seed.Output); got != want {
			t.Fatalf("hardened output %q, seed %q", got, want)
		}
		disarmed := run(res.Hardened, disarm(res.Detectors))
		if armed.Status != disarmed.Status || armed.Steps != disarmed.Steps ||
			machine.RenderOutput(armed.Output) != machine.RenderOutput(disarmed.Output) {
			t.Fatalf("armed run (status %s, steps %d) differs from disarmed layout twin (status %s, steps %d)",
				armed.Status, armed.Steps, disarmed.Status, disarmed.Steps)
		}
	})
}
