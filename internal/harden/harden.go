// Package harden implements the detector-hardening compiler pass: it finds
// the program's undetected-escape windows (internal/analysis coverage-gap
// analysis, confirmed against internal/summary's may-taint effects),
// synthesizes CHECK detectors closing each window (constant invariants,
// affine loop-counter ranges, shadow duplication — see synth.go), splices
// them into the program (rewrite.go), and re-verifies: the fault-free run
// must be output-identical to the seed, the residual gap count must shrink,
// and a targeted symbolic sweep quantifies before/after detection coverage
// per injection site, with internal/crossval as an optional soundness
// spot-check on the hardened unit.
//
// The pass automates what SymPLFIED's authors did by hand after their tcas
// study (paper Section 6.3): read the undetected-corruption verdicts, place
// a CHECK where the corrupted value is consumed, and re-run the sweep to
// confirm the window closed.
package harden

import (
	"context"
	"fmt"
	"sort"

	"symplfied/internal/analysis"
	"symplfied/internal/crossval"
	"symplfied/internal/detector"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/summary"
)

// Spec names the unit to harden.
type Spec struct {
	Program   *isa.Program
	Detectors *detector.Table // may be nil
	Input     []int64
}

// Options tunes the pass. The zero value selects sensible defaults.
type Options struct {
	// MaxGaps caps how many coverage gaps are targeted, largest window
	// first; 0 targets all of them.
	MaxGaps int
	// StateBudget bounds states per injection in the verification sweeps
	// (0 = checker.DefaultStateBudget); Watchdog bounds the per-path
	// instruction count in the fault-free gate runs, the sweeps and the
	// crossval trials (0 = the engines' defaults).
	StateBudget int
	Watchdog    int
	// ShadowBase overrides the first shadow cell address (0 = ShadowBase).
	ShadowBase int64
	// SkipSweep skips the before/after symbolic sweeps (and crossval):
	// analyze, synthesize, rewrite and gate only.
	SkipSweep bool
	// CrossvalPoints caps the soundness spot-check on the hardened unit
	// (0 = DefaultCrossvalPoints; negative disables crossval).
	CrossvalPoints int
	// CrossvalSeed seeds the spot-check's value sampling (0 = 2008).
	CrossvalSeed int64
	// Parallelism sizes the sweep worker pools (0 = GOMAXPROCS).
	Parallelism int
}

// DefaultCrossvalPoints is the spot-check sample size when Options does not
// say otherwise: large enough to exercise several hardened sites, small
// enough to keep -harden interactive.
const DefaultCrossvalPoints = 12

// GapReport records what happened to one coverage gap.
type GapReport struct {
	Gap      analysis.Gap
	Strategy Strategy `json:",omitempty"`
	// Detectors holds the synthesized det(...) sources (round-trippable
	// through detector.Parse).
	Detectors []string `json:",omitempty"`
	// Dropped explains why the gap went unprotected ("" when hardened):
	// "no applicable strategy", "summary-benign", "over gap budget", or a
	// fault-free gate veto.
	Dropped string `json:",omitempty"`
}

// SiteCoverage compares one injection site before and after hardening.
type SiteCoverage struct {
	// PC and Reg name the seed-program site; HardenedPC its image in the
	// hardened program (the start of the inserted block, so the corruption
	// manifests before the guards run).
	PC         int
	Reg        isa.Reg
	HardenedPC int
	// Activated reports whether the fault-free run reaches the site.
	Activated bool
	Before    Tally
	After     Tally
}

// Tally summarizes one site's sweep: Detected counts terminals a CHECK
// caught, Undetected the silent-data-corruption terminals (halted normally
// with wrong output) — the paper's "errors that evade detection".
type Tally struct {
	Detected   int
	Undetected int
}

// Result is the pass report.
type Result struct {
	// Hardened is the rewritten program and Detectors the combined table
	// (seed detectors plus synthesized ones).
	Hardened  *isa.Program    `json:"-"`
	Detectors *detector.Table `json:"-"`
	// PCMap relates seed pcs to hardened pcs.
	PCMap *PCMap `json:"-"`

	Program      string
	GapsFound    int
	GapsTargeted int
	GapsHardened int
	Gaps         []GapReport
	// Synthesized counts detectors added; Inserted instructions spliced in.
	Synthesized int
	Inserted    int
	// FaultFreeOutput is the (identical) rendered output of seed and
	// hardened fault-free runs; FaultFreeSteps the hardened step count.
	FaultFreeOutput string
	FaultFreeSteps  int
	// ResidualGaps counts coverage gaps remaining in the hardened unit
	// (GapsFound minus the windows the new checks closed, plus any the
	// rewrite could not target).
	ResidualGaps int

	// Sites details the targeted-site sweeps (empty under SkipSweep);
	// the totals aggregate them.
	Sites            []SiteCoverage `json:",omitempty"`
	BeforeDetected   int
	BeforeUndetected int
	AfterDetected    int
	AfterUndetected  int

	// Crossval is the hardened-unit soundness spot-check (nil when
	// disabled or skipped).
	Crossval *crossval.Report `json:",omitempty"`
}

// Harden runs the pass with a background context.
func Harden(spec Spec, opt Options) (*Result, error) {
	return HardenCtx(context.Background(), spec, opt)
}

// HardenCtx runs the full pass: analyze, synthesize, rewrite, gate, re-lint,
// sweep, spot-check.
func HardenCtx(ctx context.Context, spec Spec, opt Options) (*Result, error) {
	if spec.Program == nil {
		return nil, fmt.Errorf("harden: nil program")
	}
	dets := spec.Detectors
	if dets == nil {
		dets = detector.EmptyTable()
	}

	a := analysis.Analyze(spec.Program, dets)
	gaps := a.Gaps()
	res := &Result{Program: spec.Program.Name, GapsFound: len(gaps)}

	// Rank gaps by exposure (window size) and confirm each against the
	// compositional summaries: a gap whose every window site is provably
	// benign needs no detector (the escape walk over-approximates; the
	// summary taint is the finer judge).
	sums := summary.Build(spec.Program, dets, nil)
	ranked := make([]analysis.Gap, 0, len(gaps))
	for _, g := range gaps {
		benign := true
		for _, w := range g.Window {
			if eff, ok := sums.EffectOf(w, g.Reg); !ok || !eff.Benign() {
				benign = false
				break
			}
		}
		if benign {
			res.Gaps = append(res.Gaps, GapReport{Gap: g, Dropped: "summary-benign"})
			continue
		}
		ranked = append(ranked, g)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		gi, gj := ranked[i], ranked[j]
		if len(gi.Window) != len(gj.Window) {
			return len(gi.Window) > len(gj.Window)
		}
		if gi.DefPC != gj.DefPC {
			return gi.DefPC < gj.DefPC
		}
		return gi.Reg < gj.Reg
	})
	if opt.MaxGaps > 0 && len(ranked) > opt.MaxGaps {
		for _, g := range ranked[opt.MaxGaps:] {
			res.Gaps = append(res.Gaps, GapReport{Gap: g, Dropped: "over gap budget"})
		}
		ranked = ranked[:opt.MaxGaps]
	}
	res.GapsTargeted = len(ranked)

	// Synthesize one candidate per targeted gap on a private copy of the
	// detector table.
	combined := detector.EmptyTable()
	for _, d := range dets.All() {
		if err := combined.Add(d); err != nil {
			return nil, fmt.Errorf("harden: %w", err)
		}
	}
	shadowBase := opt.ShadowBase
	if shadowBase == 0 {
		shadowBase = ShadowBase
	}
	syn := &synthesizer{a: a, dets: combined, shadow: shadowBase}
	var cands []Candidate
	for _, g := range ranked {
		c, ok := syn.synthesize(g)
		if !ok {
			res.Gaps = append(res.Gaps, GapReport{Gap: g, Dropped: "no applicable strategy"})
			continue
		}
		cands = append(cands, c)
	}

	// Rewrite and gate, dropping candidates the fault-free run vetoes.
	hardened, pcmap, kept, ffOut, ffSteps, err := gateCandidates(ctx, spec, combined, cands, opt)
	if err != nil {
		return nil, err
	}
	// The final table holds only detectors the hardened program references:
	// seed detectors plus the surviving candidates' (vetoed candidates left
	// theirs in the scratch table).
	final := detector.EmptyTable()
	for _, d := range dets.All() {
		if err := final.Add(d); err != nil {
			return nil, fmt.Errorf("harden: %w", err)
		}
	}
	for _, c := range kept {
		for _, d := range c.Detectors {
			if err := final.Add(d); err != nil {
				return nil, fmt.Errorf("harden: %w", err)
			}
		}
	}
	res.Hardened, res.Detectors, res.PCMap = hardened, final, pcmap
	res.FaultFreeOutput, res.FaultFreeSteps = ffOut, ffSteps
	for _, c := range cands {
		gr := GapReport{Gap: c.Gap, Strategy: c.Strategy}
		for _, d := range c.Detectors {
			gr.Detectors = append(gr.Detectors, d.String())
		}
		if c.dropped != "" {
			gr.Dropped, gr.Strategy, gr.Detectors = c.dropped, "", nil
		} else {
			res.GapsHardened++
			res.Synthesized += len(c.Detectors)
		}
		res.Gaps = append(res.Gaps, gr)
	}
	sort.SliceStable(res.Gaps, func(i, j int) bool {
		gi, gj := res.Gaps[i].Gap, res.Gaps[j].Gap
		if gi.DefPC != gj.DefPC {
			return gi.DefPC < gj.DefPC
		}
		return gi.Reg < gj.Reg
	})
	res.Inserted = hardened.Len() - spec.Program.Len()

	// Re-lint: the hardened unit's own coverage-gap analysis.
	res.ResidualGaps = len(analysis.Analyze(hardened, combined).Gaps())

	if opt.SkipSweep {
		return res, nil
	}
	if err := sweepCoverage(ctx, spec, res, kept, opt); err != nil {
		return nil, err
	}
	if opt.CrossvalPoints >= 0 {
		if err := spotCheck(ctx, res, spec.Input, opt); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// targetSites enumerates the deduplicated injection sites the kept
// candidates' windows expose, in (pc, reg) order.
func targetSites(kept []Candidate) []faults.Injection {
	seen := make(map[isa.Loc]map[int]bool)
	var out []faults.Injection
	for _, c := range kept {
		loc := isa.RegLoc(c.Gap.Reg)
		if seen[loc] == nil {
			seen[loc] = make(map[int]bool)
		}
		for _, w := range c.Gap.Window {
			if seen[loc][w] {
				continue
			}
			seen[loc][w] = true
			out = append(out, faults.Injection{Class: faults.ClassRegister, PC: w, Occurrence: 1, Loc: loc})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].Loc.Reg < out[j].Loc.Reg
	})
	return out
}
