package harden

import (
	"fmt"
	"sort"

	"symplfied/internal/isa"
)

// Plan is a set of instruction sequences to splice into a program: for each
// original pc, the instructions to execute immediately before it. The
// hardening pass only ever inserts straight-line guards (shadow stores and
// CHECK instructions), so inserted instructions must not branch — that keeps
// the pc mapping total and the occurrence counts of every original
// instruction unchanged (each inserted block runs exactly once per execution
// of its anchor instruction).
type Plan struct {
	before map[int][]isa.Instr
}

// NewPlan returns an empty insertion plan.
func NewPlan() *Plan {
	return &Plan{before: make(map[int][]isa.Instr)}
}

// InsertBefore schedules instrs to run immediately before original pc, after
// anything already scheduled there.
func (p *Plan) InsertBefore(pc int, instrs ...isa.Instr) {
	p.before[pc] = append(p.before[pc], instrs...)
}

// Len counts scheduled instructions.
func (p *Plan) Len() int {
	n := 0
	for _, ins := range p.before {
		n += len(ins)
	}
	return n
}

// PCMap relates original pcs to pcs in the rewritten program.
type PCMap struct {
	blockStart []int // old pc -> new pc of the first inserted instruction
	instrPC    []int // old pc -> new pc of the original instruction
}

// BlockStart returns the new pc where old's inserted block begins (equal to
// InstrPC when nothing was inserted there). Injections that targeted old map
// here: the corruption manifests before the inserted guards run, so a guard
// that reads the corrupted location sees it.
func (m *PCMap) BlockStart(old int) int { return m.blockStart[old] }

// InstrPC returns the new pc of the original instruction at old.
func (m *PCMap) InstrPC(old int) int { return m.instrPC[old] }

// Rewrite splices the plan into prog, producing a new program plus the pc
// mapping. Branch targets and labels are remapped to the start of the target's
// inserted block, so guards at merge points protect every incoming edge.
// Inserted instructions must not be branches.
func Rewrite(prog *isa.Program, plan *Plan) (*isa.Program, *PCMap, error) {
	n := prog.Len()
	for pc, ins := range plan.before {
		if pc < 0 || pc >= n {
			return nil, nil, fmt.Errorf("rewrite %q: insertion anchored at invalid pc %d", prog.Name, pc)
		}
		for _, in := range ins {
			if in.IsBranch() {
				return nil, nil, fmt.Errorf("rewrite %q: inserted instruction at pc %d is a branch (%s)", prog.Name, pc, in.Op)
			}
		}
	}

	m := &PCMap{blockStart: make([]int, n+1), instrPC: make([]int, n)}
	out := make([]isa.Instr, 0, n+plan.Len())
	for pc := 0; pc < n; pc++ {
		m.blockStart[pc] = len(out)
		out = append(out, plan.before[pc]...)
		m.instrPC[pc] = len(out)
		out = append(out, prog.At(pc))
	}
	m.blockStart[n] = len(out) // end-of-code labels survive

	// Remap resolved branch targets. Labels are remapped consistently below,
	// so NewProgram's label re-resolution lands on the same pc.
	for i := range out {
		if out[i].IsBranch() {
			out[i].Target = m.blockStart[out[i].Target]
		}
	}
	labels := make(map[string]int, len(prog.Labels))
	for l, idx := range prog.Labels {
		labels[l] = m.blockStart[idx]
	}
	hardened, err := isa.NewProgram(prog.Name, out, labels)
	if err != nil {
		return nil, nil, fmt.Errorf("rewrite %q: %w", prog.Name, err)
	}
	return hardened, m, nil
}

// MapInjectionPCs returns the new-program pcs of old, sorted ascending,
// mapping each to the start of its inserted block (see PCMap.BlockStart).
func (m *PCMap) MapInjectionPCs(old []int) []int {
	out := make([]int, len(old))
	for i, pc := range old {
		out[i] = m.blockStart[pc]
	}
	sort.Ints(out)
	return out
}
