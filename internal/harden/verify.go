package harden

import (
	"context"
	"fmt"

	"symplfied/internal/checker"
	"symplfied/internal/crossval"
	"symplfied/internal/detector"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

// gateCandidates rewrites the program with the live candidates and verifies
// the fault-free run is unchanged: it must halt with the seed's exact
// output. A synthesized detector firing fault-free is a refuted invariant
// (the static claim was too strong — an unmodeled producer, an uninitialized
// shadow on a path the analysis assumed dominated); the gate drops that
// candidate and retries, so every surviving check is empirically silent on
// the golden run. Modifies cands in place (dropped markers) and returns the
// surviving set.
func gateCandidates(ctx context.Context, spec Spec, dets *detector.Table, cands []Candidate, opt Options) (
	hardened *isa.Program, pcmap *PCMap, kept []Candidate, ffOut string, ffSteps int, err error) {

	watchdog := opt.Watchdog
	if watchdog <= 0 {
		watchdog = machine.DefaultWatchdog
	}
	run := func(p *isa.Program) machine.Result {
		m := machine.New(p, spec.Input, machine.Options{Watchdog: watchdog, Detectors: dets})
		return m.RunCtx(ctx)
	}

	seed := run(spec.Program)
	if seed.Status != machine.StatusHalted {
		return nil, nil, nil, "", 0, fmt.Errorf("harden %q: fault-free run does not halt (%s); nothing to preserve", spec.Program.Name, seed.Status)
	}
	ffOut = machine.RenderOutput(seed.Output)

	// Each retry drops at least one candidate, so len(cands)+1 rounds
	// suffice.
	for round := 0; round <= len(cands); round++ {
		plan := NewPlan()
		kept = kept[:0]
		for i := range cands {
			if cands[i].dropped == "" {
				cands[i].plan(plan)
				kept = append(kept, cands[i])
			}
		}
		hardened, pcmap, err = Rewrite(spec.Program, plan)
		if err != nil {
			return nil, nil, nil, "", 0, err
		}
		res := run(hardened)
		if res.Status == machine.StatusHalted && machine.RenderOutput(res.Output) == ffOut {
			return hardened, pcmap, kept, ffOut, res.Steps, nil
		}
		if res.Exception == nil || res.Exception.Detector == 0 {
			return nil, nil, nil, "", 0, fmt.Errorf("harden %q: hardened fault-free run diverged without a firing detector (status %s)",
				spec.Program.Name, res.Status)
		}
		if !dropOwner(cands, res.Exception.Detector) {
			return nil, nil, nil, "", 0, fmt.Errorf("harden %q: pre-existing detector %d fired only on the hardened fault-free run",
				spec.Program.Name, res.Exception.Detector)
		}
	}
	return nil, nil, nil, "", 0, fmt.Errorf("harden %q: fault-free gate did not converge", spec.Program.Name)
}

// dropOwner vetoes the live candidate owning detector id.
func dropOwner(cands []Candidate, id int64) bool {
	for i := range cands {
		if cands[i].dropped != "" {
			continue
		}
		for _, d := range cands[i].Detectors {
			if d.ID == id {
				cands[i].dropped = fmt.Sprintf("fault-free gate: detector %d fired on the golden run", id)
				return true
			}
		}
	}
	return false
}

// sweepCoverage runs the targeted symbolic sweeps: the same injection sites
// (first dynamic occurrence, mapped through the pc map on the hardened side)
// explored on the seed and hardened units, tallying detected terminals
// against silent-data-corruption terminals per site.
func sweepCoverage(ctx context.Context, spec Spec, res *Result, kept []Candidate, opt Options) error {
	sites := targetSites(kept)
	if len(sites) == 0 {
		return nil
	}
	seedDets := spec.Detectors
	if seedDets == nil {
		seedDets = detector.EmptyTable()
	}
	exec := symexec.DefaultOptions()
	if opt.Watchdog > 0 {
		exec.Watchdog = opt.Watchdog
	}
	base := checker.Spec{
		Input:         spec.Input,
		Exec:          exec,
		Predicate:     checker.IncorrectOutput(res.FaultFreeOutput),
		StateBudget:   opt.StateBudget,
		DiscardStates: true,
		Parallelism:   opt.Parallelism,
	}

	before := base
	before.Program, before.Detectors, before.Injections = spec.Program, seedDets, sites
	beforeRep, err := checker.RunCtx(ctx, before)
	if err != nil {
		return fmt.Errorf("harden %q: seed sweep: %w", spec.Program.Name, err)
	}

	after := base
	after.Program, after.Detectors = res.Hardened, res.Detectors
	after.Injections = append(after.Injections[:0:0], sites...)
	for i := range after.Injections {
		after.Injections[i].PC = res.PCMap.BlockStart(after.Injections[i].PC)
	}
	afterRep, err := checker.RunCtx(ctx, after)
	if err != nil {
		return fmt.Errorf("harden %q: hardened sweep: %w", spec.Program.Name, err)
	}

	for i, inj := range sites {
		b, a := beforeRep.PerInjection[i], afterRep.PerInjection[i]
		sc := SiteCoverage{
			PC: inj.PC, Reg: inj.Loc.Reg,
			HardenedPC: after.Injections[i].PC,
			Activated:  b.Activated,
			Before:     tallyOf(b),
			After:      tallyOf(a),
		}
		res.Sites = append(res.Sites, sc)
		res.BeforeDetected += sc.Before.Detected
		res.BeforeUndetected += sc.Before.Undetected
		res.AfterDetected += sc.After.Detected
		res.AfterUndetected += sc.After.Undetected
	}
	return nil
}

// tallyOf projects one injection report: Detected terminals versus findings
// (terminals that halted normally with non-golden output).
func tallyOf(ir checker.InjectionReport) Tally {
	return Tally{
		Detected:   ir.Outcomes[symexec.OutcomeDetected],
		Undetected: len(ir.Findings),
	}
}

// spotCheck cross-validates the hardened unit against the concrete reference
// machine on a sampled point set and fails on any conclusive symbolic miss:
// the hardening rewrite must not have broken the exhaustiveness guarantee
// the coverage numbers rest on.
func spotCheck(ctx context.Context, res *Result, input []int64, opt Options) error {
	points := opt.CrossvalPoints
	if points == 0 {
		points = DefaultCrossvalPoints
	}
	seed := opt.CrossvalSeed
	if seed == 0 {
		seed = 2008
	}
	rep, err := crossval.RunCtx(ctx, crossval.Spec{
		Program:     res.Hardened,
		Detectors:   res.Detectors,
		Input:       input,
		Watchdog:    opt.Watchdog,
		Seed:        seed,
		StateBudget: opt.StateBudget,
		MaxPoints:   points,
	}, crossval.Config{Parallelism: opt.Parallelism})
	if err != nil {
		return fmt.Errorf("harden %q: crossval: %w", res.Program, err)
	}
	res.Crossval = rep
	if !rep.Sound() {
		return fmt.Errorf("harden %q: crossval refuted soundness on the hardened unit: %s", res.Program, rep.Summary())
	}
	return nil
}
