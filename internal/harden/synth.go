package harden

import (
	"fmt"

	"symplfied/internal/analysis"
	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

// Strategy names a CHECK synthesis tactic, in the order the synthesizer tries
// them (strongest claim first).
type Strategy string

// Synthesis strategies. Invariant pins a value constant-propagation proved;
// Range bounds an affine loop counter by its initializer and guard; Duplicate
// shadows the live value through its window and compares at the read.
const (
	StrategyInvariant Strategy = "invariant"
	StrategyRange     Strategy = "range"
	StrategyDuplicate Strategy = "duplicate"
)

// Candidate is one synthesized protection for a coverage gap: the detectors
// to register plus the insertion plan closing the gap's use frontier.
type Candidate struct {
	Gap      analysis.Gap
	Strategy Strategy
	// Detectors are the synthesized checks (two for a range candidate, one
	// otherwise), already assigned final IDs.
	Detectors []*detector.Detector
	// CheckPCs are the original pcs (the gap's use frontier) that receive a
	// CHECK per detector, inserted before the read.
	CheckPCs []int
	// StorePC is the original pc receiving the shadow store (duplication
	// only; -1 otherwise), and ShadowAddr the shadow cell.
	StorePC    int
	ShadowAddr int64

	// dropped records a fault-free gate veto ("" while the candidate is
	// live); see gateCandidates.
	dropped string
}

// synthesizer assigns detector IDs and shadow cells while building
// candidates.
type synthesizer struct {
	a      *analysis.Analysis
	dets   *detector.Table // combined table; synthesized detectors are added here
	shadow int64           // next shadow cell
}

// ShadowBase is the first memory address the duplication strategy uses for
// shadow copies, far above the data any bundled program touches. Programs
// that legitimately address beyond it should set Options.ShadowBase.
const ShadowBase = int64(1) << 20

// synthesize builds the best candidate for gap, trying strategies in order,
// or reports ok=false when no strategy applies.
func (s *synthesizer) synthesize(gap analysis.Gap) (Candidate, bool) {
	if c, ok := s.invariant(gap); ok {
		return c, true
	}
	if c, ok := s.affineRange(gap); ok {
		return c, true
	}
	if c, ok := s.duplicate(gap); ok {
		return c, true
	}
	return Candidate{}, false
}

// newDet builds and registers a detector, panicking on grammar violations
// (the synthesizer only emits the Parse-able subset by construction).
func (s *synthesizer) newDet(target isa.Loc, cmp isa.Cmp, expr detector.Expr) *detector.Detector {
	d, err := detector.New(s.dets.NextID(), target, cmp, expr)
	if err == nil {
		err = s.dets.Add(d)
	}
	if err != nil {
		panic(fmt.Sprintf("harden: synthesized detector outside grammar: %v", err))
	}
	return d
}

// invariant applies when constant propagation proves the register holds one
// known value at every use in the window: det(id, $r, ==, k). Catches any
// corruption of the value, including corruption that manifests immediately
// before the check itself.
func (s *synthesizer) invariant(gap analysis.Gap) (Candidate, bool) {
	consts := s.a.Consts()
	val, ok := consts.At(gap.UsePCs[0], gap.Reg)
	if !ok {
		return Candidate{}, false
	}
	for _, u := range gap.UsePCs[1:] {
		v, vok := consts.At(u, gap.Reg)
		if !vok || v != val {
			return Candidate{}, false
		}
	}
	d := s.newDet(isa.RegLoc(gap.Reg), isa.CmpEq, detector.Num(val))
	return Candidate{
		Gap: gap, Strategy: StrategyInvariant,
		Detectors: []*detector.Detector{d},
		CheckPCs:  gap.UsePCs, StorePC: -1,
	}, true
}

// affineRange applies to self-incrementing counters: the definition is
// `addi $r $r s`, the window contains a branch comparing $r against a known
// bound B, and the program initializes $r only through `li $r I`
// instructions. Fault-free, every value of $r in the window then lies in
// [min(I*, B) - |s|, max(I*, B) + |s|]; two one-sided detectors pin the
// interval. Wild corruptions (the overwhelming mass of a uniform word flip)
// land far outside it.
func (s *synthesizer) affineRange(gap analysis.Gap) (Candidate, bool) {
	prog := s.a.Prog
	def := prog.At(gap.DefPC)
	if def.Op != isa.OpAddi || def.Rd != gap.Reg || def.Rs != gap.Reg || def.Imm == 0 {
		return Candidate{}, false
	}
	step := def.Imm

	// The guard: a comparison of $r against a constant inside the window.
	bound, haveBound := int64(0), false
	for _, w := range gap.Window {
		in := prog.At(w)
		switch in.Op {
		case isa.OpBeqi, isa.OpBnei:
			if in.Rs == gap.Reg {
				bound, haveBound = in.Imm, true
			}
		case isa.OpBeq, isa.OpBne:
			other := in.Rt
			if other == gap.Reg {
				other = in.Rs
			}
			if (in.Rs == gap.Reg || in.Rt == gap.Reg) && other != gap.Reg {
				if v, ok := s.a.Consts().At(w, other); ok {
					bound, haveBound = v, true
				}
			}
		}
		if haveBound {
			break
		}
	}
	if !haveBound {
		return Candidate{}, false
	}

	// Every other write to $r must be a known initializer; their values and
	// the bound span the counter's fault-free orbit. The machine boots
	// registers to zero, so 0 is always a reachable initial value.
	lo, hi := int64(0), int64(0)
	widen := func(v int64) {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for pc := 0; pc < prog.Len(); pc++ {
		if pc == gap.DefPC || !s.a.Defs(pc).Has(gap.Reg) {
			continue
		}
		in := prog.At(pc)
		if in.Op != isa.OpLi {
			return Candidate{}, false // an untracked producer: no sound bound
		}
		widen(in.Imm)
	}
	widen(bound)
	if step > 0 {
		hi += step
		lo -= step
	} else {
		lo += step
		hi -= step
	}

	dLo := s.newDet(isa.RegLoc(gap.Reg), isa.CmpGe, detector.Num(lo))
	dHi := s.newDet(isa.RegLoc(gap.Reg), isa.CmpLe, detector.Num(hi))
	return Candidate{
		Gap: gap, Strategy: StrategyRange,
		Detectors: []*detector.Detector{dLo, dHi},
		CheckPCs:  gap.UsePCs, StorePC: -1,
	}, true
}

// duplicate shadows the defined value into a dedicated memory cell right
// after the definition and compares the register against its shadow at every
// use: det(id, $r, ==, *(shadow)). It needs no static knowledge of the value,
// but the shadow store must itself execute before the checks, so it only
// applies when the window extends past the definition's successor — a
// corruption manifesting at the store site itself writes the corrupted value
// to both copies and is indistinguishable from a wrong definition.
func (s *synthesizer) duplicate(gap analysis.Gap) (Candidate, bool) {
	prog := s.a.Prog
	def := prog.At(gap.DefPC)
	// The store is anchored before DefPC+1: the definition must fall through.
	if def.IsBranch() || def.Op == isa.OpJr || gap.DefPC+1 >= prog.Len() {
		return Candidate{}, false
	}
	if len(gap.Window) < 2 {
		// The whole window is the store's own anchor site; a check there runs
		// after the shadow already captured the corruption. Nothing to gain.
		return Candidate{}, false
	}
	addr := s.shadow
	s.shadow++
	d := s.newDet(isa.RegLoc(gap.Reg), isa.CmpEq, detector.Mem(addr))
	return Candidate{
		Gap: gap, Strategy: StrategyDuplicate,
		Detectors:  []*detector.Detector{d},
		CheckPCs:   gap.UsePCs,
		StorePC:    gap.DefPC + 1,
		ShadowAddr: addr,
	}, true
}

// plan splices the candidate's guards into p: the shadow store (if any)
// before its anchor, then one CHECK per detector before each use.
func (c *Candidate) plan(p *Plan) {
	if c.StorePC >= 0 {
		p.InsertBefore(c.StorePC, isa.Instr{Op: isa.OpSt, Rt: c.Gap.Reg, Rs: isa.RegZero, Imm: c.ShadowAddr})
	}
	for _, u := range c.CheckPCs {
		for _, d := range c.Detectors {
			p.InsertBefore(u, isa.Instr{Op: isa.OpCheck, Imm: d.ID})
		}
	}
}
