// Package simplescalar reproduces the paper's concrete fault-injection
// baseline (Sections 6.1 and 6.3): the authors augmented the SimpleScalar
// simulator "with the capability to inject errors into the source and
// destination registers of all instructions, one at a time", injecting for
// each register "three extreme values in the integer range as well as three
// random values". Here the same campaign runs on the concrete machine model:
// identical fault selection policy, deterministic seeded randomness, and the
// same outcome classification (program output vs. crash vs. hang).
//
// The point of the baseline — and of Table 2 — is that random/extreme
// concrete injection fails to find outcomes that require a *specific*
// corrupted value, which SymPLFIED's symbolic enumeration finds easily.
package simplescalar

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"symplfied/internal/campaign"
	"symplfied/internal/detector"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
)

// Point is one static injection site: err is injected into Reg just before
// the first dynamic execution of the instruction at PC.
type Point struct {
	PC  int
	Reg isa.Reg
	// Dst marks destination-register sites (injected before the write, so
	// usually masked — the paper injected them anyway).
	Dst bool
}

// EnumeratePoints lists the campaign's injection sites: for every instruction
// of prog, each source and destination register (the paper's policy).
func EnumeratePoints(prog *isa.Program) []Point {
	var pts []Point
	for pc := 0; pc < prog.Len(); pc++ {
		in := prog.At(pc)
		for _, r := range in.SrcRegs() {
			pts = append(pts, Point{PC: pc, Reg: r})
		}
		for _, r := range in.DstRegs() {
			pts = append(pts, Point{PC: pc, Reg: r, Dst: true})
		}
	}
	return pts
}

// Injection is one concrete experiment: write Value into Point.Reg at the
// first dynamic occurrence of Point.PC.
type Injection struct {
	Point Point
	Value int64
}

// Classifier maps a finished run to an outcome label. Crash/hang
// classification is shared; the label for normal terminations is
// application-specific (e.g. the tcas advisory value).
type Classifier func(res machine.Result) string

// Labels shared by classifiers.
const (
	LabelCrash = "crash"
	LabelHang  = "hang"
	LabelOther = "other"
	// LabelPanic buckets runs whose interpreter (or classifier) panicked;
	// the panic is isolated per run so the campaign survives.
	LabelPanic = "panic"
)

// SingleValueClassifier labels normal runs by their single printed value
// when it is one of the allowed values, and "other" otherwise — the Table 2
// buckets for tcas (0, 1, 2, other, crash, hang).
func SingleValueClassifier(allowed ...int64) Classifier {
	ok := make(map[int64]bool, len(allowed))
	for _, v := range allowed {
		ok[v] = true
	}
	return func(res machine.Result) string {
		switch res.Status {
		case machine.StatusExcepted:
			if res.Exception != nil && res.Exception.Kind == isa.ExcTimeout {
				return LabelHang
			}
			return LabelCrash
		case machine.StatusHalted:
			vals := machine.OutputValues(res.Output)
			if len(vals) != 1 {
				return LabelOther
			}
			v, conc := vals[0].Concrete()
			if !conc || !ok[v] {
				return LabelOther
			}
			return fmt.Sprintf("%d", v)
		}
		return LabelOther
	}
}

// Config describes a campaign.
type Config struct {
	Program   *isa.Program
	Input     []int64
	Detectors *detector.Table
	Watchdog  int
	Classify  Classifier
	// Seed makes the random value choices reproducible.
	Seed int64
	// RandomPerReg is the number of random values injected per site, on top
	// of the three extremes (0, MaxInt64, MinInt64). The paper used 3 for
	// the 6253-fault campaign and scaled it up for the 41082-fault one.
	RandomPerReg int
	// MaxInjections caps the campaign size; 0 means the full cross product.
	MaxInjections int
}

// Report aggregates a campaign, Table 2 style.
type Report struct {
	Total  int
	Counts map[string]int
	// Examples holds one injection per label for inspection.
	Examples map[string]Injection
	// Interrupted is true when the campaign was cancelled before running
	// every injection; the tallies cover the completed prefix.
	Interrupted bool
	// Resumed counts injections restored from a checkpoint journal instead
	// of re-executed.
	Resumed int
}

// Percent returns the share of label in the campaign (0..100).
func (r *Report) Percent(label string) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Counts[label]) / float64(r.Total)
}

// Labels returns the observed labels, sorted.
func (r *Report) Labels() []string {
	ls := make([]string, 0, len(r.Counts))
	for l := range r.Counts {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	return ls
}

// extremes are the paper's "three extreme values in the integer range".
var extremes = []int64{0, int64(^uint64(0) >> 1), -int64(^uint64(0)>>1) - 1}

// Enumerate builds the campaign's injection list deterministically.
func Enumerate(cfg Config) []Injection {
	rng := rand.New(rand.NewSource(cfg.Seed))
	randomPer := cfg.RandomPerReg
	if randomPer <= 0 {
		randomPer = 3
	}
	pts := EnumeratePoints(cfg.Program)
	injs := make([]Injection, 0, len(pts)*(len(extremes)+randomPer))
	for _, pt := range pts {
		for _, v := range extremes {
			injs = append(injs, Injection{Point: pt, Value: v})
		}
		for i := 0; i < randomPer; i++ {
			injs = append(injs, Injection{Point: pt, Value: int64(rng.Uint64())})
		}
	}
	if cfg.MaxInjections > 0 && len(injs) > cfg.MaxInjections {
		injs = injs[:cfg.MaxInjections]
	}
	return injs
}

// PointValues returns the values injected at one site: the three extremes
// followed by randomPer seeded random values (randomPer <= 0 selects the
// paper's 3). Unlike Enumerate — whose sequential generator makes a value
// depend on every preceding site — each random value here is derived by
// hashing (seed, site, index), so the value set of a site is independent of
// which other sites a worker happens to sweep. The cross-validation harness
// depends on this: splitting a campaign across workers must not change the
// experiment at any site.
func PointValues(seed int64, pt Point, randomPer int) []int64 {
	if randomPer <= 0 {
		randomPer = 3
	}
	vals := make([]int64, 0, len(extremes)+randomPer)
	vals = append(vals, extremes...)
	for i := 0; i < randomPer; i++ {
		vals = append(vals, pointValue(seed, pt, i))
	}
	return vals
}

// pointValue derives the i-th random value of a site from a hash, keeping it
// deterministic under any sweep order or partition.
func pointValue(seed int64, pt Point, i int) int64 {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%d|%d|%v|%d", seed, pt.PC, pt.Reg, pt.Dst, i)
	return int64(binary.BigEndian.Uint64(h.Sum(nil)[:8]))
}

// RunOne executes a single concrete injection experiment.
func RunOne(cfg Config, inj Injection) machine.Result {
	return RunOneCtx(context.Background(), cfg, inj)
}

// RunOneCtx executes a single concrete injection experiment under ctx; see
// TrialCtx for the interruption and kill-on-deadline semantics of the result.
func RunOneCtx(ctx context.Context, cfg Config, inj Injection) machine.Result {
	return TrialCtx(ctx, cfg, inj).Result
}

// TraceTailLen is how many trailing program counters a trial records — the
// crash-site context carried into cross-validation mismatch reports.
const TraceTailLen = 16

// Trial is the full record of one concrete injection experiment.
type Trial struct {
	// Result is the machine-level outcome. When the trial was killed at a
	// wall-clock deadline, Result is synthesized as an ExcTimeout exception —
	// the same classification a watchdog expiry gets (Hang) — because a run
	// that outlives its deadline is indistinguishable from one that never
	// terminates.
	Result machine.Result
	// Activated reports whether the injection point was reached (the value
	// was actually written).
	Activated bool
	// TraceTail holds the last program counters executed, oldest first.
	TraceTail []int
	// Killed marks a trial stopped by a context deadline (Result synthesized
	// as a hang). Interrupted marks a trial stopped by plain cancellation;
	// its Result is the partial state and must not be tallied.
	Killed      bool
	Interrupted bool
	// Panicked marks an interpreter (or hook) panic, isolated here so one bad
	// run cannot kill a campaign.
	Panicked   bool
	PanicValue string
}

// TrialCtx executes one concrete injection experiment under ctx, recording
// activation and a trace tail, killing the run when the context's deadline
// expires (classified as a hang), and isolating panics.
func TrialCtx(ctx context.Context, cfg Config, inj Injection) (tr Trial) {
	var ring [TraceTailLen]int
	n := 0
	injected := false
	defer func() {
		if r := recover(); r != nil {
			tr.Panicked = true
			tr.PanicValue = fmt.Sprint(r)
			tr.Activated = injected
			tr.TraceTail = traceTail(ring, n)
		}
	}()
	m := machine.New(cfg.Program, cfg.Input, machine.Options{
		Watchdog:  cfg.Watchdog,
		Detectors: cfg.Detectors,
		PreStep: func(m *machine.Machine, _ int) {
			ring[n%TraceTailLen] = m.PC()
			n++
			if !injected && m.PC() == inj.Point.PC {
				m.SetReg(inj.Point.Reg, isa.Int(inj.Value))
				injected = true
			}
		},
	})
	res := m.RunCtx(ctx)
	tr.Result = res
	tr.Activated = injected
	tr.TraceTail = traceTail(ring, n)
	if res.Status == machine.StatusRunning {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			tr.Killed = true
			tr.Result = machine.Result{
				Status: machine.StatusExcepted,
				Exception: &isa.Exception{
					Kind:   isa.ExcTimeout,
					PC:     m.PC(),
					Detail: fmt.Sprintf("killed at wall-clock deadline after %d instructions", res.Steps),
				},
				Output: res.Output,
				Steps:  res.Steps,
			}
		} else {
			tr.Interrupted = true
		}
	}
	return tr
}

// traceTail linearizes the PC ring buffer, oldest first.
func traceTail(ring [TraceTailLen]int, n int) []int {
	if n == 0 {
		return nil
	}
	size := n
	if size > TraceTailLen {
		size = TraceTailLen
	}
	out := make([]int, 0, size)
	for i := n - size; i < n; i++ {
		out = append(out, ring[i%TraceTailLen])
	}
	return out
}

// Run executes the whole campaign and tallies outcomes.
func Run(cfg Config) (*Report, error) {
	return RunResilient(context.Background(), cfg, Resilience{})
}

// Resilience configures the operational hardening of a concrete campaign:
// checkpointing completed runs to a journal and resuming from one.
type Resilience struct {
	// Checkpoint is the journal file path; empty disables checkpointing.
	Checkpoint string
	// Resume skips injections the journal already records. Requires
	// Checkpoint; a missing journal file starts the campaign fresh.
	Resume bool
}

// journalKind tags journals written by the concrete runner, so symbolic and
// concrete checkpoints can never be confused.
const journalKind = "concrete"

// runRecord is the journaled outcome of one concrete injection.
type runRecord struct {
	Label string `json:"label"`
}

// fingerprint hashes the campaign identity: program text, input, fault
// selection policy and watchdog. Classifier labels are not hashed (functions
// have no canonical form); resuming with a different classifier mixes label
// vocabularies but never mixes programs or fault lists.
func fingerprint(cfg Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "program\n%s\n", cfg.Program.String())
	fmt.Fprintf(h, "input %v\n", cfg.Input)
	fmt.Fprintf(h, "watchdog %d seed %d randomPerReg %d max %d\n",
		cfg.Watchdog, cfg.Seed, cfg.RandomPerReg, cfg.MaxInjections)
	return hex.EncodeToString(h.Sum(nil))
}

// key is the journal key of a concrete injection.
func key(inj Injection) string {
	return fmt.Sprintf("@%d %s dst=%v val=%d", inj.Point.PC, inj.Point.Reg, inj.Point.Dst, inj.Value)
}

// RunResilient executes the campaign under ctx with checkpoint/resume
// support. Cancellation returns the partial tallies with Interrupted set; a
// run that panics is isolated into the LabelPanic bucket instead of killing
// the campaign.
func RunResilient(ctx context.Context, cfg Config, res Resilience) (*Report, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("simplescalar: nil program")
	}
	classify := cfg.Classify
	if classify == nil {
		return nil, fmt.Errorf("simplescalar: nil classifier")
	}
	if res.Resume && res.Checkpoint == "" {
		return nil, fmt.Errorf("simplescalar: Resume requires a Checkpoint path")
	}
	injs := Enumerate(cfg)
	fp := fingerprint(cfg)

	journaled := map[string]json.RawMessage{}
	if res.Resume {
		var err error
		journaled, err = campaign.LoadJournal(res.Checkpoint, journalKind, fp)
		if err != nil {
			return nil, err
		}
	}
	var journal *campaign.Journal
	if res.Checkpoint != "" {
		var err error
		journal, err = campaign.OpenJournal(res.Checkpoint, journalKind, fp)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	rep := &Report{
		Counts:   make(map[string]int),
		Examples: make(map[string]Injection),
	}
	tally := func(inj Injection, label string) {
		rep.Counts[label]++
		rep.Total++
		if _, seen := rep.Examples[label]; !seen {
			rep.Examples[label] = inj
		}
	}
	for _, inj := range injs {
		k := key(inj)
		if raw, ok := journaled[k]; ok {
			var rec runRecord
			if err := json.Unmarshal(raw, &rec); err == nil {
				tally(inj, rec.Label)
				rep.Resumed++
				continue
			}
		}
		if ctx.Err() != nil {
			rep.Interrupted = true
			break
		}
		label, interrupted := runOneIsolated(ctx, cfg, inj, classify)
		if interrupted {
			rep.Interrupted = true
			break
		}
		tally(inj, label)
		if journal != nil {
			if err := journal.Append(k, runRecord{Label: label}); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

// runOneIsolated executes one injection with a recover boundary, so a
// panicking interpreter run (or classifier) is one bad bucket entry, not a
// dead campaign. The trial itself polls ctx, so cancellation interrupts a
// hang mid-run instead of waiting out the watchdog — interrupted trials are
// reported as such and never tallied.
func runOneIsolated(ctx context.Context, cfg Config, inj Injection, classify Classifier) (label string, interrupted bool) {
	tr := TrialCtx(ctx, cfg, inj)
	if tr.Interrupted || tr.Killed {
		// ctx here is the campaign's context: both cancellation and an
		// expired campaign deadline mean "stop now", not "tally a hang".
		return "", true
	}
	if tr.Panicked {
		return LabelPanic, false
	}
	defer func() {
		if r := recover(); r != nil {
			label = LabelPanic
		}
	}()
	return classify(tr.Result), false
}
