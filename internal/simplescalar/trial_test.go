package simplescalar

import (
	"context"
	"reflect"
	"testing"
	"time"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
)

// loopUnit is a program that spins forever, so only the watchdog — or a
// context — can stop it.
func loopUnit(t *testing.T) *isa.Program {
	t.Helper()
	u := asm.MustParse("loop", `
top:
	addi $1 $1 1
	jmp top
`)
	return u.Program
}

// TestRunResilientCancelMidTrial is the regression test for prompt SIGINT
// handling: cancellation must interrupt a hang-heavy campaign *inside* a
// value trial, not only between injection points. The watchdog is set so
// large that waiting it out would blow the test deadline.
func TestRunResilientCancelMidTrial(t *testing.T) {
	cfg := Config{
		Program:  loopUnit(t),
		Watchdog: 500_000_000,
		Classify: SingleValueClassifier(),
		Seed:     1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		rep, err = RunResilient(ctx, cfg, Resilience{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("campaign did not stop promptly after cancellation")
	}
	if err != nil {
		t.Fatalf("RunResilient: %v", err)
	}
	if !rep.Interrupted {
		t.Errorf("report not marked interrupted: %+v", rep)
	}
}

// TestTrialKilledAtDeadline: a deadline kill synthesizes a watchdog-style
// timeout, so the standard classifiers file it as a hang.
func TestTrialKilledAtDeadline(t *testing.T) {
	cfg := Config{Program: loopUnit(t), Watchdog: 500_000_000}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	tr := TrialCtx(ctx, cfg, Injection{Point: Point{PC: 0, Reg: isa.Reg(1), Dst: true}, Value: 7})
	if !tr.Killed {
		t.Fatalf("trial not killed: %+v", tr)
	}
	if got := SingleValueClassifier()(tr.Result); got != LabelHang {
		t.Errorf("killed trial classified %q, want %q", got, LabelHang)
	}
	if !tr.Activated {
		t.Error("injection at PC 0 not marked activated")
	}
	if len(tr.TraceTail) == 0 {
		t.Error("no trace tail recorded")
	}
}

// TestTrialRecordsTraceTail: the tail holds the last PCs in execution order.
func TestTrialRecordsTraceTail(t *testing.T) {
	u := asm.MustParse("straight", `
	li $1 1
	li $2 2
	halt
`)
	tr := TrialCtx(context.Background(), Config{Program: u.Program}, Injection{Point: Point{PC: 1, Reg: isa.Reg(2), Dst: true}, Value: 9})
	if tr.Result.Status != machine.StatusHalted {
		t.Fatalf("status %v", tr.Result.Status)
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(tr.TraceTail, want) {
		t.Errorf("trace tail %v, want %v", tr.TraceTail, want)
	}
}

// TestPointValuesDeterministic: values depend only on (seed, site, index) —
// never on sweep order — and start with the three extremes.
func TestPointValuesDeterministic(t *testing.T) {
	pt := Point{PC: 3, Reg: isa.Reg(5)}
	a := PointValues(2008, pt, 3)
	b := PointValues(2008, pt, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("not deterministic: %v vs %v", a, b)
	}
	if len(a) != 6 {
		t.Fatalf("%d values, want 3 extremes + 3 random", len(a))
	}
	if a[0] != 0 || a[1] != int64(^uint64(0)>>1) || a[2] != -int64(^uint64(0)>>1)-1 {
		t.Errorf("extremes wrong: %v", a[:3])
	}
	if got := PointValues(2008, Point{PC: 3, Reg: isa.Reg(5), Dst: true}, 3); reflect.DeepEqual(a, got) {
		t.Error("src and dst sites share random values")
	}
	if got := PointValues(2009, pt, 3); reflect.DeepEqual(a, got) {
		t.Error("different seeds share random values")
	}
}
