package simplescalar

import (
	"reflect"
	"testing"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/asm"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
)

func TestEnumeratePoints(t *testing.T) {
	u := asm.MustParse("t", `
	li $1 5
	add $2 $1 $1
	st $2 10($0)
	halt
`)
	pts := EnumeratePoints(u.Program)
	// li: dst $1; add: src $1, dst $2; st: src $2; halt: none.
	if len(pts) != 4 {
		t.Fatalf("%d points: %v", len(pts), pts)
	}
	dsts := 0
	for _, p := range pts {
		if p.Dst {
			dsts++
		}
	}
	if dsts != 2 {
		t.Errorf("%d destination points, want 2", dsts)
	}
}

func TestEnumerateDeterministicAndSized(t *testing.T) {
	cfg := Config{Program: tcas.Program(), Seed: 42, RandomPerReg: 3}
	a := Enumerate(cfg)
	b := Enumerate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("enumeration not deterministic for a fixed seed")
	}
	cfg.Seed = 43
	c := Enumerate(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical random values")
	}
	cfg.MaxInjections = 100
	if got := Enumerate(cfg); len(got) != 100 {
		t.Fatalf("cap ignored: %d", len(got))
	}
}

func TestExtremeValuesPresent(t *testing.T) {
	cfg := Config{Program: tcas.Program(), Seed: 1, RandomPerReg: 1}
	injs := Enumerate(cfg)
	seen := map[int64]bool{}
	for _, inj := range injs[:4] {
		seen[inj.Value] = true
	}
	for _, want := range []int64{0, int64(^uint64(0) >> 1), -int64(^uint64(0)>>1) - 1} {
		if !seen[want] {
			t.Errorf("extreme value %d missing from the first site's injections", want)
		}
	}
}

func TestRunOneInjectsOnce(t *testing.T) {
	u := asm.MustParse("t", `
loop:	addi $1 $1 1
	print $1
	beqi $1 3 done
	jmp loop
done:	halt
`)
	// Inject 10 into $1 before the first execution of the addi only: the
	// output starts from 11 and the loop runs to... never reaches 3: bounded
	// by watchdog.
	res := RunOne(Config{
		Program:  u.Program,
		Watchdog: 100,
		Classify: SingleValueClassifier(),
	}, Injection{Point: Point{PC: 0, Reg: 1}, Value: 10})
	if res.Status != machine.StatusExcepted || res.Exception.Kind != isa.ExcTimeout {
		t.Fatalf("status %v (%v)", res.Status, res.Exception)
	}
	vals := machine.OutputValues(res.Output)
	if len(vals) == 0 {
		t.Fatal("no output")
	}
	if v, _ := vals[0].Concrete(); v != 11 {
		t.Errorf("first printed value %v, want 11 (single injection at first occurrence)", vals[0])
	}
}

func TestSingleValueClassifier(t *testing.T) {
	classify := SingleValueClassifier(0, 1, 2)
	mk := func(status machine.Status, exc *isa.Exception, vals ...isa.Value) machine.Result {
		out := make([]machine.OutItem, len(vals))
		for i, v := range vals {
			out[i] = machine.OutItem{Val: v}
		}
		return machine.Result{Status: status, Exception: exc, Output: out}
	}
	cases := []struct {
		res  machine.Result
		want string
	}{
		{mk(machine.StatusHalted, nil, isa.Int(1)), "1"},
		{mk(machine.StatusHalted, nil, isa.Int(2)), "2"},
		{mk(machine.StatusHalted, nil, isa.Int(7)), LabelOther},
		{mk(machine.StatusHalted, nil, isa.Int(1), isa.Int(1)), LabelOther},
		{mk(machine.StatusHalted, nil), LabelOther},
		{mk(machine.StatusExcepted, &isa.Exception{Kind: isa.ExcIllegalAddr}), LabelCrash},
		{mk(machine.StatusExcepted, &isa.Exception{Kind: isa.ExcTimeout}), LabelHang},
	}
	for i, c := range cases {
		if got := classify(c.res); got != c.want {
			t.Errorf("case %d: %q, want %q", i, got, c.want)
		}
	}
}

func TestRunCampaignReport(t *testing.T) {
	rep, err := Run(Config{
		Program:       tcas.Program(),
		Input:         tcas.UpwardInput().Slice(),
		Watchdog:      50_000,
		Classify:      SingleValueClassifier(0, 1, 2),
		Seed:          7,
		MaxInjections: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 300 {
		t.Fatalf("total %d", rep.Total)
	}
	sum := 0
	for _, l := range rep.Labels() {
		sum += rep.Counts[l]
		if _, ok := rep.Examples[l]; !ok {
			t.Errorf("no example for label %q", l)
		}
	}
	if sum != rep.Total {
		t.Errorf("counts sum %d != total %d", sum, rep.Total)
	}
	pctSum := 0.0
	for _, l := range rep.Labels() {
		pctSum += rep.Percent(l)
	}
	if pctSum < 99.9 || pctSum > 100.1 {
		t.Errorf("percentages sum to %f", pctSum)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Run(Config{Program: tcas.Program()}); err == nil {
		t.Error("nil classifier accepted")
	}
}
