package summary

import (
	"fmt"
	"sort"

	"symplfied/internal/analysis"
	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

// CallSite is one jal instruction inside a function body. The call's
// continuation — where the callee's `jr $31` resumes under the calling
// convention — is PC+1.
type CallSite struct {
	// PC is the address of the jal.
	PC int
	// Callee is the entry pc the jal targets.
	Callee int
}

// Func is one discovered function: the intra-procedural closure of an entry
// point, where a jal edge continues at the call site's successor (the callee
// is a separate function) and a `jr $31` is a function exit.
type Func struct {
	// Entry is the entry pc: a jal target, or 0 for the program entry.
	Entry int
	// Name is the first label at Entry, or "@pc" when the entry is unlabeled.
	Name string
	// Body lists the function's pcs in ascending order.
	Body []int
	// Exits lists the pcs of `jr $31` returns within Body.
	Exits []int
	// Calls lists the jal sites within Body in ascending pc order.
	Calls []CallSite
	// HasCall is true when Body contains a jal: the function overwrites $31
	// and is assumed to restore it before returning (see Partition).
	HasCall bool
	// Opaque marks a function the discipline guards reject: it contains an
	// indirect `jr` through a register other than $31, writes $31 with
	// something other than a jal link or an `ld` restore, or jal-targets an
	// invalid pc. Opaque functions get the maximal (fully conservative)
	// summary: every entry taint may reach everything.
	Opaque bool
	// OpaqueReason says which guard fired, for diagnostics.
	OpaqueReason string `json:",omitempty"`

	member map[int]bool
}

// Contains reports whether pc belongs to the function body.
func (f *Func) Contains(pc int) bool { return f.member[pc] }

// Funcs is the function partition of a program: every jal target plus the
// program entry, each with its intra-procedural body, exits and call sites.
// Bodies may overlap (shared tails, fallthrough into another entry); every
// analysis over the partition unions the verdicts of all containing
// functions, which keeps overlap conservative rather than wrong.
type Funcs struct {
	Prog  *isa.Program
	Dets  *detector.Table
	Funcs []*Func // ascending entry order

	byEntry map[int]int
	callers map[int][]Caller // func index -> sites that call it
}

// Caller is one incoming call edge: the jal at PC inside function Index.
type Caller struct {
	Index int
	PC    int
}

// ByEntry returns the function whose entry is pc.
func (fs *Funcs) ByEntry(pc int) (*Func, bool) {
	i, ok := fs.byEntry[pc]
	if !ok {
		return nil, false
	}
	return fs.Funcs[i], true
}

// Containing returns the indexes of every function whose body contains pc,
// in ascending entry order.
func (fs *Funcs) Containing(pc int) []int {
	var out []int
	for i, f := range fs.Funcs {
		if f.Contains(pc) {
			out = append(out, i)
		}
	}
	return out
}

// Callers returns the call edges into the function at index i.
func (fs *Funcs) Callers(i int) []Caller { return fs.callers[i] }

// IntraSuccs returns pc's successors within the function partition: the
// instruction-level CFG successors, except that a jal continues at pc+1 (the
// callee is summarized, not entered) and a `jr $31` is an exit with no
// successors. The returned slice aliases buf when it has capacity.
func (fs *Funcs) IntraSuccs(pc int, buf []int) []int {
	in := fs.Prog.At(pc)
	switch in.Op {
	case isa.OpJal:
		if pc+1 < fs.Prog.Len() {
			return append(buf[:0], pc+1)
		}
		return buf[:0]
	case isa.OpJr:
		return buf[:0]
	}
	succs, _ := analysis.SuccsOf(fs.Prog, fs.Dets, pc, buf)
	return succs
}

// Partition discovers the functions of prog: entries are pc 0 plus every jal
// target, bodies are the intra-procedural closures over IntraSuccs, exits
// are `jr $31` instructions, and call sites are jal instructions.
//
// Soundness posture: composition over this partition assumes the calling
// convention every program in this tree follows — functions are entered by
// jal, return through `jr $31`, and a function that itself calls restores
// $31 from its stack save (an `ld` into $31) before returning. Shapes that
// detectably break the convention (indirect jr, ad-hoc writes to $31) mark
// the function Opaque, which degrades it to the maximal summary instead of
// an unsound one; the residual assumption (a restored $31 really is the
// saved link) is discharged dynamically by the checker, which explores one
// real representative per summarized site and re-explores every reuse under
// SYMPLFIED_CHECK_SUMMARIES=1.
func Partition(prog *isa.Program, dets *detector.Table) *Funcs {
	if dets == nil {
		dets = detector.EmptyTable()
	}
	fs := &Funcs{
		Prog:    prog,
		Dets:    dets,
		byEntry: make(map[int]int),
		callers: make(map[int][]Caller),
	}
	entrySet := map[int]bool{0: true}
	for pc := 0; pc < prog.Len(); pc++ {
		in := prog.At(pc)
		if in.Op == isa.OpJal && prog.ValidPC(in.Target) {
			entrySet[in.Target] = true
		}
	}
	if prog.Len() == 0 {
		return fs
	}
	entries := make([]int, 0, len(entrySet))
	for e := range entrySet {
		entries = append(entries, e)
	}
	sort.Ints(entries)
	for i, e := range entries {
		fs.byEntry[e] = i
		fs.Funcs = append(fs.Funcs, discover(prog, fs, e))
	}
	for i, f := range fs.Funcs {
		for _, cs := range f.Calls {
			if j, ok := fs.byEntry[cs.Callee]; ok {
				fs.callers[j] = append(fs.callers[j], Caller{Index: i, PC: cs.PC})
			}
		}
	}
	return fs
}

// discover computes one function's body by BFS over IntraSuccs from entry.
func discover(prog *isa.Program, fs *Funcs, entry int) *Func {
	f := &Func{Entry: entry, member: make(map[int]bool)}
	if labels := prog.LabelsAt(entry); len(labels) > 0 {
		f.Name = labels[0]
	} else {
		f.Name = fmt.Sprintf("@%d", entry)
	}
	work := []int{entry}
	f.member[entry] = true
	var buf [4]int
	for len(work) > 0 {
		pc := work[0]
		work = work[1:]
		f.Body = append(f.Body, pc)
		in := prog.At(pc)
		switch in.Op {
		case isa.OpJr:
			if in.Rs == isa.RegRA {
				f.Exits = append(f.Exits, pc)
			} else {
				f.markOpaque(fmt.Sprintf("indirect jr through %s at @%d", in.Rs, pc))
			}
		case isa.OpJal:
			f.HasCall = true
			if prog.ValidPC(in.Target) {
				f.Calls = append(f.Calls, CallSite{PC: pc, Callee: in.Target})
			} else {
				f.markOpaque(fmt.Sprintf("jal to invalid pc %d at @%d", in.Target, pc))
			}
		default:
			// $31 may only be written by a jal link or an ld restore; any
			// other write breaks the return discipline composition relies on.
			for _, dst := range in.DstRegs() {
				if dst == isa.RegRA && in.Op != isa.OpLd {
					f.markOpaque(fmt.Sprintf("%s writes $31 at @%d", in.Op, pc))
				}
			}
		}
		for _, s := range fs.IntraSuccs(pc, buf[:0]) {
			if !f.member[s] {
				f.member[s] = true
				work = append(work, s)
			}
		}
	}
	sort.Ints(f.Body)
	sort.Ints(f.Exits)
	sort.Slice(f.Calls, func(i, j int) bool { return f.Calls[i].PC < f.Calls[j].PC })
	return f
}

func (f *Func) markOpaque(reason string) {
	if !f.Opaque {
		f.Opaque = true
		f.OpaqueReason = reason
	}
}
