package summary

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// DefaultCacheCap bounds the in-memory LRU when NewCache is given no
// capacity. Summaries are a few hundred bytes each, so this is generous.
const DefaultCacheCap = 4096

// Store is a second-level summary store behind the in-memory LRU: the
// on-disk JSONL store, or the coordinator-served HTTP store the distributed
// workers use. Values are the canonical JSON encoding of a FuncSummary.
// Content addressing makes entries self-validating — a key can only ever
// map to one value — so Load/Save need no versioning beyond the key.
type Store interface {
	Load(key string) (value []byte, ok bool, err error)
	Save(key string, value []byte) error
}

// Cache memoizes function summaries by content key: an in-memory LRU in
// front of an optional Store. A nil *Cache is valid and always misses.
// Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
	store Store
}

type cacheEntry struct {
	key string
	sum *FuncSummary
}

// NewCache returns a cache holding up to capacity summaries in memory
// (DefaultCacheCap when capacity <= 0), backed by store (which may be nil).
func NewCache(capacity int, store Store) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
		store: store,
	}
}

// Get returns a copy of the summary cached under key, consulting memory
// first and then the store (a store hit is promoted into memory).
func (c *Cache) Get(key string) (*FuncSummary, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		cp := *el.Value.(*cacheEntry).sum
		c.mu.Unlock()
		return &cp, true
	}
	c.mu.Unlock()
	if c.store == nil {
		return nil, false
	}
	raw, ok, err := c.store.Load(key)
	if err != nil || !ok {
		return nil, false
	}
	var sum FuncSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		liveInvalidated.Inc() // corrupt store entry: dropped
		return nil, false
	}
	c.insert(key, &sum)
	cp := sum
	return &cp, true
}

// Put caches a copy of sum under key in memory and, when a store is
// attached, persists it there too.
func (c *Cache) Put(key string, sum *FuncSummary) {
	if c == nil || sum == nil {
		return
	}
	cp := *sum
	c.insert(key, &cp)
	if c.store != nil {
		if raw, err := json.Marshal(&cp); err == nil {
			_ = c.store.Save(key, raw) // best effort: the cache is an accelerator
		}
	}
}

// GetRaw returns the canonical JSON of the summary under key, for serving
// the cache over the wire (internal/dist coordinator).
func (c *Cache) GetRaw(key string) ([]byte, bool) {
	sum, ok := c.Get(key)
	if !ok {
		return nil, false
	}
	raw, err := json.Marshal(sum)
	if err != nil {
		return nil, false
	}
	return raw, true
}

// PutRaw validates and caches a wire-received summary encoding. Undecodable
// payloads are counted invalidated and dropped.
func (c *Cache) PutRaw(key string, raw []byte) bool {
	if c == nil {
		return false
	}
	var sum FuncSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		liveInvalidated.Inc()
		return false
	}
	c.Put(key, &sum)
	return true
}

// Len returns the number of summaries resident in memory.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *Cache) insert(key string, sum *FuncSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).sum = sum
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, sum: sum})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		liveInvalidated.Inc() // LRU eviction
	}
}

// DiskStore is the on-disk summary store: one append-only JSON-lines file
// (summaries.jsonl) in a directory, loaded fully at open. Appends are
// serialized per process; sharing a directory across processes is safe for
// readers but concurrent writers should go through the coordinator instead.
type DiskStore struct {
	mu    sync.Mutex
	f     *os.File
	known map[string]json.RawMessage
}

// diskEntry is one JSONL line.
type diskEntry struct {
	Key     string          `json:"key"`
	Summary json.RawMessage `json:"summary"`
}

// OpenDiskStore opens (creating if needed) the summary store in dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("summary store: %w", err)
	}
	path := filepath.Join(dir, "summaries.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("summary store: %w", err)
	}
	ds := &DiskStore{f: f, known: make(map[string]json.RawMessage)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e diskEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			liveInvalidated.Inc() // torn or corrupt line: skipped
			continue
		}
		ds.known[e.Key] = append(json.RawMessage(nil), e.Summary...)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("summary store %s: %w", path, err)
	}
	return ds, nil
}

// Load returns the stored value for key.
func (ds *DiskStore) Load(key string) ([]byte, bool, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	v, ok := ds.known[key]
	return v, ok, nil
}

// Save appends the entry unless the key is already present (content
// addressing: same key, same value).
func (ds *DiskStore) Save(key string, value []byte) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if _, ok := ds.known[key]; ok {
		return nil
	}
	line, err := json.Marshal(diskEntry{Key: key, Summary: value})
	if err != nil {
		return err
	}
	if _, err := ds.f.Write(append(line, '\n')); err != nil {
		return err
	}
	ds.known[key] = append(json.RawMessage(nil), value...)
	return nil
}

// Len returns the number of stored summaries.
func (ds *DiskStore) Len() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return len(ds.known)
}

// Close closes the underlying file. Load/Save after Close fail.
func (ds *DiskStore) Close() error { return ds.f.Close() }
