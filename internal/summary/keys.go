package summary

import (
	"fmt"
	"sort"

	"symplfied/internal/fingerprint"
	"symplfied/internal/isa"
	"symplfied/internal/symbolic"
)

// keyVersion is folded into every content key; bump it when the canonical
// encoding or the summary semantics change, so stale on-disk caches
// invalidate wholesale instead of deserializing into wrong verdicts.
const keyVersion = "symplfied-summary-v1"

// hash64Writer adapts symbolic.Hash64 to io.Writer so the shared
// fingerprint encoding (internal/fingerprint) feeds the same canonical
// detector bytes into summary keys that campaign and crossval fingerprints
// hash — one scheme, no drift.
type hash64Writer struct{ h *symbolic.Hash64 }

func (w hash64Writer) Write(p []byte) (int, error) {
	for _, b := range p {
		w.h.Byte(b)
	}
	return len(p), nil
}

// sccKeys computes the content-addressed cache key of every function. A
// key covers: the key-format version; for every member of the function's
// call-graph SCC (mutually recursive functions are one content unit), the
// body rendered canonically — entry-relative pc, opcode and operand fields,
// absolute branch/jump targets, the string literal, and for each CHECK the
// referenced detector's shared fingerprint line — plus, in call-site order,
// the keys of callees outside the SCC. Labels, comments and source lines
// are ignored: they cannot change behavior.
//
// Consequences: an in-place mutation of one function re-keys exactly that
// function (its SCC) and its transitive callers; inserting or deleting an
// instruction shifts absolute pcs and conservatively re-keys everything
// downstream of the shift — never wrong, just colder.
func sccKeys(fs *Funcs) []string {
	keys := make([]string, len(fs.Funcs))
	for _, scc := range sccOrder(fs) {
		h := symbolic.NewHash64()
		fp := fingerprint.NewInto(hash64Writer{&h})
		fp.Line(keyVersion)
		inSCC := make(map[int]bool, len(scc))
		for _, fi := range scc {
			inSCC[fi] = true
		}
		for _, fi := range scc {
			f := fs.Funcs[fi]
			h.Int(int64(len(f.Body)))
			for _, pc := range f.Body {
				in := fs.Prog.At(pc)
				h.Int(int64(pc - f.Entry))
				h.Int(int64(in.Op))
				h.Int(int64(in.Rd))
				h.Int(int64(in.Rs))
				h.Int(int64(in.Rt))
				h.Int(in.Imm)
				h.Int(int64(in.Target))
				h.Str(in.Str)
				if in.Op == isa.OpCheck {
					if d, ok := fs.Dets.Lookup(in.Imm); ok {
						fp.Detector(d)
					} else {
						fp.Line("det unknown %d", in.Imm)
					}
				}
			}
			for _, cs := range f.Calls {
				if j, ok := fs.byEntry[cs.Callee]; ok && !inSCC[j] {
					h.Str(keys[j])
				}
			}
		}
		for i, fi := range scc {
			k := h
			k.Int(int64(i))
			keys[fi] = fmt.Sprintf("%016x", k.Sum())
		}
	}
	return keys
}

// sccOrder returns the strongly connected components of the call graph in
// reverse topological order — every callee SCC before its callers — which
// is both the key-computation order and the bottom-up summary build order.
// Tarjan's algorithm, iterative to keep deep call chains off the Go stack.
func sccOrder(fs *Funcs) [][]int {
	n := len(fs.Funcs)
	succs := make([][]int, n)
	for i, f := range fs.Funcs {
		seen := map[int]bool{}
		for _, cs := range f.Calls {
			if j, ok := fs.byEntry[cs.Callee]; ok && !seen[j] {
				seen[j] = true
				succs[i] = append(succs[i], j)
			}
		}
	}
	var (
		sccs    [][]int
		index   = make([]int, n)
		lowlink = make([]int, n)
		onStack = make([]bool, n)
		stack   []int
		next    = 1 // 0 means unvisited
	)
	type frame struct{ v, i int }
	for root := 0; root < n; root++ {
		if index[root] != 0 {
			continue
		}
		frames := []frame{{v: root}}
		index[root], lowlink[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			if fr.i < len(succs[fr.v]) {
				w := succs[fr.v][fr.i]
				fr.i++
				if index[w] == 0 {
					index[w], lowlink[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < lowlink[fr.v] {
					lowlink[fr.v] = index[w]
				}
				continue
			}
			v := fr.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				// Ascending function order keeps key folding deterministic.
				sort.Ints(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
