package summary

import (
	"sync"

	"symplfied/internal/analysis"
	"symplfied/internal/isa"
)

// flowState is the dataflow fact at one program point: which registers may
// carry the err, and whether the memory class may.
type flowState struct {
	regs analysis.RegSet
	mem  bool
}

func (st flowState) empty() bool { return st.regs == 0 && !st.mem }

func (st flowState) union(o flowState) flowState {
	return flowState{regs: st.regs.Union(o.regs), mem: st.mem || o.mem}
}

// propagate runs the forward may-taint dataflow inside function fi, seeding
// state seed just before the instruction at seedPC executes, and returns the
// composed local result: effects reached, and the taint escaping through the
// function's `jr $31` exits. Callee summaries substitute for jal descents.
// Not memoized — the SCC fixpoint calls it while summaries are still
// growing; pointEffect adds memoization once the set is final.
func (s *Set) propagate(fi, seedPC int, seed flowState) LocEffect {
	f := s.Funcs.Funcs[fi]
	if f.Opaque {
		return maximalEffect
	}
	var out LocEffect
	if seed.empty() || !f.Contains(seedPC) {
		return out
	}
	states := map[int]flowState{seedPC: seed}
	work := []int{seedPC}
	var buf [4]int
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		st, eff, isExit := s.transfer(pc, states[pc])
		out.Effects |= eff
		if isExit {
			out.Out = out.Out.Union(st.regs)
			out.MemOut = out.MemOut || st.mem
			continue
		}
		if st.empty() {
			continue // the taint died: nothing left to follow
		}
		for _, succ := range s.Funcs.IntraSuccs(pc, buf[:0]) {
			joined := states[succ].union(st)
			if joined != states[succ] {
				states[succ] = joined
				work = append(work, succ)
			}
		}
	}
	return out
}

// transfer applies one instruction to a taint state, returning the state
// after it, the effects the tainted inputs can reach at it, and whether the
// instruction is a function exit (jr $31) whose incoming state escapes.
func (s *Set) transfer(pc int, st flowState) (flowState, Effect, bool) {
	in := s.Funcs.Prog.At(pc)
	var eff Effect
	switch in.Op {
	case isa.OpJr:
		// Only jr $31 appears in non-opaque bodies. A tainted return
		// address is arbitrary control transfer.
		if st.regs.Has(isa.RegRA) {
			eff |= EffControl
		}
		return st, eff, true

	case isa.OpJal:
		// The link kills any taint in $31, then the callee's summary
		// substitutes for descending into it.
		st.regs = st.regs.Remove(isa.RegRA)
		callee, ok := s.Funcs.byEntry[in.Target]
		if !ok {
			return st, EffAll, false // invalid target: opaque guard fired
		}
		if st.empty() {
			return st, eff, false
		}
		cs := s.sums[callee]
		liveComposed.Inc()
		if cs.Opaque {
			return flowState{regs: analysis.AllRegs, mem: true}, eff | EffAll, false
		}
		var acc LocEffect
		for _, r := range st.regs.Regs() {
			le := cs.Regs[r]
			acc.Effects |= le.Effects
			acc.Out = acc.Out.Union(le.Out)
			acc.MemOut = acc.MemOut || le.MemOut
		}
		if st.mem {
			acc.Effects |= cs.Mem.Effects
			acc.Out = acc.Out.Union(cs.Mem.Out)
			acc.MemOut = acc.MemOut || cs.Mem.MemOut
		}
		eff |= acc.Effects
		// The callee may leave caller-held taint untouched (we do not track
		// must-kills across calls), so the caller's taint persists and the
		// callee's escaping taint joins it.
		st.regs = st.regs.Union(acc.Out)
		st.mem = st.mem || acc.MemOut
		return st, eff, false

	case isa.OpLd:
		// rt := M[R[rs]+imm]. A tainted address can fault or alias any
		// word; a tainted memory class taints the loaded value.
		if st.regs.Has(in.Rs) {
			eff |= EffControl
			st.regs = st.regs.Add(in.Rt)
		} else if st.mem {
			st.regs = st.regs.Add(in.Rt)
		} else {
			st.regs = st.regs.Remove(in.Rt)
		}
		return st, eff, false

	case isa.OpSt:
		// M[R[rs]+imm] := rt. A tainted address can fault or clobber any
		// word; a tainted value taints the memory class.
		if st.regs.Has(in.Rs) {
			eff |= EffControl
			st.mem = true
		}
		if st.regs.Has(in.Rt) {
			st.mem = true
		}
		return st, eff, false

	case isa.OpBeq, isa.OpBne, isa.OpBeqi, isa.OpBnei:
		for _, r := range in.SrcRegs() {
			if st.regs.Has(r) {
				eff |= EffControl
				break
			}
		}
		return st, eff, false

	case isa.OpPrint:
		for _, r := range in.SrcRegs() {
			if st.regs.Has(r) {
				eff |= EffOutput
				break
			}
		}
		return st, eff, false

	case isa.OpCheck:
		d, ok := s.Funcs.Dets.Lookup(in.Imm)
		if !ok {
			// Unknown detector: the check throws identically in the faulty
			// and fault-free run; the taint reaches nothing through it.
			return st, eff, false
		}
		regs, readsMem := analysis.DetectorReads(d)
		if st.regs&regs != 0 || (readsMem && st.mem) {
			eff |= EffDetector
		}
		return st, eff, false

	default:
		// Arithmetic, logic, moves, reads: tainted sources taint the
		// destinations; untainted sources kill them. A tainted divisor can
		// fault (divide semantics diverge), which is a control effect.
		if (in.Op == isa.OpDiv || in.Op == isa.OpMod) && st.regs.Has(in.Rt) {
			eff |= EffControl
		}
		tainted := false
		for _, r := range in.SrcRegs() {
			if st.regs.Has(r) {
				tainted = true
				break
			}
		}
		for _, dst := range in.DstRegs() {
			if tainted {
				st.regs = st.regs.Add(dst)
			} else {
				st.regs = st.regs.Remove(dst)
			}
		}
		return st, eff, false
	}
}

// pointMemo caches propagate results for arbitrary seed points; only valid
// once every summary is final (after Build's bottom-up pass).
type pointMemo struct {
	mu sync.RWMutex
	m  map[pointKey]LocEffect
}

type pointKey struct {
	fi, pc int
	loc    taintLoc
}

func (p *pointMemo) init() { p.m = make(map[pointKey]LocEffect) }

// pointEffect is the memoized propagate of a single-location seed at an
// arbitrary pc of function fi.
func (s *Set) pointEffect(fi, pc int, loc taintLoc) LocEffect {
	k := pointKey{fi: fi, pc: pc, loc: loc}
	s.points.mu.RLock()
	le, ok := s.points.m[k]
	s.points.mu.RUnlock()
	if ok {
		return le
	}
	seed := flowState{mem: true}
	if loc != locMem {
		seed = flowState{regs: analysis.RegSet(0).Add(isa.Reg(loc))}
	}
	le = s.propagate(fi, pc, seed)
	s.points.mu.Lock()
	s.points.m[k] = le
	s.points.mu.Unlock()
	return le
}

// buildCont resolves the continuation fixpoint: cont[i][loc] is the effect
// of err residing in loc at the moment function i returns. A return resumes
// at a caller's call-site continuation; a function that itself calls may
// additionally return to any call continuation program-wide ($31 could hold
// the link of the last executed jal when the restore discipline is bent),
// and a returning function with no known caller gets the maximal effect
// (the continuation is outside the partition's knowledge).
func (s *Set) buildCont() {
	n := len(s.Funcs.Funcs)
	s.cont = make([][locMem + 1]Effect, n)
	for changed := true; changed; {
		changed = false
		for fi, f := range s.Funcs.Funcs {
			if len(f.Exits) == 0 {
				continue // never returns; cont is never consulted
			}
			for loc := taintLoc(1); loc <= locMem; loc++ {
				e := s.contOnce(fi, loc)
				if e != s.cont[fi][loc] {
					s.cont[fi][loc] = e
					changed = true
				}
			}
		}
	}
}

// contOnce evaluates one continuation-effect equation against the current
// cont iterate.
func (s *Set) contOnce(fi int, loc taintLoc) Effect {
	f := s.Funcs.Funcs[fi]
	callers := s.Funcs.Callers(fi)
	var e Effect
	if len(callers) == 0 {
		e |= EffAll // returning into the unknown (e.g. top-level jr)
	}
	for _, c := range callers {
		e |= s.afterEffect(c.Index, c.PC+1, loc)
	}
	if f.HasCall {
		for gi, g := range s.Funcs.Funcs {
			for _, cs := range g.Calls {
				e |= s.afterEffect(gi, cs.PC+1, loc)
			}
		}
	}
	return e
}

// afterEffect composes the whole-program effect of err residing in loc just
// before pc of function fi: the local propagation, plus — for taint that
// escapes fi's exits — the continuation effects of fi itself. A pc outside
// the body (a call continuation that falls off the program) diverges
// identically in the faulty and fault-free run, so it contributes nothing.
func (s *Set) afterEffect(fi, pc int, loc taintLoc) Effect {
	f := s.Funcs.Funcs[fi]
	if !f.Contains(pc) {
		return 0
	}
	if f.Opaque {
		return EffAll
	}
	le := s.pointEffect(fi, pc, loc)
	e := le.Effects
	for _, r := range le.Out.Regs() {
		e |= s.cont[fi][taintLoc(r)]
	}
	if le.MemOut {
		e |= s.cont[fi][locMem]
	}
	return e
}

// EffectOf returns the composed whole-program effect of an err injected
// into register r just before the instruction at pc executes (any
// occurrence), and whether the site was classifiable at all. An
// unclassifiable site (invalid pc or register, or a pc no discovered
// function covers) returns the maximal effect with ok=false. A zero effect
// with ok=true is a proof the injection is benign — under the calling
// convention stated on Partition.
func (s *Set) EffectOf(pc int, r isa.Reg) (e Effect, ok bool) {
	if r == isa.RegZero || !r.Valid() || !s.Funcs.Prog.ValidPC(pc) {
		return EffAll, false
	}
	return s.effectAt(pc, taintLoc(r))
}

// EffectOfMem is EffectOf for an err resident in the memory class at pc.
// The class is coarse (one bit for all of memory), so memory verdicts are
// conservative: any downstream load taints its destination.
func (s *Set) EffectOfMem(pc int) (e Effect, ok bool) {
	if !s.Funcs.Prog.ValidPC(pc) {
		return EffAll, false
	}
	return s.effectAt(pc, locMem)
}

func (s *Set) effectAt(pc int, loc taintLoc) (Effect, bool) {
	fis := s.Funcs.Containing(pc)
	if len(fis) == 0 {
		return EffAll, false
	}
	var e Effect
	for _, fi := range fis {
		e |= s.afterEffect(fi, pc, loc)
	}
	return e, true
}
