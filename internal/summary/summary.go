// Package summary computes compositional fault summaries: for every
// function of a program it records what one injected err value, resident in
// a given entry register (or in the memory class) at function entry, can
// reach — the output stream, a detector's CHECK, control flow — and which
// registers still carry it when the function returns. Summaries compose at
// call sites (a jal consults the callee's summary instead of re-descending),
// so a campaign can classify an injection as provably benign from the
// summary of the function containing its site, the per-function analogue of
// the per-site liveness pruning of internal/checker.PruneContext and the
// FastFlip-style decomposition described in PAPERS.md.
//
// Summaries are content-addressed: each function's summary is keyed by an
// FNV-1a hash of its body (entry-relative pcs, canonical operand fields),
// the detector-table slice its CHECKs reference (rendered through the shared
// internal/fingerprint encoding), and the keys of the functions it calls.
// A cache keyed this way makes incremental re-analysis automatic — mutating
// one function in place invalidates exactly that function and its transitive
// callers, and an unchanged program is a pure cache hit for every function.
//
// The analysis is a forward may-taint dataflow with exact kills: an
// instruction whose sources are untainted overwrites (kills) the taint in
// its destinations, while a tainted source taints them. Effects are
// collected at sinks — print (output), check (detector), and any place the
// tainted value can change control flow or fault (branch operands, jump
// registers, divisors, load/store addresses). A zero effect everywhere,
// including through every caller continuation the escape can return to,
// proves the injection cannot alter the program's observable behavior.
package summary

import (
	"strings"

	"symplfied/internal/analysis"
	"symplfied/internal/detector"
	"symplfied/internal/isa"
	"symplfied/internal/obs"
)

// Live summary counters (also see the checker's summarized-injection
// counter); package-level so every Build in the process shares them.
var (
	liveComputed    = obs.Default().Counter(obs.MSummariesComputed)
	liveHits        = obs.Default().Counter(obs.MSummaryCacheHits)
	liveComposed    = obs.Default().Counter(obs.MSummariesComposed)
	liveInvalidated = obs.Default().Counter(obs.MSummariesInvalidated)
)

// Effect is a bitmask of what an injected err can reach.
type Effect uint8

const (
	// EffOutput: the tainted value can be printed — outputs may differ.
	EffOutput Effect = 1 << iota
	// EffDetector: a CHECK can read the tainted value — a detection may
	// fire (or be suppressed) that the fault-free run would not.
	EffDetector
	// EffControl: the tainted value can decide control flow or fault — a
	// branch operand, a jr target, a divisor, a load/store address. Any
	// divergence (crash, hang, different path) is possible.
	EffControl
)

// EffAll is every effect bit: the maximal, fully conservative verdict.
const EffAll = EffOutput | EffDetector | EffControl

// Benign reports whether the effect proves the injection unobservable.
func (e Effect) Benign() bool { return e == 0 }

func (e Effect) String() string {
	if e == 0 {
		return "none"
	}
	var parts []string
	if e&EffOutput != 0 {
		parts = append(parts, "output")
	}
	if e&EffDetector != 0 {
		parts = append(parts, "detector")
	}
	if e&EffControl != 0 {
		parts = append(parts, "control")
	}
	return strings.Join(parts, "|")
}

// taintLoc identifies where the err resides: register number 1..31, or
// locMem for the memory class.
type taintLoc uint8

const locMem taintLoc = isa.NumRegs

// LocEffect is the composed consequence of err residing in one entry
// location: the effects it can reach inside the function (and its callees),
// and where the taint still lives when the function returns.
type LocEffect struct {
	// Effects are the sinks the taint can reach before any return.
	Effects Effect `json:",omitempty"`
	// Out is the set of registers that may carry the taint at a `jr $31`
	// exit — the return-value registers the err can corrupt.
	Out analysis.RegSet `json:",omitempty"`
	// MemOut is true when the memory class may be tainted at an exit.
	MemOut bool `json:",omitempty"`
}

// merge joins o into l, reporting whether l changed.
func (l *LocEffect) merge(o LocEffect) bool {
	changed := false
	if l.Effects|o.Effects != l.Effects {
		l.Effects |= o.Effects
		changed = true
	}
	if l.Out.Union(o.Out) != l.Out {
		l.Out = l.Out.Union(o.Out)
		changed = true
	}
	if o.MemOut && !l.MemOut {
		l.MemOut = true
		changed = true
	}
	return changed
}

// maximalEffect is the fully conservative verdict for opaque functions.
var maximalEffect = LocEffect{Effects: EffAll, Out: analysis.AllRegs, MemOut: true}

// FuncSummary is the cacheable summary of one function: per entry register
// (index = register number; $0 is hardwired and stays zero) and for the
// memory class, the composed LocEffect of an err arriving there at entry.
// Regs[r] for a register the function provably kills on every path before
// any read is the zero LocEffect — the benign verdict.
type FuncSummary struct {
	// Name, Entry and Key restate the function identity for reports; they
	// are rewritten from the current program on every cache hit, so a
	// content-colliding body at a different address cannot mislabel itself.
	Name  string
	Entry int
	Key   string
	// Opaque mirrors Func.Opaque: every entry is the maximal effect.
	Opaque bool `json:",omitempty"`
	Regs   [isa.NumRegs]LocEffect
	Mem    LocEffect
}

// at returns the entry for a taint location.
func (s *FuncSummary) at(loc taintLoc) LocEffect {
	if loc == locMem {
		return s.Mem
	}
	return s.Regs[loc]
}

// BuildStats reports what one Build did, for incremental-analysis
// verification and the CLI: which functions were recomputed and which came
// out of the cache, in ascending entry order.
type BuildStats struct {
	// Functions is the partition size.
	Functions int
	// Computed names the functions whose summaries were (re)computed.
	Computed []string
	// Hits names the functions whose summaries were cache hits.
	Hits []string
}

// Set is the summary set of one program under one detector table: the
// function partition, one FuncSummary per function, and the continuation
// fixpoint that resolves escaped taint through caller return points. Safe
// for concurrent queries after Build returns.
type Set struct {
	Funcs *Funcs
	Stats BuildStats

	sums []*FuncSummary
	// cont[i][loc] is the effect of err residing in loc at the moment
	// function i returns, composed over every continuation the return can
	// resume at (see buildCont).
	cont [][locMem + 1]Effect
	// points memoizes propagate results for arbitrary seed points.
	points pointMemo
}

// Summaries returns the per-function summaries, index-aligned with
// Funcs.Funcs.
func (s *Set) Summaries() []*FuncSummary { return s.sums }

// Build partitions prog, computes or loads the summary of every function in
// bottom-up call-graph order, and resolves the caller-continuation fixpoint.
// cache may be nil (everything is computed). Detectors may be nil.
func Build(prog *isa.Program, dets *detector.Table, cache *Cache) *Set {
	fs := Partition(prog, dets)
	s := &Set{Funcs: fs, sums: make([]*FuncSummary, len(fs.Funcs))}
	s.points.init()
	s.Stats.Functions = len(fs.Funcs)
	for i, f := range fs.Funcs {
		// Pre-seed zero summaries so intra-SCC compositions during the
		// fixpoint read the optimistic start value.
		s.sums[i] = &FuncSummary{Name: f.Name, Entry: f.Entry, Opaque: f.Opaque}
	}
	keys := sccKeys(fs)
	for _, scc := range sccOrder(fs) {
		s.buildSCC(scc, keys, cache)
	}
	s.buildCont()
	return s
}

// buildSCC computes or loads the summaries of one strongly connected
// component of the call graph. Cached summaries are valid by construction of
// the content key; if any member misses, the whole component is recomputed
// to a fixpoint (mutual recursion makes the members interdependent).
func (s *Set) buildSCC(scc []int, keys []string, cache *Cache) {
	hit := make([]*FuncSummary, len(scc))
	all := true
	for i, fi := range scc {
		if sum, ok := cache.Get(keys[fi]); ok {
			hit[i] = sum
		} else {
			all = false
		}
	}
	if all {
		for i, fi := range scc {
			f := s.Funcs.Funcs[fi]
			hit[i].Name, hit[i].Entry, hit[i].Key = f.Name, f.Entry, keys[fi]
			s.sums[fi] = hit[i]
			s.Stats.Hits = append(s.Stats.Hits, f.Name)
			liveHits.Inc()
		}
		return
	}
	for _, fi := range scc {
		s.sums[fi].Key = keys[fi]
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range scc {
			if s.recompute(fi) {
				changed = true
			}
		}
	}
	for _, fi := range scc {
		f := s.Funcs.Funcs[fi]
		s.Stats.Computed = append(s.Stats.Computed, f.Name)
		liveComputed.Inc()
		cache.Put(keys[fi], s.sums[fi])
	}
}

// recompute refreshes every entry of function fi's summary from the current
// callee summaries, reporting whether anything grew.
func (s *Set) recompute(fi int) bool {
	f := s.Funcs.Funcs[fi]
	sum := s.sums[fi]
	if f.Opaque {
		ch := sum.Mem.merge(maximalEffect)
		for r := 1; r < isa.NumRegs; r++ {
			if sum.Regs[r].merge(maximalEffect) {
				ch = true
			}
		}
		return ch
	}
	changed := false
	for r := 1; r < isa.NumRegs; r++ {
		le := s.propagate(fi, f.Entry, flowState{regs: analysis.RegSet(0).Add(isa.Reg(r))})
		if sum.Regs[r].merge(le) {
			changed = true
		}
	}
	if sum.Mem.merge(s.propagate(fi, f.Entry, flowState{mem: true})) {
		changed = true
	}
	return changed
}
