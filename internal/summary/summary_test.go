package summary

import (
	"testing"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/asm"
	"symplfied/internal/isa"
)

// findOp returns the pc of the n-th instruction with the given opcode.
func findOp(t *testing.T, prog *isa.Program, op isa.Op, n int) int {
	t.Helper()
	for pc := 0; pc < prog.Len(); pc++ {
		if prog.At(pc).Op == op {
			if n == 0 {
				return pc
			}
			n--
		}
	}
	t.Fatalf("no %v (n=%d) in program", op, n)
	return -1
}

func TestPartitionTCAS(t *testing.T) {
	prog := tcas.Program()
	fs := Partition(prog, nil)
	if len(fs.Funcs) < 8 {
		t.Fatalf("tcas partition found %d functions, want >= 8", len(fs.Funcs))
	}
	if fs.Funcs[0].Entry != 0 {
		t.Fatalf("first function entry = %d, want 0", fs.Funcs[0].Entry)
	}
	byName := map[string]*Func{}
	for _, f := range fs.Funcs {
		byName[f.Name] = f
	}
	for _, want := range []string{"alt_sep_test", "NCBC", "Own_Below_Threat"} {
		f, ok := byName[want]
		if !ok {
			t.Fatalf("function %q not discovered (have %v)", want, names(fs))
		}
		if f.Opaque {
			t.Errorf("%s is opaque: %s", want, f.OpaqueReason)
		}
		if len(f.Exits) == 0 {
			t.Errorf("%s has no jr $31 exits", want)
		}
	}
	// alt_sep_test is the non-leaf hub: it must see its callees.
	if f := byName["alt_sep_test"]; len(f.Calls) < 2 {
		t.Errorf("alt_sep_test call sites = %d, want >= 2", len(f.Calls))
	}
}

func names(fs *Funcs) []string {
	var out []string
	for _, f := range fs.Funcs {
		out = append(out, f.Name)
	}
	return out
}

// effect builds the summary set for src and returns EffectOf(pc, r).
func effectAt(t *testing.T, src string, pc int, r isa.Reg) Effect {
	t.Helper()
	u := asm.MustParse("t", src)
	s := Build(u.Program, u.Detectors, nil)
	e, ok := s.EffectOf(pc, r)
	if !ok {
		t.Fatalf("EffectOf(%d, %s) unclassifiable", pc, r)
	}
	return e
}

func TestTaintKilledBeforeUse(t *testing.T) {
	// err in $2 is overwritten before the print: provably benign.
	src := "\tli $2 #1\n\tprint $2\n\thalt\n"
	if e := effectAt(t, src, 0, 2); !e.Benign() {
		t.Fatalf("killed taint effect = %v, want none", e)
	}
}

func TestTaintReachesOutput(t *testing.T) {
	src := "\tprint $2\n\thalt\n"
	if e := effectAt(t, src, 0, 2); e != EffOutput {
		t.Fatalf("printed taint effect = %v, want output", e)
	}
}

func TestTaintReachesControl(t *testing.T) {
	src := "\tbeqi $2 #0 end\nend:\thalt\n"
	if e := effectAt(t, src, 0, 2); e&EffControl == 0 {
		t.Fatalf("branch taint effect = %v, want control", e)
	}
}

func TestTaintReachesDetector(t *testing.T) {
	src := "\tdet(1, $2, ==, 0)\n\tcheck #1\n\thalt\n"
	if e := effectAt(t, src, 0, 2); e != EffDetector {
		t.Fatalf("checked taint effect = %v, want detector", e)
	}
}

func TestTaintThroughMemory(t *testing.T) {
	// err in $2 is stored, reloaded into $3, and printed.
	src := "\tst $2 0($0)\n\tld $3 0($0)\n\tprint $3\n\thalt\n"
	if e := effectAt(t, src, 0, 2); e != EffOutput {
		t.Fatalf("through-memory effect = %v, want output", e)
	}
	// A tainted address is a control effect.
	src2 := "\tld $3 0($2)\n\thalt\n"
	if e := effectAt(t, src2, 0, 2); e&EffControl == 0 {
		t.Fatalf("tainted-address effect = %v, want control", e)
	}
}

const callSrc = `
	li $1 #7
	jal f
	print $3
	halt
f:
	mov $3 $1
	jr $31
`

func TestCallComposition(t *testing.T) {
	u := asm.MustParse("t", callSrc)
	s := Build(u.Program, u.Detectors, nil)
	jal := findOp(t, u.Program, isa.OpJal, 0)
	print := findOp(t, u.Program, isa.OpPrint, 0)

	// err in $1 at the call: f copies it into $3, the caller prints $3.
	if e, ok := s.EffectOf(jal, 1); !ok || e != EffOutput {
		t.Fatalf("EffectOf(jal, $1) = %v ok=%v, want output", e, ok)
	}
	// err in $1 after the call: nothing reads $1 again — benign.
	if e, ok := s.EffectOf(print, 1); !ok || !e.Benign() {
		t.Fatalf("EffectOf(print, $1) = %v ok=%v, want none", e, ok)
	}
	// err in $2 anywhere: never read — benign.
	if e, ok := s.EffectOf(jal, 2); !ok || !e.Benign() {
		t.Fatalf("EffectOf(jal, $2) = %v ok=%v, want none", e, ok)
	}
	// The callee's own summary records the escape into $3.
	f, ok := s.Funcs.ByEntry(u.Program.At(jal).Target)
	if !ok {
		t.Fatal("callee not discovered")
	}
	var fi int
	for i, g := range s.Funcs.Funcs {
		if g == f {
			fi = i
		}
	}
	le := s.Summaries()[fi].Regs[1]
	if !le.Out.Has(3) || !le.Out.Has(1) {
		t.Fatalf("callee summary out-set = %v, want {$1,$3}", le.Out)
	}
}

// TestTaintEscapeToCaller checks the continuation composition: taint that
// survives the callee's return is judged by what the caller does next.
func TestTaintEscapeToCaller(t *testing.T) {
	u := asm.MustParse("t", callSrc)
	s := Build(u.Program, u.Detectors, nil)
	// err in $1 at f's entry (the mov): copied to $3, escapes, and the
	// caller prints $3 — the callee-local view alone would call it silent.
	f := findOp(t, u.Program, isa.OpMov, 0)
	if e, ok := s.EffectOf(f, 1); !ok || e != EffOutput {
		t.Fatalf("EffectOf(mov, $1) = %v ok=%v, want output via caller continuation", e, ok)
	}
}

const twoCalleeSrc = `
	jal f
	jal h
	halt
f:
	addi $4 $4 #1
	jr $31
h:
	addi $5 $5 #2
	jr $31
`

func TestIncrementalKeys(t *testing.T) {
	u := asm.MustParse("t", twoCalleeSrc)
	cache := NewCache(0, nil)
	s1 := Build(u.Program, u.Detectors, cache)
	if len(s1.Stats.Hits) != 0 || len(s1.Stats.Computed) != 3 {
		t.Fatalf("cold build: computed %v hits %v", s1.Stats.Computed, s1.Stats.Hits)
	}
	// Unchanged rebuild: pure cache hit for every function.
	s2 := Build(u.Program, u.Detectors, cache)
	if len(s2.Stats.Computed) != 0 || len(s2.Stats.Hits) != 3 {
		t.Fatalf("warm build: computed %v hits %v", s2.Stats.Computed, s2.Stats.Hits)
	}
	// In-place mutation of h: only h and its caller (@0) re-key; f hits.
	mut := asm.MustParse("t", "\tjal f\n\tjal h\n\thalt\nf:\taddi $4 $4 #1\n\tjr $31\nh:\taddi $5 $5 #3\n\tjr $31\n")
	s3 := Build(mut.Program, mut.Detectors, cache)
	if got, want := setOf(s3.Stats.Computed), setOf([]string{"@0", "h"}); !sameSet(got, want) {
		t.Fatalf("mutated build recomputed %v, want {@0, h}", s3.Stats.Computed)
	}
	if got := setOf(s3.Stats.Hits); !sameSet(got, setOf([]string{"f"})) {
		t.Fatalf("mutated build hit %v, want {f}", s3.Stats.Hits)
	}
}

func setOf(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	u := asm.MustParse("t", twoCalleeSrc)
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := Build(u.Program, u.Detectors, NewCache(0, store))
	if len(s1.Stats.Computed) != 3 {
		t.Fatalf("cold: computed %v", s1.Stats.Computed)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory is warm.
	store2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Len() != 3 {
		t.Fatalf("reopened store has %d entries, want 3", store2.Len())
	}
	s2 := Build(u.Program, u.Detectors, NewCache(0, store2))
	if len(s2.Stats.Computed) != 0 || len(s2.Stats.Hits) != 3 {
		t.Fatalf("warm from disk: computed %v hits %v", s2.Stats.Computed, s2.Stats.Hits)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, nil)
	c.Put("a", &FuncSummary{Name: "a"})
	c.Put("b", &FuncSummary{Name: "b"})
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest entry not evicted at capacity 1")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("newest entry missing")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestOpaqueGuards(t *testing.T) {
	// Indirect jr: the containing function must be opaque.
	u := asm.MustParse("t", "\tjr $5\n")
	s := Build(u.Program, u.Detectors, nil)
	if !s.Funcs.Funcs[0].Opaque {
		t.Fatal("indirect jr did not mark the function opaque")
	}
	if e, ok := s.EffectOf(0, 2); !ok || e != EffAll {
		t.Fatalf("opaque effect = %v ok=%v, want EffAll", e, ok)
	}
	// mov into $31 is an undisciplined RA write.
	u2 := asm.MustParse("t", "\tmov $31 $3\n\tjr $31\n")
	s2 := Build(u2.Program, u2.Detectors, nil)
	if !s2.Funcs.Funcs[0].Opaque {
		t.Fatal("mov into $31 did not mark the function opaque")
	}
}

// TestTCASSummariesBenign spot-checks the summary classifier against
// liveness on the real program: summaries must (at least) classify benign
// everything the per-site liveness proof does, at the sites the partition
// covers.
func TestTCASSummariesClassify(t *testing.T) {
	prog := tcas.Program()
	s := Build(prog, nil, nil)
	benign := 0
	for pc := 0; pc < prog.Len(); pc++ {
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if e, ok := s.EffectOf(pc, r); ok && e.Benign() {
				benign++
			}
		}
	}
	if benign == 0 {
		t.Fatal("summaries classify nothing benign on tcas")
	}
	t.Logf("tcas: %d benign (pc, reg) sites", benign)
}
