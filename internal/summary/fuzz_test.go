package summary_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/query"
)

// fuzzRd draws bytes from the fuzz input, cycling (and defaulting to zero)
// so every input defines a complete program.
type fuzzRd struct {
	data []byte
	i    int
}

func (r *fuzzRd) next() byte {
	if len(r.data) == 0 {
		return 0
	}
	b := r.data[r.i%len(r.data)]
	r.i++
	return b
}

// genSource turns fuzz bytes into a program that respects the calling
// convention summary.Partition assumes: functions are entered by jal and
// return via jr $31, non-leaf functions save $31 to a private memory slot
// and restore it with ld before returning, and nothing else writes $31.
// Calls only go to strictly higher-indexed functions, so the call graph is
// acyclic and every generated program terminates.
func genSource(data []byte) string {
	r := &fuzzRd{data: data}
	nFuncs := 1 + int(r.next())%3

	var b strings.Builder
	body := func(n int) {
		for k := 0; k < n; k++ {
			reg := func() int { return 1 + int(r.next())%6 }
			switch r.next() % 6 {
			case 0:
				fmt.Fprintf(&b, "\taddi $%d $%d #%d\n", reg(), reg(), int(r.next())%16)
			case 1:
				fmt.Fprintf(&b, "\tli $%d #%d\n", reg(), int(r.next())%32)
			case 2:
				fmt.Fprintf(&b, "\tmov $%d $%d\n", reg(), reg())
			case 3:
				fmt.Fprintf(&b, "\tprint $%d\n", reg())
			case 4:
				fmt.Fprintf(&b, "\tst $%d %d($0)\n", reg(), int(r.next())%8)
			default:
				fmt.Fprintf(&b, "\tld $%d %d($0)\n", reg(), int(r.next())%8)
			}
		}
	}

	// main: body chunks interleaved with a call to every function.
	for i := 0; i < nFuncs; i++ {
		body(1 + int(r.next())%3)
		fmt.Fprintf(&b, "\tjal f%d\n", i)
	}
	body(1 + int(r.next())%2)
	fmt.Fprintf(&b, "\tprint $2\n\thalt\n")

	// Callees: each may call the next one, saving/restoring $31 in a slot
	// (100+8i) no body store can reach.
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&b, "f%d:\n", i)
		callsNext := i+1 < nFuncs && r.next()%2 == 0
		if callsNext {
			fmt.Fprintf(&b, "\tst $31 %d($0)\n", 100+8*i)
		}
		body(1 + int(r.next())%4)
		if callsNext {
			fmt.Fprintf(&b, "\tjal f%d\n", i+1)
			fmt.Fprintf(&b, "\tld $31 %d($0)\n", 100+8*i)
		}
		fmt.Fprintf(&b, "\tjr $31\n")
	}
	return b.String()
}

// FuzzSummaryCompose is the compositional-soundness fuzzer: for random
// programs with calls, a summarized sweep (with the SYMPLFIED_CHECK_SUMMARIES
// assertion re-exploring every reused report) must produce a report
// byte-identical to the plain whole-program sweep, apart from the Summarized
// markers. A composed summary that wrongly classifies an injection benign
// either panics in the cross-check or diverges the reports; both fail here.
func FuzzSummaryCompose(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xff, 0x10, 0x42, 0x99, 0x03, 0x77, 0x21, 0x5a})
	f.Add([]byte("summaries compose across call sites"))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := genSource(data)
		u, err := asm.Parse("fuzz", src)
		if err != nil {
			t.Fatalf("generator emitted unparsable program: %v\n%s", err, src)
		}
		q := query.Query{Class: faults.ClassRegister, Goal: query.GoalErrOutput}
		spec, err := q.Build(u.Program, u.Detectors, nil)
		if err != nil {
			// The fault-free reference run failed (e.g. a generated ld from
			// an uninitialized slot tripping nothing here — Build only fails
			// on infrastructure); nothing to compare.
			t.Skipf("spec build: %v", err)
		}
		spec.StateBudget = 5_000
		spec.DiscardStates = true
		if len(spec.Injections) > 120 {
			spec.Injections = spec.Injections[:120]
		}

		plain, err := checker.RunCtx(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}

		defer checker.SetCheckSummaries(true)()
		sumSpec := spec
		sumSpec.UseSummaries = true
		summarized, err := checker.RunCtx(context.Background(), sumSpec)
		if err != nil {
			t.Fatal(err)
		}

		// The markers are the one legitimate difference.
		for i := range summarized.PerInjection {
			summarized.PerInjection[i].Summarized = false
		}
		summarized.SummarizedInjections = 0
		// The spec carries the (unmarshalable) predicate closure; both runs
		// used the same one.
		summarized.Spec, plain.Spec = nil, nil

		got, err := json.Marshal(summarized)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(plain)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("summarized sweep diverges from plain sweep on:\n%s\nplain:      %s\nsummarized: %s", src, want, got)
		}
	})
}
