package checker

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"symplfied/internal/apps/factorial"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// stripStates nils the live terminal states, which are deliberately excluded
// from serialization (`json:"-"`); everything else must survive.
func stripStates(ir InjectionReport) InjectionReport {
	out := ir
	out.Findings = append([]Finding(nil), ir.Findings...)
	for i := range out.Findings {
		out.Findings[i].State = nil
	}
	return out
}

// TestInjectionReportJSONRoundTrip proves the wire protocol's core
// assumption: an InjectionReport — injection identity, outcome tallies,
// findings with their decision traces — round-trips through encoding/json
// without loss (modulo the live State, which is excluded by design and whose
// information content is captured in the summary fields and Trace).
func TestInjectionReportJSONRoundTrip(t *testing.T) {
	prog := factorial.Plain()
	subiPC, ok := factorial.SubiPC(prog)
	if !ok {
		t.Fatal("no subi in factorial program")
	}
	exec := symexec.DefaultOptions()
	exec.Watchdog = 400
	spec := Spec{
		Program:   prog,
		Input:     []int64{5},
		Exec:      exec,
		Predicate: OutcomeIs(symexec.OutcomeNormal),
	}
	inj := faults.Injection{Class: faults.ClassRegister, PC: subiPC, Occurrence: 2, Loc: isa.RegLoc(3)}
	ir, err := RunInjection(spec, inj)
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Findings) == 0 || len(ir.Outcomes) == 0 {
		t.Fatalf("exploration produced no material to round-trip: %+v", ir)
	}
	for _, f := range ir.Findings {
		if len(f.Trace) == 0 {
			t.Fatalf("finding recorded without a captured trace: %+v", f)
		}
	}

	data, err := json.Marshal(ir)
	if err != nil {
		t.Fatal(err)
	}
	var got InjectionReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if want := stripStates(ir); !reflect.DeepEqual(got, want) {
		t.Errorf("round trip lost information:\n got %+v\nwant %+v", got, want)
	}

	// Outcome map keys travel by name, not by constant ordinal, so the wire
	// format survives reordering of the Outcome constants.
	if !strings.Contains(string(data), `"normal"`) {
		t.Errorf("outcome keys not named on the wire: %s", data)
	}

	// A finding reloaded from JSON has no live state but keeps its trace.
	if len(got.Findings) > 0 {
		f := got.Findings[0]
		if f.State != nil {
			t.Error("live state travelled through JSON")
		}
		if len(f.TraceEvents()) == 0 {
			t.Error("reloaded finding lost its decision trace")
		}
	}
}

// TestOutcomeTextCompat: journals written before outcomes were named used
// bare integer keys; they must still decode.
func TestOutcomeTextCompat(t *testing.T) {
	var m map[symexec.Outcome]int
	if err := json.Unmarshal([]byte(`{"2": 3, "normal": 1}`), &m); err != nil {
		t.Fatal(err)
	}
	if m[symexec.OutcomeCrash] != 3 || m[symexec.OutcomeNormal] != 1 {
		t.Errorf("legacy outcome keys decoded wrong: %v", m)
	}
	var o symexec.Outcome
	if err := o.UnmarshalText([]byte("gibberish")); err == nil {
		t.Error("unknown outcome name accepted")
	}
	// Integers outside the defined range (a corrupt or hand-edited journal)
	// must be rejected, not deserialized into a nameless tally bucket.
	for _, bad := range []string{"0", "-1", "99"} {
		if err := o.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("out-of-range outcome %q accepted", bad)
		}
	}
}
