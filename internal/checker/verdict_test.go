package checker

import (
	"strings"
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// TestVerdictProven: a program whose detector catches every manifestation of
// the fault class is proven resilient — the paper's first output form
// ("Proof that program is resistant to errors").
func TestVerdictProven(t *testing.T) {
	// The detector checks the result against the independently known golden
	// value; an error in $1 or $2 before the add either trips the check or
	// is benign (the corrupted value happened to equal the correct one).
	// Note that a duplication-style check re-deriving "$1 + $2" would be
	// tautological here: the corrupted source feeds both sides, the affine
	// solver sees identical terms, and the check can never fire — the kind
	// of detector weakness SymPLFIED exists to expose.
	u := asm.MustParse("protected", `
	li $1 3
	li $2 4
	add $3 $1 $2
	check ($3 == 7)
	print $3
	halt
`)
	exec := symexec.DefaultOptions()
	exec.Watchdog = 100
	rep, err := Run(Spec{
		Program:   u.Program,
		Detectors: u.Detectors,
		Injections: []faults.Injection{
			{Class: faults.ClassRegister, PC: 2, Loc: isa.RegLoc(1)},
			{Class: faults.ClassRegister, PC: 2, Loc: isa.RegLoc(2)},
		},
		Exec:      exec,
		Predicate: HaltedOutputOtherThan(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Verdict(); got != VerdictProven {
		for _, f := range rep.Findings {
			t.Logf("finding: %s", f.Describe())
		}
		t.Fatalf("verdict %v, want proven (findings %d)", got, len(rep.Findings))
	}
}

// TestVerdictRefuted: the unprotected variant is refuted with the escaping
// errors enumerated.
func TestVerdictRefuted(t *testing.T) {
	u := asm.MustParse("unprotected", `
	li $1 3
	li $2 4
	add $3 $1 $2
	print $3
	halt
`)
	exec := symexec.DefaultOptions()
	exec.Watchdog = 100
	rep, err := Run(Spec{
		Program: u.Program,
		Injections: []faults.Injection{
			{Class: faults.ClassRegister, PC: 2, Loc: isa.RegLoc(1)},
		},
		Exec:      exec,
		Predicate: HaltedOutputOtherThan(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict() != VerdictRefuted {
		t.Fatalf("verdict %v, want refuted", rep.Verdict())
	}
	if len(rep.Findings) == 0 {
		t.Fatal("refuted without findings")
	}
}

// TestVerdictInconclusive: a blown budget downgrades absence of findings.
func TestVerdictInconclusive(t *testing.T) {
	u := asm.MustParse("loopy", `
	read $1
loop:	subi $1 $1 1
	bnei $1 0 loop
	print $1
	halt
`)
	exec := symexec.DefaultOptions()
	exec.Watchdog = 100_000
	rep, err := Run(Spec{
		Program: u.Program,
		Input:   []int64{1000},
		Injections: []faults.Injection{
			{Class: faults.ClassRegister, PC: 1, Loc: isa.RegLoc(1)},
		},
		Exec:        exec,
		StateBudget: 100,
		Predicate:   HaltedOutputOtherThan(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BudgetBlown == 0 {
		t.Fatal("budget not blown as arranged")
	}
	if len(rep.Findings) == 0 && rep.Verdict() != VerdictInconclusive {
		t.Fatalf("verdict %v, want inconclusive", rep.Verdict())
	}
}

func TestVerdictStrings(t *testing.T) {
	for _, v := range []Verdict{VerdictProven, VerdictRefuted, VerdictInconclusive} {
		if strings.HasPrefix(v.String(), "verdict(") {
			t.Errorf("verdict %d lacks a name", int(v))
		}
	}
}

func TestPredicateCombinators(t *testing.T) {
	u := asm.MustParse("t", "\tprints \"x\"\n\thalt\n")
	st := symexec.NewState(u.Program, nil, nil, symexec.DefaultOptions())
	for st.Running() {
		st.StepInPlace()
	}

	always := Predicate{Name: "always", Match: func(*symexec.State) bool { return true }}
	never := Predicate{Name: "never", Match: func(*symexec.State) bool { return false }}

	if !Any(never, always).Match(st) || Any(never, never).Match(st) {
		t.Error("Any combinator wrong")
	}
	if All(always, never).Match(st) || !All(always, always).Match(st) {
		t.Error("All combinator wrong")
	}
	if got := Any(never, always).Name; !strings.Contains(got, "or") {
		t.Errorf("Any name %q", got)
	}
	if !Undetected(always).Match(st) {
		t.Error("Undetected rejected a normal halt")
	}
}

func TestPredicates(t *testing.T) {
	mk := func(src string, input []int64) *symexec.State {
		u := asm.MustParse("t", src)
		s := symexec.NewState(u.Program, u.Detectors, input, symexec.DefaultOptions())
		for s.Running() {
			if !s.StepInPlace() {
				t.Fatal("test program forked")
			}
		}
		return s
	}

	normal := mk("\tli $1 5\n\tprint $1\n\thalt\n", nil)
	if !HaltedOutputEquals(5).Match(normal) || HaltedOutputEquals(6).Match(normal) {
		t.Error("HaltedOutputEquals wrong")
	}
	if !HaltedOutputOtherThan(6).Match(normal) || HaltedOutputOtherThan(5).Match(normal) {
		t.Error("HaltedOutputOtherThan wrong")
	}
	if !IncorrectOutput("4").Match(normal) || IncorrectOutput("5").Match(normal) {
		t.Error("IncorrectOutput wrong")
	}
	if OutputContainsErr().Match(normal) {
		t.Error("OutputContainsErr matched a concrete output")
	}

	crash := mk("\tthrow \"x\"\n", nil)
	if !OutcomeIs(symexec.OutcomeCrash).Match(crash) {
		t.Error("OutcomeIs(crash) wrong")
	}
	if !ExceptionOfKind(isa.ExcThrow).Match(crash) || ExceptionOfKind(isa.ExcTimeout).Match(crash) {
		t.Error("ExceptionOfKind wrong")
	}
	if Undetected(OutcomeIs(symexec.OutcomeCrash)).Match(crash) != true {
		t.Error("Undetected over crash wrong")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Error("nil program accepted")
	}
	u := asm.MustParse("t", "\thalt\n")
	if _, err := Run(Spec{Program: u.Program}); err == nil {
		t.Error("nil predicate accepted")
	}
}

// TestDedupReducesStates: visited-state deduplication merges identical
// interleavings without changing findings.
func TestDedupReducesStates(t *testing.T) {
	u := asm.MustParse("t", `
	read $1
	beqi $1 0 a
a:	print $1
	halt
`)
	exec := symexec.DefaultOptions()
	exec.Watchdog = 100
	base := Spec{
		Program: u.Program,
		Input:   []int64{0},
		Injections: []faults.Injection{
			{Class: faults.ClassRegister, PC: 1, Loc: isa.RegLoc(1)},
		},
		Exec:      exec,
		Predicate: OutcomeIs(symexec.OutcomeNormal),
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Dedup = true
	deduped, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(deduped.Findings) == 0 {
		t.Fatal("dedup lost all findings")
	}
	if deduped.TotalStates > plain.TotalStates {
		t.Errorf("dedup explored more states (%d > %d)", deduped.TotalStates, plain.TotalStates)
	}
}
