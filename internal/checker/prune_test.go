package checker

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// tcasExhaustiveSpec builds the acceptance-criteria campaign: the exhaustive
// (sources=false) register space — every architectural register at every
// instruction, the 800x32 shape the paper's Section 6.1 prunes — restricted
// to the first maxInjections entries to keep the test fast. The slice is
// pc-major, so a prefix still covers whole sites (every register at each
// included pc), which is what pruning needs to show its savings.
func tcasExhaustiveSpec(maxInjections int) Spec {
	prog := tcas.Program()
	injections := faults.RegisterInjections(prog, false)
	if len(injections) > maxInjections {
		injections = injections[:maxInjections]
	}
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000
	return Spec{
		Program:     prog,
		Input:       tcas.UpwardInput().Slice(),
		Injections:  injections,
		Exec:        exec,
		Predicate:   HaltedOutputOtherThan(tcas.UpwardRA),
		StateBudget: 1500,
		Dedup:       true,
	}
}

// stripPruneMarkers clears the fields a pruned run legitimately adds, so the
// rest of the report can be compared byte-for-byte against an unpruned run.
func stripPruneMarkers(rep *Report) {
	rep.Spec = nil
	rep.PrunedInjections = 0
	for i := range rep.PerInjection {
		rep.PerInjection[i].Pruned = false
	}
}

// TestPruneDeadInjectionsTcasExhaustive is the acceptance-criteria test:
// on an exhaustive tcas register campaign, -prune-dead explores strictly
// fewer injections (measured by the live state counter — the report tallies
// are deliberately identical) while producing the identical per-injection
// verdict set. The check is stronger than verdict identity: after removing
// the Pruned markers, the two reports are byte-identical as JSON — every
// outcome tally, finding, and exec stat matches.
func TestPruneDeadInjectionsTcasExhaustive(t *testing.T) {
	spec := tcasExhaustiveSpec(4 * int(isa.NumRegs-1)) // four whole sites
	spec.Parallelism = 1

	before := liveStates.Value()
	plain, err := RunCtx(context.Background(), spec)
	if err != nil {
		t.Fatalf("unpruned run: %v", err)
	}
	plainStates := liveStates.Value() - before

	pruned := spec
	pruned.PruneDeadInjections = true
	before = liveStates.Value()
	prunedBefore := livePruned.Value()
	prunedRep, err := RunCtx(context.Background(), pruned)
	if err != nil {
		t.Fatalf("pruned run: %v", err)
	}
	prunedStates := liveStates.Value() - before

	if prunedRep.PrunedInjections == 0 {
		t.Fatalf("exhaustive campaign pruned nothing; liveness should find dead registers at every site")
	}
	if got := livePruned.Value() - prunedBefore; got != int64(prunedRep.PrunedInjections)-prunedSites(prunedRep) {
		t.Errorf("live pruned counter = %d, want %d (report count %d minus one representative per site)",
			got, int64(prunedRep.PrunedInjections)-prunedSites(prunedRep), prunedRep.PrunedInjections)
	}
	if prunedStates >= plainStates {
		t.Errorf("pruned run explored %d states, unpruned %d: pruning saved nothing", prunedStates, plainStates)
	}
	if len(prunedRep.PerInjection) != len(spec.Injections) {
		t.Fatalf("pruned run reported %d of %d injections: pruning must classify, not drop",
			len(prunedRep.PerInjection), len(spec.Injections))
	}

	// Per-injection verdicts (and everything else) identical.
	stripPruneMarkers(plain)
	stripPruneMarkers(prunedRep)
	plainJSON, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	prunedJSON, err := json.Marshal(prunedRep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainJSON, prunedJSON) {
		for i := range plain.PerInjection {
			a, b := plain.PerInjection[i], prunedRep.PerInjection[i]
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			if !bytes.Equal(aj, bj) {
				t.Errorf("first divergence at injection %d (%s):\nunpruned: %s\npruned:   %s", i, a.Injection, aj, bj)
				break
			}
		}
		t.Fatalf("pruned report differs from unpruned beyond the Pruned markers")
	}
}

// prunedSites counts distinct breakpoints among the report's pruned
// injections: each contributes one representative exploration, so the live
// elision counter runs one short of the report's Pruned count per site.
func prunedSites(rep *Report) int64 {
	sites := map[pruneSite]bool{}
	for _, ir := range rep.PerInjection {
		if ir.Pruned {
			sites[site(ir.Injection)] = true
		}
	}
	return int64(len(sites))
}

// TestPruneParallelDeterminism checks the racing-representative case: with a
// worker pool, whichever dead injection reaches a site first becomes the
// representative, and the merged report must still be byte-identical to the
// sequential pruned run's.
func TestPruneParallelDeterminism(t *testing.T) {
	spec := tcasExhaustiveSpec(3 * int(isa.NumRegs-1))
	spec.PruneDeadInjections = true
	assertParallelMatchesSequential(t, "tcas-pruned", spec)
}

// TestPruneCrossCheck runs a pruned campaign with the SYMPLFIED_CHECK_PRUNING
// assertion armed: every reused report is re-derived by a real exploration
// and any divergence panics. Surviving the run discharges the liveness
// proof obligation on this campaign.
func TestPruneCrossCheck(t *testing.T) {
	old := checkPruning
	checkPruning = true
	defer func() { checkPruning = old }()

	spec := tcasExhaustiveSpec(2 * int(isa.NumRegs-1))
	spec.PruneDeadInjections = true
	spec.Parallelism = 1
	rep, err := RunCtx(context.Background(), spec)
	if err != nil {
		t.Fatalf("cross-checked pruned run: %v", err)
	}
	if rep.PrunedInjections == 0 {
		t.Fatalf("cross-check exercised nothing: no injections were pruned")
	}
}

// TestPrunableClassification pins what the liveness proof is allowed to
// touch: transient register errors into dead registers only — never memory,
// never permanent faults, never a live register.
func TestPrunableClassification(t *testing.T) {
	prog := tcas.Program()
	p := NewPruneContext(prog, nil)

	// Find one dead and one live (pc, register) pair from the analysis
	// itself. Entry liveness may be empty on a clean program, so the live
	// pair is scanned across all pcs.
	var dead, live isa.Reg
	var livePC int
	for r := isa.Reg(1); r < isa.NumRegs && dead == 0; r++ {
		if p.Analysis().DeadAt(0, r) {
			dead = r
		}
	}
scan:
	for pc := 0; pc < prog.Len(); pc++ {
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if !p.Analysis().DeadAt(pc, r) {
				live, livePC = r, pc
				break scan
			}
		}
	}
	if dead == 0 || live == 0 {
		t.Fatalf("tcas should have both dead and live registers (dead=%v live=%v)", dead, live)
	}

	deadInj := faults.Injection{Class: faults.ClassRegister, PC: 0, Loc: isa.RegLoc(dead)}
	if !p.Prunable(deadInj) {
		t.Errorf("dead transient register injection not prunable")
	}
	if p.Prunable(faults.Injection{Class: faults.ClassRegister, PC: livePC, Loc: isa.RegLoc(live)}) {
		t.Errorf("live register injection wrongly prunable")
	}
	perm := deadInj
	perm.Permanent = true
	if p.Prunable(perm) {
		t.Errorf("permanent fault wrongly prunable: stuck-at faults survive the overwrite")
	}
	if p.Prunable(faults.Injection{Class: faults.ClassMemory, PC: 0, Loc: isa.MemLoc(8)}) {
		t.Errorf("memory injection wrongly prunable")
	}
	var nilCtx *PruneContext
	if nilCtx.Prunable(deadInj) {
		t.Errorf("nil context must prune nothing")
	}
}

// TestPruneReuseBudgetGuard pins the reuse conditions under a changing
// budget: a memo that completed within budget is reusable under any budget
// at least that large, and a budget-exhausted memo only under the exact
// budget it ran with.
func TestPruneReuseBudgetGuard(t *testing.T) {
	p := NewPruneContext(tcas.Program(), nil)
	inj := faults.Injection{Class: faults.ClassRegister, PC: 3, Loc: isa.RegLoc(7)}

	clean := InjectionReport{Injection: inj, Activated: true, StatesExplored: 500}
	p.sites.store(inj, clean, 1500)
	if _, ok := p.sites.reuse(inj, 1500); !ok {
		t.Errorf("clean memo not reused under its own budget")
	}
	if _, ok := p.sites.reuse(inj, 400); ok {
		t.Errorf("memo using 500 states reused under a 400-state budget")
	}

	inj2 := faults.Injection{Class: faults.ClassRegister, PC: 4, Loc: isa.RegLoc(7)}
	blown := InjectionReport{Injection: inj2, Activated: true, StatesExplored: 1500, BudgetExhausted: true}
	p.sites.store(inj2, blown, 1500)
	if _, ok := p.sites.reuse(inj2, 1500); !ok {
		t.Errorf("budget-exhausted memo not reused under the same budget")
	}
	if _, ok := p.sites.reuse(inj2, 2000); ok {
		t.Errorf("budget-exhausted memo reused under a larger budget: the exploration would differ")
	}

	inj3 := faults.Injection{Class: faults.ClassRegister, PC: 5, Loc: isa.RegLoc(7)}
	found := InjectionReport{Injection: inj3, Activated: true, Findings: []Finding{{Injection: inj3}}}
	p.sites.store(inj3, found, 1500)
	if _, ok := p.sites.reuse(inj3, 1500); ok {
		t.Errorf("memo with findings reused: findings name the injected location and cannot be rewritten")
	}
}
