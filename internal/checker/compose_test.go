package checker

import (
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// composedProgram has a detector-protected component (the checked sum) and
// an unprotected tail, so the compositional analysis discharges the first
// region and localizes the escaping errors in the second.
const composedProgram = `
-- protected component: compute and check
	li $1 3
	li $2 4
	add $3 $1 $2
	check ($3 == 7)
-- unprotected tail: scale and print
	multi $4 $3 10
	print $4
	halt
`

func composedSpec(t *testing.T) (Spec, []faults.Injection) {
	t.Helper()
	u := asm.MustParse("composed", composedProgram)
	exec := symexec.DefaultOptions()
	exec.Watchdog = 100
	injs := faults.RegisterInjections(u.Program, true)
	return Spec{
		Program:    u.Program,
		Detectors:  u.Detectors,
		Injections: injs,
		Exec:       exec,
		Predicate:  HaltedOutputOtherThan(70),
	}, injs
}

func TestProveComponent(t *testing.T) {
	spec, _ := composedSpec(t)
	proof, err := ProveComponent(spec, Component{Name: "checked-sum", Lo: 0, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}
	if proof.Verdict != VerdictProven {
		for _, f := range proof.Report.Findings {
			t.Logf("escaping: %s", f.Describe())
		}
		t.Fatalf("protected component verdict %v, want proven", proof.Verdict)
	}

	// The unprotected tail is refuted in isolation.
	proof, err = ProveComponent(spec, Component{Name: "tail", Lo: 4, Hi: 6})
	if err != nil {
		t.Fatal(err)
	}
	if proof.Verdict != VerdictRefuted {
		t.Fatalf("unprotected tail verdict %v, want refuted", proof.Verdict)
	}

	if _, err := ProveComponent(spec, Component{Name: "bad", Lo: 5, Hi: 2}); err == nil {
		t.Error("empty range accepted")
	}
}

func TestRunComposedPrunes(t *testing.T) {
	spec, injs := composedSpec(t)
	rep, proofs, err := RunComposed(spec, []Component{{Name: "checked-sum", Lo: 0, Hi: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(proofs) != 1 || proofs[0].Verdict != VerdictProven {
		t.Fatalf("proofs %v", proofs)
	}
	// The composed run explores only the tail's injections.
	var tail int
	for _, inj := range injs {
		if inj.PC >= 4 {
			tail++
		}
	}
	if got := len(rep.Spec.Injections); got != tail {
		t.Errorf("composed run explored %d injections, want %d (tail only)", got, tail)
	}
	// Findings localize in the unprotected region.
	if len(rep.Findings) == 0 {
		t.Fatal("composed run found nothing in the unprotected tail")
	}
	for _, f := range rep.Findings {
		if f.Injection.PC < 4 {
			t.Errorf("finding in a discharged region: %s", f.Injection)
		}
	}
}

// TestPruneKeepsUnprovenComponents: a refuted component does not discharge
// its injections.
func TestPruneKeepsUnprovenComponents(t *testing.T) {
	injs := []faults.Injection{
		{Class: faults.ClassRegister, PC: 1, Loc: isa.RegLoc(1)},
		{Class: faults.ClassRegister, PC: 5, Loc: isa.RegLoc(1)},
	}
	proofs := []ComponentProof{
		{Component: Component{Lo: 0, Hi: 3}, Verdict: VerdictRefuted},
		{Component: Component{Lo: 4, Hi: 9}, Verdict: VerdictProven},
	}
	out := PruneProven(injs, proofs)
	if len(out) != 1 || out[0].PC != 1 {
		t.Errorf("pruned set %v", out)
	}
}
