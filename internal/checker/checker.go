// Package checker implements SymPLFIED's bounded model checker (paper
// Section 5.4): the analogue of Maude's search command. For each injection in
// a fault class it concretely executes the program up to the injection
// breakpoint (the paper's activation optimization), manifests the symbolic
// error, then exhaustively explores the nondeterministic successor relation
// breadth-first, classifying every terminal state and collecting those that
// satisfy the user predicate ("errors that evade detection and potentially
// lead to program failure").
package checker

import (
	"fmt"

	"symplfied/internal/detector"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

// DefaultStateBudget bounds the states explored per injection when the spec
// does not say otherwise. Budgets replace the paper's 30-minute wall-clock
// task allotment so runs are deterministic.
const DefaultStateBudget = 100_000

// Predicate selects the final states a search is looking for, corresponding
// to the "such that" clause of the paper's search command.
type Predicate struct {
	// Name describes the predicate in reports.
	Name string
	// Match examines a terminal state.
	Match func(*symexec.State) bool
}

// Spec describes one search.
type Spec struct {
	Program   *isa.Program
	Detectors *detector.Table
	Input     []int64
	// Injections is the fault class to sweep (one symbolic error per
	// execution, as in the paper's experiments).
	Injections []faults.Injection
	// Exec configures the symbolic executor.
	Exec symexec.Options
	// Predicate selects interesting terminal states.
	Predicate Predicate
	// MaxFindings caps collected findings per injection; 0 means unlimited.
	// (The paper capped each search task at 10 errors.)
	MaxFindings int
	// StateBudget bounds explored states per injection; 0 selects
	// DefaultStateBudget.
	StateBudget int
	// Dedup enables visited-state deduplication. States are keyed on the
	// full configuration including the step counter, so deduplication only
	// merges genuinely identical interleavings and never masks hangs.
	Dedup bool
	// KeepStates retains the final state (with trace) on findings. Always
	// on; present for future memory tuning.
	KeepStates bool
}

// Finding is a terminal state matching the predicate, with provenance.
type Finding struct {
	Injection faults.Injection
	State     *symexec.State
}

// Describe renders the finding for reports.
func (f Finding) Describe() string {
	return fmt.Sprintf("%s => outcome %s, output %q, symbolic state: %s",
		f.Injection, f.State.Outcome(), f.State.OutputString(), f.State.Sym.Describe())
}

// InjectionReport records the exploration of one injection.
type InjectionReport struct {
	Injection faults.Injection
	// Activated is false when the fault-free execution never reached the
	// breakpoint, so the fault was never manifested.
	Activated bool
	// StatesExplored counts states expanded.
	StatesExplored int
	// TerminalStates counts terminal states classified.
	TerminalStates int
	// Outcomes tallies terminal states by outcome.
	Outcomes map[symexec.Outcome]int
	// Findings holds predicate matches (capped at MaxFindings).
	Findings []Finding
	// BudgetExhausted is true when the state budget expired before the
	// frontier emptied; results are then a sound subset.
	BudgetExhausted bool
	// Truncated is true when a fork fan-out cap dropped successors.
	Truncated bool
}

// Report aggregates a whole search.
type Report struct {
	Spec          *Spec
	PerInjection  []InjectionReport
	Findings      []Finding
	Outcomes      map[symexec.Outcome]int
	TotalStates   int
	NotActivated  int
	BudgetBlown   int
	AnyTruncation bool
}

// Verdict is the framework's overall answer (paper Section 3.1, Outputs):
// either a proof that the program (with its detectors) is resilient to the
// error class, or the enumeration of the errors that evade detection.
type Verdict int

// Verdicts.
const (
	// VerdictProven: the exhaustive search completed within budget without
	// truncation and found no error satisfying the predicate — the paper's
	// "proof that the program with the embedded detectors is resilient to
	// the error class considered" (for the analyzed input).
	VerdictProven Verdict = iota + 1
	// VerdictRefuted: at least one error in the class satisfies the
	// predicate; the findings enumerate them.
	VerdictRefuted
	// VerdictInconclusive: nothing was found, but a state budget expired or
	// a fork fan-out cap truncated exploration, so absence is not proof.
	VerdictInconclusive
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictProven:
		return "proven resilient"
	case VerdictRefuted:
		return "refuted"
	case VerdictInconclusive:
		return "inconclusive"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Verdict classifies the report.
func (r *Report) Verdict() Verdict {
	if len(r.Findings) > 0 {
		return VerdictRefuted
	}
	if r.BudgetBlown > 0 || r.AnyTruncation {
		return VerdictInconclusive
	}
	return VerdictProven
}

// Run executes the search sequentially. See internal/cluster for the
// decomposed parallel driver.
func Run(spec Spec) (*Report, error) {
	if spec.Program == nil {
		return nil, fmt.Errorf("checker: nil program")
	}
	if spec.Predicate.Match == nil {
		return nil, fmt.Errorf("checker: nil predicate")
	}
	rep := &Report{
		Spec:         &spec,
		PerInjection: make([]InjectionReport, 0, len(spec.Injections)),
		Outcomes:     make(map[symexec.Outcome]int),
	}
	for _, inj := range spec.Injections {
		ir, err := RunInjection(spec, inj)
		if err != nil {
			return nil, fmt.Errorf("checker: %s: %w", inj, err)
		}
		rep.PerInjection = append(rep.PerInjection, ir)
		rep.Findings = append(rep.Findings, ir.Findings...)
		rep.TotalStates += ir.StatesExplored
		for o, n := range ir.Outcomes {
			rep.Outcomes[o] += n
		}
		if !ir.Activated {
			rep.NotActivated++
		}
		if ir.BudgetExhausted {
			rep.BudgetBlown++
		}
		rep.AnyTruncation = rep.AnyTruncation || ir.Truncated
	}
	return rep, nil
}

// RunInjection explores a single injection and returns its report.
func RunInjection(spec Spec, inj faults.Injection) (InjectionReport, error) {
	ir := InjectionReport{
		Injection: inj,
		Outcomes:  make(map[symexec.Outcome]int),
	}
	budget := spec.StateBudget
	if budget <= 0 {
		budget = DefaultStateBudget
	}

	// Concrete prefix up to the breakpoint.
	m := machine.New(spec.Program, spec.Input, machine.Options{
		Watchdog:  spec.Exec.Watchdog,
		Detectors: spec.Detectors,
	})
	if !m.RunUntil(inj.PC, inj.Occurrence) {
		return ir, nil // fault never activated
	}
	ir.Activated = true

	st := symexec.FromMachine(m, spec.Detectors, spec.Exec)
	if consumed := m.InputConsumed(); consumed < len(spec.Input) {
		st.SetInput(spec.Input[consumed:])
	}

	initial, err := inj.Apply(st)
	if err != nil {
		return ir, err
	}

	// Breadth-first exhaustive exploration. Deterministic steps run in
	// place (StepInPlace) so only genuine forks pay for a state clone; each
	// executed step counts one state against the budget.
	frontier := initial
	var visited map[string]struct{}
	if spec.Dedup {
		visited = make(map[string]struct{}, 1024)
	}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		if visited != nil {
			k := cur.Key()
			if _, seen := visited[k]; seen {
				continue
			}
			visited[k] = struct{}{}
		}
		for {
			if ir.StatesExplored >= budget {
				ir.BudgetExhausted = true
				return ir, nil
			}
			ir.StatesExplored++
			ir.Truncated = ir.Truncated || cur.Truncated

			if !cur.Running() {
				ir.TerminalStates++
				ir.Outcomes[cur.Outcome()]++
				if spec.Predicate.Match(cur) {
					if spec.MaxFindings == 0 || len(ir.Findings) < spec.MaxFindings {
						ir.Findings = append(ir.Findings, Finding{Injection: inj, State: cur})
					}
				}
				break
			}
			if cur.StepInPlace() {
				continue
			}
			frontier = append(frontier, cur.Successors()...)
			break
		}
	}
	return ir, nil
}
