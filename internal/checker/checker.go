// Package checker implements SymPLFIED's bounded model checker (paper
// Section 5.4): the analogue of Maude's search command. For each injection in
// a fault class it concretely executes the program up to the injection
// breakpoint (the paper's activation optimization), manifests the symbolic
// error, then exhaustively explores the nondeterministic successor relation
// breadth-first, classifying every terminal state and collecting those that
// satisfy the user predicate ("errors that evade detection and potentially
// lead to program failure").
//
// The checker is hardened for long campaigns (the paper ran its searches as
// cluster tasks with a 30-minute wall-clock allotment precisely because big
// symbolic searches die, hang and blow memory): RunCtx and RunInjectionCtx
// honor context cancellation and per-injection wall-clock deadlines, and a
// recover boundary isolates a panicking injection into its report instead of
// killing the whole campaign. See internal/campaign for the checkpointing
// runner built on top, and internal/cluster for the decomposed parallel
// driver.
package checker

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"symplfied/internal/detector"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/obs"
	"symplfied/internal/summary"
	"symplfied/internal/symbolic"
	"symplfied/internal/symexec"
	"symplfied/internal/trace"
)

// Live instruments on the default registry, resolved once so the BFS hot
// loop pays one atomic op per event, not a registry lookup. These feed
// -metrics-addr scrapes and the -progress line; the deterministic tallies
// that travel inside reports live in InjectionReport.Exec instead.
var (
	liveStates       = obs.Default().Counter(obs.MStates)
	liveFindings     = obs.Default().Counter(obs.MFindings)
	liveFrontier     = obs.Default().Gauge(obs.MFrontier)
	liveInjections   = obs.Default().Counter(obs.MInjections)
	liveInjTimeouts  = obs.Default().Counter(obs.MInjTimeouts)
	liveInjPanics    = obs.Default().Counter(obs.MInjPanics)
	liveInternHits   = obs.Default().Gauge(obs.MInternHits)
	liveInternMisses = obs.Default().Gauge(obs.MInternMisses)
)

// DefaultStateBudget bounds the states explored per injection when the spec
// does not say otherwise. Budgets replace the paper's 30-minute wall-clock
// task allotment so runs are deterministic.
const DefaultStateBudget = 100_000

// ctxCheckMask gates how often the breadth-first loop polls ctx.Err(): every
// (ctxCheckMask+1) explored states. Polling is cheap but not free; 64 states
// keeps cancellation latency far below any human-visible delay.
const ctxCheckMask = 63

// Predicate selects the final states a search is looking for, corresponding
// to the "such that" clause of the paper's search command.
type Predicate struct {
	// Name describes the predicate in reports.
	Name string
	// Match examines a terminal state.
	Match func(*symexec.State) bool
}

// Spec describes one search.
type Spec struct {
	Program   *isa.Program
	Detectors *detector.Table
	Input     []int64
	// Injections is the fault class to sweep (one symbolic error per
	// execution, as in the paper's experiments).
	Injections []faults.Injection
	// Exec configures the symbolic executor.
	Exec symexec.Options
	// Predicate selects interesting terminal states.
	Predicate Predicate
	// MaxFindings caps collected findings per injection; 0 means unlimited.
	// (The paper capped each search task at 10 errors.)
	MaxFindings int
	// StateBudget bounds explored states per injection; 0 selects
	// DefaultStateBudget.
	StateBudget int
	// PerInjectionTimeout bounds the wall clock spent on a single injection,
	// the analogue of the paper's per-task time allotment alongside the
	// deterministic state budget. 0 means no wall-clock deadline. An expired
	// deadline marks the injection report TimedOut (and Interrupted); results
	// collected up to that point are a sound subset.
	PerInjectionTimeout time.Duration
	// Dedup enables visited-state deduplication. States are keyed on the
	// full configuration including the step counter, so deduplication only
	// merges genuinely identical interleavings and never masks hangs. Keys
	// are 64-bit hashes of the canonical state encoding (see
	// symexec.State.KeyHash); set symexec.CheckKeyCollisions to audit them
	// against the full encodings.
	Dedup bool
	// Parallelism sizes the worker pool RunCtx fans the injection sweep
	// across: 0 selects GOMAXPROCS, 1 forces the sequential sweep, and the
	// pool never exceeds the injection count. The merged report of an
	// uninterrupted parallel run is byte-identical to the sequential run's
	// (injection reports and findings in injection order, ExecStats merged
	// commutatively); only wall-clock-dependent outcomes (an expired
	// PerInjectionTimeout) can differ, exactly as they already do between
	// two sequential runs on different machines. Parallelism is an
	// operational knob: it never changes what is explored, and is therefore
	// excluded from the campaign fingerprint.
	Parallelism int
	// DiscardStates drops the terminal *symexec.State from findings once the
	// finding's summary fields (Outcome, Output, Sym) are captured, bounding
	// campaign memory: a retained state pins its memory image, constraint
	// store and trace. Leave false to keep full states for trace printing
	// and search-graph rendering.
	DiscardStates bool
	// PruneDeadInjections turns on liveness-based pruning of the injection
	// space (internal/analysis): a transient register injection into a
	// register proven dead at the breakpoint — every path writes it before
	// reading it — cannot propagate, so its exploration is the fault-free
	// continuation. The checker explores one representative per breakpoint
	// and reuses its report for the other dead registers there, marking every
	// such report Pruned. This generalizes the paper's Section 6.1 syntactic
	// pruning (inject only into registers the instruction uses) with a
	// dataflow proof, and changes no verdict: a pruned run's report is the
	// unpruned run's report plus Pruned markers. Set SYMPLFIED_CHECK_PRUNING
	// to have every reuse re-explored and asserted identical. Like
	// Parallelism, this is an operational knob excluded from the campaign
	// fingerprint.
	PruneDeadInjections bool
	// Prune carries the shared analysis and representative memo for a pruned
	// sweep. RunCtx populates it when PruneDeadInjections is set; callers
	// orchestrating their own sweeps (internal/cluster, internal/campaign)
	// install one PruneContext across all their task specs so representatives
	// are shared process-wide. Never serialized.
	Prune *PruneContext `json:"-"`
	// UseSummaries turns on compositional summary-based elision
	// (internal/summary): the program is partitioned into functions, each
	// function's fault summary is computed (or loaded from SummaryCache) once,
	// and a transient register injection the composed summaries prove benign —
	// the err provably reaches no output, detector, or control decision on any
	// continuation — reuses the site's fault-free representative exploration,
	// marked Summarized. Strictly subsumes PruneDeadInjections' per-site
	// liveness proof (a dead register's taint dies immediately) while also
	// eliding injections whose taint dies later, across call boundaries. Like
	// PruneDeadInjections, this is an operational knob excluded from the
	// campaign fingerprint: verdicts and report bytes are unchanged modulo
	// Summarized markers. Set SYMPLFIED_CHECK_SUMMARIES to have every reuse
	// re-explored and asserted identical.
	UseSummaries bool
	// SummaryCache optionally backs the summary build with a content-addressed
	// cache (in-memory LRU plus disk or coordinator store), making re-analysis
	// of unchanged functions a pure cache hit. Never serialized.
	SummaryCache *summary.Cache `json:"-"`
	// Summaries carries the built summary set and the per-site representative
	// memo for a summarized sweep, populated by RunCtx (or EnsureSummaries)
	// when UseSummaries is set. Never serialized.
	Summaries *SummaryContext `json:"-"`
	// MergeStates turns on post-dominator state merging (the program-level
	// analogue of veritesting's static merging): symbolic states that rejoin
	// at a control-flow merge point (internal/analysis post-dominators) with
	// identical concrete skeletons are fused into one representative carrying
	// the sibling worlds' constraint stores as a disjunction, the instructions
	// that cannot distinguish the worlds are executed once for all of them,
	// and deterministic event-free cycles are fast-forwarded to the watchdog.
	// Verdicts, terminal tallies and findings are unchanged (see MergeContext);
	// StatesExplored counts physical state observations, so merged reports
	// show the savings directly. Set SYMPLFIED_CHECK_MERGING to re-explore
	// every merged injection unmerged and panic on any drift. Like
	// PruneDeadInjections, this is an operational knob excluded from the
	// campaign fingerprint.
	MergeStates bool
	// Merge carries the shared control-flow analysis for a merged sweep.
	// RunCtx populates it when MergeStates is set; drivers fanning spec copies
	// across pools install one MergeContext so the analysis is shared. Never
	// serialized.
	Merge *MergeContext `json:"-"`
}

// Finding is a terminal state matching the predicate, with provenance. The
// summary fields are captured when the finding is recorded, so a finding
// stays self-describing after its State is discarded (Spec.DiscardStates) or
// when it is reloaded from a campaign checkpoint journal.
type Finding struct {
	Injection faults.Injection
	// Outcome classifies the terminal state.
	Outcome symexec.Outcome
	// Output is the rendered output stream at termination.
	Output string
	// Sym describes the symbolic state (constraint store) at termination.
	Sym string
	// Trace is the decision trace of the terminal state, captured when the
	// finding is recorded so it survives JSON transport (checkpoint journals,
	// the distributed wire protocol) where the live State cannot travel. The
	// paper calls this trace what makes findings actionable (Section 5.4).
	Trace []trace.Event `json:",omitempty"`
	// State is the full terminal state with its decision trace. Nil when the
	// spec set DiscardStates or the finding came from a checkpoint journal.
	State *symexec.State `json:"-"`
}

// newFinding captures a finding from a live terminal state.
func newFinding(inj faults.Injection, st *symexec.State, discard bool) Finding {
	f := Finding{
		Injection: inj,
		Outcome:   st.Outcome(),
		Output:    st.OutputString(),
		Sym:       st.Sym.Describe(),
		Trace:     st.Trace.Events(),
	}
	if !discard {
		f.State = st
	}
	return f
}

// TraceEvents returns the finding's decision trace: the serialized capture
// when present, falling back to the live state's trace for findings recorded
// before traces were captured (old checkpoint journals).
func (f Finding) TraceEvents() []trace.Event {
	if len(f.Trace) > 0 {
		return f.Trace
	}
	if f.State != nil {
		return f.State.Trace.Events()
	}
	return nil
}

// Describe renders the finding for reports.
func (f Finding) Describe() string {
	return fmt.Sprintf("%s => outcome %s, output %q, symbolic state: %s",
		f.Injection, f.Outcome, f.Output, f.Sym)
}

// InjectionReport records the exploration of one injection.
type InjectionReport struct {
	Injection faults.Injection
	// Activated is false when the fault-free execution never reached the
	// breakpoint, so the fault was never manifested.
	Activated bool
	// StatesExplored counts states expanded.
	StatesExplored int
	// TerminalStates counts terminal states classified.
	TerminalStates int
	// Outcomes tallies terminal states by outcome.
	Outcomes map[symexec.Outcome]int
	// DetectorHits tallies detected terminal states by the detector that
	// fired — per-detector coverage attribution, so hardened-vs-seed
	// campaigns can say which CHECK earned each detection. Nil until a
	// detection is attributed.
	DetectorHits map[int64]int `json:",omitempty"`
	// Findings holds predicate matches (capped at MaxFindings).
	Findings []Finding
	// BudgetExhausted is true when the state budget expired before the
	// frontier emptied; results are then a sound subset.
	BudgetExhausted bool
	// Truncated is true when a fork fan-out cap dropped successors.
	Truncated bool
	// Interrupted is true when the context was cancelled (or a deadline
	// expired) before the frontier emptied; results are a sound subset.
	Interrupted bool
	// TimedOut refines Interrupted: the wall-clock deadline (per-injection
	// or inherited) expired, as opposed to an explicit cancellation.
	TimedOut bool
	// Panicked is true when exploring this injection panicked; the panic was
	// isolated here instead of killing the campaign. Tallies reflect the
	// states explored before the panic.
	Panicked bool
	// PanicValue carries the recovered panic value when Panicked.
	PanicValue string
	// Error records an infrastructure failure (e.g. a malformed injection
	// spec) when a resilient runner chose to keep going instead of aborting.
	// Empty for clean explorations.
	Error string
	// Pruned is true when liveness proved this injection lands in a dead
	// register (Spec.PruneDeadInjections). The tallies are those of the
	// site's representative exploration — byte-identical to what exploring
	// this injection would have produced — so pruned and unpruned reports
	// stay comparable; the elided work shows up only in the live
	// symplfied_pruned_injections_total counter.
	Pruned bool `json:",omitempty"`
	// Summarized is true when the compositional summaries proved this
	// injection benign (Spec.UseSummaries): the err provably reaches no
	// output, detector, or control decision on any continuation. As with
	// Pruned, the tallies are the site representative's — byte-identical to
	// the elided exploration — and the elided work shows up only in the live
	// symplfied_summarized_injections_total counter.
	Summarized bool `json:",omitempty"`
	// Merged is true when the merged explorer (Spec.MergeStates) swept this
	// injection. Verdict-bearing fields (Activated, TerminalStates, Outcomes,
	// Findings, Truncated) match the unmerged exploration; StatesExplored and
	// the Exec tallies reflect the physical work actually done, which is the
	// point of merging. The marker is the one legitimate report difference
	// between a merged and an unmerged sweep of a completing search.
	Merged bool `json:",omitempty"`
	// Exec tallies how the exploration spent its budget (forks by kind,
	// solver prunes, dedup hits, frontier/depth high-water marks). The
	// tally is deterministic — derived from the search order, never the
	// wall clock — so journals, resume and the distributed protocol merge
	// it exactly like findings.
	Exec obs.ExecStats
}

// Failed reports whether the injection ended abnormally (panic, deadline,
// cancellation or infrastructure error) rather than completing its sweep.
func (ir InjectionReport) Failed() bool {
	return ir.Panicked || ir.Interrupted || ir.Error != ""
}

// Report aggregates a whole search.
type Report struct {
	Spec         *Spec
	PerInjection []InjectionReport
	Findings     []Finding
	Outcomes     map[symexec.Outcome]int
	// DetectorHits folds the per-injection detector attribution: how many
	// detected terminals each detector accounts for across the sweep.
	DetectorHits  map[int64]int `json:",omitempty"`
	TotalStates   int
	NotActivated  int
	BudgetBlown   int
	AnyTruncation bool
	// Interrupted is true when the search was cancelled or deadlined before
	// sweeping every injection: the report is a sound partial result.
	Interrupted bool
	// TimedOuts counts injections whose wall-clock deadline expired.
	TimedOuts int
	// Panics counts injections that panicked and were isolated.
	Panics int
	// Errors counts injections recorded with an infrastructure error by a
	// resilient runner.
	Errors int
	// PrunedInjections counts injections classified benign by the liveness
	// proof (Spec.PruneDeadInjections) instead of a fresh exploration.
	PrunedInjections int
	// SummarizedInjections counts injections classified benign by the
	// compositional summary proof (Spec.UseSummaries) instead of a fresh
	// exploration.
	SummarizedInjections int
	// MergedInjections counts injections swept by the merged explorer
	// (Spec.MergeStates).
	MergedInjections int
	// Exec is the merged per-injection exploration tally (Add folds each
	// InjectionReport.Exec in; counters sum, high-water marks take the max).
	Exec obs.ExecStats
}

// NewReport returns an empty report ready for Add.
func NewReport(spec *Spec) *Report {
	return &Report{
		Spec:         spec,
		PerInjection: make([]InjectionReport, 0, len(spec.Injections)),
		Outcomes:     make(map[symexec.Outcome]int),
	}
}

// Add merges one injection report into the aggregate. Exported so resilient
// runners (internal/campaign) can rebuild a merged report from journaled
// per-injection reports.
func (r *Report) Add(ir InjectionReport) {
	r.PerInjection = append(r.PerInjection, ir)
	r.Findings = append(r.Findings, ir.Findings...)
	r.TotalStates += ir.StatesExplored
	for o, n := range ir.Outcomes {
		r.Outcomes[o] += n
	}
	for id, n := range ir.DetectorHits {
		if r.DetectorHits == nil {
			r.DetectorHits = make(map[int64]int)
		}
		r.DetectorHits[id] += n
	}
	if !ir.Activated && !ir.Failed() {
		r.NotActivated++
	}
	if ir.BudgetExhausted {
		r.BudgetBlown++
	}
	r.AnyTruncation = r.AnyTruncation || ir.Truncated
	if ir.Interrupted {
		r.Interrupted = true
	}
	if ir.TimedOut {
		r.TimedOuts++
	}
	if ir.Panicked {
		r.Panics++
	}
	if ir.Error != "" {
		r.Errors++
	}
	if ir.Pruned {
		r.PrunedInjections++
	}
	if ir.Summarized {
		r.SummarizedInjections++
	}
	if ir.Merged {
		r.MergedInjections++
	}
	r.Exec.Merge(ir.Exec)
}

// Verdict is the framework's overall answer (paper Section 3.1, Outputs):
// either a proof that the program (with its detectors) is resilient to the
// error class, or the enumeration of the errors that evade detection.
type Verdict int

// Verdicts.
const (
	// VerdictProven: the exhaustive search completed within budget without
	// truncation and found no error satisfying the predicate — the paper's
	// "proof that the program with the embedded detectors is resilient to
	// the error class considered" (for the analyzed input).
	VerdictProven Verdict = iota + 1
	// VerdictRefuted: at least one error in the class satisfies the
	// predicate; the findings enumerate them.
	VerdictRefuted
	// VerdictInconclusive: nothing was found, but exploration was incomplete
	// — a state budget expired, a fork fan-out cap truncated exploration,
	// the search was interrupted or deadlined, or an injection panicked —
	// so absence is not proof.
	VerdictInconclusive
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictProven:
		return "proven resilient"
	case VerdictRefuted:
		return "refuted"
	case VerdictInconclusive:
		return "inconclusive"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Verdict classifies the report. Any incompleteness — blown budgets,
// truncation, interruption, deadlines, isolated panics or recorded errors —
// downgrades an empty result to inconclusive: a partial sweep cannot prove
// resilience.
func (r *Report) Verdict() Verdict {
	if len(r.Findings) > 0 {
		return VerdictRefuted
	}
	if r.BudgetBlown > 0 || r.AnyTruncation || r.Interrupted ||
		r.TimedOuts > 0 || r.Panics > 0 || r.Errors > 0 {
		return VerdictInconclusive
	}
	return VerdictProven
}

// Run executes the search with an un-cancellable context. See RunCtx.
func Run(spec Spec) (*Report, error) {
	return RunCtx(context.Background(), spec)
}

// RunCtx executes the search, fanning the injection sweep across a worker
// pool sized by spec.Parallelism (0: GOMAXPROCS; injections are independent,
// so the sweep is embarrassingly parallel). The merged report is
// deterministic: injection reports and findings appear in injection order
// and the counters merge commutatively, so an uninterrupted parallel run is
// byte-identical to a sequential one. When ctx is cancelled (or its deadline
// expires) mid-sweep, the reports of the injections that were swept are
// returned with Interrupted set rather than discarded.
func RunCtx(ctx context.Context, spec Spec) (*Report, error) {
	if spec.Program == nil {
		return nil, fmt.Errorf("checker: nil program")
	}
	if spec.Predicate.Match == nil {
		return nil, fmt.Errorf("checker: nil predicate")
	}
	// Resolve the pruning, summary and merge contexts once so every injection
	// in the sweep — sequential or parallel — shares one analysis, one summary
	// set, and one representative memo per breakpoint.
	spec.EnsurePrune()
	spec.EnsureSummaries()
	spec.EnsureMerge()
	if workers := poolSize(spec.Parallelism, len(spec.Injections)); workers > 1 {
		return runParallel(ctx, spec, workers)
	}
	rep := NewReport(&spec)
	for _, inj := range spec.Injections {
		if ctx.Err() != nil {
			rep.Interrupted = true
			break
		}
		ir, err := RunInjectionCtx(ctx, spec, inj)
		if err != nil {
			return nil, fmt.Errorf("checker: %s: %w", inj, err)
		}
		rep.Add(ir)
	}
	return rep, nil
}

// poolSize resolves a Parallelism knob against the amount of independent
// work: 0 means GOMAXPROCS, and a pool never exceeds the work count.
func poolSize(parallelism, work int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > work {
		parallelism = work
	}
	return parallelism
}

// runParallel is the parallel injection sweep behind RunCtx. Workers pull
// injection indexes from a channel and write each report into its index
// slot; the merge then folds the slots in injection order, so worker
// interleaving never shows in the report. Cancellation stops dispatch, and
// the injections never started leave the report marked Interrupted — the
// parallel analogue of the sequential sweep stopping mid-list.
func runParallel(ctx context.Context, spec Spec, workers int) (*Report, error) {
	// Pool-utilization gauges, shared with the cluster harness so one
	// -metrics-addr scrape shows every pool's width and busyness additively.
	reg := obs.Default()
	poolWorkers := reg.Gauge(obs.MWorkers)
	busyWorkers := reg.Gauge(obs.MBusyWorkers)
	poolWorkers.Add(int64(workers))
	defer poolWorkers.Add(-int64(workers))

	var (
		results = make([]InjectionReport, len(spec.Injections))
		errs    = make([]error, len(spec.Injections))
		settled = make([]bool, len(spec.Injections))
		next    = make(chan int)
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				busyWorkers.Add(1)
				results[i], errs[i] = RunInjectionCtx(ctx, spec, spec.Injections[i])
				settled[i] = true
				busyWorkers.Add(-1)
			}
		}()
	}
dispatch:
	for i := range spec.Injections {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	rep := NewReport(&spec)
	for i := range spec.Injections {
		if !settled[i] {
			rep.Interrupted = true
			continue
		}
		if errs[i] != nil {
			// Same contract as the sequential sweep: an infrastructure
			// error (e.g. a malformed injection) aborts the search. The
			// lowest-index error wins, which is what a sequential sweep
			// would have reported.
			return nil, fmt.Errorf("checker: %s: %w", spec.Injections[i], errs[i])
		}
		rep.Add(results[i])
	}
	return rep, nil
}

// RunInjection explores a single injection and returns its report.
func RunInjection(spec Spec, inj faults.Injection) (InjectionReport, error) {
	return RunInjectionCtx(context.Background(), spec, inj)
}

// RunInjectionCtx explores a single injection under ctx, additionally bounded
// by spec.PerInjectionTimeout when set. It never propagates a panic from the
// symbolic executor or the user predicate: a panic is recovered and recorded
// on the report (Panicked/PanicValue) so one poisoned injection cannot kill
// a campaign of thousands.
//
// When spec.PruneDeadInjections is set and liveness proves the injection
// benign (see PruneContext), the site's representative report is reused
// instead of exploring — the exploration is elided entirely, and the
// returned report (marked Pruned) is what the exploration would have
// produced. When spec.UseSummaries is set, the compositional summary proof
// (see SummaryContext) does the same for the strictly larger class of
// injections whose taint provably reaches nothing, marking reports
// Summarized; an injection both classifiers cover is credited to pruning,
// which is checked first.
func RunInjectionCtx(ctx context.Context, spec Spec, inj faults.Injection) (InjectionReport, error) {
	if prune := spec.EnsurePrune(); prune.Prunable(inj) {
		budget := spec.effectiveBudget()
		if reused, ok := prune.sites.reuse(inj, budget); ok {
			reused.Pruned = true
			livePruned.Inc()
			liveInjections.Inc() // the injection is classified, just not explored
			if checkPruning {
				checkPrunedReuse(ctx, spec, inj, reused)
			}
			return reused, nil
		}
		// First benign injection at this site: explore it for real and
		// memoize the result as the site's representative.
		ir, err := runInjectionChecked(ctx, spec, inj)
		if err == nil {
			prune.sites.store(inj, ir, budget)
			ir.Pruned = true
		}
		return ir, err
	}
	if sums := spec.EnsureSummaries(); sums.Benign(inj) {
		budget := spec.effectiveBudget()
		if reused, ok := sums.sites.reuse(inj, budget); ok {
			reused.Summarized = true
			liveSummarized.Inc()
			liveInjections.Inc()
			if checkSummaries {
				checkSummarizedReuse(ctx, spec, inj, reused)
			}
			return reused, nil
		}
		ir, err := runInjectionChecked(ctx, spec, inj)
		if err == nil {
			sums.sites.store(inj, ir, budget)
			ir.Summarized = true
		}
		return ir, err
	}
	return runInjectionChecked(ctx, spec, inj)
}

// runInjectionChecked explores the injection and, when the merging
// cross-check mode is armed (SYMPLFIED_CHECK_MERGING) and the exploration was
// merged, re-explores it unmerged and panics on any verdict drift. The check
// runs outside runInjectionReal's recover boundary on purpose: a failed
// equivalence obligation must abort the process, not become one more
// isolated injection panic in the report.
func runInjectionChecked(ctx context.Context, spec Spec, inj faults.Injection) (InjectionReport, error) {
	ir, err := runInjectionReal(ctx, spec, inj, true)
	if err == nil && checkMerging && ir.Merged {
		checkMergedExploration(ctx, spec, inj, ir)
	}
	return ir, err
}

// runInjectionReal performs the actual exploration behind RunInjectionCtx.
// publish gates the per-injection live-registry flush (injection counters
// and ExecStats): the SYMPLFIED_CHECK_PRUNING shadow exploration runs with
// publish=false so an audited pruned run keeps its injection accounting
// (the per-state counters still tick in the shadow — cross-checking is a
// debug mode, not a metrics-neutral one).
func runInjectionReal(ctx context.Context, spec Spec, inj faults.Injection, publish bool) (ir InjectionReport, err error) {
	ir = InjectionReport{
		Injection: inj,
		Outcomes:  make(map[symexec.Outcome]int),
	}
	if spec.PerInjectionTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.PerInjectionTimeout)
		defer cancel()
	}
	defer func() {
		if rec := recover(); rec != nil {
			// Keep the tallies gathered before the panic: they are a sound
			// subset, same as a budget- or deadline-bounded exploration.
			ir.Panicked = true
			ir.PanicValue = fmt.Sprint(rec)
			err = nil
		}
		// Flush this injection's deterministic tally into the live registry
		// so mid-campaign scrapes reflect completed injections.
		if publish {
			liveInjections.Inc()
			if ir.TimedOut {
				liveInjTimeouts.Inc()
			}
			if ir.Panicked {
				liveInjPanics.Inc()
			}
			ir.Exec.Publish(obs.Default())
			// The intern table is process-global, so its counters are gauges
			// refreshed to the current totals rather than per-report deltas.
			hits, misses := symbolic.InternStats()
			liveInternHits.Set(hits)
			liveInternMisses.Set(misses)
		}
	}()
	if mc := spec.EnsureMerge(); mc != nil {
		err = exploreInjectionMerged(ctx, spec, inj, &ir, mc)
	} else {
		err = exploreInjection(ctx, spec, inj, &ir)
	}
	return ir, err
}

// exploreInjection runs the concrete prefix and the breadth-first symbolic
// exploration, mutating ir as it goes so partial tallies survive a panic or
// an interruption.
func exploreInjection(ctx context.Context, spec Spec, inj faults.Injection, ir *InjectionReport) error {
	budget := spec.effectiveBudget()

	// Concrete prefix up to the breakpoint.
	m := machine.New(spec.Program, spec.Input, machine.Options{
		Watchdog:  spec.Exec.Watchdog,
		Detectors: spec.Detectors,
	})
	if !m.RunUntil(inj.PC, inj.Occurrence) {
		return nil // fault never activated
	}
	ir.Activated = true

	st := symexec.FromMachine(m, spec.Detectors, spec.Exec)
	st.Stats = &ir.Exec // shared by every forked state in this search
	if consumed := m.InputConsumed(); consumed < len(spec.Input) {
		st.SetInput(spec.Input[consumed:])
	}

	initial, err := inj.Apply(st)
	if err != nil {
		return err
	}

	// Breadth-first exhaustive exploration. Deterministic steps run in
	// place (StepInPlace) so only genuine forks pay for a state clone; each
	// executed step counts one state against the budget.
	//
	// The frontier is a head-indexed queue: popping advances head and nils
	// the slot so explored states are released to the GC immediately instead
	// of being pinned by the backing array for the whole search, and the
	// live window is compacted to the front once the dead prefix dominates.
	frontier := initial
	head := 0
	// Visited states are keyed by a 64-bit incremental hash of the canonical
	// encoding rather than the rendered Key() string — no sorting, no string
	// building in the hot loop. The Keyer audits hashes against the full
	// encodings when symexec.CheckKeyCollisions is set.
	var visited map[uint64]struct{}
	var keyer *symexec.Keyer
	if spec.Dedup {
		visited = make(map[uint64]struct{}, 1024)
		keyer = symexec.NewKeyer()
	}
	// The live frontier gauge carries this search's current width; sweeps
	// running in parallel each add their contribution, and the deferred
	// drain removes it however the exploration exits (including panics).
	var published int64
	defer func() { liveFrontier.Add(-published) }()
	syncFrontier := func() {
		width := int64(len(frontier) - head)
		ir.Exec.ObserveFrontier(len(frontier) - head)
		liveFrontier.Add(width - published)
		published = width
	}
	syncFrontier()
	for head < len(frontier) {
		cur := frontier[head]
		frontier[head] = nil
		head++
		if head >= 1024 && head*2 >= len(frontier) {
			n := copy(frontier, frontier[head:])
			frontier = frontier[:n]
			head = 0
		}
		if visited != nil {
			k := keyer.Hash(cur)
			if _, seen := visited[k]; seen {
				ir.Exec.CountDedup()
				continue
			}
			visited[k] = struct{}{}
		}
		for {
			if ir.StatesExplored >= budget {
				ir.BudgetExhausted = true
				return nil
			}
			if ir.StatesExplored&ctxCheckMask == 0 {
				if cerr := ctx.Err(); cerr != nil {
					ir.Interrupted = true
					ir.TimedOut = errors.Is(cerr, context.DeadlineExceeded)
					return nil
				}
			}
			ir.StatesExplored++
			liveStates.Inc()
			ir.Truncated = ir.Truncated || cur.Truncated

			if !cur.Running() {
				ir.TerminalStates++
				ir.Outcomes[cur.Outcome()]++
				if id, ok := cur.FiredDetector(); ok {
					if ir.DetectorHits == nil {
						ir.DetectorHits = make(map[int64]int)
					}
					ir.DetectorHits[id]++
				}
				ir.Exec.ObserveDepth(int64(cur.Steps))
				if spec.Predicate.Match(cur) {
					if spec.MaxFindings == 0 || len(ir.Findings) < spec.MaxFindings {
						ir.Findings = append(ir.Findings, newFinding(inj, cur, spec.DiscardStates))
						liveFindings.Inc()
					}
				}
				break
			}
			if cur.StepInPlace() {
				continue
			}
			ir.Exec.ObserveDepth(int64(cur.Steps))
			frontier = append(frontier, cur.Successors()...)
			break
		}
		syncFrontier()
	}
	return nil
}
