package checker

import (
	"context"
	"fmt"
	"os"
	"reflect"

	"symplfied/internal/detector"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/obs"
	"symplfied/internal/summary"
)

// liveSummarized counts explorations elided by a compositional summary
// proof; like the pruning counter, it measures work that did not happen —
// report contents stay identical to the unsummarized run's.
var liveSummarized = obs.Default().Counter(obs.MSummarizedInjections)

// CheckSummariesEnv names the environment variable that turns every reused
// summarized report into an assertion: the injection is explored anyway and
// the run panics if the exploration differs from the reused report. The
// summary proof composes per-function taint verdicts across call sites
// under the calling-convention assumption stated on summary.Partition; this
// mode discharges that proof obligation dynamically, following the
// SYMPLFIED_CHECK_PRUNING pattern.
const CheckSummariesEnv = "SYMPLFIED_CHECK_SUMMARIES"

var checkSummaries = os.Getenv(CheckSummariesEnv) != ""

// SetCheckSummaries arms (or disarms) the summary cross-check mode
// programmatically — the same switch CheckSummariesEnv flips at process
// start — and returns a function restoring the previous setting. Not safe
// to flip concurrently with a running sweep.
func SetCheckSummaries(on bool) (restore func()) {
	prev := checkSummaries
	checkSummaries = on
	return func() { checkSummaries = prev }
}

// SummaryContext carries the compositional summary set (internal/summary)
// and the per-site representative memo a summarized sweep shares across
// injections. Create one with NewSummaryContext and place it in
// Spec.Summaries, or just set Spec.UseSummaries and let RunCtx build it
// (consulting Spec.SummaryCache). Safe for concurrent use.
//
// Classification rests on the composed taint proof of summary.Set.EffectOf:
// an err injected into register r just before pc that provably reaches no
// output, no detector read, and no control decision — through every callee
// summary and every caller continuation — cannot change the exploration, so
// the checker explores one representative per breakpoint and reuses its
// report for the other benign registers at the same site, exactly like
// liveness pruning but across the strictly larger class of taint that dies
// later (or in a callee/caller) rather than immediately.
type SummaryContext struct {
	set   *summary.Set
	sites *siteMemo
}

// NewSummaryContext builds (or loads from cache, which may be nil) the
// summary set of prog under dets and returns a context ready to classify
// injections.
func NewSummaryContext(prog *isa.Program, dets *detector.Table, cache *summary.Cache) *SummaryContext {
	return &SummaryContext{
		set:   summary.Build(prog, dets, cache),
		sites: newSiteMemo(),
	}
}

// Set exposes the underlying summary set (for diagnostics and tests).
func (s *SummaryContext) Set() *summary.Set { return s.set }

// BuildStats reports the cache behavior of the context's summary build.
func (s *SummaryContext) BuildStats() summary.BuildStats { return s.set.Stats }

// Benign reports whether the composed summaries prove the injection cannot
// change any observable behavior: a transient register error whose taint
// reaches no output, detector, or control decision on any continuation.
func (s *SummaryContext) Benign(inj faults.Injection) bool {
	if s == nil || inj.Class != faults.ClassRegister || inj.Permanent || inj.Loc.IsMem {
		return false
	}
	e, ok := s.set.EffectOf(inj.PC, inj.Loc.Reg)
	return ok && e.Benign()
}

// EnsureSummaries resolves the spec's summary configuration: nil when
// summaries are off, the shared context when one is installed, or a freshly
// built one (installed on the spec) when UseSummaries is set. When pruning
// is also active, the two contexts share one representative memo — both
// classifications assert the exploration is the site's fault-free
// continuation, so a representative explored under either proof serves
// both. Drivers that fan spec copies across pools (internal/cluster,
// internal/campaign, internal/dist workers) call this once up front.
func (spec *Spec) EnsureSummaries() *SummaryContext {
	if !spec.UseSummaries || spec.Program == nil {
		return nil
	}
	if spec.Summaries == nil {
		spec.Summaries = NewSummaryContext(spec.Program, spec.Detectors, spec.SummaryCache)
		if prune := spec.EnsurePrune(); prune != nil {
			spec.Summaries.sites = prune.sites
		}
	}
	return spec.Summaries
}

// checkSummarizedReuse is the SYMPLFIED_CHECK_SUMMARIES assertion: explore
// the injection for real and panic on any divergence from the reused
// report. Like checkPrunedReuse, it runs outside the recover boundary on
// purpose — a failed proof obligation must abort the process.
func checkSummarizedReuse(ctx context.Context, spec Spec, inj faults.Injection, reused InjectionReport) {
	explored, err := runInjectionReal(ctx, spec, inj, false)
	if err != nil {
		panic(fmt.Sprintf("summary cross-check: %s: exploration failed: %v", inj, err))
	}
	if len(explored.Findings) > 0 {
		panic(fmt.Sprintf("summary cross-check: %s was classified benign but exploring it found %d finding(s): %s",
			inj, len(explored.Findings), explored.Findings[0].Describe()))
	}
	explored.Summarized = reused.Summarized // the marker is the one legitimate difference
	if !reflect.DeepEqual(normalizeForCheck(explored), normalizeForCheck(reused)) {
		panic(fmt.Sprintf("summary cross-check: %s: reused report diverges from exploration:\nreused:   %+v\nexplored: %+v",
			inj, reused, explored))
	}
}
