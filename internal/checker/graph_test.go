package checker

import (
	"strings"
	"testing"

	"symplfied/internal/apps/factorial"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

func exploreFactorialGraph(t *testing.T, maxNodes int) *Graph {
	t.Helper()
	prog := factorial.Plain()
	subiPC, _ := factorial.SubiPC(prog)
	exec := symexec.DefaultOptions()
	exec.Watchdog = 200
	g, err := ExploreGraph(Spec{
		Program: prog,
		Input:   []int64{3},
		Exec:    exec,
	}, faults.Injection{Class: faults.ClassRegister, PC: subiPC, Loc: isa.RegLoc(3)}, maxNodes)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExploreGraphStructure(t *testing.T) {
	g := exploreFactorialGraph(t, 0)
	if len(g.Nodes) == 0 || g.Truncated {
		t.Fatalf("nodes %d truncated %v", len(g.Nodes), g.Truncated)
	}
	// Exactly one root (the single register injection).
	roots := 0
	for _, n := range g.Nodes {
		if n.Parent == -1 {
			roots++
		}
		if n.Parent >= n.ID {
			t.Fatalf("node %d has a non-ancestor parent %d", n.ID, n.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("%d roots, want 1", roots)
	}
	terms := g.Terminals()
	if len(terms) == 0 {
		t.Fatal("no terminal nodes")
	}
	// Every terminal path starts at a root and is strictly step-increasing.
	for _, term := range terms {
		path := g.Path(term.ID)
		if g.Nodes[path[0]].Parent != -1 {
			t.Fatalf("path does not start at a root: %v", path)
		}
		for i := 1; i < len(path); i++ {
			if g.Nodes[path[i]].Steps < g.Nodes[path[i-1]].Steps {
				t.Fatalf("steps decrease along path: %v", path)
			}
		}
	}
	// The early-exit outcome (printing the partial product 3) appears.
	found := false
	for _, term := range terms {
		if term.Outcome == "normal" && strings.Contains(term.Output, "Factorial = 3") {
			found = true
		}
	}
	if !found {
		t.Error("early-exit terminal missing from the graph")
	}
}

func TestExploreGraphTruncation(t *testing.T) {
	g := exploreFactorialGraph(t, 5)
	if !g.Truncated || len(g.Nodes) != 5 {
		t.Fatalf("nodes %d truncated %v, want 5/true", len(g.Nodes), g.Truncated)
	}
}

func TestGraphDOT(t *testing.T) {
	g := exploreFactorialGraph(t, 0)
	dot := g.DOT()
	for _, want := range []string{"digraph symplfied", "->", "register error", "fillcolor=palegreen"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output lacks %q", want)
		}
	}
	// One edge per non-root node.
	if got, want := strings.Count(dot, "->"), len(g.Nodes)-1; got != want {
		t.Errorf("%d edges, want %d", got, want)
	}
}

func TestExploreGraphErrors(t *testing.T) {
	if _, err := ExploreGraph(Spec{}, faults.Injection{}, 0); err == nil {
		t.Error("nil program accepted")
	}
	prog := factorial.Plain()
	exec := symexec.DefaultOptions()
	exec.Watchdog = 200
	// Unreachable occurrence: never activated.
	subiPC, _ := factorial.SubiPC(prog)
	_, err := ExploreGraph(Spec{Program: prog, Input: []int64{3}, Exec: exec},
		faults.Injection{Class: faults.ClassRegister, PC: subiPC, Occurrence: 99, Loc: isa.RegLoc(3)}, 0)
	if err == nil {
		t.Error("unreachable breakpoint accepted")
	}
}
