package checker

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"symplfied/internal/apps/replace"
	"symplfied/internal/apps/tcas"
	"symplfied/internal/faults"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

// assertParallelMatchesSequential runs the spec sequentially and with a
// worker pool and asserts the merged reports are byte-identical as JSON.
// Spec is nilled before marshaling: it carries the predicate's match
// function, which json cannot encode, and it is the one field the two runs
// legitimately differ in (the Parallelism knob itself).
func assertParallelMatchesSequential(t *testing.T, name string, spec Spec) {
	t.Helper()

	seqSpec := spec
	seqSpec.Parallelism = 1
	seq, err := RunCtx(context.Background(), seqSpec)
	if err != nil {
		t.Fatalf("%s: sequential run: %v", name, err)
	}

	parSpec := spec
	parSpec.Parallelism = 4
	par, err := RunCtx(context.Background(), parSpec)
	if err != nil {
		t.Fatalf("%s: parallel run: %v", name, err)
	}

	seq.Spec, par.Spec = nil, nil
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatalf("%s: marshal sequential report: %v", name, err)
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatalf("%s: marshal parallel report: %v", name, err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Errorf("%s: parallel report differs from sequential\nsequential: %d findings, %d states\nparallel:   %d findings, %d states",
			name, len(seq.Findings), seq.TotalStates, len(par.Findings), par.TotalStates)
	}
	if len(seq.PerInjection) != len(spec.Injections) {
		t.Errorf("%s: swept %d of %d injections", name, len(seq.PerInjection), len(spec.Injections))
	}
}

// TestParallelReportByteIdenticalTcas checks the tentpole determinism claim
// on the Section 6.2 study shape: a parallel sweep of tcas register errors
// merges to exactly the sequential report. Dedup is on so the sweep also
// exercises the hashed visited set under parallelism.
func TestParallelReportByteIdenticalTcas(t *testing.T) {
	prog := tcas.Program()
	injections := faults.RegisterInjectionsUsed(prog)
	if len(injections) > 48 {
		injections = injections[:48]
	}
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000
	assertParallelMatchesSequential(t, "tcas", Spec{
		Program:     prog,
		Input:       tcas.UpwardInput().Slice(),
		Injections:  injections,
		Exec:        exec,
		Predicate:   HaltedOutputOtherThan(tcas.UpwardRA),
		StateBudget: 1500,
		Dedup:       true,
	})
}

// TestParallelReportByteIdenticalReplace checks the same claim on the
// Section 6.4 study shape, including per-injection budget exhaustion (the
// replace explorations are deep; many injections hit the budget).
func TestParallelReportByteIdenticalReplace(t *testing.T) {
	prog := replace.Program()
	input := replace.Input("[a-c]x*", "<&>", "axx b cx")
	ref := machine.New(prog, input, machine.Options{Watchdog: 2_000_000})
	r := ref.Run()
	if r.Status != machine.StatusHalted {
		t.Fatalf("reference run %v (%v)", r.Status, r.Exception)
	}
	expected := machine.RenderOutput(r.Output)

	injections := faults.RegisterInjections(prog, true)
	if len(injections) > 24 {
		injections = injections[:24]
	}
	exec := symexec.DefaultOptions()
	exec.Watchdog = 120_000
	assertParallelMatchesSequential(t, "replace", Spec{
		Program:     prog,
		Input:       input,
		Injections:  injections,
		Exec:        exec,
		Predicate:   IncorrectOutput(expected),
		StateBudget: 1200,
		MaxFindings: 3,
	})
}

// TestParallelInterrupted checks that a cancelled parallel sweep returns a
// partial report marked Interrupted instead of an error, like the
// sequential sweep does.
func TestParallelInterrupted(t *testing.T) {
	prog := tcas.Program()
	injections := faults.RegisterInjectionsUsed(prog)
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := RunCtx(ctx, Spec{
		Program:     prog,
		Input:       tcas.UpwardInput().Slice(),
		Injections:  injections,
		Exec:        exec,
		Predicate:   HaltedOutputOtherThan(tcas.UpwardRA),
		StateBudget: 100_000,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatalf("interrupted parallel run: %v", err)
	}
	if !rep.Interrupted && len(rep.PerInjection) < len(injections) {
		t.Errorf("partial parallel run (%d/%d injections) not marked Interrupted",
			len(rep.PerInjection), len(injections))
	}
}
