package checker

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"sync"

	"symplfied/internal/analysis"
	"symplfied/internal/detector"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/obs"
	"symplfied/internal/symexec"
)

// livePruned counts explorations elided by a liveness proof: the real
// savings knob, deliberately separate from the deterministic report
// contents (a reused report carries its representative's tallies so pruned
// and unpruned reports stay comparable; the live counter measures work that
// did not happen).
var livePruned = obs.Default().Counter(obs.MPrunedInjections)

// CheckPruningEnv names the environment variable that turns every reused
// pruned report into an assertion: the injection is explored anyway and the
// run panics if the exploration differs from the reused report (in
// particular, if a "provably benign" injection produced findings). The
// paper's Section 6.1 prunes syntactically — by registers the instruction
// reads — and cannot be wrong; dataflow pruning has a proof obligation, and
// this mode discharges it dynamically, like SYMPLFIED_CHECK_KEY_COLLISIONS
// does for the hashed dedup keys.
const CheckPruningEnv = "SYMPLFIED_CHECK_PRUNING"

var checkPruning = os.Getenv(CheckPruningEnv) != ""

// SetCheckPruning arms (or disarms) the cross-check mode programmatically —
// the same switch CheckPruningEnv flips at process start — and returns a
// function restoring the previous setting. It lets a test assert the pruning
// proof over a whole study without re-execing the process. Not safe to flip
// concurrently with a running sweep.
func SetCheckPruning(on bool) (restore func()) {
	prev := checkPruning
	checkPruning = on
	return func() { checkPruning = prev }
}

// PruneContext carries the static analysis and the per-site memo a pruned
// sweep shares across injections (and, via cluster/campaign, across tasks
// and workers in one process). Create one with NewPruneContext and place it
// in Spec.Prune, or just set Spec.PruneDeadInjections and let RunCtx build
// it. The zero value is not usable. PruneContext is safe for concurrent use.
//
// Pruning rests on a liveness proof (see internal/analysis): if register r
// is dead just before pc — every path writes r before reading it — then err
// in r at pc can never propagate, so the exploration is exactly the
// fault-free continuation, whichever dead register was corrupted. The
// checker therefore explores one representative per breakpoint and reuses
// its report for the other dead registers at the same site, rewriting only
// the injection identity. A reused report is byte-identical to what the
// elided exploration would have produced, so pruned campaigns merge to the
// unpruned verdicts (asserted by SYMPLFIED_CHECK_PRUNING).
//
// Only transient register injections are ever pruned: a permanent
// (stuck-at) fault discards future writes, so the kill half of the liveness
// argument does not apply to it.
type PruneContext struct {
	analysis *analysis.Analysis
	sites    *siteMemo
}

// siteMemo memoizes one representative exploration per breakpoint site. It
// is the shared machinery behind both benign-injection elisions: liveness
// pruning (PruneContext) and compositional summaries (SummaryContext). Both
// classifications assert the same thing — the exploration is exactly the
// fault-free continuation from the site — so when both contexts are active
// they share one memo and one representative per site, whichever classifier
// explored it first. Representatives are stored unmarked; each classifier
// stamps its own marker (Pruned/Summarized) on the copies it returns.
type siteMemo struct {
	mu   sync.Mutex
	memo map[pruneSite]pruneMemo
}

func newSiteMemo() *siteMemo {
	return &siteMemo{memo: make(map[pruneSite]pruneMemo)}
}

// pruneSite keys the memo: benign registers at the same breakpoint share the
// fault-free continuation.
type pruneSite struct {
	pc, occurrence int
}

// pruneMemo is one representative exploration plus the knobs it ran under;
// reuse is only exact when the current knobs cannot change the exploration.
type pruneMemo struct {
	rep    InjectionReport
	budget int
}

// NewPruneContext analyzes prog (with dets, whose CHECK reads count as
// uses) and returns a context ready to classify injections.
func NewPruneContext(prog *isa.Program, dets *detector.Table) *PruneContext {
	return &PruneContext{
		analysis: analysis.Analyze(prog, dets),
		sites:    newSiteMemo(),
	}
}

// Analysis exposes the underlying dataflow results (for diagnostics and
// tests).
func (p *PruneContext) Analysis() *analysis.Analysis { return p.analysis }

// Prunable reports whether liveness proves the injection benign: a
// transient register error into a register dead at the breakpoint.
func (p *PruneContext) Prunable(inj faults.Injection) bool {
	if p == nil || inj.Class != faults.ClassRegister || inj.Permanent || inj.Loc.IsMem {
		return false
	}
	return p.analysis.DeadAt(inj.PC, inj.Loc.Reg)
}

// site returns the memo key for inj.
func site(inj faults.Injection) pruneSite {
	occ := inj.Occurrence
	if occ == 0 {
		occ = 1
	}
	return pruneSite{pc: inj.PC, occurrence: occ}
}

// reuse returns a report for inj derived from the site's memoized
// representative, when reuse is provably exact under the current budget.
// Reuse declines (forcing a real exploration) when the memo:
//
//   - ended abnormally (interrupted, timed out, panicked, errored) — those
//     outcomes are wall-clock- or environment-dependent;
//   - recorded findings — a finding's trace and symbolic state name the
//     injected location, so only the site's own exploration reproduces them
//     (this only happens when the fault-free continuation itself satisfies
//     the predicate);
//   - ran to budget exhaustion under a different budget than the current
//     one, or completed using more states than the current budget allows
//     (the cluster's shared task budget shrinks per injection).
func (p *siteMemo) reuse(inj faults.Injection, budget int) (InjectionReport, bool) {
	p.mu.Lock()
	m, ok := p.memo[site(inj)]
	p.mu.Unlock()
	if !ok {
		return InjectionReport{}, false
	}
	rep := m.rep
	switch {
	case rep.Interrupted || rep.TimedOut || rep.Panicked || rep.Error != "":
		return InjectionReport{}, false
	case len(rep.Findings) > 0:
		return InjectionReport{}, false
	case rep.BudgetExhausted && m.budget != budget:
		return InjectionReport{}, false
	case !rep.BudgetExhausted && rep.StatesExplored > budget:
		return InjectionReport{}, false
	}
	rep.Injection = inj
	out := make(map[symexec.Outcome]int, len(m.rep.Outcomes))
	for o, n := range m.rep.Outcomes {
		out[o] = n
	}
	rep.Outcomes = out
	if len(m.rep.DetectorHits) > 0 {
		hits := make(map[int64]int, len(m.rep.DetectorHits))
		for id, n := range m.rep.DetectorHits {
			hits[id] = n
		}
		rep.DetectorHits = hits
	}
	return rep, true
}

// store memoizes a representative exploration for inj's site.
func (p *siteMemo) store(inj faults.Injection, rep InjectionReport, budget int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.memo[site(inj)]; !dup {
		p.memo[site(inj)] = pruneMemo{rep: rep, budget: budget}
	}
}

// EnsurePrune resolves the spec's pruning configuration: nil when pruning
// is off, the shared context when one is installed, or a freshly built one
// (installed on the spec) when PruneDeadInjections is set. Drivers that fan
// spec copies across their own pools (internal/cluster, internal/campaign)
// call this once up front so every copy shares the analysis and the
// representative memo; a lone RunInjectionCtx call on a bare spec gets a
// private context that classifies correctly but cannot share
// representatives.
func (spec *Spec) EnsurePrune() *PruneContext {
	if !spec.PruneDeadInjections || spec.Program == nil {
		return nil
	}
	if spec.Prune == nil {
		spec.Prune = NewPruneContext(spec.Program, spec.Detectors)
	}
	return spec.Prune
}

// effectiveBudget resolves the spec's per-injection state budget.
func (spec Spec) effectiveBudget() int {
	if spec.StateBudget > 0 {
		return spec.StateBudget
	}
	return DefaultStateBudget
}

// checkPrunedReuse is the SYMPLFIED_CHECK_PRUNING assertion: explore the
// injection for real and panic on any divergence from the reused report.
// It runs outside RunInjectionCtx's recover boundary on purpose: a failed
// proof obligation must abort the process, not become one more isolated
// injection panic in the report.
func checkPrunedReuse(ctx context.Context, spec Spec, inj faults.Injection, reused InjectionReport) {
	explored, err := runInjectionReal(ctx, spec, inj, false)
	if err != nil {
		panic(fmt.Sprintf("pruning cross-check: %s: exploration failed: %v", inj, err))
	}
	if len(explored.Findings) > 0 {
		panic(fmt.Sprintf("pruning cross-check: %s was classified benign but exploring it found %d finding(s): %s",
			inj, len(explored.Findings), explored.Findings[0].Describe()))
	}
	explored.Pruned = reused.Pruned // the marker is the one legitimate difference
	if !reflect.DeepEqual(normalizeForCheck(explored), normalizeForCheck(reused)) {
		panic(fmt.Sprintf("pruning cross-check: %s: reused report diverges from exploration:\nreused:   %+v\nexplored: %+v",
			inj, reused, explored))
	}
}

// normalizeForCheck strips the fields DeepEqual cannot compare meaningfully
// across two explorations (live state pointers never travel in findings
// here — findings force a real exploration — but Outcomes maps need nil/
// empty normalization).
func normalizeForCheck(ir InjectionReport) InjectionReport {
	if len(ir.Outcomes) == 0 {
		ir.Outcomes = nil
	}
	if len(ir.DetectorHits) == 0 {
		ir.DetectorHits = nil
	}
	return ir
}
