package checker

import (
	"context"
	"fmt"
	"strings"

	"symplfied/internal/faults"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

// Graph is the explored search graph of one injection — the paper's
// Section 5.4 facility: "the programmer can query how specific final states
// were obtained or print out the search graph, which will contain the entire
// set of states that have been explored by the model checking".
type Graph struct {
	Injection faults.Injection
	Nodes     []GraphNode
	// Truncated reports that MaxNodes stopped the exploration.
	Truncated bool
}

// GraphNode is one explored state.
type GraphNode struct {
	ID     int
	Parent int // -1 for roots
	PC     int
	Steps  int
	// Outcome is set for terminal nodes.
	Outcome string
	// Label summarizes the node (location, or termination detail).
	Label string
	// Output is the rendered output stream at this state.
	Output string
}

// ExploreGraph explores with an un-cancellable context. See ExploreGraphCtx.
func ExploreGraph(spec Spec, inj faults.Injection, maxNodes int) (*Graph, error) {
	return ExploreGraphCtx(context.Background(), spec, inj, maxNodes)
}

// ExploreGraphCtx explores the injection breadth-first, recording every
// state and its parent. Unlike RunInjectionCtx it does not use the in-place
// fast path, so every intermediate state appears as a node. maxNodes bounds
// the graph (0 selects 10_000). Cancellation stops the exploration and
// returns the partial graph marked Truncated, like an exhausted node bound.
func ExploreGraphCtx(ctx context.Context, spec Spec, inj faults.Injection, maxNodes int) (*Graph, error) {
	if spec.Program == nil {
		return nil, fmt.Errorf("checker: nil program")
	}
	if maxNodes <= 0 {
		maxNodes = 10_000
	}

	m := machine.New(spec.Program, spec.Input, machine.Options{
		Watchdog:  spec.Exec.Watchdog,
		Detectors: spec.Detectors,
	})
	if !m.RunUntil(inj.PC, inj.Occurrence) {
		return nil, fmt.Errorf("checker: injection %s never activated", inj)
	}
	st := symexec.FromMachine(m, spec.Detectors, spec.Exec)
	if consumed := m.InputConsumed(); consumed < len(spec.Input) {
		st.SetInput(spec.Input[consumed:])
	}
	initial, err := inj.Apply(st)
	if err != nil {
		return nil, err
	}

	g := &Graph{Injection: inj}
	type workItem struct {
		state  *symexec.State
		parent int
	}
	var frontier []workItem
	for _, s := range initial {
		frontier = append(frontier, workItem{state: s, parent: -1})
	}
	for len(frontier) > 0 {
		if len(g.Nodes) >= maxNodes {
			g.Truncated = true
			break
		}
		if len(g.Nodes)&ctxCheckMask == 0 && ctx.Err() != nil {
			g.Truncated = true
			break
		}
		cur := frontier[0]
		frontier = frontier[1:]
		node := GraphNode{
			ID:     len(g.Nodes),
			Parent: cur.parent,
			PC:     cur.state.PC,
			Steps:  cur.state.Steps,
			Output: cur.state.OutputString(),
			Label:  spec.Program.Locate(cur.state.PC),
		}
		if !cur.state.Running() {
			node.Outcome = cur.state.Outcome().String()
			if cur.state.Exc != nil {
				node.Label = cur.state.Exc.Error()
			}
		}
		g.Nodes = append(g.Nodes, node)
		if !cur.state.Running() {
			continue
		}
		for _, succ := range cur.state.Successors() {
			frontier = append(frontier, workItem{state: succ, parent: node.ID})
		}
	}
	return g, nil
}

// Terminals returns the terminal nodes.
func (g *Graph) Terminals() []GraphNode {
	var out []GraphNode
	for _, n := range g.Nodes {
		if n.Outcome != "" {
			out = append(out, n)
		}
	}
	return out
}

// Path returns the node IDs from a root to the given node, inclusive.
func (g *Graph) Path(id int) []int {
	var rev []int
	for cur := id; cur >= 0; cur = g.Nodes[cur].Parent {
		rev = append(rev, cur)
	}
	out := make([]int, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// DOT renders the graph in Graphviz dot syntax: terminal nodes are boxes
// colored by outcome, interior nodes are points labelled by code location.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph symplfied {\n")
	fmt.Fprintf(&b, "  label=%q;\n", g.Injection.String())
	b.WriteString("  rankdir=TB;\n  node [fontsize=9];\n")
	for _, n := range g.Nodes {
		switch {
		case n.Outcome == "":
			fmt.Fprintf(&b, "  n%d [shape=ellipse, label=%q];\n", n.ID, fmt.Sprintf("%s\\nstep %d", n.Label, n.Steps))
		default:
			color := map[string]string{
				"normal":   "palegreen",
				"crash":    "lightcoral",
				"hang":     "khaki",
				"detected": "lightblue",
			}[n.Outcome]
			if color == "" {
				color = "white"
			}
			fmt.Fprintf(&b, "  n%d [shape=box, style=filled, fillcolor=%s, label=%q];\n",
				n.ID, color, fmt.Sprintf("%s\\n%s\\nout: %s", n.Outcome, n.Label, n.Output))
		}
		if n.Parent >= 0 {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n.Parent, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
