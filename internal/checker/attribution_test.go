package checker

import (
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// TestDetectorHitsAttribution: an injection caught by a CHECK credits the
// firing detector in InjectionReport.DetectorHits and the aggregate folds
// it, so hardened-vs-seed campaigns can compare coverage per detector.
func TestDetectorHitsAttribution(t *testing.T) {
	u := asm.MustParse("t", `
	det(7, $1, ==, 5)
	li $1 #5
	check #7
	print $1
	halt
`)
	inj := faults.Injection{Class: faults.ClassRegister, PC: 1, Occurrence: 1, Loc: isa.RegLoc(1)}
	for _, merge := range []bool{false, true} {
		rep, err := Run(Spec{
			Program:     u.Program,
			Detectors:   u.Detectors,
			Injections:  []faults.Injection{inj},
			Exec:        symexec.DefaultOptions(),
			Predicate:   OutcomeIs(symexec.OutcomeNormal),
			MergeStates: merge,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Outcomes[symexec.OutcomeDetected] == 0 {
			t.Fatalf("merge=%v: injection before the check produced no detected outcome: %v", merge, rep.Outcomes)
		}
		if got := rep.DetectorHits[7]; got != rep.Outcomes[symexec.OutcomeDetected] {
			t.Errorf("merge=%v: DetectorHits[7] = %d, want every detected terminal (%d) attributed",
				merge, got, rep.Outcomes[symexec.OutcomeDetected])
		}
		if len(rep.PerInjection) != 1 || rep.PerInjection[0].DetectorHits[7] == 0 {
			t.Errorf("merge=%v: per-injection attribution missing: %+v", merge, rep.PerInjection)
		}
	}
}
