package checker

import (
	"context"
	"strings"
	"testing"
	"time"

	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// loopProgram counts r1 from 0 up to bound and prints it. An err injected
// into r1 makes the exit comparison fork every iteration, so the symbolic
// exploration is large (roughly proportional to the watchdog) with terminal
// states appearing early and throughout — the shape needed to observe
// cancellation and deadlines mid-frontier.
func loopProgram(t *testing.T, bound int64) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("loop")
	b.Li(2, bound)
	b.Li(1, 0)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "loop")
	b.Print(1)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// loopSpec injects err into the loop counter on its first increment.
func loopSpec(t *testing.T, bound int64, watchdog int) Spec {
	exec := symexec.DefaultOptions()
	exec.Watchdog = watchdog
	return Spec{
		Program: loopProgram(t, bound),
		Injections: []faults.Injection{{
			Class: faults.ClassRegister,
			PC:    2, // the addi
			Loc:   isa.RegLoc(1),
		}},
		Exec:      exec,
		Predicate: OutputContainsErr(),
	}
}

// TestCancelMidFrontier proves cancelling the context while the frontier is
// still populated stops the exploration at the next poll and returns the
// partial tallies marked Interrupted (not TimedOut: this was an explicit
// cancellation).
func TestCancelMidFrontier(t *testing.T) {
	spec := loopSpec(t, 1000, 5_000)
	spec.StateBudget = 5_000

	ref, err := RunInjection(spec, spec.Injections[0])
	if err != nil {
		t.Fatal(err)
	}
	if ref.Interrupted || ref.StatesExplored < 1000 {
		t.Fatalf("reference exploration too small to observe a mid-frontier cancel: %+v", ref)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := spec.Predicate.Match
	spec.Predicate.Match = func(s *symexec.State) bool {
		cancel() // fires on the first terminal state, mid-frontier
		return base(s)
	}
	ir, err := RunInjectionCtx(ctx, spec, spec.Injections[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Interrupted {
		t.Fatal("cancelled exploration not marked Interrupted")
	}
	if ir.TimedOut {
		t.Error("explicit cancellation misreported as a deadline expiry")
	}
	if ir.StatesExplored == 0 || ir.StatesExplored >= ref.StatesExplored {
		t.Errorf("cancelled exploration explored %d states, reference %d: not a strict partial",
			ir.StatesExplored, ref.StatesExplored)
	}
	if ir.Failed() != true {
		t.Error("interrupted report must count as failed")
	}

	// At the report level the partial sweep downgrades an empty result.
	rep := NewReport(&spec)
	rep.Add(InjectionReport{Injection: spec.Injections[0], Activated: true,
		Interrupted: true, Outcomes: map[symexec.Outcome]int{}})
	if rep.Verdict() != VerdictInconclusive {
		t.Errorf("interrupted empty report verdict = %s", rep.Verdict())
	}
}

// TestPerInjectionDeadline proves the per-injection wall-clock bound: a huge
// exploration under a tiny deadline stops with TimedOut (and Interrupted)
// set, with whatever was swept retained.
func TestPerInjectionDeadline(t *testing.T) {
	spec := loopSpec(t, 5_000_000, 50_000_000)
	spec.StateBudget = 50_000_000 // would take far longer than the deadline
	spec.PerInjectionTimeout = 5 * time.Millisecond

	ir, err := RunInjection(spec, spec.Injections[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ir.TimedOut || !ir.Interrupted {
		t.Fatalf("deadline-bounded exploration: TimedOut=%v Interrupted=%v (%d states)",
			ir.TimedOut, ir.Interrupted, ir.StatesExplored)
	}
	if ir.BudgetExhausted {
		t.Error("deadline expiry misreported as budget exhaustion")
	}
	if ir.StatesExplored == 0 {
		t.Error("no states explored before the deadline")
	}
}

// TestRunCtxPreCancelled proves a cancelled search returns an empty report
// marked Interrupted, not an error.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunCtx(ctx, loopSpec(t, 100, 5_000))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Error("pre-cancelled search not marked Interrupted")
	}
	if len(rep.PerInjection) != 0 {
		t.Errorf("pre-cancelled search explored %d injections", len(rep.PerInjection))
	}
	if rep.Verdict() != VerdictInconclusive {
		t.Errorf("verdict = %s", rep.Verdict())
	}
}

// TestPanicIsolated proves a panic inside the exploration (here the user
// predicate) is recovered onto the report instead of propagating, keeping
// the tallies gathered before the panic.
func TestPanicIsolated(t *testing.T) {
	spec := loopSpec(t, 100, 5_000)
	spec.Predicate.Match = func(*symexec.State) bool { panic("predicate bomb") }

	ir, err := RunInjectionCtx(context.Background(), spec, spec.Injections[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Panicked {
		t.Fatal("panic was not recorded")
	}
	if ir.PanicValue != "predicate bomb" {
		t.Errorf("PanicValue = %q", ir.PanicValue)
	}
	if ir.StatesExplored == 0 {
		t.Error("tallies gathered before the panic were lost")
	}
	if !ir.Failed() {
		t.Error("panicked report must count as failed")
	}
}

// TestDiscardStates proves the memory-bounding knob: findings keep their
// captured summaries (and Describe keeps working) but drop the live state.
func TestDiscardStates(t *testing.T) {
	spec := loopSpec(t, 20, 2_000)
	// Every terminal is a finding: the exit paths concretize the counter, so
	// an output-based predicate would be empty here.
	spec.Predicate = Predicate{Name: "any terminal", Match: func(*symexec.State) bool { return true }}
	spec.DiscardStates = true
	spec.MaxFindings = 3

	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings to inspect")
	}
	for _, f := range rep.Findings {
		if f.State != nil {
			t.Fatal("DiscardStates kept a live state")
		}
		if f.Output == "" || f.Sym == "" {
			t.Errorf("discarded finding lost its summary: %+v", f)
		}
		if !strings.Contains(f.Describe(), "outcome") {
			t.Errorf("Describe() broken without a state: %q", f.Describe())
		}
	}

	spec.DiscardStates = false
	rep, err = Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		if f.State == nil {
			t.Fatal("default spec must keep states (callers print traces from them)")
		}
	}
}
