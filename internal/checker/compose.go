package checker

import (
	"context"
	"fmt"

	"symplfied/internal/faults"
)

// Component names a code region analyzed separately — the paper's
// hierarchical/compositional approach (Section 3.4): "if a certain code
// component protected with detectors is proved to be resilient to all errors
// of a particular class, then such errors can be ignored when considering
// the space of errors that can occur in the system as a whole".
type Component struct {
	Name string
	// Lo and Hi bound the component's instructions, inclusive.
	Lo, Hi int
}

// Contains reports whether the injection's breakpoint lies in the component.
func (c Component) Contains(inj faults.Injection) bool {
	return inj.PC >= c.Lo && inj.PC <= c.Hi
}

// ComponentProof is the result of proving one component.
type ComponentProof struct {
	Component Component
	Report    *Report
	Verdict   Verdict
}

// ProveComponent proves a component with an un-cancellable context. See
// ProveComponentCtx.
func ProveComponent(spec Spec, c Component) (ComponentProof, error) {
	return ProveComponentCtx(context.Background(), spec, c)
}

// ProveComponentCtx runs the spec restricted to the injections inside the
// component and reports the verdict. The spec's Injections field supplies
// the full class; only the component's share is explored. An interrupted
// search yields an interrupted report, whose verdict degrades to
// inconclusive rather than claiming a proof it did not finish.
func ProveComponentCtx(ctx context.Context, spec Spec, c Component) (ComponentProof, error) {
	if c.Lo > c.Hi {
		return ComponentProof{}, fmt.Errorf("checker: component %q has empty range [%d, %d]", c.Name, c.Lo, c.Hi)
	}
	var local []faults.Injection
	for _, inj := range spec.Injections {
		if c.Contains(inj) {
			local = append(local, inj)
		}
	}
	spec.Injections = local
	rep, err := RunCtx(ctx, spec)
	if err != nil {
		return ComponentProof{}, fmt.Errorf("checker: component %q: %w", c.Name, err)
	}
	return ComponentProof{Component: c, Report: rep, Verdict: rep.Verdict()}, nil
}

// PruneProven removes the injections covered by proven components, shrinking
// the whole-program search space. Components whose verdict is not
// VerdictProven are ignored (their injections stay).
func PruneProven(injs []faults.Injection, proofs []ComponentProof) []faults.Injection {
	out := make([]faults.Injection, 0, len(injs))
	for _, inj := range injs {
		covered := false
		for _, p := range proofs {
			if p.Verdict == VerdictProven && p.Component.Contains(inj) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, inj)
		}
	}
	return out
}

// RunComposed is the two-level analysis with an un-cancellable context. See
// RunComposedCtx.
func RunComposed(spec Spec, components []Component) (*Report, []ComponentProof, error) {
	return RunComposedCtx(context.Background(), spec, components)
}

// RunComposedCtx is the two-level analysis: prove each component in
// isolation, prune the proven regions from the whole-program injection
// space, and run the remaining search. The returned report covers the pruned
// space; the proofs document the discharged regions. Cancellation interrupts
// whichever search is running; an interrupted component proof is
// inconclusive, so it never prunes anything it did not fully cover.
func RunComposedCtx(ctx context.Context, spec Spec, components []Component) (*Report, []ComponentProof, error) {
	proofs := make([]ComponentProof, 0, len(components))
	for _, c := range components {
		p, err := ProveComponentCtx(ctx, spec, c)
		if err != nil {
			return nil, nil, err
		}
		proofs = append(proofs, p)
	}
	pruned := spec
	pruned.Injections = PruneProven(spec.Injections, proofs)
	rep, err := RunCtx(ctx, pruned)
	if err != nil {
		return nil, proofs, err
	}
	return rep, proofs, nil
}
