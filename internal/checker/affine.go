package checker

import (
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// Affine lap extrapolation, the second gear of the merged explorer's cycle
// accelerator. Exact-recurrence acceleration (LoopHash) only fires when a
// deterministic loop revisits its configuration bit for bit; a hang whose
// loop carries a live counter — the common shape of an erroneous
// control-flow loop, `i` marching toward the watchdog — never recurs
// exactly, so lap after lap is executed for real. But such laps are usually
// affine: each one applies the same linear map to the register file. When a
// lap can be proven affine, the explorer computes the per-lap register delta
// once and jumps the state to the last lap boundary below the watchdog in
// O(1), exactly as if every lap had been stepped.
//
// The proof obligation has two halves:
//
//   - Structurally (affineLapOK): starting from the registers whose values
//     changed across the measured lap (the tainted set, closed over the
//     lap's linear instructions), no instruction whose behavior could vary —
//     a branch, an indirect jump, a memory access, a divisor, a
//     non-linear ALU op, any I/O or detector check — reads a tainted
//     register. Untainted registers are then lap-invariant by induction, so
//     every future lap executes the identical instruction sequence, touches
//     the identical memory cells with identical values, and transforms the
//     tainted registers by the same linear map A with the same offset.
//
//   - Numerically (the verify lap in runSingle): the per-lap delta vector d
//     satisfies A·d = d. Because the delta evolves linearly (dₙ₊₁ = A·dₙ;
//     the offset cancels), observing two consecutive equal deltas proves
//     dₙ = d for every future lap, so regs(n laps) = regs + n·d. The
//     interpreter's arithmetic wraps (isa.EvalBin uses Go int64 ops), and
//     the extrapolated k·d addition wraps identically mod 2^64.
//
// Anything the analysis cannot prove simply declines — the state keeps
// stepping for real, and the SYMPLFIED_CHECK_MERGING cross-check holds the
// implementation to byte-identical verdicts either way.

// maxAffineLap bounds the recorded lap window: loops longer than this are
// not probed (the window recording and taint analysis are O(lap length)).
const maxAffineLap = 1024

// affineProbe is an in-flight affinity verification: the recorded lap, the
// registers and measured delta at the lap boundary where the probe was
// armed, and the progress of the verify lap.
type affineProbe struct {
	window []int // executed pc sequence of one lap
	delta  [isa.NumRegs]int64
	regs0  [isa.NumRegs]isa.Value
	idx    int // next window position the verify lap must execute
}

// lapDelta computes the per-register boundary delta between two register
// files. ok is false when any changing register is non-concrete on either
// side (the err value has no delta arithmetic).
func lapDelta(before, after *[isa.NumRegs]isa.Value) (delta [isa.NumRegs]int64, ok bool) {
	for r := range before {
		b, a := before[r], after[r]
		if b.Equal(a) {
			continue
		}
		bc, bok := b.Concrete()
		ac, aok := a.Concrete()
		if !bok || !aok {
			return delta, false
		}
		delta[r] = ac - bc
	}
	return delta, true
}

// affineLapOK reports whether the lap described by window (a pc sequence)
// provably applies the same affine register map on every future iteration,
// given the registers that changed across the measured lap (nonzero delta).
func affineLapOK(prog *isa.Program, window []int, delta *[isa.NumRegs]int64) bool {
	var tainted [isa.NumRegs]bool
	for r, d := range delta {
		if d != 0 {
			tainted[r] = true
		}
	}
	// Close the tainted set over the lap's linear instructions: any register
	// computed from a tainted one may vary across laps. Non-linear ops with
	// tainted sources are rejected by the validation pass below, so their
	// outputs never need tainting. $zero absorbs writes and is never tainted.
	taint := func(r isa.Reg) bool {
		if r == isa.RegZero || tainted[r] {
			return false
		}
		tainted[r] = true
		return true
	}
	for again := true; again; {
		again = false
		for _, pc := range window {
			in := prog.At(pc)
			var from bool
			switch bin, imm, isArith := isa.ArithOp(in.Op); {
			case isArith && (bin == isa.BinAdd || bin == isa.BinSub || bin == isa.BinMult || bin == isa.BinSll):
				from = tainted[in.Rs] || (!imm && tainted[in.Rt])
			case in.Op == isa.OpMov:
				from = tainted[in.Rs]
			default:
				continue
			}
			if from && taint(in.Rd) {
				again = true
			}
		}
	}
	// Validate every instruction in the lap against the tainted set.
	for _, pc := range window {
		in := prog.At(pc)
		if bin, imm, isArith := isa.ArithOp(in.Op); isArith {
			switch bin {
			case isa.BinAdd, isa.BinSub:
				continue // linear in both operands
			case isa.BinMult:
				// Linear when at most one factor varies.
				if imm || !tainted[in.Rs] || !tainted[in.Rt] {
					continue
				}
			case isa.BinSll:
				// x<<c is multiplication by a power of two; the shift
				// amount itself must be invariant.
				if imm || !tainted[in.Rt] {
					continue
				}
			default:
				// Div/mod/bitwise/right shifts are not linear mod 2^64.
				if !tainted[in.Rs] && (imm || !tainted[in.Rt]) {
					continue
				}
			}
			return false
		}
		if _, imm, isCmp := isa.CmpForOp(in.Op); isCmp {
			if !tainted[in.Rs] && (imm || !tainted[in.Rt]) {
				continue
			}
			return false
		}
		switch in.Op {
		case isa.OpMov, isa.OpLi, isa.OpLui, isa.OpNop, isa.OpJmp, isa.OpJal:
			// Register-invariant or purely linear moves; jal links a
			// constant return address.
		case isa.OpLd:
			// The address must be invariant; the store rule below keeps
			// every touched cell lap-invariant, so the loaded value is too.
			if tainted[in.Rs] {
				return false
			}
		case isa.OpSt:
			// Invariant address and value keep memory a per-lap fixed point.
			if tainted[in.Rs] || tainted[in.Rt] {
				return false
			}
		case isa.OpBeq, isa.OpBne:
			if tainted[in.Rs] || tainted[in.Rt] {
				return false
			}
		case isa.OpBeqi, isa.OpBnei, isa.OpJr:
			if tainted[in.Rs] {
				return false
			}
		default:
			// I/O, detector checks, throw/halt, or anything unclassified:
			// a lap containing these is never extrapolated.
			return false
		}
	}
	return true
}

// applyAffine advances every changing register by k laps' worth of delta.
// lapDelta already proved the changing registers concrete, and wrapping
// int64 addition matches k sequential executions of the lap mod 2^64.
func applyAffine(s *symexec.State, delta *[isa.NumRegs]int64, k int) {
	for r, d := range delta {
		if d != 0 {
			v, _ := s.Regs[r].Concrete()
			s.Regs[r] = isa.Int(v + int64(k)*d)
		}
	}
}
