package checker

import (
	"testing"

	"symplfied/internal/apps/factorial"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// TestFactorialEnumeration reproduces the paper's Section 4.1 example: a
// transient error in register $3 (the loop counter) after the decrement, in
// any loop iteration, makes the loop exit early — printing one of the
// partial products — or propagate err to the output, or hang. SymPLFIED must
// enumerate every such outcome.
func TestFactorialEnumeration(t *testing.T) {
	prog := factorial.Plain()
	subiPC, ok := factorial.SubiPC(prog)
	if !ok {
		t.Fatal("no subi in factorial program")
	}

	// For input 5 the loop body executes four times ($3 = 5,4,3,2), so the
	// decrement has four dynamic occurrences.
	var injections []faults.Injection
	for occ := 1; occ <= 4; occ++ {
		injections = append(injections, faults.Injection{
			Class:      faults.ClassRegister,
			PC:         subiPC,
			Occurrence: occ,
			Loc:        isa.RegLoc(3),
		})
	}

	exec := symexec.DefaultOptions()
	exec.Watchdog = 400
	rep, err := Run(Spec{
		Program:    prog,
		Input:      []int64{5},
		Injections: injections,
		Exec:       exec,
		Predicate:  OutcomeIs(symexec.OutcomeNormal),
	})
	if err != nil {
		t.Fatal(err)
	}

	concrete := make(map[int64]bool)
	errPrinted := false
	for _, f := range rep.Findings {
		vals := f.State.OutputValues()
		if len(vals) != 1 {
			t.Fatalf("finding with %d printed values: %q", len(vals), f.State.OutputString())
		}
		if vals[0].IsErr() {
			errPrinted = true
			continue
		}
		v, _ := vals[0].Concrete()
		concrete[v] = true
	}

	// The downward loop's partial products for input 5: exiting after k
	// multiplications prints 5!/(5-k)!.
	for _, want := range []int64{5, 20, 60, 120} {
		if !concrete[want] {
			t.Errorf("partial product %d not enumerated; got %v", want, concrete)
		}
	}
	if !errPrinted {
		t.Error("no outcome printing err was enumerated")
	}
	if rep.Outcomes[symexec.OutcomeHang] == 0 {
		t.Error("no hang (timeout) outcome enumerated despite infinite erroneous loop")
	}
	if rep.NotActivated != 0 {
		t.Errorf("%d injections not activated", rep.NotActivated)
	}
}

// TestFactorialDetectorDerivation reproduces Section 4.2: with the Figure 3
// detectors, the first check is subsumed by the loop-continuation constraint
// and never fires, while the second check forks; the constraint solver
// derives exactly which corrupted values are detected, and which escape.
func TestFactorialDetectorDerivation(t *testing.T) {
	prog, dets := factorial.WithDetectors()
	subiPC, ok := factorial.SubiPC(prog)
	if !ok {
		t.Fatal("no subi in detector program")
	}

	exec := symexec.DefaultOptions()
	exec.Watchdog = 400
	ir, err := RunInjection(Spec{
		Program:   prog,
		Detectors: dets,
		Input:     []int64{5},
		Exec:      exec,
		Predicate: OutcomeIs(symexec.OutcomeDetected),
	}, faults.Injection{
		Class: faults.ClassRegister,
		PC:    subiPC,
		Loc:   isa.RegLoc(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Activated {
		t.Fatal("injection not activated")
	}
	if ir.Outcomes[symexec.OutcomeDetected] == 0 {
		t.Fatal("no detection outcome found")
	}

	// The first detection (earliest fork) happens at detector 2 in the first
	// loop iteration after the fault: the solver must have pinned the
	// corrupted root to 3..5 — i.e. detected iff the corrupted counter is at
	// most the original input but still continues the loop.
	found := false
	for _, f := range ir.Findings {
		if f.State.Exc == nil || f.State.Exc.Kind != isa.ExcDetected {
			continue
		}
		cons := f.State.Sym.RootConstraints(0)
		if cons == nil {
			continue
		}
		if cons.Admits(3) && cons.Admits(4) && cons.Admits(5) && !cons.Admits(2) && !cons.Admits(6) {
			found = true
			break
		}
	}
	if !found {
		for _, f := range ir.Findings {
			t.Logf("detected state: %s", f.State.Sym.Describe())
		}
		t.Error("no detection with the derived constraint root in [3,5]")
	}

	// Escaping errors must exist: normal terminations (early exit before the
	// detectors see the error, or large corrupted values passing check 2).
	if ir.Outcomes[symexec.OutcomeNormal] == 0 {
		t.Error("no escaping (normal) outcome found")
	}
}

// TestCheckerDetectsSubsumedFirstDetector asserts the paper's observation
// that check ($4 < $3) can never fire once the loop-continuation constraint
// is recorded: no detection exception may reference detector 1.
func TestCheckerDetectsSubsumedFirstDetector(t *testing.T) {
	prog, dets := factorial.WithDetectors()
	subiPC, _ := factorial.SubiPC(prog)

	exec := symexec.DefaultOptions()
	exec.Watchdog = 400
	ir, err := RunInjection(Spec{
		Program:   prog,
		Detectors: dets,
		Input:     []int64{5},
		Exec:      exec,
		Predicate: OutcomeIs(symexec.OutcomeDetected),
	}, faults.Injection{Class: faults.ClassRegister, PC: subiPC, Loc: isa.RegLoc(3)})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range ir.Findings {
		if f.State.Exc != nil && f.State.Exc.Kind == isa.ExcDetected {
			if got := f.State.Exc.Detail; len(got) >= 10 && got[:10] == "detector 1" {
				t.Errorf("detector 1 fired despite constraint subsumption: %s", got)
			}
		}
	}
}
