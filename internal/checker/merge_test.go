package checker

import (
	"math/rand"
	"strconv"
	"testing"

	"symplfied/internal/apps/factorial"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// anyTerminal matches every terminal state, maximizing the surface the
// merged-vs-unmerged findings comparison covers.
var anyTerminal = Predicate{Name: "any", Match: func(*symexec.State) bool { return true }}

// mergeSpec is the shared shape of the equivalence tests: no dedup and no
// findings cap, so the cross-check compares full canonical findings.
func mergeSpec(prog *isa.Program, input []int64, watchdog, budget int) Spec {
	exec := symexec.DefaultOptions()
	exec.Watchdog = watchdog
	return Spec{
		Program:     prog,
		Input:       input,
		Exec:        exec,
		Predicate:   anyTerminal,
		StateBudget: budget,
		Parallelism: 1,
	}
}

// TestMergedSweepMatchesUnmerged sweeps every used-register injection of the
// factorial program merged and unmerged and demands identical verdicts:
// same activation, terminal tallies, outcome tallies, truncation, and
// byte-identical canonical findings. The SYMPLFIED_CHECK_MERGING cross-check
// is armed throughout, so every injection is additionally shadow-verified
// inside the merged run itself.
func TestMergedSweepMatchesUnmerged(t *testing.T) {
	defer SetCheckMerging(true)()

	prog, dets := factorial.WithDetectors()
	spec := mergeSpec(prog, []int64{5}, 400, 50_000)
	spec.Detectors = dets
	spec.Injections = faults.RegisterInjectionsUsed(prog)

	plain := spec
	unmerged, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	spec.MergeStates = true
	merged, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	if merged.MergedInjections == 0 {
		t.Fatal("no injection was swept by the merged explorer")
	}
	if len(merged.PerInjection) != len(unmerged.PerInjection) {
		t.Fatalf("injection count drift: %d vs %d", len(merged.PerInjection), len(unmerged.PerInjection))
	}
	for i := range merged.PerInjection {
		m, u := merged.PerInjection[i], unmerged.PerInjection[i]
		if m.Activated != u.Activated || m.TerminalStates != u.TerminalStates ||
			m.Truncated != u.Truncated || m.BudgetExhausted != u.BudgetExhausted {
			t.Fatalf("%s: tally drift: merged %+v unmerged %+v", m.Injection, m, u)
		}
		for o, n := range u.Outcomes {
			if m.Outcomes[o] != n {
				t.Fatalf("%s: outcome %s drift: %d vs %d", m.Injection, o, m.Outcomes[o], n)
			}
		}
		mf, uf := CanonicalFindings(m.Findings), CanonicalFindings(u.Findings)
		if len(mf) != len(uf) {
			t.Fatalf("%s: findings count drift: %d vs %d", m.Injection, len(mf), len(uf))
		}
		for j := range mf {
			if mf[j] != uf[j] {
				t.Fatalf("%s: finding drift:\nmerged:   %s\nunmerged: %s", m.Injection, mf[j], uf[j])
			}
		}
	}
	if merged.Verdict() != unmerged.Verdict() {
		t.Fatalf("verdict drift: %s vs %s", merged.Verdict(), unmerged.Verdict())
	}
	if merged.TotalStates >= unmerged.TotalStates {
		t.Errorf("merging explored %d states, unmerged %d: no savings", merged.TotalStates, unmerged.TotalStates)
	}
	if merged.Exec.StatesMerged == 0 {
		t.Error("no state observations elided by shared stepping")
	}
	// Factorial's hangs fork at the symbolic loop branch every lap, so no
	// in-place run recurs exactly; cycle acceleration is asserted on tcas
	// (TestMergeSmokeTCAS), whose concrete erroneous loops do recur.
	t.Logf("states: %d merged vs %d unmerged (%.1fx); merged-elided=%d cycles=%d steps-elided=%d",
		merged.TotalStates, unmerged.TotalStates,
		float64(unmerged.TotalStates)/float64(merged.TotalStates),
		merged.Exec.StatesMerged, merged.Exec.CyclesAccelerated, merged.Exec.StepsElided)
}

// FuzzMergeEquivalence throws randomly generated programs at the merged
// explorer with the cross-check armed: every injection it sweeps is
// re-explored unmerged inside the run, and any drift in activation, terminal
// tallies, outcomes, truncation, or canonical findings panics. The generator
// mirrors the asm/analysis fuzzers' instruction-level corpus so branches,
// loops, dynamic jumps, loads/stores and reads all appear.
func FuzzMergeEquivalence(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		prog := randomProgram(rand.New(rand.NewSource(seed)))
		injections := faults.RegisterInjectionsUsed(prog)
		if len(injections) > 8 {
			injections = injections[:8]
		}
		if len(injections) == 0 {
			return
		}
		defer SetCheckMerging(true)()
		spec := mergeSpec(prog, []int64{3, 7, 11}, 250, 6_000)
		spec.Injections = injections
		spec.MergeStates = true
		if _, err := Run(spec); err != nil {
			t.Fatal(err)
		}
	})
}

// randomProgram builds a random valid program the same way the asm and
// analysis fuzzers do, halting at the end so every path can terminate.
func randomProgram(r *rand.Rand) *isa.Program {
	n := 3 + r.Intn(30)
	instrs := make([]isa.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		instrs = append(instrs, randomInstr(r, n+1))
	}
	instrs = append(instrs, isa.Instr{Op: isa.OpHalt})
	labels := map[string]int{}
	for k := r.Intn(4); k > 0; k-- {
		labels["L"+strconv.Itoa(r.Intn(100))] = r.Intn(n + 1)
	}
	prog, err := isa.NewProgram("fuzz", instrs, labels)
	if err != nil {
		prog, _ = isa.NewProgram("fuzz", []isa.Instr{{Op: isa.OpHalt}}, nil)
	}
	return prog
}

// randomInstr mirrors the generator in internal/asm's fuzz round-trip test:
// one random instruction of any renderable format, branch targets within
// [0, progLen).
func randomInstr(r *rand.Rand, progLen int) isa.Instr {
	ops := isa.Ops()
	for {
		op := ops[r.Intn(len(ops))]
		in := isa.Instr{Op: op}
		reg := func() isa.Reg { return isa.Reg(r.Intn(isa.NumRegs)) }
		imm := func() int64 { return int64(r.Intn(2001) - 1000) }
		switch op.Format() {
		case isa.FormatNone:
			if op == isa.OpHalt {
				continue // emitted explicitly at the end
			}
		case isa.FormatR3:
			in.Rd, in.Rs, in.Rt = reg(), reg(), reg()
		case isa.FormatR2I:
			in.Rd, in.Rs, in.Imm = reg(), reg(), imm()
		case isa.FormatR2:
			in.Rd, in.Rs = reg(), reg()
		case isa.FormatRI:
			in.Rd, in.Imm = reg(), imm()
		case isa.FormatMem:
			in.Rt, in.Rs, in.Imm = reg(), reg(), imm()
		case isa.FormatBranch:
			in.Rs, in.Rt, in.Target = reg(), reg(), r.Intn(progLen)
		case isa.FormatBranchI:
			in.Rs, in.Imm, in.Target = reg(), imm(), r.Intn(progLen)
		case isa.FormatJump:
			in.Target = r.Intn(progLen)
		case isa.FormatJumpR:
			in.Rs = reg()
		case isa.FormatR1:
			in.Rd = reg()
		case isa.FormatStr:
			n := r.Intn(8)
			s := make([]byte, 0, n)
			alphabet := `abc "\-;/()#$*123 	`
			for i := 0; i < n; i++ {
				s = append(s, alphabet[r.Intn(len(alphabet))])
			}
			in.Str = string(s)
		case isa.FormatCheck:
			in.Imm = int64(r.Intn(10))
		}
		return in
	}
}
