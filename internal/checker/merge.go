package checker

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"

	"symplfied/internal/analysis"
	"symplfied/internal/detector"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/obs"
	"symplfied/internal/symbolic"
	"symplfied/internal/symexec"
	"symplfied/internal/trace"
)

// This file implements post-dominator state merging (Spec.MergeStates), the
// program-level analogue of veritesting's static merging adapted to
// SymPLFIED's explicit-state search. The unmerged explorer pays for every
// fork twice over: the forked states re-execute the instructions after the
// join point separately even though those instructions cannot tell the
// states apart, and a state that enters a deterministic loop re-executes the
// same cycle lap after lap until the watchdog fires. The merged explorer
// attacks both:
//
//   - States that rejoin at a control-flow merge point (the immediate
//     post-dominator of a branch, see internal/analysis.PostDom) with
//     identical concrete skeletons — equal PC, registers, memory, streams —
//     are fused into one representative carrying the sibling worlds'
//     constraint stores and traces. The representative executes each
//     instruction the worlds cannot distinguish (symexec.ShareableStep) once
//     for all of them, and splits back into singles the moment a step could
//     observe the difference. The fused worlds form an ite-style disjunction
//     over the same skeleton (symbolic.Disjunction).
//
//   - A single state that revisits its own configuration (everything equal
//     except the step counter, symexec.LoopHash) inside a deterministic
//     event-free run is in a cycle it can never leave: only the watchdog
//     ends it. The explorer fast-forwards whole laps by advancing the step
//     counter and lets the watchdog raise at exactly the step count the
//     unmerged run would have reached. Loops that never recur exactly — a
//     live counter marching toward the watchdog — get a second chance via
//     affine lap extrapolation (see affine.go): when a lap provably applies
//     the same linear register map every iteration, the explorer adds k laps
//     of delta to the registers and jumps the step counter in O(1).
//
// Both transformations preserve verdicts exactly: terminal states, outcome
// tallies, findings (bytes, traces and all) and truncation flags match the
// unmerged exploration, because fused states split before any step that
// could distinguish them and accelerated cycles are provably configuration-
// identical laps. What changes is StatesExplored, which counts physical
// state observations — the whole point. SYMPLFIED_CHECK_MERGING re-explores
// every merged injection unmerged and panics on drift, discharging the
// equivalence obligation dynamically the way SYMPLFIED_CHECK_PRUNING does
// for the liveness proof.

// liveMerged counts injections swept by the merged explorer.
var liveMerged = obs.Default().Counter(obs.MMergedInjections)

// CheckMergingEnv names the environment variable that arms the merging
// cross-check: every injection the merged explorer sweeps is re-explored
// unmerged and the run panics if the verdict-bearing report fields (or the
// findings, when exactly comparable) differ.
const CheckMergingEnv = "SYMPLFIED_CHECK_MERGING"

var checkMerging = os.Getenv(CheckMergingEnv) != ""

// SetCheckMerging arms (or disarms) the merging cross-check programmatically
// — the same switch CheckMergingEnv flips at process start — and returns a
// function restoring the previous setting. Not safe to flip concurrently
// with a running sweep.
func SetCheckMerging(on bool) (restore func()) {
	prev := checkMerging
	checkMerging = on
	return func() { checkMerging = prev }
}

// Brent-style cycle detection knobs: the first checkpoint is taken after
// cycleCheckpointStart in-place steps and the interval doubles from there,
// so a run of n steps takes O(log n) checkpoints and detects any cycle whose
// length fits under the watchdog. After cycleHashMissLimit LoopHash
// mismatches at one checkpoint (a loop with a live counter never matches),
// the checkpoint disarms until the next doubling, bounding the hash cost of
// non-cyclic loops.
const (
	cycleCheckpointStart = 64
	cycleHashMissLimit   = 4
)

// MergeContext carries the control-flow analysis a merged sweep shares
// across injections (and, via cluster/campaign, across tasks in one
// process). Create one with NewMergeContext and place it in Spec.Merge, or
// just set Spec.MergeStates and let RunCtx build it. The zero value is not
// usable. MergeContext is safe for concurrent use (the analysis is
// immutable after construction).
type MergeContext struct {
	analysis *analysis.Analysis
}

// NewMergeContext analyzes prog (with dets) and returns a context ready to
// answer merge-point queries.
func NewMergeContext(prog *isa.Program, dets *detector.Table) *MergeContext {
	return &MergeContext{analysis: analysis.Analyze(prog, dets)}
}

// Analysis exposes the underlying control-flow results (for diagnostics and
// tests).
func (m *MergeContext) Analysis() *analysis.Analysis { return m.analysis }

// MergePoint reports whether pc starts a basic block where diverged paths
// rejoin (the immediate post-dominator of some branching block). Deferring
// states here maximizes fusion opportunities without checking every pc.
func (m *MergeContext) MergePoint(pc int) bool {
	return m != nil && m.analysis.PostDom.MergePoint(pc)
}

// EnsureMerge resolves the spec's merging configuration: nil when merging is
// off, the shared context when one is installed, or a freshly built one
// (installed on the spec) when MergeStates is set. The analysis is shared
// with an active PruneContext when both knobs are on.
func (spec *Spec) EnsureMerge() *MergeContext {
	if !spec.MergeStates || spec.Program == nil {
		return nil
	}
	if spec.Merge == nil {
		if p := spec.EnsurePrune(); p != nil {
			spec.Merge = &MergeContext{analysis: p.analysis}
		} else {
			spec.Merge = NewMergeContext(spec.Program, spec.Detectors)
		}
	}
	return spec.Merge
}

// mworld is one fused sibling's private view: its constraint store, its
// decision trace, and its step counter at fuse time. Everything else —
// registers, memory, streams — is shared with the representative, which the
// skeleton equality (symexec.MergeCompatible) makes exact.
type mworld struct {
	sym   *symbolic.Store
	tr    *trace.Node
	steps int
}

// mentry is one unit of the merged explorer's frontier: a plain state
// (worlds nil) or a fused representative carrying its sibling worlds.
// worlds[0] mirrors the representative's own store/trace/steps at fuse
// time, so splitting world 0 is the representative itself.
type mentry struct {
	st *symexec.State
	// worlds is nil for singles; otherwise len >= 2 and worlds[0] is the
	// representative's own view.
	worlds []mworld
	// repSteps0 is st.Steps at fuse time; each world's counter at split is
	// its fuse-time counter plus the shared steps executed since.
	repSteps0 int
	// skipVisited marks entries re-queued by a flush or a split: their
	// visited check already happened at their original pop (their key is
	// unchanged, so re-checking would wrongly drop them).
	skipVisited bool
	// defersSeen lists the merge-point pcs this state has already parked at
	// once. A state fuses with whatever arrived at a merge point in the same
	// flush wave; parking again on a later visit would miss its wave anyway,
	// and — decisively — a hang loop whose body contains a merge point would
	// park every lap, resetting the cycle accelerator's checkpoint each time
	// and making the hang impossible to accelerate. The list is bounded by
	// the program's merge-point count and searched linearly.
	defersSeen []int
}

// deferredAt reports whether the entry already parked at merge point pc.
func (e *mentry) deferredAt(pc int) bool {
	for _, p := range e.defersSeen {
		if p == pc {
			return true
		}
	}
	return false
}

// Worlds returns the fused constraint stores as a disjunction: the merged
// state is reachable iff any world is. Diagnostic; the explorer itself keeps
// the worlds separate so splits restore each sibling exactly.
func (e *mentry) Worlds() *symbolic.Disjunction {
	d := &symbolic.Disjunction{}
	for _, w := range e.worlds {
		d.Worlds = append(d.Worlds, w.sym)
	}
	return d
}

// exploreInjectionMerged is the merged-explorer variant of exploreInjection:
// same concrete prefix, same breadth-first discipline, same terminal
// classification, but with three extra moves — running states arriving at a
// merge point are parked until the rest of the frontier drains, parked
// states with identical skeletons are fused and stepped once for all
// worlds, and deterministic event-free cycles are fast-forwarded to the
// watchdog. StatesExplored counts physical state observations (a shared
// step counts once however many worlds ride it; accelerated laps count
// zero), so the report shows the savings directly.
func exploreInjectionMerged(ctx context.Context, spec Spec, inj faults.Injection, ir *InjectionReport, mc *MergeContext) error {
	budget := spec.effectiveBudget()

	m := machine.New(spec.Program, spec.Input, machine.Options{
		Watchdog:  spec.Exec.Watchdog,
		Detectors: spec.Detectors,
	})
	if !m.RunUntil(inj.PC, inj.Occurrence) {
		return nil // fault never activated
	}
	ir.Activated = true
	ir.Merged = true
	liveMerged.Inc()

	st := symexec.FromMachine(m, spec.Detectors, spec.Exec)
	st.Stats = &ir.Exec
	if consumed := m.InputConsumed(); consumed < len(spec.Input) {
		st.SetInput(spec.Input[consumed:])
	}

	initial, err := inj.Apply(st)
	if err != nil {
		return err
	}

	// The main frontier is the same head-indexed queue as the unmerged
	// explorer; deferred holds running states parked at merge points, flushed
	// (grouped, fused, re-queued) when the main frontier drains so every
	// state that can reach a merge point has arrived before fusion.
	frontier := make([]*mentry, 0, len(initial))
	for _, s := range initial {
		frontier = append(frontier, &mentry{st: s})
	}
	head := 0
	var deferred []*mentry
	var visited map[uint64]struct{}
	var keyer *symexec.Keyer
	if spec.Dedup {
		visited = make(map[uint64]struct{}, 1024)
		keyer = symexec.NewKeyer()
	}
	var published int64
	defer func() { liveFrontier.Add(-published) }()
	syncFrontier := func() {
		width := int64(len(frontier)-head) + int64(len(deferred))
		ir.Exec.ObserveFrontier(int(width))
		liveFrontier.Add(width - published)
		published = width
	}
	syncFrontier()

	// countState charges one physical state observation against the budget;
	// false stops the search (budget exhausted or context done).
	countState := func(cur *symexec.State) bool {
		if ir.StatesExplored >= budget {
			ir.BudgetExhausted = true
			return false
		}
		if ir.StatesExplored&ctxCheckMask == 0 {
			if cerr := ctx.Err(); cerr != nil {
				ir.Interrupted = true
				ir.TimedOut = errors.Is(cerr, context.DeadlineExceeded)
				return false
			}
		}
		ir.StatesExplored++
		liveStates.Inc()
		ir.Truncated = ir.Truncated || cur.Truncated
		return true
	}

	classifyTerminal := func(cur *symexec.State) {
		ir.TerminalStates++
		ir.Outcomes[cur.Outcome()]++
		if id, ok := cur.FiredDetector(); ok {
			if ir.DetectorHits == nil {
				ir.DetectorHits = make(map[int64]int)
			}
			ir.DetectorHits[id]++
		}
		ir.Exec.ObserveDepth(int64(cur.Steps))
		if spec.Predicate.Match(cur) {
			if spec.MaxFindings == 0 || len(ir.Findings) < spec.MaxFindings {
				ir.Findings = append(ir.Findings, newFinding(inj, cur, spec.DiscardStates))
				liveFindings.Inc()
			}
		}
	}

	// runSingle drives one plain state through its in-place run, parking it
	// at merge points it has not parked at before and fast-forwarding
	// detected cycles — exactly recurring ones via LoopHash, affine ones via
	// the two-lap probe in affine.go; false stops the search.
	runSingle := func(e *mentry) bool {
		cur := e.st
		w := cur.Opts.Watchdog
		// Cycle-accelerator checkpoint, valid for this in-place run only: a
		// fork, terminal, or parking ends the run and discards it. window
		// records the pc sequence executed since the checkpoint so a
		// detected lap can be analyzed for affinity.
		var (
			cpPC    = -1
			cpTrace *trace.Node
			cpHash  uint64
			cpSteps int
			cpRegs  [isa.NumRegs]isa.Value
			window  []int
			probe   *affineProbe
			misses  = 0
			run     = 0
			nextCP  = cycleCheckpointStart
		)
		for {
			if cur.Running() && mc.MergePoint(cur.PC) && !e.deferredAt(cur.PC) {
				e.defersSeen = append(e.defersSeen, cur.PC)
				deferred = append(deferred, e)
				return true
			}
			if !countState(cur) {
				return false
			}
			if !cur.Running() {
				classifyTerminal(cur)
				return true
			}
			prePC := cur.PC
			if !cur.StepInPlace() {
				ir.Exec.ObserveDepth(int64(cur.Steps))
				for _, s := range cur.Successors() {
					frontier = append(frontier, &mentry{st: s})
				}
				return true
			}
			run++
			if !cur.Running() {
				continue // watchdog or exception: classify on the next lap
			}
			if cpPC >= 0 && len(window) <= maxAffineLap {
				window = append(window, prePC)
			}
			if probe != nil {
				// Verify lap: the pc sequence must replay the recorded lap.
				if probe.window[probe.idx] != prePC {
					probe = nil // control diverged: not affine after all
				} else if probe.idx++; probe.idx == len(probe.window) {
					// Back at the lap boundary: the lap is affine iff the
					// delta repeated exactly (delta evolution is linear, so
					// one repeat proves every future lap's delta equal).
					if d2, ok := lapDelta(&probe.regs0, &cur.Regs); ok && d2 == probe.delta {
						l := len(probe.window)
						if k := (w - 1 - cur.Steps) / l; k > 0 {
							applyAffine(cur, &probe.delta, k)
							cur.Steps += k * l
							ir.Exec.CountCycle(int64(k * l))
						}
					}
					probe = nil
					cpPC = -1 // re-arm at the next doubling
				}
				continue
			}
			if cur.PC == cpPC && cur.Trace == cpTrace {
				if cur.LoopHash() == cpHash {
					// The configuration recurred with only Steps advanced
					// inside a deterministic event-free run: every further
					// lap is identical. Fast-forward whole laps, staying
					// below the watchdog so the remaining real steps raise
					// it at exactly the unmerged run's step count.
					if l := cur.Steps - cpSteps; l > 0 {
						if k := (w - 1 - cur.Steps) / l; k > 0 {
							cur.Steps += k * l
							ir.Exec.CountCycle(int64(k * l))
						}
					}
					cpPC = -1 // re-arm at the next doubling
				} else {
					// The pc recurred but the state did not: a loop with
					// live registers. Arm an affine probe on the recorded
					// lap if its structure allows extrapolation.
					if misses++; misses >= cycleHashMissLimit {
						cpPC = -1 // stop hashing a loop that never settles
					} else if len(window) == cur.Steps-cpSteps {
						if d, ok := lapDelta(&cpRegs, &cur.Regs); ok &&
							affineLapOK(cur.Prog, window, &d) {
							probe = &affineProbe{
								window: append([]int(nil), window...),
								delta:  d,
								regs0:  cur.Regs,
							}
						}
					}
				}
			}
			if probe == nil && run >= nextCP {
				cpPC, cpTrace, cpHash, cpSteps = cur.PC, cur.Trace, cur.LoopHash(), cur.Steps
				cpRegs = cur.Regs
				window = window[:0]
				misses = 0
				for nextCP <= run {
					nextCP *= 2
				}
			}
		}
	}

	// runMerged executes the shared prefix of a fused entry — every step no
	// world can observe — once, then splits back into singles; false
	// stops the search.
	runMerged := func(e *mentry) bool {
		rep := e.st
		w := rep.Opts.Watchdog
		// The most-advanced world hits the watchdog first; its lead over the
		// representative is constant across shared steps.
		maxLag := 0
		for _, wd := range e.worlds {
			if lag := wd.steps - e.repSteps0; lag > maxLag {
				maxLag = lag
			}
		}
		for rep.Steps+maxLag < w && rep.ShareableStep() {
			if !countState(rep) {
				return false
			}
			if !rep.StepInPlace() || !rep.Running() {
				// ShareableStep promised a deterministic non-terminal step;
				// TestShareableStepIsInvisible pins the contract, and a
				// violation here would corrupt every fused world.
				panic(fmt.Sprintf("checker: shareable step at pc %d forked or terminated", rep.PC))
			}
			ir.Exec.CountMerged(int64(len(e.worlds) - 1))
		}
		// Split before the first step a world could observe: each world gets
		// the representative's (shared) skeleton with its own store, trace
		// and advanced step counter. The split pc joins defersSeen — the
		// splits are still skeleton-identical, so parking there again would
		// just fuse and split them forever.
		delta := rep.Steps - e.repSteps0
		seen := append(append([]int(nil), e.defersSeen...), rep.PC)
		for i, wd := range e.worlds {
			c := rep
			if i > 0 {
				c = rep.Clone()
				c.Sym = wd.sym
				c.Trace = wd.tr
				c.Steps = wd.steps + delta
			}
			frontier = append(frontier, &mentry{
				st:          c,
				skipVisited: true,
				defersSeen:  append([]int(nil), seen...),
			})
		}
		return true
	}

	// flushDeferred fuses the parked states: group by skeleton hash in
	// insertion order, confirm each grouping with the exact comparison (a
	// 64-bit collision can never fuse different states), and re-queue groups
	// of two or more as merged entries, loners unchanged.
	flushDeferred := func() {
		type group struct{ members []*mentry }
		var order []*group
		byHash := make(map[uint64][]*group)
		for _, e := range deferred {
			h := e.st.SkeletonHash()
			placed := false
			for _, g := range byHash[h] {
				if symexec.MergeCompatible(g.members[0].st, e.st) {
					g.members = append(g.members, e)
					placed = true
					break
				}
			}
			if !placed {
				g := &group{members: []*mentry{e}}
				byHash[h] = append(byHash[h], g)
				order = append(order, g)
			}
		}
		deferred = deferred[:0]
		for _, g := range order {
			if len(g.members) == 1 {
				e := g.members[0]
				e.skipVisited = true
				frontier = append(frontier, e)
				continue
			}
			rep := g.members[0]
			merged := &mentry{
				st:          rep.st,
				repSteps0:   rep.st.Steps,
				skipVisited: true,
				defersSeen:  rep.defersSeen,
			}
			merged.worlds = make([]mworld, len(g.members))
			for i, m := range g.members {
				merged.worlds[i] = mworld{sym: m.st.Sym, tr: m.st.Trace, steps: m.st.Steps}
				for _, pc := range m.defersSeen {
					if !merged.deferredAt(pc) {
						merged.defersSeen = append(merged.defersSeen, pc)
					}
				}
			}
			frontier = append(frontier, merged)
		}
	}

	for head < len(frontier) || len(deferred) > 0 {
		if head >= len(frontier) {
			flushDeferred()
			syncFrontier()
			continue
		}
		e := frontier[head]
		frontier[head] = nil
		head++
		if head >= 1024 && head*2 >= len(frontier) {
			n := copy(frontier, frontier[head:])
			frontier = frontier[:n]
			head = 0
		}
		if visited != nil && !e.skipVisited {
			k := keyer.Hash(e.st)
			if _, seen := visited[k]; seen {
				ir.Exec.CountDedup()
				continue
			}
			visited[k] = struct{}{}
		}
		var ok bool
		if e.worlds != nil {
			ok = runMerged(e)
		} else {
			ok = runSingle(e)
		}
		if !ok {
			return nil
		}
		syncFrontier()
	}
	return nil
}

// checkMergedExploration is the SYMPLFIED_CHECK_MERGING assertion: re-explore
// the injection unmerged and panic on any drift in the verdict-bearing
// fields. The comparison is tiered by what is exactly comparable:
//
//   - Activation always matches (the concrete prefix is identical).
//   - When either side exhausted its state budget the searches truncated
//     different frontiers (merging's savings mean the merged search got
//     further), so the remaining tallies legitimately diverge.
//   - Otherwise terminal counts, outcome tallies and truncation must match.
//   - Findings are compared canonically (order-insensitive: deferral changes
//     BFS order) unless deduplication is on — dedup keeps the terminal
//     multiset but may elect different trace representatives among key-equal
//     states — or a MaxFindings cap clipped either side, where order decides
//     which findings were kept.
func checkMergedExploration(ctx context.Context, spec Spec, inj faults.Injection, merged InjectionReport) {
	plain := spec
	plain.MergeStates = false
	plain.Merge = nil
	explored, err := runInjectionReal(ctx, plain, inj, false)
	if err != nil {
		panic(fmt.Sprintf("merging cross-check: %s: unmerged exploration failed: %v", inj, err))
	}
	if merged.Panicked || explored.Panicked || merged.Interrupted || explored.Interrupted {
		return // abnormal or wall-clock-dependent endings are not comparable
	}
	if merged.Activated != explored.Activated {
		panic(fmt.Sprintf("merging cross-check: %s: activation drift: merged=%v unmerged=%v",
			inj, merged.Activated, explored.Activated))
	}
	if merged.BudgetExhausted || explored.BudgetExhausted {
		return
	}
	if merged.TerminalStates != explored.TerminalStates || merged.Truncated != explored.Truncated ||
		!reflect.DeepEqual(normalizeForCheck(mergedOutcomesOnly(merged)), normalizeForCheck(mergedOutcomesOnly(explored))) {
		panic(fmt.Sprintf("merging cross-check: %s: tally drift:\nmerged:   terminals=%d truncated=%v outcomes=%v\nunmerged: terminals=%d truncated=%v outcomes=%v",
			inj, merged.TerminalStates, merged.Truncated, merged.Outcomes,
			explored.TerminalStates, explored.Truncated, explored.Outcomes))
	}
	capped := spec.MaxFindings > 0 &&
		(len(merged.Findings) >= spec.MaxFindings || len(explored.Findings) >= spec.MaxFindings)
	if spec.Dedup || capped {
		return
	}
	mf, ef := CanonicalFindings(merged.Findings), CanonicalFindings(explored.Findings)
	if !reflect.DeepEqual(mf, ef) {
		panic(fmt.Sprintf("merging cross-check: %s: findings drift:\nmerged (%d): %v\nunmerged (%d): %v",
			inj, len(mf), mf, len(ef), ef))
	}
}

// mergedOutcomesOnly projects a report onto its outcome tally so the
// DeepEqual above compares outcomes with nil/empty normalization and nothing
// else.
func mergedOutcomesOnly(ir InjectionReport) InjectionReport {
	return InjectionReport{Outcomes: ir.Outcomes}
}

// CanonicalFindings renders findings order-insensitively: the full
// description (injection, outcome, output, symbolic state) plus the decision
// trace, sorted. Two explorations of the same injection agree iff these
// slices are equal; the merged/unmerged equivalence gates (the
// SYMPLFIED_CHECK_MERGING cross-check, the merge smoke test) compare with
// this because deferral legitimately reorders a breadth-first sweep.
func CanonicalFindings(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%s trace=%v", f.Describe(), f.TraceEvents())
	}
	sort.Strings(out)
	return out
}
