package checker

import (
	"fmt"

	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// OutputContainsErr matches states whose output stream contains the symbolic
// error — the paper's example search command (Section 5.4).
func OutputContainsErr() Predicate {
	return Predicate{
		Name:  "output contains err",
		Match: func(s *symexec.State) bool { return s.OutputContainsErr() },
	}
}

// HaltedOutputOtherThan matches runs that halted normally (no exception) but
// printed exactly one value different from want — the tcas study's search
// for undetected incorrect advisories (Section 6.1: "runs in which the
// program did not throw an exception and produced a value other than 1").
// A printed err counts as "other than want": the symbolic value stands for
// at least one concrete value different from want.
func HaltedOutputOtherThan(want int64) Predicate {
	return Predicate{
		Name: fmt.Sprintf("halted with single output != %d", want),
		Match: func(s *symexec.State) bool {
			if s.Outcome() != symexec.OutcomeNormal {
				return false
			}
			vals := s.OutputValues()
			if len(vals) != 1 {
				return len(vals) > 0 // printed extra/missing values: incorrect
			}
			if vals[0].IsErr() {
				return true
			}
			v, _ := vals[0].Concrete()
			return v != want
		},
	}
}

// HaltedOutputEquals matches runs that halted normally printing exactly the
// given concrete values.
func HaltedOutputEquals(want ...int64) Predicate {
	return Predicate{
		Name: fmt.Sprintf("halted with output %v", want),
		Match: func(s *symexec.State) bool {
			if s.Outcome() != symexec.OutcomeNormal {
				return false
			}
			vals := s.OutputValues()
			if len(vals) != len(want) {
				return false
			}
			for i, v := range vals {
				if !v.Equal(isa.Int(want[i])) {
					return false
				}
			}
			return true
		},
	}
}

// IncorrectOutput matches normal terminations whose rendered output differs
// from the expected fault-free output (used for the replace study,
// Section 6.4: "errors ... that lead to an incorrect outcome of the
// program"). Output containing err also counts: it denotes at least one
// concrete incorrect rendering.
func IncorrectOutput(expected string) Predicate {
	return Predicate{
		Name: "halted with incorrect output",
		Match: func(s *symexec.State) bool {
			return s.Outcome() == symexec.OutcomeNormal && s.OutputString() != expected
		},
	}
}

// OutcomeIs matches terminal states with the given outcome.
func OutcomeIs(o symexec.Outcome) Predicate {
	return Predicate{
		Name:  fmt.Sprintf("outcome %s", o),
		Match: func(s *symexec.State) bool { return s.Outcome() == o },
	}
}

// ExceptionOfKind matches states terminated by the given exception kind.
func ExceptionOfKind(k isa.ExceptionKind) Predicate {
	return Predicate{
		Name: fmt.Sprintf("exception %s", k),
		Match: func(s *symexec.State) bool {
			return s.Exc != nil && s.Exc.Kind == k
		},
	}
}

// Undetected wraps p to additionally require that no detector fired, i.e.
// the error evaded detection (the framework's headline question).
func Undetected(p Predicate) Predicate {
	return Predicate{
		Name: p.Name + " and undetected",
		Match: func(s *symexec.State) bool {
			return s.Outcome() != symexec.OutcomeDetected && p.Match(s)
		},
	}
}

// Any matches states satisfying at least one of the predicates.
func Any(ps ...Predicate) Predicate {
	name := ""
	for i, p := range ps {
		if i > 0 {
			name += " or "
		}
		name += p.Name
	}
	return Predicate{
		Name: name,
		Match: func(s *symexec.State) bool {
			for _, p := range ps {
				if p.Match(s) {
					return true
				}
			}
			return false
		},
	}
}

// All matches states satisfying every predicate.
func All(ps ...Predicate) Predicate {
	name := ""
	for i, p := range ps {
		if i > 0 {
			name += " and "
		}
		name += p.Name
	}
	return Predicate{
		Name: name,
		Match: func(s *symexec.State) bool {
			for _, p := range ps {
				if !p.Match(s) {
					return false
				}
			}
			return true
		},
	}
}
