package cli

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseInput(t *testing.T) {
	cases := []struct {
		in   string
		want []int64
	}{
		{"", nil},
		{"  ", nil},
		{"5", []int64{5}},
		{"1,2,3", []int64{1, 2, 3}},
		{" 1 , -2 , 3 ", []int64{1, -2, 3}},
	}
	for _, c := range cases {
		got, err := ParseInput(c.in)
		if err != nil || !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseInput(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, bad := range []string{"x", "1,,2", "1,y"} {
		if _, err := ParseInput(bad); err == nil {
			t.Errorf("ParseInput(%q) accepted", bad)
		}
	}
}

func TestBuiltinApps(t *testing.T) {
	for _, app := range []string{"factorial", "factorial-detectors", "tcas", "replace"} {
		u, err := BuiltinApp(app)
		if err != nil || u.Program == nil {
			t.Errorf("BuiltinApp(%q): %v", app, err)
		}
		if in := DefaultInput(app); len(in) == 0 {
			t.Errorf("DefaultInput(%q) empty", app)
		}
	}
	if _, err := BuiltinApp("nope"); err == nil {
		t.Error("unknown app accepted")
	}
	if DefaultInput("nope") != nil {
		t.Error("unknown app has a default input")
	}
}

func TestLoadUnitFromFiles(t *testing.T) {
	dir := t.TempDir()

	symFile := filepath.Join(dir, "p.sym")
	if err := os.WriteFile(symFile, []byte("\tli $1 1\n\tprint $1\n\thalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	u, err := LoadUnit(symFile, "", false)
	if err != nil || u.Program.Len() != 3 {
		t.Fatalf("LoadUnit sym: %v", err)
	}

	mipsFile := filepath.Join(dir, "p.s")
	if err := os.WriteFile(mipsFile, []byte("\t.text\nmain:\tli $v0, 10\n\tsyscall\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	u, err = LoadUnit(mipsFile, "", true)
	if err != nil || u.Program == nil {
		t.Fatalf("LoadUnit mips: %v", err)
	}

	if _, err := LoadUnit("", "", false); err == nil {
		t.Error("no source accepted")
	}
	if _, err := LoadUnit(symFile, "tcas", false); err == nil {
		t.Error("both -file and -app accepted")
	}
	if _, err := LoadUnit(filepath.Join(dir, "missing.sym"), "", false); err == nil {
		t.Error("missing file accepted")
	}
}
