// Package cli holds helpers shared by the command-line tools: loading
// programs (from assembly files, MIPS files, or the built-in benchmark
// applications) and parsing input streams.
//
// It has no direct paper counterpart — it is the glue between the paper's
// "supporting tools" (§5: the translator, the query generator) and the
// benchmark applications of §6, so each cmd/ binary resolves -app/-file/
// -input identically.
package cli

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"symplfied"
	"symplfied/internal/apps/factorial"
	"symplfied/internal/apps/replace"
	"symplfied/internal/apps/tcas"
)

// LoadUnit loads a program from -file/-app style options.
func LoadUnit(file, app string, isMIPS bool) (*symplfied.Unit, error) {
	switch {
	case file != "" && app != "":
		return nil, fmt.Errorf("use -file or -app, not both")
	case app != "":
		return BuiltinApp(app)
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if isMIPS {
			prog, err := symplfied.TranslateMIPS(file, string(src))
			if err != nil {
				return nil, err
			}
			return &symplfied.Unit{Program: prog}, nil
		}
		return symplfied.Assemble(file, string(src))
	}
	return nil, fmt.Errorf("one of -file or -app is required")
}

// BuiltinApp returns one of the paper's benchmark applications.
func BuiltinApp(app string) (*symplfied.Unit, error) {
	switch app {
	case "factorial":
		return symplfied.Assemble("factorial", factorial.SourcePlain)
	case "factorial-detectors":
		return symplfied.Assemble("factorial-detectors", factorial.SourceDetectors)
	case "tcas":
		return &symplfied.Unit{Program: tcas.Program()}, nil
	case "replace":
		return &symplfied.Unit{Program: replace.Program()}, nil
	}
	return nil, fmt.Errorf("unknown app %q (want factorial, factorial-detectors, tcas, replace)", app)
}

// DefaultInput returns the canonical experiment input for a built-in app, or
// nil when the app has none.
func DefaultInput(app string) []int64 {
	switch app {
	case "factorial", "factorial-detectors":
		return []int64{5}
	case "tcas":
		return tcas.UpwardInput().Slice()
	case "replace":
		return replace.Input("[a-c]x*", "<&>", "axx b cx")
	}
	return nil
}

// ParseInput parses a comma-separated integer stream.
func ParseInput(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input element %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
