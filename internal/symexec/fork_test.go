package symexec

import (
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
)

func stateFor(t *testing.T, src string, input []int64) *State {
	t.Helper()
	u := asm.MustParse("t", src)
	return NewState(u.Program, u.Detectors, input, DefaultOptions())
}

// stepN executes exactly n deterministic steps, positioning the state at
// the intended injection point.
func stepN(t *testing.T, s *State, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !s.Running() || !s.StepInPlace() {
			t.Fatalf("step %d of %d unavailable (pc %d)", i, n, s.PC)
		}
	}
}

// exploreAll exhaustively explores from s and returns the terminal states.
func exploreAll(t *testing.T, s *State) []*State {
	t.Helper()
	var terminals []*State
	frontier := []*State{s}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for cur.Running() && cur.StepInPlace() {
		}
		if !cur.Running() {
			terminals = append(terminals, cur)
			continue
		}
		frontier = append(frontier, cur.Successors()...)
	}
	return terminals
}

// TestComparisonForkConstraints: a branch on err forks into exactly two
// states with complementary constraints (paper: "rl isEqual(I, err) => true
// . rl isEqual(I, err) => false" plus constraint remembering).
func TestComparisonForkConstraints(t *testing.T) {
	s := stateFor(t, `
	read $1
	beqi $1 7 yes
	prints "no"
	halt
yes:	prints "yes"
	halt
`, []int64{0})
	stepN(t, s, 1) // read
	s.Inject(isa.RegLoc(1))
	terminals := exploreAll(t, s)
	if len(terminals) != 2 {
		t.Fatalf("%d terminals, want 2", len(terminals))
	}
	byOut := map[string]*State{}
	for _, f := range terminals {
		byOut[f.OutputString()] = f
	}
	yes, no := byOut["yes"], byOut["no"]
	if yes == nil || no == nil {
		t.Fatalf("outputs %v", byOut)
	}
	// The true case pins the root to 7 and concretizes the register.
	if c := yes.Sym.RootConstraints(0); !c.Admits(7) || c.Admits(8) {
		t.Errorf("true-case constraints %s", c)
	}
	if yes.Regs[1].IsErr() {
		t.Error("true case did not concretize $1 after the equality pin")
	}
	// The false case remembers the disequality.
	if c := no.Sym.RootConstraints(0); c.Admits(7) || !c.Admits(8) {
		t.Errorf("false-case constraints %s", c)
	}
}

// TestUnsatisfiableForkPruned: once the path knows $1 > 10, a subsequent
// "== 3" fork keeps only the false branch (the paper's false-positive
// elimination).
func TestUnsatisfiableForkPruned(t *testing.T) {
	s := stateFor(t, `
	read $1
	setgt $2 $1 10
	beqi $2 0 small
	beqi $1 3 three
	prints "big"
	halt
three:	prints "three"
	halt
small:	prints "small"
	halt
`, []int64{0})
	stepN(t, s, 1) // read
	s.Inject(isa.RegLoc(1))
	terminals := exploreAll(t, s)
	outs := map[string]bool{}
	for _, f := range terminals {
		outs[f.OutputString()] = true
	}
	if outs["three"] {
		t.Errorf("infeasible path (err > 10 and err == 3) not pruned: %v", outs)
	}
	if !outs["big"] || !outs["small"] {
		t.Errorf("feasible paths missing: %v", outs)
	}
}

// TestDivByErrForks: I / err forks into a div-zero exception (divisor == 0)
// and an err result (divisor != 0), per the paper's equations.
func TestDivByErrForks(t *testing.T) {
	s := stateFor(t, `
	read $1
	li $2 10
	div $3 $2 $1
	print $3
	halt
`, []int64{1})
	stepN(t, s, 2) // read, li
	s.Inject(isa.RegLoc(1))
	terminals := exploreAll(t, s)
	if len(terminals) != 2 {
		t.Fatalf("%d terminals, want 2", len(terminals))
	}
	var crash, normal *State
	for _, f := range terminals {
		switch f.Outcome() {
		case OutcomeCrash:
			crash = f
		case OutcomeNormal:
			normal = f
		}
	}
	if crash == nil || crash.Exc.Kind != isa.ExcDivZero {
		t.Fatalf("missing div-zero case: %v", crash)
	}
	if c := crash.Sym.RootConstraints(0); !c.Admits(0) || c.Admits(1) {
		t.Errorf("div-zero constraints %s", c)
	}
	if normal == nil || !normal.OutputContainsErr() {
		t.Fatalf("missing err-result case")
	}
	if c := normal.Sym.RootConstraints(0); c.Admits(0) {
		t.Errorf("nonzero-divisor constraints %s", c)
	}
}

// TestLoadThroughErrPointer: the load forks over every defined memory word
// (with the base register pinned per target) plus the illegal-address case,
// per the paper's memory-handling sub-model.
func TestLoadThroughErrPointer(t *testing.T) {
	s := stateFor(t, `
	li $1 11
	st $1 100($0)
	li $1 22
	st $1 200($0)
	read $2
	ld $3 0($2)
	print $3
	halt
`, []int64{0})
	stepN(t, s, 5) // li, st, li, st, read
	s.Inject(isa.RegLoc(2))
	terminals := exploreAll(t, s)

	outs := map[string]*State{}
	crashes := 0
	for _, f := range terminals {
		if f.Outcome() == OutcomeCrash {
			crashes++
			if f.Exc.Kind != isa.ExcIllegalAddr {
				t.Errorf("crash kind %v", f.Exc.Kind)
			}
			// The exception case excludes both defined addresses.
			c := f.Sym.RootConstraints(0)
			if c.Admits(100) || c.Admits(200) {
				t.Errorf("exception case admits a defined address: %s", c)
			}
			continue
		}
		outs[f.OutputString()] = f
	}
	if crashes != 1 {
		t.Errorf("%d illegal-address cases, want 1", crashes)
	}
	if len(outs) != 2 || outs["11"] == nil || outs["22"] == nil {
		t.Fatalf("resolved loads %v", outs)
	}
	if c := outs["11"].Sym.RootConstraints(0); !c.Admits(100) || c.Admits(200) {
		t.Errorf("load@100 constraints %s", c)
	}
}

// TestStoreThroughErrPointer: the store forks over every defined word plus
// the fresh-location case (memory unchanged at defined addresses).
func TestStoreThroughErrPointer(t *testing.T) {
	s := stateFor(t, `
	li $1 5
	st $1 100($0)
	read $2
	li $3 9
	st $3 0($2)
	ld $4 100($0)
	print $4
	halt
`, []int64{0})
	stepN(t, s, 3) // li, st, read
	s.Inject(isa.RegLoc(2))
	terminals := exploreAll(t, s)
	outs := map[string]int{}
	for _, f := range terminals {
		if f.Outcome() != OutcomeNormal {
			t.Fatalf("unexpected outcome %v (%v)", f.Outcome(), f.Exc)
		}
		outs[f.OutputString()]++
	}
	// Overwrite case prints 9; fresh-location case prints the original 5.
	if outs["9"] != 1 || outs["5"] != 1 {
		t.Fatalf("outputs %v, want one 9 and one 5", outs)
	}
}

// TestJrErrTargetForks: jr through err enumerates every valid code location
// (pinning the root) plus the illegal-instruction case.
func TestJrErrTargetForks(t *testing.T) {
	s := stateFor(t, `
	read $1
	jr $1
	halt
	halt
`, []int64{0})
	stepN(t, s, 1) // read
	s.Inject(isa.RegLoc(1))
	succs := s.Successors()
	if len(succs) != 5 { // 4 code locations + illegal instruction
		t.Fatalf("%d successors, want 5", len(succs))
	}
	excs := 0
	for _, c := range succs {
		if !c.Running() {
			excs++
			if c.Exc.Kind != isa.ExcIllegalInstr {
				t.Errorf("exception kind %v", c.Exc.Kind)
			}
			continue
		}
		tm, ok := c.Sym.Term(isa.RegLoc(1))
		if !ok {
			// The register may have been concretized by the equality pin.
			if c.Regs[1].IsErr() {
				t.Error("landing state kept unpinned err in $1")
			}
			continue
		}
		if v, exact := c.Sym.ExactValue(tm); !exact || int(v) != c.PC {
			t.Errorf("landing at %d constrained to %v", c.PC, tm)
		}
	}
	if excs != 1 {
		t.Errorf("%d exception successors, want 1", excs)
	}
}

// TestControlTargetCapTruncates: the MaxControlTargets cap limits fan-out
// and marks states truncated (no silent under-counting).
func TestControlTargetCapTruncates(t *testing.T) {
	u := asm.MustParse("t", `
	read $1
	jr $1
	halt
	halt
	halt
	halt
`)
	opts := DefaultOptions()
	opts.MaxControlTargets = 2
	s := NewState(u.Program, nil, []int64{0}, opts)
	stepN(t, s, 1) // read
	s.Inject(isa.RegLoc(1))
	succs := s.Successors()
	if len(succs) != 3 { // 2 capped targets + exception
		t.Fatalf("%d successors, want 3", len(succs))
	}
	for _, c := range succs {
		if !c.Truncated {
			t.Error("capped successor not marked truncated")
		}
	}
}

// TestSymbolicMemMode: with SymbolicMem, an erroneous load returns a fresh
// err instead of enumerating memory.
func TestSymbolicMemMode(t *testing.T) {
	u := asm.MustParse("t", `
	li $1 5
	st $1 100($0)
	read $2
	ld $3 0($2)
	print $3
	halt
`)
	opts := DefaultOptions()
	opts.SymbolicMem = true
	s := NewState(u.Program, nil, []int64{0}, opts)
	stepN(t, s, 3) // li, st, read
	s.Inject(isa.RegLoc(2))
	succs := s.Successors()
	if len(succs) != 2 { // exception + symbolic result
		t.Fatalf("%d successors, want 2", len(succs))
	}
	symbolicSeen := false
	for _, c := range succs {
		if c.Running() && c.Regs[3].IsErr() {
			symbolicSeen = true
		}
	}
	if !symbolicSeen {
		t.Error("symbolic-result successor missing")
	}
}

// TestReadErrInput: err values in the input stream propagate to registers.
func TestReadErrInput(t *testing.T) {
	u := asm.MustParse("t", "\tread $1\n\tprint $1\n\thalt\n")
	s := NewState(u.Program, nil, nil, DefaultOptions())
	s.In = []isa.Value{isa.Err()}
	terminals := exploreAll(t, s)
	if len(terminals) != 1 || !terminals[0].OutputContainsErr() {
		t.Fatalf("terminals %v", terminals)
	}
}

// TestOutcomeClassification covers the Outcome mapping.
func TestOutcomeClassification(t *testing.T) {
	cases := []struct {
		src  string
		want Outcome
	}{
		{"\thalt\n", OutcomeNormal},
		{"\tthrow \"x\"\n", OutcomeCrash},
		{"\tld $1 9($0)\n\thalt\n", OutcomeCrash},
		{"loop:\tjmp loop\n", OutcomeHang},
		{"\tdet(1, $1, ==, 5)\n\tcheck #1\n\thalt\n", OutcomeDetected},
	}
	for _, c := range cases {
		u := asm.MustParse("t", c.src)
		opts := DefaultOptions()
		opts.Watchdog = 50
		s := NewState(u.Program, u.Detectors, nil, opts)
		terminals := exploreAll(t, s)
		if len(terminals) != 1 {
			t.Fatalf("%q: %d terminals", c.src, len(terminals))
		}
		if got := terminals[0].Outcome(); got != c.want {
			t.Errorf("%q: outcome %v, want %v", c.src, got, c.want)
		}
	}
	running := NewState(asm.MustParse("t", "\thalt\n").Program, nil, nil, DefaultOptions())
	if running.Outcome() != OutcomeRunning {
		t.Error("running state misclassified")
	}
}

// TestFromMachineTransfersState: lifting a concrete machine mid-run
// preserves registers, memory, output, and step count.
func TestFromMachineTransfersState(t *testing.T) {
	u := asm.MustParse("t", `
	li $1 7
	st $1 50($0)
	prints "pre"
	read $2
	print $2
	halt
`)
	m := machine.New(u.Program, []int64{9}, machine.Options{})
	if !m.RunUntil(3, 1) {
		t.Fatal("breakpoint not reached")
	}
	st := FromMachine(m, u.Detectors, DefaultOptions())
	st.SetInput([]int64{9})
	if st.PC != 3 || st.Steps != m.Steps() {
		t.Fatalf("PC/steps not transferred: %d/%d", st.PC, st.Steps)
	}
	if v, ok := st.Mem[50]; !ok || !v.Equal(isa.Int(7)) {
		t.Fatal("memory not transferred")
	}
	terminals := exploreAll(t, st)
	if len(terminals) != 1 || terminals[0].OutputString() != "pre9" {
		t.Fatalf("continuation wrong: %q", terminals[0].OutputString())
	}
}

// TestMemTargetCapTruncates: MaxMemTargets bounds erroneous-pointer fan-out
// for loads and stores, marking survivors truncated.
func TestMemTargetCapTruncates(t *testing.T) {
	src := `
	li $1 1
	st $1 100($0)
	li $1 2
	st $1 200($0)
	li $1 3
	st $1 300($0)
	read $2
	ld $3 0($2)
	st $3 0($2)
	halt
`
	u := asm.MustParse("t", src)
	opts := DefaultOptions()
	opts.MaxMemTargets = 2
	s := NewState(u.Program, nil, []int64{0}, opts)
	stepN(t, s, 7) // 3x(li,st) + read
	s.Inject(isa.RegLoc(2))

	succs := s.Successors() // the capped load
	if len(succs) != 3 {    // 2 capped targets + exception
		t.Fatalf("load: %d successors, want 3", len(succs))
	}
	for _, c := range succs {
		if !c.Truncated {
			t.Error("capped load successor not marked truncated")
		}
	}
}

// TestStoreThroughErrPointerFreshOnly: when every defined address is ruled
// out by constraints, only the fresh-location successor survives.
func TestStoreThroughErrPointerFreshOnly(t *testing.T) {
	src := `
	li $1 5
	st $1 100($0)
	read $2
	setgt $3 $2 1000
	beqi $3 0 out
	st $1 0($2)
out:	halt
`
	u := asm.MustParse("t", src)
	s := NewState(u.Program, nil, []int64{0}, DefaultOptions())
	stepN(t, s, 3)
	s.Inject(isa.RegLoc(2))
	terminals := exploreAll(t, s)
	// Paths: big branch (err > 1000): the store cannot hit address 100
	// (pruned), so only the fresh-location case continues; small branch
	// skips the store entirely.
	for _, f := range terminals {
		if f.Outcome() != OutcomeNormal {
			t.Fatalf("outcome %v (%v)", f.Outcome(), f.Exc)
		}
		if v, ok := f.Mem[100]; !ok || !v.Equal(isa.Int(5)) {
			t.Errorf("defined word overwritten despite contradiction: %v", f.Mem[100])
		}
	}
	if len(terminals) != 2 {
		t.Fatalf("%d terminals, want 2", len(terminals))
	}
}

// TestRelationalPruning: comparisons between two distinct erroneous
// quantities accumulate difference constraints, so a path that assumes
// x < y and later x > y over the same unmodified values is pruned — a
// refinement over the paper's model, which leaves err-vs-err forks wholly
// unconstrained.
func TestRelationalPruning(t *testing.T) {
	s := stateFor(t, `
	read $1
	read $2
	setlt $3 $1 $2
	beqi $3 0 other
	setgt $4 $1 $2
	beqi $4 0 consistent
	prints "impossible"
	halt
consistent:
	prints "lt"
	halt
other:
	prints "ge"
	halt
`, []int64{0, 0})
	stepN(t, s, 2) // both reads
	s.Inject(isa.RegLoc(1))
	s.Inject(isa.RegLoc(2))
	terminals := exploreAll(t, s)
	outs := map[string]int{}
	for _, f := range terminals {
		outs[f.OutputString()]++
	}
	if outs["impossible"] != 0 {
		t.Errorf("contradictory path (x<y && x>y) not pruned: %v", outs)
	}
	if outs["lt"] == 0 || outs["ge"] == 0 {
		t.Errorf("feasible relational paths missing: %v", outs)
	}
}

// TestRelationalEqualityPropagation: assuming x == y makes later x < y
// forks collapse to false.
func TestRelationalEqualityPropagation(t *testing.T) {
	s := stateFor(t, `
	read $1
	read $2
	beq $1 $2 equal
	prints "ne"
	halt
equal:
	setlt $3 $1 $2
	beqi $3 0 ok
	prints "broken"
	halt
ok:
	prints "eq"
	halt
`, []int64{0, 0})
	stepN(t, s, 2)
	s.Inject(isa.RegLoc(1))
	s.Inject(isa.RegLoc(2))
	terminals := exploreAll(t, s)
	outs := map[string]int{}
	for _, f := range terminals {
		outs[f.OutputString()]++
	}
	if outs["broken"] != 0 {
		t.Errorf("x == y then x < y not pruned: %v", outs)
	}
	if outs["eq"] == 0 || outs["ne"] == 0 {
		t.Errorf("feasible paths missing: %v", outs)
	}
}
