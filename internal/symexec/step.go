package symexec

import (
	"fmt"

	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/obs"
	"symplfied/internal/symbolic"
	"symplfied/internal/trace"
)

// Successors computes the state's rewrite successors. A terminated state has
// none. Deterministic instructions yield one successor; instructions whose
// outcome depends on an erroneous value yield one successor per
// nondeterministic resolution, with path constraints recorded and
// unsatisfiable resolutions pruned (the false-positive elimination of
// Section 5.2).
func (s *State) Successors() []*State {
	if !s.Running() {
		return nil
	}
	if s.Steps >= s.Opts.Watchdog {
		c := s.Clone()
		c.raise(isa.ExcTimeout, fmt.Sprintf("watchdog after %d instructions", s.Steps))
		s.Stats.CountWatchdog()
		return []*State{c}
	}
	if !s.Prog.ValidPC(s.PC) {
		c := s.Clone()
		c.raise(isa.ExcIllegalInstr, fmt.Sprintf("fetch from %d", s.PC))
		return []*State{c}
	}
	in := s.Prog.At(s.PC)

	if bin, imm, ok := isa.ArithOp(in.Op); ok {
		return s.stepArith(in, bin, imm)
	}
	if cmp, imm, ok := isa.CmpForOp(in.Op); ok {
		return s.stepSetCmp(in, cmp, imm)
	}
	switch in.Op {
	case isa.OpMov:
		c := s.fork()
		op := c.regOperand(in.Rs)
		c.setReg(in.Rd, op.Val, op.Term, op.HasTerm)
		c.PC++
		return one(c)
	case isa.OpLi:
		c := s.fork()
		c.setReg(in.Rd, isa.Int(in.Imm), symbolic.Term{}, false)
		c.PC++
		return one(c)
	case isa.OpLui:
		c := s.fork()
		c.setReg(in.Rd, isa.Int(in.Imm<<16), symbolic.Term{}, false)
		c.PC++
		return one(c)
	case isa.OpLd:
		return s.stepLoad(in)
	case isa.OpSt:
		return s.stepStore(in)
	case isa.OpBeq, isa.OpBne, isa.OpBeqi, isa.OpBnei:
		return s.stepBranch(in)
	case isa.OpJmp:
		c := s.fork()
		c.PC = in.Target
		return one(c)
	case isa.OpJal:
		c := s.fork()
		c.setReg(isa.RegRA, isa.Int(int64(s.PC+1)), symbolic.Term{}, false)
		c.PC = in.Target
		return one(c)
	case isa.OpJr:
		return s.stepJr(in)
	case isa.OpRead:
		return s.stepRead(in)
	case isa.OpPrint:
		c := s.fork()
		v := c.Regs[in.Rd]
		if in.Rd == isa.RegZero {
			v = isa.Int(0)
		}
		c.Out = append(c.Out, machine.OutItem{Val: v})
		if v.IsErr() {
			c.note(trace.KindOutput, "printed err")
		}
		c.PC++
		return one(c)
	case isa.OpPrints:
		c := s.fork()
		c.Out = append(c.Out, machine.OutItem{IsStr: true, Str: in.Str})
		c.PC++
		return one(c)
	case isa.OpNop:
		c := s.fork()
		c.PC++
		return one(c)
	case isa.OpHalt:
		c := s.fork()
		c.Status = machine.StatusHalted
		c.note(trace.KindHalt, "halt (output %q)", c.OutputString())
		return one(c)
	case isa.OpThrow:
		c := s.fork()
		c.raise(isa.ExcThrow, in.Str)
		return one(c)
	case isa.OpCheck:
		return s.stepCheck(in)
	}
	c := s.Clone()
	c.raise(isa.ExcIllegalInstr, fmt.Sprintf("unsupported opcode %s", in.Op))
	return one(c)
}

// fork clones the state and accounts one executed instruction.
func (s *State) fork() *State {
	c := s.Clone()
	c.Steps++
	return c
}

func one(c *State) []*State { return []*State{c} }

// constrainOperand conjoins "op cmp rhs" onto the path, returning false when
// the path becomes infeasible. Operands of unknown lineage yield no
// constraint (sound: both forks stay live, as in the paper's model).
func (s *State) constrainOperand(op symbolic.Operand, cmp isa.Cmp, rhs int64, why string) bool {
	if op.Val.IsConcrete() {
		v, _ := op.Val.Concrete()
		return isa.EvalCmp(cmp, v, rhs)
	}
	if !op.HasTerm {
		return true
	}
	if !s.Sym.ConstrainTerm(op.Term, cmp, rhs) {
		return false
	}
	s.note(trace.KindConstraint, "%s: %s %s %d", why, op.Term, cmp, rhs)
	s.concretize()
	return true
}

// applyCmp conjoins "x cmp y" onto the path. It handles err-vs-concrete in
// both positions and err-vs-err over a shared root; err-vs-err over
// unrelated roots yields no constraint (the paper's over-approximation).
func (s *State) applyCmp(cmp isa.Cmp, x, y symbolic.Operand, why string) bool {
	xc, xConc := x.Val.Concrete()
	yc, yConc := y.Val.Concrete()
	switch {
	case xConc && yConc:
		return isa.EvalCmp(cmp, xc, yc)
	case !xConc && yConc:
		return s.constrainOperand(x, cmp, yc, why)
	case xConc && !yConc:
		return s.constrainOperand(y, cmp.Swap(), xc, why)
	default:
		if x.HasTerm && y.HasTerm && x.Term.Root == y.Term.Root {
			diff, c, isConst, ok := x.Term.SubTerm(y.Term)
			if ok {
				if isConst {
					return isa.EvalCmp(cmp, c, 0)
				}
				return s.constrainOperand(symbolic.ErrOperand(diff), cmp, 0, why)
			}
		}
		if x.HasTerm && y.HasTerm {
			// Distinct roots: record a difference constraint when the
			// relation fits the difference-logic fragment.
			handled, sat := s.Sym.AddRel(x.Term, cmp, y.Term)
			if handled {
				if !sat {
					return false
				}
				s.note(trace.KindConstraint, "%s: %s %s %s", why, x.Term, cmp, y.Term)
			}
		}
		return true
	}
}

// forkCmp resolves "x cmp y", producing the surviving true- and false-case
// states (either may be nil after pruning). kind tags the fork in ExecStats
// (obs.ForkCmp for ordinary comparisons, obs.ForkDetector for CHECKs).
func (s *State) forkCmp(kind string, cmp isa.Cmp, x, y symbolic.Operand, why string) (tState, fState *State) {
	switch symbolic.DecideCmp(cmp, x, y) {
	case symbolic.CmpTrue:
		return s.fork(), nil
	case symbolic.CmpFalse:
		return nil, s.fork()
	}
	t := s.fork()
	t.note(trace.KindFork, "%s: assume %s", why, cmp)
	if !t.applyCmp(cmp, x, y, why) {
		t = nil
		s.Stats.CountPrune()
	}
	f := s.fork()
	f.note(trace.KindFork, "%s: assume %s", why, cmp.Negate())
	if !f.applyCmp(cmp.Negate(), x, y, why) {
		f = nil
		s.Stats.CountPrune()
	}
	if t != nil && f != nil {
		s.Stats.CountFork(kind)
	}
	return t, f
}

func (s *State) operandPair(in isa.Instr, imm bool) (x, y symbolic.Operand) {
	x = s.regOperand(in.Rs)
	if imm {
		y = symbolic.ConcreteOperand(in.Imm)
	} else {
		y = s.regOperand(in.Rt)
	}
	return x, y
}

func (s *State) stepArith(in isa.Instr, bin isa.BinOp, imm bool) []*State {
	x, y := s.operandPair(in, imm)
	res := symbolic.PropagateBin(bin, x, y, s.Opts.AffineTracking)
	switch {
	case res.DivZero:
		c := s.fork()
		c.raise(isa.ExcDivZero, "")
		return one(c)
	case res.ForkOnDivisor:
		// Paper: eq I / err = if isEqual(err, 0) then throw "div-zero" else err.
		var out []*State
		zero := s.fork()
		zero.note(trace.KindFork, "divisor err: assume == 0")
		if zero.constrainOperand(res.Divisor, isa.CmpEq, 0, "div-zero case") {
			zero.raise(isa.ExcDivZero, "erroneous divisor assumed zero")
			out = append(out, zero)
		} else {
			s.Stats.CountPrune()
		}
		nz := s.fork()
		nz.note(trace.KindFork, "divisor err: assume != 0")
		if nz.constrainOperand(res.Divisor, isa.CmpNe, 0, "div-nonzero case") {
			nz.setReg(in.Rd, isa.Err(), symbolic.Term{}, false)
			nz.PC++
			out = append(out, nz)
		} else {
			s.Stats.CountPrune()
		}
		if len(out) == 2 {
			s.Stats.CountFork(obs.ForkDivisor)
		}
		return out
	default:
		c := s.fork()
		c.setReg(in.Rd, res.Val, res.Term, res.HasTerm)
		c.PC++
		return one(c)
	}
}

func (s *State) stepSetCmp(in isa.Instr, cmp isa.Cmp, imm bool) []*State {
	x, y := s.operandPair(in, imm)
	why := fmt.Sprintf("%s at %s", in.Op, s.Prog.Locate(s.PC))
	t, f := s.forkCmp(obs.ForkCmp, cmp, x, y, why)
	var out []*State
	if t != nil {
		t.setReg(in.Rd, isa.Int(1), symbolic.Term{}, false)
		t.PC++
		out = append(out, t)
	}
	if f != nil {
		f.setReg(in.Rd, isa.Int(0), symbolic.Term{}, false)
		f.PC++
		out = append(out, f)
	}
	return out
}

func (s *State) stepBranch(in isa.Instr) []*State {
	x := s.regOperand(in.Rs)
	var y symbolic.Operand
	switch in.Op {
	case isa.OpBeq, isa.OpBne:
		y = s.regOperand(in.Rt)
	default:
		y = symbolic.ConcreteOperand(in.Imm)
	}
	cmp := isa.CmpEq
	if in.Op == isa.OpBne || in.Op == isa.OpBnei {
		cmp = isa.CmpNe
	}
	why := fmt.Sprintf("%s at %s", in.Op, s.Prog.Locate(s.PC))
	t, f := s.forkCmp(obs.ForkCmp, cmp, x, y, why)
	var out []*State
	if t != nil {
		t.PC = in.Target
		out = append(out, t)
	}
	if f != nil {
		f.PC++
		out = append(out, f)
	}
	return out
}

// definedAddrsSorted returns the defined memory addresses in order.
func (s *State) definedAddrsSorted() []int64 {
	addrs := make([]int64, 0, len(s.Mem))
	for a := range s.Mem {
		addrs = append(addrs, a)
	}
	sortInt64s(addrs)
	return addrs
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func (s *State) stepLoad(in isa.Instr) []*State {
	base := s.regOperand(in.Rs)
	if bc, ok := base.Val.Concrete(); ok {
		addr := bc + in.Imm
		c := s.fork()
		op, defined := c.memOperand(addr)
		if !defined {
			c.raise(isa.ExcIllegalAddr, fmt.Sprintf("load from undefined %d", addr))
			return one(c)
		}
		c.setReg(in.Rt, op.Val, op.Term, op.HasTerm)
		c.PC++
		return one(c)
	}

	// Erroneous pointer (Section 5.2, memory-handling sub-model): either the
	// program "retrieves the contents of an arbitrary memory location or
	// throws an illegal-address exception".
	var out []*State

	exc := s.fork()
	exc.note(trace.KindFork, "load through erroneous pointer: assume undefined address")
	feasible := true
	for _, a := range s.definedAddrsSorted() {
		if !exc.constrainOperand(base, isa.CmpNe, a-in.Imm, "address not defined") {
			feasible = false
			break
		}
	}
	if feasible {
		exc.raise(isa.ExcIllegalAddr, "load through erroneous pointer")
		out = append(out, exc)
	} else {
		s.Stats.CountPrune()
	}

	if s.Opts.SymbolicMem {
		c := s.fork()
		c.note(trace.KindFork, "load through erroneous pointer: symbolic result")
		c.setReg(in.Rt, isa.Err(), symbolic.Term{}, false)
		c.PC++
		out = append(out, c)
		s.countFan(obs.ForkLoad, len(out))
		return out
	}

	addrs := s.definedAddrsSorted()
	truncated := false
	if s.Opts.MaxMemTargets > 0 && len(addrs) > s.Opts.MaxMemTargets {
		addrs = addrs[:s.Opts.MaxMemTargets]
		truncated = true
	}
	for _, a := range addrs {
		if !s.feasibleEq(base, a-in.Imm) {
			s.Stats.CountPrune()
			continue
		}
		c := s.fork()
		if !c.constrainOperand(base, isa.CmpEq, a-in.Imm, "load resolves") {
			s.Stats.CountPrune()
			continue
		}
		c.note(trace.KindFork, "load through erroneous pointer resolved to %d", a)
		op, _ := c.memOperand(a)
		c.setReg(in.Rt, op.Val, op.Term, op.HasTerm)
		c.PC++
		c.Truncated = c.Truncated || truncated
		out = append(out, c)
	}
	if truncated {
		s.Stats.CountFanout()
		for _, c := range out {
			c.Truncated = true
		}
	}
	s.countFan(obs.ForkLoad, len(out))
	return out
}

// feasibleEq reports whether conjoining "op == v" could leave the path
// satisfiable, without committing anything: the probe runs inside a
// constraint scope (symbolic.Store.Push/Pop) on the receiver's own store and
// rewinds before returning. The enumeration fan-outs (loads, stores, jr) ask
// this before paying for a full state clone, so infeasible candidates cost a
// scoped solver delta instead of a fork. The verdict matches what
// constrainOperand on a clone would return, since the clone's store content
// is identical.
func (s *State) feasibleEq(op symbolic.Operand, v int64) bool {
	if op.Val.IsConcrete() {
		c, _ := op.Val.Concrete()
		return c == v
	}
	if !op.HasTerm {
		return true
	}
	sc := s.Sym.Push()
	ok := s.Sym.ConstrainTerm(op.Term, isa.CmpEq, v)
	s.Sym.Pop(sc)
	return ok
}

// countFan records an n-way fan-out as n-1 forks of the given kind (so a
// plain two-way fork and a two-successor enumeration weigh the same).
func (s *State) countFan(kind string, n int) {
	for i := 1; i < n; i++ {
		s.Stats.CountFork(kind)
	}
}

func (s *State) stepStore(in isa.Instr) []*State {
	base := s.regOperand(in.Rs)
	val := s.regOperand(in.Rt)
	if bc, ok := base.Val.Concrete(); ok {
		c := s.fork()
		c.setMem(bc+in.Imm, val.Val, val.Term, val.HasTerm)
		c.PC++
		return one(c)
	}

	// Erroneous pointer: "either overwrites the contents of an arbitrary
	// memory location, or creates a new value in memory" (Section 5.2).
	var out []*State
	addrs := s.definedAddrsSorted()
	enumAddrs := addrs
	truncated := false
	if s.Opts.MaxMemTargets > 0 && len(enumAddrs) > s.Opts.MaxMemTargets {
		enumAddrs = enumAddrs[:s.Opts.MaxMemTargets]
		truncated = true
	}
	for _, a := range enumAddrs {
		if !s.feasibleEq(base, a-in.Imm) {
			s.Stats.CountPrune()
			continue
		}
		c := s.fork()
		if !c.constrainOperand(base, isa.CmpEq, a-in.Imm, "store resolves") {
			s.Stats.CountPrune()
			continue
		}
		c.note(trace.KindFork, "store through erroneous pointer resolved to %d", a)
		c.setMem(a, val.Val, val.Term, val.HasTerm)
		c.PC++
		c.Truncated = c.Truncated || truncated
		out = append(out, c)
	}

	// New-location case: the store defines a word at an address the program
	// has not touched; since loads from undefined addresses fault anyway,
	// the write is unobservable through defined memory.
	fresh := s.fork()
	fresh.note(trace.KindFork, "store through erroneous pointer: assume fresh location")
	feasible := true
	for _, a := range addrs {
		if !fresh.constrainOperand(base, isa.CmpNe, a-in.Imm, "address not previously defined") {
			feasible = false
			break
		}
	}
	if feasible {
		fresh.PC++
		fresh.Truncated = fresh.Truncated || truncated
		out = append(out, fresh)
	} else {
		s.Stats.CountPrune()
	}
	if truncated {
		s.Stats.CountFanout()
		for _, c := range out {
			c.Truncated = true
		}
	}
	s.countFan(obs.ForkStore, len(out))
	return out
}

func (s *State) stepJr(in isa.Instr) []*State {
	target := s.regOperand(in.Rs)
	if tc, ok := target.Val.Concrete(); ok {
		c := s.fork()
		c.PC = int(tc)
		return one(c)
	}

	// Erroneous control target (Section 5.2): "the program either jumps to
	// an arbitrary (but valid) code location or throws an illegal
	// instruction exception".
	var out []*State
	limit := s.Prog.Len()
	truncated := false
	if s.Opts.MaxControlTargets > 0 && limit > s.Opts.MaxControlTargets {
		limit = s.Opts.MaxControlTargets
		truncated = true
	}
	for pc := 0; pc < limit; pc++ {
		if !s.feasibleEq(target, int64(pc)) {
			s.Stats.CountPrune()
			continue
		}
		c := s.fork()
		if !c.constrainOperand(target, isa.CmpEq, int64(pc), "control target resolves") {
			s.Stats.CountPrune()
			continue
		}
		c.note(trace.KindControl, "control transferred through erroneous target to %s", s.Prog.Locate(pc))
		c.PC = pc
		c.Truncated = truncated
		out = append(out, c)
	}
	exc := s.fork()
	exc.note(trace.KindFork, "erroneous control target: assume invalid code address")
	exc.raise(isa.ExcIllegalInstr, "jump through erroneous target")
	exc.Truncated = truncated
	out = append(out, exc)
	if truncated {
		s.Stats.CountFanout()
	}
	s.countFan(obs.ForkControl, len(out))
	return out
}

func (s *State) stepRead(in isa.Instr) []*State {
	c := s.fork()
	if c.InPos >= len(c.In) {
		c.raise(isa.ExcThrow, "end of input")
		return one(c)
	}
	v := c.In[c.InPos]
	c.InPos++
	if n, ok := v.Concrete(); ok {
		c.setReg(in.Rd, isa.Int(n), symbolic.Term{}, false)
	} else {
		c.setReg(in.Rd, isa.Err(), symbolic.Term{}, false)
	}
	c.PC++
	return one(c)
}

func (s *State) stepCheck(in isa.Instr) []*State {
	det, ok := s.Dets.Lookup(in.Imm)
	if !ok {
		c := s.fork()
		c.raise(isa.ExcThrow, fmt.Sprintf("unknown detector %d", in.Imm))
		return one(c)
	}
	target, err := det.TargetOperand(s)
	if err != nil {
		c := s.fork()
		c.raise(isa.ExcThrow, err.Error())
		c.Exc.Detector = det.ID
		return one(c)
	}
	expr, err := det.EvalExpr(s, s.Opts.AffineTracking)
	if err != nil {
		c := s.fork()
		c.raise(isa.ExcThrow, err.Error())
		c.Exc.Detector = det.ID
		return one(c)
	}
	why := fmt.Sprintf("detector %d at %s", det.ID, s.Prog.Locate(s.PC))
	pass, fail := s.forkCmp(obs.ForkDetector, det.Cmp, target, expr, why)
	var out []*State
	if pass != nil {
		pass.note(trace.KindCheckPass, "detector %d passed: %s", det.ID, det)
		pass.PC++
		out = append(out, pass)
	}
	if fail != nil {
		fail.note(trace.KindDetect, "detector %d fired: %s", det.ID, det)
		fail.raise(isa.ExcDetected, fmt.Sprintf("detector %d: %s", det.ID, det))
		fail.Exc.Detector = det.ID
		out = append(out, fail)
	}
	return out
}
