package symexec

import (
	"testing"

	"symplfied/internal/isa"
)

// TestPermanentFaultSemantics: a stuck-at register keeps one symbolic root
// forever — writes are discarded and every read observes the same value, so
// repeated comparisons resolve deterministically after the first fork.
func TestPermanentFaultSemantics(t *testing.T) {
	s := stateFor(t, `
	read $1
	li $1 5         -- discarded under the stuck-at fault
loop:	setgt $2 $1 1
	beqi $2 0 exit
	jmp loop        -- loops forever while the stuck value stays > 1
exit:	print $1
	halt
`, []int64{3})
	opts := s.Opts
	opts.Watchdog = 200
	s.Opts = opts

	stepN(t, s, 1) // read
	s.InjectPermanent(isa.RegLoc(1))

	terminals := exploreAll(t, s)
	// Exactly two worlds: stuck value <= 1 (exit, prints it) or > 1 (hang).
	// No per-iteration re-forking: the comparison re-evaluates the same
	// root under the same constraints.
	if len(terminals) != 2 {
		for _, f := range terminals {
			t.Logf("terminal: %v out=%q sym=%s", f.Outcome(), f.OutputString(), f.Sym.Describe())
		}
		t.Fatalf("%d terminals, want 2", len(terminals))
	}
	var hangs, exits int
	for _, f := range terminals {
		switch f.Outcome() {
		case OutcomeHang:
			hangs++
			if c := f.Sym.RootConstraints(0); c.Admits(1) {
				t.Errorf("hang world admits stuck value 1: %s", c)
			}
		case OutcomeNormal:
			exits++
			if c := f.Sym.RootConstraints(0); c.Admits(2) {
				t.Errorf("exit world admits stuck value 2: %s", c)
			}
			// The write "li $1 5" must not have revived the register.
			if f.OutputString() == "5" {
				t.Error("stuck register accepted a write")
			}
		default:
			t.Errorf("unexpected outcome %v", f.Outcome())
		}
	}
	if hangs != 1 || exits != 1 {
		t.Errorf("hangs=%d exits=%d, want 1/1", hangs, exits)
	}
}

// TestPermanentMemoryFault: a stuck memory word ignores stores.
func TestPermanentMemoryFault(t *testing.T) {
	s := stateFor(t, `
	li $1 7
	st $1 100($0)
	ld $2 100($0)
	print $2
	halt
`, nil)
	s.InjectPermanent(isa.MemLoc(100))
	terminals := exploreAll(t, s)
	if len(terminals) != 1 {
		t.Fatalf("%d terminals", len(terminals))
	}
	f := terminals[0]
	if !f.OutputContainsErr() {
		t.Errorf("stuck word overwritten: output %q", f.OutputString())
	}
}

// TestTransientVsPermanentStateCount: the same fault site explodes into many
// worlds when transient (the counter keeps changing) but only a handful when
// permanent — the ablation the DESIGN.md calls out.
func TestTransientVsPermanentStateCount(t *testing.T) {
	run := func(permanent bool) int {
		s := stateFor(t, `
	read $1
	li $4 1
loop:	setgt $5 $1 $4
	beqi $5 0 exit
	subi $1 $1 1
	jmp loop
exit:	halt
`, []int64{5})
		opts := s.Opts
		opts.Watchdog = 300
		s.Opts = opts
		stepN(t, s, 2)
		if permanent {
			s.InjectPermanent(isa.RegLoc(1))
		} else {
			s.Inject(isa.RegLoc(1))
		}
		return len(exploreAll(t, s))
	}
	transient := run(false)
	permanent := run(true)
	if permanent >= transient {
		t.Errorf("permanent worlds (%d) not fewer than transient (%d)", permanent, transient)
	}
	if permanent != 2 {
		t.Errorf("permanent worlds = %d, want 2", permanent)
	}
}
