package symexec

// degradedInitialCap is the fork fan-out cap introduced on the first
// degraded retry when the options had none. It is generous enough to keep
// most searches exact while bounding the pathological fan-outs (a control
// transfer through err forks once per code location) that make an injection
// blow its wall-clock allotment.
const degradedInitialCap = 64

// Degraded returns a copy of the options tightened for a graceful-degradation
// retry (attempt is 1-based; attempt <= 0 returns the options unchanged).
// Campaign runners re-run an injection that panicked or exceeded its deadline
// with Degraded options and a reduced state budget, trading precision for
// the chance of completing at all:
//
//   - Fork fan-out caps (MaxControlTargets, MaxMemTargets) are introduced if
//     absent and halved per attempt. Truncated fan-out is flagged on the
//     state, so reports still refuse to claim proof (VerdictInconclusive).
//   - From the second attempt on, SymbolicMem replaces the enumeration of
//     loads through erroneous pointers with a fresh err — the sound
//     over-approximation documented on Options.
//
// The Watchdog is deliberately preserved: shrinking it would reclassify slow
// paths as hangs and corrupt the outcome tallies rather than degrade them.
func (o Options) Degraded(attempt int) Options {
	if attempt <= 0 {
		return o
	}
	o.MaxControlTargets = degradeCap(o.MaxControlTargets, attempt)
	o.MaxMemTargets = degradeCap(o.MaxMemTargets, attempt)
	if attempt >= 2 {
		o.SymbolicMem = true
	}
	return o
}

// degradeCap introduces a cap when cur is 0 (unlimited) and halves it per
// attempt, bottoming out at 1.
func degradeCap(cur, attempt int) int {
	if cur <= 0 {
		cur = degradedInitialCap
	}
	cur >>= attempt - 1
	if cur < 1 {
		cur = 1
	}
	return cur
}
