package symexec

import (
	"strings"
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
)

// TestCheckForkOnErr: a detector over an erroneous location forks into a
// passing path (constraint recorded) and a detected path (negated
// constraint), exercising the slow stepCheck path.
func TestCheckForkOnErr(t *testing.T) {
	s := stateFor(t, `
	det(1, $1, <, 10)
	read $1
	check #1
	print $1
	halt
`, []int64{0})
	stepN(t, s, 1) // read
	s.Inject(isa.RegLoc(1))

	// The next step is the check: it must refuse in-place and fork.
	if s.StepInPlace() {
		t.Fatal("check over err executed in place")
	}
	succs := s.Successors()
	if len(succs) != 2 {
		t.Fatalf("%d successors, want 2", len(succs))
	}
	var pass, detected *State
	for _, c := range succs {
		if c.Running() {
			pass = c
		} else {
			detected = c
		}
	}
	if pass == nil || detected == nil {
		t.Fatal("missing pass or detected branch")
	}
	if c := pass.Sym.RootConstraints(0); c.Admits(10) || !c.Admits(9) {
		t.Errorf("pass constraints %s", c)
	}
	if detected.Exc.Kind != isa.ExcDetected {
		t.Errorf("detected branch exception %v", detected.Exc)
	}
	if c := detected.Sym.RootConstraints(0); !c.Admits(10) || c.Admits(9) {
		t.Errorf("detected constraints %s", c)
	}
}

// TestCheckMemoryTargetSymbolic: detectors over memory locations work
// symbolically, including err stored to memory.
func TestCheckMemoryTargetSymbolic(t *testing.T) {
	s := stateFor(t, `
	det(1, *(50), ==, 7)
	read $1
	st $1 50($0)
	check #1
	prints "ok"
	halt
`, []int64{0})
	stepN(t, s, 1)
	s.Inject(isa.RegLoc(1))
	terminals := exploreAll(t, s)
	if len(terminals) != 2 {
		t.Fatalf("%d terminals", len(terminals))
	}
	okSeen, detSeen := false, false
	for _, f := range terminals {
		switch f.Outcome() {
		case OutcomeNormal:
			okSeen = true
			// Passing requires the stored value to equal 7; the memory cell
			// must have been concretized.
			if v, okc := f.Mem[50]; !okc || !v.Equal(isa.Int(7)) {
				t.Errorf("pass branch memory %v", f.Mem[50])
			}
		case OutcomeDetected:
			detSeen = true
		}
	}
	if !okSeen || !detSeen {
		t.Errorf("branches missing: ok=%v detected=%v", okSeen, detSeen)
	}
}

// TestCheckSpecErrorsSymbolic: unknown detectors and undefined-memory
// expressions surface as throws on both stepping paths.
func TestCheckSpecErrorsSymbolic(t *testing.T) {
	cases := []string{
		"\tcheck #9\n\thalt\n",
		"\tdet(1, $1, ==, *(999))\n\tcheck #1\n\thalt\n",
		"\tdet(1, *(999), ==, 5)\n\tcheck #1\n\thalt\n",
	}
	for _, src := range cases {
		u := asm.MustParse("t", src)

		inPlace := NewState(u.Program, u.Detectors, nil, DefaultOptions())
		for inPlace.Running() && inPlace.StepInPlace() {
		}
		if inPlace.Running() || inPlace.Exc == nil || inPlace.Exc.Kind != isa.ExcThrow {
			t.Errorf("%q in-place: %v", src, inPlace.Exc)
		}

		slow := NewState(u.Program, u.Detectors, nil, DefaultOptions())
		terminals := exploreAll(t, slow)
		if len(terminals) != 1 || terminals[0].Exc == nil || terminals[0].Exc.Kind != isa.ExcThrow {
			t.Errorf("%q successors: %v", src, terminals)
		}
	}
}

// TestStateStringAndHelpers covers reporting helpers.
func TestStateStringAndHelpers(t *testing.T) {
	s := stateFor(t, "\tread $1\n\tprint $1\n\tprints \"!\"\n\thalt\n", []int64{4})
	for s.Running() {
		if !s.StepInPlace() {
			t.Fatal("forked")
		}
	}
	if got := s.OutputString(); got != "4!" {
		t.Errorf("OutputString %q", got)
	}
	vals := s.OutputValues()
	if len(vals) != 1 || !vals[0].Equal(isa.Int(4)) {
		t.Errorf("OutputValues %v", vals)
	}
	if s.OutputContainsErr() {
		t.Error("OutputContainsErr on concrete output")
	}
	s.Note(0, "free-form %d", 1)
	if s.Trace.Len() == 0 {
		t.Error("Note did not append")
	}
}

// TestKeyDistinguishesStuck: the dedup key must separate transient and
// permanent faults at the same location.
func TestKeyDistinguishesStuck(t *testing.T) {
	a := stateFor(t, "\thalt\n", nil)
	b := stateFor(t, "\thalt\n", nil)
	a.Inject(isa.RegLoc(1))
	b.InjectPermanent(isa.RegLoc(1))
	if a.Key() == b.Key() {
		t.Error("transient and stuck-at states share a key")
	}
	if !strings.Contains(b.Key(), "stuck") {
		t.Errorf("stuck key %q", b.Key())
	}
}

// TestOutcomeStrings covers naming.
func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{OutcomeNormal, OutcomeCrash, OutcomeHang, OutcomeDetected, OutcomeRunning} {
		if strings.HasPrefix(o.String(), "outcome(") {
			t.Errorf("outcome %d lacks a name", int(o))
		}
	}
}

// TestEndOfInputSymbolic: reading past the input throws on both paths.
func TestEndOfInputSymbolic(t *testing.T) {
	s := stateFor(t, "\tread $1\n\thalt\n", nil)
	terminals := exploreAll(t, s)
	if len(terminals) != 1 || terminals[0].Exc == nil || terminals[0].Exc.Kind != isa.ExcThrow {
		t.Fatalf("terminals %v", terminals)
	}
}
