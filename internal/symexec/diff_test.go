package symexec

import (
	"fmt"
	"math/rand"
	"testing"

	"symplfied/internal/detector"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
)

// randomProgram generates a terminating fault-free program: straight-line
// arithmetic/memory/compare instructions with forward-only branches, a
// memory-initialization prologue, and a final halt. Registers $1..$9 are
// used; memory slots 100..107 are initialized before any load.
func randomProgram(r *rand.Rand, n int) (*isa.Program, *detector.Table) {
	b := isa.NewBuilder("fuzz")

	// Random detectors: checks over the fuzz registers against constants.
	// Clean evaluation never forks (concrete operands), but detections are
	// legitimate terminal outcomes for both engines.
	dets := detector.EmptyTable()
	nDets := r.Intn(3)
	cmps := []string{"==", "=/=", ">", "<", ">=", "<="}
	for i := 0; i < nDets; i++ {
		spec := fmt.Sprintf("det(%d, $%d, %s, %d)",
			i+1, 1+r.Intn(9), cmps[r.Intn(len(cmps))], r.Intn(41)-20)
		d, err := detector.Parse(spec)
		if err != nil {
			panic(err)
		}
		if err := dets.Add(d); err != nil {
			panic(err)
		}
	}
	// Prologue: define the memory slots and seed the registers.
	for slot := int64(0); slot < 8; slot++ {
		b.Li(1, r.Int63n(100)-50)
		b.St(1, 100+slot, isa.RegZero)
	}
	for reg := isa.Reg(1); reg <= 9; reg++ {
		b.Li(reg, r.Int63n(41)-20)
	}

	reg := func() isa.Reg { return isa.Reg(1 + r.Intn(9)) }
	slot := func() int64 { return 100 + r.Int63n(8) }

	type pendingBranch struct {
		at    int
		label string
	}
	var pending []pendingBranch

	arithOps := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpMult, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpAddi, isa.OpSubi, isa.OpMulti, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSeteq, isa.OpSetne, isa.OpSetgt, isa.OpSetlt, isa.OpSetge, isa.OpSetle,
	}

	for i := 0; i < n; i++ {
		// Resolve any branch that targeted this point.
		for len(pending) > 0 && pending[0].at == b.Len() {
			b.Label(pending[0].label)
			pending = pending[1:]
		}
		switch k := r.Intn(10); {
		case k < 5: // arithmetic / compare
			op := arithOps[r.Intn(len(arithOps))]
			in := isa.Instr{Op: op, Rd: reg(), Rs: reg()}
			if op.Format() == isa.FormatR2I {
				in.Imm = r.Int63n(21) - 10
				if in.Imm == 0 && (op == isa.OpDivi || op == isa.OpModi) {
					in.Imm = 1
				}
			} else {
				in.Rt = reg()
			}
			b.Emit(in)
		case k < 6: // store
			b.St(reg(), slot(), isa.RegZero)
		case k < 7: // load
			b.Ld(reg(), slot(), isa.RegZero)
		case k < 8: // print
			b.Print(reg())
		case k < 9: // mov, or a detector check when any exist
			if nDets > 0 && r.Intn(3) == 0 {
				b.Check(int64(1 + r.Intn(nDets)))
			} else {
				b.Mov(reg(), reg())
			}
		default: // forward branch over a random distance
			dist := 2 + r.Intn(5)
			label := "fwd" + itoa(b.Len())
			if r.Intn(2) == 0 {
				b.Beqi(reg(), r.Int63n(5), label)
			} else {
				b.Bnei(reg(), r.Int63n(5), label)
			}
			// Schedule the label; keep pending sorted by construction
			// (later branches target later points).
			target := b.Len() + dist
			if len(pending) > 0 && pending[len(pending)-1].at > target {
				target = pending[len(pending)-1].at
			}
			pending = append(pending, pendingBranch{at: target, label: label})
			// Emit fillers so the target exists even at the end.
			_ = target
		}
	}
	// Flush remaining labels with filler nops.
	for len(pending) > 0 {
		for b.Len() < pending[0].at {
			b.Nop()
		}
		b.Label(pending[0].label)
		pending = pending[1:]
	}
	b.Print(1)
	b.Halt()
	return b.MustBuild(), dets
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// TestDifferentialConcreteVsSymbolic: on fault-free random programs the
// symbolic executor must agree with the concrete machine step-for-step —
// same output, same instruction count, same termination status. This pins
// the "machine model is completely deterministic" property (Section 5.1)
// across both engines and both stepping modes.
func TestDifferentialConcreteVsSymbolic(t *testing.T) {
	r := rand.New(rand.NewSource(2008))
	for iter := 0; iter < 300; iter++ {
		prog, dets := randomProgram(r, 30+r.Intn(40))

		m := machine.New(prog, nil, machine.Options{Watchdog: 10_000, Detectors: dets})
		cres := m.Run()

		opts := DefaultOptions()
		opts.Watchdog = 10_000
		st := NewState(prog, dets, nil, opts)
		for st.Running() {
			if !st.StepInPlace() {
				t.Fatalf("iter %d: fault-free program forked at pc %d:\n%s", iter, st.PC, prog)
			}
		}

		cOutcome := OutcomeNormal
		if cres.Status == machine.StatusExcepted {
			switch cres.Exception.Kind {
			case isa.ExcTimeout:
				cOutcome = OutcomeHang
			case isa.ExcDetected:
				cOutcome = OutcomeDetected
			default:
				cOutcome = OutcomeCrash
			}
		}
		if cOutcome != st.Outcome() {
			t.Fatalf("iter %d: outcome mismatch: machine %v vs symbolic %v (%v)\n%s",
				iter, cOutcome, st.Outcome(), st.Exc, prog)
		}
		if cres.Steps != st.Steps {
			t.Fatalf("iter %d: steps %d vs %d\n%s", iter, cres.Steps, st.Steps, prog)
		}
		if machine.RenderOutput(cres.Output) != st.OutputString() {
			t.Fatalf("iter %d: output %q vs %q\n%s",
				iter, machine.RenderOutput(cres.Output), st.OutputString(), prog)
		}

		// And the Successors path must agree with StepInPlace.
		st2 := NewState(prog, dets, nil, opts)
		steps := 0
		for st2.Running() {
			succs := st2.Successors()
			if len(succs) != 1 {
				t.Fatalf("iter %d: Successors forked (%d) on fault-free program", iter, len(succs))
			}
			st2 = succs[0]
			steps++
			if steps > 20_000 {
				t.Fatalf("iter %d: runaway", iter)
			}
		}
		if st2.OutputString() != st.OutputString() || st2.Steps != st.Steps {
			t.Fatalf("iter %d: Successors/StepInPlace divergence", iter)
		}
	}
}

// TestDifferentialWithInjection: for random programs and random single
// register injections, every concrete value admitted by a symbolic
// terminal's constraints must, when injected concretely, reproduce an
// outcome enumerated by the symbolic search (soundness spot check).
func TestDifferentialWithInjection(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for iter := 0; iter < 120; iter++ {
		prog, dets := randomProgram(r, 25+r.Intn(30))

		// Pick an injection point: a random instruction with sources.
		var pcs []int
		for pc := 0; pc < prog.Len(); pc++ {
			if len(prog.At(pc).SrcRegs()) > 0 {
				pcs = append(pcs, pc)
			}
		}
		if len(pcs) == 0 {
			continue
		}
		pc := pcs[r.Intn(len(pcs))]
		srcs := prog.At(pc).SrcRegs()
		target := srcs[r.Intn(len(srcs))]

		// Symbolic exploration from the injection.
		opts := DefaultOptions()
		opts.Watchdog = 10_000
		st := NewState(prog, dets, nil, opts)
		reached := true
		for st.PC != pc {
			if !st.Running() || !st.StepInPlace() {
				reached = false
				break
			}
		}
		if !reached || !st.Running() {
			continue // injection point not on the fault-free path
		}
		root := st.Inject(isa.RegLoc(target))

		symbolicOutputs := map[string]bool{}
		var witnesses []int64
		frontier := []*State{st}
		states := 0
		for len(frontier) > 0 && states < 50_000 {
			cur := frontier[0]
			frontier = frontier[1:]
			for cur.Running() && cur.StepInPlace() {
				states++
			}
			if !cur.Running() {
				key := cur.Outcome().String() + "|" + cur.OutputString()
				symbolicOutputs[key] = true
				if c := cur.Sym.RootConstraints(root); c != nil {
					if w, ok := c.Witness(); ok {
						witnesses = append(witnesses, w)
					}
				}
				continue
			}
			frontier = append(frontier, cur.Successors()...)
			states++
		}
		if states >= 50_000 {
			continue // budget blown; skip the comparison
		}

		// Concrete re-injection of each witness must land in the
		// symbolically enumerated outcome set.
		for _, w := range witnesses {
			injected := false
			m := machine.New(prog, nil, machine.Options{
				Watchdog:  10_000,
				Detectors: dets,
				PreStep: func(m *machine.Machine, _ int) {
					if !injected && m.PC() == pc {
						m.SetReg(target, isa.Int(w))
						injected = true
					}
				},
			})
			res := m.Run()
			outcome := OutcomeNormal
			if res.Status == machine.StatusExcepted {
				switch res.Exception.Kind {
				case isa.ExcTimeout:
					outcome = OutcomeHang
				case isa.ExcDetected:
					outcome = OutcomeDetected
				default:
					outcome = OutcomeCrash
				}
			}
			key := outcome.String() + "|" + machine.RenderOutput(res.Output)
			if !symbolicOutputs[key] {
				// The output may contain err symbolically; accept any
				// symbolic output whose outcome matches and which prints
				// err somewhere.
				matched := false
				for k := range symbolicOutputs {
					if len(k) >= len(outcome.String()) && k[:len(outcome.String())] == outcome.String() &&
						containsErr(k) {
						matched = true
						break
					}
				}
				if !matched {
					t.Fatalf("iter %d: concrete witness %d at @%d/%s produced %q, not enumerated in %v\n%s",
						iter, w, pc, target, key, keys(symbolicOutputs), prog)
				}
			}
		}
	}
}

func containsErr(s string) bool {
	for i := 0; i+3 <= len(s); i++ {
		if s[i:i+3] == "err" {
			return true
		}
	}
	return false
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
