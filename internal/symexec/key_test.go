package symexec

import (
	"testing"

	"symplfied/internal/isa"
)

// forkingProgram reads an input, injects err into it, and branches on the
// erroneous value through loads and stores, so a full exploration visits
// states differing in registers, memory, constraints, output, and status.
const forkingProgram = `
	read $1
	st $1 10($0)
	ld $2 10($0)
	beqi $2 5 yes
	prints "no"
	halt
yes:	st $2 11($0)
	prints "yes"
	halt
`

// collectStates explores from s exhaustively, snapshotting every visited
// configuration (intermediate and terminal) via Clone.
func collectStates(t *testing.T, s *State) []*State {
	t.Helper()
	var all []*State
	frontier := []*State{s}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		all = append(all, cur.Clone())
		if len(all) > 10_000 {
			t.Fatal("exploration runaway")
		}
		if !cur.Running() {
			continue
		}
		if cur.StepInPlace() {
			frontier = append(frontier, cur)
		} else {
			frontier = append(frontier, cur.Successors()...)
		}
	}
	return all
}

// TestKeyHashMatchesKeyEquivalence checks the hashed visited-set key against
// the canonical string key over a real exploration: states with equal Key()
// strings must hash equal, and (absent a 64-bit collision, which would be a
// test failure worth knowing about) states with different Key() strings must
// hash differently.
func TestKeyHashMatchesKeyEquivalence(t *testing.T) {
	s := stateFor(t, forkingProgram, []int64{5})
	stepN(t, s, 1) // read
	s.Inject(isa.RegLoc(1))
	states := collectStates(t, s)
	if len(states) < 8 {
		t.Fatalf("exploration too small to be meaningful: %d states", len(states))
	}

	byKey := map[string]uint64{}
	byHash := map[uint64]string{}
	for _, st := range states {
		key, hash := st.Key(), st.KeyHash()
		if prev, ok := byKey[key]; ok && prev != hash {
			t.Errorf("equal keys hashed differently: %q -> %#x and %#x", key, prev, hash)
		}
		byKey[key] = hash
		if prev, ok := byHash[hash]; ok && prev != key {
			t.Errorf("hash collision: %#x keys both %q and %q", hash, prev, key)
		}
		byHash[hash] = key
	}
	if len(byKey) < 2 {
		t.Fatalf("exploration produced only %d distinct keys", len(byKey))
	}
}

// TestKeyHashStable checks that hashing is a pure function of the state.
func TestKeyHashStable(t *testing.T) {
	s := stateFor(t, forkingProgram, []int64{5})
	stepN(t, s, 2)
	if a, b := s.KeyHash(), s.KeyHash(); a != b {
		t.Errorf("KeyHash not stable: %#x then %#x", a, b)
	}
	c := s.Clone()
	if a, b := s.KeyHash(), c.KeyHash(); a != b {
		t.Errorf("clone hashes differently: parent %#x, clone %#x", a, b)
	}
}

// TestKeyerCollisionAudit runs the Keyer with the collision audit armed over
// a real exploration: the audit cross-checks every hash against the full
// canonical key and panics on a mismatch, so surviving the sweep is the
// assertion.
func TestKeyerCollisionAudit(t *testing.T) {
	old := CheckKeyCollisions
	CheckKeyCollisions = true
	defer func() { CheckKeyCollisions = old }()

	s := stateFor(t, forkingProgram, []int64{5})
	stepN(t, s, 1)
	s.Inject(isa.RegLoc(1))
	keyer := NewKeyer()
	for _, st := range collectStates(t, s) {
		h := keyer.Hash(st)
		if h2 := keyer.Hash(st); h2 != h {
			t.Fatalf("audited hash unstable: %#x then %#x", h, h2)
		}
	}
}

// TestCloneMemCopyOnWrite checks the copy-on-write clone: writes on either
// side of a fork must not leak to the other, and an untouched clone must
// keep its key while the parent diverges.
func TestCloneMemCopyOnWrite(t *testing.T) {
	s := stateFor(t, forkingProgram, []int64{5})
	stepN(t, s, 2) // read; st $1 10($0)
	if _, ok := s.Mem[10]; !ok {
		t.Fatal("store did not populate memory")
	}

	c := s.Clone()
	ckey, chash := c.Key(), c.KeyHash()

	// Parent runs ahead and writes memory again (the yes branch's st).
	stepN(t, s, 4) // ld; beqi (taken: $2 == 5); st $2 11($0); prints
	if _, ok := s.Mem[11]; !ok {
		t.Fatal("parent's second store did not land")
	}
	if _, ok := c.Mem[11]; ok {
		t.Error("parent's store leaked into the clone's memory")
	}
	if got := c.Key(); got != ckey {
		t.Errorf("clone key changed while only the parent stepped:\n  was %q\n  now %q", ckey, got)
	}
	if got := c.KeyHash(); got != chash {
		t.Errorf("clone hash changed while only the parent stepped: %#x -> %#x", chash, got)
	}

	// Clone writes: the parent must not see it.
	c.Inject(isa.MemLoc(10))
	if s.Mem[10].IsErr() {
		t.Error("clone's injection leaked into the parent's memory")
	}
	if c.Key() == ckey {
		t.Error("clone's own write did not change its key")
	}
}
