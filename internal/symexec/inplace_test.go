package symexec

import (
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
)

// progWithEverything exercises every deterministic instruction shape plus
// fork points, for the in-place/clone equivalence check.
const progWithEverything = `
	li $8 7
	li $9 3
	add $10 $8 $9
	sub $11 $8 $9
	mult $12 $8 $9
	div $13 $8 $9
	mod $14 $8 $9
	and $15 $8 $9
	or $16 $8 $9
	xor $17 $8 $9
	seteq $18 $8 $9
	setgt $19 $8 $9
	mov $20 $10
	st $10 50($0)
	ld $21 50($0)
	read $22
	beqi $22 5 taken
	prints "not taken "
taken:	print $10
	jal fn
	jmp end
fn:	addi $23 $23 1
	jr $31
end:	halt
`

// TestStepInPlaceAgreesWithSuccessors locks the fast path to the forking
// path: running a fault-free program via StepInPlace and via Successors
// must visit identical states.
func TestStepInPlaceAgreesWithSuccessors(t *testing.T) {
	u := asm.MustParse("everything", progWithEverything)
	input := []int64{5}

	inPlace := NewState(u.Program, u.Detectors, input, DefaultOptions())
	cloned := NewState(u.Program, u.Detectors, input, DefaultOptions())

	for step := 0; ; step++ {
		if inPlace.Key() != cloned.Key() {
			t.Fatalf("step %d: states diverge\n in-place: %s\n cloned:   %s", step, inPlace.Key(), cloned.Key())
		}
		if !inPlace.Running() {
			break
		}
		if !inPlace.StepInPlace() {
			t.Fatalf("step %d: fault-free execution refused in-place step at pc %d", step, inPlace.PC)
		}
		succs := cloned.Successors()
		if len(succs) != 1 {
			t.Fatalf("step %d: fault-free execution forked (%d successors)", step, len(succs))
		}
		cloned = succs[0]
	}
	if inPlace.Outcome() != OutcomeNormal {
		t.Fatalf("outcome %v (%v)", inPlace.Outcome(), inPlace.Exc)
	}
}

// TestStepInPlaceRefusesForks ensures the fast path declines exactly where
// nondeterminism begins and leaves the state unmodified.
func TestStepInPlaceRefusesForks(t *testing.T) {
	u := asm.MustParse("forky", `
	read $8
	beqi $8 0 zero
	halt
zero:	halt
`)
	st := NewState(u.Program, u.Detectors, []int64{1}, DefaultOptions())
	if !st.StepInPlace() {
		t.Fatal("read refused in-place step")
	}
	// Make the branch operand erroneous: the branch must refuse.
	st.Inject(isa.RegLoc(8))
	before := st.Key()
	if st.StepInPlace() {
		t.Fatal("branch on err executed in place")
	}
	if st.Key() != before {
		t.Fatal("refused step mutated the state")
	}
	succs := st.Successors()
	if len(succs) != 2 {
		t.Fatalf("branch on err: %d successors, want 2", len(succs))
	}
}
