package symexec

import "testing"

func TestDegradedIntroducesAndHalvesCaps(t *testing.T) {
	o := DefaultOptions() // no caps, SymbolicMem off

	d1 := o.Degraded(1)
	if d1.MaxControlTargets != degradedInitialCap || d1.MaxMemTargets != degradedInitialCap {
		t.Errorf("attempt 1: caps = %d/%d, want %d", d1.MaxControlTargets, d1.MaxMemTargets, degradedInitialCap)
	}
	if d1.SymbolicMem {
		t.Error("attempt 1 must not switch to symbolic memory yet")
	}
	if d1.Watchdog != o.Watchdog {
		t.Errorf("degradation must preserve the watchdog (got %d, want %d)", d1.Watchdog, o.Watchdog)
	}

	d2 := o.Degraded(2)
	if d2.MaxControlTargets != degradedInitialCap/2 {
		t.Errorf("attempt 2: cap = %d, want %d", d2.MaxControlTargets, degradedInitialCap/2)
	}
	if !d2.SymbolicMem {
		t.Error("attempt 2 must enable the symbolic-memory over-approximation")
	}

	// Existing caps are halved, never raised, and bottom out at 1.
	o.MaxControlTargets = 4
	if got := o.Degraded(1).MaxControlTargets; got != 4 {
		t.Errorf("attempt 1 with cap 4: got %d, want 4", got)
	}
	if got := o.Degraded(10).MaxControlTargets; got != 1 {
		t.Errorf("deep degradation must bottom out at 1, got %d", got)
	}
}

func TestDegradedZeroAttemptIsIdentity(t *testing.T) {
	o := DefaultOptions()
	if o.Degraded(0) != o {
		t.Error("Degraded(0) must return the options unchanged")
	}
}
