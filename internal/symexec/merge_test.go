package symexec

import (
	"testing"

	"symplfied/internal/apps/factorial"
	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

// TestShareableStepIsInvisible pins the classifier's contract over every
// state of a real search: whenever ShareableStep says true, the step must be
// deterministic (StepInPlace succeeds), non-terminal, append no trace event,
// and leave the symbolic store untouched — the exact conditions under which
// the merged explorer may execute it once for all fused worlds.
func TestShareableStepIsInvisible(t *testing.T) {
	prog, dets := factorial.WithDetectors()
	for reg := isa.Reg(1); reg < 6; reg++ {
		st := NewState(prog, dets, []int64{5}, DefaultOptions())
		st.Opts.Watchdog = 400
		st.Inject(isa.RegLoc(reg))

		frontier := []*State{st}
		checked, shareable := 0, 0
		for len(frontier) > 0 && checked < 5000 {
			cur := frontier[0]
			frontier = frontier[1:]
			for cur.Running() && checked < 5000 {
				checked++
				if cur.ShareableStep() && cur.Steps < cur.Opts.Watchdog {
					shareable++
					symKey := cur.Sym.Key()
					tracePtr := cur.Trace
					steps := cur.Steps
					probe := cur.Clone()
					if !probe.StepInPlace() {
						t.Fatalf("ShareableStep=true but StepInPlace forked at pc %d (%s)", cur.PC, prog.At(cur.PC))
					}
					if !probe.Running() {
						t.Fatalf("ShareableStep=true but step terminated at pc %d (%s)", cur.PC, prog.At(cur.PC))
					}
					if probe.Trace != tracePtr {
						t.Fatalf("ShareableStep=true but step appended a trace event at pc %d (%s)", cur.PC, prog.At(cur.PC))
					}
					if got := probe.Sym.Key(); got != symKey {
						t.Fatalf("ShareableStep=true but step mutated the store at pc %d (%s): %q -> %q",
							cur.PC, prog.At(cur.PC), symKey, got)
					}
					if probe.Steps != steps+1 {
						t.Fatalf("shareable step advanced Steps by %d", probe.Steps-steps)
					}
				}
				if cur.StepInPlace() {
					continue
				}
				frontier = append(frontier, cur.Successors()...)
				break
			}
		}
		if shareable == 0 {
			t.Fatalf("reg %d: no shareable steps observed in %d states; classifier is degenerate", reg, checked)
		}
	}
}

// TestMergeCompatibleMatchesSkeletonHash pins hash/comparison agreement:
// states judged compatible must hash equal, and self-comparison holds.
func TestMergeCompatibleMatchesSkeletonHash(t *testing.T) {
	prog, dets := factorial.WithDetectors()
	st := NewState(prog, dets, []int64{5}, DefaultOptions())
	st.Inject(isa.RegLoc(2))
	if !MergeCompatible(st, st) {
		t.Fatal("state not merge-compatible with itself")
	}
	c := st.Clone()
	if !MergeCompatible(st, c) || st.SkeletonHash() != c.SkeletonHash() {
		t.Fatal("clone not merge-compatible with original")
	}
	// Diverge the stores only: still compatible (skeleton ignores Sym).
	c.Sym.ConstrainRoot(0, isa.CmpGe, 7)
	c.Steps += 3
	if !MergeCompatible(st, c) || st.SkeletonHash() != c.SkeletonHash() {
		t.Fatal("store/steps divergence must not break skeleton compatibility")
	}
	// Diverge a register: incompatible.
	c.Regs[5] = isa.Int(99)
	if MergeCompatible(st, c) {
		t.Fatal("register divergence must break compatibility")
	}
	if st.SkeletonHash() == c.SkeletonHash() {
		t.Fatal("register divergence must change the skeleton hash")
	}
}

// TestLoopHashExcludesSteps: two states equal up to the step counter share a
// LoopHash but not a KeyHash.
func TestLoopHashExcludesSteps(t *testing.T) {
	st := NewState(factorial.Plain(), detector.EmptyTable(), []int64{3}, DefaultOptions())
	c := st.Clone()
	c.Steps += 17
	if st.LoopHash() != c.LoopHash() {
		t.Fatal("LoopHash must ignore Steps")
	}
	if st.KeyHash() == c.KeyHash() {
		t.Fatal("KeyHash must include Steps")
	}
}
