package symexec

import (
	"symplfied/internal/isa"
)

// Support for post-dominator state merging (checker.Spec.MergeStates). Two
// forked states that rejoin at a control-flow merge point with the same
// concrete skeleton — equal PC, registers, memory, input cursor, output,
// status — differ only in their symbolic stores (what is known about err),
// their traces (how they got here), and their step counters (when). The
// merged explorer fuses such states into one representative carrying the
// sibling worlds, executes the steps that cannot tell the worlds apart once,
// and splits back into singles the moment a step could observe the
// difference. ShareableStep is that observability judgment; MergeCompatible
// is the exact skeleton comparison behind the SkeletonHash grouping.

// valueEq compares machine words with err as a class: all err values are
// equal (their identities live in the store, which merging deliberately
// ignores), concrete values compare by integer.
func valueEq(a, b isa.Value) bool {
	if a.IsErr() || b.IsErr() {
		return a.IsErr() && b.IsErr()
	}
	av, _ := a.Concrete()
	bv, _ := b.Concrete()
	return av == bv
}

// MergeCompatible reports whether a and b have identical concrete skeletons:
// every component of the configuration except the symbolic store, the trace,
// and the step counter. It is the exact check behind SkeletonHash — callers
// group by hash, then confirm here, so a 64-bit collision can never fuse
// genuinely different states.
func MergeCompatible(a, b *State) bool {
	if a.PC != b.PC || a.InPos != b.InPos || a.Status != b.Status ||
		a.Truncated != b.Truncated || len(a.In) != len(b.In) ||
		len(a.Mem) != len(b.Mem) || len(a.Out) != len(b.Out) ||
		len(a.Stuck) != len(b.Stuck) {
		return false
	}
	for r := range a.Regs {
		if !valueEq(a.Regs[r], b.Regs[r]) {
			return false
		}
	}
	for addr, av := range a.Mem {
		bv, ok := b.Mem[addr]
		if !ok || !valueEq(av, bv) {
			return false
		}
	}
	for i := range a.Out {
		ao, bo := a.Out[i], b.Out[i]
		if ao.IsStr != bo.IsStr {
			return false
		}
		if ao.IsStr {
			if ao.Str != bo.Str {
				return false
			}
		} else if !valueEq(ao.Val, bo.Val) {
			return false
		}
	}
	for l := range a.Stuck {
		if _, ok := b.Stuck[l]; !ok {
			return false
		}
	}
	return true
}

// ShareableStep reports whether the next instruction can be executed once on
// behalf of every world of a merged state: it must be deterministic, must
// not touch the symbolic store (no err operand, no err destination being
// overwritten), must not append a trace event, and must not terminate the
// state. The dispatch mirrors StepInPlace case by case; the equivalence is
// pinned by TestShareableStepIsInvisible and, end to end, by
// FuzzMergeEquivalence in the checker.
//
// The caller handles the watchdog separately (worlds disagree on Steps, so
// watchdog proximity forces a split before this question is asked).
func (s *State) ShareableStep() bool {
	if !s.Running() || !s.Prog.ValidPC(s.PC) {
		return false
	}
	in := s.Prog.At(s.PC)

	concReg := func(r isa.Reg) bool {
		return r == isa.RegZero || !s.Regs[r].IsErr()
	}

	if bin, imm, ok := isa.ArithOp(in.Op); ok {
		if !concReg(in.Rs) || !concReg(in.Rd) {
			return false
		}
		xc, _ := s.regOperand(in.Rs).Val.Concrete()
		var yc int64
		if imm {
			yc = in.Imm
		} else {
			if !concReg(in.Rt) {
				return false
			}
			yc, _ = s.regOperand(in.Rt).Val.Concrete()
		}
		// Concrete division by zero raises (terminal): not shareable.
		if _, err := isa.EvalBin(bin, xc, yc); err != nil {
			return false
		}
		return true
	}

	if _, imm, ok := isa.CmpForOp(in.Op); ok {
		if !concReg(in.Rs) || !concReg(in.Rd) {
			return false
		}
		if !imm && !concReg(in.Rt) {
			return false
		}
		return true
	}

	switch in.Op {
	case isa.OpMov:
		return concReg(in.Rs) && concReg(in.Rd)
	case isa.OpLi, isa.OpLui:
		return concReg(in.Rd)
	case isa.OpLd:
		if !concReg(in.Rs) || !concReg(in.Rt) {
			return false
		}
		bc, _ := s.regOperand(in.Rs).Val.Concrete()
		v, defined := s.Mem[bc+in.Imm]
		// Undefined address raises (terminal); an err cell loads a term.
		return defined && !v.IsErr()
	case isa.OpSt:
		if !concReg(in.Rs) || !concReg(in.Rt) {
			return false
		}
		bc, _ := s.regOperand(in.Rs).Val.Concrete()
		// Overwriting an err cell clears its term (a store mutation).
		if v, ok := s.Mem[bc+in.Imm]; ok && v.IsErr() {
			return false
		}
		return true
	case isa.OpBeq, isa.OpBne:
		return concReg(in.Rs) && concReg(in.Rt)
	case isa.OpBeqi, isa.OpBnei:
		return concReg(in.Rs)
	case isa.OpJmp:
		return true
	case isa.OpJal:
		return concReg(isa.RegRA)
	case isa.OpJr:
		return concReg(in.Rs)
	case isa.OpRead:
		if s.InPos >= len(s.In) { // end of input raises (terminal)
			return false
		}
		if s.In[s.InPos].IsErr() { // symbolic input value reaches the store
			return false
		}
		return concReg(in.Rd)
	case isa.OpPrint:
		// Printing err appends a trace event; concrete prints are silent.
		return in.Rd == isa.RegZero || !s.Regs[in.Rd].IsErr()
	case isa.OpPrints, isa.OpNop:
		return true
	}
	// halt, throw, check, and anything unknown: terminal, trace-noting, or
	// store-dependent.
	return false
}
