// Package symexec implements SymPLFIED's symbolic execution engine: the
// nondeterministic part of the paper's model (Sections 3.2 and 5.2). A State
// is one node of the search graph explored by the model checker; Successors
// computes its rewrite successors, forking at comparisons over err, at loads
// and stores through erroneous pointers, at control transfers to erroneous
// targets, and at divisions by erroneous divisors, while the constraint store
// prunes infeasible forks.
package symexec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"symplfied/internal/detector"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/obs"
	"symplfied/internal/symbolic"
	"symplfied/internal/trace"
)

// Options configures symbolic execution. The zero value is NOT valid; use
// DefaultOptions.
type Options struct {
	// Watchdog bounds executed instructions per path (the paper's timeout,
	// Section 5.4). Exceeding it raises the "timed out" exception.
	Watchdog int
	// AffineTracking enables the refined constraint solver that tracks
	// propagated err values as affine terms of their root (see package
	// symbolic). Disabling it reproduces the paper's coarser single-symbol
	// model, for ablation.
	AffineTracking bool
	// MaxControlTargets caps the fork fan-out when a control transfer target
	// is err (paper: "jumps to an arbitrary but valid code location"). 0
	// means every valid code location. When the cap truncates enumeration,
	// the state is annotated so reports never silently under-count.
	MaxControlTargets int
	// MaxMemTargets caps the fork fan-out when a load/store address is err
	// (paper: "retrieves/overwrites the contents of an arbitrary memory
	// location"). 0 means every defined location.
	MaxMemTargets int
	// SymbolicMem, when true, models a load through an erroneous pointer as
	// returning a fresh err instead of enumerating defined locations. This
	// is a sound over-approximation that trades precision for state count.
	SymbolicMem bool
}

// DefaultOptions returns the options used throughout the paper reproduction.
func DefaultOptions() Options {
	return Options{
		Watchdog:       machine.DefaultWatchdog,
		AffineTracking: true,
	}
}

// State is one symbolic machine state: the paper's "soup" of PC, register
// file, memory, input/output streams, plus the ConstraintMap and the
// decision trace. States are persistent: Successors never mutates its
// receiver.
type State struct {
	Prog *isa.Program
	Dets *detector.Table
	Opts Options

	PC   int
	Regs [isa.NumRegs]isa.Value
	// Mem is the memory image. After a Clone it may be shared copy-on-write
	// with the state it was forked from; mutate it only through the State's
	// methods (which materialize a private copy first), never directly.
	Mem   map[int64]isa.Value
	Sym   *symbolic.Store
	In    []isa.Value // shared, immutable
	InPos int
	Out   []machine.OutItem
	Steps int

	// Stuck marks locations with a permanent (stuck-at) fault: the cell
	// holds an unknown-but-fixed erroneous value, so writes to it are
	// discarded and every read observes the same symbolic root. Transient
	// errors (the paper's primary model) never populate this; permanent
	// errors are the paper's future-work extension (2).
	Stuck map[isa.Loc]struct{}

	Status machine.Status
	Exc    *isa.Exception
	Trace  *trace.Node

	// Truncated is set when a fork fan-out cap dropped successors, so the
	// search report can flag incomplete coverage instead of silently
	// under-counting.
	Truncated bool

	// memShared marks Mem as possibly shared with another state after a
	// Clone; the first write copies it (materializeMem). Forks at
	// comparisons and control transfers never touch memory before the next
	// store instruction, so most clones never pay for the copy.
	memShared bool

	// Stats, when non-nil, tallies fork/prune/truncation events for the
	// observability layer. The pointer is shared by every state forked from
	// the same search (Clone propagates it), so one injection's whole BFS
	// accumulates into a single ExecStats. It deliberately lives here and
	// not in Options: Options participates in the campaign fingerprint,
	// and a pointer there would hash its address.
	Stats *obs.ExecStats
}

// NewState builds an initial symbolic state at PC 0 with the given input.
func NewState(prog *isa.Program, dets *detector.Table, input []int64, opts Options) *State {
	if dets == nil {
		dets = detector.EmptyTable()
	}
	if opts.Watchdog <= 0 {
		opts.Watchdog = machine.DefaultWatchdog
	}
	in := make([]isa.Value, len(input))
	for i, v := range input {
		in[i] = isa.Int(v)
	}
	return &State{
		Prog:   prog,
		Dets:   dets,
		Opts:   opts,
		Mem:    make(map[int64]isa.Value),
		Sym:    symbolic.NewStore(),
		In:     in,
		Status: machine.StatusRunning,
	}
}

// FromMachine lifts a concrete machine's current state into a symbolic state,
// used by the checker after concretely executing the prefix up to the
// injection breakpoint (the paper's optimization of injecting just before the
// instruction that uses the target register, Section 6.2).
func FromMachine(m *machine.Machine, dets *detector.Table, opts Options) *State {
	if dets == nil {
		dets = detector.EmptyTable()
	}
	if opts.Watchdog <= 0 {
		opts.Watchdog = machine.DefaultWatchdog
	}
	st := &State{
		Prog:   m.Program(),
		Dets:   dets,
		Opts:   opts,
		PC:     m.PC(),
		Mem:    m.MemSnapshot(),
		Sym:    symbolic.NewStore(),
		Out:    m.Output(),
		Steps:  m.Steps(),
		Status: machine.StatusRunning,
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		st.Regs[r] = m.Reg(r)
	}
	// Remaining input: the machine consumed a prefix; re-derive the tail is
	// not observable from outside, so FromMachine callers must pass the full
	// input via SetInput if the program reads after the breakpoint.
	return st
}

// SetInput installs the remaining input stream (already-consumed values
// excluded).
func (s *State) SetInput(vals []int64) {
	s.In = make([]isa.Value, len(vals))
	for i, v := range vals {
		s.In[i] = isa.Int(v)
	}
	s.InPos = 0
}

// Clone returns a logically independent copy sharing immutable pieces
// (program, detector table, input stream, trace prefix) eagerly and the
// mutable memory image and constraint store copy-on-write: both sides keep
// referencing the same map until one of them writes, which copies first.
// States of one search belong to one goroutine, so the sharing needs no
// synchronization.
func (s *State) Clone() *State {
	s.memShared = true
	out := &State{
		Prog:      s.Prog,
		Dets:      s.Dets,
		Opts:      s.Opts,
		PC:        s.PC,
		Regs:      s.Regs,
		Mem:       s.Mem,
		Sym:       s.Sym.Clone(),
		In:        s.In,
		InPos:     s.InPos,
		Out:       make([]machine.OutItem, len(s.Out)),
		Steps:     s.Steps,
		Status:    s.Status,
		Exc:       s.Exc,
		Trace:     s.Trace,
		Truncated: s.Truncated,
		memShared: true,
		Stats:     s.Stats,
	}
	copy(out.Out, s.Out)
	if len(s.Stuck) > 0 {
		out.Stuck = make(map[isa.Loc]struct{}, len(s.Stuck))
		for l := range s.Stuck {
			out.Stuck[l] = struct{}{}
		}
	}
	return out
}

// materializeMem copies the shared memory image before the first write after
// a Clone.
func (s *State) materializeMem() {
	if !s.memShared {
		return
	}
	mem := make(map[int64]isa.Value, len(s.Mem)+1)
	for a, v := range s.Mem {
		mem[a] = v
	}
	s.Mem = mem
	s.memShared = false
}

// Running reports whether the state can still take a step.
func (s *State) Running() bool { return s.Status == machine.StatusRunning }

// note appends a trace event.
func (s *State) note(kind trace.Kind, format string, args ...any) {
	s.Trace = s.Trace.Append(trace.Event{
		Kind: kind,
		Step: s.Steps,
		PC:   s.PC,
		Text: fmt.Sprintf(format, args...),
	})
}

// Note appends a trace event; exported for the fault model and the checker.
func (s *State) Note(kind trace.Kind, format string, args ...any) {
	s.note(kind, format, args...)
}

// Inject places err into loc and returns the fresh root, recording the event.
func (s *State) Inject(loc isa.Loc) symbolic.RootID {
	root := s.Sym.Inject(loc)
	if loc.IsMem {
		s.materializeMem()
		s.Mem[loc.Addr] = isa.Err()
	} else if loc.Reg != isa.RegZero {
		s.Regs[loc.Reg] = isa.Err()
	}
	s.note(trace.KindInject, "err (e#%d) injected into %s at %s", root, loc, s.Prog.Locate(s.PC))
	return root
}

// regOperand reads register r as a propagation operand.
func (s *State) regOperand(r isa.Reg) symbolic.Operand {
	v := s.Regs[r]
	if r == isa.RegZero {
		v = isa.Int(0)
	}
	if n, ok := v.Concrete(); ok {
		return symbolic.ConcreteOperand(n)
	}
	if t, ok := s.Sym.Term(isa.RegLoc(r)); ok {
		return symbolic.ErrOperand(t)
	}
	return symbolic.Operand{Val: isa.Err()}
}

// memOperand reads the memory word at addr as a propagation operand.
func (s *State) memOperand(addr int64) (symbolic.Operand, bool) {
	v, ok := s.Mem[addr]
	if !ok {
		return symbolic.Operand{}, false
	}
	if n, okc := v.Concrete(); okc {
		return symbolic.ConcreteOperand(n), true
	}
	if t, okt := s.Sym.Term(isa.MemLoc(addr)); okt {
		return symbolic.ErrOperand(t), true
	}
	return symbolic.Operand{Val: isa.Err()}, true
}

// RegOperand implements detector.Env.
func (s *State) RegOperand(r isa.Reg) symbolic.Operand { return s.regOperand(r) }

// MemOperand implements detector.Env.
func (s *State) MemOperand(addr int64) (symbolic.Operand, bool) { return s.memOperand(addr) }

var _ detector.Env = (*State)(nil)

// InjectPermanent places a stuck-at fault into loc: the location reads as
// the same unknown erroneous value forever, and writes to it are discarded.
func (s *State) InjectPermanent(loc isa.Loc) symbolic.RootID {
	root := s.Inject(loc)
	if s.Stuck == nil {
		s.Stuck = make(map[isa.Loc]struct{}, 1)
	}
	s.Stuck[loc] = struct{}{}
	s.note(trace.KindNote, "fault in %s is permanent (stuck-at)", loc)
	return root
}

// stuck reports whether loc carries a permanent fault.
func (s *State) stuck(loc isa.Loc) bool {
	_, ok := s.Stuck[loc]
	return ok
}

// setReg writes a propagation result into register r, maintaining the
// invariant that every err-holding location has a term in the store.
// Writes to a permanently faulty register are discarded.
func (s *State) setReg(r isa.Reg, val isa.Value, term symbolic.Term, hasTerm bool) {
	if r == isa.RegZero {
		return
	}
	if s.stuck(isa.RegLoc(r)) {
		return
	}
	s.Regs[r] = val
	loc := isa.RegLoc(r)
	if val.IsErr() {
		if hasTerm {
			s.Sym.SetTerm(loc, term)
		} else {
			s.Sym.SetTerm(loc, symbolic.FreshTerm(s.Sym.NewRoot()))
		}
	} else {
		s.Sym.Clear(loc)
	}
}

// setMem writes a propagation result into memory, maintaining the term
// invariant. Writes to a permanently faulty word are discarded.
func (s *State) setMem(addr int64, val isa.Value, term symbolic.Term, hasTerm bool) {
	if s.stuck(isa.MemLoc(addr)) {
		return
	}
	s.materializeMem()
	s.Mem[addr] = val
	loc := isa.MemLoc(addr)
	if val.IsErr() {
		if hasTerm {
			s.Sym.SetTerm(loc, term)
		} else {
			s.Sym.SetTerm(loc, symbolic.FreshTerm(s.Sym.NewRoot()))
		}
	} else {
		s.Sym.Clear(loc)
	}
}

// concretize sweeps err-holding locations whose constraints now pin their
// term to a single value and rewrites them as concrete (the paper's "the
// location being compared can be updated with the value it is being compared
// to", generalized through the affine map).
func (s *State) concretize() {
	for _, loc := range s.Sym.Locs() {
		t, ok := s.Sym.Term(loc)
		if !ok {
			continue
		}
		v, exact := s.Sym.ExactValue(t)
		if !exact {
			continue
		}
		if loc.IsMem {
			s.materializeMem()
			s.Mem[loc.Addr] = isa.Int(v)
		} else if loc.Reg != isa.RegZero {
			s.Regs[loc.Reg] = isa.Int(v)
		}
		s.Sym.Clear(loc)
	}
}

// raise terminates the state with an exception.
func (s *State) raise(kind isa.ExceptionKind, detail string) {
	s.Status = machine.StatusExcepted
	s.Exc = &isa.Exception{Kind: kind, PC: s.PC, Detail: detail}
	s.note(trace.KindException, "%s", s.Exc.Error())
}

// FiredDetector returns the ID of the detector that terminated this state,
// when the state was detected by an attributed CHECK. Coverage attribution
// (which detector catches which injection) folds these into
// checker.InjectionReport.DetectorHits.
func (s *State) FiredDetector() (int64, bool) {
	if s.Exc != nil && s.Exc.Kind == isa.ExcDetected && s.Exc.Detector != 0 {
		return s.Exc.Detector, true
	}
	return 0, false
}

// OutputString renders the output stream.
func (s *State) OutputString() string { return machine.RenderOutput(s.Out) }

// OutputValues returns printed values (no string literals).
func (s *State) OutputValues() []isa.Value { return machine.OutputValues(s.Out) }

// OutputContainsErr reports whether any printed value is err.
func (s *State) OutputContainsErr() bool {
	for _, o := range s.Out {
		if !o.IsStr && o.Val.IsErr() {
			return true
		}
	}
	return false
}

// Key returns a canonical encoding of the state for visited-set dedup.
func (s *State) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pc%d|s%d|i%d|", s.PC, s.Steps, s.InPos)
	for r := 0; r < isa.NumRegs; r++ {
		b.WriteString(s.Regs[r].String())
		b.WriteByte(',')
	}
	b.WriteByte('|')
	addrs := make([]int64, 0, len(s.Mem))
	for a := range s.Mem {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		b.WriteString(strconv.FormatInt(a, 10))
		b.WriteByte('=')
		b.WriteString(s.Mem[a].String())
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(s.Sym.Key())
	b.WriteByte('|')
	b.WriteString(s.OutputString())
	fmt.Fprintf(&b, "|%d", s.Status)
	if len(s.Stuck) > 0 {
		locs := make([]string, 0, len(s.Stuck))
		for l := range s.Stuck {
			locs = append(locs, l.String())
		}
		sort.Strings(locs)
		b.WriteString("|stuck:")
		for _, l := range locs {
			b.WriteString(l)
			b.WriteByte(',')
		}
	}
	return b.String()
}

// Outcome classifies a terminated state in the paper's failure vocabulary.
type Outcome int

// Outcomes.
const (
	OutcomeNormal   Outcome = iota + 1 // halted via halt
	OutcomeCrash                       // exception (illegal instr/addr, div-zero, throw)
	OutcomeHang                        // watchdog timeout
	OutcomeDetected                    // a detector fired
	OutcomeRunning                     // not terminated yet
)

// MarshalText renders the outcome by name. encoding/json consults
// TextMarshaler for map keys, so outcome-keyed tallies (checker reports,
// cluster task reports) serialize with readable, order-independent keys
// instead of bare integers.
func (o Outcome) MarshalText() ([]byte, error) { return []byte(o.String()), nil }

// UnmarshalText parses an outcome name; bare integers in the defined range
// are accepted for compatibility with journals written before outcomes were
// named on the wire. Out-of-range integers (a corrupt or hand-edited journal)
// are rejected rather than smuggled in as nameless tally buckets.
func (o *Outcome) UnmarshalText(text []byte) error {
	s := string(text)
	for cand := OutcomeNormal; cand <= OutcomeRunning; cand++ {
		if cand.String() == s {
			*o = cand
			return nil
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < int(OutcomeNormal) || n > int(OutcomeRunning) {
		return fmt.Errorf("symexec: unknown outcome %q", s)
	}
	*o = Outcome(n)
	return nil
}

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeNormal:
		return "normal"
	case OutcomeCrash:
		return "crash"
	case OutcomeHang:
		return "hang"
	case OutcomeDetected:
		return "detected"
	case OutcomeRunning:
		return "running"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Outcome classifies the state.
func (s *State) Outcome() Outcome {
	switch s.Status {
	case machine.StatusHalted:
		return OutcomeNormal
	case machine.StatusExcepted:
		switch s.Exc.Kind {
		case isa.ExcTimeout:
			return OutcomeHang
		case isa.ExcDetected:
			return OutcomeDetected
		default:
			return OutcomeCrash
		}
	}
	return OutcomeRunning
}
