package symexec

import (
	"fmt"

	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/symbolic"
	"symplfied/internal/trace"
)

// StepInPlace executes one instruction by mutating the receiver when the
// step is deterministic (a single successor), returning true. It returns
// false — leaving the state untouched — when the step would fork, in which
// case the caller must expand with Successors. Callers must own the state
// exclusively (the checker's frontier states qualify).
//
// This is a performance fast path: a deterministic step avoids cloning the
// register file, memory and constraint store. Semantics are identical to
// Successors returning exactly one running/terminal state; the equivalence
// is pinned by TestStepInPlaceAgreesWithSuccessors.
func (s *State) StepInPlace() bool {
	if !s.Running() {
		return false
	}
	if s.Steps >= s.Opts.Watchdog {
		s.raise(isa.ExcTimeout, fmt.Sprintf("watchdog after %d instructions", s.Steps))
		s.Stats.CountWatchdog()
		return true
	}
	if !s.Prog.ValidPC(s.PC) {
		s.raise(isa.ExcIllegalInstr, fmt.Sprintf("fetch from %d", s.PC))
		return true
	}
	in := s.Prog.At(s.PC)

	if bin, imm, ok := isa.ArithOp(in.Op); ok {
		x, y := s.operandPair(in, imm)
		res := symbolic.PropagateBin(bin, x, y, s.Opts.AffineTracking)
		if res.ForkOnDivisor {
			return false
		}
		s.Steps++
		if res.DivZero {
			s.raise(isa.ExcDivZero, "")
			return true
		}
		s.setReg(in.Rd, res.Val, res.Term, res.HasTerm)
		s.PC++
		return true
	}

	if cmp, imm, ok := isa.CmpForOp(in.Op); ok {
		x, y := s.operandPair(in, imm)
		switch symbolic.DecideCmp(cmp, x, y) {
		case symbolic.CmpTrue:
			s.Steps++
			s.setReg(in.Rd, isa.Int(1), symbolic.Term{}, false)
			s.PC++
			return true
		case symbolic.CmpFalse:
			s.Steps++
			s.setReg(in.Rd, isa.Int(0), symbolic.Term{}, false)
			s.PC++
			return true
		}
		return false
	}

	switch in.Op {
	case isa.OpMov:
		op := s.regOperand(in.Rs)
		s.Steps++
		s.setReg(in.Rd, op.Val, op.Term, op.HasTerm)
		s.PC++
		return true
	case isa.OpLi:
		s.Steps++
		s.setReg(in.Rd, isa.Int(in.Imm), symbolic.Term{}, false)
		s.PC++
		return true
	case isa.OpLui:
		s.Steps++
		s.setReg(in.Rd, isa.Int(in.Imm<<16), symbolic.Term{}, false)
		s.PC++
		return true
	case isa.OpLd:
		base := s.regOperand(in.Rs)
		bc, conc := base.Val.Concrete()
		if !conc {
			return false
		}
		s.Steps++
		addr := bc + in.Imm
		op, defined := s.memOperand(addr)
		if !defined {
			s.raise(isa.ExcIllegalAddr, fmt.Sprintf("load from undefined %d", addr))
			return true
		}
		s.setReg(in.Rt, op.Val, op.Term, op.HasTerm)
		s.PC++
		return true
	case isa.OpSt:
		base := s.regOperand(in.Rs)
		bc, conc := base.Val.Concrete()
		if !conc {
			return false
		}
		val := s.regOperand(in.Rt)
		s.Steps++
		s.setMem(bc+in.Imm, val.Val, val.Term, val.HasTerm)
		s.PC++
		return true
	case isa.OpBeq, isa.OpBne, isa.OpBeqi, isa.OpBnei:
		x := s.regOperand(in.Rs)
		var y symbolic.Operand
		if in.Op == isa.OpBeq || in.Op == isa.OpBne {
			y = s.regOperand(in.Rt)
		} else {
			y = symbolic.ConcreteOperand(in.Imm)
		}
		cmp := isa.CmpEq
		if in.Op == isa.OpBne || in.Op == isa.OpBnei {
			cmp = isa.CmpNe
		}
		switch symbolic.DecideCmp(cmp, x, y) {
		case symbolic.CmpTrue:
			s.Steps++
			s.PC = in.Target
			return true
		case symbolic.CmpFalse:
			s.Steps++
			s.PC++
			return true
		}
		return false
	case isa.OpJmp:
		s.Steps++
		s.PC = in.Target
		return true
	case isa.OpJal:
		s.Steps++
		s.setReg(isa.RegRA, isa.Int(int64(s.PC+1)), symbolic.Term{}, false)
		s.PC = in.Target
		return true
	case isa.OpJr:
		target := s.regOperand(in.Rs)
		tc, conc := target.Val.Concrete()
		if !conc {
			return false
		}
		s.Steps++
		s.PC = int(tc)
		return true
	case isa.OpRead:
		s.Steps++
		if s.InPos >= len(s.In) {
			s.raise(isa.ExcThrow, "end of input")
			return true
		}
		v := s.In[s.InPos]
		s.InPos++
		if n, ok := v.Concrete(); ok {
			s.setReg(in.Rd, isa.Int(n), symbolic.Term{}, false)
		} else {
			s.setReg(in.Rd, isa.Err(), symbolic.Term{}, false)
		}
		s.PC++
		return true
	case isa.OpPrint:
		s.Steps++
		v := s.Regs[in.Rd]
		if in.Rd == isa.RegZero {
			v = isa.Int(0)
		}
		s.Out = append(s.Out, machine.OutItem{Val: v})
		if v.IsErr() {
			s.note(trace.KindOutput, "printed err")
		}
		s.PC++
		return true
	case isa.OpPrints:
		s.Steps++
		s.Out = append(s.Out, machine.OutItem{IsStr: true, Str: in.Str})
		s.PC++
		return true
	case isa.OpNop:
		s.Steps++
		s.PC++
		return true
	case isa.OpHalt:
		s.Steps++
		s.Status = machine.StatusHalted
		s.note(trace.KindHalt, "halt (output %q)", s.OutputString())
		return true
	case isa.OpThrow:
		s.Steps++
		s.raise(isa.ExcThrow, in.Str)
		return true
	case isa.OpCheck:
		return s.stepCheckInPlace(in)
	}
	return false
}

// stepCheckInPlace handles deterministic detector checks in place.
func (s *State) stepCheckInPlace(in isa.Instr) bool {
	det, ok := s.Dets.Lookup(in.Imm)
	if !ok {
		s.Steps++
		s.raise(isa.ExcThrow, fmt.Sprintf("unknown detector %d", in.Imm))
		return true
	}
	target, err := det.TargetOperand(s)
	if err != nil {
		s.Steps++
		s.raise(isa.ExcThrow, err.Error())
		s.Exc.Detector = det.ID
		return true
	}
	expr, err := det.EvalExpr(s, s.Opts.AffineTracking)
	if err != nil {
		s.Steps++
		s.raise(isa.ExcThrow, err.Error())
		s.Exc.Detector = det.ID
		return true
	}
	switch symbolic.DecideCmp(det.Cmp, target, expr) {
	case symbolic.CmpTrue:
		s.Steps++
		s.note(trace.KindCheckPass, "detector %d passed: %s", det.ID, det)
		s.PC++
		return true
	case symbolic.CmpFalse:
		s.Steps++
		s.note(trace.KindDetect, "detector %d fired: %s", det.ID, det)
		s.raise(isa.ExcDetected, fmt.Sprintf("detector %d: %s", det.ID, det))
		s.Exc.Detector = det.ID
		return true
	}
	return false
}
