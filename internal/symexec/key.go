package symexec

import (
	"fmt"
	"os"

	"symplfied/internal/isa"
	"symplfied/internal/symbolic"
)

// CheckKeyCollisions enables the visited-set collision audit: every state
// hash handed out by a Keyer is cross-checked against the full canonical
// Key() string, and a 64-bit collision (two states with equal hashes but
// different canonical encodings) panics with both encodings. The audit
// restores the old allocation cost, so it is a debug flag, not a default;
// set it in a test or export SYMPLFIED_CHECK_KEY_COLLISIONS=1.
var CheckKeyCollisions = os.Getenv("SYMPLFIED_CHECK_KEY_COLLISIONS") != ""

// Keyer produces visited-set keys for the states of one search. It exists so
// a search loop gets the collision-audit bookkeeping (and any future scratch
// reuse) without per-state setup; a Keyer is single-goroutine like the
// search it serves.
type Keyer struct {
	// audit maps hash → canonical string when collision checking is on.
	audit map[uint64]string
}

// NewKeyer returns a Keyer, with the collision audit armed when
// CheckKeyCollisions is set.
func NewKeyer() *Keyer {
	k := &Keyer{}
	if CheckKeyCollisions {
		k.audit = make(map[uint64]string)
	}
	return k
}

// Hash returns the state's 64-bit visited-set key.
func (k *Keyer) Hash(s *State) uint64 {
	h := s.KeyHash()
	if k.audit != nil {
		full := s.Key()
		if prev, ok := k.audit[h]; ok {
			if prev != full {
				panic(fmt.Sprintf("symexec: state key hash collision: %#x keys both\n  %q\nand\n  %q", h, prev, full))
			}
		} else {
			k.audit[h] = full
		}
	}
	return h
}

// hashValue feeds a machine word: a tag for err, else the integer.
func hashValue(h *symbolic.Hash64, v isa.Value) {
	if v.IsErr() {
		h.Byte(0xFF) // distinct from any byte the integer encoding emits after the tag
		return
	}
	h.Byte(0)
	h.Int(v.MustConcrete())
}

// KeyHash returns a 64-bit hash of the state's canonical encoding — the same
// configuration Key() renders (PC, step counter, input cursor, registers,
// memory, constraint store, output stream, status, stuck set) — built
// incrementally without sorting or string construction. Two states with
// equal Key() strings always hash equal; the converse can fail only by
// 64-bit collision, which the Keyer audits under CheckKeyCollisions.
//
// The hash is stable for the lifetime of the process only: it seeds
// in-memory visited sets, prune memos, and merge grouping, never anything
// persisted (durable identities go through internal/fingerprint).
func (s *State) KeyHash() uint64 {
	return s.hashConfig(true, true)
}

// LoopHash hashes the configuration excluding the step counter: two states
// with equal LoopHash take identical deterministic transitions (stepping
// consults Steps only for the watchdog). The merged explorer's cycle
// accelerator uses it to prove a state revisited its own configuration.
func (s *State) LoopHash() uint64 {
	return s.hashConfig(false, true)
}

// SkeletonHash hashes the concrete skeleton: the configuration excluding
// the step counter and the whole constraint store (err-holding locations
// still contribute their err tags). States with equal skeletons are merge
// candidates — they differ only in what is known about their erroneous
// values, how they got here, and when.
func (s *State) SkeletonHash() uint64 {
	return s.hashConfig(false, false)
}

// hashConfig is the single encoder behind KeyHash, LoopHash and
// SkeletonHash, so the three can never drift apart on the shared
// components.
func (s *State) hashConfig(withSteps, withSym bool) uint64 {
	h := symbolic.NewHash64()
	h.Int(int64(s.PC))
	if withSteps {
		h.Int(int64(s.Steps))
	}
	h.Int(int64(s.InPos))
	for r := range s.Regs {
		hashValue(&h, s.Regs[r])
	}
	// Memory is unordered: fold a per-entry hash commutatively so the map
	// needs no sorting. Key() sorts addresses for the same canonicality.
	var mem uint64
	for a, v := range s.Mem {
		mem += entryHash(a, v)
	}
	h.Word(uint64(len(s.Mem)))
	h.Word(mem)
	if withSym {
		s.Sym.KeyHash(&h)
	}
	// The output stream is ordered but Key() compares its rendering, where
	// item boundaries vanish ("a"+"bc" equals "ab"+"c"); hash the rendered
	// characters to keep exactly that equivalence.
	for _, o := range s.Out {
		if o.IsStr {
			h.Str(o.Str)
		} else if o.Val.IsErr() {
			h.Str("err")
		} else {
			h.Decimal(o.Val.MustConcrete())
		}
	}
	h.Int(int64(s.Status))
	var stuck uint64
	for l := range s.Stuck {
		e := symbolic.NewHash64()
		e.Bool(l.IsMem)
		e.Int(l.Addr)
		e.Int(int64(l.Reg))
		stuck += e.Sum()
	}
	h.Word(uint64(len(s.Stuck)))
	h.Word(stuck)
	return h.Sum()
}

// entryHash hashes one memory cell for the commutative fold.
func entryHash(addr int64, v isa.Value) uint64 {
	e := symbolic.NewHash64()
	e.Int(addr)
	hashValue(&e, v)
	return e.Sum()
}
