package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards expvar.Publish, which panics on duplicate names.
var publishOnce sync.Once

// PublishExpvar exposes the default registry's snapshot under the expvar
// name "symplfied", so any /debug/vars page (including one mounted by the
// dist coordinator's mux) carries the full metric set. Safe to call many
// times.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("symplfied", expvar.Func(func() any {
			return Default().Snapshot().ExpvarMap()
		}))
	})
}

// RegisterOps mounts the operational endpoints on mux:
//
//	/metrics      - Prometheus text exposition of the default registry
//	/debug/vars   - expvar JSON (includes the "symplfied" snapshot map)
//	/debug/pprof/ - net/http/pprof profiles
func RegisterOps(mux *http.ServeMux) {
	PublishExpvar()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default().Snapshot().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve binds addr (":0" picks a free port) and serves the operational
// endpoints in a background goroutine. It returns the bound address and a
// closer; callers log the address so `-metrics-addr :0` is usable.
func Serve(addr string) (bound string, closer func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	RegisterOps(mux)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

// SnapshotJSON renders the default registry's expvar map as JSON, for
// embedding in logs or test output.
func SnapshotJSON() []byte {
	b, _ := json.Marshal(Default().Snapshot().ExpvarMap())
	return b
}
