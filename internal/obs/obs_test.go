package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIncrements hammers one counter, one gauge and one histogram
// from many goroutines and checks nothing is lost (run under -race in CI).
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total")
			g := r.Gauge("g")
			h := r.Histogram("h_seconds", nil)
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	const want = goroutines * perG
	if got := r.Counter("c_total").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("g").Value(); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	h := r.Histogram("h_seconds", nil)
	if h.Count() != want {
		t.Errorf("histogram count = %d, want %d", h.Count(), want)
	}
	if diff := h.Sum() - float64(want)*0.001; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), float64(want)*0.001)
	}
}

// TestSnapshotDeterminism: two registries populated in different orders must
// snapshot to identical bytes, in JSON and in Prometheus text.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []int) *Registry {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter(MStates).Add(42) },
			func() { r.Counter(MForks, L("kind", ForkCmp)).Add(7) },
			func() { r.Counter(MForks, L("kind", ForkLoad)).Add(3) },
			func() { r.Gauge(MFrontier).Set(9) },
			func() { r.Histogram(MTaskSeconds, []float64{1, 10}).Observe(2.5) },
			func() { r.Counter(MXvalMismatches, L("class", "symbolic-miss")).Add(1) },
			func() { r.Counter(MXvalMismatches, L("class", "concrete-miss")).Add(6) },
			func() { r.Counter(MXvalMismatches, L("class", "class-drift")).Add(2) },
		}
		for _, i := range order {
			ops[i]()
		}
		return r
	}
	a := build([]int{0, 1, 2, 3, 4, 5, 6, 7})
	b := build([]int{7, 6, 5, 4, 3, 2, 1, 0})

	aj, _ := json.Marshal(a.Snapshot().ExpvarMap())
	bj, _ := json.Marshal(b.Snapshot().ExpvarMap())
	if !bytes.Equal(aj, bj) {
		t.Errorf("expvar JSON differs by registration order:\n%s\n%s", aj, bj)
	}

	var ap, bp bytes.Buffer
	if err := a.Snapshot().WritePrometheus(&ap); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WritePrometheus(&bp); err != nil {
		t.Fatal(err)
	}
	if ap.String() != bp.String() {
		t.Errorf("Prometheus text differs by registration order:\n%s\n%s", ap.String(), bp.String())
	}

	// Repeated snapshots of an unchanged registry are identical too.
	cj, _ := json.Marshal(a.Snapshot().ExpvarMap())
	if !bytes.Equal(aj, cj) {
		t.Error("repeated snapshot differs")
	}
}

// TestPrometheusText checks the exposition format details: TYPE lines once
// per family, label rendering, histogram _bucket/_sum/_count, and the
// backslash/quote/newline escaping rules.
func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter(MForks, L("kind", ForkCmp)).Add(5)
	r.Counter(MForks, L("kind", ForkStore)).Add(2)
	r.Gauge(MFrontier).Set(3)
	r.Histogram(MTaskSeconds, []float64{0.5, 5}).Observe(1.25)
	r.Counter(MXvalMismatches, L("class", "symbolic-miss")).Inc()
	r.Counter(MXvalMismatches, L("class", "class-drift")).Add(3)
	r.Counter("weird_total", L("path", "a\\b\"c\nd")).Inc()

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, want := range []string{
		"# TYPE symplfied_forks_total counter\n",
		`symplfied_forks_total{kind="cmp"} 5` + "\n",
		`symplfied_forks_total{kind="store"} 2` + "\n",
		"# TYPE symplfied_frontier_states gauge\n",
		"symplfied_frontier_states 3\n",
		"# TYPE symplfied_task_seconds histogram\n",
		`symplfied_task_seconds_bucket{le="0.5"} 0` + "\n",
		`symplfied_task_seconds_bucket{le="5"} 1` + "\n",
		`symplfied_task_seconds_bucket{le="+Inf"} 1` + "\n",
		"symplfied_task_seconds_sum 1.25\n",
		"symplfied_task_seconds_count 1\n",
		"# TYPE symplfied_crossval_mismatches_total counter\n",
		`symplfied_crossval_mismatches_total{class="symbolic-miss"} 1` + "\n",
		`symplfied_crossval_mismatches_total{class="class-drift"} 3` + "\n",
		`weird_total{path="a\\b\"c\nd"} 1` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE symplfied_forks_total"); n != 1 {
		t.Errorf("TYPE line for forks family appears %d times, want 1", n)
	}
}

// TestExecStatsMerge: merging is order-independent and matches summing by
// hand, with max semantics on the high-water marks.
func TestExecStatsMerge(t *testing.T) {
	a := ExecStats{ForksCmp: 3, SolverPrunes: 2, DedupHits: 1, MaxFrontier: 10, MaxDepth: 5}
	b := ExecStats{ForksCmp: 1, ForksLoad: 4, WatchdogTruncations: 2, MaxFrontier: 7, MaxDepth: 9}

	ab, ba := a, b
	ab.Merge(b)
	ba.Merge(a)
	if ab != ba {
		t.Errorf("merge not commutative: %+v vs %+v", ab, ba)
	}
	want := ExecStats{ForksCmp: 4, ForksLoad: 4, SolverPrunes: 2, DedupHits: 1,
		WatchdogTruncations: 2, MaxFrontier: 10, MaxDepth: 9}
	if ab != want {
		t.Errorf("merge = %+v, want %+v", ab, want)
	}
	if got := ab.Forks(); got != 8 {
		t.Errorf("Forks() = %d, want 8", got)
	}
	if !(ExecStats{}).IsZero() || ab.IsZero() {
		t.Error("IsZero misclassifies")
	}
}

// TestExecStatsNilSafe: all counting methods must be no-ops on nil.
func TestExecStatsNilSafe(t *testing.T) {
	var s *ExecStats
	s.CountFork(ForkCmp)
	s.CountPrune()
	s.CountDedup()
	s.CountWatchdog()
	s.CountFanout()
	s.ObserveFrontier(10)
	s.ObserveDepth(10)
	if s.Forks() != 0 {
		t.Error("nil stats not zero")
	}
}

// TestExecStatsPublish: publishing a tally lands on the expected registry
// instruments.
func TestExecStatsPublish(t *testing.T) {
	r := NewRegistry()
	s := ExecStats{ForksCmp: 2, ForksDetector: 1, SolverPrunes: 3, MaxFrontier: 11}
	s.Publish(r)
	s.Publish(r) // counters accumulate, gauge stays at the max
	if got := r.Counter(MForks, L("kind", ForkCmp)).Value(); got != 4 {
		t.Errorf("cmp forks = %d, want 4", got)
	}
	if got := r.Counter(MSolverPrunes).Value(); got != 6 {
		t.Errorf("prunes = %d, want 6", got)
	}
	if got := r.Gauge(MFrontierMax).Value(); got != 11 {
		t.Errorf("frontier max = %d, want 11", got)
	}
}

// TestServeEndpoints boots the ops server on :0 and checks /metrics,
// /debug/vars and /debug/pprof/ all answer.
func TestServeEndpoints(t *testing.T) {
	Default().Counter(MStates).Add(1)
	addr, closer, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer()

	get := func(path string) (string, int) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.String(), resp.StatusCode
	}

	if body, code := get("/metrics"); code != 200 || !strings.Contains(body, MStates) {
		t.Errorf("/metrics: code %d, body %q", code, body)
	}
	if body, code := get("/debug/vars"); code != 200 || !strings.Contains(body, `"symplfied"`) {
		t.Errorf("/debug/vars: code %d, missing symplfied map in %q", code, body)
	}
	if _, code := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d", code)
	}
}

// TestProgressLine: the reader computes rates and ETA from the registry and
// renders the documented one-line format.
func TestProgressLine(t *testing.T) {
	r := NewRegistry()
	rd := NewReader(r)
	r.Counter(MStates).Add(1000)
	r.Counter(MFindings).Add(2)
	r.Gauge(MFrontier).Set(40)
	r.Gauge(MTasksTotal).Set(10)
	r.Gauge(MTasksDone).Set(5)
	time.Sleep(10 * time.Millisecond)

	p := rd.Read()
	if p.States != 1000 || p.Findings != 2 || p.Frontier != 40 {
		t.Errorf("bad reading: %+v", p)
	}
	if p.StatesPerSec <= 0 {
		t.Errorf("states/s = %g, want > 0", p.StatesPerSec)
	}
	if p.ETA <= 0 {
		t.Errorf("ETA = %s, want > 0 with 5/10 tasks done", p.ETA)
	}
	line := p.String()
	for _, want := range []string{"progress ", "states=1000", "findings=2", "frontier=40", "tasks=5/10", "eta="} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %s", want, line)
		}
	}

	// StartProgress emits through logf and stops on cancel.
	ctx, cancel := context.WithCancel(context.Background())
	lines := make(chan string, 16)
	StartProgress(ctx, r, 5*time.Millisecond, func(format string, args ...any) {
		select {
		case lines <- fmt.Sprintf(format, args...):
		default:
		}
	})
	select {
	case l := <-lines:
		if !strings.HasPrefix(l, "progress ") {
			t.Errorf("unexpected progress line %q", l)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no progress line emitted")
	}
	cancel()
}

// TestSanitize covers metric-name sanitization for non-conforming runes.
func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name:x":  "ok_name:x",
		"1starts":    "_starts",
		"has space":  "has_space",
		"dash-name":  "dash_name",
		"":           "_",
		"utf8_éclat": "utf8__clat",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
