// Package obs is the observability substrate for long fault-injection
// campaigns: the live analogue of the paper's evaluation tables (DSN 2008,
// Tables 2-4), which report how many states each search explored, how many
// forks the solver pruned, and how long each workload took. It is a
// zero-dependency metrics layer — atomic counters, gauges and fixed-bucket
// histograms in a Registry whose Snapshot marshals both to expvar-style JSON
// and to the Prometheus text exposition format — threaded through the
// checker, cluster and dist hot paths, plus the operational endpoints
// (/metrics, /debug/vars, net/http/pprof) and the periodic one-line progress
// report the CLIs expose via -metrics-addr and -progress.
//
// Metric names are declared once here (the M* constants) so the producers
// (checker, cluster, campaign, dist) and the consumers (progress reporter,
// scrapers) agree. Per-injection exploration tallies additionally travel
// inside reports as ExecStats, so checkpoint journals and the distributed
// wire protocol merge counters exactly the way they merge findings.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical metric names. The search layers register these against the
// Default registry; the progress reporter and the docs refer to them by the
// same names.
const (
	// Search-engine counters (checker / symexec).
	MStates        = "symplfied_states_total"
	MFindings      = "symplfied_findings_total"
	MInjections    = "symplfied_injections_total"
	MInjTimeouts   = "symplfied_injection_timeouts_total"
	MInjPanics     = "symplfied_injection_panics_total"
	MForks         = "symplfied_forks_total" // label kind: cmp|divisor|load|store|control|detector
	MSolverPrunes  = "symplfied_solver_prunes_total"
	MDedupHits     = "symplfied_dedup_hits_total"
	MWatchdogTrunc = "symplfied_watchdog_truncations_total"
	MFanoutTrunc   = "symplfied_fanout_truncations_total"
	MFrontier      = "symplfied_frontier_states"     // gauge: live frontier width (summed over workers)
	MFrontierMax   = "symplfied_frontier_max_states" // gauge: high-water frontier width

	// Static analysis (internal/analysis) and liveness-based pruning.
	MPrunedInjections = "symplfied_pruned_injections_total" // explorations elided by a liveness proof
	MLintDiags        = "symplfied_lint_diagnostics_total"  // label severity: error|warning

	// Compositional fault summaries (internal/summary) and summary-based
	// injection elision (internal/checker).
	MSummariesComputed    = "symplfied_summaries_computed_total"    // function summaries (re)computed
	MSummaryCacheHits     = "symplfied_summary_cache_hits_total"    // summaries served from the cache
	MSummariesComposed    = "symplfied_summaries_composed_total"    // call-site compositions applied
	MSummariesInvalidated = "symplfied_summaries_invalidated_total" // evicted, corrupt or dropped entries
	MSummarizedInjections = "symplfied_summarized_injections_total" // explorations elided by a summary proof

	// Post-dominator state merging and incremental constraint solving
	// (internal/checker merged explorer, internal/symbolic intern table).
	MMergedInjections  = "symplfied_merged_injections_total"  // injections explored by the merged explorer
	MMergedStates      = "symplfied_merged_states_total"      // state observations elided by shared stepping
	MCyclesAccelerated = "symplfied_cycles_accelerated_total" // deterministic cycles fast-forwarded to the watchdog
	MStepsElided       = "symplfied_steps_elided_total"       // steps skipped by cycle acceleration
	MInternHits        = "symplfied_intern_hits_total"        // gauge: process-wide constraint-set intern hits
	MInternMisses      = "symplfied_intern_misses_total"      // gauge: process-wide constraint-set intern misses

	// Cluster / campaign harness.
	MTasksTotal  = "symplfied_tasks_total" // gauge: campaign decomposition width
	MTasksDone   = "symplfied_tasks_done"  // gauge: tasks (or injections) settled so far
	MTaskSeconds = "symplfied_task_seconds"
	MWorkers     = "symplfied_pool_workers"      // gauge: worker pool size
	MBusyWorkers = "symplfied_pool_busy_workers" // gauge: workers currently sweeping

	// Distributed coordinator (mirrors dist.Counters).
	MDistTasksServed     = "symplfied_dist_tasks_served_total"
	MDistTasksCompleted  = "symplfied_dist_tasks_completed_total"
	MDistTasksReassigned = "symplfied_dist_tasks_reassigned_total"
	MDistHeartbeats      = "symplfied_dist_heartbeats_total"
	MDistReportsPooled   = "symplfied_dist_reports_pooled_total"
	MDistDuplicates      = "symplfied_dist_duplicate_completions_total"
	MDistJournalErrors   = "symplfied_dist_journal_errors_total"
	MDistWorkersLive     = "symplfied_dist_workers_live" // gauge

	// Multi-tenant campaign service (dist.Registry / dist.Service).
	MDistCampaignsOpen = "symplfied_dist_campaigns_open"       // gauge: campaigns accepting claims
	MDistCampaignsDone = "symplfied_dist_campaigns_done_total" // campaigns that settled every task
	MDistCacheHits     = "symplfied_dist_result_cache_hits_total"
	MDistCacheMisses   = "symplfied_dist_result_cache_misses_total"
	MDistQuotaDenials  = "symplfied_dist_quota_denials_total" // label tenant: claims/creates refused at quota
	MDistTenantLeased  = "symplfied_dist_tenant_leased"       // gauge, label tenant: tasks leased fleet-wide
	MDistEvents        = "symplfied_dist_events_total"        // per-campaign events appended (task settles, done, cancel)

	// Concrete↔symbolic cross-validation (internal/crossval).
	MXvalTrials     = "symplfied_crossval_trials_total"        // concrete injections executed
	MXvalKills      = "symplfied_crossval_timeout_kills_total" // trials killed at the wall-clock deadline (classified Hang)
	MXvalRetries    = "symplfied_crossval_retries_total"       // transient-failure re-runs (concrete and symbolic)
	MXvalPoints     = "symplfied_crossval_points_total"        // injection points cross-validated
	MXvalMismatches = "symplfied_crossval_mismatches_total"    // label class: symbolic-miss|concrete-miss|class-drift

	// Distributed worker client.
	MWorkerClaimed      = "symplfied_worker_tasks_claimed_total"
	MWorkerCompleted    = "symplfied_worker_tasks_completed_total"
	MWorkerDuplicates   = "symplfied_worker_tasks_duplicate_total"
	MWorkerAbandoned    = "symplfied_worker_tasks_abandoned_total"
	MWorkerHeartbeats   = "symplfied_worker_heartbeats_total"
	MWorkerHBFailures   = "symplfied_worker_heartbeat_failures_total"
	MWorkerLeasesLost   = "symplfied_worker_leases_lost_total"
	MWorkerPostBytes    = "symplfied_worker_post_bytes_total"
	MWorkerUploadSecond = "symplfied_worker_upload_seconds"
)

// Label is one metric dimension (e.g. kind=cmp on MForks).
type Label struct{ Key, Value string }

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates metric types in snapshots.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String names the kind in the Prometheus TYPE line.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n exceeds the current value (high-water
// marks like MFrontierMax).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default histogram bucket upper bounds, in seconds
// (Prometheus' client conventions: 5ms up to 10s, exponential-ish).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram with atomic cells. Observations
// above the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// metric is one registered instrument.
type metric struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry or the process-wide Default. All methods are safe for
// concurrent use; instrument handles returned once stay valid forever, so
// hot paths should look up their instruments once and hold the pointer.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry the search layers register against.
func Default() *Registry { return defaultRegistry }

// key renders the identity of a metric: name plus sorted labels.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the metric registered under (name, labels), creating it
// with mk when absent. Re-registering an existing name with a different kind
// returns the existing instrument's slot untouched (callers must not reuse a
// name across kinds; the docs test pins the canonical names).
func (r *Registry) lookup(name string, labels []Label, kind Kind, mk func(*metric)) *metric {
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[k]; ok {
		return m
	}
	m := &metric{name: name, labels: append([]Label(nil), labels...), kind: kind}
	sort.Slice(m.labels, func(i, j int) bool { return m.labels[i].Key < m.labels[j].Key })
	mk(m)
	r.metrics[k] = m
	return m
}

// Counter returns the counter registered under name (+labels), creating it
// on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	m := r.lookup(name, labels, KindCounter, func(m *metric) { m.c = &Counter{} })
	if m.c == nil {
		return &Counter{} // kind clash: hand back a detached instrument
	}
	return m.c
}

// Gauge returns the gauge registered under name (+labels), creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	m := r.lookup(name, labels, KindGauge, func(m *metric) { m.g = &Gauge{} })
	if m.g == nil {
		return &Gauge{}
	}
	return m.g
}

// Histogram returns the histogram registered under name (+labels), creating
// it with the given bucket bounds (nil: DefBuckets) on first use. Bounds
// must be sorted ascending.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	m := r.lookup(name, labels, KindHistogram, func(m *metric) {
		if buckets == nil {
			buckets = DefBuckets
		}
		h := &Histogram{bounds: append([]float64(nil), buckets...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		m.h = h
	})
	if m.h == nil {
		h := &Histogram{bounds: append([]float64(nil), DefBuckets...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		return h
	}
	return m.h
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// Le is the bucket's inclusive upper bound; +Inf for the last.
	Le float64
	// Count is the cumulative count of observations <= Le.
	Count int64
}

// Point is one metric reading in a snapshot.
type Point struct {
	Name   string
	Labels []Label `json:",omitempty"`
	Kind   Kind
	// Value carries counter and gauge readings.
	Value int64 `json:",omitempty"`
	// Count, Sum and Buckets carry histogram readings.
	Count   int64         `json:",omitempty"`
	Sum     float64       `json:",omitempty"`
	Buckets []BucketCount `json:",omitempty"`
}

// ID renders the point's identity (name plus sorted labels), e.g.
// symplfied_forks_total{kind=cmp}.
func (p Point) ID() string { return key(p.Name, p.Labels) }

// Snapshot is a consistent-enough, deterministically ordered reading of a
// registry: points are sorted by ID, so equal registry contents always
// render the same bytes (the snapshot-determinism contract the tests pin).
// Individual readings are atomic; the set is not a transaction.
type Snapshot []Point

// Snapshot reads every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()

	snap := make(Snapshot, 0, len(ms))
	for _, m := range ms {
		p := Point{Name: m.name, Labels: m.labels, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			p.Value = m.c.Value()
		case KindGauge:
			p.Value = m.g.Value()
		case KindHistogram:
			p.Count = m.h.Count()
			p.Sum = m.h.Sum()
			cum := int64(0)
			for i := range m.h.counts {
				cum += m.h.counts[i].Load()
				le := math.Inf(1)
				if i < len(m.h.bounds) {
					le = m.h.bounds[i]
				}
				p.Buckets = append(p.Buckets, BucketCount{Le: le, Count: cum})
			}
		}
		snap = append(snap, p)
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].ID() < snap[j].ID() })
	return snap
}

// Get returns the point with the given name and labels, if present.
func (s Snapshot) Get(name string, labels ...Label) (Point, bool) {
	id := key(name, labels)
	for _, p := range s {
		if p.ID() == id {
			return p, true
		}
	}
	return Point{}, false
}

// ExpvarMap flattens the snapshot into the map served under /debug/vars:
// counters and gauges become {"id": value}; a histogram becomes
// {"id": {"count": n, "sum": s, "le": {"0.005": c, ...}}}.
func (s Snapshot) ExpvarMap() map[string]any {
	out := make(map[string]any, len(s))
	for _, p := range s {
		switch p.Kind {
		case KindHistogram:
			le := make(map[string]int64, len(p.Buckets))
			for _, b := range p.Buckets {
				le[formatLe(b.Le)] = b.Count
			}
			out[p.ID()] = map[string]any{"count": p.Count, "sum": p.Sum, "le": le}
		default:
			out[p.ID()] = p.Value
		}
	}
	return out
}

// formatLe renders a bucket bound the way Prometheus does ("+Inf" for the
// overflow bucket).
func formatLe(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", le), "0"), ".")
}

// sanitizeName maps an arbitrary string onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double-quote and newline.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabels renders a label set ({k="v",...}), with extra appended last.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, sanitizeName(l.Key), escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Families sharing a name emit one TYPE line.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, p := range s {
		name := sanitizeName(p.Name)
		if name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, p.Kind); err != nil {
				return err
			}
			lastFamily = name
		}
		switch p.Kind {
		case KindHistogram:
			for _, b := range p.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					name, promLabels(p.Labels, L("le", formatLe(b.Le))), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
				name, promLabels(p.Labels), p.Sum,
				name, promLabels(p.Labels), p.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(p.Labels), p.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
