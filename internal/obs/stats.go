package obs

// ExecStats is the deterministic per-exploration tally that travels inside
// reports: how the BFS spent its budget, in the same vocabulary as the
// paper's evaluation tables (forks created, forks the affine solver pruned,
// frontier growth). The checker attaches one to each injection's search
// (shared by every forked State via a pointer), folds it into
// checker.Report, and the cluster/dist layers merge it exactly the way they
// merge findings — so a resumed or distributed campaign reproduces the
// single-process counters byte for byte.
//
// Everything here is derived from the search's own deterministic order;
// wall-clock readings never appear (they live only in the live Registry).
// All counting methods are nil-safe so instrumented code paths need no
// guards when no stats are being collected.
type ExecStats struct {
	// ForksCmp counts two-way forks at symbolic comparisons (slt/beq/bne
	// and friends) where both branches were satisfiable.
	ForksCmp int64 `json:",omitempty"`
	// ForksDivisor counts forks enumerating feasible symbolic divisors.
	ForksDivisor int64 `json:",omitempty"`
	// ForksLoad counts forks enumerating erroneous load addresses.
	ForksLoad int64 `json:",omitempty"`
	// ForksStore counts forks enumerating erroneous store addresses.
	ForksStore int64 `json:",omitempty"`
	// ForksControl counts forks enumerating corrupted control-flow targets.
	ForksControl int64 `json:",omitempty"`
	// ForksDetector counts forks introduced by detector CHECK comparisons.
	ForksDetector int64 `json:",omitempty"`
	// SolverPrunes counts candidate successors the affine constraint store
	// proved infeasible (the paper's "pruned by the solver" column).
	SolverPrunes int64 `json:",omitempty"`
	// DedupHits counts successors dropped because an identical state was
	// already visited in this injection's search.
	DedupHits int64 `json:",omitempty"`
	// WatchdogTruncations counts states cut off by the watchdog step bound
	// (the paper's bounded-depth `search` limit).
	WatchdogTruncations int64 `json:",omitempty"`
	// FanoutTruncations counts enumeration points clipped by
	// MaxMemTargets/MaxControlTargets.
	FanoutTruncations int64 `json:",omitempty"`
	// MaxFrontier is the high-water BFS frontier width.
	MaxFrontier int64 `json:",omitempty"`
	// MaxDepth is the deepest state (in executed steps) the search reached.
	MaxDepth int64 `json:",omitempty"`
	// StatesMerged counts state observations elided by post-dominator state
	// merging (checker.Spec.MergeStates): each instruction executed once on
	// behalf of n fused worlds elides n-1 observations.
	StatesMerged int64 `json:",omitempty"`
	// CyclesAccelerated counts deterministic event-free cycles the merged
	// explorer fast-forwarded to the watchdog instead of stepping lap by lap.
	CyclesAccelerated int64 `json:",omitempty"`
	// StepsElided counts the instruction steps skipped by cycle acceleration.
	StepsElided int64 `json:",omitempty"`
}

// Fork kinds, used as the `kind` label value on the MForks counter.
const (
	ForkCmp      = "cmp"
	ForkDivisor  = "divisor"
	ForkLoad     = "load"
	ForkStore    = "store"
	ForkControl  = "control"
	ForkDetector = "detector"
)

// CountFork records one fork of the given kind. Nil-safe.
func (s *ExecStats) CountFork(kind string) {
	if s == nil {
		return
	}
	switch kind {
	case ForkCmp:
		s.ForksCmp++
	case ForkDivisor:
		s.ForksDivisor++
	case ForkLoad:
		s.ForksLoad++
	case ForkStore:
		s.ForksStore++
	case ForkControl:
		s.ForksControl++
	case ForkDetector:
		s.ForksDetector++
	}
}

// CountPrune records one solver-infeasible candidate. Nil-safe.
func (s *ExecStats) CountPrune() {
	if s != nil {
		s.SolverPrunes++
	}
}

// CountDedup records one visited-set hit. Nil-safe.
func (s *ExecStats) CountDedup() {
	if s != nil {
		s.DedupHits++
	}
}

// CountWatchdog records one watchdog truncation. Nil-safe.
func (s *ExecStats) CountWatchdog() {
	if s != nil {
		s.WatchdogTruncations++
	}
}

// CountFanout records one fan-out truncation. Nil-safe.
func (s *ExecStats) CountFanout() {
	if s != nil {
		s.FanoutTruncations++
	}
}

// CountMerged records n state observations elided by shared stepping of a
// fused state. Nil-safe.
func (s *ExecStats) CountMerged(n int64) {
	if s != nil {
		s.StatesMerged += n
	}
}

// CountCycle records one accelerated cycle that skipped elided steps.
// Nil-safe.
func (s *ExecStats) CountCycle(elided int64) {
	if s != nil {
		s.CyclesAccelerated++
		s.StepsElided += elided
	}
}

// ObserveFrontier raises the frontier high-water mark. Nil-safe.
func (s *ExecStats) ObserveFrontier(width int) {
	if s != nil && int64(width) > s.MaxFrontier {
		s.MaxFrontier = int64(width)
	}
}

// ObserveDepth raises the depth high-water mark. Nil-safe.
func (s *ExecStats) ObserveDepth(depth int64) {
	if s != nil && depth > s.MaxDepth {
		s.MaxDepth = depth
	}
}

// Forks sums the per-kind fork counts.
func (s *ExecStats) Forks() int64 {
	if s == nil {
		return 0
	}
	return s.ForksCmp + s.ForksDivisor + s.ForksLoad + s.ForksStore +
		s.ForksControl + s.ForksDetector
}

// Merge folds other into s: counters add, high-water marks take the max.
// Merging is commutative and associative, so journals, task pools and the
// distributed coordinator can fold reports in any grouping and agree.
func (s *ExecStats) Merge(other ExecStats) {
	s.ForksCmp += other.ForksCmp
	s.ForksDivisor += other.ForksDivisor
	s.ForksLoad += other.ForksLoad
	s.ForksStore += other.ForksStore
	s.ForksControl += other.ForksControl
	s.ForksDetector += other.ForksDetector
	s.SolverPrunes += other.SolverPrunes
	s.DedupHits += other.DedupHits
	s.WatchdogTruncations += other.WatchdogTruncations
	s.FanoutTruncations += other.FanoutTruncations
	s.StatesMerged += other.StatesMerged
	s.CyclesAccelerated += other.CyclesAccelerated
	s.StepsElided += other.StepsElided
	if other.MaxFrontier > s.MaxFrontier {
		s.MaxFrontier = other.MaxFrontier
	}
	if other.MaxDepth > s.MaxDepth {
		s.MaxDepth = other.MaxDepth
	}
}

// IsZero reports whether no counter has fired (used to keep JSON compact).
func (s ExecStats) IsZero() bool { return s == ExecStats{} }

// Publish adds the tally to the registry's live counters and raises its
// gauges, so a snapshot scraped mid-campaign reflects completed injections.
func (s ExecStats) Publish(r *Registry) {
	if r == nil || s.IsZero() {
		return
	}
	for _, kv := range []struct {
		kind string
		n    int64
	}{
		{ForkCmp, s.ForksCmp}, {ForkDivisor, s.ForksDivisor},
		{ForkLoad, s.ForksLoad}, {ForkStore, s.ForksStore},
		{ForkControl, s.ForksControl}, {ForkDetector, s.ForksDetector},
	} {
		if kv.n > 0 {
			r.Counter(MForks, L("kind", kv.kind)).Add(kv.n)
		}
	}
	r.Counter(MSolverPrunes).Add(s.SolverPrunes)
	r.Counter(MDedupHits).Add(s.DedupHits)
	r.Counter(MWatchdogTrunc).Add(s.WatchdogTruncations)
	r.Counter(MFanoutTrunc).Add(s.FanoutTruncations)
	if s.StatesMerged > 0 {
		r.Counter(MMergedStates).Add(s.StatesMerged)
	}
	if s.CyclesAccelerated > 0 {
		r.Counter(MCyclesAccelerated).Add(s.CyclesAccelerated)
		r.Counter(MStepsElided).Add(s.StepsElided)
	}
	r.Gauge(MFrontierMax).SetMax(s.MaxFrontier)
}
