package obs

import (
	"context"
	"fmt"
	"time"
)

// Progress is one periodic reading of a running campaign, assembled from
// the registry's live counters and gauges.
type Progress struct {
	// Elapsed is the time since the reporter started.
	Elapsed time.Duration
	// States is the cumulative state count; StatesPerSec its rate over the
	// last interval.
	States       int64
	StatesPerSec float64
	// Frontier is the current summed frontier width across live searches.
	Frontier int64
	// Findings is the cumulative finding count.
	Findings int64
	// TasksDone / TasksTotal track campaign decomposition progress; zero
	// TasksTotal means the run is not task-structured (single injection
	// sweep) and ETA is unavailable.
	TasksDone, TasksTotal int64
	// ETA extrapolates remaining wall time from the task completion rate;
	// zero when unknown.
	ETA time.Duration
}

// String renders the canonical one-line progress report, e.g.
//
//	progress elapsed=1m30s states=123456 states/s=1371 frontier=42 findings=3 tasks=5/16 eta=4m57s
func (p Progress) String() string {
	s := fmt.Sprintf("progress elapsed=%s states=%d states/s=%.0f frontier=%d findings=%d",
		p.Elapsed.Round(time.Second), p.States, p.StatesPerSec, p.Frontier, p.Findings)
	if p.TasksTotal > 0 {
		s += fmt.Sprintf(" tasks=%d/%d", p.TasksDone, p.TasksTotal)
		if p.ETA > 0 {
			s += fmt.Sprintf(" eta=%s", p.ETA.Round(time.Second))
		}
	}
	return s
}

// Reader reads the progress-relevant instruments from a registry. Keeping
// the instrument handles avoids re-locking the registry map every tick.
type Reader struct {
	start    time.Time
	states   *Counter
	findings *Counter
	frontier *Gauge
	done     *Gauge
	total    *Gauge

	lastStates int64
	lastDone   int64
	lastAt     time.Time
}

// NewReader prepares a progress reader over r.
func NewReader(r *Registry) *Reader {
	now := time.Now()
	return &Reader{
		start:    now,
		lastAt:   now,
		states:   r.Counter(MStates),
		findings: r.Counter(MFindings),
		frontier: r.Gauge(MFrontier),
		done:     r.Gauge(MTasksDone),
		total:    r.Gauge(MTasksTotal),
	}
}

// Read samples the instruments and computes rates since the previous Read.
func (rd *Reader) Read() Progress {
	now := time.Now()
	dt := now.Sub(rd.lastAt).Seconds()
	states := rd.states.Value()
	done := rd.done.Value()
	total := rd.total.Value()

	p := Progress{
		Elapsed:    now.Sub(rd.start),
		States:     states,
		Frontier:   rd.frontier.Value(),
		Findings:   rd.findings.Value(),
		TasksDone:  done,
		TasksTotal: total,
	}
	if dt > 0 {
		p.StatesPerSec = float64(states-rd.lastStates) / dt
	}
	// ETA from the overall task completion rate: remaining / (done/elapsed).
	if total > 0 && done > 0 && done < total {
		perTask := now.Sub(rd.start) / time.Duration(done)
		p.ETA = perTask * time.Duration(total-done)
	}
	rd.lastStates, rd.lastDone, rd.lastAt = states, done, now
	return p
}

// StartProgress logs a one-line progress report every interval until ctx is
// cancelled, via logf (log.Printf-compatible). It returns immediately; the
// reporting runs in a background goroutine. A non-positive interval
// disables reporting.
func StartProgress(ctx context.Context, r *Registry, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 || logf == nil {
		return
	}
	rd := NewReader(r)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				logf("%s", rd.Read())
			}
		}
	}()
}
