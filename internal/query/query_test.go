package query

import (
	"testing"

	"symplfied/internal/apps/factorial"
	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/symexec"
)

func TestGoalAndClassNames(t *testing.T) {
	goals := []Goal{GoalErrOutput, GoalIncorrectOutput, GoalWrongAdvisory, GoalCrash, GoalHang, GoalDetected}
	for _, g := range goals {
		name := g.String()
		back, ok := GoalByName(name)
		if !ok || back != g {
			t.Errorf("goal %v round trip failed (%q)", g, name)
		}
	}
	if _, ok := GoalByName("nope"); ok {
		t.Error("bogus goal accepted")
	}
	for _, c := range []string{"register", "memory", "control", "decode"} {
		if _, ok := ClassByName(c); !ok {
			t.Errorf("class %q not recognized", c)
		}
	}
	if _, ok := ClassByName("quantum"); ok {
		t.Error("bogus class accepted")
	}
}

func TestBuildGoals(t *testing.T) {
	prog := factorial.Plain()
	for _, g := range []Goal{GoalErrOutput, GoalIncorrectOutput, GoalCrash, GoalHang, GoalDetected} {
		spec, err := (Query{Class: faults.ClassRegister, Goal: g}).Build(prog, nil, []int64{5})
		if err != nil {
			t.Errorf("Build(%v): %v", g, err)
			continue
		}
		if spec.Predicate.Match == nil || len(spec.Injections) == 0 {
			t.Errorf("Build(%v): incomplete spec", g)
		}
		if !spec.Exec.AffineTracking {
			t.Errorf("Build(%v): defaults lost affine tracking", g)
		}
	}
}

func TestBuildWrongAdvisoryNeedsSingleOutput(t *testing.T) {
	prog := factorial.Plain()
	// Factorial prints one value: wrong-advisory builds fine.
	if _, err := (Query{Class: faults.ClassRegister, Goal: GoalWrongAdvisory}).Build(prog, nil, []int64{3}); err != nil {
		t.Errorf("wrong-advisory on single-output program: %v", err)
	}
}

func TestBuildReferenceRunFailure(t *testing.T) {
	// With no input the reference run throws (end of input): output goals
	// must refuse to build.
	prog := factorial.Plain()
	if _, err := (Query{Class: faults.ClassRegister, Goal: GoalIncorrectOutput}).Build(prog, nil, nil); err == nil {
		t.Error("failing reference run accepted")
	}
}

func TestBuildUnknownGoal(t *testing.T) {
	if _, err := (Query{Class: faults.ClassRegister, Goal: Goal(99)}).Build(factorial.Plain(), nil, []int64{3}); err == nil {
		t.Error("unknown goal accepted")
	}
}

// TestBuiltSpecRuns: a generated spec is directly runnable and its
// incorrect-output predicate excludes the correct output.
func TestBuiltSpecRuns(t *testing.T) {
	prog := factorial.Plain()
	q := Query{Class: faults.ClassRegister, Goal: GoalIncorrectOutput,
		Exec: symexec.Options{Watchdog: 400, AffineTracking: true}}
	spec, err := q.Build(prog, nil, []int64{4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := checker.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		if f.State.OutputString() == "Factorial = 24" {
			t.Fatal("correct output matched the incorrect-output predicate")
		}
	}
	if len(rep.Findings) == 0 {
		t.Error("no incorrect outcomes found")
	}
}
