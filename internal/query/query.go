// Package query is SymPLFIED's query generator (paper Section 5, "Supporting
// Tools"): it turns predefined hardware-error categories into ready-to-run
// search specifications, so that "programmers can verify the resilience of
// their programs without having to write complex specifications (or any
// specifications)".
package query

import (
	"fmt"

	"symplfied/internal/checker"
	"symplfied/internal/detector"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

// Goal selects what the generated search looks for.
type Goal int

// Goals.
const (
	// GoalErrOutput: executions printing the symbolic err (the paper's
	// example search command, Section 5.4).
	GoalErrOutput Goal = iota + 1
	// GoalIncorrectOutput: normal terminations whose output differs from
	// the fault-free run (computed automatically by a concrete reference
	// execution).
	GoalIncorrectOutput
	// GoalWrongAdvisory: normal terminations printing a single value other
	// than the fault-free run's value (the tcas study's query).
	GoalWrongAdvisory
	// GoalCrash: exceptional terminations.
	GoalCrash
	// GoalHang: watchdog timeouts.
	GoalHang
	// GoalDetected: terminations where a detector fired — used to read off
	// the derived detection conditions (Section 4.2).
	GoalDetected
)

// String names the goal.
func (g Goal) String() string {
	switch g {
	case GoalErrOutput:
		return "err-output"
	case GoalIncorrectOutput:
		return "incorrect-output"
	case GoalWrongAdvisory:
		return "wrong-advisory"
	case GoalCrash:
		return "crash"
	case GoalHang:
		return "hang"
	case GoalDetected:
		return "detected"
	}
	return fmt.Sprintf("goal(%d)", int(g))
}

// GoalByName parses a goal name as used by the CLI.
func GoalByName(s string) (Goal, bool) {
	switch s {
	case "err-output":
		return GoalErrOutput, true
	case "incorrect-output":
		return GoalIncorrectOutput, true
	case "wrong-advisory":
		return GoalWrongAdvisory, true
	case "crash":
		return GoalCrash, true
	case "hang":
		return GoalHang, true
	case "detected":
		return GoalDetected, true
	}
	return 0, false
}

// ClassByName parses an error-class name as used by the CLI.
func ClassByName(s string) (faults.Class, bool) {
	switch s {
	case "register":
		return faults.ClassRegister, true
	case "memory":
		return faults.ClassMemory, true
	case "control":
		return faults.ClassControl, true
	case "decode":
		return faults.ClassDecode, true
	}
	return 0, false
}

// Query describes a predefined verification question.
type Query struct {
	Class faults.Class
	Goal  Goal
	// Exec overrides executor options; zero-value fields take defaults.
	Exec symexec.Options
}

// Build generates the checker spec for the query against a program. For
// output-comparing goals it first runs the program concretely to obtain the
// fault-free reference output.
func (q Query) Build(prog *isa.Program, dets *detector.Table, input []int64) (checker.Spec, error) {
	// A zero Watchdog marks Exec as "unset": defaults apply (including
	// affine tracking) while the fan-out caps are preserved. Callers that
	// set Watchdog explicitly control every field, including disabling
	// affine tracking for ablation.
	exec := q.Exec
	if exec.Watchdog <= 0 {
		base := symexec.DefaultOptions()
		base.MaxControlTargets = exec.MaxControlTargets
		base.MaxMemTargets = exec.MaxMemTargets
		base.SymbolicMem = exec.SymbolicMem
		exec = base
	}

	spec := checker.Spec{
		Program:    prog,
		Detectors:  dets,
		Input:      input,
		Injections: faults.ForClass(q.Class, prog),
		Exec:       exec,
	}

	switch q.Goal {
	case GoalErrOutput:
		spec.Predicate = checker.OutputContainsErr()
	case GoalCrash:
		spec.Predicate = checker.OutcomeIs(symexec.OutcomeCrash)
	case GoalHang:
		spec.Predicate = checker.OutcomeIs(symexec.OutcomeHang)
	case GoalDetected:
		spec.Predicate = checker.OutcomeIs(symexec.OutcomeDetected)
	case GoalIncorrectOutput, GoalWrongAdvisory:
		ref := machine.New(prog, input, machine.Options{
			Watchdog:  exec.Watchdog,
			Detectors: dets,
		})
		res := ref.Run()
		if res.Status != machine.StatusHalted {
			return checker.Spec{}, fmt.Errorf("query: fault-free reference run did not halt (%v)", res.Exception)
		}
		if q.Goal == GoalIncorrectOutput {
			spec.Predicate = checker.IncorrectOutput(machine.RenderOutput(res.Output))
			break
		}
		vals := machine.OutputValues(res.Output)
		if len(vals) != 1 {
			return checker.Spec{}, fmt.Errorf("query: wrong-advisory goal needs a single printed value, reference printed %d", len(vals))
		}
		want, ok := vals[0].Concrete()
		if !ok {
			return checker.Spec{}, fmt.Errorf("query: reference output not concrete")
		}
		spec.Predicate = checker.HaltedOutputOtherThan(want)
	default:
		return checker.Spec{}, fmt.Errorf("query: unknown goal %v", q.Goal)
	}
	return spec, nil
}
