// Package trace records the decision history of a symbolic execution path:
// where the error was injected, which way each nondeterministic fork went,
// which constraints were learned, and how the path terminated. The paper
// (Section 5.4) highlights that showing "an execution trace of how the error
// evaded detection and led to the failure" is what makes findings actionable.
//
// Traces are persistent singly-linked lists so that forking a state shares
// the common prefix at zero cost.
package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies a trace event.
type Kind int

// Event kinds.
const (
	KindInject     Kind = iota + 1 // fault injection performed
	KindFork                       // nondeterministic choice taken
	KindConstraint                 // path constraint learned
	KindDetect                     // detector fired
	KindCheckPass                  // detector evaluated and passed
	KindException                  // exception raised
	KindHalt                       // program halted normally
	KindOutput                     // value appended to the output stream
	KindControl                    // control transferred through an erroneous target
	KindNote                       // free-form annotation
)

// MarshalText renders the kind by name so serialized traces stay readable
// and stable across reorderings of the Kind constants.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name; bare integers in the defined range are
// accepted for compatibility with records written before kinds were named on
// the wire. Out-of-range integers (a corrupt or hand-edited record) are
// rejected rather than decoded into a kind String() cannot name.
func (k *Kind) UnmarshalText(text []byte) error {
	s := string(text)
	for cand := KindInject; cand <= KindNote; cand++ {
		if cand.String() == s {
			*k = cand
			return nil
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < int(KindInject) || n > int(KindNote) {
		return fmt.Errorf("trace: unknown event kind %q", s)
	}
	*k = Kind(n)
	return nil
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInject:
		return "inject"
	case KindFork:
		return "fork"
	case KindConstraint:
		return "constraint"
	case KindDetect:
		return "detect"
	case KindCheckPass:
		return "check-pass"
	case KindException:
		return "exception"
	case KindHalt:
		return "halt"
	case KindOutput:
		return "output"
	case KindControl:
		return "control"
	case KindNote:
		return "note"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded decision.
type Event struct {
	Kind Kind
	Step int    // dynamic instruction count when the event occurred
	PC   int    // program counter at the event
	Text string // human-readable description
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("[step %d @%d] %s: %s", e.Step, e.PC, e.Kind, e.Text)
}

// Node is an immutable trace cell. A nil *Node is the empty trace.
type Node struct {
	parent *Node
	ev     Event
	depth  int
}

// Append extends the trace with ev, returning the new head. The receiver is
// unmodified, so sibling forks share their prefix.
func (n *Node) Append(ev Event) *Node {
	d := 1
	if n != nil {
		d = n.depth + 1
	}
	return &Node{parent: n, ev: ev, depth: d}
}

// Len returns the number of events.
func (n *Node) Len() int {
	if n == nil {
		return 0
	}
	return n.depth
}

// Events returns the events oldest-first.
func (n *Node) Events() []Event {
	if n == nil {
		return nil
	}
	out := make([]Event, n.depth)
	for cur := n; cur != nil; cur = cur.parent {
		out[cur.depth-1] = cur.ev
	}
	return out
}

// Render formats the whole trace, one event per line, oldest first.
func (n *Node) Render() string {
	evs := n.Events()
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}
