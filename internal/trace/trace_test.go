package trace

import (
	"strings"
	"testing"
)

func TestEmptyTrace(t *testing.T) {
	var n *Node
	if n.Len() != 0 {
		t.Errorf("empty Len = %d", n.Len())
	}
	if n.Events() != nil {
		t.Errorf("empty Events = %v", n.Events())
	}
	if n.Render() != "" {
		t.Errorf("empty Render = %q", n.Render())
	}
}

func TestAppendAndOrder(t *testing.T) {
	var n *Node
	n = n.Append(Event{Kind: KindInject, Step: 1, Text: "a"})
	n = n.Append(Event{Kind: KindFork, Step: 2, Text: "b"})
	n = n.Append(Event{Kind: KindHalt, Step: 3, Text: "c"})
	if n.Len() != 3 {
		t.Fatalf("Len = %d", n.Len())
	}
	evs := n.Events()
	if evs[0].Text != "a" || evs[1].Text != "b" || evs[2].Text != "c" {
		t.Fatalf("order wrong: %v", evs)
	}
}

func TestForkSharing(t *testing.T) {
	var base *Node
	base = base.Append(Event{Kind: KindInject, Text: "shared"})
	left := base.Append(Event{Kind: KindFork, Text: "left"})
	right := base.Append(Event{Kind: KindFork, Text: "right"})

	if base.Len() != 1 {
		t.Error("base mutated by fork appends")
	}
	le, re := left.Events(), right.Events()
	if le[0].Text != "shared" || re[0].Text != "shared" {
		t.Error("shared prefix lost")
	}
	if le[1].Text != "left" || re[1].Text != "right" {
		t.Error("branch events wrong")
	}
}

func TestRender(t *testing.T) {
	var n *Node
	n = n.Append(Event{Kind: KindConstraint, Step: 4, PC: 7, Text: "x > 1"})
	out := n.Render()
	for _, want := range []string{"step 4", "@7", "constraint", "x > 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render %q lacks %q", out, want)
		}
	}
}

// TestKindTextCompat: records written before kinds were named on the wire
// carried bare integers, which must still decode — but only inside the
// defined range. A corrupt or hand-edited record must be rejected, not
// decoded into a kind String() cannot name.
func TestKindTextCompat(t *testing.T) {
	var k Kind
	if err := k.UnmarshalText([]byte("2")); err != nil || k != KindFork {
		t.Errorf("legacy in-range integer: got %v, %v", k, err)
	}
	if err := k.UnmarshalText([]byte("halt")); err != nil || k != KindHalt {
		t.Errorf("named kind: got %v, %v", k, err)
	}
	for _, bad := range []string{"0", "-1", "99", "gibberish"} {
		if err := k.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("invalid kind %q accepted", bad)
		}
	}
}

func TestKindNames(t *testing.T) {
	kinds := []Kind{
		KindInject, KindFork, KindConstraint, KindDetect, KindCheckPass,
		KindException, KindHalt, KindOutput, KindControl, KindNote,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if strings.HasPrefix(name, "kind(") {
			t.Errorf("kind %d lacks a name", int(k))
		}
		if seen[name] {
			t.Errorf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
}
