package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"symplfied/internal/obs"
)

// longPollWait bounds how long GET /v1/campaigns/{id}/events?after=N holds
// the request open waiting for a new event before answering with an empty
// batch. Short enough to beat intermediary idle timeouts, long enough that
// a quiet campaign costs a few requests a minute.
const longPollWait = 25 * time.Second

// Service is the versioned multi-campaign HTTP API over a Registry: the
// /v1/campaigns lifecycle and campaign-scoped task routes, the fleet-level
// /v1/claim dispatcher, the fleet-wide summary cache, and the legacy
// root-level single-campaign paths as thin aliases onto the registry's
// default campaign (so pre-v1 workers keep working unmodified). See the
// endpoint table in protocol.go.
type Service struct {
	reg *Registry
}

// NewService wraps a registry in its HTTP API.
func NewService(reg *Registry) *Service { return &Service{reg: reg} }

// Registry exposes the underlying registry (CLI status loops, tests).
func (s *Service) Registry() *Registry { return s.reg }

// campaign resolves {id} from a v1 route, answering 404 on a miss.
func (s *Service) campaign(w http.ResponseWriter, r *http.Request) (*Coordinator, bool) {
	id := r.PathValue("id")
	c, ok := s.reg.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no such campaign %q", id), http.StatusNotFound)
		return nil, false
	}
	return c, true
}

// defaultCampaign resolves the legacy root-level routes' target, answering
// 404 when the service has no campaigns yet.
func (s *Service) defaultCampaign(w http.ResponseWriter) (*Coordinator, bool) {
	c, ok := s.reg.Default()
	if !ok {
		http.Error(w, "no campaigns registered", http.StatusNotFound)
		return nil, false
	}
	return c, true
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateCampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	c, err := s.reg.Create(req.Doc, req.Tenant, req.Priority)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrQuota) {
			status = http.StatusTooManyRequests
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, c.Info())
}

func (s *Service) handleClaim(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp := c.Claim(req.Worker)
	if resp.Done {
		// The claim may have settled the campaign's tail from the result
		// cache; make the lifecycle transition durable.
		_ = s.reg.SyncState(c.ID())
	}
	writeJSON(w, resp)
}

func (s *Service) handleHeartbeat(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.Heartbeat(req.Worker, req.Task); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleComplete(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := c.Complete(req.Worker, req.Task, req.Result)
	if err != nil && !resp.Accepted {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if resp.Done {
		_ = s.reg.SyncState(c.ID())
	}
	writeJSON(w, resp)
}

// handleEvents streams a campaign's result events. Two modes:
//
//	?after=N       long-poll: respond with events Seq > N, holding the
//	               request up to longPollWait when none exist yet (an empty
//	               array means "ask again with the same cursor").
//	?sse=1         server-sent events: one "data:" frame per event from
//	               ?after=N (default 0) onward; the stream ends after a
//	               terminal "done" or "cancelled" event, or with the client.
func (s *Service) handleEvents(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad after cursor: "+err.Error(), http.StatusBadRequest)
			return
		}
		after = n
	}
	if r.URL.Query().Get("sse") != "" {
		s.streamSSE(c, w, r, after)
		return
	}
	events, ch := c.EventsSince(after)
	if len(events) > 0 {
		writeJSON(w, events)
		return
	}
	timer := time.NewTimer(longPollWait)
	defer timer.Stop()
	select {
	case <-ch:
	case <-timer.C:
	case <-r.Context().Done():
		return
	}
	events, _ = c.EventsSince(after)
	writeJSON(w, events)
}

func terminalEvent(ev Event) bool { return ev.Type == "done" || ev.Type == "cancelled" }

func (s *Service) streamSSE(c *Coordinator, w http.ResponseWriter, r *http.Request, after int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		events, ch := c.EventsSince(after)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			after = ev.Seq
			fl.Flush()
			if terminalEvent(ev) {
				return
			}
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// Handler builds the service mux: the v1 API, the fleet-wide endpoints, the
// legacy aliases, and the obs operational endpoints (/metrics, /debug/vars,
// /debug/pprof/).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	// Campaign lifecycle.
	mux.HandleFunc("POST "+PathV1Campaigns, s.handleCreate)
	mux.HandleFunc("GET "+PathV1Campaigns, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.reg.List())
	})
	mux.HandleFunc("POST "+PathV1Campaigns+"/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := s.reg.Cancel(r.PathValue("id")); err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrNoCampaign) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	// Campaign-scoped task protocol.
	scoped := func(method, op string, h func(*Coordinator, http.ResponseWriter, *http.Request)) {
		mux.HandleFunc(method+" "+PathV1Campaigns+"/{id}/"+op, func(w http.ResponseWriter, r *http.Request) {
			c, ok := s.campaign(w, r)
			if !ok {
				return
			}
			h(c, w, r)
		})
	}
	scoped("GET", "spec", func(c *Coordinator, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.SpecResponse())
	})
	scoped("POST", "claim", s.handleClaim)
	scoped("POST", "heartbeat", s.handleHeartbeat)
	scoped("POST", "complete", s.handleComplete)
	scoped("GET", "status", func(c *Coordinator, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	scoped("GET", "report", func(c *Coordinator, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Report())
	})
	scoped("GET", "events", s.handleEvents)

	// Fleet-level claim: the service picks the campaign.
	mux.HandleFunc("POST "+PathV1Claim, func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.reg.FleetClaim(req.Worker))
	})

	// Fleet-wide summary cache: content-addressed keys need no campaign.
	mux.HandleFunc(PathSummaryGet, func(w http.ResponseWriter, r *http.Request) {
		var req SummaryGetRequest
		if !readJSON(w, r, &req) {
			return
		}
		raw, ok := s.reg.SummaryCache().GetRaw(req.Key)
		if !ok {
			writeJSON(w, SummaryGetResponse{})
			return
		}
		writeJSON(w, SummaryGetResponse{Found: true, Value: raw})
	})
	mux.HandleFunc(PathSummaryPut, func(w http.ResponseWriter, r *http.Request) {
		var req SummaryPutRequest
		if !readJSON(w, r, &req) {
			return
		}
		if !s.reg.SummaryCache().PutRaw(req.Key, req.Value) {
			http.Error(w, "value does not decode as a function summary", http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	// Legacy root-level aliases onto the default campaign: a pre-v1 worker
	// pointed at the service drives whichever campaign Default resolves.
	legacy := func(path string, h func(*Coordinator, http.ResponseWriter, *http.Request)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			c, ok := s.defaultCampaign(w)
			if !ok {
				return
			}
			h(c, w, r)
		})
	}
	legacy(PathSpec, func(c *Coordinator, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.SpecResponse())
	})
	legacy(PathClaim, s.handleClaim)
	legacy(PathHeartbeat, s.handleHeartbeat)
	legacy(PathComplete, s.handleComplete)
	legacy(PathStatus, func(c *Coordinator, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	legacy(PathReport, func(c *Coordinator, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Report())
	})

	obs.RegisterOps(mux)
	return mux
}
