package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the typed HTTP client for the coordinator/service API. One
// client serves both surfaces: methods taking a campaign ID hit the
// campaign-scoped /v1 routes, and an empty ID selects the legacy root-level
// paths (a pre-v1 standalone coordinator, or the service's default-campaign
// aliases).
//
// The retry and deadline policy lives here, encoded once for every consumer
// (cmd/symworker, the e2e tests, the symplfied -campaigns subcommand):
//
//   - Small control calls (spec, claim, status, ...) run under Control per
//     attempt and are retried with doubling backoff on transport errors and
//     5xx replies — failures that say nothing about protocol state.
//   - 4xx replies are never retried: the server spoke and meant it.
//   - Complete runs under the Upload deadline (whole task results can be
//     large) and is retried like a control call — the coordinator dedups
//     re-posts, so a retry after a lost reply is answered Duplicate, never
//     double-pooled.
//   - Heartbeat is single-attempt: its failure handling (409 is decisive
//     lease loss, transient failures are counted by the caller) is worker
//     policy, not transport policy. A 409 is reported as an error wrapping
//     ErrLeaseLost.
//   - Create is single-attempt on transport errors too: creating a campaign
//     is not idempotent, and a retry after a lost reply could register the
//     document twice.
type Client struct {
	// Base is the coordinator/service base URL (e.g. http://host:8080).
	Base string
	// HTTP is the underlying client. Nil uses a client without a global
	// timeout — per-call deadlines below bound every request instead.
	HTTP *http.Client
	// Control bounds each small control request attempt (0: 30s).
	Control time.Duration
	// Upload bounds each completion post attempt (0: 10min).
	Upload time.Duration
	// Retries is the attempt count for retryable calls (0: 4).
	Retries int
	// Backoff is the sleep before the second attempt, doubling after each
	// failure (0: 200ms).
	Backoff time.Duration
}

// NewClient returns a client for base with the default policy.
func NewClient(base string, hc *http.Client) *Client {
	return &Client{Base: base, HTTP: hc}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

func (c *Client) control() time.Duration {
	if c.Control > 0 {
		return c.Control
	}
	return controlTimeout
}

func (c *Client) upload() time.Duration {
	if c.Upload > 0 {
		return c.Upload
	}
	return completeTimeout
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

func (c *Client) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 200 * time.Millisecond
}

// path renders a campaign-scoped endpoint, or its legacy root alias when id
// is empty (the legacy paths are "/" + the v1 operation name).
func (c *Client) path(id, op string) string {
	if id == "" {
		return c.Base + "/" + op
	}
	return c.Base + V1CampaignPath(id, op)
}

// retryable reports whether an attempt error warrants another attempt: a
// transport failure, or a 5xx reply from a proxy or an overloaded server.
func retryable(err error) bool {
	var he *httpError
	if errors.As(err, &he) {
		return he.status >= 500
	}
	return true // transport error: the server may not have heard us at all
}

// do runs one JSON request with the retry policy. method GET sends no body.
func (c *Client) do(ctx context.Context, method, url string, body, out any, timeout time.Duration, attempts int) error {
	var lastErr error
	backoff := c.backoff()
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if !sleepCtx(ctx, backoff) {
				break
			}
			backoff *= 2
		}
		err := c.once(ctx, method, url, body, out, timeout)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil || !retryable(err) {
			break
		}
	}
	if lastErr == nil && ctx.Err() != nil {
		lastErr = ctx.Err()
	}
	return lastErr
}

// once is a single request attempt under its per-call deadline.
func (c *Client) once(ctx context.Context, method, url string, body, out any, timeout time.Duration) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		wPostBytes.Add(int64(len(data)))
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// Campaigns lists every campaign on the service. A legacy standalone
// coordinator answers 404 — callers probing for service mode rely on that.
func (c *Client) Campaigns(ctx context.Context) (CampaignList, error) {
	var out CampaignList
	err := c.do(ctx, http.MethodGet, c.Base+PathV1Campaigns, nil, &out, c.control(), c.retries())
	return out, err
}

// Create registers a new campaign. Single-attempt: not idempotent.
func (c *Client) Create(ctx context.Context, req CreateCampaignRequest) (CampaignInfo, error) {
	var out CampaignInfo
	err := c.do(ctx, http.MethodPost, c.Base+PathV1Campaigns, req, &out, c.control(), 1)
	return out, err
}

// CancelCampaign cancels campaign id (idempotent).
func (c *Client) CancelCampaign(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, c.Base+V1CampaignPath(id, "cancel"), struct{}{}, nil, c.control(), c.retries())
}

// Spec fetches a campaign document ("" = legacy root).
func (c *Client) Spec(ctx context.Context, id string) (SpecResponse, error) {
	var out SpecResponse
	err := c.do(ctx, http.MethodGet, c.path(id, "spec"), nil, &out, c.control(), c.retries())
	return out, err
}

// Claim asks campaign id ("" = legacy root) for a task.
func (c *Client) Claim(ctx context.Context, id, worker string) (ClaimResponse, error) {
	var out ClaimResponse
	err := c.do(ctx, http.MethodPost, c.path(id, "claim"), ClaimRequest{Worker: worker}, &out, c.control(), c.retries())
	return out, err
}

// FleetClaim asks the service to pick a campaign and lease a task from it.
func (c *Client) FleetClaim(ctx context.Context, worker string) (FleetClaimResponse, error) {
	var out FleetClaimResponse
	err := c.do(ctx, http.MethodPost, c.Base+PathV1Claim, ClaimRequest{Worker: worker}, &out, c.control(), c.retries())
	return out, err
}

// Heartbeat renews worker's lease on task within campaign id ("" = legacy
// root). Single-attempt; a 409 reply wraps ErrLeaseLost.
func (c *Client) Heartbeat(ctx context.Context, id, worker string, task int) error {
	err := c.do(ctx, http.MethodPost, c.path(id, "heartbeat"),
		HeartbeatRequest{Worker: worker, Task: task}, nil, c.control(), 1)
	if leaseLost(err) {
		return fmt.Errorf("%w: %v", ErrLeaseLost, err)
	}
	return err
}

// Complete posts a finished task result to campaign id ("" = legacy root).
func (c *Client) Complete(ctx context.Context, id string, req CompleteRequest) (CompleteResponse, error) {
	var out CompleteResponse
	err := c.do(ctx, http.MethodPost, c.path(id, "complete"), req, &out, c.upload(), c.retries())
	return out, err
}

// Status fetches campaign status ("" = legacy root).
func (c *Client) Status(ctx context.Context, id string) (StatusResponse, error) {
	var out StatusResponse
	err := c.do(ctx, http.MethodGet, c.path(id, "status"), nil, &out, c.control(), c.retries())
	return out, err
}

// Report fetches the merged campaign report ("" = legacy root).
func (c *Client) Report(ctx context.Context, id string) (MergedReport, error) {
	var out MergedReport
	err := c.do(ctx, http.MethodGet, c.path(id, "report"), nil, &out, c.control(), c.retries())
	return out, err
}

// Events long-polls campaign id's event stream for events with Seq > after.
// An empty slice means the poll timed out quietly: ask again with the same
// cursor. The per-attempt deadline leaves headroom over the server's hold.
func (c *Client) Events(ctx context.Context, id string, after int) ([]Event, error) {
	var out []Event
	url := c.path(id, "events") + "?after=" + strconv.Itoa(after)
	d := longPollWait + c.control()
	err := c.do(ctx, http.MethodGet, url, nil, &out, d, c.retries())
	return out, err
}

// SummaryGet looks up a function summary in the fleet-wide cache.
func (c *Client) SummaryGet(ctx context.Context, key string) (SummaryGetResponse, error) {
	var out SummaryGetResponse
	err := c.do(ctx, http.MethodPost, c.Base+PathSummaryGet, SummaryGetRequest{Key: key}, &out, c.control(), 1)
	return out, err
}

// SummaryPut publishes a function summary to the fleet-wide cache.
func (c *Client) SummaryPut(ctx context.Context, key string, value json.RawMessage) error {
	return c.do(ctx, http.MethodPost, c.Base+PathSummaryPut, SummaryPutRequest{Key: key, Value: value}, nil, c.control(), 1)
}
