package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"symplfied/internal/obs"
	"symplfied/internal/summary"
)

var (
	mCampaignsOpen = obs.Default().Gauge(obs.MDistCampaignsOpen)
	mCampaignsDone = obs.Default().Counter(obs.MDistCampaignsDone)
)

// ErrQuota is returned (wrapped) when a tenant is at its campaign quota; the
// HTTP layer maps it to 429 Too Many Requests.
var ErrQuota = errors.New("dist: tenant quota exceeded")

// ErrNoCampaign is returned when a campaign ID resolves to nothing.
var ErrNoCampaign = errors.New("dist: no such campaign")

// Quotas bounds one tenant's share of the service. Zero values mean
// unlimited.
type Quotas struct {
	// MaxOpenCampaigns caps how many campaigns a tenant may have open
	// (queued or running) at once; creates beyond it are refused.
	MaxOpenCampaigns int
	// MaxLeasedTasks caps how many tasks a tenant's campaigns may hold
	// leased fleet-wide at once; the fleet dispatcher skips the tenant's
	// campaigns while at quota.
	MaxLeasedTasks int
}

// RegistryConfig configures a campaign registry.
type RegistryConfig struct {
	// Store is the durable campaign store. Nil uses an in-memory store (the
	// service forgets everything on exit).
	Store Store
	// Lease is the task lease duration for every campaign (0: DefaultLease).
	Lease time.Duration
	// Quotas applies per tenant.
	Quotas Quotas
	// SummaryCache is the fleet-shared function-summary cache served over
	// /summary/get|put; nil installs a default in-memory cache.
	SummaryCache *summary.Cache
	// Cache is the fleet-wide task result cache; nil installs a fresh one.
	// It is shared across every campaign and warmed from the store's
	// journaled results on resume.
	Cache *ResultCache
	// Now is the clock, injectable for tests (nil: time.Now).
	Now func() time.Time
}

// tombstone is a cancelled campaign known only from the store: listed, never
// resumed.
type tombstone struct{ rec CampaignRecord }

// Registry is the multi-tenant campaign service core: it owns every
// campaign's coordinator, mints campaign IDs, dispatches fleet-level claims
// across campaigns by priority, enforces per-tenant quotas, and keeps the
// durable store in sync with campaign lifecycle. Service wraps it in the
// versioned HTTP API.
//
// Lock order: Registry.mu strictly outside any Coordinator.mu — registry
// methods snapshot under their own lock and call into coordinators after
// releasing it (or while holding only r.mu, never both except r→c).
type Registry struct {
	store     Store
	lease     time.Duration
	quotas    Quotas
	summaries *summary.Cache
	cache     *ResultCache
	now       func() time.Time

	mu        sync.Mutex
	campaigns map[string]*Coordinator
	tombs     map[string]tombstone
	recs      map[string]CampaignRecord // last record written to the store
	order     []string                  // creation order (live + tombstones)
	seq       int
	// served counts fleet claims per campaign for round-robin among equal
	// priorities: the least-recently-served open campaign goes first.
	served map[string]int64
	tick   int64
}

// NewRegistry opens the registry over its store, resuming every non-cancelled
// campaign: each is re-lowered from its stored document, its journaled
// results are replayed (and published to the fleet result cache), and its
// result log is re-attached for further appends.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	r := &Registry{
		store:     cfg.Store,
		lease:     cfg.Lease,
		quotas:    cfg.Quotas,
		summaries: cfg.SummaryCache,
		cache:     cfg.Cache,
		now:       cfg.Now,
		campaigns: make(map[string]*Coordinator),
		tombs:     make(map[string]tombstone),
		recs:      make(map[string]CampaignRecord),
		served:    make(map[string]int64),
	}
	if r.store == nil {
		r.store = NewMemStore()
	}
	if r.summaries == nil {
		r.summaries = summary.NewCache(0, nil)
	}
	if r.cache == nil {
		r.cache = NewResultCache()
	}
	recs, err := r.store.Campaigns()
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if rec.Seq > r.seq {
			r.seq = rec.Seq
		}
		r.recs[rec.ID] = rec
		if rec.State == StateCancelled {
			r.tombs[rec.ID] = tombstone{rec: rec}
			r.order = append(r.order, rec.ID)
			continue
		}
		c, err := r.resume(rec)
		if err != nil {
			return nil, fmt.Errorf("dist: resume campaign %s: %w", rec.ID, err)
		}
		r.campaigns[rec.ID] = c
		r.order = append(r.order, rec.ID)
	}
	r.refreshOpenGauge()
	return r, nil
}

// resume rebuilds one stored campaign: lower, replay, re-attach the log.
func (r *Registry) resume(rec CampaignRecord) (*Coordinator, error) {
	c, err := newCoordinator(rec.Doc, coordOptions{
		id:        rec.ID,
		tenant:    rec.Tenant,
		priority:  rec.Priority,
		lease:     r.lease,
		now:       r.now,
		summaries: r.summaries,
		cache:     r.cache,
	})
	if err != nil {
		return nil, err
	}
	if c.fingerprint != rec.Fingerprint {
		return nil, fmt.Errorf("stored document lowers to fingerprint %s, record says %s",
			c.fingerprint, rec.Fingerprint)
	}
	entries, err := r.store.Results(rec.ID)
	if err != nil {
		return nil, err
	}
	c.restore(entries)
	c.persist = r.persistFn(rec.ID)
	return c, nil
}

// persistFn routes one campaign's settled results into the shared store.
func (r *Registry) persistFn(id string) func(key string, payload any) error {
	return func(key string, payload any) error {
		return r.store.AppendResult(id, key, payload)
	}
}

func normTenant(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// Create registers a new campaign for tenant at priority. The document is
// lowered exactly as a standalone coordinator would lower it, the record is
// written to the store before the campaign is published, and the campaign ID
// — a fingerprint prefix plus a creation sequence number — is returned via
// the coordinator. Re-submitting an identical document creates a distinct
// campaign; its tasks settle from the fleet result cache at claim time.
func (r *Registry) Create(doc SpecDoc, tenant string, priority int) (*Coordinator, error) {
	tenant = normTenant(tenant)
	c, err := newCoordinator(doc, coordOptions{
		tenant:    tenant,
		priority:  priority,
		lease:     r.lease,
		now:       r.now,
		summaries: r.summaries,
		cache:     r.cache,
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.quotas.MaxOpenCampaigns > 0 {
		open := 0
		for _, co := range r.campaigns {
			if co.Tenant() == tenant && co.State() == StateOpen {
				open++
			}
		}
		if open >= r.quotas.MaxOpenCampaigns {
			r.mu.Unlock()
			obs.Default().Counter(obs.MDistQuotaDenials, obs.L("tenant", tenant)).Inc()
			return nil, fmt.Errorf("%w: tenant %q has %d open campaigns (max %d)",
				ErrQuota, tenant, open, r.quotas.MaxOpenCampaigns)
		}
	}
	r.seq++
	id := fmt.Sprintf("%s-%d", c.fingerprint[:12], r.seq)
	c.id = id
	rec := CampaignRecord{
		ID:          id,
		Tenant:      tenant,
		Priority:    priority,
		State:       StateOpen,
		Doc:         doc,
		Fingerprint: c.fingerprint,
		Kind:        c.JournalKind(),
		Seq:         r.seq,
	}
	if err := r.store.PutCampaign(rec); err != nil {
		r.seq--
		r.mu.Unlock()
		return nil, err
	}
	c.persist = r.persistFn(id)
	r.campaigns[id] = c
	r.recs[id] = rec
	r.order = append(r.order, id)
	r.refreshOpenGaugeLocked()
	r.mu.Unlock()
	return c, nil
}

// Get resolves a live campaign by ID.
func (r *Registry) Get(id string) (*Coordinator, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.campaigns[id]
	return c, ok
}

// Cancel cancels a live campaign and records the state durably. Cancelling
// an already-cancelled campaign is a no-op; an unknown ID is ErrNoCampaign.
func (r *Registry) Cancel(id string) error {
	r.mu.Lock()
	c, ok := r.campaigns[id]
	r.mu.Unlock()
	if !ok {
		r.mu.Lock()
		_, tomb := r.tombs[id]
		r.mu.Unlock()
		if tomb {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNoCampaign, id)
	}
	c.Cancel()
	return r.SyncState(id)
}

// SyncState writes a campaign's current lifecycle state through to the
// store when it changed. The HTTP layer calls it whenever a completion or a
// cache settle may have finished a campaign.
func (r *Registry) SyncState(id string) error {
	r.mu.Lock()
	c, ok := r.campaigns[id]
	rec, haveRec := r.recs[id]
	r.mu.Unlock()
	if !ok || !haveRec {
		return nil
	}
	state := c.State()
	if rec.State == state {
		return nil
	}
	rec.State = state
	if err := r.store.PutCampaign(rec); err != nil {
		return err
	}
	r.mu.Lock()
	r.recs[id] = rec
	r.refreshOpenGaugeLocked()
	r.mu.Unlock()
	if state == StateDone {
		mCampaignsDone.Inc()
	}
	return nil
}

func (r *Registry) refreshOpenGauge() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshOpenGaugeLocked()
}

func (r *Registry) refreshOpenGaugeLocked() {
	open := int64(0)
	for _, c := range r.campaigns {
		if c.State() == StateOpen {
			open++
		}
	}
	mCampaignsOpen.Set(open)
}

// dispatchOrder snapshots the live campaigns in fleet dispatch order:
// open campaigns by (priority desc, least recently served, creation order),
// then settled and cancelled ones in creation order.
func (r *Registry) dispatchOrder() []*Coordinator {
	r.mu.Lock()
	type ranked struct {
		c      *Coordinator
		seqIdx int
		served int64
	}
	var live []ranked
	for i, id := range r.order {
		if c, ok := r.campaigns[id]; ok {
			live = append(live, ranked{c: c, seqIdx: i, served: r.served[id]})
		}
	}
	r.mu.Unlock()

	states := make(map[*Coordinator]string, len(live))
	prios := make(map[*Coordinator]int, len(live))
	for _, l := range live {
		states[l.c] = l.c.State()
		prios[l.c] = l.c.priority
	}
	sort.SliceStable(live, func(i, j int) bool {
		oi, oj := states[live[i].c] == StateOpen, states[live[j].c] == StateOpen
		if oi != oj {
			return oi
		}
		if !oi {
			return live[i].seqIdx < live[j].seqIdx
		}
		if prios[live[i].c] != prios[live[j].c] {
			return prios[live[i].c] > prios[live[j].c]
		}
		if live[i].served != live[j].served {
			return live[i].served < live[j].served
		}
		return live[i].seqIdx < live[j].seqIdx
	})
	out := make([]*Coordinator, len(live))
	for i, l := range live {
		out[i] = l.c
	}
	return out
}

// FleetClaim leases a task from the highest-priority open campaign whose
// tenant is under its leased-tasks quota, round-robining among equal
// priorities. Done is reported only when the service has campaigns and none
// is open — a fleet may be started before its first submission.
func (r *Registry) FleetClaim(worker string) FleetClaimResponse {
	cands := r.dispatchOrder()

	// Per-tenant leased totals for quota checks, computed once per claim;
	// the per-tenant gauge rides along.
	leased := make(map[string]int)
	for _, c := range cands {
		if c.State() == StateOpen {
			leased[c.Tenant()] += c.LeasedCount()
		}
	}
	for tenant, n := range leased {
		obs.Default().Gauge(obs.MDistTenantLeased, obs.L("tenant", tenant)).Set(int64(n))
	}

	open := 0
	for _, c := range cands {
		if c.State() != StateOpen {
			continue
		}
		open++
		if r.quotas.MaxLeasedTasks > 0 && leased[c.Tenant()] >= r.quotas.MaxLeasedTasks {
			obs.Default().Counter(obs.MDistQuotaDenials, obs.L("tenant", c.Tenant())).Inc()
			continue
		}
		resp := c.Claim(worker)
		if resp.Done {
			// Settled (possibly just now, from the result cache) or
			// cancelled under us: record it and move on.
			open--
			_ = r.SyncState(c.ID())
			continue
		}
		if resp.Task == nil {
			continue // all of this campaign's remaining tasks are in flight
		}
		r.mu.Lock()
		r.tick++
		r.served[c.ID()] = r.tick
		r.mu.Unlock()
		return FleetClaimResponse{
			Campaign:      c.ID(),
			Task:          resp.Task,
			Lease:         resp.Lease,
			OpenCampaigns: open,
		}
	}
	return FleetClaimResponse{
		Done:          len(cands) > 0 && open == 0,
		OpenCampaigns: open,
	}
}

// List snapshots every campaign — live and tombstoned — in dispatch order.
func (r *Registry) List() CampaignList {
	var out CampaignList
	for _, c := range r.dispatchOrder() {
		out.Campaigns = append(out.Campaigns, c.Info())
	}
	r.mu.Lock()
	for _, id := range r.order {
		if t, ok := r.tombs[id]; ok {
			out.Campaigns = append(out.Campaigns, CampaignInfo{
				ID:          t.rec.ID,
				Tenant:      t.rec.Tenant,
				Priority:    t.rec.Priority,
				Fingerprint: t.rec.Fingerprint,
				State:       StateCancelled,
				Crossval:    t.rec.Doc.Crossval,
			})
		}
	}
	r.mu.Unlock()
	return out
}

// Default resolves the campaign the legacy root-level endpoints drive: the
// first open campaign in dispatch order, else the earliest-created live one.
func (r *Registry) Default() (*Coordinator, bool) {
	cands := r.dispatchOrder()
	for _, c := range cands {
		if c.State() == StateOpen {
			return c, true
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range r.order {
		if c, ok := r.campaigns[id]; ok {
			return c, true
		}
	}
	return nil, false
}

// Cache exposes the fleet result cache (tests, status reporting).
func (r *Registry) Cache() *ResultCache { return r.cache }

// SummaryCache exposes the fleet-shared function-summary cache.
func (r *Registry) SummaryCache() *summary.Cache { return r.summaries }

// Drained reports whether the service has campaigns and every one is done or
// cancelled. An empty registry is not drained: it is waiting for work.
func (r *Registry) Drained() bool {
	r.mu.Lock()
	n := len(r.campaigns) + len(r.tombs)
	var live []*Coordinator
	for _, c := range r.campaigns {
		live = append(live, c)
	}
	r.mu.Unlock()
	if n == 0 {
		return false
	}
	for _, c := range live {
		if c.State() == StateOpen {
			return false
		}
	}
	return true
}

// WaitDrained blocks until Drained or ctx ends.
func (r *Registry) WaitDrained(ctx context.Context) error {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		if r.Drained() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Close detaches every campaign and closes the store.
func (r *Registry) Close() error {
	r.mu.Lock()
	for _, c := range r.campaigns {
		c.mu.Lock()
		c.persist = nil
		c.mu.Unlock()
	}
	store := r.store
	r.mu.Unlock()
	return store.Close()
}
