package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"symplfied/internal/cluster"
)

// refReportBytes computes the single-process reference for one campaign
// document: the exact JSON a complete coordinator report must equal.
func refReportBytes(t *testing.T, doc SpecDoc) []byte {
	t.Helper()
	spec, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	tasks := cluster.Split(spec.Injections, doc.Tasks)
	reports := cluster.Run(spec, tasks, cluster.Config{
		Workers:            2,
		TaskStateBudget:    doc.TaskStateBudget,
		MaxFindingsPerTask: doc.MaxFindingsPerTask,
	})
	want, err := json.Marshal(MergedReport{
		Complete: true,
		Tasks:    reports,
		Summary:  cluster.Summarize(reports),
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// fetchReportBytes GETs a campaign report route raw, for byte comparison.
func fetchReportBytes(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSpace(body.Bytes())
}

// TestMultiTenantFleetE2E is the service's acceptance check, mirroring the
// single-campaign TestEndToEndDeterminism at fleet scale:
//
//  1. Two tenants submit two campaigns to one service backed by a DiskStore;
//     real workers drive campaign A to completion and campaign B partway.
//  2. The service is killed and restarted over the same store: A resumes
//     done, B resumes open with only its unsettled tasks claimable.
//  3. A fleet of unpinned workers finishes B through the fleet dispatcher.
//  4. Each campaign's merged report is byte-identical to a single-process
//     cluster.Run over the same document.
//  5. Re-submitting A's document settles entirely from the fleet result
//     cache — no worker lease — and yields the identical report again.
//  6. The legacy root-level report alias serves the default campaign.
//
// When MULTITENANT_STATUS_DIR is set (the CI smoke job does), each
// campaign's final StatusResponse is written there as JSON for the artifact
// upload.
func TestMultiTenantFleetE2E(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	docA := testDoc() // 4 tasks, tenant alice
	docB := testDocB()
	docB.Tasks = 6 // wide enough that the phase-1 kill lands mid-campaign

	wantA := refReportBytes(t, docA)
	wantB := refReportBytes(t, docB)

	// ---- Phase 1: two campaigns, one fleet, then a kill. ----
	dir := t.TempDir()
	store1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg1, err := NewRegistry(RegistryConfig{Store: store1, Lease: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(NewService(reg1).Handler())
	cl1 := NewClient(srv1.URL, srv1.Client())

	infoA, err := cl1.Create(ctx, CreateCampaignRequest{Tenant: "alice", Priority: 1, Doc: docA})
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := cl1.Create(ctx, CreateCampaignRequest{Tenant: "bob", Priority: 0, Doc: docB})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Worker pinned to A: runs its campaign to completion and exits.
	var errA error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errA = RunWorker(ctx, WorkerConfig{
			Coordinator: srv1.URL, ID: "wa", Campaign: infoA.ID, Poll: 50 * time.Millisecond,
		})
	}()
	// Worker pinned to B: killed right after B's first task settles — the
	// event long-poll is the kill trigger, so the cut lands mid-campaign.
	ctxB, cancelB := context.WithCancel(ctx)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := cl1.Events(ctx, infoB.ID, 0); err != nil {
			t.Errorf("event long-poll on B: %v", err)
		}
		cancelB()
	}()
	var errB error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errB = RunWorker(ctxB, WorkerConfig{
			Coordinator: srv1.URL, ID: "wb", Campaign: infoB.ID, Poll: 50 * time.Millisecond,
		})
	}()
	wg.Wait()
	cancelB()
	if errA != nil {
		t.Fatalf("worker wa: %v", errA)
	}
	if errB != nil && ctxB.Err() == nil {
		t.Fatalf("worker wb: %v", errB)
	}

	stA, err := cl1.Status(ctx, infoA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stA.State != StateDone {
		t.Fatalf("campaign A after phase 1: %+v, want done", stA)
	}
	stB, err := cl1.Status(ctx, infoB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Done < 1 || stB.Done >= stB.Total {
		t.Fatalf("campaign B after the kill has %d/%d done, want a strict partial", stB.Done, stB.Total)
	}
	phase1DoneB := stB.Done

	// The kill: service and registry go away; only the store directory lives.
	srv1.Close()
	if err := reg1.Close(); err != nil {
		t.Fatal(err)
	}

	// ---- Phase 2: restart over the same store. ----
	store2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2, err := NewRegistry(RegistryConfig{Store: store2, Lease: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	srv2 := httptest.NewServer(NewService(reg2).Handler())
	defer srv2.Close()
	cl2 := NewClient(srv2.URL, srv2.Client())

	list, err := cl2.Campaigns(ctx)
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]CampaignInfo{}
	for _, info := range list.Campaigns {
		states[info.ID] = info
	}
	if got := states[infoA.ID]; got.State != StateDone || got.Done != got.Total {
		t.Fatalf("A resumed as %+v, want done in full", got)
	}
	if got := states[infoB.ID]; got.State != StateOpen || got.Done != phase1DoneB {
		t.Fatalf("B resumed as %+v, want open with the %d journaled tasks settled", got, phase1DoneB)
	}
	// The journaled settles replay as Restored events on the resumed stream.
	evsB, err := cl2.Events(ctx, infoB.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	restored := 0
	for _, ev := range evsB {
		if ev.Restored {
			restored++
		}
	}
	if restored != phase1DoneB {
		t.Errorf("%d Restored events on resumed B, want %d", restored, phase1DoneB)
	}

	// An unpinned fleet finishes the remaining work and exits on fleet-done.
	var fleetErrs [2]error
	for i := range fleetErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, fleetErrs[i] = RunWorker(ctx, WorkerConfig{
				Coordinator: srv2.URL, ID: fmt.Sprintf("fleet-%d", i), Poll: 50 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range fleetErrs {
		if err != nil {
			t.Fatalf("fleet worker %d: %v", i, err)
		}
	}

	// ---- Byte identity, per campaign, across the kill. ----
	gotA := fetchReportBytes(t, srv2.URL, V1CampaignPath(infoA.ID, "report"))
	if !bytes.Equal(gotA, wantA) {
		t.Errorf("campaign A report differs from single-process cluster.Run:\n got  %s\n want %s", gotA, wantA)
	}
	gotB := fetchReportBytes(t, srv2.URL, V1CampaignPath(infoB.ID, "report"))
	if !bytes.Equal(gotB, wantB) {
		t.Errorf("campaign B report differs from single-process cluster.Run:\n got  %s\n want %s", gotB, wantB)
	}

	// ---- Resubmission: answered from the fleet result cache. ----
	infoA2, err := cl2.Create(ctx, CreateCampaignRequest{Tenant: "carol", Doc: docA})
	if err != nil {
		t.Fatal(err)
	}
	claim, err := cl2.Claim(ctx, infoA2.ID, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if !claim.Done {
		t.Fatalf("first claim on the resubmission %+v, want Done (settled from cache)", claim)
	}
	stA2, err := cl2.Status(ctx, infoA2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(stA2.Counters.TasksFromCache) / float64(stA2.Total); frac < 0.9 {
		t.Errorf("resubmission served %.0f%% from cache (%d/%d), want >= 90%%",
			100*frac, stA2.Counters.TasksFromCache, stA2.Total)
	}
	gotA2 := fetchReportBytes(t, srv2.URL, V1CampaignPath(infoA2.ID, "report"))
	if !bytes.Equal(gotA2, wantA) {
		t.Errorf("cache-settled resubmission report differs from single-process run:\n got  %s\n want %s", gotA2, wantA)
	}

	// ---- Legacy alias: the root report serves the default campaign. ----
	// Every campaign is settled, so the default is the earliest-created live
	// one: A.
	gotLegacy := fetchReportBytes(t, srv2.URL, PathReport)
	if !bytes.Equal(gotLegacy, wantA) {
		t.Errorf("legacy /report does not serve the default campaign A's bytes")
	}

	// ---- CI artifact: per-campaign final status JSON. ----
	if artDir := os.Getenv("MULTITENANT_STATUS_DIR"); artDir != "" {
		finalList, err := cl2.Campaigns(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, info := range finalList.Campaigns {
			st, err := cl2.Status(ctx, info.ID)
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(artDir, "status-"+info.ID+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
