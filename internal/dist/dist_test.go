package dist

import (
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"symplfied/internal/checker"
	"symplfied/internal/symexec"
)

// testDoc is a small real campaign: the factorial benchmark's register-error
// study, decomposed into 4 tasks.
func testDoc() SpecDoc {
	return SpecDoc{
		Name:               "factorial-register",
		App:                "factorial",
		Input:              []int64{5},
		Class:              "register",
		Goal:               "incorrect-output",
		Watchdog:           400,
		Tasks:              4,
		MaxFindingsPerTask: 10,
	}
}

// fakeClock is a manually-advanced clock for lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestCoordinator(t *testing.T, clock *fakeClock, lease time.Duration) *Coordinator {
	t.Helper()
	cfg := CoordinatorConfig{Doc: testDoc(), Lease: lease}
	if clock != nil {
		cfg.Now = clock.Now
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// syntheticResult fabricates a minimal but well-formed task result whose
// StatesExplored marker identifies which poster it came from.
func syntheticResult(marker int) TaskResult {
	return TaskResult{Reports: []checker.InjectionReport{{
		Activated:      true,
		StatesExplored: marker,
		Outcomes:       map[symexec.Outcome]int{symexec.OutcomeNormal: 1},
	}}}
}

// TestLeaseLifecycle is the lease state machine, table-driven over a fake
// clock: claims, heartbeats, expiry-driven reassignment, and de-duplication
// of completions from re-claimed tasks.
func TestLeaseLifecycle(t *testing.T) {
	const lease = 30 * time.Second
	for _, tc := range []struct {
		name string
		run  func(t *testing.T, c *Coordinator, clock *fakeClock)
	}{
		{"silent worker loses its task and the duplicate completion is dropped", func(t *testing.T, c *Coordinator, clock *fakeClock) {
			a := c.Claim("a")
			if a.Task == nil || a.Task.ID != 0 {
				t.Fatalf("first claim: %+v", a)
			}
			// Worker a goes silent: no heartbeat for a full lease.
			clock.Advance(lease + time.Second)
			b := c.Claim("b")
			if b.Task == nil || b.Task.ID != 0 {
				t.Fatalf("expired task not re-served first: %+v", b.Task)
			}
			if got := c.Status().Counters.TasksReassigned; got != 1 {
				t.Errorf("reassigned counter %d, want 1", got)
			}
			// b finishes; the zombie a posts afterwards.
			if resp, err := c.Complete("b", 0, syntheticResult(200)); err != nil || !resp.Accepted {
				t.Fatalf("live completion rejected: %+v, %v", resp, err)
			}
			resp, err := c.Complete("a", 0, syntheticResult(100))
			if err != nil || !resp.Duplicate || resp.Accepted {
				t.Fatalf("zombie completion not dropped as duplicate: %+v, %v", resp, err)
			}
			if got := c.Report().Tasks[0].StatesExplored; got != 200 {
				t.Errorf("pooled result came from the zombie (states %d, want 200)", got)
			}
			if got := c.Status().Counters.DuplicateCompletions; got != 1 {
				t.Errorf("duplicate counter %d, want 1", got)
			}
		}},
		{"zombie that posts before the reclaimer wins (first completion settles)", func(t *testing.T, c *Coordinator, clock *fakeClock) {
			c.Claim("a")
			clock.Advance(lease + time.Second)
			c.Claim("b") // task 0 re-leased to b
			// a's full result arrives first: it is the task's real sweep, so
			// it settles the task; b's later post is the duplicate.
			if resp, _ := c.Complete("a", 0, syntheticResult(100)); !resp.Accepted {
				t.Fatal("first completion not accepted")
			}
			if resp, _ := c.Complete("b", 0, syntheticResult(200)); !resp.Duplicate {
				t.Fatal("second completion not deduplicated")
			}
			if got := c.Report().Tasks[0].StatesExplored; got != 100 {
				t.Errorf("pooled states %d, want the first poster's 100", got)
			}
		}},
		{"heartbeats keep the lease alive past its nominal duration", func(t *testing.T, c *Coordinator, clock *fakeClock) {
			c.Claim("a")
			for i := 0; i < 4; i++ {
				clock.Advance(lease / 2)
				if err := c.Heartbeat("a", 0); err != nil {
					t.Fatalf("heartbeat %d under a live lease: %v", i, err)
				}
			}
			// Two lease durations have elapsed, but the renewals held task 0.
			if b := c.Claim("b"); b.Task == nil || b.Task.ID == 0 {
				t.Fatalf("heartbeated task was re-served: %+v", b.Task)
			}
		}},
		{"heartbeat after expiry reports the lost lease", func(t *testing.T, c *Coordinator, clock *fakeClock) {
			c.Claim("a")
			clock.Advance(lease + time.Second)
			if err := c.Heartbeat("a", 0); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("heartbeat on an expired lease: %v, want ErrLeaseLost", err)
			}
		}},
		{"heartbeat for a task the worker never held reports the lost lease", func(t *testing.T, c *Coordinator, clock *fakeClock) {
			c.Claim("a")
			if err := c.Heartbeat("b", 0); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("foreign heartbeat: %v, want ErrLeaseLost", err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			tc.run(t, newTestCoordinator(t, clock, lease), clock)
		})
	}
}

// TestLeaseLostDecisiveness: only a 409 from the coordinator proves the
// lease is gone. A 5xx from a reverse proxy in front of the coordinator, or
// a transport failure, says nothing about the lease and must be retried
// instead of aborting a long sweep and throwing its work away.
func TestLeaseLostDecisiveness(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"409 conflict", &httpError{status: http.StatusConflict, msg: "409 Conflict: dist: lease lost"}, true},
		{"wrapped 409", fmt.Errorf("heartbeat: %w", &httpError{status: http.StatusConflict}), true},
		{"proxy 502", &httpError{status: http.StatusBadGateway, msg: "502 Bad Gateway"}, false},
		{"overload 503", &httpError{status: http.StatusServiceUnavailable, msg: "503 Service Unavailable"}, false},
		{"coordinator 400", &httpError{status: http.StatusBadRequest, msg: "400 Bad Request"}, false},
		{"transport failure", errors.New("dial tcp: connection refused"), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := leaseLost(tc.err); got != tc.want {
				t.Errorf("leaseLost(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// TestJournalErrorSurfaced: a completion that pools but fails to checkpoint
// must still be Accepted, but the failure must be visible server-side — the
// operator relying on -resume has to learn checkpointing is broken before
// the restart that depends on it.
func TestJournalErrorSurfaced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tasks.jsonl")
	c, err := NewCoordinator(CoordinatorConfig{Doc: testDoc(), Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp := c.Claim("w"); resp.Task == nil {
		t.Fatal("claim failed")
	}
	// The checkpoint file goes bad mid-campaign: close the underlying
	// journal while leaving the persist hook attached.
	if err := c.closePersist(); err != nil {
		t.Fatal(err)
	}
	c.closePersist = nil
	resp, err := c.Complete("w", 0, syntheticResult(1))
	if err == nil {
		t.Fatal("journal failure not reported")
	}
	if !resp.Accepted {
		t.Error("result no longer pooled on a journal failure")
	}
	if got := c.Status().Counters.JournalErrors; got != 1 {
		t.Errorf("JournalErrors counter %d, want 1", got)
	}
	if got := c.Report().Tasks[0].StatesExplored; got != 1 {
		t.Errorf("pooled states %d, want 1 (result must survive the journal failure)", got)
	}
}

// TestClaimDrainsToDone walks a single worker through the whole queue.
func TestClaimDrainsToDone(t *testing.T) {
	c := newTestCoordinator(t, nil, 0)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		resp := c.Claim("w")
		if resp.Task == nil {
			t.Fatalf("claim %d served nothing", i)
		}
		if seen[resp.Task.ID] {
			t.Fatalf("task %d served twice under a live lease", resp.Task.ID)
		}
		seen[resp.Task.ID] = true
		cr, err := c.Complete("w", resp.Task.ID, syntheticResult(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if wantDone := i == 3; cr.Done != wantDone {
			t.Errorf("completion %d: Done = %v, want %v", i, cr.Done, wantDone)
		}
	}
	final := c.Claim("w")
	if !final.Done {
		t.Errorf("claim after all tasks settled: %+v, want Done", final)
	}
	select {
	case <-c.Done():
	default:
		t.Error("Done channel not closed after the last completion")
	}
	st := c.Status()
	if st.Done != 4 || st.Queued != 0 || st.Leased != 0 {
		t.Errorf("status %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].Completed != 4 || !st.Workers[0].Live {
		t.Errorf("worker status %+v", st.Workers)
	}
}

// TestCoordinatorResume: a restarted coordinator with Resume re-serves only
// unfinished tasks; journaled completions are not re-run.
func TestCoordinatorResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tasks.jsonl")
	cfg := CoordinatorConfig{Doc: testDoc(), Checkpoint: path}
	c1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 2} {
		if resp := c1.Claim("w"); resp.Task == nil {
			t.Fatal("claim failed")
		}
		if _, err := c1.Complete("w", id, syntheticResult(10*(id+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	c2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := c2.Status()
	if st.Done != 2 || st.Queued != 2 {
		t.Fatalf("resumed status %+v, want 2 done / 2 queued", st)
	}
	served := map[int]bool{}
	for i := 0; i < 2; i++ {
		resp := c2.Claim("w2")
		if resp.Task == nil {
			t.Fatal("resumed coordinator served nothing")
		}
		if resp.Task.ID == 0 || resp.Task.ID == 2 {
			t.Fatalf("journaled task %d re-served", resp.Task.ID)
		}
		served[resp.Task.ID] = true
	}
	if !served[1] || !served[3] {
		t.Fatalf("unfinished tasks not re-served: %v", served)
	}
	// Journaled results survived intact.
	if got := c2.Report().Tasks[0].StatesExplored; got != 10 {
		t.Errorf("restored task 0 states %d, want 10", got)
	}
}

// TestResumeRejectsForeignJournal: a journal written by a different campaign
// spec (or decomposition width) must be refused, not merged.
func TestResumeRejectsForeignJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tasks.jsonl")
	c1, err := NewCoordinator(CoordinatorConfig{Doc: testDoc(), Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()

	other := testDoc()
	other.Input = []int64{6} // different search space
	if _, err := NewCoordinator(CoordinatorConfig{Doc: other, Checkpoint: path, Resume: true}); err == nil {
		t.Error("foreign-spec journal accepted")
	}
	rewidth := testDoc()
	rewidth.Tasks = 2 // different task boundaries
	if _, err := NewCoordinator(CoordinatorConfig{Doc: rewidth, Checkpoint: path, Resume: true}); err == nil {
		t.Error("journal with a different decomposition width accepted")
	}
}

// TestSpecDocValidation covers the document's failure modes.
func TestSpecDocValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*SpecDoc)
	}{
		{"no program", func(d *SpecDoc) { d.App = "" }},
		{"both app and source", func(d *SpecDoc) { d.Source = "halt" }},
		{"unknown app", func(d *SpecDoc) { d.App = "nonesuch" }},
		{"unknown class", func(d *SpecDoc) { d.Class = "cosmic-ray" }},
		{"unknown goal", func(d *SpecDoc) { d.Goal = "world-peace" }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			doc := testDoc()
			tc.mut(&doc)
			if _, err := doc.Build(); err == nil {
				t.Error("bad spec document accepted")
			}
		})
	}
}
