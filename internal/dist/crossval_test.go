package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"symplfied/internal/crossval"
)

// crossvalDoc is a small real cross-validation campaign: the factorial
// benchmark swept concretely and symbolically, decomposed into 3 tasks.
func crossvalDoc() SpecDoc {
	return SpecDoc{
		Name:            "factorial-crossval",
		App:             "factorial",
		Input:           []int64{5},
		Watchdog:        400,
		Tasks:           3,
		TaskStateBudget: 5_000,
		Crossval:        true,
		Seed:            2008,
		RandomPerReg:    2,
	}
}

// TestCrossvalFleetDeterminism is the crossval-as-distributed-workload
// acceptance check: a coordinator plus two loopback workers must pool a
// crossval report byte-identical (under encoding/json) to a single-process
// crossval.RunCtx over the same spec.
func TestCrossvalFleetDeterminism(t *testing.T) {
	doc := crossvalDoc()

	// Single-process reference: same document, same lowering.
	xspec, err := doc.BuildCrossval()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := crossval.RunCtx(context.Background(), xspec, crossval.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Sound() {
		t.Fatalf("reference crossval run unsound: %s", ref.Summary())
	}

	coord, err := NewCoordinator(CoordinatorConfig{Doc: doc})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if coord.Fingerprint() != crossval.Fingerprint(xspec) {
		t.Fatalf("coordinator fingerprint %s, crossval %s", coord.Fingerprint(), crossval.Fingerprint(xspec))
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, id := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			_, errs[i] = RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				ID:          id,
				Poll:        50 * time.Millisecond,
				Parallelism: 2,
			})
		}(i, id)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("workers exited but the campaign is not done")
	}

	merged := coord.Report()
	if !merged.Complete {
		t.Fatal("merged report not complete")
	}
	if merged.Crossval == nil {
		t.Fatal("merged report has no crossval payload")
	}
	got, err := json.Marshal(merged.Crossval)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fleet crossval report differs from single-process:\n%s\n---\n%s", got, want)
	}
	if st := coord.Status(); st.Verdict != "proven resilient" {
		t.Errorf("verdict %q for a sound complete campaign", st.Verdict)
	}
}

// TestCrossvalSpecDocValidation: the two lowering paths reject the wrong
// campaign kind.
func TestCrossvalSpecDocValidation(t *testing.T) {
	if _, err := crossvalDoc().Build(); err == nil {
		t.Error("Build accepted a crossval document")
	}
	plain := testDoc()
	if _, err := plain.BuildCrossval(); err == nil {
		t.Error("BuildCrossval accepted a symbolic-search document")
	}
}
