package dist

import (
	"encoding/json"
	"fmt"
	"sync"

	"symplfied/internal/cluster"
	"symplfied/internal/obs"
)

var (
	mCacheHits   = obs.Default().Counter(obs.MDistCacheHits)
	mCacheMisses = obs.Default().Counter(obs.MDistCacheMisses)
)

// ResultCache is the fleet-wide content-addressed store of settled task
// results. The key covers everything that determines a task's result:
//
//   - the campaign fingerprint (program, detectors, input, predicate,
//     execution options, budgets, injection list — see campaign.Fingerprint),
//   - the decomposition width (cluster.Split is deterministic, so fingerprint
//     + width + task ID pins the exact injection slice),
//   - the task ID within that split,
//   - the per-task state budget and findings cap, which bound exploration.
//
// Exploration is deterministic, so two campaigns lowering to the same key
// would compute byte-identical TaskResults; a hit is answered at claim time
// without a worker lease. Values are stored as serialized JSON so a cached
// result shares no mutable state with the campaign that produced it.
//
// The cache is shared by every campaign in a Registry and survives campaign
// completion, but is process-local: a restarted service re-warms it from the
// durable Store's journaled results.
type ResultCache struct {
	mu sync.Mutex
	m  map[string]json.RawMessage

	hits, misses int64
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{m: make(map[string]json.RawMessage)}
}

// resultCacheKey pins a task's result: campaign fingerprint, decomposition
// width, task ID, normalized state budget and findings cap. A zero budget is
// normalized to cluster.DefaultTaskStateBudget so explicit and defaulted
// documents share entries.
func resultCacheKey(fingerprint string, width, taskID, stateBudget, maxFindings int) string {
	if stateBudget <= 0 {
		stateBudget = cluster.DefaultTaskStateBudget
	}
	return fmt.Sprintf("%s|%d|%d|%d|%d", fingerprint, width, taskID, stateBudget, maxFindings)
}

// Get looks up a settled result. The returned TaskResult is freshly decoded
// and owned by the caller.
func (c *ResultCache) Get(key string) (TaskResult, bool) {
	if c == nil {
		return TaskResult{}, false
	}
	c.mu.Lock()
	raw, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		mCacheMisses.Inc()
		return TaskResult{}, false
	}
	var res TaskResult
	if err := json.Unmarshal(raw, &res); err != nil {
		// A value that fails to decode is unusable; treat as a miss.
		mCacheMisses.Inc()
		return TaskResult{}, false
	}
	mCacheHits.Inc()
	return res, true
}

// Put publishes a settled result. Failed tasks are not cached: an
// infrastructure failure (worker OOM, timeout on a slow host) is not a
// property of the key and should be retried, not replayed fleet-wide.
func (c *ResultCache) Put(key string, res TaskResult) {
	if c == nil || res.Failure != "" {
		return
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.m[key]; !ok {
		c.m[key] = raw
	}
	c.mu.Unlock()
}

// Len reports the number of cached results.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats reports lifetime hit and miss counts.
func (c *ResultCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
