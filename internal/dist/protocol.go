package dist

import (
	"encoding/json"
	"time"

	"symplfied/internal/checker"
	"symplfied/internal/cluster"
	"symplfied/internal/crossval"
	"symplfied/internal/faults"
	"symplfied/internal/simplescalar"
)

// The campaign service's JSON HTTP API. All bodies are JSON; errors are
// plain text with a non-2xx status.
//
// Versioned, campaign-scoped surface (dist.Service):
//
//	POST /v1/campaigns                 CreateCampaignRequest -> CampaignInfo (429 at tenant quota)
//	GET  /v1/campaigns                 -> CampaignList        every campaign, priority-ranked
//	POST /v1/campaigns/{id}/cancel     -> 204                 stop serving; unsettled tasks stay unsettled
//	GET  /v1/campaigns/{id}/spec       -> SpecResponse        campaign document + fingerprint
//	POST /v1/campaigns/{id}/claim      ClaimRequest -> ClaimResponse
//	POST /v1/campaigns/{id}/heartbeat  HeartbeatRequest -> 204 (409 when the lease is lost)
//	POST /v1/campaigns/{id}/complete   CompleteRequest -> CompleteResponse
//	GET  /v1/campaigns/{id}/status     -> StatusResponse      live campaign status
//	GET  /v1/campaigns/{id}/report     -> MergedReport        pooled report so far
//	GET  /v1/campaigns/{id}/events     -> []Event             ?after=N long-poll, ?sse=1 streams
//	POST /v1/claim                     ClaimRequest -> FleetClaimResponse (priority-weighted, any campaign)
//
// Fleet-wide, campaign-independent surface:
//
//	POST /summary/get  SummaryGetRequest -> SummaryGetResponse
//	POST /summary/put  SummaryPutRequest -> 204
//	GET  /debug/vars   -> expvar counters; /metrics Prometheus text
//
// Legacy root-level paths (thin aliases onto the service's default campaign,
// so pre-v1 symworker flags keep working; also the whole surface of a
// standalone Coordinator.Handler):
//
//	GET  /spec       POST /claim      POST /heartbeat
//	POST /complete   GET  /status     GET  /report
const (
	PathSpec       = "/spec"
	PathClaim      = "/claim"
	PathHeartbeat  = "/heartbeat"
	PathComplete   = "/complete"
	PathStatus     = "/status"
	PathReport     = "/report"
	PathSummaryGet = "/summary/get"
	PathSummaryPut = "/summary/put"

	// PathV1Campaigns is the campaign collection; campaign-scoped calls live
	// under PathV1Campaigns + "/{id}/..." (see V1CampaignPath).
	PathV1Campaigns = "/v1/campaigns"
	// PathV1Claim is the fleet-level claim: the service picks the campaign
	// (priority-weighted across every open campaign whose tenant is under
	// quota) and answers with the campaign ID alongside the task.
	PathV1Claim = "/v1/claim"
)

// V1CampaignPath renders a campaign-scoped route: op is one of "spec",
// "claim", "heartbeat", "complete", "status", "report", "events", "cancel".
func V1CampaignPath(id, op string) string {
	return PathV1Campaigns + "/" + id + "/" + op
}

// SpecResponse hands a worker everything it needs to rebuild the campaign.
type SpecResponse struct {
	Spec SpecDoc
	// Fingerprint is campaign.Fingerprint of the coordinator's lowered spec.
	// A worker that lowers the document to a different fingerprint must not
	// serve: it would pool results from a different search.
	Fingerprint string
	// Lease is the task lease duration; a worker must heartbeat well within
	// it (Lease/3 is the convention) or its task is reassigned.
	Lease time.Duration
}

// ClaimRequest asks for a task.
type ClaimRequest struct {
	Worker string
}

// TaskAssignment is one leased task.
type TaskAssignment struct {
	ID int
	// Injections is the task's slice of the injection space, exactly as
	// cluster.Split partitioned it. Empty in crossval campaigns.
	Injections []faults.Injection `json:",omitempty"`
	// Points is the task's slice of a crossval campaign's injection sites,
	// exactly as cluster.SplitPoints partitioned it. Empty in symbolic-search
	// campaigns.
	Points []simplescalar.Point `json:",omitempty"`
}

// ClaimResponse answers a claim.
type ClaimResponse struct {
	// Done is true when every task is complete: the worker should exit.
	Done bool
	// Task is nil (with Done false) when all remaining tasks are currently
	// leased: the worker should poll again shortly.
	Task *TaskAssignment `json:",omitempty"`
	// Lease echoes the lease duration for this assignment.
	Lease time.Duration `json:",omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker string
	Task   int
}

// TaskResult is what a worker posts back: the serialized per-injection
// reports its sweep produced, in execution order, plus the infrastructure
// failure text if the task died on one. The coordinator folds the reports
// with cluster.PoolReports, reconstructing the exact TaskReport the worker's
// cluster.RunTaskCtx computed.
type TaskResult struct {
	Reports []checker.InjectionReport `json:",omitempty"`
	// PointReports carries a crossval task's per-site verdicts; the
	// coordinator folds them with crossval.Merge, whose canonical ordering
	// makes the merged report independent of task partitioning.
	PointReports []crossval.PointReport `json:",omitempty"`
	Failure      string                 `json:",omitempty"`
}

// CompleteRequest posts a finished task.
type CompleteRequest struct {
	Worker string
	Task   int
	Result TaskResult
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	// Accepted is true when this completion settled the task.
	Accepted bool
	// Duplicate is true when the task was already complete (a re-claimed
	// task's earlier owner posted late); the posted result was dropped.
	Duplicate bool
	// Done is true when the campaign has no unsettled tasks left. A worker
	// hearing Done exits without claiming again: the coordinator may
	// already be shutting down, and a post-completion claim would fail.
	Done bool
}

// SummaryGetRequest looks up one function summary in the coordinator's
// shared content-addressed cache. The key is canonical over the function's
// body and detector lines (internal/summary), so a served value is correct
// for any worker that derives the same key — no fingerprint check needed.
type SummaryGetRequest struct {
	Key string
}

// SummaryGetResponse answers a summary lookup. Value is the JSON-encoded
// summary.FuncSummary when Found.
type SummaryGetResponse struct {
	Found bool
	Value json.RawMessage `json:",omitempty"`
}

// SummaryPutRequest publishes a computed function summary to the
// coordinator's shared cache. The coordinator validates the value decodes
// before admitting it.
type SummaryPutRequest struct {
	Key   string
	Value json.RawMessage
}

// WorkerStatus describes one worker the coordinator has heard from.
type WorkerStatus struct {
	ID string
	// LastSeen is how long ago the worker last spoke (claim, heartbeat or
	// completion).
	LastSeen time.Duration
	// Live is true when the worker spoke within a lease duration.
	Live bool
	// Leased lists the task IDs the worker currently holds.
	Leased []int `json:",omitempty"`
	// Completed counts tasks this worker settled.
	Completed int
}

// Counters are the coordinator's monotonic event counts (also published via
// expvar under symplfied_dist).
type Counters struct {
	TasksServed          int64
	TasksCompleted       int64
	TasksReassigned      int64
	Heartbeats           int64
	ReportsPooled        int64
	DuplicateCompletions int64
	// TasksFromCache counts tasks settled from the fleet-wide result cache
	// at claim time, without a worker lease.
	TasksFromCache int64
	// JournalErrors counts completions that pooled but failed to checkpoint:
	// nonzero means a -resume of this coordinator would re-run tasks the
	// operator believed journaled.
	JournalErrors int64
}

// CreateCampaignRequest submits a new campaign to the service.
type CreateCampaignRequest struct {
	// Tenant names the submitting tenant for quota accounting and fleet
	// status. Empty selects the "default" tenant.
	Tenant string `json:",omitempty"`
	// Priority weights task dispatch across campaigns sharing the fleet:
	// higher-priority campaigns are served first, ties round-robin. 0 is the
	// default priority.
	Priority int `json:",omitempty"`
	// Doc is the declarative campaign document, lowered identically by the
	// service and every worker.
	Doc SpecDoc
}

// CampaignInfo is one registry entry as listed by GET /v1/campaigns.
type CampaignInfo struct {
	// ID addresses the campaign in every /v1/campaigns/{id}/... route. It
	// embeds a prefix of the spec fingerprint plus a creation sequence
	// number, so two submissions of the same document are distinct campaigns
	// with a shared fingerprint.
	ID          string
	Tenant      string
	Priority    int    `json:",omitempty"`
	Fingerprint string
	// State is "open" (accepting claims), "done" (every task settled) or
	// "cancelled".
	State string
	// Crossval marks a cross-validation campaign.
	Crossval bool `json:",omitempty"`
	// Done and Total count settled tasks and the decomposition width.
	Done, Total int
	// FromCache counts tasks answered by the fleet-wide result cache without
	// a worker lease.
	FromCache int `json:",omitempty"`
	// Verdict is the campaign's pooled verdict so far.
	Verdict string `json:",omitempty"`
}

// CampaignList answers GET /v1/campaigns. Campaigns are listed in dispatch
// order: open campaigns first, priority-ranked exactly as the fleet claim
// serves them, then settled and cancelled ones in creation order.
type CampaignList struct {
	Campaigns []CampaignInfo
}

// FleetClaimResponse answers the fleet-level POST /v1/claim: a campaign
// chosen by the service plus the task leased within it.
type FleetClaimResponse struct {
	// Campaign is the ID of the campaign the task belongs to; heartbeats and
	// the completion go to its campaign-scoped routes. Empty when no task was
	// leased.
	Campaign string `json:",omitempty"`
	// Done is true when the service has campaigns and every one is settled
	// or cancelled: the worker should exit. A service with no campaigns yet
	// answers Done=false so a fleet may start before its first submission.
	Done bool
	// Task and Lease are as in ClaimResponse, scoped to Campaign.
	Task  *TaskAssignment `json:",omitempty"`
	Lease time.Duration   `json:",omitempty"`
	// OpenCampaigns counts campaigns currently accepting claims.
	OpenCampaigns int
}

// Event is one entry in a campaign's append-only result stream, pushed to
// subscribers of GET /v1/campaigns/{id}/events as tasks settle instead of
// one final /report poll.
type Event struct {
	// Seq numbers events from 1 within the campaign; pass the last seen Seq
	// as ?after=N to long-poll for the rest.
	Seq int
	// Type is "task" (one task settled), "done" (every task settled) or
	// "cancelled".
	Type string
	// Task identifies the settled task for Type "task".
	Task int `json:",omitempty"`
	// Worker is the poster for worker-settled tasks; empty for cache- or
	// journal-settled ones.
	Worker string `json:",omitempty"`
	// FromCache marks a task answered by the fleet-wide result cache without
	// a worker lease.
	FromCache bool `json:",omitempty"`
	// Restored marks a task settled from the durable store during resume.
	Restored bool `json:",omitempty"`
	// Findings and States carry the settled task's pooled tallies.
	Findings int `json:",omitempty"`
	States   int `json:",omitempty"`
}

// StatusResponse is the live fleet status.
type StatusResponse struct {
	// ID, Tenant, Priority and State identify the campaign within the
	// service; a standalone coordinator reports an empty ID and tenant.
	ID       string `json:",omitempty"`
	Tenant   string `json:",omitempty"`
	Priority int    `json:",omitempty"`
	// State is "open", "done" or "cancelled".
	State string `json:",omitempty"`
	// Queued, Leased, Done partition the Total tasks.
	Queued, Leased, Done, Total int
	// Verdict is the pooled verdict over the tasks done so far: "refuted" as
	// soon as any finding pooled, "proven resilient" only when every task
	// completed cleanly, "inconclusive" for a finished campaign with
	// incomplete tasks, "open" while tasks remain.
	Verdict string
	// Findings and States tally the pooled results so far.
	Findings int
	States   int
	Workers  []WorkerStatus
	Counters Counters
}

// MergedReport is the pooled campaign result: per-task reports in task-ID
// order plus their summary. For a complete campaign it is identical — byte
// for byte under encoding/json — to pooling a single-process cluster.Run
// over the same spec and split. Tasks not yet settled appear Interrupted
// with empty tallies, mirroring how cluster.RunCtx reports tasks a cancelled
// study never started.
type MergedReport struct {
	Complete bool
	Tasks    []cluster.TaskReport
	Summary  cluster.Summary
	// Crossval is the pooled mismatch report of a crossval campaign (nil
	// otherwise). For a complete campaign it is byte-identical to a
	// single-process crossval.Run over the same spec.
	Crossval *crossval.Report `json:",omitempty"`
}
