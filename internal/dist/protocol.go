package dist

import (
	"encoding/json"
	"time"

	"symplfied/internal/checker"
	"symplfied/internal/cluster"
	"symplfied/internal/crossval"
	"symplfied/internal/faults"
	"symplfied/internal/simplescalar"
)

// The coordinator's JSON HTTP API. All bodies are JSON; errors are plain
// text with a non-2xx status.
//
//	GET  /spec       -> SpecResponse     campaign document + fingerprint
//	POST /claim      ClaimRequest -> ClaimResponse
//	POST /heartbeat  HeartbeatRequest -> 204 (409 when the lease is lost)
//	POST /complete   CompleteRequest -> CompleteResponse
//	GET  /status     -> StatusResponse   live fleet status
//	GET  /report     -> MergedReport     pooled report so far
//	POST /summary/get  SummaryGetRequest -> SummaryGetResponse
//	POST /summary/put  SummaryPutRequest -> 204
//	GET  /debug/vars -> expvar counters
const (
	PathSpec       = "/spec"
	PathClaim      = "/claim"
	PathHeartbeat  = "/heartbeat"
	PathComplete   = "/complete"
	PathStatus     = "/status"
	PathReport     = "/report"
	PathSummaryGet = "/summary/get"
	PathSummaryPut = "/summary/put"
)

// SpecResponse hands a worker everything it needs to rebuild the campaign.
type SpecResponse struct {
	Spec SpecDoc
	// Fingerprint is campaign.Fingerprint of the coordinator's lowered spec.
	// A worker that lowers the document to a different fingerprint must not
	// serve: it would pool results from a different search.
	Fingerprint string
	// Lease is the task lease duration; a worker must heartbeat well within
	// it (Lease/3 is the convention) or its task is reassigned.
	Lease time.Duration
}

// ClaimRequest asks for a task.
type ClaimRequest struct {
	Worker string
}

// TaskAssignment is one leased task.
type TaskAssignment struct {
	ID int
	// Injections is the task's slice of the injection space, exactly as
	// cluster.Split partitioned it. Empty in crossval campaigns.
	Injections []faults.Injection `json:",omitempty"`
	// Points is the task's slice of a crossval campaign's injection sites,
	// exactly as cluster.SplitPoints partitioned it. Empty in symbolic-search
	// campaigns.
	Points []simplescalar.Point `json:",omitempty"`
}

// ClaimResponse answers a claim.
type ClaimResponse struct {
	// Done is true when every task is complete: the worker should exit.
	Done bool
	// Task is nil (with Done false) when all remaining tasks are currently
	// leased: the worker should poll again shortly.
	Task *TaskAssignment `json:",omitempty"`
	// Lease echoes the lease duration for this assignment.
	Lease time.Duration `json:",omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker string
	Task   int
}

// TaskResult is what a worker posts back: the serialized per-injection
// reports its sweep produced, in execution order, plus the infrastructure
// failure text if the task died on one. The coordinator folds the reports
// with cluster.PoolReports, reconstructing the exact TaskReport the worker's
// cluster.RunTaskCtx computed.
type TaskResult struct {
	Reports []checker.InjectionReport `json:",omitempty"`
	// PointReports carries a crossval task's per-site verdicts; the
	// coordinator folds them with crossval.Merge, whose canonical ordering
	// makes the merged report independent of task partitioning.
	PointReports []crossval.PointReport `json:",omitempty"`
	Failure      string                 `json:",omitempty"`
}

// CompleteRequest posts a finished task.
type CompleteRequest struct {
	Worker string
	Task   int
	Result TaskResult
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	// Accepted is true when this completion settled the task.
	Accepted bool
	// Duplicate is true when the task was already complete (a re-claimed
	// task's earlier owner posted late); the posted result was dropped.
	Duplicate bool
	// Done is true when the campaign has no unsettled tasks left. A worker
	// hearing Done exits without claiming again: the coordinator may
	// already be shutting down, and a post-completion claim would fail.
	Done bool
}

// SummaryGetRequest looks up one function summary in the coordinator's
// shared content-addressed cache. The key is canonical over the function's
// body and detector lines (internal/summary), so a served value is correct
// for any worker that derives the same key — no fingerprint check needed.
type SummaryGetRequest struct {
	Key string
}

// SummaryGetResponse answers a summary lookup. Value is the JSON-encoded
// summary.FuncSummary when Found.
type SummaryGetResponse struct {
	Found bool
	Value json.RawMessage `json:",omitempty"`
}

// SummaryPutRequest publishes a computed function summary to the
// coordinator's shared cache. The coordinator validates the value decodes
// before admitting it.
type SummaryPutRequest struct {
	Key   string
	Value json.RawMessage
}

// WorkerStatus describes one worker the coordinator has heard from.
type WorkerStatus struct {
	ID string
	// LastSeen is how long ago the worker last spoke (claim, heartbeat or
	// completion).
	LastSeen time.Duration
	// Live is true when the worker spoke within a lease duration.
	Live bool
	// Leased lists the task IDs the worker currently holds.
	Leased []int `json:",omitempty"`
	// Completed counts tasks this worker settled.
	Completed int
}

// Counters are the coordinator's monotonic event counts (also published via
// expvar under symplfied_dist).
type Counters struct {
	TasksServed          int64
	TasksCompleted       int64
	TasksReassigned      int64
	Heartbeats           int64
	ReportsPooled        int64
	DuplicateCompletions int64
	// JournalErrors counts completions that pooled but failed to checkpoint:
	// nonzero means a -resume of this coordinator would re-run tasks the
	// operator believed journaled.
	JournalErrors int64
}

// StatusResponse is the live fleet status.
type StatusResponse struct {
	// Queued, Leased, Done partition the Total tasks.
	Queued, Leased, Done, Total int
	// Verdict is the pooled verdict over the tasks done so far: "refuted" as
	// soon as any finding pooled, "proven resilient" only when every task
	// completed cleanly, "inconclusive" for a finished campaign with
	// incomplete tasks, "open" while tasks remain.
	Verdict string
	// Findings and States tally the pooled results so far.
	Findings int
	States   int
	Workers  []WorkerStatus
	Counters Counters
}

// MergedReport is the pooled campaign result: per-task reports in task-ID
// order plus their summary. For a complete campaign it is identical — byte
// for byte under encoding/json — to pooling a single-process cluster.Run
// over the same spec and split. Tasks not yet settled appear Interrupted
// with empty tallies, mirroring how cluster.RunCtx reports tasks a cancelled
// study never started.
type MergedReport struct {
	Complete bool
	Tasks    []cluster.TaskReport
	Summary  cluster.Summary
	// Crossval is the pooled mismatch report of a crossval campaign (nil
	// otherwise). For a complete campaign it is byte-identical to a
	// single-process crossval.Run over the same spec.
	Crossval *crossval.Report `json:",omitempty"`
}
