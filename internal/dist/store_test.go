package dist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// storeFixture abstracts one Store implementation for the conformance suite.
// open yields a fresh store plus a reopen hook that simulates a process
// restart: for DiskStore it closes the handle and opens a new one over the
// same directory; for MemStore — durable only for the life of the process —
// it returns the same instance.
type storeFixture struct {
	name string
	open func(t *testing.T) (store Store, reopen func(t *testing.T) Store)
}

func storeFixtures() []storeFixture {
	return []storeFixture{
		{"mem", func(t *testing.T) (Store, func(t *testing.T) Store) {
			s := NewMemStore()
			return s, func(t *testing.T) Store { return s }
		}},
		{"disk", func(t *testing.T) (Store, func(t *testing.T) Store) {
			dir := t.TempDir()
			s, err := NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			var cur Store = s
			return s, func(t *testing.T) Store {
				if err := cur.Close(); err != nil {
					t.Fatal(err)
				}
				next, err := NewDiskStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				cur = next
				return next
			}
		}},
	}
}

// storeTestRecord fabricates a well-formed campaign record whose journal
// identity comes from a real lowering, so DiskStore's journal headers check.
func storeTestRecord(t *testing.T, id string, seq int) CampaignRecord {
	t.Helper()
	doc := testDoc()
	fp, err := DocFingerprint(doc)
	if err != nil {
		t.Fatal(err)
	}
	return CampaignRecord{
		ID:          id,
		Tenant:      "t",
		Priority:    seq,
		State:       StateOpen,
		Doc:         doc,
		Fingerprint: fp,
		Kind:        journalKind(false, doc.Tasks),
		Seq:         seq,
	}
}

// TestStoreConformance runs the shared Store contract against every
// implementation: record round-trips and lifecycle replacement, Seq-ordered
// listing, result append/replay with last-entry-wins, restart-resume, and
// safety under concurrent appends.
func TestStoreConformance(t *testing.T) {
	for _, fx := range storeFixtures() {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Run("records round-trip in Seq order and replace on rewrite", func(t *testing.T) {
				s, reopen := fx.open(t)
				b := storeTestRecord(t, "camp-b", 2)
				a := storeTestRecord(t, "camp-a", 1)
				for _, rec := range []CampaignRecord{b, a} {
					if err := s.PutCampaign(rec); err != nil {
						t.Fatal(err)
					}
				}
				// Lifecycle transition: rewrite a's record as done.
				a.State = StateDone
				if err := s.PutCampaign(a); err != nil {
					t.Fatal(err)
				}
				s = reopen(t)
				recs, err := s.Campaigns()
				if err != nil {
					t.Fatal(err)
				}
				if len(recs) != 2 || recs[0].ID != "camp-a" || recs[1].ID != "camp-b" {
					t.Fatalf("campaigns %+v, want camp-a then camp-b by Seq", recs)
				}
				if recs[0].State != StateDone {
					t.Errorf("rewritten record state %q, want %q", recs[0].State, StateDone)
				}
				if recs[0].Fingerprint == "" || recs[0].Kind == "" || recs[0].Doc.App != "factorial" {
					t.Errorf("record did not round-trip: %+v", recs[0])
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			})

			t.Run("empty campaign ID rejected", func(t *testing.T) {
				s, _ := fx.open(t)
				defer s.Close()
				if err := s.PutCampaign(CampaignRecord{}); err == nil {
					t.Error("record with empty ID accepted")
				}
			})

			t.Run("append to unknown campaign rejected", func(t *testing.T) {
				s, _ := fx.open(t)
				defer s.Close()
				if err := s.AppendResult("nonesuch", taskKey(0), syntheticResult(1)); err == nil {
					t.Error("append to a campaign never stored accepted")
				}
				if _, err := s.Results("nonesuch"); err == nil {
					t.Error("results for a campaign never stored answered")
				}
			})

			t.Run("results survive reopen, last entry per key wins", func(t *testing.T) {
				s, reopen := fx.open(t)
				if err := s.PutCampaign(storeTestRecord(t, "camp", 1)); err != nil {
					t.Fatal(err)
				}
				for id := 0; id < 3; id++ {
					if err := s.AppendResult("camp", taskKey(id), syntheticResult(10*(id+1))); err != nil {
						t.Fatal(err)
					}
				}
				// A re-append of task 0: the later entry wins on replay.
				if err := s.AppendResult("camp", taskKey(0), syntheticResult(99)); err != nil {
					t.Fatal(err)
				}
				s = reopen(t)
				got, err := s.Results("camp")
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 3 {
					t.Fatalf("replayed %d keys, want 3: %v", len(got), got)
				}
				var res TaskResult
				if err := json.Unmarshal(got[taskKey(0)], &res); err != nil {
					t.Fatal(err)
				}
				if res.Reports[0].StatesExplored != 99 {
					t.Errorf("task 0 replayed states %d, want the re-appended 99", res.Reports[0].StatesExplored)
				}
				// A fresh append after reopen still lands.
				if err := s.AppendResult("camp", taskKey(3), syntheticResult(40)); err != nil {
					t.Fatal(err)
				}
				got, err = s.Results("camp")
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 4 {
					t.Errorf("after post-reopen append: %d keys, want 4", len(got))
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			})

			t.Run("concurrent appends all land", func(t *testing.T) {
				s, reopen := fx.open(t)
				if err := s.PutCampaign(storeTestRecord(t, "camp", 1)); err != nil {
					t.Fatal(err)
				}
				const goroutines, each = 8, 16
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < each; i++ {
							id := g*each + i
							if err := s.AppendResult("camp", taskKey(id), syntheticResult(id)); err != nil {
								t.Errorf("concurrent append %d: %v", id, err)
								return
							}
						}
					}(g)
				}
				wg.Wait()
				s = reopen(t)
				got, err := s.Results("camp")
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != goroutines*each {
					t.Errorf("replayed %d keys, want %d (interleaved appends lost or torn)", len(got), goroutines*each)
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestDiskStoreCorruptTailTruncated: a crash mid-append leaves a torn final
// line. Reload must keep every whole entry and drop only the fragment, and a
// reopened journal must keep appending cleanly after the truncation.
func TestDiskStoreCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutCampaign(storeTestRecord(t, "camp", 1)); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		if err := s.AppendResult("camp", taskKey(id), syntheticResult(10*(id+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The kill: a partial, unterminated entry at the tail.
	path := filepath.Join(dir, "camp", "tasks.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"task:2","data":{"Repor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Results("camp")
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d keys, want the 2 whole entries: %v", len(got), got)
	}
	// Appending truncates the fragment first, so the new entry is whole.
	if err := s2.AppendResult("camp", taskKey(2), syntheticResult(30)); err != nil {
		t.Fatal(err)
	}
	got, err = s2.Results("camp")
	if err != nil {
		t.Fatal(err)
	}
	var res TaskResult
	if err := json.Unmarshal(got[taskKey(2)], &res); err != nil {
		t.Fatalf("entry appended after truncation does not decode: %v", err)
	}
	if res.Reports[0].StatesExplored != 30 {
		t.Errorf("post-truncation append states %d, want 30", res.Reports[0].StatesExplored)
	}
}

// TestDiskStoreRejectsForeignJournal: a result journal that does not match
// its campaign record's fingerprint (copied between directories, edited by
// hand) must be refused on reload, not silently pooled.
func TestDiskStoreRejectsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := storeTestRecord(t, "camp", 1)
	if err := s.PutCampaign(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendResult("camp", taskKey(0), syntheticResult(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The record now claims a different campaign identity than the journal
	// header carries.
	rec.Fingerprint = "0000000000000000000000000000000000000000000000000000000000000000"
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.PutCampaign(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Results("camp"); err == nil {
		t.Error("journal with a mismatched fingerprint replayed")
	}
	if err := s2.AppendResult("camp", taskKey(1), syntheticResult(2)); err == nil {
		t.Error("append through a mismatched journal header accepted")
	}
}

// TestDiskStorePathSafety: campaign IDs are path components; anything that
// would escape the root or collide with special entries is refused.
func TestDiskStorePathSafety(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, id := range []string{"", ".", "..", "../evil", "a/b", `a\b`, "nul\x00byte"} {
		rec := storeTestRecord(t, "x", 1)
		rec.ID = id
		if err := s.PutCampaign(rec); err == nil {
			t.Errorf("campaign ID %q accepted as a store path component", id)
		}
		if _, err := s.Results(id); err == nil {
			t.Errorf("results served for unsafe campaign ID %q", id)
		}
	}
}

// TestDiskStoreSkipsTornCampaignDir: a directory left by a crash between
// MkdirAll and the record rename has no campaign.json; listing must skip it
// rather than fail the whole resume.
func TestDiskStoreSkipsTornCampaignDir(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutCampaign(storeTestRecord(t, "whole", 1)); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "torn"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A stray tmp file from an interrupted atomic write is also ignored.
	if err := os.WriteFile(filepath.Join(dir, "torn", "campaign-123.tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "whole" {
		t.Errorf("campaigns %+v, want only the whole record", recs)
	}
}

// TestDiskStoreRejectsMisfiledRecord: a campaign.json whose ID does not match
// its directory name (a copied directory) is corruption worth failing on.
func TestDiskStoreRejectsMisfiledRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutCampaign(storeTestRecord(t, "orig", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "orig", "campaign.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "copy"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "copy", "campaign.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Campaigns(); err == nil {
		t.Error("directory holding another campaign's record listed without error")
	}
}
