package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"symplfied/internal/campaign"
)

// Store is the durable backing of a campaign Registry. It records each
// campaign's document and lifecycle state plus an append-only log of its
// settled task results, so a restarted service resumes every open campaign —
// not just one -resume path. Implementations must be safe for concurrent use
// and must tolerate a crash between any two calls: on reload, a campaign
// record written by PutCampaign and any prefix of its appended results must
// be recovered (a torn final append may be dropped).
//
// MemStore keeps everything in memory (tests, ephemeral services); DiskStore
// persists under a directory using the internal/campaign journal format, so
// its result logs inherit the journal's header validation and torn-tail
// truncation.
type Store interface {
	// PutCampaign creates or replaces a campaign record. Replacing is how
	// lifecycle transitions (open → done, open → cancelled) are persisted.
	PutCampaign(rec CampaignRecord) error
	// Campaigns lists every stored record in creation (Seq) order.
	Campaigns() ([]CampaignRecord, error)
	// AppendResult logs one settled task result for the campaign. Keys
	// follow the journal convention ("task:<id>"); appending a key twice is
	// harmless — the last entry wins on reload, matching the journal format.
	// Appending to a campaign never stored is an error.
	AppendResult(campaignID, key string, payload any) error
	// Results replays the campaign's settled results, last entry per key.
	// An unknown campaign is an error; a known campaign with no results yet
	// yields an empty map.
	Results(campaignID string) (map[string]json.RawMessage, error)
	// Close releases any held resources (open journal files).
	Close() error
}

// Campaign lifecycle states as stored and served.
const (
	StateOpen      = "open"
	StateDone      = "done"
	StateCancelled = "cancelled"
)

// CampaignRecord is a Store's durable description of one campaign: enough
// to re-lower the document and resume dispatch after a restart.
type CampaignRecord struct {
	// ID addresses the campaign; it doubles as the journal directory name in
	// DiskStore, so Registry mints it from the fingerprint prefix plus Seq.
	ID     string
	Tenant string
	// Priority weights dispatch; higher is served first.
	Priority int
	// State is StateOpen, StateDone or StateCancelled.
	State string
	// Doc is the campaign document as submitted (pre-lowering).
	Doc SpecDoc
	// Fingerprint is the lowered spec's campaign fingerprint; it guards the
	// result journal against replaying a foreign campaign's entries.
	Fingerprint string
	// Kind is the journal kind string ("dist-tasks-<n>" or
	// "dist-crossval-tasks-<n>"), which pins the decomposition width.
	Kind string
	// Seq orders campaigns by creation within the service.
	Seq int
}

// MemStore is the in-memory Store: durable for the life of the process only.
type MemStore struct {
	mu      sync.Mutex
	recs    map[string]CampaignRecord
	results map[string][]memEntry
}

type memEntry struct {
	key string
	raw json.RawMessage
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		recs:    make(map[string]CampaignRecord),
		results: make(map[string][]memEntry),
	}
}

// PutCampaign implements Store.
func (s *MemStore) PutCampaign(rec CampaignRecord) error {
	if rec.ID == "" {
		return fmt.Errorf("dist: store: empty campaign ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs[rec.ID] = rec
	return nil
}

// Campaigns implements Store.
func (s *MemStore) Campaigns() ([]CampaignRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CampaignRecord, 0, len(s.recs))
	for _, rec := range s.recs {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// AppendResult implements Store.
func (s *MemStore) AppendResult(campaignID, key string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("dist: store: marshal result: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[campaignID]; !ok {
		return fmt.Errorf("dist: store: append to unknown campaign %q", campaignID)
	}
	s.results[campaignID] = append(s.results[campaignID], memEntry{key: key, raw: raw})
	return nil
}

// Results implements Store.
func (s *MemStore) Results(campaignID string) (map[string]json.RawMessage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[campaignID]; !ok {
		return nil, fmt.Errorf("dist: store: results for unknown campaign %q", campaignID)
	}
	out := make(map[string]json.RawMessage)
	for _, e := range s.results[campaignID] {
		out[e.key] = e.raw
	}
	return out, nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// DiskStore persists campaigns under a root directory:
//
//	<root>/<id>/campaign.json  — the CampaignRecord, written atomically
//	<root>/<id>/tasks.jsonl    — settled results, internal/campaign journal
//
// Result logs reuse campaign.OpenJournal, so each carries a header binding
// it to the campaign's fingerprint and kind: a journal that does not match
// its record (edited by hand, copied between directories) is rejected on
// reload rather than silently pooled, and a torn final line from a crash is
// truncated away.
type DiskStore struct {
	root string

	mu       sync.Mutex
	journals map[string]*campaign.Journal
}

// NewDiskStore opens (creating if needed) a disk store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: store: %w", err)
	}
	return &DiskStore{root: dir, journals: make(map[string]*campaign.Journal)}, nil
}

// validStoreID guards against campaign IDs that would escape the store root
// or collide with special directory entries when used as a path component.
func validStoreID(id string) error {
	if id == "" || id == "." || id == ".." ||
		strings.ContainsAny(id, "/\\") || strings.ContainsRune(id, 0) {
		return fmt.Errorf("dist: store: invalid campaign ID %q", id)
	}
	return nil
}

func (s *DiskStore) dir(id string) string { return filepath.Join(s.root, id) }

// PutCampaign implements Store. The record is written to a temporary file
// and renamed into place so a crash mid-write leaves either the old record
// or the new one, never a torn file.
func (s *DiskStore) PutCampaign(rec CampaignRecord) error {
	if err := validStoreID(rec.ID); err != nil {
		return err
	}
	dir := s.dir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: store: %w", err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("dist: store: marshal campaign: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "campaign-*.tmp")
	if err != nil {
		return fmt.Errorf("dist: store: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: store: write campaign: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: store: sync campaign: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: store: close campaign: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, "campaign.json")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: store: commit campaign: %w", err)
	}
	return nil
}

// Campaigns implements Store.
func (s *DiskStore) Campaigns() ([]CampaignRecord, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("dist: store: %w", err)
	}
	var out []CampaignRecord
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.root, e.Name(), "campaign.json"))
		if os.IsNotExist(err) {
			continue // crashed between MkdirAll and rename: nothing to resume
		}
		if err != nil {
			return nil, fmt.Errorf("dist: store: %w", err)
		}
		var rec CampaignRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("dist: store: campaign %s: %w", e.Name(), err)
		}
		if rec.ID != e.Name() {
			return nil, fmt.Errorf("dist: store: campaign directory %s holds record for %q", e.Name(), rec.ID)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// journal returns the campaign's open result journal, opening it lazily so
// Campaigns()-only consumers (the -campaigns CLI) never touch task logs.
func (s *DiskStore) journal(campaignID string) (*campaign.Journal, error) {
	if err := validStoreID(campaignID); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.journals[campaignID]; ok {
		return j, nil
	}
	data, err := os.ReadFile(filepath.Join(s.dir(campaignID), "campaign.json"))
	if err != nil {
		return nil, fmt.Errorf("dist: store: append to unknown campaign %q: %w", campaignID, err)
	}
	var rec CampaignRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("dist: store: campaign %s: %w", campaignID, err)
	}
	j, err := campaign.OpenJournal(filepath.Join(s.dir(campaignID), "tasks.jsonl"), rec.Kind, rec.Fingerprint)
	if err != nil {
		return nil, err
	}
	s.journals[campaignID] = j
	return j, nil
}

// AppendResult implements Store.
func (s *DiskStore) AppendResult(campaignID, key string, payload any) error {
	j, err := s.journal(campaignID)
	if err != nil {
		return err
	}
	return j.Append(key, payload)
}

// Results implements Store.
func (s *DiskStore) Results(campaignID string) (map[string]json.RawMessage, error) {
	if err := validStoreID(campaignID); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir(campaignID), "campaign.json"))
	if err != nil {
		return nil, fmt.Errorf("dist: store: results for unknown campaign %q: %w", campaignID, err)
	}
	var rec CampaignRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("dist: store: campaign %s: %w", campaignID, err)
	}
	return campaign.LoadJournal(filepath.Join(s.dir(campaignID), "tasks.jsonl"), rec.Kind, rec.Fingerprint)
}

// Close implements Store.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, j := range s.journals {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.journals, id)
	}
	return first
}
