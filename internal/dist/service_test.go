package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestService spins up a registry-backed service over loopback HTTP and a
// typed client pointed at it.
func newTestService(t *testing.T, cfg RegistryConfig) (*Registry, *Client) {
	t.Helper()
	reg := newTestRegistry(t, cfg)
	srv := httptest.NewServer(NewService(reg).Handler())
	t.Cleanup(srv.Close)
	cl := NewClient(srv.URL, srv.Client())
	cl.Backoff = time.Millisecond
	return reg, cl
}

// TestServiceV1Lifecycle walks a campaign through every v1 route with the
// typed client: create, list, spec, claim/heartbeat/complete, status, report,
// events, and finally cancel on a second campaign.
func TestServiceV1Lifecycle(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, cl := newTestService(t, RegistryConfig{})

	info, err := cl.Create(ctx, CreateCampaignRequest{Tenant: "alice", Priority: 2, Doc: testDoc()})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.State != StateOpen || info.Total != 4 || info.Tenant != "alice" || info.Priority != 2 {
		t.Fatalf("created campaign info %+v", info)
	}

	list, err := cl.Campaigns(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != info.ID {
		t.Fatalf("campaign list %+v", list)
	}

	sr, err := cl.Spec(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Fingerprint != info.Fingerprint || sr.Spec.App != "factorial" {
		t.Fatalf("spec response %+v", sr)
	}

	// Drive every task over the wire.
	for {
		resp, err := cl.Claim(ctx, info.ID, "w")
		if err != nil {
			t.Fatal(err)
		}
		if resp.Done {
			break
		}
		if resp.Task == nil {
			t.Fatal("claim wedged: no task and not done")
		}
		if err := cl.Heartbeat(ctx, info.ID, "w", resp.Task.ID); err != nil {
			t.Fatalf("heartbeat under a live lease: %v", err)
		}
		cr, err := cl.Complete(ctx, info.ID, CompleteRequest{
			Worker: "w", Task: resp.Task.ID, Result: syntheticResult(resp.Task.ID + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !cr.Accepted {
			t.Fatalf("completion not accepted: %+v", cr)
		}
	}

	st, err := cl.Status(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != info.ID || st.State != StateDone || st.Done != 4 {
		t.Fatalf("status %+v, want done 4/4 with campaign identity", st)
	}
	rep, err := cl.Report(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || len(rep.Tasks) != 4 {
		t.Fatalf("report %+v", rep.Summary)
	}

	// The event stream recorded every settle plus the terminal done.
	events, err := cl.Events(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 || events[4].Type != "done" {
		t.Fatalf("events %+v, want 4 task events and a done", events)
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Errorf("event %d has Seq %d", i, ev.Seq)
		}
	}
	// A cursor past the tail returns nothing (long-poll would wait; the
	// campaign is done so nothing more comes — use a short-deadline context).
	shortCtx, shortCancel := context.WithTimeout(ctx, 300*time.Millisecond)
	if evs, err := cl.Events(shortCtx, info.ID, 5); err == nil && len(evs) != 0 {
		t.Errorf("events past the tail: %+v", evs)
	}
	shortCancel()

	// Lifecycle route: cancel a second campaign.
	info2, err := cl.Create(ctx, CreateCampaignRequest{Tenant: "bob", Doc: testDocB()})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CancelCampaign(ctx, info2.ID); err != nil {
		t.Fatal(err)
	}
	st2, err := cl.Status(ctx, info2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateCancelled {
		t.Errorf("state %q after cancel over HTTP", st2.State)
	}

	// Unknown campaign IDs 404 on scoped routes and cancel.
	if _, err := cl.Claim(ctx, "nonesuch", "w"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("claim on unknown campaign: %v, want 404", err)
	}
	if err := cl.CancelCampaign(ctx, "nonesuch"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("cancel of unknown campaign: %v, want 404", err)
	}
}

// TestServiceLegacyAliases: the root-level paths drive the registry's default
// campaign, so a pre-v1 consumer (empty campaign ID on the client) works
// against the service — and 404s helpfully when nothing is registered.
func TestServiceLegacyAliases(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reg, cl := newTestService(t, RegistryConfig{})

	// Before any campaign exists the aliases 404 (and the v1 list serves 200,
	// which is how workers tell a quiet service from a legacy coordinator).
	if _, err := cl.Spec(ctx, ""); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("legacy spec on empty service: %v, want 404", err)
	}
	if _, err := cl.Campaigns(ctx); err != nil {
		t.Fatalf("v1 list on empty service: %v", err)
	}

	info, err := cl.Create(ctx, CreateCampaignRequest{Doc: testDoc()})
	if err != nil {
		t.Fatal(err)
	}

	// The whole task protocol over the legacy aliases.
	sr, err := cl.Spec(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if sr.Fingerprint != info.Fingerprint {
		t.Fatalf("legacy spec fingerprint %q, want default campaign's %q", sr.Fingerprint, info.Fingerprint)
	}
	for {
		resp, err := cl.Claim(ctx, "", "legacy-w")
		if err != nil {
			t.Fatal(err)
		}
		if resp.Done {
			break
		}
		if resp.Task == nil {
			t.Fatal("legacy claim wedged")
		}
		if err := cl.Heartbeat(ctx, "", "legacy-w", resp.Task.ID); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Complete(ctx, "", CompleteRequest{
			Worker: "legacy-w", Task: resp.Task.ID, Result: syntheticResult(resp.Task.ID + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Status(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Done != 4 {
		t.Fatalf("legacy status %+v", st)
	}
	rep, err := cl.Report(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("legacy report incomplete after legacy-driven campaign")
	}
	// The default campaign is the one the registry reports.
	if c, ok := reg.Default(); !ok || c.ID() != info.ID {
		t.Errorf("default campaign %v, want %s", c, info.ID)
	}
}

// TestServiceCreateQuota: the HTTP layer maps ErrQuota to 429.
func TestServiceCreateQuota(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, cl := newTestService(t, RegistryConfig{Quotas: Quotas{MaxOpenCampaigns: 1}})
	if _, err := cl.Create(ctx, CreateCampaignRequest{Tenant: "a", Doc: testDoc()}); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Create(ctx, CreateCampaignRequest{Tenant: "a", Doc: testDocB()})
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("create at quota: %v, want 429", err)
	}
	// A malformed document is a 400, not a quota error.
	_, err = cl.Create(ctx, CreateCampaignRequest{Tenant: "b", Doc: SpecDoc{Class: "register", Goal: "crash"}})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("create of bad document: %v, want 400", err)
	}
}

// TestServiceEventsLongPoll: a poll opened before any event blocks until a
// task settles, then delivers it.
func TestServiceEventsLongPoll(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reg, cl := newTestService(t, RegistryConfig{})
	info, err := cl.Create(ctx, CreateCampaignRequest{Doc: testDoc()})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := reg.Get(info.ID)

	settled := make(chan struct{})
	go func() {
		defer close(settled)
		time.Sleep(100 * time.Millisecond)
		resp := c.Claim("w")
		if resp.Task != nil {
			c.Complete("w", resp.Task.ID, syntheticResult(7))
		}
	}()
	start := time.Now()
	events, err := cl.Events(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-settled
	if len(events) == 0 {
		t.Fatal("long-poll returned empty despite a settle during the hold")
	}
	if events[0].Type != "task" || events[0].Worker != "w" {
		t.Errorf("event %+v, want a worker task settle", events[0])
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("long-poll returned before the settle: it did not block")
	}
}

// TestServiceEventsSSE: ?sse=1 streams one data: frame per event and
// terminates the stream after the terminal done event.
func TestServiceEventsSSE(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reg, cl := newTestService(t, RegistryConfig{})
	info, err := cl.Create(ctx, CreateCampaignRequest{Doc: testDoc()})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := reg.Get(info.ID)

	// Settle the whole campaign concurrently with the stream read.
	go func() {
		for {
			resp := c.Claim("w")
			if resp.Done {
				return
			}
			if resp.Task == nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
			c.Complete("w", resp.Task.ID, syntheticResult(resp.Task.ID+1))
		}
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		cl.Base+V1CampaignPath(info.ID, "events")+"?sse=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		events = append(events, ev)
	}
	// The scanner ends because the server closed the stream after "done" —
	// not because the client gave up.
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 || events[len(events)-1].Type != "done" {
		t.Fatalf("SSE events %+v, want 4 tasks and a terminal done", events)
	}
}

// TestClientRetryPolicy pins the retry semantics to the behaviors the fleet
// depends on: 5xx and transport errors retry with backoff, 4xx is decisive,
// heartbeat 409 maps to ErrLeaseLost without retrying, and create never
// retries (it is not idempotent).
func TestClientRetryPolicy(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	t.Run("5xx retried until success", func(t *testing.T) {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) <= 2 {
				http.Error(w, "proxy hiccup", http.StatusBadGateway)
				return
			}
			writeJSON(w, StatusResponse{Total: 4, Verdict: "open"})
		}))
		defer srv.Close()
		cl := NewClient(srv.URL, srv.Client())
		cl.Backoff = time.Millisecond
		st, err := cl.Status(ctx, "")
		if err != nil {
			t.Fatalf("status after transient 502s: %v", err)
		}
		if st.Total != 4 || calls.Load() != 3 {
			t.Errorf("status %+v after %d calls, want success on attempt 3", st, calls.Load())
		}
	})

	t.Run("5xx exhausts attempts and fails", func(t *testing.T) {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			http.Error(w, "down", http.StatusServiceUnavailable)
		}))
		defer srv.Close()
		cl := NewClient(srv.URL, srv.Client())
		cl.Backoff = time.Millisecond
		cl.Retries = 3
		if _, err := cl.Status(ctx, ""); err == nil {
			t.Fatal("status succeeded against a dead server")
		}
		if calls.Load() != 3 {
			t.Errorf("%d attempts, want exactly Retries=3", calls.Load())
		}
	})

	t.Run("4xx is decisive, no retry", func(t *testing.T) {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			http.Error(w, "no such campaign", http.StatusNotFound)
		}))
		defer srv.Close()
		cl := NewClient(srv.URL, srv.Client())
		cl.Backoff = time.Millisecond
		if _, err := cl.Status(ctx, "gone"); err == nil {
			t.Fatal("status on 404 succeeded")
		}
		if calls.Load() != 1 {
			t.Errorf("%d attempts on a 404, want 1", calls.Load())
		}
	})

	t.Run("heartbeat 409 wraps ErrLeaseLost, single attempt", func(t *testing.T) {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			http.Error(w, "dist: lease lost", http.StatusConflict)
		}))
		defer srv.Close()
		cl := NewClient(srv.URL, srv.Client())
		cl.Backoff = time.Millisecond
		err := cl.Heartbeat(ctx, "", "w", 0)
		if !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("heartbeat 409: %v, want ErrLeaseLost", err)
		}
		if calls.Load() != 1 {
			t.Errorf("%d heartbeat attempts, want 1", calls.Load())
		}
	})

	t.Run("create never retries", func(t *testing.T) {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			http.Error(w, "busy", http.StatusServiceUnavailable)
		}))
		defer srv.Close()
		cl := NewClient(srv.URL, srv.Client())
		cl.Backoff = time.Millisecond
		if _, err := cl.Create(ctx, CreateCampaignRequest{Doc: testDoc()}); err == nil {
			t.Fatal("create against a 503 succeeded")
		}
		if calls.Load() != 1 {
			t.Errorf("%d create attempts, want 1 (a retry could register the document twice)", calls.Load())
		}
	})

	t.Run("complete retried: the coordinator dedups reposts", func(t *testing.T) {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) == 1 {
				http.Error(w, "hiccup", http.StatusBadGateway)
				return
			}
			writeJSON(w, CompleteResponse{Accepted: true})
		}))
		defer srv.Close()
		cl := NewClient(srv.URL, srv.Client())
		cl.Backoff = time.Millisecond
		resp, err := cl.Complete(ctx, "", CompleteRequest{Worker: "w", Task: 0, Result: syntheticResult(1)})
		if err != nil || !resp.Accepted {
			t.Fatalf("complete after a transient 502: %+v, %v", resp, err)
		}
		if calls.Load() != 2 {
			t.Errorf("%d complete attempts, want 2", calls.Load())
		}
	})
}
