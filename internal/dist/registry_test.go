package dist

import (
	"encoding/json"
	"errors"
	"testing"
)

// testDocB is a second, distinct campaign document (different input, so a
// different fingerprint, and a different decomposition width).
func testDocB() SpecDoc {
	doc := testDoc()
	doc.Name = "factorial-register-6"
	doc.Input = []int64{6}
	doc.Tasks = 3
	return doc
}

func newTestRegistry(t *testing.T, cfg RegistryConfig) *Registry {
	t.Helper()
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// settleCampaign drives every remaining task of one campaign with synthetic
// results through the real claim/complete path.
func settleCampaign(t *testing.T, c *Coordinator, worker string) {
	t.Helper()
	for {
		resp := c.Claim(worker)
		if resp.Done {
			return
		}
		if resp.Task == nil {
			t.Fatalf("campaign %s wedged: no task and not done", c.ID())
		}
		if _, err := c.Complete(worker, resp.Task.ID, syntheticResult(resp.Task.ID+1)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRegistryLifecycle walks create → open → done and create → cancelled,
// checking the store record tracks each transition.
func TestRegistryLifecycle(t *testing.T) {
	store := NewMemStore()
	r := newTestRegistry(t, RegistryConfig{Store: store})

	a, err := r.Create(testDoc(), "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == "" || a.Tenant() != "alice" {
		t.Fatalf("campaign identity not set: id=%q tenant=%q", a.ID(), a.Tenant())
	}
	if got, want := a.ID(), a.Fingerprint()[:12]+"-1"; got != want {
		t.Errorf("campaign ID %q, want fingerprint prefix scheme %q", got, want)
	}
	if r.Drained() {
		t.Error("registry with an open campaign reports drained")
	}

	settleCampaign(t, a, "w")
	if err := r.SyncState(a.ID()); err != nil {
		t.Fatal(err)
	}
	if st := a.State(); st != StateDone {
		t.Errorf("state %q after all tasks settled, want %q", st, StateDone)
	}
	recs, err := store.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].State != StateDone {
		t.Errorf("stored record %+v, want state done", recs)
	}

	b, err := r.Create(testDocB(), "bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Cancel(b.ID()); err != nil {
		t.Fatal(err)
	}
	if st := b.State(); st != StateCancelled {
		t.Errorf("state %q after cancel, want %q", st, StateCancelled)
	}
	if resp := b.Claim("w"); !resp.Done {
		t.Error("cancelled campaign still serves claims")
	}
	if resp, _ := b.Complete("w", 0, syntheticResult(1)); !resp.Duplicate {
		t.Error("late completion on a cancelled campaign not dropped")
	}
	// Cancel is idempotent; unknown IDs are ErrNoCampaign.
	if err := r.Cancel(b.ID()); err != nil {
		t.Errorf("re-cancel: %v", err)
	}
	if err := r.Cancel("nonesuch"); !errors.Is(err, ErrNoCampaign) {
		t.Errorf("cancel of unknown ID: %v, want ErrNoCampaign", err)
	}

	if !r.Drained() {
		t.Error("registry with only done/cancelled campaigns not drained")
	}
	list := r.List()
	if len(list.Campaigns) != 2 {
		t.Fatalf("list %+v, want 2 campaigns", list)
	}
}

// TestRegistryOpenCampaignQuota: MaxOpenCampaigns bounds each tenant
// independently, and a settled campaign frees its slot.
func TestRegistryOpenCampaignQuota(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{Quotas: Quotas{MaxOpenCampaigns: 1}})
	a, err := r.Create(testDoc(), "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(testDocB(), "alice", 0); !errors.Is(err, ErrQuota) {
		t.Fatalf("second open campaign for alice: %v, want ErrQuota", err)
	}
	// Another tenant is unaffected.
	if _, err := r.Create(testDocB(), "bob", 0); err != nil {
		t.Fatalf("bob's first campaign refused: %v", err)
	}
	// Settling alice's campaign frees her slot.
	settleCampaign(t, a, "w")
	if _, err := r.Create(testDocB(), "alice", 0); err != nil {
		t.Fatalf("create after settling under quota: %v", err)
	}
}

// TestFleetClaimPriorityAndRoundRobin: the dispatcher serves the
// highest-priority open campaign first and round-robins equals by
// least-recently-served.
func TestFleetClaimPriorityAndRoundRobin(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	a, err := r.Create(testDoc(), "t", 0) // 4 tasks
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Create(testDocB(), "t", 0) // 3 tasks
	if err != nil {
		t.Fatal(err)
	}
	hi, err := r.Create(SpecDoc{
		Name: "hi", App: "factorial", Input: []int64{4},
		Class: "register", Goal: "incorrect-output", Watchdog: 400, Tasks: 2,
	}, "t", 5)
	if err != nil {
		t.Fatal(err)
	}

	// The high-priority campaign is drained of claimable tasks first.
	for i := 0; i < 2; i++ {
		fr := r.FleetClaim("w")
		if fr.Campaign != hi.ID() || fr.Task == nil {
			t.Fatalf("claim %d went to %q, want the priority-5 campaign %q", i, fr.Campaign, hi.ID())
		}
	}
	// Its tasks are all leased now; equal-priority a and b alternate, starting
	// from creation order.
	want := []string{a.ID(), b.ID(), a.ID(), b.ID()}
	for i, id := range want {
		fr := r.FleetClaim("w")
		if fr.Campaign != id || fr.Task == nil {
			t.Fatalf("claim %d went to %q (task %v), want round-robin %q", i, fr.Campaign, fr.Task, id)
		}
	}
	if fr := r.FleetClaim("w"); fr.Done {
		t.Error("fleet reported done with open campaigns")
	}
}

// TestFleetClaimLeasedTaskQuota: a tenant at MaxLeasedTasks is skipped —
// other tenants keep claiming — and completing a task reopens the tap.
func TestFleetClaimLeasedTaskQuota(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{Quotas: Quotas{MaxLeasedTasks: 2}})
	a, err := r.Create(testDoc(), "alice", 1) // higher priority: served first
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Create(testDocB(), "bob", 0)
	if err != nil {
		t.Fatal(err)
	}

	var aliceTasks []int
	for i := 0; i < 2; i++ {
		fr := r.FleetClaim("w")
		if fr.Campaign != a.ID() || fr.Task == nil {
			t.Fatalf("claim %d: %+v, want alice's campaign", i, fr)
		}
		aliceTasks = append(aliceTasks, fr.Task.ID)
	}
	// Alice is at quota: the next claim skips her open campaign entirely.
	fr := r.FleetClaim("w")
	if fr.Campaign != b.ID() || fr.Task == nil {
		t.Fatalf("claim at alice's quota: %+v, want bob's campaign", fr)
	}
	// A completion frees one of alice's leases; she is served again.
	if _, err := a.Complete("w", aliceTasks[0], syntheticResult(1)); err != nil {
		t.Fatal(err)
	}
	fr = r.FleetClaim("w")
	if fr.Campaign != a.ID() || fr.Task == nil {
		t.Fatalf("claim after completion: %+v, want alice's campaign again", fr)
	}
}

// TestFleetClaimDoneSemantics: an empty registry is "waiting", not done; a
// registry whose campaigns all settled is done.
func TestFleetClaimDoneSemantics(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	if fr := r.FleetClaim("w"); fr.Done {
		t.Error("empty registry reported Done: a fleet started before its first submission would exit")
	}
	a, err := r.Create(testDoc(), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	settleCampaign(t, a, "w")
	fr := r.FleetClaim("w")
	if !fr.Done || fr.OpenCampaigns != 0 {
		t.Errorf("drained registry claim %+v, want Done with 0 open", fr)
	}
}

// TestRegistryRestartResume: a new registry over the same disk store resumes
// every non-cancelled campaign — the done one restored in full, the open one
// with only its unsettled tasks claimable — warms the fleet result cache from
// the journaled results, and lists the cancelled one as a tombstone.
func TestRegistryRestartResume(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewRegistry(RegistryConfig{Store: store1})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := r1.Create(testDoc(), "alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r1.Create(testDocB(), "bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := r1.Create(SpecDoc{
		Name: "doomed", App: "factorial", Input: []int64{4},
		Class: "register", Goal: "incorrect-output", Watchdog: 400, Tasks: 2,
	}, "carol", 0)
	if err != nil {
		t.Fatal(err)
	}
	settleCampaign(t, a1, "w") // a: fully done
	// b: exactly one of three tasks settled.
	resp := b1.Claim("w")
	if resp.Task == nil {
		t.Fatal("claim on b failed")
	}
	firstB := resp.Task.ID
	if _, err := b1.Complete("w", firstB, syntheticResult(100)); err != nil {
		t.Fatal(err)
	}
	if err := r1.Cancel(c1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := r1.SyncState(a1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart: fresh store handle, fresh registry, fresh result cache.
	store2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRegistry(RegistryConfig{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	a2, ok := r2.Get(a1.ID())
	if !ok {
		t.Fatal("done campaign not resumed")
	}
	if st := a2.State(); st != StateDone {
		t.Errorf("resumed done campaign state %q", st)
	}
	if info := a2.Info(); info.Done != info.Total || info.Total != 4 {
		t.Errorf("resumed done campaign info %+v", info)
	}
	// Restored results carry the exact journaled payloads.
	if got := a2.Report().Tasks[0].StatesExplored; got != 1 {
		t.Errorf("restored task 0 states %d, want 1", got)
	}

	b2, ok := r2.Get(b1.ID())
	if !ok {
		t.Fatal("open campaign not resumed")
	}
	if st := b2.State(); st != StateOpen {
		t.Errorf("resumed open campaign state %q", st)
	}
	if info := b2.Info(); info.Done != 1 || info.Total != 3 {
		t.Errorf("resumed open campaign info %+v, want 1/3 done", info)
	}
	// Only the unsettled tasks are re-served.
	served := map[int]bool{}
	for {
		resp := b2.Claim("w2")
		if resp.Task == nil {
			break
		}
		if resp.Task.ID == firstB {
			t.Fatalf("journaled task %d re-served after restart", firstB)
		}
		served[resp.Task.ID] = true
	}
	if len(served) != 2 {
		t.Errorf("resumed campaign served %v, want the 2 unsettled tasks", served)
	}

	// The cancelled campaign is a tombstone: listed, not claimable.
	if _, ok := r2.Get(c1.ID()); ok {
		t.Error("cancelled campaign resumed as live")
	}
	var tomb *CampaignInfo
	for i, info := range r2.List().Campaigns {
		if info.ID == c1.ID() {
			tomb = &r2.List().Campaigns[i]
		}
	}
	if tomb == nil || tomb.State != StateCancelled {
		t.Errorf("cancelled campaign not listed as tombstone: %+v", tomb)
	}

	// The fleet cache was re-warmed from the journaled results: 4 from a, 1
	// from b.
	if got := r2.Cache().Len(); got != 5 {
		t.Errorf("resumed cache holds %d results, want 5", got)
	}
}

// TestResubmitSettlesFromCache: a second campaign over the same document is
// answered from the fleet result cache at claim time — no worker lease — and
// its merged report is byte-identical to the first run's. Failed tasks are
// not cached and are re-served.
func TestResubmitSettlesFromCache(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	a, err := r.Create(testDoc(), "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Tasks 0-2 settle normally; task 3 fails (worker OOM, say).
	for {
		resp := a.Claim("w")
		if resp.Done {
			break
		}
		if resp.Task == nil {
			t.Fatal("claim wedged")
		}
		res := syntheticResult(resp.Task.ID + 1)
		if resp.Task.ID == 3 {
			res = TaskResult{Failure: "worker exploded"}
		}
		if _, err := a.Complete("w", resp.Task.ID, res); err != nil {
			t.Fatal(err)
		}
	}

	b, err := r.Create(testDoc(), "bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID() == a.ID() {
		t.Fatal("resubmission reused the campaign ID")
	}
	resp := b.Claim("probe")
	// Tasks 0-2 settle from cache during this single claim; the failed task 3
	// was never cached, so the probe leases it for a real re-run.
	if resp.Task == nil || resp.Task.ID != 3 {
		t.Fatalf("claim on resubmission %+v, want a lease on the uncached failed task 3", resp)
	}
	st := b.Status()
	if st.Counters.TasksFromCache != 3 {
		t.Errorf("TasksFromCache %d, want 3", st.Counters.TasksFromCache)
	}
	if info := b.Info(); info.FromCache != 3 || info.Done != 3 {
		t.Errorf("resubmitted campaign info %+v, want 3 done from cache", info)
	}
	if _, err := b.Complete("probe", 3, syntheticResult(4)); err != nil {
		t.Fatal(err)
	}

	// The cache-settled tasks are byte-identical to the originals.
	for id := 0; id < 3; id++ {
		got, err := json.Marshal(b.Report().Tasks[id])
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(a.Report().Tasks[id])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("task %d cache-settled report differs:\n got  %s\n want %s", id, got, want)
		}
	}

	// The cache-settled events are marked.
	events, _ := b.EventsSince(0)
	fromCache := 0
	for _, ev := range events {
		if ev.FromCache {
			fromCache++
		}
	}
	if fromCache != 3 {
		t.Errorf("%d FromCache events, want 3", fromCache)
	}
}
