package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"symplfied/internal/cluster"
)

// TestEndToEndDeterminism is the subsystem's acceptance check: a coordinator
// plus two workers over loopback HTTP — with a third "worker" that claims a
// task and dies, forcing a lease expiry and reassignment — must pool a
// merged report byte-identical (under encoding/json) to a single-process
// cluster.Run over the same spec and split. The zombie's late completion
// must be dropped as a duplicate.
func TestEndToEndDeterminism(t *testing.T) {
	doc := testDoc()

	// Single-process reference: same document, same lowering, same split.
	spec, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	tasks := cluster.Split(spec.Injections, doc.Tasks)
	refReports := cluster.Run(spec, tasks, cluster.Config{
		Workers:            2,
		TaskStateBudget:    doc.TaskStateBudget,
		MaxFindingsPerTask: doc.MaxFindingsPerTask,
	})
	want, err := json.Marshal(MergedReport{
		Complete: true,
		Tasks:    refReports,
		Summary:  cluster.Summarize(refReports),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Distributed run. A short lease keeps the kill-and-reassign path fast.
	coord, err := NewCoordinator(CoordinatorConfig{Doc: doc, Lease: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// The zombie claims a task and goes silent: a worker killed mid-task.
	// Its lease must lapse and the task be re-served to a live worker.
	zombie := coord.Claim("zombie")
	if zombie.Task == nil {
		t.Fatal("zombie claimed nothing")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		stats = map[string]WorkerStats{}
		errs  = map[string]error{}
	)
	for _, id := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			s, err := RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				ID:          id,
				Poll:        50 * time.Millisecond,
			})
			mu.Lock()
			stats[id], errs[id] = s, err
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("worker %s: %v", id, err)
		}
	}

	select {
	case <-coord.Done():
	default:
		t.Fatal("workers exited but the campaign is not done")
	}
	if got := coord.Status().Counters.TasksReassigned; got < 1 {
		t.Errorf("killed worker's task was never reassigned (reassigned=%d)", got)
	}

	// The zombie rises and posts its stale claim: dropped as a duplicate.
	resp, err := coord.Complete("zombie", zombie.Task.ID, syntheticResult(1))
	if err != nil || !resp.Duplicate {
		t.Errorf("zombie completion not deduplicated: %+v, %v", resp, err)
	}

	// The merged report over HTTP is byte-identical to the reference.
	httpResp, err := srv.Client().Get(srv.URL + PathReport)
	if err != nil {
		t.Fatal(err)
	}
	var merged MergedReport
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	got := bytes.TrimSpace(body.Bytes())
	if err := json.Unmarshal(got, &merged); err != nil {
		t.Fatal(err)
	}
	if !merged.Complete {
		t.Fatal("merged report not marked complete")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("distributed report differs from single-process cluster.Run:\n got  %s\n want %s", got, want)
	}
	if merged.Summary.Tasks != len(tasks) || len(merged.Summary.Findings) == 0 {
		t.Errorf("merged summary implausible: %+v", merged.Summary)
	}

	// The pooled exploration counters equal the single-process ones exactly
	// (they are deterministic tallies merged like findings), and they are not
	// trivially zero — the factorial sweep must fork at comparisons.
	refSummary := cluster.Summarize(refReports)
	if merged.Summary.Exec != refSummary.Exec {
		t.Errorf("pooled exec counters differ from single-process cluster.Run:\n got  %+v\n want %+v",
			merged.Summary.Exec, refSummary.Exec)
	}
	if refSummary.Exec.Forks() == 0 || refSummary.Exec.MaxFrontier == 0 {
		t.Errorf("reference exec counters implausibly zero: %+v", refSummary.Exec)
	}

	// Both live workers did real work.
	totalDone := 0
	for id, s := range stats {
		if s.Claimed == 0 {
			t.Errorf("worker %s never claimed a task", id)
		}
		totalDone += s.Completed
	}
	if totalDone != len(tasks) {
		t.Errorf("workers completed %d tasks, campaign has %d", totalDone, len(tasks))
	}

	// Fleet status over HTTP sees all three workers and a settled verdict.
	stResp, err := srv.Client().Get(srv.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if len(st.Workers) != 3 {
		t.Errorf("status lists %d workers, want 3 (w1, w2, zombie): %+v", len(st.Workers), st.Workers)
	}
	if st.Verdict != "refuted" {
		t.Errorf("verdict %q, want refuted (factorial register errors are findable)", st.Verdict)
	}

	// The obs operational endpoints are served on the same mux: /debug/vars
	// carries the registry snapshot under "symplfied", and /metrics serves
	// the Prometheus text exposition.
	dv, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Snap map[string]any `json:"symplfied"`
	}
	if err := json.NewDecoder(dv.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	dv.Body.Close()
	for _, name := range []string{"symplfied_dist_tasks_completed_total", "symplfied_dist_tasks_served_total"} {
		if v, _ := vars.Snap[name].(float64); v == 0 {
			t.Errorf("registry counter %s not published at /debug/vars: %v", name, vars.Snap[name])
		}
	}
	pm, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promText := new(bytes.Buffer)
	promText.ReadFrom(pm.Body)
	pm.Body.Close()
	if !bytes.Contains(promText.Bytes(), []byte("symplfied_dist_tasks_completed_total")) {
		t.Errorf("/metrics missing coordinator counters:\n%s", promText.String())
	}
}

// TestTimedOutTaskSettles guards against a fleet livelock: a sweep cut short
// by the per-injection wall-clock timeout reports Interrupted while the
// task's context is still live. The worker must post that partial result —
// it is exactly what a single-process cluster.Run records before finishing —
// not abandon the task, or the coordinator would re-lease it, the next worker
// would time out the same injection, and the campaign would never complete.
func TestTimedOutTaskSettles(t *testing.T) {
	doc := testDoc()
	// Every activated injection deadlines before exploring a single state.
	doc.PerInjectionTimeout = time.Nanosecond

	coord, err := NewCoordinator(CoordinatorConfig{Doc: doc})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stats, err := RunWorker(ctx, WorkerConfig{
		Coordinator: srv.URL,
		ID:          "w",
		Poll:        20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("campaign with timed-out injections never settled (tasks abandoned instead of posted)")
	}
	if stats.Abandoned != 0 {
		t.Errorf("timed-out tasks abandoned %d times, want 0", stats.Abandoned)
	}
	rep := coord.Report()
	if !rep.Complete {
		t.Fatal("merged report not complete")
	}
	if stats.Completed != len(rep.Tasks) {
		t.Errorf("worker completed %d of %d tasks", stats.Completed, len(rep.Tasks))
	}
	// The timeouts are recorded, not hidden: the pooled report marks the
	// deadlined tasks Interrupted, just as cluster.Run would.
	if rep.Summary.Interrupted == 0 {
		t.Error("no task marked Interrupted despite per-injection timeouts")
	}
}

// TestWorkerRejectsForeignFingerprint: a worker whose locally-lowered spec
// fingerprints differently from the coordinator's must refuse to serve.
func TestWorkerRejectsForeignFingerprint(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Doc: testDoc()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	// Corrupt the fingerprint the coordinator hands out.
	sr := coord.SpecResponse()
	sr.Fingerprint = "not-the-real-fingerprint"
	mux := http.NewServeMux()
	mux.HandleFunc(PathSpec, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(sr)
	})
	mux.Handle("/", coord.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := RunWorker(ctx, WorkerConfig{Coordinator: srv.URL, ID: "w"}); err == nil {
		t.Error("worker served a campaign with a mismatched fingerprint")
	}
}
