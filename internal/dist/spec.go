// Package dist is the networked tier of the paper's experiment harness: the
// paper ran each SymPLFIED study by splitting the search into independent
// tasks dispatched to a 150-node Opteron cluster (Section 6.1).
// internal/cluster reproduces the decomposition on one machine's cores; this
// package spans machines — and, beyond the paper, spans campaigns: it is a
// persistent multi-tenant campaign service, not a one-shot coordinator.
//
// A Registry owns any number of campaigns at once. Each campaign lowers a
// declarative SpecDoc, partitions its injection space with cluster.Split,
// and serves tasks over the versioned JSON HTTP API (Service; see the
// endpoint table in protocol.go) to pull-based workers. Workers claim either
// from one campaign's scoped routes or from the fleet-level dispatcher,
// which ranks open campaigns by priority (round-robining equals) and
// enforces per-tenant quotas on open campaigns and leased tasks. Each
// claimed task runs under a renewable lease, is swept with
// cluster.RunTaskCtx (keeping the checker's per-injection timeout and panic
// isolation), and its serialized per-injection reports are posted back.
//
// Durability is a pluggable Store behind internal/campaign's JSONL journal
// format: every campaign's record and settled results persist, so a killed
// service resumes every open campaign — not just one checkpoint path.
// Settled results also feed a fleet-wide content-addressed ResultCache
// keyed by (fingerprint, split width, task, budgets): a re-submitted
// document's tasks are answered from cache at claim time without a worker
// lease. Findings stream to subscribers over per-campaign event feeds
// (long-poll or SSE) as tasks settle.
//
// The original single-campaign machinery remains: Coordinator still
// reassigns tasks whose lease heartbeats lapse, drops duplicate completions
// from re-claimed tasks, and pools results into a merged report identical —
// byte for byte — to a single-process cluster.Run per campaign; the legacy
// root-level HTTP paths alias onto the registry's default campaign.
package dist

import (
	"fmt"
	"time"

	"symplfied"
	"symplfied/internal/checker"
	"symplfied/internal/cli"
	"symplfied/internal/crossval"
	"symplfied/internal/query"
)

// SpecDoc is the declarative, serializable description of one distributed
// campaign. It deliberately carries sources and names rather than built
// values: the coordinator and every worker lower the same document through
// symplfied.SearchSpec.CheckerSpec, so all parties construct the identical
// search (program, detectors, predicate, injection enumeration), and the
// campaign fingerprint verifies they did.
type SpecDoc struct {
	// Name labels the campaign (reports, program name for -file sources).
	Name string
	// App selects a built-in benchmark application; mutually exclusive with
	// Source.
	App string `json:",omitempty"`
	// Source is the program text (SymPLFIED assembly, or MIPS dialect when
	// MIPS is set) when the campaign analyzes a file.
	Source string `json:",omitempty"`
	// MIPS marks Source as MIPS-dialect assembly.
	MIPS bool `json:",omitempty"`
	// Input is the program input stream.
	Input []int64 `json:",omitempty"`
	// Class names the error class to enumerate (register | memory | control
	// | decode).
	Class string
	// Goal names the search goal (err-output | incorrect-output |
	// wrong-advisory | crash | hang | detected).
	Goal string
	// Watchdog bounds each symbolic path (0: default).
	Watchdog int `json:",omitempty"`
	// Tasks is the decomposition width (paper: 150 for tcas, 312 for
	// replace). 0 means one task.
	Tasks int
	// TaskStateBudget bounds each task's explored states (the analogue of
	// the paper's 30-minute allotment). 0 selects the cluster default.
	TaskStateBudget int `json:",omitempty"`
	// MaxFindingsPerTask caps findings per task (paper: 10). 0 is unlimited.
	MaxFindingsPerTask int `json:",omitempty"`
	// PerInjectionTimeout bounds the wall clock of a single injection
	// (0: none). Note that wall-clock outcomes are machine-dependent; leave
	// zero when bit-identical pooled reports matter.
	PerInjectionTimeout time.Duration `json:",omitempty"`
	// DisableAffineSolver reverts to the paper's coarser constraint model.
	DisableAffineSolver bool `json:",omitempty"`
	// Permanent turns every register/memory injection into a stuck-at fault.
	Permanent bool `json:",omitempty"`

	// Crossval switches the campaign from a symbolic search to a
	// concrete↔symbolic cross-validation sweep (internal/crossval): tasks are
	// slices of injection sites rather than symbolic injections, and the
	// merged report is a crossval mismatch report. Class and Goal are unused
	// in this mode. TaskStateBudget becomes the per-point symbolic budget and
	// PerInjectionTimeout the per-trial wall clock.
	Crossval bool `json:",omitempty"`
	// Seed drives crossval's per-site random value derivation.
	Seed int64 `json:",omitempty"`
	// RandomPerReg is crossval's number of seeded random values per site on
	// top of the three extremes (0: the paper's 3).
	RandomPerReg int `json:",omitempty"`
}

// loadUnit resolves the document's program source exactly the same way for
// every party of a campaign.
func (d SpecDoc) loadUnit() (*symplfied.Unit, error) {
	var (
		unit *symplfied.Unit
		err  error
	)
	switch {
	case d.App != "" && d.Source != "":
		return nil, fmt.Errorf("dist: spec has both App and Source")
	case d.App != "":
		unit, err = cli.BuiltinApp(d.App)
	case d.MIPS:
		var prog *symplfied.Program
		prog, err = symplfied.TranslateMIPS(d.name(), d.Source)
		if err == nil {
			unit = &symplfied.Unit{Program: prog}
		}
	case d.Source != "":
		unit, err = symplfied.Assemble(d.name(), d.Source)
	default:
		return nil, fmt.Errorf("dist: spec has neither App nor Source")
	}
	if err != nil {
		return nil, fmt.Errorf("dist: load program: %w", err)
	}
	return unit, nil
}

// Build lowers the document to the internal checker spec. Every party of a
// distributed campaign calls exactly this, so equal documents yield equal
// specs — and equal campaign fingerprints.
func (d SpecDoc) Build() (checker.Spec, error) {
	if d.Crossval {
		return checker.Spec{}, fmt.Errorf("dist: crossval campaign lowers via BuildCrossval, not Build")
	}
	unit, err := d.loadUnit()
	if err != nil {
		return checker.Spec{}, err
	}
	class, ok := query.ClassByName(d.Class)
	if !ok {
		return checker.Spec{}, fmt.Errorf("dist: unknown error class %q", d.Class)
	}
	goal, ok := query.GoalByName(d.Goal)
	if !ok {
		return checker.Spec{}, fmt.Errorf("dist: unknown goal %q", d.Goal)
	}
	return symplfied.SearchSpec{
		Unit:  unit,
		Input: d.Input,
		Class: class,
		Goal:  goal,
		Limits: symplfied.Limits{
			Watchdog:            d.Watchdog,
			StateBudget:         d.TaskStateBudget,
			MaxFindings:         d.MaxFindingsPerTask,
			PerInjectionTimeout: d.PerInjectionTimeout,
		},
		DisableAffineSolver: d.DisableAffineSolver,
		Permanent:           d.Permanent,
	}.CheckerSpec()
}

// BuildCrossval lowers the document to a cross-validation spec. Like Build it
// is the single lowering path for every party, so equal documents yield equal
// crossval fingerprints.
func (d SpecDoc) BuildCrossval() (crossval.Spec, error) {
	if !d.Crossval {
		return crossval.Spec{}, fmt.Errorf("dist: spec is not a crossval campaign")
	}
	unit, err := d.loadUnit()
	if err != nil {
		return crossval.Spec{}, err
	}
	return crossval.Spec{
		Program:         unit.Program,
		Detectors:       unit.Detectors,
		Input:           d.Input,
		Watchdog:        d.Watchdog,
		Seed:            d.Seed,
		RandomPerReg:    d.RandomPerReg,
		StateBudget:     d.TaskStateBudget,
		PerTrialTimeout: d.PerInjectionTimeout,
	}, nil
}

func (d SpecDoc) name() string {
	if d.Name != "" {
		return d.Name
	}
	return "campaign"
}
