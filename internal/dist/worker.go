package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"symplfied/internal/campaign"
	"symplfied/internal/cluster"
	"symplfied/internal/crossval"
	"symplfied/internal/obs"
	"symplfied/internal/summary"
)

// Worker-side live metrics on the shared obs registry, served by the
// symworker binary's -metrics-addr endpoint. Lease and heartbeat health is
// the fleet's early-warning signal: rising heartbeat failures or lost leases
// mean the coordinator (or the network) is struggling before any task
// visibly fails.
var (
	wClaimed    = obs.Default().Counter(obs.MWorkerClaimed)
	wCompleted  = obs.Default().Counter(obs.MWorkerCompleted)
	wDuplicates = obs.Default().Counter(obs.MWorkerDuplicates)
	wAbandoned  = obs.Default().Counter(obs.MWorkerAbandoned)
	wHeartbeats = obs.Default().Counter(obs.MWorkerHeartbeats)
	wHBFailures = obs.Default().Counter(obs.MWorkerHBFailures)
	wLeasesLost = obs.Default().Counter(obs.MWorkerLeasesLost)
	wPostBytes  = obs.Default().Counter(obs.MWorkerPostBytes)
	wUploadSecs = obs.Default().Histogram(obs.MWorkerUploadSecond, nil)
)

// WorkerConfig configures a pull-based campaign worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8080).
	Coordinator string
	// ID names this worker in leases and fleet status. Required.
	ID string
	// Client is the HTTP client (nil: a client with a sane timeout).
	Client *http.Client
	// Poll is how long to wait between claims when every remaining task is
	// leased elsewhere (0: 500ms).
	Poll time.Duration
	// OnTask, if set, is called when a task is claimed and again when it
	// settles (posted, abandoned, or lost), for CLI progress output.
	OnTask func(event string, task int)
	// Parallelism fans each leased task's injection sweep across this many
	// cores (checker.Spec.Parallelism semantics: 0 selects GOMAXPROCS, 1 is
	// sequential). A worker holds one lease at a time, so this is how a node
	// uses all its cores on one task. Per-node and operational: it is not
	// part of the campaign spec and never enters the fingerprint, so a fleet
	// may mix parallelism levels freely.
	Parallelism int
	// PruneDead enables liveness-based injection pruning
	// (checker.Spec.PruneDeadInjections) on this worker. Like Parallelism it
	// is per-node and operational — absent from the campaign spec and the
	// fingerprint — because a pruned task result is identical to an unpruned
	// one apart from the Pruned markers, so a fleet may mix pruning and
	// non-pruning workers: the pooled verdicts and tallies are unchanged,
	// and only the markers record which node proved what. The node builds
	// one liveness analysis at startup and shares the representative memo
	// across every task it leases.
	PruneDead bool
	// UseSummaries enables compositional fault summaries
	// (checker.Spec.UseSummaries) on this worker. Per-node and operational
	// like PruneDead: a summarized task result is identical to a plain one
	// apart from the Summarized markers, so the fleet may mix. The node
	// builds one summary set at startup and shares it across every task.
	UseSummaries bool
	// MergeStates enables post-dominator state merging and cycle
	// acceleration (checker.Spec.MergeStates) on this worker. Per-node and
	// operational like PruneDead: a merged task result carries identical
	// verdicts and findings, only its Merged markers and lower state counts
	// differ, so the fleet may mix merging and non-merging workers. The
	// node builds one control-flow analysis at startup and shares it across
	// every task it leases.
	MergeStates bool
	// ShareSummaryCache backs the node's summary cache with the
	// coordinator's /summary endpoints, so a function any worker analyzed
	// is a cache hit fleet-wide. Implies UseSummaries.
	ShareSummaryCache bool
}

// WorkerStats summarizes one worker's run.
type WorkerStats struct {
	// Claimed counts tasks leased to this worker.
	Claimed int
	// Completed counts results the coordinator accepted.
	Completed int
	// Duplicates counts results the coordinator dropped as already settled.
	Duplicates int
	// Abandoned counts tasks dropped mid-sweep (cancellation or lost lease).
	Abandoned int
}

// RunWorker serves one worker until the campaign completes or ctx is
// cancelled. It fetches the campaign spec, lowers it locally, verifies the
// fingerprint against the coordinator's, then loops: claim a task, sweep it
// with cluster.RunTaskCtx under a renewable lease (heartbeats every lease/3;
// a lost lease cancels the sweep), and post the per-injection reports back.
// Cancellation mid-task abandons the task — its lease lapses and the
// coordinator re-serves it — and returns cleanly with the stats so far.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	var stats WorkerStats
	if cfg.ID == "" {
		return stats, fmt.Errorf("dist: worker needs an ID")
	}
	// No global client timeout: completion posts carry whole task results
	// (every finding with its trace) and can legitimately take minutes.
	// Small control requests get per-call deadlines instead.
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}

	sr, err := fetchSpec(ctx, client, cfg.Coordinator)
	if err != nil {
		return stats, err
	}
	// Lower the document locally and verify the fingerprint, then wrap the
	// mode's sweep in a closure so the claim/heartbeat/post loop below is
	// shared between symbolic-search and crossval campaigns.
	var sweepTask func(taskCtx context.Context, asg TaskAssignment) TaskResult
	if sr.Spec.Crossval {
		xspec, err := sr.Spec.BuildCrossval()
		if err != nil {
			return stats, fmt.Errorf("dist: worker cannot build crossval spec: %w", err)
		}
		if fp := crossval.Fingerprint(xspec); fp != sr.Fingerprint {
			return stats, fmt.Errorf("dist: crossval fingerprint mismatch: coordinator %s, worker %s (diverged builds?)",
				sr.Fingerprint, fp)
		}
		sweepTask = func(taskCtx context.Context, asg TaskAssignment) TaskResult {
			prs, _ := crossval.RunPointsCtx(taskCtx, xspec, asg.Points, cfg.Parallelism)
			return TaskResult{PointReports: prs}
		}
	} else {
		spec, err := sr.Spec.Build()
		if err != nil {
			return stats, fmt.Errorf("dist: worker cannot build campaign spec: %w", err)
		}
		if fp := campaign.Fingerprint(spec); fp != sr.Fingerprint {
			return stats, fmt.Errorf("dist: spec fingerprint mismatch: coordinator %s, worker %s (diverged builds?)",
				sr.Fingerprint, fp)
		}
		if cfg.PruneDead {
			// One analysis and one representative memo for the whole campaign on
			// this node, shared by every task it leases.
			spec.PruneDeadInjections = true
			spec.EnsurePrune()
		}
		if cfg.UseSummaries || cfg.ShareSummaryCache {
			// One summary set for the whole campaign on this node. With
			// ShareSummaryCache the local LRU sits in front of the
			// coordinator's fleet-wide cache: misses fall through to
			// /summary/get, computed summaries publish via /summary/put.
			// Content-addressed keys make the remote values trustworthy
			// without any fingerprint handshake.
			spec.UseSummaries = true
			if cfg.ShareSummaryCache {
				spec.SummaryCache = summary.NewCache(0, &httpSummaryStore{
					ctx:    ctx,
					client: client,
					base:   cfg.Coordinator,
				})
			}
			spec.EnsureSummaries()
		}
		if cfg.MergeStates {
			// One control-flow analysis (post-dominators, merge points) for
			// the whole campaign on this node, shared by every task.
			spec.MergeStates = true
			spec.EnsureMerge()
		}
		spec.Parallelism = cfg.Parallelism
		sweepTask = func(taskCtx context.Context, asg TaskAssignment) TaskResult {
			task := cluster.Task{ID: asg.ID, Injections: asg.Injections}
			rep, irs := cluster.RunTaskCtx(taskCtx, spec, task, sr.Spec.TaskStateBudget, sr.Spec.MaxFindingsPerTask)
			return TaskResult{Reports: irs, Failure: rep.Failure}
		}
	}
	heartbeatEvery := sr.Lease / 3
	if heartbeatEvery <= 0 {
		heartbeatEvery = time.Second
	}

	for {
		if ctx.Err() != nil {
			return stats, nil
		}
		var claim ClaimResponse
		if err := postJSONTimeout(ctx, client, cfg.Coordinator+PathClaim,
			ClaimRequest{Worker: cfg.ID}, &claim, controlTimeout); err != nil {
			return stats, err
		}
		if claim.Done {
			return stats, nil
		}
		if claim.Task == nil {
			if !sleepCtx(ctx, poll) {
				return stats, nil
			}
			continue
		}
		stats.Claimed++
		wClaimed.Inc()
		if cfg.OnTask != nil {
			cfg.OnTask("claimed", claim.Task.ID)
		}
		outcome, done, err := runOneTask(ctx, client, cfg, *claim.Task, heartbeatEvery, sweepTask)
		if err != nil {
			return stats, err
		}
		switch outcome {
		case "completed":
			stats.Completed++
			wCompleted.Inc()
		case "duplicate":
			stats.Duplicates++
			wDuplicates.Inc()
		default:
			stats.Abandoned++
			wAbandoned.Inc()
		}
		if cfg.OnTask != nil {
			cfg.OnTask(outcome, claim.Task.ID)
		}
		if done {
			// The campaign settled with this post; the coordinator may be
			// shutting down already, so do not claim again.
			return stats, nil
		}
	}
}

const (
	// controlTimeout bounds the small control requests (spec, claim,
	// heartbeat) so a wedged coordinator cannot hang a worker forever.
	controlTimeout = 30 * time.Second
	// completeTimeout bounds the completion post, which carries the whole
	// task result (every finding with its trace) and can be large.
	completeTimeout = 10 * time.Minute
)

// runOneTask sweeps one leased task under a heartbeat loop, delegating the
// actual sweep to the campaign mode's closure. The returned outcome is
// "completed", "duplicate" or "abandoned"; done reports that the campaign has
// no unsettled tasks left; an error means the coordinator is unreachable for
// posting a finished result.
func runOneTask(ctx context.Context, client *http.Client, cfg WorkerConfig,
	assignment TaskAssignment, heartbeatEvery time.Duration,
	sweepTask func(context.Context, TaskAssignment) TaskResult) (string, bool, error) {

	taskCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat until the result is posted (large completion posts take a
	// while; the lease must not lapse under them). A lost lease (409) is
	// decisive and cancels the sweep so the worker stops burning states on a
	// task someone else now owns; transient failures (a coordinator busy
	// decoding another worker's huge result can miss a deadline) are retried
	// and only repeated consecutive failures abandon the task.
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(heartbeatEvery)
		defer t.Stop()
		fails := 0
		for {
			select {
			case <-taskCtx.Done():
				return
			case <-t.C:
				err := postJSONTimeout(taskCtx, client, cfg.Coordinator+PathHeartbeat,
					HeartbeatRequest{Worker: cfg.ID, Task: assignment.ID}, nil, controlTimeout)
				wHeartbeats.Inc()
				switch {
				case err == nil:
					fails = 0
				case taskCtx.Err() != nil:
					return
				default:
					wHBFailures.Inc()
					if leaseLost(err) {
						wLeasesLost.Inc()
						// The coordinator itself answered 409: the lease
						// expired and was reassigned (or the task completed
						// elsewhere). No point continuing the sweep.
						cancel()
						return
					}
					// Anything else — a transport failure, or a 5xx from a
					// proxy or an overloaded coordinator — may be transient
					// and says nothing about the lease; only repeated
					// consecutive failures abandon the task.
					if fails++; fails >= 3 {
						cancel()
						return
					}
				}
			}
		}
	}()

	result := sweepTask(taskCtx, assignment)
	if taskCtx.Err() != nil {
		// Cancelled (worker shutdown) or lease lost mid-sweep: the partial
		// result must not be posted — the coordinator will re-serve the task
		// in full, keeping the pooled report deterministic.
		cancel()
		hb.Wait()
		return "abandoned", false, nil
	}
	// A sweep the per-injection wall-clock timeout cut short (rep.Interrupted
	// with a live taskCtx) is a settled result, not an abandonment: the
	// single-process cluster.Run records such a task Interrupted and moves
	// on, so the worker must post it the same way. Abandoning instead would
	// livelock the campaign — every worker re-claims the task, times out the
	// same injection, and abandons again. The Interrupted/TimedOut marks
	// travel inside the per-injection reports, and the coordinator's
	// cluster.PoolReports reconstructs the identical interrupted TaskReport.
	var resp CompleteResponse
	uploadStart := time.Now()
	err := postJSONTimeout(ctx, client, cfg.Coordinator+PathComplete, CompleteRequest{
		Worker: cfg.ID,
		Task:   assignment.ID,
		Result: result,
	}, &resp, completeTimeout)
	wUploadSecs.Observe(time.Since(uploadStart).Seconds())
	cancel()
	hb.Wait()
	if err != nil {
		if ctx.Err() != nil {
			return "abandoned", false, nil
		}
		return "", false, fmt.Errorf("dist: post completion of task %d: %w", assignment.ID, err)
	}
	if resp.Duplicate {
		return "duplicate", resp.Done, nil
	}
	return "completed", resp.Done, nil
}

// httpSummaryStore adapts the coordinator's /summary endpoints to
// summary.Store, making the coordinator the fleet-shared second level of a
// worker's summary cache. Failures degrade, never block: an unreachable
// coordinator turns Load into a miss (the worker recomputes locally) and
// Save into a dropped publish.
type httpSummaryStore struct {
	ctx    context.Context
	client *http.Client
	base   string
}

func (s *httpSummaryStore) Load(key string) ([]byte, bool, error) {
	var resp SummaryGetResponse
	if err := postJSONTimeout(s.ctx, s.client, s.base+PathSummaryGet,
		SummaryGetRequest{Key: key}, &resp, controlTimeout); err != nil {
		return nil, false, nil // degrade to a miss
	}
	if !resp.Found {
		return nil, false, nil
	}
	return resp.Value, true, nil
}

func (s *httpSummaryStore) Save(key string, value []byte) error {
	// Best-effort publish; the cache layer already treats Save as advisory.
	postJSONTimeout(s.ctx, s.client, s.base+PathSummaryPut,
		SummaryPutRequest{Key: key, Value: value}, nil, controlTimeout)
	return nil
}

// fetchSpec retrieves the campaign document, retrying briefly so a worker
// started moments before its coordinator still connects.
func fetchSpec(ctx context.Context, client *http.Client, base string) (SpecResponse, error) {
	var sr SpecResponse
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 && !sleepCtx(ctx, 300*time.Millisecond) {
			break
		}
		err := func() error {
			reqCtx, cancel := context.WithTimeout(ctx, controlTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, base+PathSpec, nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			return decodeResponse(resp, &sr)
		}()
		if err == nil {
			return sr, nil
		}
		lastErr = err
	}
	if ctx.Err() != nil {
		return sr, ctx.Err()
	}
	return sr, fmt.Errorf("dist: fetch campaign spec from %s: %w", base, lastErr)
}

// postJSONTimeout is postJSON under a per-call deadline (0: none).
func postJSONTimeout(ctx context.Context, client *http.Client, url string, body, out any, d time.Duration) error {
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	return postJSON(ctx, client, url, body, out)
}

// postJSON posts body and decodes the JSON reply into out (out may be nil
// for replies without a body). Non-2xx statuses are errors carrying the
// server's text.
func postJSON(ctx context.Context, client *http.Client, url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	wPostBytes.Add(int64(len(data)))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// httpError is a non-2xx reply from the coordinator — the coordinator spoke,
// as opposed to a transport failure where it may not have heard us at all.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// leaseLost reports whether a heartbeat error is decisive: the coordinator
// itself refused with 409 Conflict (ErrLeaseLost on its side). Transport
// failures and other statuses — a proxy's 502/503, a coordinator busy
// decoding another worker's result — do not prove the lease is gone and must
// be retried, not acted on.
func leaseLost(err error) bool {
	var he *httpError
	return errors.As(err, &he) && he.status == http.StatusConflict
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &httpError{
			status: resp.StatusCode,
			msg:    fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(msg)),
		}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps for d, returning false when ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
