package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"symplfied/internal/campaign"
	"symplfied/internal/cluster"
	"symplfied/internal/crossval"
	"symplfied/internal/obs"
	"symplfied/internal/summary"
)

// Worker-side live metrics on the shared obs registry, served by the
// symworker binary's -metrics-addr endpoint. Lease and heartbeat health is
// the fleet's early-warning signal: rising heartbeat failures or lost leases
// mean the coordinator (or the network) is struggling before any task
// visibly fails.
var (
	wClaimed    = obs.Default().Counter(obs.MWorkerClaimed)
	wCompleted  = obs.Default().Counter(obs.MWorkerCompleted)
	wDuplicates = obs.Default().Counter(obs.MWorkerDuplicates)
	wAbandoned  = obs.Default().Counter(obs.MWorkerAbandoned)
	wHeartbeats = obs.Default().Counter(obs.MWorkerHeartbeats)
	wHBFailures = obs.Default().Counter(obs.MWorkerHBFailures)
	wLeasesLost = obs.Default().Counter(obs.MWorkerLeasesLost)
	wPostBytes  = obs.Default().Counter(obs.MWorkerPostBytes)
	wUploadSecs = obs.Default().Histogram(obs.MWorkerUploadSecond, nil)
)

// WorkerConfig configures a pull-based campaign worker.
type WorkerConfig struct {
	// Coordinator is the coordinator/service base URL (e.g. http://host:8080).
	Coordinator string
	// ID names this worker in leases and fleet status. Required.
	ID string
	// Client is the HTTP client (nil: a client with a sane timeout).
	Client *http.Client
	// Campaign pins the worker to one campaign ID on a multi-campaign
	// service: it claims only from that campaign's routes and exits when the
	// campaign settles. Empty serves the whole fleet (or, against a legacy
	// standalone coordinator, its single campaign).
	Campaign string
	// Drain restores the pre-service exit behavior on a multi-campaign
	// service: exit as soon as the campaign the worker just fed reports
	// done, instead of claiming from the next open campaign.
	Drain bool
	// Poll is how long to wait between claims when every remaining task is
	// leased elsewhere (0: 500ms).
	Poll time.Duration
	// OnTask, if set, is called when a task is claimed and again when it
	// settles (posted, abandoned, or lost), for CLI progress output. The
	// campaign argument is the campaign ID (empty against a legacy
	// coordinator).
	OnTask func(campaign, event string, task int)
	// Parallelism fans each leased task's injection sweep across this many
	// cores (checker.Spec.Parallelism semantics: 0 selects GOMAXPROCS, 1 is
	// sequential). A worker holds one lease at a time, so this is how a node
	// uses all its cores on one task. Per-node and operational: it is not
	// part of the campaign spec and never enters the fingerprint, so a fleet
	// may mix parallelism levels freely.
	Parallelism int
	// PruneDead enables liveness-based injection pruning
	// (checker.Spec.PruneDeadInjections) on this worker. Like Parallelism it
	// is per-node and operational — absent from the campaign spec and the
	// fingerprint — because a pruned task result is identical to an unpruned
	// one apart from the Pruned markers, so a fleet may mix pruning and
	// non-pruning workers: the pooled verdicts and tallies are unchanged,
	// and only the markers record which node proved what. The node builds
	// one liveness analysis per campaign and shares the representative memo
	// across every task it leases from it.
	PruneDead bool
	// UseSummaries enables compositional fault summaries
	// (checker.Spec.UseSummaries) on this worker. Per-node and operational
	// like PruneDead: a summarized task result is identical to a plain one
	// apart from the Summarized markers, so the fleet may mix. The node
	// builds one summary set per campaign and shares it across its tasks.
	UseSummaries bool
	// MergeStates enables post-dominator state merging and cycle
	// acceleration (checker.Spec.MergeStates) on this worker. Per-node and
	// operational like PruneDead: a merged task result carries identical
	// verdicts and findings, only its Merged markers and lower state counts
	// differ, so the fleet may mix merging and non-merging workers.
	MergeStates bool
	// ShareSummaryCache backs the node's summary cache with the service's
	// /summary endpoints, so a function any worker analyzed is a cache hit
	// fleet-wide. Implies UseSummaries.
	ShareSummaryCache bool
}

// WorkerStats summarizes one worker's run.
type WorkerStats struct {
	// Claimed counts tasks leased to this worker.
	Claimed int
	// Completed counts results the coordinator accepted.
	Completed int
	// Duplicates counts results the coordinator dropped as already settled.
	Duplicates int
	// Abandoned counts tasks dropped mid-sweep (cancellation or lost lease).
	Abandoned int
}

// sweeper is one campaign's locally-lowered sweep closure plus its lease
// cadence. A fleet worker builds one per campaign it encounters and reuses
// it for every task of that campaign.
type sweeper struct {
	sweep          func(context.Context, TaskAssignment) TaskResult
	heartbeatEvery time.Duration
}

// buildSweeper fetches campaign id's document ("" = legacy root), lowers it
// locally, verifies the fingerprint against the coordinator's, and wraps the
// mode's sweep in a closure so the claim/heartbeat/post loop is shared
// between symbolic-search and crossval campaigns.
func buildSweeper(ctx context.Context, cl *Client, cfg WorkerConfig, id string) (*sweeper, error) {
	sr, err := cl.Spec(ctx, id)
	if err != nil {
		return nil, fmt.Errorf("dist: fetch campaign spec from %s: %w", cfg.Coordinator, err)
	}
	sw := &sweeper{heartbeatEvery: sr.Lease / 3}
	if sw.heartbeatEvery <= 0 {
		sw.heartbeatEvery = time.Second
	}
	if sr.Spec.Crossval {
		xspec, err := sr.Spec.BuildCrossval()
		if err != nil {
			return nil, fmt.Errorf("dist: worker cannot build crossval spec: %w", err)
		}
		if fp := crossval.Fingerprint(xspec); fp != sr.Fingerprint {
			return nil, fmt.Errorf("dist: crossval fingerprint mismatch: coordinator %s, worker %s (diverged builds?)",
				sr.Fingerprint, fp)
		}
		sw.sweep = func(taskCtx context.Context, asg TaskAssignment) TaskResult {
			prs, _ := crossval.RunPointsCtx(taskCtx, xspec, asg.Points, cfg.Parallelism)
			return TaskResult{PointReports: prs}
		}
		return sw, nil
	}
	spec, err := sr.Spec.Build()
	if err != nil {
		return nil, fmt.Errorf("dist: worker cannot build campaign spec: %w", err)
	}
	if fp := campaign.Fingerprint(spec); fp != sr.Fingerprint {
		return nil, fmt.Errorf("dist: spec fingerprint mismatch: coordinator %s, worker %s (diverged builds?)",
			sr.Fingerprint, fp)
	}
	if cfg.PruneDead {
		// One analysis and one representative memo for the whole campaign on
		// this node, shared by every task it leases.
		spec.PruneDeadInjections = true
		spec.EnsurePrune()
	}
	if cfg.UseSummaries || cfg.ShareSummaryCache {
		// One summary set for the whole campaign on this node. With
		// ShareSummaryCache the local LRU sits in front of the service's
		// fleet-wide cache: misses fall through to /summary/get, computed
		// summaries publish via /summary/put. Content-addressed keys make
		// the remote values trustworthy without any fingerprint handshake.
		spec.UseSummaries = true
		if cfg.ShareSummaryCache {
			spec.SummaryCache = summary.NewCache(0, &httpSummaryStore{ctx: ctx, cl: cl})
		}
		spec.EnsureSummaries()
	}
	if cfg.MergeStates {
		// One control-flow analysis (post-dominators, merge points) for
		// the whole campaign on this node, shared by every task.
		spec.MergeStates = true
		spec.EnsureMerge()
	}
	spec.Parallelism = cfg.Parallelism
	sw.sweep = func(taskCtx context.Context, asg TaskAssignment) TaskResult {
		task := cluster.Task{ID: asg.ID, Injections: asg.Injections}
		rep, irs := cluster.RunTaskCtx(taskCtx, spec, task, sr.Spec.TaskStateBudget, sr.Spec.MaxFindingsPerTask)
		return TaskResult{Reports: irs, Failure: rep.Failure}
	}
	return sw, nil
}

// probeService classifies the base URL: a multi-campaign service (it serves
// GET /v1/campaigns) or a legacy standalone coordinator (404/405 there). It
// retries transport errors briefly so a worker started moments before its
// coordinator still connects.
func probeService(ctx context.Context, cl *Client) (bool, error) {
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 && !sleepCtx(ctx, 300*time.Millisecond) {
			break
		}
		var out CampaignList
		err := cl.do(ctx, http.MethodGet, cl.Base+PathV1Campaigns, nil, &out, cl.control(), 1)
		if err == nil {
			return true, nil
		}
		var he *httpError
		if errors.As(err, &he) {
			if he.status == http.StatusNotFound || he.status == http.StatusMethodNotAllowed {
				return false, nil // legacy coordinator: no v1 surface
			}
		}
		lastErr = err
	}
	if ctx.Err() != nil {
		return false, ctx.Err()
	}
	return false, fmt.Errorf("dist: probe coordinator %s: %w", cl.Base, lastErr)
}

// RunWorker serves one worker until its work runs out or ctx is cancelled.
//
// Against a multi-campaign service (detected by probing GET /v1/campaigns)
// the worker claims from the fleet-level dispatcher: each claim names the
// campaign the task belongs to, the worker lowers and caches that campaign's
// spec on first contact, and finishing one campaign rolls straight into the
// next open one. It exits when the service reports the fleet drained (every
// campaign settled or cancelled) — or, under Drain, as soon as the campaign
// it just fed completes. Campaign pins the worker to one campaign's scoped
// routes instead.
//
// Against a legacy standalone coordinator the worker behaves as before:
// fetch the single campaign spec, verify the fingerprint, then claim — sweep
// under a renewable lease (heartbeats every lease/3; a lost lease cancels
// the sweep) — post, until the campaign completes. Cancellation mid-task
// abandons the task — its lease lapses and the coordinator re-serves it —
// and returns cleanly with the stats so far.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	var stats WorkerStats
	if cfg.ID == "" {
		return stats, fmt.Errorf("dist: worker needs an ID")
	}
	// No global client timeout: completion posts carry whole task results
	// (every finding with its trace) and can legitimately take minutes.
	// The Client applies per-call deadlines instead.
	cl := NewClient(cfg.Coordinator, cfg.Client)
	poll := cfg.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}

	// Classify the far end and pre-build the sweeper for single-campaign
	// modes, so a fingerprint mismatch aborts before any claim.
	fleet := false
	pinned := cfg.Campaign
	sweepers := map[string]*sweeper{}
	getSweeper := func(id string) (*sweeper, error) {
		if sw, ok := sweepers[id]; ok {
			return sw, nil
		}
		sw, err := buildSweeper(ctx, cl, cfg, id)
		if err != nil {
			return nil, err
		}
		sweepers[id] = sw
		return sw, nil
	}
	if pinned == "" {
		var err error
		fleet, err = probeService(ctx, cl)
		if err != nil {
			return stats, err
		}
	}
	if !fleet {
		if _, err := getSweeper(pinned); err != nil {
			return stats, err
		}
	}

	for {
		if ctx.Err() != nil {
			return stats, nil
		}
		var campaignID string
		var task *TaskAssignment
		if fleet {
			fr, err := cl.FleetClaim(ctx, cfg.ID)
			if err != nil {
				return stats, err
			}
			if fr.Done {
				return stats, nil
			}
			if fr.Task == nil {
				if !sleepCtx(ctx, poll) {
					return stats, nil
				}
				continue
			}
			campaignID, task = fr.Campaign, fr.Task
		} else {
			resp, err := cl.Claim(ctx, pinned, cfg.ID)
			if err != nil {
				return stats, err
			}
			if resp.Done {
				return stats, nil
			}
			if resp.Task == nil {
				if !sleepCtx(ctx, poll) {
					return stats, nil
				}
				continue
			}
			campaignID, task = pinned, resp.Task
		}
		sw, err := getSweeper(campaignID)
		if err != nil {
			return stats, err
		}
		stats.Claimed++
		wClaimed.Inc()
		if cfg.OnTask != nil {
			cfg.OnTask(campaignID, "claimed", task.ID)
		}
		outcome, done, err := runOneTask(ctx, cl, cfg, campaignID, *task, sw)
		if err != nil {
			return stats, err
		}
		switch outcome {
		case "completed":
			stats.Completed++
			wCompleted.Inc()
		case "duplicate":
			stats.Duplicates++
			wDuplicates.Inc()
		default:
			stats.Abandoned++
			wAbandoned.Inc()
		}
		if cfg.OnTask != nil {
			cfg.OnTask(campaignID, outcome, task.ID)
		}
		if done {
			// This campaign settled with the post. On a fleet that is not
			// the end of the work — the next claim rolls into the next open
			// campaign — unless the operator asked to drain. A standalone
			// coordinator may already be shutting down, so do not claim
			// again there.
			if !fleet || cfg.Drain {
				return stats, nil
			}
		}
	}
}

const (
	// controlTimeout bounds the small control requests (spec, claim,
	// heartbeat) so a wedged coordinator cannot hang a worker forever.
	controlTimeout = 30 * time.Second
	// completeTimeout bounds the completion post, which carries the whole
	// task result (every finding with its trace) and can be large.
	completeTimeout = 10 * time.Minute
)

// runOneTask sweeps one leased task under a heartbeat loop, delegating the
// actual sweep to the campaign mode's closure. The returned outcome is
// "completed", "duplicate" or "abandoned"; done reports that the campaign has
// no unsettled tasks left; an error means the coordinator is unreachable for
// posting a finished result.
func runOneTask(ctx context.Context, cl *Client, cfg WorkerConfig, campaignID string,
	assignment TaskAssignment, sw *sweeper) (string, bool, error) {

	taskCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat until the result is posted (large completion posts take a
	// while; the lease must not lapse under them). A lost lease (409) is
	// decisive and cancels the sweep so the worker stops burning states on a
	// task someone else now owns; transient failures (a coordinator busy
	// decoding another worker's huge result can miss a deadline) are retried
	// and only repeated consecutive failures abandon the task.
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(sw.heartbeatEvery)
		defer t.Stop()
		fails := 0
		for {
			select {
			case <-taskCtx.Done():
				return
			case <-t.C:
				err := cl.Heartbeat(taskCtx, campaignID, cfg.ID, assignment.ID)
				wHeartbeats.Inc()
				switch {
				case err == nil:
					fails = 0
				case taskCtx.Err() != nil:
					return
				default:
					wHBFailures.Inc()
					if leaseLost(err) {
						wLeasesLost.Inc()
						// The coordinator itself answered 409: the lease
						// expired and was reassigned (or the task completed
						// elsewhere). No point continuing the sweep.
						cancel()
						return
					}
					// Anything else — a transport failure, or a 5xx from a
					// proxy or an overloaded coordinator — may be transient
					// and says nothing about the lease; only repeated
					// consecutive failures abandon the task.
					if fails++; fails >= 3 {
						cancel()
						return
					}
				}
			}
		}
	}()

	result := sw.sweep(taskCtx, assignment)
	if taskCtx.Err() != nil {
		// Cancelled (worker shutdown) or lease lost mid-sweep: the partial
		// result must not be posted — the coordinator will re-serve the task
		// in full, keeping the pooled report deterministic.
		cancel()
		hb.Wait()
		return "abandoned", false, nil
	}
	// A sweep the per-injection wall-clock timeout cut short (rep.Interrupted
	// with a live taskCtx) is a settled result, not an abandonment: the
	// single-process cluster.Run records such a task Interrupted and moves
	// on, so the worker must post it the same way. Abandoning instead would
	// livelock the campaign — every worker re-claims the task, times out the
	// same injection, and abandons again. The Interrupted/TimedOut marks
	// travel inside the per-injection reports, and the coordinator's
	// cluster.PoolReports reconstructs the identical interrupted TaskReport.
	uploadStart := time.Now()
	resp, err := cl.Complete(ctx, campaignID, CompleteRequest{
		Worker: cfg.ID,
		Task:   assignment.ID,
		Result: result,
	})
	wUploadSecs.Observe(time.Since(uploadStart).Seconds())
	cancel()
	hb.Wait()
	if err != nil {
		if ctx.Err() != nil {
			return "abandoned", false, nil
		}
		return "", false, fmt.Errorf("dist: post completion of task %d: %w", assignment.ID, err)
	}
	if resp.Duplicate {
		return "duplicate", resp.Done, nil
	}
	return "completed", resp.Done, nil
}

// httpSummaryStore adapts the service's /summary endpoints to summary.Store,
// making the service the fleet-shared second level of a worker's summary
// cache. Failures degrade, never block: an unreachable service turns Load
// into a miss (the worker recomputes locally) and Save into a dropped
// publish.
type httpSummaryStore struct {
	ctx context.Context
	cl  *Client
}

func (s *httpSummaryStore) Load(key string) ([]byte, bool, error) {
	resp, err := s.cl.SummaryGet(s.ctx, key)
	if err != nil || !resp.Found {
		return nil, false, nil // degrade to a miss
	}
	return resp.Value, true, nil
}

func (s *httpSummaryStore) Save(key string, value []byte) error {
	// Best-effort publish; the cache layer already treats Save as advisory.
	_ = s.cl.SummaryPut(s.ctx, key, value)
	return nil
}

// httpError is a non-2xx reply from the coordinator — the coordinator spoke,
// as opposed to a transport failure where it may not have heard us at all.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// leaseLost reports whether a heartbeat error is decisive: the coordinator
// itself refused with 409 Conflict (ErrLeaseLost on its side). Transport
// failures and other statuses — a proxy's 502/503, a coordinator busy
// decoding another worker's result — do not prove the lease is gone and must
// be retried, not acted on.
func leaseLost(err error) bool {
	if errors.Is(err, ErrLeaseLost) {
		return true
	}
	var he *httpError
	return errors.As(err, &he) && he.status == http.StatusConflict
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &httpError{
			status: resp.StatusCode,
			msg:    fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(msg)),
		}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps for d, returning false when ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
