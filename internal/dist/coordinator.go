package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"symplfied/internal/campaign"
	"symplfied/internal/checker"
	"symplfied/internal/cluster"
	"symplfied/internal/crossval"
	"symplfied/internal/obs"
	"symplfied/internal/summary"
	"symplfied/internal/symexec"
)

// Coordinator-side live metrics on the shared obs registry (scraped via
// /metrics and /debug/vars on the coordinator's own mux — Handler mounts
// obs.RegisterOps). These mirror the Counters struct served in
// StatusResponse; the struct stays authoritative for the wire protocol, the
// registry feeds scrapers and the -progress line.
var (
	mTasksServed     = obs.Default().Counter(obs.MDistTasksServed)
	mTasksCompleted  = obs.Default().Counter(obs.MDistTasksCompleted)
	mTasksReassigned = obs.Default().Counter(obs.MDistTasksReassigned)
	mHeartbeats      = obs.Default().Counter(obs.MDistHeartbeats)
	mReportsPooled   = obs.Default().Counter(obs.MDistReportsPooled)
	mDuplicates      = obs.Default().Counter(obs.MDistDuplicates)
	mJournalErrors   = obs.Default().Counter(obs.MDistJournalErrors)
	mWorkersLive     = obs.Default().Gauge(obs.MDistWorkersLive)
	mCoordTasksTotal = obs.Default().Gauge(obs.MTasksTotal)
	mCoordTasksDone  = obs.Default().Gauge(obs.MTasksDone)
	mCoordFindings   = obs.Default().Counter(obs.MFindings)
	mEvents          = obs.Default().Counter(obs.MDistEvents)
)

// DefaultLease is the task lease duration when the config does not set one.
// A worker heartbeats every Lease/3, so three missed heartbeats lose the
// task.
const DefaultLease = 30 * time.Second

// ErrLeaseLost is returned by Heartbeat when the caller no longer holds the
// task: its lease expired and the task was reassigned (or completed by
// someone else).
var ErrLeaseLost = errors.New("dist: lease lost")

// CoordinatorConfig configures a campaign coordinator.
type CoordinatorConfig struct {
	// Doc is the campaign to run.
	Doc SpecDoc
	// Lease is the task lease duration (0: DefaultLease).
	Lease time.Duration
	// Checkpoint is the task journal path; empty disables checkpointing.
	Checkpoint string
	// Resume loads the journal before serving and marks journaled tasks
	// done. Requires Checkpoint.
	Resume bool
	// SummaryCache, when non-nil, is served to workers over /summary/get
	// and /summary/put so the fleet shares one content-addressed summary
	// cache; a function analyzed by any worker is a hit for every other.
	// Nil installs a default in-memory cache (the endpoints always serve).
	SummaryCache *summary.Cache
	// Now is the clock, injectable for tests (nil: time.Now).
	Now func() time.Time
}

// lease records who holds a task and until when.
type lease struct {
	worker  string
	expires time.Time
}

// workerInfo tracks one worker's liveness and load.
type workerInfo struct {
	lastSeen  time.Time
	leased    map[int]bool
	completed int
}

// Coordinator owns a campaign: the task queue, the leases, the pooled
// results and the durable result log. All exported methods are safe for
// concurrent use; the HTTP layer (Handler for a standalone coordinator,
// Service for the multi-campaign registry) is a thin JSON shim over them.
type Coordinator struct {
	// id, tenant and priority identify the campaign within a Registry; a
	// standalone coordinator (NewCoordinator) leaves them zero.
	id       string
	tenant   string
	priority int

	doc         SpecDoc
	spec        checker.Spec
	fingerprint string
	leaseDur    time.Duration
	now         func() time.Time
	tasks       []cluster.Task

	// cache is the fleet-wide result cache, consulted at claim time and fed
	// on every settle. Nil disables caching (standalone coordinators).
	cache *ResultCache

	// persist durably logs one settled result; closePersist flushes the log.
	// Either may be nil. A persist error does not un-settle the task — see
	// Complete for how it is surfaced.
	persist      func(key string, payload any) error
	closePersist func() error

	// Crossval campaigns replace the symbolic search: tasks are slices of
	// injection sites, results are per-site crossval verdicts. The lease,
	// journal and completion machinery is shared; tasks holds placeholder
	// entries so the task indexing is uniform.
	xspec  crossval.Spec
	xtasks []cluster.PointTask

	// summaries is the fleet-shared content-addressed summary cache (see
	// CoordinatorConfig.SummaryCache). Never nil; has its own locking.
	summaries *summary.Cache

	mu       sync.Mutex
	leases   map[int]lease
	results  []*cluster.TaskReport // folded reports, indexed by task ID; nil = not done
	xresults [][]crossval.PointReport
	workers  map[string]*workerInfo
	counters Counters
	doneN    int
	doneCh   chan struct{}

	cancelled bool
	// events is the campaign's append-only result stream; eventsCh is the
	// broadcast channel closed and replaced on every append, so any number
	// of subscribers can wait for "something new" without registration.
	events   []Event
	eventsCh chan struct{}
}

func (c *Coordinator) crossval() bool { return c.doc.Crossval }

// journalKind pins a journal to this campaign's decomposition width as well
// as (via the fingerprint) its spec: a journal written under a different
// -tasks split records different task boundaries and must be rejected.
// Crossval journals get their own kind: their entries decode to point
// reports, not injection reports.
func journalKind(crossval bool, tasks int) string {
	if crossval {
		return fmt.Sprintf("dist-crossval-tasks-%d", tasks)
	}
	return fmt.Sprintf("dist-tasks-%d", tasks)
}

func taskKey(id int) string { return fmt.Sprintf("task:%d", id) }

// coordOptions configures newCoordinator, the shared constructor behind the
// legacy single-campaign NewCoordinator and the Registry.
type coordOptions struct {
	id        string
	tenant    string
	priority  int
	lease     time.Duration
	now       func() time.Time
	summaries *summary.Cache
	cache     *ResultCache
}

// newCoordinator lowers the spec document and partitions the injection
// space. Persistence is wired separately (see NewCoordinator and Registry):
// the caller may call restore with previously journaled results and set
// persist/closePersist, both before the coordinator starts serving.
func newCoordinator(doc SpecDoc, opt coordOptions) (*Coordinator, error) {
	width := doc.Tasks
	if width <= 0 {
		width = 1
	}
	c := &Coordinator{
		id:        opt.id,
		tenant:    opt.tenant,
		priority:  opt.priority,
		doc:       doc,
		leaseDur:  opt.lease,
		now:       opt.now,
		cache:     opt.cache,
		leases:    make(map[int]lease),
		workers:   make(map[string]*workerInfo),
		doneCh:    make(chan struct{}),
		eventsCh:  make(chan struct{}),
		summaries: opt.summaries,
	}
	if c.summaries == nil {
		c.summaries = summary.NewCache(0, nil)
	}
	if doc.Crossval {
		xspec, err := doc.BuildCrossval()
		if err != nil {
			return nil, err
		}
		pts := xspec.Points()
		if len(pts) == 0 {
			return nil, fmt.Errorf("dist: crossval campaign enumerates no injection sites")
		}
		c.xspec = xspec
		c.fingerprint = crossval.Fingerprint(xspec)
		c.xtasks = cluster.SplitPoints(pts, width)
		c.tasks = make([]cluster.Task, len(c.xtasks))
		for i := range c.xtasks {
			c.tasks[i] = cluster.Task{ID: c.xtasks[i].ID}
		}
		c.xresults = make([][]crossval.PointReport, len(c.tasks))
	} else {
		spec, err := doc.Build()
		if err != nil {
			return nil, err
		}
		if len(spec.Injections) == 0 {
			return nil, fmt.Errorf("dist: campaign enumerates no injections")
		}
		c.spec = spec
		c.fingerprint = campaign.Fingerprint(spec)
		c.tasks = cluster.Split(spec.Injections, width)
	}
	c.results = make([]*cluster.TaskReport, len(c.tasks))
	mCoordTasksTotal.Add(int64(len(c.tasks)))
	if c.leaseDur <= 0 {
		c.leaseDur = DefaultLease
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c, nil
}

// NewCoordinator builds a standalone single-campaign coordinator: lowers the
// spec document, partitions the injection space, and (when configured) opens
// the task journal, restoring completed tasks from it under Resume. The
// multi-campaign service wraps the same machinery via Registry.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Resume && cfg.Checkpoint == "" {
		return nil, fmt.Errorf("dist: Resume requires a Checkpoint path")
	}
	c, err := newCoordinator(cfg.Doc, coordOptions{
		lease:     cfg.Lease,
		now:       cfg.Now,
		summaries: cfg.SummaryCache,
	})
	if err != nil {
		return nil, err
	}
	kind := c.JournalKind()
	if cfg.Resume {
		entries, err := campaign.LoadJournal(cfg.Checkpoint, kind, c.fingerprint)
		if err != nil {
			return nil, err
		}
		c.restore(entries)
	}
	if cfg.Checkpoint != "" {
		j, err := campaign.OpenJournal(cfg.Checkpoint, kind, c.fingerprint)
		if err != nil {
			return nil, err
		}
		c.persist = func(key string, payload any) error { return j.Append(key, payload) }
		c.closePersist = j.Close
	}
	return c, nil
}

// DocFingerprint lowers doc and returns its campaign fingerprint — the key
// by which the service recognizes resubmissions of the same document —
// without building a coordinator.
func DocFingerprint(doc SpecDoc) (string, error) {
	if doc.Crossval {
		xspec, err := doc.BuildCrossval()
		if err != nil {
			return "", err
		}
		return crossval.Fingerprint(xspec), nil
	}
	spec, err := doc.Build()
	if err != nil {
		return "", err
	}
	return campaign.Fingerprint(spec), nil
}

// JournalKind is the campaign's durable-log kind string: it pins the
// decomposition width as well as (via the fingerprint) the spec, so a log
// written under a different -tasks split is rejected rather than replayed
// across different task boundaries.
func (c *Coordinator) JournalKind() string { return journalKind(c.crossval(), len(c.tasks)) }

// restore settles previously journaled results. It must run before the
// coordinator starts serving (NewCoordinator and Registry call it during
// construction). Undecodable entries are re-run rather than trusted; settled
// results are published to the fleet result cache when one is wired.
func (c *Coordinator) restore(entries map[string]json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id := range c.tasks {
		if c.results[id] != nil {
			continue
		}
		raw, ok := entries[taskKey(id)]
		if !ok {
			continue
		}
		var res TaskResult
		if err := json.Unmarshal(raw, &res); err != nil {
			continue
		}
		c.settleLocked(id, res, Event{Restored: true})
		c.cache.Put(c.cacheKey(id), res)
	}
}

// cacheKey is task id's fleet result-cache key.
func (c *Coordinator) cacheKey(id int) string {
	return resultCacheKey(c.fingerprint, len(c.tasks), id, c.doc.TaskStateBudget, c.doc.MaxFindingsPerTask)
}

// appendEventLocked numbers and appends one event to the campaign stream and
// wakes every subscriber. Callers hold c.mu.
func (c *Coordinator) appendEventLocked(ev Event) {
	ev.Seq = len(c.events) + 1
	c.events = append(c.events, ev)
	mEvents.Inc()
	close(c.eventsCh)
	c.eventsCh = make(chan struct{})
}

// settleLocked folds a task result into its report and marks the task done.
// src carries the event provenance (worker, cache, restore); Seq, Type, Task
// and the tallies are filled here. Callers hold c.mu.
func (c *Coordinator) settleLocked(id int, res TaskResult, src Event) {
	var rep cluster.TaskReport
	if c.crossval() {
		// A crossval task's payload is its point reports; the TaskReport is
		// only the done marker plus the failure text.
		c.xresults[id] = res.PointReports
		rep = cluster.TaskReport{TaskID: c.tasks[id].ID, Completed: res.Failure == ""}
	} else {
		rep = cluster.PoolReports(c.tasks[id], res.Reports, c.doc.MaxFindingsPerTask)
	}
	if res.Failure != "" {
		rep.Failure = res.Failure
		rep.Err = errors.New(res.Failure)
	}
	c.results[id] = &rep
	delete(c.leases, id)
	c.doneN++
	mCoordTasksDone.Add(1)
	// Findings land on the coordinator's live counter so its -progress line
	// and /metrics reflect pooled results. (In a process hosting both a
	// coordinator and an in-process worker — tests — the worker's checker
	// also counts findings; the live counter is operational, not a report.)
	mCoordFindings.Add(int64(len(rep.Findings)))
	src.Type = "task"
	src.Task = c.tasks[id].ID
	src.Findings = len(rep.Findings)
	src.States = rep.StatesExplored
	c.appendEventLocked(src)
	if c.doneN == len(c.tasks) {
		c.appendEventLocked(Event{Type: "done"})
		close(c.doneCh)
	}
}

// reapLocked expires lapsed leases, returning their tasks to the queue, and
// refreshes the live-worker gauge.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.expires) {
			delete(c.leases, id)
			if w := c.workers[l.worker]; w != nil {
				delete(w.leased, id)
			}
			c.counters.TasksReassigned++
			mTasksReassigned.Inc()
		}
	}
	live := int64(0)
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.leaseDur {
			live++
		}
	}
	mWorkersLive.Set(live)
}

// touchLocked records that a worker spoke.
func (c *Coordinator) touchLocked(worker string, now time.Time) *workerInfo {
	w := c.workers[worker]
	if w == nil {
		w = &workerInfo{leased: make(map[int]bool)}
		c.workers[worker] = w
	}
	w.lastSeen = now
	return w
}

// Claim leases the lowest-numbered pending task to worker. Before leasing,
// each candidate task is looked up in the fleet result cache: a task whose
// (fingerprint, width, id, budget, findings-cap) key already settled under
// any campaign is answered from cache and settled without a lease — the
// cached result is byte-identical to what a worker would compute, since
// exploration is deterministic over that key. When every task is done the
// response says so (the worker should exit); when all remaining tasks are
// currently leased the response carries no task (the worker should poll
// again).
func (c *Coordinator) Claim(worker string) ClaimResponse {
	type settled struct {
		key string
		res TaskResult
	}
	var persisted []settled

	c.mu.Lock()
	now := c.now()
	c.reapLocked(now)
	w := c.touchLocked(worker, now)
	resp := func() ClaimResponse {
		if c.cancelled || c.doneN == len(c.tasks) {
			return ClaimResponse{Done: true}
		}
		for id := range c.tasks {
			if c.results[id] != nil {
				continue
			}
			if _, held := c.leases[id]; held {
				continue
			}
			if c.cache != nil {
				if res, ok := c.cache.Get(c.cacheKey(id)); ok {
					c.settleLocked(id, res, Event{FromCache: true})
					c.counters.TasksFromCache++
					persisted = append(persisted, settled{key: taskKey(id), res: res})
					if c.doneN == len(c.tasks) {
						return ClaimResponse{Done: true}
					}
					continue
				}
			}
			c.leases[id] = lease{worker: worker, expires: now.Add(c.leaseDur)}
			w.leased[id] = true
			c.counters.TasksServed++
			mTasksServed.Inc()
			asg := &TaskAssignment{ID: c.tasks[id].ID}
			if c.crossval() {
				asg.Points = c.xtasks[id].Points
			} else {
				asg.Injections = c.tasks[id].Injections
			}
			return ClaimResponse{Task: asg, Lease: c.leaseDur}
		}
		return ClaimResponse{} // all in flight: poll again
	}()
	persist := c.persist
	c.mu.Unlock()

	// Journal cache-settled tasks outside the lock, like Complete does.
	if persist != nil {
		for _, s := range persisted {
			if err := persist(s.key, s.res); err != nil {
				log.Printf("dist: journal append for cached task failed: %v", err)
				c.mu.Lock()
				c.counters.JournalErrors++
				c.mu.Unlock()
				mJournalErrors.Inc()
			}
		}
	}
	return resp
}

// Heartbeat renews worker's lease on task. ErrLeaseLost means the worker no
// longer holds it (expiry and reassignment, or completion by another
// worker): the worker must abandon the task.
func (c *Coordinator) Heartbeat(worker string, task int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reapLocked(now)
	c.touchLocked(worker, now)
	c.counters.Heartbeats++
	mHeartbeats.Inc()
	l, held := c.leases[task]
	if !held || l.worker != worker {
		return ErrLeaseLost
	}
	c.leases[task] = lease{worker: worker, expires: now.Add(c.leaseDur)}
	return nil
}

// Complete settles a task with a worker's posted result. The first
// completion wins regardless of who currently holds the lease; a completion
// for an already-settled task (a re-claimed task's earlier owner posting
// late) is counted and dropped.
func (c *Coordinator) Complete(worker string, task int, res TaskResult) (CompleteResponse, error) {
	c.mu.Lock()
	if task < 0 || task >= len(c.tasks) {
		c.mu.Unlock()
		return CompleteResponse{}, fmt.Errorf("dist: no such task %d", task)
	}
	now := c.now()
	w := c.touchLocked(worker, now)
	if c.results[task] != nil || c.cancelled {
		// Already settled — or the campaign was cancelled, in which case a
		// late post is dropped the same way a zombie duplicate is.
		c.counters.DuplicateCompletions++
		done := c.cancelled || c.doneN == len(c.tasks)
		c.mu.Unlock()
		mDuplicates.Inc()
		return CompleteResponse{Duplicate: true, Done: done}, nil
	}
	if l, held := c.leases[task]; held {
		if prev := c.workers[l.worker]; prev != nil {
			delete(prev.leased, task)
		}
	}
	c.settleLocked(task, res, Event{Worker: worker})
	delete(w.leased, task)
	w.completed++
	c.counters.TasksCompleted++
	c.counters.ReportsPooled += int64(len(res.Reports))
	persist := c.persist
	done := c.doneN == len(c.tasks)
	c.mu.Unlock()
	mTasksCompleted.Inc()
	mReportsPooled.Add(int64(len(res.Reports)))
	c.cache.Put(c.cacheKey(task), res)
	// Journal outside the coordinator lock: a huge task result (gigabytes
	// under unlimited findings) must not stall heartbeats and claims while
	// it is serialized to disk. Journal.Append serializes appends itself.
	if persist != nil {
		if err := persist(taskKey(task), res); err != nil {
			// The result is pooled; only checkpoint durability is
			// compromised, so the completion is still acknowledged Accepted.
			// That very acknowledgement hides the failure from the worker, so
			// surface it here: log it and count it (Counters.JournalErrors,
			// expvar journal_errors) — an operator relying on -resume must
			// learn checkpointing is failing before the restart that needs it.
			log.Printf("dist: journal append for task %d failed: %v", task, err)
			c.mu.Lock()
			c.counters.JournalErrors++
			c.mu.Unlock()
			mJournalErrors.Inc()
			return CompleteResponse{Accepted: true, Done: done}, fmt.Errorf("dist: journal: %w", err)
		}
	}
	return CompleteResponse{Accepted: true, Done: done}, nil
}

// SummaryGet looks up a function summary in the fleet-shared cache.
func (c *Coordinator) SummaryGet(key string) SummaryGetResponse {
	raw, ok := c.summaries.GetRaw(key)
	if !ok {
		return SummaryGetResponse{}
	}
	return SummaryGetResponse{Found: true, Value: raw}
}

// SummaryPut admits a worker-computed function summary into the
// fleet-shared cache, reporting whether the value decoded as one. The keys
// are content-addressed, so no fingerprint or ownership check is needed: a
// well-formed value under its canonical key is correct for every consumer
// that derives that key.
func (c *Coordinator) SummaryPut(key string, value json.RawMessage) bool {
	return c.summaries.PutRaw(key, value)
}

// SummaryCache exposes the fleet-shared cache (for tests and embedding).
func (c *Coordinator) SummaryCache() *summary.Cache { return c.summaries }

// Done is closed once every task has settled.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Fingerprint returns the campaign fingerprint workers verify against.
func (c *Coordinator) Fingerprint() string { return c.fingerprint }

// ID returns the campaign's registry ID (empty for standalone coordinators).
func (c *Coordinator) ID() string { return c.id }

// Tenant returns the owning tenant (empty for standalone coordinators).
func (c *Coordinator) Tenant() string { return c.tenant }

// Cancel closes the campaign: outstanding leases are dropped, further claims
// answer Done and further completions are dropped as duplicates. Settled
// results are kept — the partial report stays available — but the Done
// channel is not closed: cancellation is not completion.
func (c *Coordinator) Cancel() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancelled {
		return
	}
	c.cancelled = true
	for id, l := range c.leases {
		if w := c.workers[l.worker]; w != nil {
			delete(w.leased, id)
		}
		delete(c.leases, id)
	}
	c.appendEventLocked(Event{Type: "cancelled"})
}

// State reports the campaign lifecycle state: StateOpen while tasks remain,
// StateDone once every task settled, StateCancelled after Cancel.
func (c *Coordinator) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stateLocked()
}

func (c *Coordinator) stateLocked() string {
	switch {
	case c.cancelled:
		return StateCancelled
	case c.doneN == len(c.tasks):
		return StateDone
	default:
		return StateOpen
	}
}

// LeasedCount reports how many tasks the campaign currently has leased, for
// per-tenant quota accounting. Lapsed leases are reaped first so a stalled
// worker does not pin its tenant at quota.
func (c *Coordinator) LeasedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.now())
	return len(c.leases)
}

// EventsSince returns the campaign events with Seq > after, plus a channel
// closed the next time any event is appended — the long-poll/SSE wait
// primitive. An empty slice with an open channel means "nothing new yet".
func (c *Coordinator) EventsSince(after int) ([]Event, <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := c.eventsCh
	if after < 0 {
		after = 0
	}
	if after >= len(c.events) {
		return nil, ch
	}
	out := make([]Event, len(c.events)-after)
	copy(out, c.events[after:])
	return out, ch
}

// Info snapshots the campaign for the registry listing.
func (c *Coordinator) Info() CampaignInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CampaignInfo{
		ID:          c.id,
		Tenant:      c.tenant,
		Priority:    c.priority,
		Fingerprint: c.fingerprint,
		State:       c.stateLocked(),
		Crossval:    c.crossval(),
		Done:        c.doneN,
		Total:       len(c.tasks),
		FromCache:   int(c.counters.TasksFromCache),
		Verdict:     c.verdictLocked(),
	}
}

// SpecResponse returns the campaign document handed to workers.
func (c *Coordinator) SpecResponse() SpecResponse {
	return SpecResponse{Spec: c.doc, Fingerprint: c.fingerprint, Lease: c.leaseDur}
}

// Status snapshots the fleet.
func (c *Coordinator) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reapLocked(now)
	st := StatusResponse{
		ID:       c.id,
		Tenant:   c.tenant,
		Priority: c.priority,
		State:    c.stateLocked(),
		Total:    len(c.tasks),
		Done:     c.doneN,
		Leased:   len(c.leases),
		Counters: c.counters,
	}
	st.Queued = st.Total - st.Done - st.Leased
	for _, rep := range c.results {
		if rep == nil {
			continue
		}
		st.Findings += len(rep.Findings)
		st.States += rep.StatesExplored
	}
	if c.crossval() {
		// Findings in crossval mode are pooled mismatches; States the pooled
		// symbolic exploration size.
		for _, prs := range c.xresults {
			for i := range prs {
				st.Findings += len(prs[i].Mismatches)
				st.States += prs[i].Sym.States
			}
		}
	}
	st.Verdict = c.verdictLocked()
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := c.workers[id]
		leased := make([]int, 0, len(w.leased))
		for t := range w.leased {
			leased = append(leased, t)
		}
		sort.Ints(leased)
		age := now.Sub(w.lastSeen)
		st.Workers = append(st.Workers, WorkerStatus{
			ID:        id,
			LastSeen:  age,
			Live:      age <= c.leaseDur,
			Leased:    leased,
			Completed: w.completed,
		})
	}
	return st
}

// verdictLocked pools the verdict over the tasks done so far. For a crossval
// campaign "refuted" means a conclusive SymbolicMiss pooled: the symbolic
// engine's soundness claim is what the campaign checks.
func (c *Coordinator) verdictLocked() string {
	if c.cancelled && c.doneN < len(c.tasks) {
		return StateCancelled
	}
	if c.crossval() {
		for _, prs := range c.xresults {
			for i := range prs {
				for _, m := range prs[i].Mismatches {
					if m.Class == crossval.SymbolicMiss && !m.Inconclusive {
						return checker.VerdictRefuted.String()
					}
				}
			}
		}
		if c.doneN < len(c.tasks) {
			return "open"
		}
		for _, rep := range c.results {
			if !rep.Completed {
				return checker.VerdictInconclusive.String()
			}
		}
		return checker.VerdictProven.String()
	}
	for _, rep := range c.results {
		if rep != nil && len(rep.Findings) > 0 {
			return checker.VerdictRefuted.String()
		}
	}
	if c.doneN < len(c.tasks) {
		return "open"
	}
	for _, rep := range c.results {
		if !rep.Completed || rep.Panics > 0 {
			return checker.VerdictInconclusive.String()
		}
	}
	return checker.VerdictProven.String()
}

// Report pools the campaign. Settled tasks carry their folded reports; a
// task still open appears Interrupted with empty tallies, exactly how
// cluster.RunCtx reports tasks a cancelled study never started. When
// Complete is true the report is identical to a single-process cluster.Run
// over the same spec and split.
func (c *Coordinator) Report() MergedReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := MergedReport{Complete: c.doneN == len(c.tasks)}
	out.Tasks = make([]cluster.TaskReport, len(c.tasks))
	for id := range c.tasks {
		if rep := c.results[id]; rep != nil {
			out.Tasks[id] = *rep
			continue
		}
		out.Tasks[id] = cluster.TaskReport{
			TaskID:      c.tasks[id].ID,
			Interrupted: true,
			Outcomes:    map[symexec.Outcome]int{},
		}
	}
	out.Summary = cluster.Summarize(out.Tasks)
	if c.crossval() {
		var pooled []crossval.PointReport
		for _, prs := range c.xresults {
			pooled = append(pooled, prs...)
		}
		xrep := crossval.Merge(c.xspec, pooled)
		xrep.Interrupted = !out.Complete
		out.Crossval = xrep
	}
	return out
}

// Close flushes and closes the task journal, if any. Registry-owned
// coordinators share their store's lifecycle and have no closePersist.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closePersist == nil {
		return nil
	}
	err := c.closePersist()
	c.closePersist = nil
	c.persist = nil
	return err
}

// Handler is the coordinator's HTTP API (see protocol.go), plus the obs
// operational endpoints: /metrics (Prometheus text), /debug/vars (expvar
// JSON carrying the full "symplfied" snapshot) and /debug/pprof/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathSpec, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.SpecResponse())
	})
	mux.HandleFunc(PathClaim, func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.Claim(req.Worker))
	})
	mux.HandleFunc(PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := c.Heartbeat(req.Worker, req.Task); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc(PathComplete, func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := c.Complete(req.Worker, req.Task, req.Result)
		if err != nil && !resp.Accepted {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc(PathSummaryGet, func(w http.ResponseWriter, r *http.Request) {
		var req SummaryGetRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.SummaryGet(req.Key))
	})
	mux.HandleFunc(PathSummaryPut, func(w http.ResponseWriter, r *http.Request) {
		var req SummaryPutRequest
		if !readJSON(w, r, &req) {
			return
		}
		if !c.SummaryPut(req.Key, req.Value) {
			http.Error(w, "value does not decode as a function summary", http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	mux.HandleFunc(PathReport, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Report())
	})
	obs.RegisterOps(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}
