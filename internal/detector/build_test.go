package detector

import (
	"testing"

	"symplfied/internal/isa"
)

// TestBuildRoundTrip: programmatically built detectors render to det(...)
// syntax that Parse reads back structurally equal.
func TestBuildRoundTrip(t *testing.T) {
	cases := []struct {
		target isa.Loc
		cmp    isa.Cmp
		expr   Expr
	}{
		{isa.RegLoc(5), isa.CmpEq, Num(42)},
		{isa.RegLoc(1), isa.CmpGe, Bin(isa.BinAdd, Reg(2), Num(-7))},
		{isa.MemLoc(100), isa.CmpNe, Mem(200)},
		{isa.RegLoc(31), isa.CmpEq, Mem(1 << 20)},
		{isa.RegLoc(3), isa.CmpLt, Bin(isa.BinMult, Bin(isa.BinSub, Reg(4), Num(1)), Reg(5))},
		{isa.RegLoc(9), isa.CmpLe, Bin(isa.BinDiv, Num(100), Reg(6))},
	}
	for i, tc := range cases {
		d, err := New(int64(i+1), tc.target, tc.cmp, tc.expr)
		if err != nil {
			t.Fatalf("New(%d): %v", i+1, err)
		}
		back, err := Parse(d.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", d.String(), err)
		}
		if !Equal(d, back) {
			t.Errorf("round trip changed %s: got %s", d, back)
		}
	}
}

// TestBuildRejectsOutsideGrammar: operators Parse cannot read back are
// construction errors, not latent render-time corruption.
func TestBuildRejectsOutsideGrammar(t *testing.T) {
	if _, err := New(1, isa.RegLoc(1), isa.CmpEq, Bin(isa.BinXor, Reg(1), Num(1))); err == nil {
		t.Error("xor accepted into the detector grammar")
	}
	if _, err := New(1, isa.RegLoc(1), isa.CmpEq, nil); err == nil {
		t.Error("nil expression accepted")
	}
	if _, err := New(1, isa.RegLoc(1), isa.CmpEq, Bin(isa.BinAdd, Reg(1), nil)); err == nil {
		t.Error("incomplete expression accepted")
	}
}

// TestExprEqualDiscriminates: equality is structural, not textual.
func TestExprEqualDiscriminates(t *testing.T) {
	if ExprEqual(Num(1), Reg(1)) {
		t.Error("Const(1) == RegRef($1)")
	}
	if ExprEqual(Bin(isa.BinAdd, Num(1), Num(2)), Bin(isa.BinAdd, Num(2), Num(1))) {
		t.Error("operand order ignored")
	}
	if !ExprEqual(Bin(isa.BinSub, Mem(4), Reg(2)), Bin(isa.BinSub, Mem(4), Reg(2))) {
		t.Error("identical trees unequal")
	}
}
