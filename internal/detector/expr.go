package detector

import (
	"errors"
	"fmt"
	"strconv"

	"symplfied/internal/isa"
	"symplfied/internal/symbolic"
)

// Expr is a detector arithmetic expression, per the paper's grammar
// (Section 5.3):
//
//	Expr ::= Expr + Expr | Expr - Expr | Expr * Expr | Expr / Expr
//	       | (c) | (RegName) | *(memory address)
type Expr interface {
	fmt.Stringer
	eval(env Env, affine bool) (symbolic.Operand, error)
}

// Const is an integer literal.
type Const struct{ V int64 }

// RegRef reads a register.
type RegRef struct{ R isa.Reg }

// MemRef reads a memory word at a fixed address.
type MemRef struct{ Addr int64 }

// BinExpr combines two subexpressions with an arithmetic operator.
type BinExpr struct {
	Op   isa.BinOp
	L, R Expr
}

var (
	_ Expr = Const{}
	_ Expr = RegRef{}
	_ Expr = MemRef{}
	_ Expr = BinExpr{}
)

// String renders the literal.
func (c Const) String() string { return strconv.FormatInt(c.V, 10) }

// String renders the register reference.
func (r RegRef) String() string { return r.R.String() }

// String renders the memory reference in *(addr) syntax.
func (m MemRef) String() string { return "*(" + strconv.FormatInt(m.Addr, 10) + ")" }

// String renders the operation with explicit parentheses.
func (b BinExpr) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

func (c Const) eval(Env, bool) (symbolic.Operand, error) {
	return symbolic.ConcreteOperand(c.V), nil
}

func (r RegRef) eval(env Env, _ bool) (symbolic.Operand, error) {
	return env.RegOperand(r.R), nil
}

func (m MemRef) eval(env Env, _ bool) (symbolic.Operand, error) {
	op, ok := env.MemOperand(m.Addr)
	if !ok {
		return symbolic.Operand{}, fmt.Errorf("undefined memory *(%d)", m.Addr)
	}
	return op, nil
}

func (b BinExpr) eval(env Env, affine bool) (symbolic.Operand, error) {
	l, err := b.L.eval(env, affine)
	if err != nil {
		return symbolic.Operand{}, err
	}
	r, err := b.R.eval(env, affine)
	if err != nil {
		return symbolic.Operand{}, err
	}
	res := symbolic.PropagateBin(b.Op, l, r, affine)
	switch {
	case res.DivZero:
		return symbolic.Operand{}, errors.New("division by zero in detector expression")
	case res.ForkOnDivisor:
		// Detectors are assumed error-free (Section 5.3): an erroneous
		// divisor conservatively yields err without forking a div-zero case
		// inside the detector itself.
		return symbolic.Operand{Val: isa.Err()}, nil
	}
	return symbolic.Operand{Val: res.Val, Term: res.Term, HasTerm: res.HasTerm}, nil
}
