// Package detector implements SymPLFIED's detector model (paper Section 5.3):
// executable checks, written outside the program and invoked in line through
// CHECK annotations, that test whether a register or memory location
// satisfies a comparison against an arithmetic expression. A failed check
// throws an exception and halts the program ("detected").
//
// Detector execution is assumed error-free (the paper's assumption): the
// evaluation of a detector expression never itself raises machine
// exceptions. A detector spec whose expression divides by a concrete zero or
// reads an undefined memory word is a specification error surfaced to the
// caller, not a machine fault.
package detector

import (
	"fmt"

	"symplfied/internal/isa"
	"symplfied/internal/symbolic"
)

// Detector is one error detector:
//
//	det(ID, target, cmp, expr)
//
// The check passes when value(target) cmp value(expr) holds.
type Detector struct {
	ID     int64
	Target isa.Loc
	Cmp    isa.Cmp
	Expr   Expr
}

// String renders the detector in the paper's det(...) syntax.
func (d *Detector) String() string {
	return fmt.Sprintf("det(%d, %s, %s, %s)", d.ID, d.Target, d.Cmp, d.Expr)
}

// Table holds the detectors available to a program, indexed by ID.
type Table struct {
	byID map[int64]*Detector
	ids  []int64
}

// NewTable builds a table. Duplicate IDs are rejected.
func NewTable(dets ...*Detector) (*Table, error) {
	t := &Table{byID: make(map[int64]*Detector, len(dets))}
	for _, d := range dets {
		if err := t.Add(d); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// EmptyTable returns a table with no detectors.
func EmptyTable() *Table { return &Table{byID: make(map[int64]*Detector)} }

// Add inserts a detector, rejecting duplicate IDs.
func (t *Table) Add(d *Detector) error {
	if d == nil {
		return fmt.Errorf("nil detector")
	}
	if _, dup := t.byID[d.ID]; dup {
		return fmt.Errorf("duplicate detector ID %d", d.ID)
	}
	t.byID[d.ID] = d
	t.ids = append(t.ids, d.ID)
	return nil
}

// NextID returns an ID not yet present in the table (used by the assembler's
// inline-check sugar).
func (t *Table) NextID() int64 {
	id := int64(1)
	for {
		if _, taken := t.byID[id]; !taken {
			return id
		}
		id++
	}
}

// Lookup returns the detector with the given ID.
func (t *Table) Lookup(id int64) (*Detector, bool) {
	d, ok := t.byID[id]
	return d, ok
}

// Len returns the number of detectors.
func (t *Table) Len() int { return len(t.byID) }

// All returns the detectors in insertion order.
func (t *Table) All() []*Detector {
	out := make([]*Detector, 0, len(t.ids))
	for _, id := range t.ids {
		out = append(out, t.byID[id])
	}
	return out
}

// Env provides operand values for expression evaluation. Both the concrete
// machine and the symbolic executor implement it; the symbolic executor's
// operands carry affine terms so that detector comparisons feed the
// constraint solver (the paper's "execution of a detector also updates the
// constraints ... in the ConstraintMap").
type Env interface {
	// RegOperand returns the current value of a register.
	RegOperand(r isa.Reg) symbolic.Operand
	// MemOperand returns the current value of a memory word; ok is false if
	// the location is undefined.
	MemOperand(addr int64) (op symbolic.Operand, ok bool)
}

// SpecError reports a malformed detector: an expression that cannot be
// evaluated without faulting (divide by concrete zero, undefined memory).
type SpecError struct {
	Detector int64
	Reason   string
}

// Error implements the error interface.
func (e *SpecError) Error() string {
	return fmt.Sprintf("detector %d specification error: %s", e.Detector, e.Reason)
}

var _ error = (*SpecError)(nil)

// TargetOperand evaluates the detector's checked location in env.
func (d *Detector) TargetOperand(env Env) (symbolic.Operand, error) {
	if !d.Target.IsMem {
		return env.RegOperand(d.Target.Reg), nil
	}
	op, ok := env.MemOperand(d.Target.Addr)
	if !ok {
		return symbolic.Operand{}, &SpecError{Detector: d.ID, Reason: fmt.Sprintf("undefined memory %s", d.Target)}
	}
	return op, nil
}

// EvalExpr evaluates the detector's expression in env. Affine term tracking
// follows the affine flag (see symbolic.PropagateBin).
func (d *Detector) EvalExpr(env Env, affine bool) (symbolic.Operand, error) {
	op, err := d.Expr.eval(env, affine)
	if err != nil {
		return symbolic.Operand{}, &SpecError{Detector: d.ID, Reason: err.Error()}
	}
	return op, nil
}
