package detector

import (
	"fmt"
	"strings"

	"symplfied/internal/isa"
)

// ParseInlineCheck parses the assembler's inline check sugar, the form used
// in the paper's Figure 3:
//
//	check ($4 < $3)
//	check ($2 >= $6 * $1)
//
// body is the text inside the outer parentheses ("$4 < $3"). The left-hand
// side must be a checkable location (register or *(addr)); the right-hand
// side is an arbitrary detector expression. The result is a detector with the
// given ID.
func ParseInlineCheck(id int64, body string) (*Detector, error) {
	opPos, opLen, cmp, err := findTopLevelCmp(body)
	if err != nil {
		return nil, fmt.Errorf("inline check %q: %w", body, err)
	}
	lhs := strings.TrimSpace(body[:opPos])
	rhs := strings.TrimSpace(body[opPos+opLen:])
	// A parenthesized left-hand side like "($4)" is unwrapped; memory
	// references keep their own parentheses ("*(40)").
	for strings.HasPrefix(lhs, "(") && strings.HasSuffix(lhs, ")") {
		lhs = strings.TrimSpace(lhs[1 : len(lhs)-1])
	}
	target, err := isa.ParseLoc(lhs)
	if err != nil {
		return nil, fmt.Errorf("inline check %q: left-hand side must be a register or memory location: %w", body, err)
	}
	expr, err := ParseExpr(rhs)
	if err != nil {
		return nil, fmt.Errorf("inline check %q: %w", body, err)
	}
	return &Detector{ID: id, Target: target, Cmp: cmp, Expr: expr}, nil
}

// findTopLevelCmp locates the comparison operator at parenthesis depth zero.
func findTopLevelCmp(s string) (pos, length int, cmp isa.Cmp, err error) {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
			continue
		case ')':
			depth--
			continue
		}
		if depth != 0 {
			continue
		}
		rest := s[i:]
		for _, cand := range []string{"=/=", "!=", "==", ">=", "<=", ">", "<"} {
			if strings.HasPrefix(rest, cand) {
				c, ok := isa.CmpByName(cand)
				if !ok {
					continue
				}
				return i, len(cand), c, nil
			}
		}
	}
	return 0, 0, 0, fmt.Errorf("no comparison operator found")
}
