package detector

import (
	"strings"
	"testing"

	"symplfied/internal/isa"
	"symplfied/internal/symbolic"
)

// mapEnv is a simple detector.Env for tests.
type mapEnv struct {
	regs map[isa.Reg]symbolic.Operand
	mem  map[int64]symbolic.Operand
}

func (e *mapEnv) RegOperand(r isa.Reg) symbolic.Operand {
	if op, ok := e.regs[r]; ok {
		return op
	}
	return symbolic.ConcreteOperand(0)
}

func (e *mapEnv) MemOperand(addr int64) (symbolic.Operand, bool) {
	op, ok := e.mem[addr]
	return op, ok
}

var _ Env = (*mapEnv)(nil)

func TestParseDetectorSpec(t *testing.T) {
	d, err := Parse("det(4, $(5), ==, ($3) + *(1000))")
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != 4 || d.Target != isa.RegLoc(5) || d.Cmp != isa.CmpEq {
		t.Fatalf("parsed %+v", d)
	}
	if got := d.Expr.String(); got != "($3 + *(1000))" {
		t.Errorf("expr rendering %q", got)
	}
	// The paper's exact example renders back in det(...) syntax.
	if got := d.String(); !strings.HasPrefix(got, "det(4, $5, ==,") {
		t.Errorf("detector rendering %q", got)
	}
}

func TestParseSpecVariants(t *testing.T) {
	specs := []string{
		"det(1, $3, >, 5)",
		"det(2, *(100), <=, $4 * $5)",
		"det(3, $1, =/=, 2 + 3 * 4)",
		"det(4, $2, !=, (1 + 2) * 3)",
		"det(5, $6, >=, *(10) - *20 / 2)",
		"det (6, $7, <, -5)",
	}
	for _, s := range specs {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"check ($1 < $2)",
		"det(1, $3, >)",
		"det(x, $3, >, 5)",
		"det(1, $99, >, 5)",
		"det(1, $3, ~~, 5)",
		"det(1, $3, >, )",
		"det(1, $3, >, (1 + )",
		"det(1, $3, >, 5",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	env := &mapEnv{
		regs: map[isa.Reg]symbolic.Operand{1: symbolic.ConcreteOperand(10)},
		mem:  map[int64]symbolic.Operand{5: symbolic.ConcreteOperand(100)},
	}
	cases := []struct {
		expr string
		want int64
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"20 / 2 - 3", 7},
		{"20 - 6 / 3", 18},
		{"$1 * 2 + 1", 21},
		{"*(5) / $1", 10},
		{"*5 + *(5)", 200},
		{"-3 + 5", 2},
		{"2 - 3 - 4", -5}, // left associative
	}
	for _, c := range cases {
		e, err := ParseExpr(c.expr)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.expr, err)
			continue
		}
		op, err := e.eval(env, true)
		if err != nil {
			t.Errorf("eval(%q): %v", c.expr, err)
			continue
		}
		if v, ok := op.Val.Concrete(); !ok || v != c.want {
			t.Errorf("eval(%q) = %v, want %d", c.expr, op.Val, c.want)
		}
	}
}

func TestExprErrPropagation(t *testing.T) {
	env := &mapEnv{
		regs: map[isa.Reg]symbolic.Operand{
			2: symbolic.ErrOperand(symbolic.FreshTerm(0)),
			3: symbolic.ConcreteOperand(4),
		},
	}
	d, err := Parse("det(1, $5, ==, $2 * $3)")
	if err != nil {
		t.Fatal(err)
	}
	op, err := d.EvalExpr(env, true)
	if err != nil {
		t.Fatal(err)
	}
	if !op.Val.IsErr() || !op.HasTerm || op.Term.Coeff != 4 {
		t.Fatalf("err lineage lost in expression: %+v", op)
	}

	// Multiplying by a zero register masks the error (err * 0 = 0).
	d2, _ := Parse("det(1, $5, ==, $2 * $9)")
	op, err = d2.EvalExpr(env, true)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := op.Val.Concrete(); !ok || v != 0 {
		t.Fatalf("err * 0 = %v", op.Val)
	}
}

func TestExprSpecErrors(t *testing.T) {
	env := &mapEnv{regs: map[isa.Reg]symbolic.Operand{}}
	d, _ := Parse("det(9, $1, ==, *(77))")
	if _, err := d.EvalExpr(env, true); err == nil {
		t.Error("undefined memory read in expression accepted")
	} else {
		var se *SpecError
		if !asSpecError(err, &se) || se.Detector != 9 {
			t.Errorf("error %v not a SpecError for detector 9", err)
		}
	}

	d2, _ := Parse("det(9, $1, ==, 5 / 0)")
	if _, err := d2.EvalExpr(env, true); err == nil {
		t.Error("division by zero in expression accepted")
	}

	d3, _ := Parse("det(9, *(50), ==, 1)")
	if _, err := d3.TargetOperand(env); err == nil {
		t.Error("undefined memory target accepted")
	}
}

func asSpecError(err error, out **SpecError) bool {
	se, ok := err.(*SpecError)
	if ok {
		*out = se
	}
	return ok
}

func TestInlineCheckParsing(t *testing.T) {
	d, err := ParseInlineCheck(3, "$2 >= $6 * $1")
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != 3 || d.Target != isa.RegLoc(2) || d.Cmp != isa.CmpGe {
		t.Fatalf("parsed %+v", d)
	}

	d, err = ParseInlineCheck(1, "*(40) =/= $3 - 1")
	if err != nil {
		t.Fatal(err)
	}
	if d.Target != isa.MemLoc(40) || d.Cmp != isa.CmpNe {
		t.Fatalf("parsed %+v", d)
	}

	if _, err := ParseInlineCheck(1, "$1 $2"); err == nil {
		t.Error("missing comparison accepted")
	}
	if _, err := ParseInlineCheck(1, "5 < $3"); err == nil {
		t.Error("non-location left-hand side accepted")
	}
}

func TestTableSemantics(t *testing.T) {
	d1, _ := Parse("det(1, $1, ==, 0)")
	d2, _ := Parse("det(2, $2, ==, 0)")
	tbl, err := NewTable(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if _, ok := tbl.Lookup(2); !ok {
		t.Error("Lookup(2) failed")
	}
	if got := tbl.NextID(); got != 3 {
		t.Errorf("NextID = %d", got)
	}
	dup, _ := Parse("det(1, $9, ==, 0)")
	if err := tbl.Add(dup); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := tbl.Add(nil); err == nil {
		t.Error("nil detector accepted")
	}
	all := tbl.All()
	if len(all) != 2 || all[0].ID != 1 || all[1].ID != 2 {
		t.Errorf("All = %v", all)
	}
}
