package detector

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"symplfied/internal/isa"
)

// Parse parses a detector specification in the paper's syntax, e.g.
//
//	det(4, $(5), ==, ($3) + *(1000))
//
// Registers may be written $N or $(N); memory references *(addr) or *addr;
// the comparison is one of ==, =/=, !=, >, <, >=, <=.
func Parse(spec string) (*Detector, error) {
	s := strings.TrimSpace(spec)
	if !strings.HasPrefix(s, "det") {
		return nil, fmt.Errorf("detector spec %q: want det(...)", spec)
	}
	s = strings.TrimSpace(s[len("det"):])
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return nil, fmt.Errorf("detector spec %q: want det(ID, loc, cmp, expr)", spec)
	}
	body := s[1 : len(s)-1]

	parts, err := splitTopLevel(body)
	if err != nil {
		return nil, fmt.Errorf("detector spec %q: %w", spec, err)
	}
	if len(parts) != 4 {
		return nil, fmt.Errorf("detector spec %q: want 4 arguments, got %d", spec, len(parts))
	}
	id, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("detector spec %q: bad ID: %w", spec, err)
	}
	target, err := isa.ParseLoc(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, fmt.Errorf("detector spec %q: bad target: %w", spec, err)
	}
	cmp, ok := isa.CmpByName(strings.TrimSpace(parts[2]))
	if !ok {
		return nil, fmt.Errorf("detector spec %q: bad comparison %q", spec, strings.TrimSpace(parts[2]))
	}
	expr, err := ParseExpr(parts[3])
	if err != nil {
		return nil, fmt.Errorf("detector spec %q: bad expression: %w", spec, err)
	}
	return &Detector{ID: id, Target: target, Cmp: cmp, Expr: expr}, nil
}

// splitTopLevel splits on commas not nested inside parentheses.
func splitTopLevel(s string) ([]string, error) {
	var parts []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced parentheses")
			}
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced parentheses")
	}
	parts = append(parts, s[start:])
	return parts, nil
}

// ParseExpr parses a detector arithmetic expression.
func ParseExpr(src string) (Expr, error) {
	p := &exprParser{src: src}
	e, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing input %q", p.src[p.pos:])
	}
	return e, nil
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) parseSum() (Expr, error) {
	left, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '+':
			p.pos++
			right, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			left = BinExpr{Op: isa.BinAdd, L: left, R: right}
		case '-':
			p.pos++
			right, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			left = BinExpr{Op: isa.BinSub, L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *exprParser) parseProduct() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch {
		case p.peek() == '*' && !p.isMemRefAhead():
			p.pos++
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = BinExpr{Op: isa.BinMult, L: left, R: right}
		case p.peek() == '/':
			p.pos++
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = BinExpr{Op: isa.BinDiv, L: left, R: right}
		default:
			return left, nil
		}
	}
}

// isMemRefAhead disambiguates binary '*' from a memory reference: after an
// operator position, "*(" or "*123" begins a memory term only when it is the
// start of a term, which parseProduct never confuses because it checks for
// the operator between complete terms; a memory term directly after a
// complete term would be "x *(...)", which we treat as multiplication by a
// parenthesized expression only when followed by a second '*'. The simple
// rule: "*" followed immediately (no space) by '(' or a digit directly after
// another term is multiplication; this helper exists for the pathological
// "a * *(100)" case, where the first '*' is the operator.
func (p *exprParser) isMemRefAhead() bool {
	// The '*' under the cursor is an operator if a term already parsed on the
	// left; memory references are only recognized in parseTerm. So the
	// operator interpretation always wins here.
	return false
}

func (p *exprParser) parseTerm() (Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("unexpected end of expression")
	}
	switch c := p.src[p.pos]; {
	case c == '(':
		p.pos++
		e, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ')' at %d", p.pos)
		}
		p.pos++
		return e, nil
	case c == '$':
		p.pos++
		body, err := p.parseMaybeParenNumber()
		if err != nil {
			return nil, fmt.Errorf("bad register: %w", err)
		}
		if body < 0 || body >= isa.NumRegs {
			return nil, fmt.Errorf("register $%d out of range", body)
		}
		return RegRef{R: isa.Reg(body)}, nil
	case c == '*':
		p.pos++
		addr, err := p.parseMaybeParenNumber()
		if err != nil {
			return nil, fmt.Errorf("bad memory reference: %w", err)
		}
		return MemRef{Addr: addr}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		n, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return Const{V: n}, nil
	}
	return nil, fmt.Errorf("unexpected %q at %d", p.src[p.pos], p.pos)
}

func (p *exprParser) parseMaybeParenNumber() (int64, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		n, err := p.parseNumber()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing ')'")
		}
		p.pos++
		return n, nil
	}
	return p.parseNumber()
}

func (p *exprParser) parseNumber() (int64, error) {
	p.skipSpace()
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || (p.pos == start+1 && p.src[start] == '-') {
		return 0, fmt.Errorf("expected number at %d", start)
	}
	return strconv.ParseInt(p.src[start:p.pos], 10, 64)
}
