package detector

import (
	"fmt"

	"symplfied/internal/isa"
)

// This file is the programmatic counterpart of Parse: constructors for
// building detector expressions directly from static-analysis facts (the
// detector-hardening pass, internal/harden) and structural equality for
// verifying that a synthesized detector survives the round trip through its
// det(...) rendering and Parse.

// Num builds an integer literal expression.
func Num(v int64) Expr { return Const{V: v} }

// Reg builds a register reference expression.
func Reg(r isa.Reg) Expr { return RegRef{R: r} }

// Mem builds a memory reference expression for a fixed address.
func Mem(addr int64) Expr { return MemRef{Addr: addr} }

// Bin combines two expressions with an arithmetic operator.
func Bin(op isa.BinOp, l, r Expr) Expr { return BinExpr{Op: op, L: l, R: r} }

// New builds a detector and validates it the way Parse would: the expression
// must be non-nil and restricted to the paper's grammar (+ - * /; Parse
// cannot read back any other operator).
func New(id int64, target isa.Loc, cmp isa.Cmp, expr Expr) (*Detector, error) {
	if expr == nil {
		return nil, fmt.Errorf("detector %d: nil expression", id)
	}
	if err := checkGrammar(expr); err != nil {
		return nil, fmt.Errorf("detector %d: %w", id, err)
	}
	return &Detector{ID: id, Target: target, Cmp: cmp, Expr: expr}, nil
}

// checkGrammar rejects expression shapes outside the paper's Section 5.3
// grammar, which are exactly the shapes String renders but Parse rejects.
func checkGrammar(e Expr) error {
	switch e := e.(type) {
	case Const:
		return nil
	case RegRef:
		if !e.R.Valid() {
			return fmt.Errorf("invalid register %s", e.R)
		}
		return nil
	case MemRef:
		return nil
	case BinExpr:
		switch e.Op {
		case isa.BinAdd, isa.BinSub, isa.BinMult, isa.BinDiv:
		default:
			return fmt.Errorf("operator %s is outside the detector grammar", e.Op)
		}
		if e.L == nil || e.R == nil {
			return fmt.Errorf("incomplete %s expression", e.Op)
		}
		if err := checkGrammar(e.L); err != nil {
			return err
		}
		return checkGrammar(e.R)
	}
	return fmt.Errorf("unknown expression type %T", e)
}

// Equal reports whether two detectors are structurally identical: same ID,
// target, comparison and expression tree.
func Equal(a, b *Detector) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.ID == b.ID && a.Target == b.Target && a.Cmp == b.Cmp && ExprEqual(a.Expr, b.Expr)
}

// ExprEqual reports structural equality of two expression trees.
func ExprEqual(a, b Expr) bool {
	switch a := a.(type) {
	case Const:
		b, ok := b.(Const)
		return ok && a == b
	case RegRef:
		b, ok := b.(RegRef)
		return ok && a == b
	case MemRef:
		b, ok := b.(MemRef)
		return ok && a == b
	case BinExpr:
		b, ok := b.(BinExpr)
		return ok && a.Op == b.Op && ExprEqual(a.L, b.L) && ExprEqual(a.R, b.R)
	}
	return false
}
