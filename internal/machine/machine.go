// Package machine implements SymPLFIED's concrete machine model (paper
// Section 5.1): a deterministic interpreter for the generic assembly
// language, with native input/output, exceptions for invalid fetches,
// undefined memory reads and division by zero, a watchdog instruction bound
// (the paper's timeout), and CHECK-annotated error detectors.
//
// The machine corresponds to the equational part of the paper's Maude
// specification: for a given instruction sequence the final state is uniquely
// determined in the absence of errors. The nondeterministic error semantics
// live in internal/symexec.
//
// For the concrete fault-injection baseline (internal/simplescalar) the
// machine exposes a pre-step hook that can mutate architectural state at a
// chosen dynamic instruction, emulating the paper's augmented SimpleScalar.
package machine

import (
	"context"
	"fmt"
	"strings"

	"symplfied/internal/detector"
	"symplfied/internal/isa"
	"symplfied/internal/symbolic"
)

// DefaultWatchdog is the default instruction bound. It must be conservative:
// larger than any correct execution of the analyzed programs (Section 5.4).
//
// This constant is shared with the symbolic engine: symexec.DefaultOptions
// resolves its watchdog to DefaultWatchdog, and both engines raise ExcTimeout
// through the identical "steps >= watchdog" check before executing the next
// instruction. Hang classification therefore agrees between the concrete and
// symbolic executors by construction (pinned by TestHangClassificationParity
// and relied on by internal/crossval when diffing the two engines).
const DefaultWatchdog = 1_000_000

// OutItem is one element of the output stream: a printed value or a printed
// string literal.
type OutItem struct {
	IsStr bool
	Str   string
	Val   isa.Value
}

// String renders the item as it would appear on the program's output.
func (o OutItem) String() string {
	if o.IsStr {
		return o.Str
	}
	return o.Val.String()
}

// RenderOutput renders a whole output stream.
func RenderOutput(out []OutItem) string {
	var b strings.Builder
	for _, o := range out {
		b.WriteString(o.String())
	}
	return b.String()
}

// OutputValues extracts just the printed values (ignoring string literals).
func OutputValues(out []OutItem) []isa.Value {
	var vs []isa.Value
	for _, o := range out {
		if !o.IsStr {
			vs = append(vs, o.Val)
		}
	}
	return vs
}

// Status describes where an execution ended up.
type Status int

// Execution statuses.
const (
	StatusRunning Status = iota + 1
	StatusHalted         // executed halt
	StatusExcepted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusHalted:
		return "halted"
	case StatusExcepted:
		return "excepted"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Options configures a machine run.
type Options struct {
	// Watchdog bounds the number of executed instructions; 0 selects
	// DefaultWatchdog.
	Watchdog int
	// Detectors supplies the detector table for CHECK instructions; nil
	// means CHECK raises a specification error.
	Detectors *detector.Table
	// PreStep, if non-nil, runs before each instruction executes. It is the
	// fault-injection hook: step is the 0-based dynamic instruction index
	// about to execute. The hook may mutate the machine.
	PreStep func(m *Machine, step int)
}

// Machine is a concrete interpreter instance. Create one with New, then call
// Run (or Step in a loop).
type Machine struct {
	prog     *isa.Program
	regs     [isa.NumRegs]isa.Value
	mem      map[int64]isa.Value
	pc       int
	in       []isa.Value
	inPos    int
	out      []OutItem
	steps    int
	status   Status
	exc      *isa.Exception
	watchdog int
	dets     *detector.Table
	preStep  func(m *Machine, step int)
}

// New creates a machine for prog with the given input stream.
func New(prog *isa.Program, input []int64, opts Options) *Machine {
	m := &Machine{
		prog:     prog,
		mem:      make(map[int64]isa.Value),
		in:       make([]isa.Value, len(input)),
		status:   StatusRunning,
		watchdog: opts.Watchdog,
		dets:     opts.Detectors,
		preStep:  opts.PreStep,
	}
	for i, v := range input {
		m.in[i] = isa.Int(v)
	}
	if m.watchdog <= 0 {
		m.watchdog = DefaultWatchdog
	}
	if m.dets == nil {
		m.dets = detector.EmptyTable()
	}
	return m
}

// Program returns the program being executed.
func (m *Machine) Program() *isa.Program { return m.prog }

// PC returns the current program counter.
func (m *Machine) PC() int { return m.pc }

// Steps returns the number of instructions executed so far.
func (m *Machine) Steps() int { return m.steps }

// Status returns the execution status.
func (m *Machine) Status() Status { return m.status }

// Exception returns the terminating exception, if any.
func (m *Machine) Exception() *isa.Exception { return m.exc }

// InputConsumed returns how many input values have been read so far.
func (m *Machine) InputConsumed() int { return m.inPos }

// RunUntil executes until the machine is about to execute the instruction at
// pc for the occurrence-th time (1-based), or until it stops. It returns true
// if the breakpoint was reached with the machine still running.
func (m *Machine) RunUntil(pc, occurrence int) bool {
	if occurrence <= 0 {
		occurrence = 1
	}
	seen := 0
	for m.status == StatusRunning {
		if m.pc == pc {
			seen++
			if seen >= occurrence {
				return true
			}
		}
		m.Step()
	}
	return false
}

// Output returns the output stream produced so far. The slice is a copy.
func (m *Machine) Output() []OutItem {
	out := make([]OutItem, len(m.out))
	copy(out, m.out)
	return out
}

// Reg returns the value of register r ($0 always reads 0).
func (m *Machine) Reg(r isa.Reg) isa.Value {
	if r == isa.RegZero {
		return isa.Int(0)
	}
	return m.regs[r]
}

// SetReg writes register r; writes to $0 are discarded. It is exported for
// the fault-injection hook.
func (m *Machine) SetReg(r isa.Reg, v isa.Value) {
	if r == isa.RegZero {
		return
	}
	m.regs[r] = v
}

// Mem returns the memory word at addr; ok is false for undefined locations.
func (m *Machine) Mem(addr int64) (isa.Value, bool) {
	v, ok := m.mem[addr]
	return v, ok
}

// SetMem writes the memory word at addr, defining it if needed. Exported for
// the fault-injection hook and program loaders.
func (m *Machine) SetMem(addr int64, v isa.Value) { m.mem[addr] = v }

// SetPC repositions the program counter. Exported for the fault-injection
// hook (PC errors). An invalid target raises "illegal instruction" at the
// next step.
func (m *Machine) SetPC(pc int) { m.pc = pc }

// MemSnapshot returns a copy of the defined memory.
func (m *Machine) MemSnapshot() map[int64]isa.Value {
	out := make(map[int64]isa.Value, len(m.mem))
	for a, v := range m.mem {
		out[a] = v
	}
	return out
}

// RegOperand implements detector.Env.
func (m *Machine) RegOperand(r isa.Reg) symbolic.Operand {
	v := m.Reg(r)
	if n, ok := v.Concrete(); ok {
		return symbolic.ConcreteOperand(n)
	}
	return symbolic.Operand{Val: isa.Err()}
}

// MemOperand implements detector.Env.
func (m *Machine) MemOperand(addr int64) (symbolic.Operand, bool) {
	v, ok := m.mem[addr]
	if !ok {
		return symbolic.Operand{}, false
	}
	if n, okc := v.Concrete(); okc {
		return symbolic.ConcreteOperand(n), true
	}
	return symbolic.Operand{Val: isa.Err()}, true
}

var _ detector.Env = (*Machine)(nil)

// Result summarizes a finished run.
type Result struct {
	Status    Status
	Exception *isa.Exception
	Output    []OutItem
	Steps     int
}

// Run executes until halt, exception, or watchdog expiry, and returns the
// summary. Calling Run on a finished machine returns the existing result.
func (m *Machine) Run() Result {
	for m.status == StatusRunning {
		m.Step()
	}
	return Result{Status: m.status, Exception: m.exc, Output: m.Output(), Steps: m.steps}
}

// runCtxPollMask gates how often RunCtx polls the context: every
// runCtxPollMask+1 executed instructions. A power-of-two mask keeps the check
// off the interpreter hot path while still bounding cancellation latency to
// ~1k instructions.
const runCtxPollMask = 1023

// RunCtx executes like Run but polls ctx between instructions, so a
// cancellation or deadline interrupts the run even inside a tight loop that
// the watchdog would only stop much later. An interrupted machine is left
// with StatusRunning and the partial result is returned; callers distinguish
// interruption from completion via ctx.Err().
func (m *Machine) RunCtx(ctx context.Context) Result {
	for m.status == StatusRunning {
		if m.steps&runCtxPollMask == 0 && ctx.Err() != nil {
			break
		}
		m.Step()
	}
	return Result{Status: m.status, Exception: m.exc, Output: m.Output(), Steps: m.steps}
}

func (m *Machine) raise(kind isa.ExceptionKind, detail string) {
	m.status = StatusExcepted
	m.exc = &isa.Exception{Kind: kind, PC: m.pc, Detail: detail}
}

// Step executes one instruction. It is a no-op once the machine has stopped.
func (m *Machine) Step() {
	if m.status != StatusRunning {
		return
	}
	if m.steps >= m.watchdog {
		m.raise(isa.ExcTimeout, fmt.Sprintf("watchdog after %d instructions", m.steps))
		return
	}
	if m.preStep != nil {
		m.preStep(m, m.steps)
		if m.status != StatusRunning {
			return
		}
	}
	if !m.prog.ValidPC(m.pc) {
		m.raise(isa.ExcIllegalInstr, fmt.Sprintf("fetch from %d", m.pc))
		return
	}
	in := m.prog.At(m.pc)
	m.steps++
	m.exec(in)
}

// concreteReg fetches a register and reports whether it held a concrete
// value; the concrete machine treats a (hook-injected) err as an illegal
// operand, since the concrete model has no symbolic semantics.
func (m *Machine) concreteReg(r isa.Reg) (int64, bool) {
	return m.Reg(r).Concrete()
}

func (m *Machine) exec(in isa.Instr) {
	if bin, imm, ok := isa.ArithOp(in.Op); ok {
		m.execArith(in, bin, imm)
		return
	}
	if cmp, imm, ok := isa.CmpForOp(in.Op); ok {
		m.execSetCmp(in, cmp, imm)
		return
	}
	switch in.Op {
	case isa.OpMov:
		m.SetReg(in.Rd, m.Reg(in.Rs))
		m.pc++
	case isa.OpLi:
		m.SetReg(in.Rd, isa.Int(in.Imm))
		m.pc++
	case isa.OpLui:
		m.SetReg(in.Rd, isa.Int(in.Imm<<16))
		m.pc++
	case isa.OpLd:
		m.execLoad(in)
	case isa.OpSt:
		m.execStore(in)
	case isa.OpBeq, isa.OpBne, isa.OpBeqi, isa.OpBnei:
		m.execBranch(in)
	case isa.OpJmp:
		m.pc = in.Target
	case isa.OpJal:
		m.SetReg(isa.RegRA, isa.Int(int64(m.pc+1)))
		m.pc = in.Target
	case isa.OpJr:
		m.execJr(in)
	case isa.OpRead:
		m.execRead(in)
	case isa.OpPrint:
		m.out = append(m.out, OutItem{Val: m.Reg(in.Rd)})
		m.pc++
	case isa.OpPrints:
		m.out = append(m.out, OutItem{IsStr: true, Str: in.Str})
		m.pc++
	case isa.OpNop:
		m.pc++
	case isa.OpHalt:
		m.status = StatusHalted
	case isa.OpThrow:
		m.raise(isa.ExcThrow, in.Str)
	case isa.OpCheck:
		m.execCheck(in)
	default:
		m.raise(isa.ExcIllegalInstr, fmt.Sprintf("unsupported opcode %s", in.Op))
	}
}

func (m *Machine) execArith(in isa.Instr, bin isa.BinOp, imm bool) {
	x, okX := m.concreteReg(in.Rs)
	if !okX {
		m.raise(isa.ExcIllegalAddr, "erroneous operand in concrete machine")
		return
	}
	var y int64
	if imm {
		y = in.Imm
	} else {
		var okY bool
		y, okY = m.concreteReg(in.Rt)
		if !okY {
			m.raise(isa.ExcIllegalAddr, "erroneous operand in concrete machine")
			return
		}
	}
	v, err := isa.EvalBin(bin, x, y)
	if err != nil {
		m.raise(isa.ExcDivZero, "")
		return
	}
	m.SetReg(in.Rd, isa.Int(v))
	m.pc++
}

func (m *Machine) execSetCmp(in isa.Instr, cmp isa.Cmp, imm bool) {
	x, okX := m.concreteReg(in.Rs)
	var (
		y   int64
		okY = true
	)
	if imm {
		y = in.Imm
	} else {
		y, okY = m.concreteReg(in.Rt)
	}
	if !okX || !okY {
		m.raise(isa.ExcIllegalAddr, "erroneous operand in concrete machine")
		return
	}
	res := int64(0)
	if isa.EvalCmp(cmp, x, y) {
		res = 1
	}
	m.SetReg(in.Rd, isa.Int(res))
	m.pc++
}

func (m *Machine) execLoad(in isa.Instr) {
	base, ok := m.concreteReg(in.Rs)
	if !ok {
		m.raise(isa.ExcIllegalAddr, "erroneous address in concrete machine")
		return
	}
	addr := base + in.Imm
	v, defined := m.mem[addr]
	if !defined {
		m.raise(isa.ExcIllegalAddr, fmt.Sprintf("load from undefined %d", addr))
		return
	}
	m.SetReg(in.Rt, v)
	m.pc++
}

func (m *Machine) execStore(in isa.Instr) {
	base, ok := m.concreteReg(in.Rs)
	if !ok {
		m.raise(isa.ExcIllegalAddr, "erroneous address in concrete machine")
		return
	}
	m.mem[base+in.Imm] = m.Reg(in.Rt)
	m.pc++
}

func (m *Machine) execBranch(in isa.Instr) {
	x, okX := m.concreteReg(in.Rs)
	var (
		y   int64
		okY = true
	)
	switch in.Op {
	case isa.OpBeq, isa.OpBne:
		y, okY = m.concreteReg(in.Rt)
	default:
		y = in.Imm
	}
	if !okX || !okY {
		m.raise(isa.ExcIllegalAddr, "erroneous operand in concrete machine")
		return
	}
	equal := x == y
	taken := equal
	if in.Op == isa.OpBne || in.Op == isa.OpBnei {
		taken = !equal
	}
	if taken {
		m.pc = in.Target
	} else {
		m.pc++
	}
}

func (m *Machine) execJr(in isa.Instr) {
	target, ok := m.concreteReg(in.Rs)
	if !ok {
		m.raise(isa.ExcIllegalInstr, "erroneous jump target in concrete machine")
		return
	}
	m.pc = int(target)
	// Validity is checked at the next fetch, mirroring the paper's "attempt
	// to fetch an instruction from an invalid code address" exception.
}

func (m *Machine) execRead(in isa.Instr) {
	if m.inPos >= len(m.in) {
		m.raise(isa.ExcThrow, "end of input")
		return
	}
	m.SetReg(in.Rd, m.in[m.inPos])
	m.inPos++
	m.pc++
}

func (m *Machine) execCheck(in isa.Instr) {
	det, ok := m.dets.Lookup(in.Imm)
	if !ok {
		m.raise(isa.ExcThrow, fmt.Sprintf("unknown detector %d", in.Imm))
		return
	}
	target, err := det.TargetOperand(m)
	if err != nil {
		m.raise(isa.ExcThrow, err.Error())
		m.exc.Detector = det.ID
		return
	}
	expr, err := det.EvalExpr(m, false)
	if err != nil {
		m.raise(isa.ExcThrow, err.Error())
		m.exc.Detector = det.ID
		return
	}
	tc, okT := target.Val.Concrete()
	ec, okE := expr.Val.Concrete()
	if !okT || !okE {
		// A hook-injected err reached a detector in the concrete machine:
		// conservatively detect.
		m.raise(isa.ExcDetected, fmt.Sprintf("detector %d (erroneous operand)", det.ID))
		m.exc.Detector = det.ID
		return
	}
	if !isa.EvalCmp(det.Cmp, tc, ec) {
		m.raise(isa.ExcDetected, fmt.Sprintf("detector %d: %s", det.ID, det))
		m.exc.Detector = det.ID
		return
	}
	m.pc++
}
