package machine_test

// Hang classification parity: the concrete machine and the symbolic executor
// must agree, by construction, on when a run is a Hang. Both engines share
// machine.DefaultWatchdog and both raise ExcTimeout from the identical
// "steps >= watchdog" guard before executing the next instruction, so a
// spin-loop unit times out at exactly the same dynamic instruction count in
// either engine. internal/crossval relies on this when diffing concrete
// results against symbolic outcomes.

import (
	"context"
	"testing"

	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

// spinLoop is a unit that never halts: the watchdog is the only way out.
func spinLoop(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("spin")
	b.Label("top")
	b.Addi(isa.Reg(1), isa.Reg(1), 1)
	b.Jmp("top")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("build spin loop: %v", err)
	}
	return prog
}

func TestHangClassificationParity(t *testing.T) {
	prog := spinLoop(t)
	for _, watchdog := range []int{1, 2, 10, 100, 1000} {
		m := machine.New(prog, nil, machine.Options{Watchdog: watchdog})
		res := m.Run()
		if res.Status != machine.StatusExcepted || res.Exception == nil || res.Exception.Kind != isa.ExcTimeout {
			t.Fatalf("watchdog %d: concrete machine did not time out: %+v", watchdog, res)
		}

		st := symexec.NewState(prog, nil, nil, symexec.Options{Watchdog: watchdog})
		for st.Running() {
			if !st.StepInPlace() {
				t.Fatalf("watchdog %d: fault-free spin loop forked symbolically", watchdog)
			}
		}
		if st.Outcome() != symexec.OutcomeHang {
			t.Fatalf("watchdog %d: symbolic outcome %v, want Hang", watchdog, st.Outcome())
		}
		if res.Steps != st.Steps {
			t.Fatalf("watchdog %d: hang at step %d concretely but %d symbolically", watchdog, res.Steps, st.Steps)
		}
	}
}

// TestDefaultWatchdogShared pins the constant both engines resolve to when no
// explicit watchdog is configured.
func TestDefaultWatchdogShared(t *testing.T) {
	if got := symexec.DefaultOptions().Watchdog; got != machine.DefaultWatchdog {
		t.Fatalf("symexec default watchdog %d != machine default %d", got, machine.DefaultWatchdog)
	}
}

// TestRunCtxInterruptsSpinLoop exercises the cooperative cancellation path:
// a cancelled context must stop a spin loop long before a large watchdog
// would, leaving the machine running so callers can tell interruption from
// completion.
func TestRunCtxInterruptsSpinLoop(t *testing.T) {
	prog := spinLoop(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := machine.New(prog, nil, machine.Options{Watchdog: 50_000_000})
	res := m.RunCtx(ctx)
	if res.Status != machine.StatusRunning {
		t.Fatalf("interrupted run finished with %v", res.Status)
	}
	if res.Steps > 2048 {
		t.Fatalf("cancelled run executed %d instructions before stopping", res.Steps)
	}
}
