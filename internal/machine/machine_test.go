package machine

import (
	"strings"
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

func runSrc(t *testing.T, src string, input []int64, opts Options) Result {
	t.Helper()
	u := asm.MustParse("t", src)
	if opts.Detectors == nil {
		opts.Detectors = u.Detectors
	}
	return New(u.Program, input, opts).Run()
}

func wantOutput(t *testing.T, res Result, want string) {
	t.Helper()
	if res.Status != StatusHalted {
		t.Fatalf("status %v (%v)", res.Status, res.Exception)
	}
	if got := RenderOutput(res.Output); got != want {
		t.Fatalf("output %q, want %q", got, want)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	res := runSrc(t, `
	li $1 10
	li $2 3
	add $3 $1 $2
	print $3        -- 13
	sub $3 $1 $2
	print $3        -- 7
	mult $3 $1 $2
	print $3        -- 30
	div $3 $1 $2
	print $3        -- 3
	mod $3 $1 $2
	print $3        -- 1
	and $3 $1 $2
	print $3        -- 2
	or $3 $1 $2
	print $3        -- 11
	xor $3 $1 $2
	print $3        -- 9
	nor $3 $0 $0
	print $3        -- -1
	sll $3 $1 $2
	print $3        -- 80
	halt
`, nil, Options{})
	wantOutput(t, res, "13730312119-180")
}

func TestZeroRegisterHardwired(t *testing.T) {
	res := runSrc(t, `
	li $0 99        -- write to $0 is discarded
	print $0
	addi $0 $0 5
	print $0
	halt
`, nil, Options{})
	wantOutput(t, res, "00")
}

func TestBranchesAndCalls(t *testing.T) {
	res := runSrc(t, `
	li $1 2
	beqi $1 2 eq
	prints "X"
eq:	bnei $1 3 ne
	prints "Y"
ne:	li $2 2
	beq $1 $2 req
	prints "Z"
req:	jal fn
	prints "back"
	halt
fn:	prints "fn "
	jr $31
`, nil, Options{})
	wantOutput(t, res, "fn back")
}

func TestExceptionIllegalFetch(t *testing.T) {
	res := runSrc(t, `
	li $1 999
	jr $1
`, nil, Options{})
	if res.Status != StatusExcepted || res.Exception.Kind != isa.ExcIllegalInstr {
		t.Fatalf("got %v (%v)", res.Status, res.Exception)
	}
}

func TestExceptionUndefinedLoad(t *testing.T) {
	res := runSrc(t, "\tld $1 1234($0)\n\thalt\n", nil, Options{})
	if res.Status != StatusExcepted || res.Exception.Kind != isa.ExcIllegalAddr {
		t.Fatalf("got %v (%v)", res.Status, res.Exception)
	}
}

func TestStoreDefinesMemory(t *testing.T) {
	res := runSrc(t, `
	li $1 7
	st $1 1234($0)
	ld $2 1234($0)
	print $2
	halt
`, nil, Options{})
	wantOutput(t, res, "7")
}

func TestExceptionDivZero(t *testing.T) {
	res := runSrc(t, "\tli $1 5\n\tdiv $2 $1 $0\n\thalt\n", nil, Options{})
	if res.Status != StatusExcepted || res.Exception.Kind != isa.ExcDivZero {
		t.Fatalf("got %v (%v)", res.Status, res.Exception)
	}
}

func TestWatchdogTimeout(t *testing.T) {
	res := runSrc(t, "loop:\tjmp loop\n", nil, Options{Watchdog: 100})
	if res.Status != StatusExcepted || res.Exception.Kind != isa.ExcTimeout {
		t.Fatalf("got %v (%v)", res.Status, res.Exception)
	}
	if res.Steps != 100 {
		t.Errorf("steps %d, want 100", res.Steps)
	}
}

func TestEndOfInput(t *testing.T) {
	res := runSrc(t, "\tread $1\n\tread $2\n\thalt\n", []int64{5}, Options{})
	if res.Status != StatusExcepted || res.Exception.Kind != isa.ExcThrow {
		t.Fatalf("got %v (%v)", res.Status, res.Exception)
	}
	if !strings.Contains(res.Exception.Detail, "end of input") {
		t.Errorf("detail %q", res.Exception.Detail)
	}
}

func TestThrowInstruction(t *testing.T) {
	res := runSrc(t, "\tthrow \"custom failure\"\n", nil, Options{})
	if res.Status != StatusExcepted || res.Exception.Kind != isa.ExcThrow || res.Exception.Detail != "custom failure" {
		t.Fatalf("got %v (%v)", res.Status, res.Exception)
	}
}

func TestDetectorPassAndFire(t *testing.T) {
	// Passing check.
	res := runSrc(t, `
	det(1, $1, ==, 5)
	li $1 5
	check #1
	prints "ok"
	halt
`, nil, Options{})
	wantOutput(t, res, "ok")

	// Firing check halts with a detection exception.
	res = runSrc(t, `
	det(1, $1, ==, 5)
	li $1 6
	check #1
	prints "unreachable"
	halt
`, nil, Options{})
	if res.Status != StatusExcepted || res.Exception.Kind != isa.ExcDetected {
		t.Fatalf("got %v (%v)", res.Status, res.Exception)
	}
}

func TestDetectorMemoryExpression(t *testing.T) {
	res := runSrc(t, `
	det(4, $5, ==, $3 + *(1000))
	li $3 2
	li $9 40
	st $9 1000($0)
	li $5 42
	check #4
	prints "sum ok"
	halt
`, nil, Options{})
	wantOutput(t, res, "sum ok")
}

func TestUnknownDetectorThrows(t *testing.T) {
	res := runSrc(t, "\tcheck #9\n\thalt\n", nil, Options{})
	if res.Status != StatusExcepted || res.Exception.Kind != isa.ExcThrow {
		t.Fatalf("got %v (%v)", res.Status, res.Exception)
	}
}

func TestPreStepHookInjection(t *testing.T) {
	u := asm.MustParse("t", "\tli $1 1\n\tprint $1\n\thalt\n")
	m := New(u.Program, nil, Options{
		PreStep: func(m *Machine, step int) {
			if m.PC() == 1 { // before the print
				m.SetReg(1, isa.Int(77))
			}
		},
	})
	res := m.Run()
	wantOutput(t, res, "77")
}

func TestRunUntilOccurrences(t *testing.T) {
	u := asm.MustParse("t", `
	li $1 3
loop:	subi $1 $1 1
	bnei $1 0 loop
	halt
`)
	m := New(u.Program, nil, Options{})
	if !m.RunUntil(1, 2) { // second arrival at the subi
		t.Fatal("breakpoint not reached")
	}
	if v, _ := m.Reg(1).Concrete(); v != 2 {
		t.Fatalf("$1 = %d at second occurrence, want 2", v)
	}
	// Beyond the loop count: never reached.
	m2 := New(u.Program, nil, Options{})
	if m2.RunUntil(1, 9) {
		t.Fatal("unreachable occurrence reported reached")
	}
	if m2.Status() != StatusHalted {
		t.Fatalf("status %v", m2.Status())
	}
}

func TestInputConsumedAndSnapshot(t *testing.T) {
	u := asm.MustParse("t", "\tread $1\n\tst $1 5($0)\n\thalt\n")
	m := New(u.Program, []int64{9, 8}, Options{})
	m.Run()
	if m.InputConsumed() != 1 {
		t.Errorf("InputConsumed = %d", m.InputConsumed())
	}
	snap := m.MemSnapshot()
	if v, ok := snap[5]; !ok || !v.Equal(isa.Int(9)) {
		t.Errorf("snapshot %v", snap)
	}
	// Snapshot is a copy.
	snap[5] = isa.Int(0)
	if v, _ := m.Mem(5); !v.Equal(isa.Int(9)) {
		t.Error("snapshot aliases machine memory")
	}
}

func TestOutputHelpers(t *testing.T) {
	out := []OutItem{
		{IsStr: true, Str: "x = "},
		{Val: isa.Int(4)},
		{Val: isa.Err()},
	}
	if got := RenderOutput(out); got != "x = 4err" {
		t.Errorf("RenderOutput = %q", got)
	}
	vals := OutputValues(out)
	if len(vals) != 2 || !vals[0].Equal(isa.Int(4)) || !vals[1].IsErr() {
		t.Errorf("OutputValues = %v", vals)
	}
}

func TestMachineImplementsDetectorEnv(t *testing.T) {
	var _ detector.Env = (*Machine)(nil)
}
