package machine

import (
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
)

func TestComparisonSetSemantics(t *testing.T) {
	res := runSrc(t, `
	li $1 5
	li $2 5
	seteq $3 $1 $2
	print $3        -- 1
	setne $3 $1 $2
	print $3        -- 0
	setgt $3 $1 $2
	print $3        -- 0
	setge $3 $1 $2
	print $3        -- 1
	setlt $3 $1 4
	print $3        -- 0  (immediate form)
	setle $3 $1 5
	print $3        -- 1
	seteq $3 $1 9
	print $3        -- 0
	halt
`, nil, Options{})
	wantOutput(t, res, "1001010")
}

func TestLuiAndImmediateLogic(t *testing.T) {
	res := runSrc(t, `
	lui $1 2
	print $1        -- 131072
	li $2 12
	xori $3 $2 10
	print $3        -- 6
	andi $3 $2 10
	print $3        -- 8
	modi $3 $2 5
	print $3        -- 2
	divi $3 $2 5
	print $3        -- 2
	multi $3 $2 3
	print $3        -- 36
	srl $4 $2 2
	print $4        -- 3
	sra $4 $2 1
	print $4        -- 6
	halt
`, nil, Options{})
	wantOutput(t, res, "13107268223636")
}

func TestAccessorsAndHooks(t *testing.T) {
	u := asm.MustParse("t", "\tnop\n\tnop\n\thalt\n")
	m := New(u.Program, nil, Options{})
	if m.Program() != u.Program {
		t.Error("Program accessor wrong")
	}
	m.Step()
	if m.Steps() != 1 || m.PC() != 1 {
		t.Errorf("Steps/PC = %d/%d", m.Steps(), m.PC())
	}
	if m.Exception() != nil {
		t.Error("spurious exception")
	}

	// SetMem and SetPC from a hook: skip directly to the halt.
	m2 := New(u.Program, nil, Options{
		PreStep: func(m *Machine, step int) {
			if step == 0 {
				m.SetMem(5, isa.Int(42))
				m.SetPC(2)
			}
		},
	})
	res := m2.Run()
	if res.Status != StatusHalted || res.Steps != 1 {
		t.Fatalf("redirected run: %v after %d steps", res.Status, res.Steps)
	}
	if v, ok := m2.Mem(5); !ok || !v.Equal(isa.Int(42)) {
		t.Error("SetMem lost")
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{StatusRunning, StatusHalted, StatusExcepted} {
		if s.String() == "" || s.String()[0] == 's' && s.String() == "status(0)" {
			t.Errorf("status %d lacks a name", int(s))
		}
	}
	if Status(99).String() != "status(99)" {
		t.Error("unknown status rendering")
	}
}

func TestErrOperandsRaise(t *testing.T) {
	// A hook that plants the symbolic err into the concrete machine makes
	// the next use raise (the concrete model has no symbolic semantics).
	cases := []string{
		"\tadd $3 $1 $2\n\thalt\n",
		"\tseteq $3 $1 $2\n\thalt\n",
		"\tld $3 0($1)\n\thalt\n",
		"\tst $3 0($1)\n\thalt\n",
		"\tbeqi $1 0 x\nx:\thalt\n",
		"\tjr $1\n\thalt\n",
	}
	for _, src := range cases {
		u := asm.MustParse("t", src)
		m := New(u.Program, nil, Options{
			PreStep: func(m *Machine, step int) {
				if step == 0 {
					m.SetReg(1, isa.Err())
				}
			},
		})
		res := m.Run()
		if res.Status != StatusExcepted {
			t.Errorf("%q: err operand did not raise (status %v)", src, res.Status)
		}
	}
}

func TestDetectorErrOperandDetects(t *testing.T) {
	u := asm.MustParse("t", "\tdet(1, $1, ==, 5)\n\tcheck #1\n\thalt\n")
	m := New(u.Program, nil, Options{
		Detectors: u.Detectors,
		PreStep: func(m *Machine, step int) {
			if step == 0 {
				m.SetReg(1, isa.Err())
			}
		},
	})
	res := m.Run()
	if res.Status != StatusExcepted || res.Exception.Kind != isa.ExcDetected {
		t.Fatalf("err at detector: %v (%v)", res.Status, res.Exception)
	}
}

func TestJrToNegativeAddress(t *testing.T) {
	res := runSrc(t, "\tli $1 -5\n\tjr $1\n", nil, Options{})
	if res.Status != StatusExcepted || res.Exception.Kind != isa.ExcIllegalInstr {
		t.Fatalf("negative jr: %v (%v)", res.Status, res.Exception)
	}
}

func TestStepAfterTermination(t *testing.T) {
	u := asm.MustParse("t", "\thalt\n")
	m := New(u.Program, nil, Options{})
	m.Run()
	before := m.Steps()
	m.Step() // no-op
	if m.Steps() != before {
		t.Error("Step advanced a terminated machine")
	}
	res := m.Run() // idempotent
	if res.Status != StatusHalted {
		t.Error("re-Run changed status")
	}
}
