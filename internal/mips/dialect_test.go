package mips

import (
	"strings"
	"testing"

	"symplfied/internal/machine"
)

func outputValues(t *testing.T, res machine.Result) []int64 {
	t.Helper()
	if res.Status != machine.StatusHalted {
		t.Fatalf("status %v (%v)", res.Status, res.Exception)
	}
	vals := machine.OutputValues(res.Output)
	out := make([]int64, len(vals))
	for i, v := range vals {
		c, ok := v.Concrete()
		if !ok {
			t.Fatalf("non-concrete output %v", v)
		}
		out[i] = c
	}
	return out
}

func wantOutputs(t *testing.T, src string, input []int64, want ...int64) {
	t.Helper()
	res := runMIPS(t, src, input)
	got := outputValues(t, res)
	if len(got) != len(want) {
		t.Fatalf("printed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d (%v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestShiftAndVariableShift(t *testing.T) {
	wantOutputs(t, `
	.text
main:
	li $t0, 3
	sll $t1, $t0, 4      # 48
	move $a0, $t1
	li $v0, 1
	syscall
	li $t2, 2
	sllv $t3, $t0, $t2   # 12
	move $a0, $t3
	li $v0, 1
	syscall
	srl $a0, $t1, 3      # 6
	li $v0, 1
	syscall
	li $t4, -16
	sra $a0, $t4, 2      # -4
	li $v0, 1
	syscall
	li $v0, 10
	syscall
`, nil, 48, 12, 6, -4)
}

func TestSetPseudosAndRem(t *testing.T) {
	wantOutputs(t, `
	.text
main:
	li $t0, 7
	li $t1, 3
	seq $a0, $t0, $t1    # 0
	li $v0, 1
	syscall
	sne $a0, $t0, $t1    # 1
	li $v0, 1
	syscall
	sgt $a0, $t0, $t1    # 1
	li $v0, 1
	syscall
	sle $a0, $t0, $t1    # 0
	li $v0, 1
	syscall
	sge $a0, $t0, 7      # 1
	li $v0, 1
	syscall
	rem $a0, $t0, $t1    # 1
	li $v0, 1
	syscall
	li $v0, 10
	syscall
`, nil, 0, 1, 1, 0, 1, 1)
}

func TestLuiNorSpaceHex(t *testing.T) {
	wantOutputs(t, `
	.data
buf:	.space 2
	.text
main:
	lui $t0, 0x2         # 2 << 16
	move $a0, $t0
	li $v0, 1
	syscall
	nor $a0, $zero, $zero  # -1
	li $v0, 1
	syscall
	la $t1, buf
	lw $a0, 0($t1)       # .space zero-initialized
	li $v0, 1
	syscall
	li $t2, -0x10        # negative hex
	move $a0, $t2
	li $v0, 1
	syscall
	li $v0, 10
	syscall
`, nil, 131072, -1, 0, -16)
}

func TestBareBaseAndLabelAddressing(t *testing.T) {
	wantOutputs(t, `
	.data
v:	.word 11, 22
	.text
main:
	la $t0, v
	lw $a0, ($t0)        # bare (base)
	li $v0, 1
	syscall
	lw $a0, v            # absolute label
	li $v0, 1
	syscall
	li $t1, 33
	sw $t1, v            # absolute store
	lw $a0, v
	li $v0, 1
	syscall
	li $v0, 10
	syscall
`, nil, 11, 11, 33)
}

func TestBranchWithImmediateAndZeroForms(t *testing.T) {
	wantOutputs(t, `
	.text
main:
	li $t0, 5
	beq $t0, 5, ok       # immediate beq
	li $a0, 0
	j print
ok:
	li $a0, 1
print:
	li $v0, 1
	syscall
	li $t1, -1
	bltz $t1, neg
	li $a0, 0
	j print2
neg:
	li $a0, 2
print2:
	li $v0, 1
	syscall
	ble $t0, 5, done     # pseudo with immediate
	li $a0, 9
	li $v0, 1
	syscall
done:
	li $v0, 10
	syscall
`, nil, 1, 2)
}

func TestFallthroughHalts(t *testing.T) {
	// A program without an exit syscall halts at the synthesized epilogue
	// instead of fetching invalid code.
	res := runMIPS(t, "\t.text\nmain:\n\tli $t0, 1\n", nil)
	if res.Status != machine.StatusHalted {
		t.Fatalf("fallthrough: %v (%v)", res.Status, res.Exception)
	}
}

func TestUnsupportedSyscallThrows(t *testing.T) {
	res := runMIPS(t, "\t.text\nmain:\n\tli $v0, 99\n\tsyscall\n", nil)
	if res.Status != machine.StatusExcepted {
		t.Fatal("unsupported syscall did not throw")
	}
	if !strings.Contains(res.Exception.Detail, "syscall") {
		t.Errorf("detail %q", res.Exception.Detail)
	}
}

func TestMoreTranslateErrors(t *testing.T) {
	cases := []string{
		"\t.text\nmain:\n\tadd $t0, $t1\n",         // operand count
		"\t.text\nmain:\n\tadd $t0, $t1, $zz\n",    // bad register
		"\t.text\nmain:\n\tlw $t0, 4($nope)\n",     // bad base
		"\t.text\nmain:\n\tjr 5\n",                 // non-register jr
		"\t.text\nmain:\n\tnor $t0, $t1, 5\n",      // nor has no immediate form
		"\t.text\nmain:\n\tdiv $t0\n",              // div operand count
		"\t.data\nx:\t.space -1\n\t.text\nmain:\n", // bad .space
		"\t.data\nx:\t.asciiz noquote\n",           // bad string
		"\t.text\nmain:\n\tbeq $t0, nolabel2, x\n", // bad immediate/label
	}
	for _, src := range cases {
		if _, err := Translate("bad", src); err == nil {
			t.Errorf("Translate(%q) succeeded", src)
		}
	}
}

func TestTranslateErrorType(t *testing.T) {
	_, err := Translate("bad", "\t.text\nmain:\n\tfoo $t0\n")
	te, ok := err.(*TranslateError)
	if !ok {
		t.Fatalf("error %T, want *TranslateError", err)
	}
	if te.Line != 3 {
		t.Errorf("line %d, want 3", te.Line)
	}
}

func TestRegisterNamesNumericAndSymbolic(t *testing.T) {
	wantOutputs(t, `
	.text
main:
	li $8, 42            # numeric == $t0
	move $a0, $8
	li $v0, 1
	syscall
	li $v0, 10
	syscall
`, nil, 42)
}
